// Smartcamera models the paper's privacy scenario (§I): a home camera
// that must keep video recognition on the device — frames never leave
// the house — and run continuously, which makes sustained thermals as
// important as latency (§VI-F).
//
// The program sizes a 24/7 video-recognition deployment: it checks which
// devices sustain the C3D clip classifier, simulates an hour of
// continuous operation thermally, and reports achievable clip rates,
// duty cycles, and whether the device survives the workload.
//
// Run with: go run ./examples/smartcamera
package main

import (
	"fmt"

	"edgebench/internal/core"
	"edgebench/internal/device"
	"edgebench/internal/framework"
	"edgebench/internal/power"
	"edgebench/internal/thermal"
)

func main() {
	const modelName = "C3D" // 12-frame clips, the paper's video model
	fmt.Printf("smart camera planner: continuous %s recognition\n\n", modelName)
	fmt.Printf("%-12s %-10s %10s %9s %9s %8s %-16s\n",
		"device", "framework", "ms/clip", "clips/s", "W", "peak°C", "verdict")

	for _, dev := range device.Edge() {
		fws, err := framework.FrameworksFor(dev.Name)
		if err != nil {
			continue
		}
		// Best deployable framework for the video model.
		var best *core.Session
		var bestFw string
		for _, fw := range fws {
			s, err := core.New(modelName, fw.Name, dev.Name)
			if err != nil {
				continue
			}
			if best == nil || s.InferenceSeconds() < best.InferenceSeconds() {
				best, bestFw = s, fw.Name
			}
		}
		if best == nil {
			fmt.Printf("%-12s %-10s %10s — no deployable framework (Table V)\n", dev.Name, "-", "-")
			continue
		}

		lat := best.InferenceSeconds()
		watts := power.ActiveWatts(dev, best.Utilization())

		// Simulate one hour of continuous clips.
		sim := thermal.NewSimulator(dev)
		pts := sim.Run(3600, func(float64) float64 { return watts })
		var peak float64
		shutdown := false
		for _, p := range pts {
			if p.JunctionC > peak {
				peak = p.JunctionC
			}
			shutdown = shutdown || p.Shutdown
		}

		verdict := "sustains 24/7"
		if shutdown {
			verdict = "THERMAL SHUTDOWN"
		} else if peak > 70 {
			verdict = "hot; add cooling"
		}
		fmt.Printf("%-12s %-10s %10.0f %9.2f %9.2f %8.1f %-16s\n",
			dev.Name, bestFw, lat*1e3, 1/lat, watts, peak, verdict)
	}

	// Duty-cycling: if the camera only analyzes clips on motion events
	// (say 5% of the time), what does a day cost in energy?
	fmt.Println("\nenergy for a motion-triggered day (5% duty cycle, 1 clip/s while active):")
	for _, devName := range []string{"JetsonNano", "JetsonTX2", "Movidius"} {
		dev := device.MustGet(devName)
		fws, _ := framework.FrameworksFor(devName)
		for _, fw := range fws {
			s, err := core.New(modelName, fw.Name, devName)
			if err != nil {
				continue
			}
			activeSec := 0.05 * 86400
			clips := activeSec // 1 clip per active second
			active := power.EnergyPerInferenceJ(s) * clips
			idle := dev.IdleWatts * (86400 - activeSec)
			fmt.Printf("  %-12s via %-10s %6.1f Wh/day (%.0f%% of it idle draw)\n",
				devName, fw.Name, (active+idle)/3600, 100*idle/(active+idle))
			break // best-listed framework is enough for the sketch
		}
	}
}
