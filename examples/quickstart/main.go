// Quickstart walks the edgebench public surface end to end:
//
//  1. pick a model from the Table I zoo,
//  2. lower it through a framework's real optimization pipeline,
//  3. simulate single-batch inference on an edge device,
//  4. read off latency, memory, and energy,
//  5. and — for a model small enough — execute it numerically.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"edgebench/internal/core"
	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/power"
	"edgebench/internal/trace"
)

func main() {
	// 1. The model zoo mirrors the paper's Table I.
	spec := model.MustGet("MobileNet-v2")
	fmt.Printf("model %s: %.2f GFLOP, %.2f M params, FLOP/param %.0f\n",
		spec.Name, spec.GFLOPs(), spec.ParamsM(), spec.FLOPPerParam())

	// 2-3. A Session binds (model, framework, device) and enforces the
	// paper's deployment rules (platform locks, Table V, memory walls).
	for _, target := range []struct{ fw, dev string }{
		{"TFLite", "RPi3"},
		{"TFLite", "EdgeTPU"},
		{"TensorRT", "JetsonNano"},
		{"PyTorch", "JetsonTX2"},
	} {
		s, err := core.New(spec.Name, target.fw, target.dev)
		if err != nil {
			log.Fatalf("session %v: %v", target, err)
		}
		sum := s.Summary(200, 42) // §V: hundreds of single-batch inferences
		fmt.Printf("  %-10s on %-11s %-7s graph  %8.1f ms/inf  %7.1f mJ\n",
			target.fw, target.dev, s.Lowered().Mode,
			sum.Mean*1e3, power.EnergyPerInferenceJ(s)*1e3)
	}

	// 4. Deployment failures are first-class: VGG16 cannot fit the RPi
	// under a static graph (Table V "^").
	if _, err := core.New("VGG16", "TensorFlow", "RPi3"); err != nil {
		fmt.Printf("expected failure: %v\n", err)
	}

	// 5. The engine is a real inference engine, not just a cost model:
	// small models execute numerically.
	small := model.MustGet("CifarNet").Build(nn.Options{Materialize: true, Seed: 7})
	input, err := trace.Generator{Seed: 1}.Input([]int{3, 32, 32})
	if err != nil {
		log.Fatal(err)
	}
	out, err := (&graph.Executor{}).Run(small, input)
	if err != nil {
		log.Fatal(err)
	}
	best, arg := float32(-1), 0
	for i, p := range out.Data {
		if p > best {
			best, arg = p, i
		}
	}
	fmt.Printf("CifarNet forward pass: class %d with probability %.3f\n", arg, best)
}
