// Trainlab walks the full lifecycle the paper's framework taxonomy
// implies (§III): *train* a model with a training framework (automatic
// differentiation, SGD), *export* it through the interchange format,
// then *deploy* it through an inference framework's optimization
// pipeline and compare the deployment targets.
//
// The model is a small CNN trained on a synthetic two-class image task
// (bright-top vs bright-bottom frames from the trace generator), so the
// whole loop runs in a couple of seconds on a laptop.
//
// Run with: go run ./examples/trainlab
package main

import (
	"fmt"
	"log"

	"edgebench/internal/autodiff"
	"edgebench/internal/core"
	"edgebench/internal/exchange"
	"edgebench/internal/graph"
	"edgebench/internal/nn"
	graphopt "edgebench/internal/opt"
	"edgebench/internal/stats"
	"edgebench/internal/tensor"
)

func main() {
	// 1. Define the model the way a PyTorch user would.
	b := nn.NewBuilder("doorbell-net", nn.Options{Materialize: true, Seed: 1}, 1, 16, 16)
	b.Conv2D("conv1", 6, 3, 2, 1, true)
	b.ReLU("relu1")
	b.Conv2D("conv2", 12, 3, 2, 1, true)
	b.ReLU("relu2")
	b.GlobalAvgPool("gap")
	b.Dense("fc", 2, true)
	b.Softmax("prob")
	g := b.Build()

	// 2. Synthesize a labelled dataset: class 0 = bright top half,
	// class 1 = bright bottom half, plus noise.
	rng := stats.NewRNG(7)
	dataset := func(n int, seedBase int64) []autodiff.Example {
		var out []autodiff.Example
		for i := 0; i < n; i++ {
			in := tensor.New(1, 16, 16)
			label := i % 2
			for y := 0; y < 16; y++ {
				for x := 0; x < 16; x++ {
					v := 0.2 * rng.Float32()
					if (label == 0 && y < 8) || (label == 1 && y >= 8) {
						v += 0.8
					}
					in.Set(v, 0, y, x)
				}
			}
			out = append(out, autodiff.Example{Input: in, Label: label})
		}
		return out
	}
	train := dataset(80, 100)
	test := dataset(40, 900)

	// 3. Train with SGD + momentum.
	opt := autodiff.NewSGD(0.05, 0.9)
	for epoch := 1; epoch <= 10; epoch++ {
		loss, acc, err := autodiff.TrainEpoch(g, opt, train)
		if err != nil {
			log.Fatal(err)
		}
		if epoch == 1 || epoch%5 == 0 {
			fmt.Printf("epoch %2d: loss %.4f, train accuracy %.0f%%\n", epoch, loss, acc*100)
		}
	}
	correct := 0
	for _, ex := range test {
		if pred, err := autodiff.Predict(g, ex.Input); err == nil && pred == ex.Label {
			correct++
		}
	}
	fmt.Printf("held-out accuracy: %d/%d\n\n", correct, len(test))

	// 4. Export through the interchange format (weights included) and
	// re-import — the ONNX-style hop between training and deployment.
	blob, err := exchange.Export(g, exchange.Options{IncludeWeights: true})
	if err != nil {
		log.Fatal(err)
	}
	deployed, err := exchange.Import(blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exchange blob: %.1f KB; re-imported %d ops, %d params\n\n",
		float64(len(blob))/1024, deployed.NumOps(), deployed.Params())

	// 5. Deployment study: lower the trained graph with each inference
	// pipeline and check INT8 keeps predictions intact while shrinking
	// the graph.
	sample := test[0].Input
	ref, err := (&graph.Executor{}).Run(deployed, sample)
	if err != nil {
		log.Fatal(err)
	}
	lowered := deployed.Clone()
	graphopt.FoldBN(lowered)
	graphopt.FuseActivations(lowered)
	graphopt.QuantizeINT8(lowered)
	got, err := (&graph.Executor{}).Run(lowered, sample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment lowering: %d -> %d ops; class-0 prob %.3f -> %.3f under int8\n\n",
		deployed.NumOps(), lowered.NumOps(), ref.Data[0], got.Data[0])

	// 6. Where would it run? Price the deployed graph on edge targets.
	for _, target := range [][2]string{
		{"TFLite", "RPi3"}, {"PyTorch", "JetsonTX2"}, {"TensorRT", "JetsonNano"},
	} {
		s, err := core.NewFromGraph(lowered, target[0], target[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-9s on %-11s %8.2f ms/inference\n",
			target[0], target[1], s.InferenceSeconds()*1e3)
	}
}
