// Fleetplanner reproduces the decision the paper's Figure 12 supports:
// given a recognition workload, which device sits where on the
// latency-power trade-off, and which choices are Pareto-optimal?
//
// It sweeps the Table I recognition suite over every edge platform
// (best deployable framework each), computes the latency/energy frontier,
// and prints the Pareto set — the paper's observation that "Movidius is
// the lowest-power extreme, EdgeTPU the lowest-latency extreme, and the
// Jetson Nano balances the middle" falls out of the data.
//
// Run with: go run ./examples/fleetplanner
package main

import (
	"fmt"
	"sort"

	"edgebench/internal/core"
	"edgebench/internal/device"
	"edgebench/internal/framework"
	"edgebench/internal/power"
	"edgebench/internal/stats"
)

type point struct {
	dev      string
	fw       string
	meanSec  float64 // geomean latency across the suite
	watts    float64 // mean active power
	energyMJ float64 // geomean energy per inference
	covered  int     // how many suite models deploy
}

func main() {
	suite := []string{"ResNet-18", "ResNet-50", "MobileNet-v2", "Inception-v4"}
	var pts []point

	for _, dev := range device.Edge() {
		fws, err := framework.FrameworksFor(dev.Name)
		if err != nil {
			continue
		}
		// Pick the framework covering the most models fastest.
		var best point
		for _, fw := range fws {
			var lats, energies, watts []float64
			for _, m := range suite {
				s, err := core.New(m, fw.Name, dev.Name)
				if err != nil {
					continue
				}
				lats = append(lats, s.InferenceSeconds())
				energies = append(energies, power.EnergyPerInferenceJ(s)*1e3)
				watts = append(watts, power.ActiveWatts(dev, s.Utilization()))
			}
			if len(lats) == 0 {
				continue
			}
			cand := point{
				dev: dev.Name, fw: fw.Name,
				meanSec:  stats.GeoMean(lats),
				watts:    stats.Mean(watts),
				energyMJ: stats.GeoMean(energies),
				covered:  len(lats),
			}
			if best.covered < cand.covered ||
				(best.covered == cand.covered && cand.meanSec < best.meanSec) {
				best = cand
			}
		}
		if best.covered > 0 {
			pts = append(pts, best)
		}
	}

	sort.Slice(pts, func(i, j int) bool { return pts[i].meanSec < pts[j].meanSec })

	fmt.Println("fleet planner: recognition suite across edge platforms")
	fmt.Printf("%-12s %-10s %10s %8s %10s %8s %7s\n",
		"device", "framework", "geo ms/inf", "W", "geo mJ/inf", "covered", "pareto")
	for _, p := range pts {
		fmt.Printf("%-12s %-10s %10.1f %8.2f %10.1f %5d/%d %7v\n",
			p.dev, p.fw, p.meanSec*1e3, p.watts, p.energyMJ, p.covered, len(suite),
			isPareto(p, pts))
	}

	fmt.Println("\nPareto frontier (latency vs power):")
	for _, p := range pts {
		if isPareto(p, pts) {
			role := "balanced middle"
			switch {
			case lowest(p, pts, func(q point) float64 { return q.meanSec }):
				role = "lowest latency extreme"
			case lowest(p, pts, func(q point) float64 { return q.watts }):
				role = "lowest power extreme"
			}
			fmt.Printf("  %-12s %-10s — %s\n", p.dev, p.fw, role)
		}
	}
}

// isPareto reports whether no other point dominates p on both axes.
func isPareto(p point, all []point) bool {
	for _, q := range all {
		if q == p {
			continue
		}
		if q.meanSec <= p.meanSec && q.watts <= p.watts &&
			(q.meanSec < p.meanSec || q.watts < p.watts) {
			return false
		}
	}
	return true
}

func lowest(p point, all []point, key func(point) float64) bool {
	for _, q := range all {
		if key(q) < key(p) {
			return false
		}
	}
	return true
}
