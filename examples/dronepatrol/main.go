// Dronepatrol plays out the paper's motivating UAV scenario (§I): a
// drone must run object detection on board — offloading is impossible
// over a disaster area — under hard latency and energy budgets.
//
// The planner sweeps every (detector, device, framework) deployment the
// compatibility rules allow, filters by the mission constraints, and
// ranks the survivors by flight-time cost.
//
// Run with: go run ./examples/dronepatrol
package main

import (
	"fmt"
	"sort"

	"edgebench/internal/core"
	"edgebench/internal/device"
	"edgebench/internal/framework"
	"edgebench/internal/power"
)

// Mission constraints: the detector must keep up with a 2 Hz patrol
// scan, and the perception payload gets 2 W of the drone's budget on
// average (edge accelerators qualify; HPC silicon never will).
const (
	maxLatencySec = 0.5
	maxAvgWatts   = 6.0
	batteryWh     = 40.0 // small quadcopter battery share for compute
)

type plan struct {
	model, fw, dev string
	latency        float64
	watts          float64
	energyPerInfJ  float64
	fps            float64
	hoursOnBudget  float64
}

func main() {
	detectors := []string{"SSD-MobileNet-v1", "TinyYolo", "YOLOv3"}
	var feasible, rejected []plan

	for _, m := range detectors {
		for _, dev := range device.Edge() {
			fws, err := framework.FrameworksFor(dev.Name)
			if err != nil {
				continue
			}
			for _, fw := range fws {
				s, err := core.New(m, fw.Name, dev.Name)
				if err != nil {
					continue // Table V / platform lock / OOM
				}
				lat := s.InferenceSeconds()
				watts := power.ActiveWatts(dev, s.Utilization())
				p := plan{
					model: m, fw: fw.Name, dev: dev.Name,
					latency:       lat,
					watts:         watts,
					energyPerInfJ: power.EnergyPerInferenceJ(s),
					fps:           1 / lat,
					hoursOnBudget: batteryWh / watts,
				}
				if lat <= maxLatencySec && watts <= maxAvgWatts {
					feasible = append(feasible, p)
				} else {
					rejected = append(rejected, p)
				}
			}
		}
	}

	sort.Slice(feasible, func(i, j int) bool {
		return feasible[i].energyPerInfJ < feasible[j].energyPerInfJ
	})

	fmt.Printf("drone patrol planner: %d feasible / %d rejected deployments\n",
		len(feasible), len(rejected))
	fmt.Printf("constraints: latency <= %.0f ms, payload power <= %.1f W\n\n",
		maxLatencySec*1e3, maxAvgWatts)
	fmt.Printf("%-18s %-12s %-10s %9s %8s %9s %9s\n",
		"detector", "device", "framework", "ms/frame", "fps", "mJ/inf", "hours")
	for i, p := range feasible {
		if i >= 10 {
			break
		}
		fmt.Printf("%-18s %-12s %-10s %9.1f %8.1f %9.1f %9.1f\n",
			p.model, p.dev, p.fw, p.latency*1e3, p.fps, p.energyPerInfJ*1e3, p.hoursOnBudget)
	}
	if len(feasible) > 0 {
		best := feasible[0]
		fmt.Printf("\nrecommended payload: %s on %s via %s — %.1f fps at %.2f W\n",
			best.model, best.dev, best.fw, best.fps, best.watts)
	}

	// Show why the paper's RPi matters as a baseline: the cheapest board
	// struggles to make the scan rate at all.
	fmt.Println("\nRaspberry Pi baseline (best framework per detector):")
	for _, m := range detectors {
		bestLat, bestFw := 1e9, "-"
		for _, fwName := range []string{"TensorFlow", "TFLite", "PyTorch", "Caffe", "DarkNet"} {
			if s, err := core.New(m, fwName, "RPi3"); err == nil {
				if t := s.InferenceSeconds(); t < bestLat {
					bestLat, bestFw = t, fwName
				}
			}
		}
		if bestFw == "-" {
			fmt.Printf("  %-18s cannot deploy (Table V)\n", m)
			continue
		}
		verdict := "misses the 2 Hz scan"
		if bestLat <= maxLatencySec {
			verdict = "meets the scan rate"
		}
		fmt.Printf("  %-18s %8.0f ms via %-10s — %s\n", m, bestLat*1e3, bestFw, verdict)
	}
}
