package framework_test

import (
	"testing"

	"edgebench/internal/device"
	"edgebench/internal/framework"
	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/tensor"
)

func TestCatalogComplete(t *testing.T) {
	if got := len(framework.All()); got != 9 {
		t.Fatalf("catalog holds %d frameworks, want 9", got)
	}
	for _, n := range framework.TableIIOrder {
		if _, ok := framework.Get(n); !ok {
			t.Errorf("framework %q missing", n)
		}
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet unknown should panic")
		}
	}()
	framework.MustGet("Chainer")
}

func TestTableIIFeatureMatrix(t *testing.T) {
	tf := framework.MustGet("TensorFlow")
	pt := framework.MustGet("PyTorch")
	trt := framework.MustGet("TensorRT")
	tfl := framework.MustGet("TFLite")
	dn := framework.MustGet("DarkNet")

	if !tf.IndustryBacked || dn.IndustryBacked {
		t.Error("industry-backed flags wrong")
	}
	if !tf.TrainingFramework || tfl.TrainingFramework || trt.TrainingFramework {
		t.Error("training-framework flags wrong")
	}
	if tf.Mode != graph.Static || pt.Mode != graph.Dynamic {
		t.Error("graph modes wrong")
	}
	if !trt.Opts.MixedPrecision || tf.Opts.MixedPrecision {
		t.Error("mixed precision: TensorRT only (Table II)")
	}
	if !trt.Opts.AutoTuning || tfl.Opts.AutoTuning {
		t.Error("auto tuning: TensorRT only (Table II)")
	}
	if !tfl.Opts.Fusion || !trt.Opts.Fusion || pt.Opts.Fusion {
		t.Error("fusion flags wrong")
	}
	if tfl.Mobile != framework.FullMobile || pt.Mobile != framework.PartialMobile {
		t.Error("mobile deployment grades wrong")
	}
	if tfl.NoExtraSteps || framework.MustGet("NCSDK").NoExtraSteps {
		t.Error("TFLite/NCSDK require extra deployment steps")
	}
}

func TestStarsString(t *testing.T) {
	if framework.Stars(2).String() != "**" || framework.Stars(3).String() != "***" {
		t.Error("Stars rendering wrong")
	}
	if framework.Stars(0).String() != "?" {
		t.Error("invalid stars should render ?")
	}
}

func buildSmall(t *testing.T) *graph.Graph {
	t.Helper()
	b := nn.NewBuilder("m", nn.Options{Materialize: true, Seed: 5}, 3, 16, 16)
	b.ConvBNReLU("b1", 8, 3, 1, 1)
	b.ConvBNReLU("b2", 16, 3, 2, 1)
	b.GlobalAvgPool("gap")
	b.Dense("fc", 10, true)
	b.Softmax("p")
	return b.Build()
}

func TestLowerTensorRTFusesAndCasts(t *testing.T) {
	g := buildSmall(t)
	nano := device.MustGet("JetsonNano")
	out := framework.MustGet("TensorRT").Lower(g, nano)
	if out.NumOps() >= g.NumOps() {
		t.Fatal("TensorRT lowering should fuse ops away")
	}
	// Nano executes INT8 natively, so TensorRT quantizes.
	for _, n := range out.Nodes {
		if n.DType != tensor.INT8 {
			t.Fatalf("node %s dtype = %v, want int8", n, n.DType)
		}
	}
	if !out.Frozen {
		t.Fatal("static lowering should freeze")
	}
	// The original graph is untouched.
	if g.Frozen || g.NumOps() == out.NumOps() {
		t.Fatal("Lower must not mutate its input")
	}
}

func TestLowerTFLiteQuantizesEverywhere(t *testing.T) {
	g := buildSmall(t)
	rpi := device.MustGet("RPi3")
	out := framework.MustGet("TFLite").Lower(g, rpi)
	// TFLite deploys quantized even where the CPU gains nothing.
	for _, n := range out.Nodes {
		if n.DType != tensor.INT8 {
			t.Fatalf("TFLite should quantize; node %s is %v", n, n.DType)
		}
	}
}

func TestLowerPyTorchKeepsDynamicFP32(t *testing.T) {
	g := buildSmall(t)
	tx2 := device.MustGet("JetsonTX2")
	out := framework.MustGet("PyTorch").Lower(g, tx2)
	if out.Mode != graph.Dynamic {
		t.Fatal("PyTorch lowering must be dynamic")
	}
	if out.Frozen {
		t.Fatal("dynamic graphs are not frozen")
	}
	if out.NumOps() != g.NumOps() {
		t.Fatal("PyTorch applies no structural optimization")
	}
	for _, n := range out.Nodes {
		if n.DType != tensor.FP32 {
			t.Fatal("PyTorch executes fp32")
		}
	}
}

func TestLowerNCSDKCastsFP16(t *testing.T) {
	g := buildSmall(t)
	mov := device.MustGet("Movidius")
	out := framework.MustGet("NCSDK").Lower(g, mov)
	for _, n := range out.Nodes {
		if n.DType != tensor.FP16 {
			t.Fatalf("NCSDK on Movidius should run fp16, node %s is %v", n, n.DType)
		}
	}
}

func TestLowerPreservesSemanticsModuloPrecision(t *testing.T) {
	g := buildSmall(t)
	in := tensor.New(3, 16, 16).Fill(0.2)
	ref, err := (&graph.Executor{}).Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	out := framework.MustGet("TensorRT").Lower(g, device.MustGet("JetsonNano"))
	got, err := (&graph.Executor{}).Run(out, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Data {
		d := float64(ref.Data[i] - got.Data[i])
		if d > 0.15 || d < -0.15 {
			t.Fatalf("lowered output diverges at %d: %v vs %v", i, got.Data[i], ref.Data[i])
		}
	}
}

func TestTableVStatus(t *testing.T) {
	cases := []struct {
		model, dev string
		want       framework.Status
	}{
		{"ResNet-18", "RPi3", framework.OK},
		{"ResNet-18", "EdgeTPU", framework.ConversionBarrier},
		{"AlexNet", "RPi3", framework.DynamicGraphRequired},
		{"VGG16", "RPi3", framework.DynamicGraphRequired},
		{"SSD-MobileNet-v1", "RPi3", framework.CodeIncompatible},
		{"C3D", "EdgeTPU", framework.ConversionBarrier},
		{"ResNet-50", "PYNQ-Z1", framework.BRAMOverflow},
		{"MobileNet-v2", "JetsonTX2", framework.OK},
		{"CifarNet", "PYNQ-Z1", framework.OK},
	}
	for _, c := range cases {
		if got := framework.TableVStatus(c.model, c.dev); got != c.want {
			t.Errorf("TableVStatus(%s, %s) = %v, want %v", c.model, c.dev, got, c.want)
		}
	}
}

func TestStatusPredicates(t *testing.T) {
	if !framework.OK.Runnable() || !framework.DynamicGraphRequired.Runnable() || !framework.BRAMOverflow.Runnable() {
		t.Error("runnable statuses wrong")
	}
	if framework.CodeIncompatible.Runnable() || framework.ConversionBarrier.Runnable() {
		t.Error("non-runnable statuses wrong")
	}
	for s := framework.OK; s <= framework.BRAMOverflow; s++ {
		if s.String() == "unknown" {
			t.Errorf("status %d missing name", s)
		}
	}
}

func TestPlatformFrameworkLock(t *testing.T) {
	// Accelerators are locked to vendor toolchains (Table III).
	tfl := framework.MustGet("TFLite")
	if !tfl.SupportedOn("EdgeTPU") || !tfl.SupportedOn("RPi3") {
		t.Error("TFLite support wrong")
	}
	if framework.MustGet("TensorFlow").SupportedOn("EdgeTPU") {
		t.Error("EdgeTPU accepts only TFLite")
	}
	if !framework.MustGet("NCSDK").SupportedOn("Movidius") ||
		framework.MustGet("NCSDK").SupportedOn("RPi3") {
		t.Error("NCSDK is Movidius-only")
	}
	if !framework.MustGet("TensorRT").SupportedOn("JetsonNano") ||
		framework.MustGet("TensorRT").SupportedOn("Xeon") {
		t.Error("TensorRT is Nvidia-only")
	}
	if framework.MustGet("TensorRT").SupportedOn("JetsonTX2") {
		t.Error("the paper's TX2 stack never deployed TensorRT (Table IV)")
	}

	fws, err := framework.FrameworksFor("JetsonTX2")
	if err != nil || len(fws) != 6 {
		t.Fatalf("FrameworksFor(TX2) = %d frameworks (%v), want 6", len(fws), err)
	}
	if _, err := framework.FrameworksFor("Abacus"); err == nil {
		t.Fatal("unknown device should error")
	}
}

func TestEveryTableVModelExists(t *testing.T) {
	// The compat matrix must reference only registered models/devices.
	for _, name := range []string{"ResNet-18", "ResNet-50", "MobileNet-v2",
		"Inception-v4", "AlexNet", "VGG16", "SSD-MobileNet-v1", "TinyYolo", "C3D"} {
		if _, ok := model.Get(name); !ok {
			t.Errorf("Table V model %q not in zoo", name)
		}
	}
	for _, name := range []string{"RPi3", "JetsonTX2", "JetsonNano", "EdgeTPU", "Movidius", "PYNQ-Z1"} {
		if _, ok := device.Get(name); !ok {
			t.Errorf("Table V device %q not in catalog", name)
		}
	}
}
