package framework

import "edgebench/internal/graph"

// The catalog transcribes Table II. The DispatchWeight/SessionWeight/
// MemoryFactor knobs encode the software-stack structure §VI-B3 profiles:
// Python-dispatched dynamic graphs pay per-op cost every inference, static
// runtimes amortize graph setup, C runtimes dispatch almost for free.

const catalogMB = int64(1) << 20

func init() {
	register(&Framework{
		Name:              "TensorFlow",
		Language:          "Python",
		IndustryBacked:    true,
		TrainingFramework: true,
		NoExtraSteps:      true,
		Mobile:            NoMobile,
		Usability:         3,
		AddingModels:      2,
		PreDefined:        3,
		Documentation:     2,
		LowLevel:          2,
		Compatibility:     1,
		Opts: Optimizations{
			Quantization:  false, // experimental flags hidden; not applied in the paper's runs (§VI-B1)
			Fusion:        false, // experimental, not enabled by default
			HalfPrecision: false,
		},
		Mode:           graph.Static,
		DispatchWeight: 1.0,
		SessionWeight:  3.0, // TF_SessionRunCallable dominates Fig. 5b
		MemoryFactor:   2.0, // static graph duplication on load
		BaselineBytes:  220 * catalogMB,
	})
	register(&Framework{
		Name:              "Keras",
		Language:          "Python",
		IndustryBacked:    true,
		TrainingFramework: true,
		NoExtraSteps:      true,
		Mobile:            NoMobile,
		Usability:         3,
		AddingModels:      3,
		PreDefined:        3,
		Documentation:     3,
		LowLevel:          1,
		Compatibility:     1,
		Opts:              Optimizations{},
		Mode:              graph.Static,
		DispatchWeight:    1.1, // thin layer over the TensorFlow engine
		SessionWeight:     3.2,
		MemoryFactor:      2.1,
		BaselineBytes:     240 * catalogMB,
	})
	register(&Framework{
		Name:              "TFLite",
		Language:          "Python",
		IndustryBacked:    true,
		TrainingFramework: false,
		NoExtraSteps:      false, // quantization-aware conversion, freezing
		Mobile:            FullMobile,
		Usability:         1,
		AddingModels:      1,
		PreDefined:        1,
		Documentation:     1,
		LowLevel:          1,
		Compatibility:     1,
		Opts: Optimizations{
			Quantization:   true,
			PruningExploit: true,
			Fusion:         true,
			HalfPrecision:  true,
		},
		Mode:           graph.Static,
		DispatchWeight: 0.25, // flat interpreter over a frozen flatbuffer
		SessionWeight:  0.5,
		MemoryFactor:   1.1, // arena allocator, no graph duplication
		BaselineBytes:  40 * catalogMB,
	})
	register(&Framework{
		Name:              "Caffe",
		Language:          "C++/Python",
		IndustryBacked:    true,
		TrainingFramework: true,
		NoExtraSteps:      true,
		Mobile:            PartialMobile,
		Usability:         2,
		AddingModels:      3,
		PreDefined:        2,
		Documentation:     1,
		LowLevel:          2,
		Compatibility:     1,
		Opts: Optimizations{
			Quantization: false,
		},
		Mode:           graph.Static,
		DispatchWeight: 0.6, // C++ layer loop, no Python per-op cost
		SessionWeight:  1.0,
		MemoryFactor:   1.6,
		BaselineBytes:  120 * catalogMB,
	})
	register(&Framework{
		Name:              "NCSDK",
		Language:          "Python",
		IndustryBacked:    true,
		TrainingFramework: false,
		NoExtraSteps:      false, // compile + hand-tuning per model (§III-A)
		Mobile:            NoMobile,
		Usability:         1,
		AddingModels:      1,
		PreDefined:        1,
		Documentation:     1,
		LowLevel:          1,
		Compatibility:     1,
		Opts: Optimizations{
			Quantization:  false,
			Fusion:        true,
			HalfPrecision: true, // Myriad 2 natively runs fp16
		},
		Mode:           graph.Static,
		DispatchWeight: 0.3,
		SessionWeight:  2.0, // USB transfer to the stick each inference
		MemoryFactor:   1.2,
		BaselineBytes:  30 * catalogMB,
	})
	register(&Framework{
		Name:              "PyTorch",
		Language:          "Python",
		IndustryBacked:    true,
		TrainingFramework: true,
		NoExtraSteps:      true,
		Mobile:            PartialMobile, // via Caffe2 merge
		Usability:         3,
		AddingModels:      3,
		PreDefined:        3,
		Documentation:     3,
		LowLevel:          1,
		Compatibility:     1,
		Opts: Optimizations{
			DynamicGraph: true,
		},
		Mode:           graph.Dynamic,
		DispatchWeight: 1.6, // define-by-run pays per-op Python dispatch
		SessionWeight:  0.8, // no session machinery; Fig. 5a setup is negligible
		MemoryFactor:   1.0, // frees intermediates eagerly
		BaselineBytes:  140 * catalogMB,
	})
	register(&Framework{
		Name:              "TensorRT",
		Language:          "Python/C++",
		IndustryBacked:    true,
		TrainingFramework: false,
		NoExtraSteps:      true, // imports models with auto-tuning
		Mobile:            NoMobile,
		Usability:         2,
		AddingModels:      2,
		PreDefined:        2,
		Documentation:     1,
		LowLevel:          1,
		Compatibility:     2,
		Opts: Optimizations{
			Quantization:   true,
			MixedPrecision: true,
			DynamicGraph:   true,
			PruningExploit: true,
			Fusion:         true,
			AutoTuning:     true,
			HalfPrecision:  true,
		},
		Mode:           graph.Static, // built engine executes a fixed plan
		DispatchWeight: 0.15,         // fused engine, enqueue-only dispatch
		SessionWeight:  0.4,
		MemoryFactor:   1.2,
		BaselineBytes:  180 * catalogMB,
	})
	register(&Framework{
		Name:              "DarkNet",
		Language:          "C",
		IndustryBacked:    false,
		TrainingFramework: true,
		NoExtraSteps:      true,
		Mobile:            NoMobile,
		Usability:         2,
		AddingModels:      3,
		PreDefined:        2,
		Documentation:     1,
		LowLevel:          3,
		Compatibility:     1,
		Opts:              Optimizations{}, // plain C fp32 loops, no opts
		Mode:              graph.Static,
		DispatchWeight:    0.2,
		SessionWeight:     0.3,
		MemoryFactor:      1.1,
		BaselineBytes:     15 * catalogMB,
	})
	register(&Framework{
		Name:              "TVM",
		Language:          "Python",
		IndustryBacked:    false,
		TrainingFramework: false,
		NoExtraSteps:      false, // VTA bitstream + JIT compilation
		Mobile:            NoMobile,
		Usability:         1,
		AddingModels:      1,
		PreDefined:        1,
		Documentation:     1,
		LowLevel:          3,
		Compatibility:     1,
		Opts: Optimizations{
			Quantization: true, // VTA executes int8 tensor ops
			Fusion:       true,
			AutoTuning:   true,
		},
		Mode:           graph.Static,
		DispatchWeight: 0.8, // RPC to the overlay per operator group
		SessionWeight:  2.5,
		MemoryFactor:   1.3,
		BaselineBytes:  60 * catalogMB,
	})
}
