// Package framework models the paper's nine DNN frameworks (Table II):
// their feature matrix, the graph-optimization pipelines they apply when
// lowering a model for a device, and the model-platform compatibility
// rules of Table V. A Framework does real work here — its Lower method
// runs actual graph passes (fusion, quantization, FP16 casting, freezing)
// from internal/graph, so the latency and memory consequences the paper
// measures emerge from the transformed graph, not from hardcoded factors.
package framework

import (
	"fmt"
	"sort"

	"edgebench/internal/device"
	"edgebench/internal/graph"
	"edgebench/internal/opt"
	"edgebench/internal/tensor"
)

// Stars is the 1-3 rating scale Table II uses for qualitative columns.
type Stars int

func (s Stars) String() string {
	if s < 1 || s > 3 {
		return "?"
	}
	return "***"[:s]
}

// MobileSupport grades mobile-deployment support (Table II).
type MobileSupport int

const (
	// NoMobile means no mobile deployment path.
	NoMobile MobileSupport = iota
	// PartialMobile means partial support (Caffe2).
	PartialMobile
	// FullMobile means first-class support (TFLite).
	FullMobile
)

// Optimizations mirrors Table II's optimization rows.
type Optimizations struct {
	Quantization   bool // INT8 post-training quantization
	MixedPrecision bool // mixed-precision inferencing
	DynamicGraph   bool // define-by-run graphs
	PruningExploit bool // exploits pruned (sparse) weights in compute
	Fusion         bool // kernel fusion (conv+BN+activation)
	AutoTuning     bool // automatic tuning to the hardware platform
	HalfPrecision  bool // FP16 inference
}

// Framework describes one DNN framework and its lowering behaviour.
type Framework struct {
	Name     string
	Language string // main interfacing language

	IndustryBacked    bool
	TrainingFramework bool
	NoExtraSteps      bool // deployment needs no extra preparation
	Mobile            MobileSupport

	// Qualitative Table II ratings.
	Usability     Stars
	AddingModels  Stars
	PreDefined    Stars
	Documentation Stars
	LowLevel      Stars
	Compatibility Stars

	Opts Optimizations

	// Mode is the graph-construction discipline.
	Mode graph.Mode

	// Performance-model knobs consumed by internal/core's calibration:
	// they describe where the framework spends time, not how fast a
	// device is.

	// DispatchWeight scales per-op dispatch cost relative to the device
	// baseline (Python-dispatched dynamic frameworks pay more than a C
	// runtime).
	DispatchWeight float64
	// SessionWeight scales per-inference session overhead (entering the
	// runtime, feeding inputs, fetching outputs).
	SessionWeight float64
	// MemoryFactor multiplies the graph's static memory footprint
	// (runtime bookkeeping, arena slack, graph duplication).
	MemoryFactor float64
	// BaselineBytes is the fixed runtime footprint (library, allocator).
	BaselineBytes int64
}

// Lower produces the device-specific executable graph: it clones the
// model graph, applies the framework's optimization pipeline, and sets
// the execution mode. Quantization and FP16 casting apply only when the
// framework supports them; whether they pay off on the device is the
// latency model's concern (the datatype is on the nodes). Passes run
// through internal/opt's verified wrappers, so a lowering that breaks
// IR invariants panics with the verifier's diagnostics instead of
// reaching the latency model.
func (f *Framework) Lower(g *graph.Graph, dev *device.Device) *graph.Graph {
	out := g.Clone()
	out.Mode = f.Mode

	if f.Opts.Fusion {
		opt.FoldBN(out)
		opt.FuseActivations(out)
	}
	switch {
	case f.Opts.Quantization && f.quantizeOn(dev):
		opt.QuantizeINT8(out)
	case f.Opts.HalfPrecision && dev.SupportsNative(tensor.FP16):
		opt.CastFP16(out)
	}
	if f.Mode == graph.Static {
		opt.EliminateDead(out)
		opt.FreezeGraph(out)
	}
	return out
}

// quantizeOn decides whether this framework actually deploys INT8 on the
// device. TFLite always quantizes (its deployment pipeline is built
// around it, and the EdgeTPU compiler accepts nothing else); other
// frameworks quantize only when the device executes INT8 natively.
func (f *Framework) quantizeOn(dev *device.Device) bool {
	if !f.Opts.Quantization {
		return false
	}
	if f.Name == "TFLite" {
		return true
	}
	return dev.SupportsNative(tensor.INT8)
}

func (f *Framework) String() string { return f.Name }

var registry = map[string]*Framework{}

func register(f *Framework) *Framework {
	if _, dup := registry[f.Name]; dup {
		panic(fmt.Sprintf("framework: duplicate %q", f.Name))
	}
	registry[f.Name] = f
	return f
}

// Get returns the framework registered under name.
func Get(name string) (*Framework, bool) {
	f, ok := registry[name]
	return f, ok
}

// MustGet returns the framework or panics.
func MustGet(name string) *Framework {
	f, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("framework: unknown framework %q", name))
	}
	return f
}

// TableIIOrder lists frameworks in the paper's Table II column order.
var TableIIOrder = []string{
	"TensorFlow", "TFLite", "Caffe", "NCSDK", "PyTorch", "TensorRT",
	"DarkNet", "TVM", "Keras",
}

// All returns every registered framework in Table II order, then extras
// by name.
func All() []*Framework {
	var out []*Framework
	seen := map[string]bool{}
	for _, n := range TableIIOrder {
		if f, ok := registry[n]; ok {
			out = append(out, f)
			seen[n] = true
		}
	}
	var extra []string
	for n := range registry {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		out = append(out, registry[n])
	}
	return out
}
