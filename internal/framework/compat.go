package framework

import "fmt"

// Status classifies a (model, platform) pairing per Table V.
type Status int

const (
	// OK means the model deploys and runs normally.
	OK Status = iota
	// DynamicGraphRequired (Table V "^") means the model exceeds the
	// device's memory under a static graph; only a dynamic-graph
	// framework (PyTorch) runs it, an order of magnitude slower.
	DynamicGraphRequired
	// CodeIncompatible (Table V "O") means base-code incompatibility
	// (SSD's extra image-processing library on RPi).
	CodeIncompatible
	// ConversionBarrier (Table V "4") means the EdgeTPU TFLite compiler
	// rejects the model (quantization-aware-training requirements,
	// §VI-A).
	ConversionBarrier
	// BRAMOverflow (Table V "^^") means the model exceeds the FPGA's
	// BRAM and thrashes host DDR3, slowing execution severely.
	BRAMOverflow
)

func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case DynamicGraphRequired:
		return "dynamic-graph-required"
	case CodeIncompatible:
		return "code-incompatible"
	case ConversionBarrier:
		return "conversion-barrier"
	case BRAMOverflow:
		return "bram-overflow"
	default:
		return "unknown"
	}
}

// Runnable reports whether the pairing executes at all (possibly
// degraded).
func (s Status) Runnable() bool {
	return s == OK || s == DynamicGraphRequired || s == BRAMOverflow
}

// tableV transcribes the paper's compatibility matrix. Missing entries
// default to OK.
var tableV = map[string]map[string]Status{
	"ResNet-18":    {"EdgeTPU": ConversionBarrier},
	"ResNet-50":    {"PYNQ-Z1": BRAMOverflow},
	"MobileNet-v2": {"PYNQ-Z1": BRAMOverflow},
	"Inception-v4": {"PYNQ-Z1": BRAMOverflow},
	"AlexNet": {
		"RPi3":    DynamicGraphRequired,
		"EdgeTPU": ConversionBarrier,
		"PYNQ-Z1": BRAMOverflow,
	},
	"VGG16": {
		"RPi3":    DynamicGraphRequired,
		"PYNQ-Z1": BRAMOverflow,
	},
	"SSD-MobileNet-v1": {
		"RPi3":    CodeIncompatible,
		"PYNQ-Z1": BRAMOverflow,
	},
	"TinyYolo": {
		"EdgeTPU": ConversionBarrier,
		"PYNQ-Z1": BRAMOverflow,
	},
	"C3D": {
		"RPi3":    DynamicGraphRequired,
		"EdgeTPU": ConversionBarrier,
		"PYNQ-Z1": BRAMOverflow,
	},
	// Models beyond Table V's nine rows, filled from §VI context: the
	// remaining large classifiers behave like VGG16 on memory-limited
	// platforms, and nothing beyond CifarNet/ResNet-18 fits PYNQ.
	"VGG19":      {"RPi3": DynamicGraphRequired, "PYNQ-Z1": BRAMOverflow},
	"VGG-S":      {"RPi3": DynamicGraphRequired, "PYNQ-Z1": BRAMOverflow},
	"VGG-S-32":   {"PYNQ-Z1": BRAMOverflow},
	"ResNet-101": {"PYNQ-Z1": BRAMOverflow},
	"Xception":   {"EdgeTPU": ConversionBarrier, "PYNQ-Z1": BRAMOverflow},
	"YOLOv3":     {"EdgeTPU": ConversionBarrier, "PYNQ-Z1": BRAMOverflow},
}

// TableVStatus returns the compatibility status for a model on a
// platform.
func TableVStatus(modelName, deviceName string) Status {
	if row, ok := tableV[modelName]; ok {
		if s, ok := row[deviceName]; ok {
			return s
		}
	}
	return OK
}

// platformFrameworks records which frameworks deploy on each platform
// (Table III "Platform" row): the accelerator platforms are locked to
// their vendor toolchains.
var platformFrameworks = map[string][]string{
	"RPi3": {"TensorFlow", "TFLite", "Keras", "Caffe", "PyTorch", "DarkNet"},
	// The paper's TX2 software stack never deployed TensorRT (Table IV
	// runs TensorRT only on the Jetson Nano); its TX2 numbers are
	// PyTorch/TF/Caffe/DarkNet.
	"JetsonTX2":  {"TensorFlow", "TFLite", "Keras", "Caffe", "PyTorch", "DarkNet"},
	"JetsonNano": {"TensorFlow", "TFLite", "Keras", "Caffe", "PyTorch", "TensorRT", "DarkNet"},
	"EdgeTPU":    {"TFLite"},
	"Movidius":   {"NCSDK"},
	"PYNQ-Z1":    {"TVM"},
	"Xeon":       {"TensorFlow", "TFLite", "Keras", "Caffe", "PyTorch", "DarkNet"},
	"RTX2080":    {"TensorFlow", "Keras", "Caffe", "PyTorch", "TensorRT", "DarkNet"},
	"GTXTitanX":  {"TensorFlow", "Keras", "Caffe", "PyTorch", "TensorRT", "DarkNet"},
	"TitanXp":    {"TensorFlow", "Keras", "Caffe", "PyTorch", "TensorRT", "DarkNet"},
}

// SupportedOn reports whether the framework deploys on the platform.
func (f *Framework) SupportedOn(deviceName string) bool {
	fws, ok := platformFrameworks[deviceName]
	if !ok {
		return false
	}
	for _, n := range fws {
		if n == f.Name {
			return true
		}
	}
	return false
}

// FrameworksFor returns the frameworks deployable on the platform, in
// Table II order.
func FrameworksFor(deviceName string) ([]*Framework, error) {
	names, ok := platformFrameworks[deviceName]
	if !ok {
		return nil, fmt.Errorf("framework: no platform entry for device %q", deviceName)
	}
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	var out []*Framework
	for _, f := range All() {
		if set[f.Name] {
			out = append(out, f)
		}
	}
	return out, nil
}
