// Package trace generates the deterministic synthetic workloads that
// stand in for the paper's live inputs (camera frames, video clips):
// there are no datasets in this offline reproduction, and the paper's
// measurements are input-value independent (§VI-A fn.4 — randomized
// inputs/weights are the standard performance proxy).
package trace

import (
	"fmt"

	"edgebench/internal/stats"
	"edgebench/internal/tensor"
)

// Kind distinguishes workload classes per §II.
type Kind int

const (
	// Image is a single camera frame.
	Image Kind = iota
	// Clip is a short frame sequence for video models.
	Clip
	// Sequence is a [T, F] feature sequence for recurrent models.
	Sequence
)

// Generator produces reproducible synthetic inputs for a model's input
// shape.
type Generator struct {
	Seed int64
}

// Input returns a synthetic tensor for the given input shape: rank-2
// shapes become feature sequences, rank-3 images, rank-4 clips. Values
// are normalized to the [0, 1) range.
func (g Generator) Input(shape []int) (*tensor.Tensor, error) {
	switch len(shape) {
	case 2, 3, 4:
		rng := stats.NewRNG(g.Seed)
		t := tensor.New(shape...)
		for i := range t.Data {
			t.Data[i] = rng.Float32()
		}
		return t, nil
	default:
		return nil, fmt.Errorf("trace: unsupported input rank %d", len(shape))
	}
}

// Stream yields n inputs with per-frame seeds derived from the base
// seed, emulating a camera feed where every frame differs but the
// sequence is reproducible.
func (g Generator) Stream(shape []int, n int) ([]*tensor.Tensor, error) {
	out := make([]*tensor.Tensor, 0, n)
	for i := 0; i < n; i++ {
		t, err := Generator{Seed: g.Seed + int64(i)*7919}.Input(shape)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// KindOf classifies an input shape.
func KindOf(shape []int) Kind {
	switch len(shape) {
	case 4:
		return Clip
	case 2:
		return Sequence
	default:
		return Image
	}
}
