package trace_test

import (
	"testing"

	"edgebench/internal/trace"
)

func TestInputShapesAndRange(t *testing.T) {
	g := trace.Generator{Seed: 1}
	img, err := g.Input([]int{3, 224, 224})
	if err != nil {
		t.Fatal(err)
	}
	if img.Shape.NumElems() != 3*224*224 {
		t.Fatal("image size wrong")
	}
	for _, v := range img.Data[:1000] {
		if v < 0 || v >= 1 {
			t.Fatalf("pixel %v outside [0,1)", v)
		}
	}
	clip, err := g.Input([]int{3, 12, 112, 112})
	if err != nil {
		t.Fatal(err)
	}
	if len(clip.Shape) != 4 {
		t.Fatal("clip rank wrong")
	}
	if _, err := g.Input([]int{10}); err == nil {
		t.Fatal("rank-1 input should error")
	}
	seq, err := g.Input([]int{64, 128})
	if err != nil || len(seq.Shape) != 2 {
		t.Fatalf("sequence input: %v %v", err, seq)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := trace.Generator{Seed: 9}.Input([]int{3, 8, 8})
	b, _ := trace.Generator{Seed: 9}.Input([]int{3, 8, 8})
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed must reproduce the frame")
		}
	}
	c, _ := trace.Generator{Seed: 10}.Input([]int{3, 8, 8})
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestStreamFramesDiffer(t *testing.T) {
	frames, err := trace.Generator{Seed: 4}.Stream([]int{1, 4, 4}, 5)
	if err != nil || len(frames) != 5 {
		t.Fatalf("stream: %v, %d frames", err, len(frames))
	}
	if frames[0].Data[0] == frames[1].Data[0] && frames[0].Data[1] == frames[1].Data[1] {
		t.Fatal("consecutive frames should differ")
	}
	if _, err := (trace.Generator{}).Stream([]int{1}, 2); err == nil {
		t.Fatal("bad shape should propagate error")
	}
}

func TestKindOf(t *testing.T) {
	if trace.KindOf([]int{3, 224, 224}) != trace.Image {
		t.Fatal("rank 3 should be Image")
	}
	if trace.KindOf([]int{3, 12, 112, 112}) != trace.Clip {
		t.Fatal("rank 4 should be Clip")
	}
	if trace.KindOf([]int{64, 128}) != trace.Sequence {
		t.Fatal("rank 2 should be Sequence")
	}
}
