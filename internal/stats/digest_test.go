package stats

import (
	"math"
	"testing"
)

func TestDigestExactBelowCapacity(t *testing.T) {
	d := NewDigest(100, 1)
	for i := 1; i <= 50; i++ {
		d.Add(float64(i))
	}
	if d.Count() != 50 {
		t.Fatalf("count %d, want 50", d.Count())
	}
	if got := d.Quantile(0.5); math.Abs(got-25.5) > 1e-9 {
		t.Errorf("median %v, want 25.5", got)
	}
	if got := d.Quantile(0); got != 1 {
		t.Errorf("q0 %v, want 1", got)
	}
	if got := d.Quantile(1); got != 50 {
		t.Errorf("q1 %v, want 50", got)
	}
}

func TestDigestEmpty(t *testing.T) {
	d := NewDigest(0, 1)
	if !math.IsNaN(d.Quantile(0.5)) {
		t.Error("empty digest should yield NaN quantiles")
	}
}

// TestDigestConvergesAboveCapacity streams far more samples than the
// reservoir holds from a uniform distribution; the quantile estimates
// must land near the true values.
func TestDigestConvergesAboveCapacity(t *testing.T) {
	d := NewDigest(512, 7)
	rng := NewRNG(3)
	const n = 100000
	for i := 0; i < n; i++ {
		d.Add(rng.Float64() * 100)
	}
	if d.Count() != n {
		t.Fatalf("count %d, want %d", d.Count(), n)
	}
	for _, c := range []struct{ q, want, tol float64 }{
		{0.5, 50, 8},
		{0.95, 95, 5},
		{0.99, 99, 3},
	} {
		if got := d.Quantile(c.q); math.Abs(got-c.want) > c.tol {
			t.Errorf("q%.2f = %.2f, want %.0f +/- %.0f", c.q, got, c.want, c.tol)
		}
	}
}

// TestDigestDeterministic pins the seeded replacement sequence: two
// digests fed the same stream must agree exactly.
func TestDigestDeterministic(t *testing.T) {
	a, b := NewDigest(64, 9), NewDigest(64, 9)
	rng := NewRNG(4)
	for i := 0; i < 10000; i++ {
		x := rng.NormFloat64()
		a.Add(x)
		b.Add(x)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Fatalf("same-seed digests disagree at q=%v", q)
		}
	}
}

func TestDigestReset(t *testing.T) {
	d := NewDigest(16, 1)
	d.Add(5)
	d.Reset()
	if d.Count() != 0 || !math.IsNaN(d.Quantile(0.5)) {
		t.Error("reset digest should be empty")
	}
}
