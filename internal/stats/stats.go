// Package stats provides the small numerical toolkit shared across the
// edgebench simulator: summary statistics, geometric means, linear fits,
// and a deterministic random source.
//
// All functions operate on float64 slices and are safe for empty input
// unless documented otherwise.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Sum returns the sum of xs using Kahan compensation so long timelines of
// tiny per-layer durations do not lose precision.
func Sum(xs []float64) float64 {
	var sum, c float64
	for _, x := range xs {
		y := x - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values yield NaN, mirroring the undefined mathematical case.
// Empty input returns 0.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs. It panics on empty input because
// there is no meaningful zero value.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It panics on empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary bundles the descriptive statistics the harness reports for a
// batch of repeated inference measurements.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary for xs. Empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}

// LinearFit returns the least-squares slope and intercept of y against x.
// The slices must have equal length of at least two; otherwise it panics.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: LinearFit needs two equal-length samples")
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return 0, my
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}

// Ratio returns a/b, guarding the b==0 case with +Inf (a>0), -Inf (a<0)
// or NaN (a==0) so callers can render "n/a" rather than crash.
func Ratio(a, b float64) float64 {
	if b == 0 {
		switch {
		case a > 0:
			return math.Inf(1)
		case a < 0:
			return math.Inf(-1)
		default:
			return math.NaN()
		}
	}
	return a / b
}
