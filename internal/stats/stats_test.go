package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestSumKahan(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 0.1
	}
	if got := Sum(xs); !almostEq(got, 100, 1e-9) {
		t.Fatalf("Sum = %v, want 100", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !almostEq(got, 10, 1e-12) {
		t.Fatalf("GeoMean = %v, want 10", got)
	}
	if got := GeoMean([]float64{2, 8}); !almostEq(got, 4, 1e-12) {
		t.Fatalf("GeoMean = %v, want 4", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("GeoMean with negative input should be NaN")
	}
	if got := GeoMean(nil); got != 0 {
		t.Fatalf("GeoMean(nil) = %v, want 0", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Fatalf("Variance single = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Min(empty) should panic")
		}
	}()
	Min(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {-5, 1}, {105, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{10, 20}, 50); !almostEq(got, 15, 1e-12) {
		t.Errorf("interpolated P50 = %v, want 15", got)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.Median != 2 {
		t.Fatalf("Summarize = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("Summarize(nil) should be zero")
	}
	if s.String() == "" {
		t.Fatal("String should be non-empty")
	}
}

func TestLinearFit(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := LinearFit(x, y)
	if !almostEq(slope, 2, 1e-12) || !almostEq(intercept, 1, 1e-12) {
		t.Fatalf("fit = %v,%v want 2,1", slope, intercept)
	}
	// Degenerate x: slope 0, intercept mean(y).
	slope, intercept = LinearFit([]float64{5, 5}, []float64{1, 3})
	if slope != 0 || intercept != 2 {
		t.Fatalf("degenerate fit = %v,%v want 0,2", slope, intercept)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("Ratio(6,3) != 2")
	}
	if !math.IsInf(Ratio(1, 0), 1) || !math.IsInf(Ratio(-1, 0), -1) {
		t.Fatal("Ratio sign of infinity wrong")
	}
	if !math.IsNaN(Ratio(0, 0)) {
		t.Fatal("Ratio(0,0) should be NaN")
	}
}

func TestNewRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 16; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce same stream")
		}
	}
	if GaussianNoise(NewRNG(1), 0) != 0 {
		t.Fatal("zero sigma must produce zero noise")
	}
}

// Property: mean is bounded by min and max.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return m >= Min(clean)-1e-6 && m <= Max(clean)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: geomean(xs) <= mean(xs) for positive xs (AM-GM inequality).
func TestAMGMProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0:0]
		for _, x := range raw {
			v := math.Abs(x)
			if v > 1e-6 && v < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		return GeoMean(xs) <= Mean(xs)*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
