package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Digest is a bounded-memory streaming quantile estimator: a classic
// reservoir sampler (Vitter's algorithm R) over a deterministic seeded
// source. It exists for long-running observation streams — a serving
// process recording one latency per request — where storing every sample
// is unacceptable but tail quantiles must stay queryable at any moment.
// Below capacity the estimate is exact; above it, each seen value has
// equal probability of being represented, so quantiles converge to the
// stream's distribution.
//
// Digest is not safe for concurrent use; callers that share one across
// goroutines (e.g. a metrics registry) must serialize access.
type Digest struct {
	capacity int
	seen     int64
	samples  []float64
	rng      *rand.Rand
	// sorted caches the ascending view between Adds so repeated
	// Quantile calls (a /metrics scrape asks for several) sort once.
	sorted []float64
}

// DefaultDigestCap is the reservoir size used when NewDigest is given a
// non-positive capacity: large enough for stable P99 estimates, small
// enough to be negligible per metric.
const DefaultDigestCap = 1024

// NewDigest returns an empty digest holding at most capacity samples
// (<= 0 means DefaultDigestCap). The seed fixes the replacement
// sequence, keeping scraped quantiles reproducible run to run.
func NewDigest(capacity int, seed int64) *Digest {
	if capacity <= 0 {
		capacity = DefaultDigestCap
	}
	return &Digest{
		capacity: capacity,
		samples:  make([]float64, 0, capacity),
		rng:      NewRNG(seed),
	}
}

// Add folds one observation into the reservoir.
func (d *Digest) Add(x float64) {
	d.seen++
	d.sorted = nil
	if len(d.samples) < d.capacity {
		d.samples = append(d.samples, x)
		return
	}
	// Replace a uniformly random slot with probability capacity/seen so
	// every observation so far is retained with equal probability.
	if j := d.rng.Int63n(d.seen); j < int64(d.capacity) {
		d.samples[j] = x
	}
}

// Count returns the number of observations seen (not retained).
func (d *Digest) Count() int64 { return d.seen }

// Quantile returns the q-th quantile (q in [0,1]) of the retained
// sample, or NaN when nothing has been observed.
func (d *Digest) Quantile(q float64) float64 {
	if len(d.samples) == 0 {
		return math.NaN()
	}
	if d.sorted == nil {
		d.sorted = append([]float64(nil), d.samples...)
		sort.Float64s(d.sorted)
	}
	return Percentile(d.sorted, q*100)
}

// Reset discards all state, keeping capacity and the RNG position.
func (d *Digest) Reset() {
	d.seen = 0
	d.samples = d.samples[:0]
	d.sorted = nil
}
