package stats

import "math/rand"

// NewRNG returns a deterministic random source for the given seed.
// Every stochastic component of the simulator (weight init, measurement
// noise, workload generation) draws from an explicitly seeded RNG so
// experiments are reproducible run to run.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// GaussianNoise returns a sample from N(0, sigma) using r.
func GaussianNoise(r *rand.Rand, sigma float64) float64 {
	return r.NormFloat64() * sigma
}
