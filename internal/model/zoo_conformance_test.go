package model_test

import (
	"testing"

	"edgebench/internal/device"
	"edgebench/internal/framework"
	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/verify"
)

// TestZooConformance builds every registered model — Table I plus the
// extensions — and requires the structural graph to verify with zero
// diagnostics. The zoo is the input to every experiment; a model that
// fails any verifier rule would poison every measurement that uses it.
func TestZooConformance(t *testing.T) {
	specs := model.AllWithExtensions()
	if len(specs) == 0 {
		t.Fatal("empty model zoo")
	}
	for _, spec := range specs {
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.Build(nn.Options{})
			if diags := verify.Check(g); len(diags) != 0 {
				t.Fatalf("%s: %d diagnostics: %v", spec.Name, len(diags), diags)
			}
		})
	}
}

// TestZooLoweredConformance lowers every model through every framework's
// real optimization pipeline for a representative device and verifies
// the result. This is the graph a Session prices, so pass bugs that
// only trigger on a particular model topology surface here.
func TestZooLoweredConformance(t *testing.T) {
	dev, ok := device.Get("JetsonTX2")
	if !ok {
		devs := device.All()
		if len(devs) == 0 {
			t.Fatal("empty device registry")
		}
		dev = devs[0]
	}
	for _, spec := range model.AllWithExtensions() {
		g := spec.Build(nn.Options{})
		for _, fw := range framework.All() {
			lowered := fw.Lower(g.Clone(), dev)
			if err := verify.Err(verify.Check(lowered)); err != nil {
				t.Errorf("%s lowered by %s: %v", spec.Name, fw.Name, err)
			}
		}
	}
}

// TestZooPassConformance applies each standalone optimization pass to
// every model's structural graph under verify.Checked, so an invariant
// break names both the model and the pass.
func TestZooPassConformance(t *testing.T) {
	passes := []struct {
		name string
		pass graph.Pass
	}{
		{"FoldBN", graph.FoldBN},
		{"FuseActivations", graph.FuseActivations},
		{"EliminateDead", graph.EliminateDead},
		{"QuantizeINT8", graph.QuantizeINT8},
		{"CastFP16", graph.CastFP16},
	}
	for _, spec := range model.AllWithExtensions() {
		g := spec.Build(nn.Options{})
		for _, p := range passes {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s + %s: %v", spec.Name, p.name, r)
					}
				}()
				verify.Checked(p.name, p.pass)(g.Clone())
			}()
		}
	}
}
