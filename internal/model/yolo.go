package model

import (
	"fmt"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
)

// dbl appends the DarkNet conv building block: conv + BN + LeakyReLU(0.1).
func dbl(b *nn.Builder, name string, cout, k, stride int) *graph.Node {
	pad := 0
	if k == 3 {
		pad = 1
	}
	b.Conv2D(name, cout, k, stride, pad, false)
	b.BatchNorm(name + "_bn")
	return b.LeakyReLU(name+"_leaky", 0.1)
}

// darkResidual appends a Darknet-53 residual unit: 1x1 squeeze to half
// the channels, 3x3 restore, identity add.
func darkResidual(b *nn.Builder, name string, channels int) *graph.Node {
	in := b.Current()
	dbl(b, name+"_1", channels/2, 1, 1)
	dbl(b, name+"_2", channels, 3, 1)
	return b.Add(name+"_add", in, b.Current())
}

// buildYOLOv3 constructs YOLOv3 on the Darknet-53 backbone with three
// detection scales, at the published 320x320 configuration whose 2xMAC
// count is Table I's 38.97 GFLOP.
func buildYOLOv3(opts nn.Options) *graph.Graph {
	b := nn.NewBuilder("yolov3", opts, 3, 320, 320)
	dbl(b, "conv0", 32, 3, 1)

	stage := func(name string, channels, blocks int) *graph.Node {
		dbl(b, name+"_down", channels, 3, 2)
		for i := 0; i < blocks; i++ {
			darkResidual(b, fmt.Sprintf("%s_res%d", name, i+1), channels)
		}
		return b.Current()
	}
	stage("s1", 64, 1)
	stage("s2", 128, 2)
	route36 := stage("s3", 256, 8) // 40x40, 256ch
	route61 := stage("s4", 512, 8) // 20x20, 512ch
	stage("s5", 1024, 4)           // 10x10, 1024ch

	// Detection head helper: the 5-conv neck, then the 3x3 + linear 1x1
	// detection pair (255 = 3 anchors x (80 classes + 5)).
	neck := func(name string, filters int) *graph.Node {
		dbl(b, name+"_1", filters, 1, 1)
		dbl(b, name+"_2", filters*2, 3, 1)
		dbl(b, name+"_3", filters, 1, 1)
		dbl(b, name+"_4", filters*2, 3, 1)
		return dbl(b, name+"_5", filters, 1, 1)
	}
	detect := func(name string, filters int) *graph.Node {
		dbl(b, name+"_conv", filters*2, 3, 1)
		return b.Conv2D(name+"_out", 255, 1, 1, 0, true)
	}

	n1 := neck("neck1", 512)
	d1 := detect("detect1", 512)

	dbl(b.From(n1), "up1_conv", 256, 1, 1)
	b.Upsample("up1", 2)
	b.Concat("route1", b.Current(), route61)
	n2 := neck("neck2", 256)
	d2 := detect("detect2", 256)

	dbl(b.From(n2), "up2_conv", 128, 1, 1)
	b.Upsample("up2", 2)
	b.Concat("route2", b.Current(), route36)
	neck("neck3", 128)
	d3 := detect("detect3", 128)

	b.MarkOutput(d1).MarkOutput(d2)
	return b.From(d3).Build()
}

// buildTinyYolo constructs Tiny-YOLO (the tiny-yolo-voc DarkNet network:
// nine convolutions with five 2x2 pools) at 416x416. Its 15.87 M
// parameters match Table I exactly; the paper's 5.56 GFLOP entry tracks
// the tiny-yolov3 tool output, so our 2xMAC count runs ~25% above it
// (documented in EXPERIMENTS.md). DarkNet's stride-1 boundary pool is
// emulated with a same-padded 3x3 stride-1 pool.
func buildTinyYolo(opts nn.Options) *graph.Graph {
	b := nn.NewBuilder("tinyyolo", opts, 3, 416, 416)
	widths := []int{16, 32, 64, 128, 256}
	for i, w := range widths {
		dbl(b, fmt.Sprintf("conv%d", i+1), w, 3, 1)
		b.MaxPool(fmt.Sprintf("pool%d", i+1), 2, 2, 0)
	}
	dbl(b, "conv6", 512, 3, 1)
	b.MaxPool("pool6", 3, 1, 1) // stride-1 "same" pool at 13x13
	dbl(b, "conv7", 1024, 3, 1)
	dbl(b, "conv8", 1024, 3, 1)
	b.Conv2D("detect", 125, 1, 1, 0, true) // 5 anchors x (20 classes + 5)
	return b.Build()
}

func init() {
	register(&Spec{
		Name:           "YOLOv3",
		InputShape:     []int{3, 320, 320},
		PaperGFLOP:     38.97,
		PaperParamsM:   62.00,
		FLOPConvention: 2,
		Class:          Video,
		Notes:          "DarkNet convention: FLOP = 2 x MAC; 320x320 input reproduces the published 38.97 GFLOP.",
		build:          func(o nn.Options) *graph.Graph { return buildYOLOv3(o) },
	})
	register(&Spec{
		Name:           "TinyYolo",
		InputShape:     []int{3, 416, 416},
		PaperGFLOP:     5.56,
		PaperParamsM:   15.87,
		FLOPConvention: 2,
		Class:          Video,
		Notes:          "Parameters match tiny-yolo-voc exactly; the paper's FLOP entry appears sourced from tiny-yolov3, so our 2xMAC count is ~25% higher.",
		build:          func(o nn.Options) *graph.Graph { return buildTinyYolo(o) },
	})
}
