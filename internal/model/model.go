// Package model defines the 16-network CNN zoo of the paper's Table I:
// architecture-faithful, layer-by-layer graph builders whose FLOP and
// parameter totals reproduce the paper's numbers. Models build in
// structural mode by default (no weight data — Table I's largest model
// carries 143 M parameters) and materialize real weights on request for
// functional execution.
package model

import (
	"fmt"
	"sort"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
)

// Class groups models by task, mirroring §II.
type Class int

const (
	// Recognition models classify a single image.
	Recognition Class = iota
	// Detection models localize objects (SSD).
	Detection
	// Video models process frame sequences (YOLO as the paper groups it,
	// and C3D).
	Video
)

func (c Class) String() string {
	switch c {
	case Detection:
		return "detection"
	case Video:
		return "video"
	default:
		return "recognition"
	}
}

// Spec describes one Table I model: how to build it and what the paper
// reports for it.
type Spec struct {
	// Name is the paper's model name (registry key).
	Name string
	// InputShape is the tensor shape the model consumes.
	InputShape []int
	// PaperGFLOP is Table I's FLOP (giga) column for one inference.
	PaperGFLOP float64
	// PaperParamsM is Table I's parameter count in millions.
	PaperParamsM float64
	// FLOPConvention converts our MAC count into the paper's FLOP
	// convention: 1 for the Keras/TF-sourced models (FLOP == MAC), 2 for
	// the DarkNet-sourced models (FLOP == 2 x MAC), as reverse-engineered
	// from Table I (e.g. YOLOv3's 38.97 matches the published 2xMAC
	// number at 320x320).
	FLOPConvention float64
	// Class is the task family.
	Class Class
	// Notes documents deliberate deviations from canonical definitions
	// made to match the paper's (FLOP, params) pair.
	Notes string

	// Extension marks models beyond the paper's Table I (its declared
	// future work, e.g. recurrent networks). They are excluded from
	// Table I artifacts but usable everywhere else.
	Extension bool

	build func(opts nn.Options) *graph.Graph
}

// Build constructs the model graph. Structural by default; set
// opts.Materialize for numeric execution.
func (s *Spec) Build(opts nn.Options) *graph.Graph {
	g := s.build(opts)
	g.Name = s.Name
	return g
}

// GFLOPs returns the model's arithmetic work in the paper's FLOP
// convention (for Table I comparison).
func (s *Spec) GFLOPs() float64 {
	g := s.Build(nn.Options{})
	return g.FLOPs() * s.FLOPConvention / 1e9
}

// ParamsM returns the model's parameter count in millions.
func (s *Spec) ParamsM() float64 {
	g := s.Build(nn.Options{})
	return float64(g.Params()) / 1e6
}

// FLOPPerParam returns the compute-intensity metric of Table I /
// Figure 1.
func (s *Spec) FLOPPerParam() float64 {
	g := s.Build(nn.Options{})
	return g.FLOPs() * s.FLOPConvention / float64(g.Params())
}

var registry = map[string]*Spec{}

func register(s *Spec) *Spec {
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("model: duplicate registration %q", s.Name))
	}
	if s.FLOPConvention == 0 {
		s.FLOPConvention = 1
	}
	registry[s.Name] = s
	return s
}

// Get returns the spec registered under name.
func Get(name string) (*Spec, bool) {
	s, ok := registry[name]
	return s, ok
}

// MustGet returns the spec or panics — for experiment tables whose model
// lists are compile-time constants.
func MustGet(name string) *Spec {
	s, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("model: unknown model %q", name))
	}
	return s
}

// TableIOrder lists the models in the paper's Table I row order.
var TableIOrder = []string{
	"ResNet-18", "ResNet-50", "ResNet-101", "Xception", "MobileNet-v2",
	"Inception-v4", "AlexNet", "VGG16", "VGG19", "VGG-S-32", "VGG-S",
	"CifarNet", "SSD-MobileNet-v1", "YOLOv3", "TinyYolo", "C3D",
}

// All returns the paper's Table I specs in row order.
func All() []*Spec {
	var out []*Spec
	for _, name := range TableIOrder {
		if s, ok := registry[name]; ok {
			out = append(out, s)
		}
	}
	return out
}

// AllWithExtensions returns the Table I specs followed by the extension
// models (recurrent networks, §II future work) sorted by name.
func AllWithExtensions() []*Spec {
	out := All()
	seen := map[string]bool{}
	for _, s := range out {
		seen[s.Name] = true
	}
	var extra []string
	for name := range registry {
		if !seen[name] {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		out = append(out, registry[name])
	}
	return out
}

// Names returns all registered model names in Table I order.
func Names() []string {
	specs := All()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}
