//go:build race

package model_test

// raceEnabled reports whether this test binary was built with the race
// detector; the execution-equivalence suite shrinks its compute budget
// accordingly (instrumented numeric kernels run ~10x slower).
const raceEnabled = true
