package model

import (
	"fmt"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
)

// invertedResidual appends a MobileNet-v2 inverted-residual block:
// 1x1 expand (ratio t), 3x3 depthwise (stride s), 1x1 linear project.
// A residual connection joins input and output when shapes permit.
func invertedResidual(b *nn.Builder, name string, cout, stride, expand int) *graph.Node {
	in := b.Current()
	cin := in.OutShape[0]
	hidden := cin * expand
	if expand != 1 {
		b.Conv2D(name+"_expand", hidden, 1, 1, 0, false)
		b.BatchNorm(name + "_expand_bn")
		b.ReLU6(name + "_expand_relu6")
	}
	b.DepthwiseConv2D(name+"_dw", 3, stride, 1, false)
	b.BatchNorm(name + "_dw_bn")
	b.ReLU6(name + "_dw_relu6")
	b.Conv2D(name+"_project", cout, 1, 1, 0, false)
	out := b.BatchNorm(name + "_project_bn")
	if stride == 1 && cin == cout {
		out = b.Add(name+"_res", in, out)
	}
	return out
}

// buildMobileNetV2 constructs the standard 1.0-width MobileNet-v2 at
// 224x224 (Sandler et al. 2018).
func buildMobileNetV2(opts nn.Options) *graph.Graph {
	b := nn.NewBuilder("mobilenet-v2", opts, 3, 224, 224)
	b.Conv2D("stem", 32, 3, 2, 1, false)
	b.BatchNorm("stem_bn")
	b.ReLU6("stem_relu6")
	// (expand t, channels c, repeats n, stride s) per the paper.
	cfg := []struct{ t, c, n, s int }{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	blk := 0
	for _, c := range cfg {
		for i := 0; i < c.n; i++ {
			stride := 1
			if i == 0 {
				stride = c.s
			}
			invertedResidual(b, fmt.Sprintf("block%d", blk), c.c, stride, c.t)
			blk++
		}
	}
	b.Conv2D("head", 1280, 1, 1, 0, false)
	b.BatchNorm("head_bn")
	b.ReLU6("head_relu6")
	b.GlobalAvgPool("gap")
	b.Dense("fc", 1000, true)
	b.Softmax("prob")
	return b.Build()
}

// mobileNetV1Trunk appends the MobileNet-v1 depthwise-separable trunk up
// to and including the conv13 (1024-channel) stage, returning the conv11
// (512-channel) node for SSD's first detection head.
func mobileNetV1Trunk(b *nn.Builder) (conv11 *graph.Node) {
	dwsep := func(name string, cout, stride int) *graph.Node {
		b.DepthwiseConv2D(name+"_dw", 3, stride, 1, false)
		b.BatchNorm(name + "_dw_bn")
		b.ReLU6(name + "_dw_relu")
		b.Conv2D(name+"_pw", cout, 1, 1, 0, false)
		b.BatchNorm(name + "_pw_bn")
		return b.ReLU6(name + "_pw_relu")
	}
	b.Conv2D("stem", 32, 3, 2, 1, false)
	b.BatchNorm("stem_bn")
	b.ReLU6("stem_relu")
	dwsep("c1", 64, 1)
	dwsep("c2", 128, 2)
	dwsep("c3", 128, 1)
	dwsep("c4", 256, 2)
	dwsep("c5", 256, 1)
	dwsep("c6", 512, 2)
	for i := 7; i <= 10; i++ {
		dwsep(fmt.Sprintf("c%d", i), 512, 1)
	}
	conv11 = dwsep("c11", 512, 1)
	dwsep("c12", 1024, 2)
	dwsep("c13", 1024, 1)
	return conv11
}

func init() {
	register(&Spec{
		Name:         "MobileNet-v2",
		InputShape:   []int{3, 224, 224},
		PaperGFLOP:   0.32,
		PaperParamsM: 3.53,
		Class:        Recognition,
		build:        func(o nn.Options) *graph.Graph { return buildMobileNetV2(o) },
	})
}
