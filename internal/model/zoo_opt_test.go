package model_test

import (
	"math"
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/opt"
	"edgebench/internal/tensor"
)

// TestZooOptStructural runs the O2 pass pipeline over every zoo model's
// structural graph: optimization must pass every verify gate, never grow
// the graph, and leave the MAC count untouched — MACs count contraction
// multiplies only, so fusing a BN into a conv epilogue or deleting an
// identity node must not move them. Structural graphs are cheap, so this
// covers the whole zoo unconditionally.
func TestZooOptStructural(t *testing.T) {
	for _, spec := range model.AllWithExtensions() {
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.Build(nn.Options{})
			before := len(g.Nodes)
			macs := g.TotalCost().MACs
			rep, err := opt.Optimize(g, opt.O2)
			if err != nil {
				t.Fatalf("O2: %v", err)
			}
			if len(g.Nodes) > before {
				t.Fatalf("O2 grew the graph %d -> %d nodes", before, len(g.Nodes))
			}
			if got := g.TotalCost().MACs; got != macs {
				t.Fatalf("O2 changed MACs %v -> %v", macs, got)
			}
			if rep.NodesBefore != before || rep.NodesAfter != len(g.Nodes) {
				t.Fatalf("report node counts %d -> %d disagree with graph %d -> %d",
					rep.NodesBefore, rep.NodesAfter, before, len(g.Nodes))
			}
		})
	}
}

// TestZooOptEquivalence is the zoo-wide bit-equivalence gate for the
// graph compiler: for every materialized model under the compute budget,
// the O2-optimized graph (pattern fusion + cleanups, running through the
// fused FP32 kernels under the pooled executor) must produce bitwise
// identical outputs to the unoptimized graph under plain sequential
// execution. Under -race this doubles as the fused kernels' data-race
// gate over real model topologies.
func TestZooOptEquivalence(t *testing.T) {
	budget := execBudgetGF()
	if testing.Short() {
		budget = 0.05
	}
	ran, fusedAnywhere := 0, false
	for _, spec := range model.AllWithExtensions() {
		if gf := spec.GFLOPs(); gf > budget {
			t.Logf("skipping %s: %.2f GFLOPs over the %.2f budget", spec.Name, gf, budget)
			continue
		}
		ran++
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.Build(nn.Options{Materialize: true, Seed: 99})
			in := tensor.New(g.Input.OutShape...)
			for i := range in.Data {
				in.Data[i] = float32(math.Sin(float64(i)*0.7)) * 0.5
			}
			// UseGEMMConv on both sides: O1+ pre-packs conv weights
			// zoo-wide, which pins the optimized graph to the GEMM
			// lowering, and the bitwise contract holds relative to that
			// same lowering (direct conv accumulates in another order).
			want, err := (&graph.Executor{UseGEMMConv: true}).Run(g, in)
			if err != nil {
				t.Fatalf("unoptimized: %v", err)
			}
			og := g.Clone()
			rep, err := opt.Optimize(og, opt.O2)
			if err != nil {
				t.Fatalf("O2: %v", err)
			}
			ex := &graph.Executor{UseGEMMConv: true, Pooled: og.Mode == graph.Static, Parallel: true, Workers: 2}
			for pass := 0; pass < 2; pass++ { // twice: arena recycling over fused dispatches
				got, err := ex.Run(og, in)
				if err != nil {
					t.Fatalf("O2 pass %d: %v", pass, err)
				}
				if !got.Shape.Equal(want.Shape) {
					t.Fatalf("O2 pass %d: shape %v, want %v", pass, got.Shape, want.Shape)
				}
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						t.Fatalf("O2 pass %d: out[%d] = %v, want %v (bitwise mismatch)",
							pass, i, got.Data[i], want.Data[i])
					}
				}
			}
			if rep.TotalRewrites() > 0 {
				_, _, fz := ex.DispatchCounts()
				if fz == 0 {
					t.Fatalf("%s: O2 rewrote %d chains but dispatched no fused kernels",
						spec.Name, rep.TotalRewrites())
				}
				fusedAnywhere = true
			}
		})
	}
	if ran == 0 {
		t.Fatal("compute budget excluded every zoo model")
	}
	if !fusedAnywhere {
		t.Fatal("no model under the budget exercised a fused kernel")
	}
}
