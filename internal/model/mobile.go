package model

import (
	"fmt"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
)

// Mobile-specific extension models from the paper's related-work survey
// (§VIII, second group: "mobile-specific models... handcraft efficient
// operations to reduce the number of parameters [SqueezeNet] or use
// resource-efficient connections [ShuffleNet]"). Registered as
// extensions (not Table I).

// fireModule appends a SqueezeNet fire module: 1x1 squeeze, then
// parallel 1x1 and 3x3 expands, concatenated.
func fireModule(b *nn.Builder, name string, squeeze, expand int) *graph.Node {
	b.Conv2D(name+"_sq", squeeze, 1, 1, 0, true)
	sq := b.ReLU(name + "_sq_relu")
	b.Conv2D(name+"_e1", expand, 1, 1, 0, true)
	e1 := b.ReLU(name + "_e1_relu")
	b.From(sq).Conv2D(name+"_e3", expand, 3, 1, 1, true)
	e3 := b.ReLU(name + "_e3_relu")
	return b.Concat(name+"_cat", e1, e3)
}

// buildSqueezeNet constructs SqueezeNet v1.1 (Iandola et al.:
// "AlexNet-level accuracy with 50x fewer parameters").
func buildSqueezeNet(opts nn.Options) *graph.Graph {
	b := nn.NewBuilder("squeezenet", opts, 3, 224, 224)
	b.Conv2D("conv1", 64, 3, 2, 0, true)
	b.ReLU("relu1")
	b.MaxPool("pool1", 3, 2, 0)
	fireModule(b, "fire2", 16, 64)
	fireModule(b, "fire3", 16, 64)
	b.MaxPool("pool3", 3, 2, 0)
	fireModule(b, "fire4", 32, 128)
	fireModule(b, "fire5", 32, 128)
	b.MaxPool("pool5", 3, 2, 0)
	fireModule(b, "fire6", 48, 192)
	fireModule(b, "fire7", 48, 192)
	fireModule(b, "fire8", 64, 256)
	fireModule(b, "fire9", 64, 256)
	b.Conv2D("conv10", 1000, 1, 1, 0, true)
	b.ReLU("relu10")
	b.GlobalAvgPool("gap")
	b.Softmax("prob")
	return b.Build()
}

// shuffleUnit appends a ShuffleNet v1 unit: grouped 1x1 reduce, channel
// shuffle, 3x3 depthwise (optionally strided), grouped 1x1 expand, with
// an identity-add shortcut (stride 1) or avg-pool-concat shortcut
// (stride 2).
func shuffleUnit(b *nn.Builder, name string, out, groups, stride int, firstOfStage bool) *graph.Node {
	in := b.Current()
	cin := in.OutShape[0]
	branchOut := out
	if stride == 2 {
		branchOut = out - cin // concat shortcut supplies the rest
	}
	mid := out / 4
	// The paper applies no grouping on the very first pointwise layer
	// (stage 2's entry) because its input is tiny.
	g1 := groups
	if firstOfStage && cin < 48 {
		g1 = 1
	}
	b.Conv2DG(name+"_pw1", mid, 1, 1, 0, g1, false)
	b.BatchNorm(name + "_pw1_bn")
	b.ReLU(name + "_pw1_relu")
	if g1 > 1 {
		b.Shuffle(name+"_shuffle", g1)
	}
	b.DepthwiseConv2D(name+"_dw", 3, stride, 1, false)
	b.BatchNorm(name + "_dw_bn")
	b.Conv2DG(name+"_pw2", branchOut, 1, 1, 0, groups, false)
	branch := b.BatchNorm(name + "_pw2_bn")

	if stride == 1 {
		if cin != out {
			panic(fmt.Sprintf("model: shuffle unit %s: stride-1 residual needs cin==out (%d vs %d)", name, cin, out))
		}
		b.Add(name+"_add", in, branch)
	} else {
		short := b.From(in).AvgPool(name+"_short", 3, 2, 1)
		b.Concat(name+"_cat", short, branch)
	}
	return b.ReLU(name + "_out")
}

// buildShuffleNet constructs ShuffleNet v1 at 1x width with 3 groups
// (Zhang et al. 2018).
func buildShuffleNet(opts nn.Options) *graph.Graph {
	const groups = 3
	b := nn.NewBuilder("shufflenet", opts, 3, 224, 224)
	b.Conv2D("conv1", 24, 3, 2, 1, false)
	b.BatchNorm("conv1_bn")
	b.ReLU("conv1_relu")
	b.MaxPool("pool1", 3, 2, 1)
	stages := []struct{ out, repeat int }{
		{240, 3}, {480, 7}, {960, 3},
	}
	for si, st := range stages {
		name := fmt.Sprintf("s%d", si+2)
		shuffleUnit(b, name+"_u0", st.out, groups, 2, si == 0)
		for u := 1; u <= st.repeat; u++ {
			shuffleUnit(b, fmt.Sprintf("%s_u%d", name, u), st.out, groups, 1, false)
		}
	}
	b.GlobalAvgPool("gap")
	b.Dense("fc", 1000, true)
	b.Softmax("prob")
	return b.Build()
}

func init() {
	register(&Spec{
		Name:         "SqueezeNet",
		InputShape:   []int{3, 224, 224},
		PaperGFLOP:   0.357, // this implementation's own totals (extension)
		PaperParamsM: 1.235,
		Class:        Recognition,
		Extension:    true,
		Notes:        "Extension (§VIII mobile-specific models): SqueezeNet v1.1.",
		build:        func(o nn.Options) *graph.Graph { return buildSqueezeNet(o) },
	})
	register(&Spec{
		Name:         "ShuffleNet",
		InputShape:   []int{3, 224, 224},
		PaperGFLOP:   0.149,
		PaperParamsM: 1.890,
		Class:        Recognition,
		Extension:    true,
		Notes:        "Extension (§VIII mobile-specific models): ShuffleNet v1, 1x width, 3 groups.",
		build:        func(o nn.Options) *graph.Graph { return buildShuffleNet(o) },
	})
}
