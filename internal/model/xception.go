package model

import (
	"fmt"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
)

// xsep appends a Keras-style SeparableConv2D + BN: depthwise 3x3 (same)
// then pointwise 1x1, one batch-norm after the pair, no intermediate
// activation.
func xsep(b *nn.Builder, name string, cout int) *graph.Node {
	b.DepthwiseConv2D(name+"_dw", 3, 1, 1, false)
	b.Conv2D(name+"_pw", cout, 1, 1, 0, false)
	return b.BatchNorm(name + "_bn")
}

// xentryBlock appends one Xception entry-flow module: optional leading
// ReLU, two separable convs, 3x3/2 max pool, and a strided 1x1 residual
// projection.
func xentryBlock(b *nn.Builder, name string, cout int, leadingReLU bool) *graph.Node {
	in := b.Current()
	if leadingReLU {
		b.ReLU(name + "_pre_relu")
	}
	xsep(b, name+"_sep1", cout)
	b.ReLU(name + "_relu")
	xsep(b, name+"_sep2", cout)
	main := b.MaxPool(name+"_pool", 3, 2, 1)

	b.From(in).Conv2D(name+"_skip_conv", cout, 1, 2, 0, false)
	skip := b.BatchNorm(name + "_skip_bn")
	return b.Add(name+"_add", main, skip)
}

// buildXception constructs Xception (Chollet 2017) at its native 299x299:
// entry flow to 728 channels, 8 middle-flow residual modules, exit flow
// to 2048 channels, classifier.
func buildXception(opts nn.Options) *graph.Graph {
	b := nn.NewBuilder("xception", opts, 3, 224, 224)
	// Entry flow.
	cbr(b, "stem1", 32, 3, 2, 0) // 111
	cbr(b, "stem2", 64, 3, 1, 0) // 109
	xentryBlock(b, "entry128", 128, false)
	xentryBlock(b, "entry256", 256, true)
	xentryBlock(b, "entry728", 728, true)
	// Middle flow: 8 modules of 3 separable convs with identity residual.
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("mid%d", i+1)
		in := b.Current()
		for j := 1; j <= 3; j++ {
			b.ReLU(fmt.Sprintf("%s_relu%d", name, j))
			xsep(b, fmt.Sprintf("%s_sep%d", name, j), 728)
		}
		b.Add(name+"_add", in, b.Current())
	}
	// Exit flow.
	in := b.Current()
	b.ReLU("exit_pre_relu")
	xsep(b, "exit_sep1", 728)
	b.ReLU("exit_relu1")
	xsep(b, "exit_sep2", 1024)
	main := b.MaxPool("exit_pool", 3, 2, 1)
	b.From(in).Conv2D("exit_skip_conv", 1024, 1, 2, 0, false)
	skip := b.BatchNorm("exit_skip_bn")
	b.Add("exit_add", main, skip)

	xsep(b, "exit_sep3", 1536)
	b.ReLU("exit_relu3")
	xsep(b, "exit_sep4", 2048)
	b.ReLU("exit_relu4")
	b.GlobalAvgPool("gap")
	b.Dense("fc", 1000, true)
	b.Softmax("prob")
	return b.Build()
}

func init() {
	register(&Spec{
		Name:         "Xception",
		InputShape:   []int{3, 224, 224},
		PaperGFLOP:   4.65,
		PaperParamsM: 22.91,
		Class:        Recognition,
		build:        func(o nn.Options) *graph.Graph { return buildXception(o) },
	})
}
