package model_test

import (
	"math"
	"testing"

	"edgebench/internal/core"
	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/stats"
	"edgebench/internal/tensor"
)

func TestExtensionsSeparateFromTableI(t *testing.T) {
	if len(model.All()) != 16 {
		t.Fatalf("Table I set polluted: %d models", len(model.All()))
	}
	ext := model.AllWithExtensions()
	if len(ext) != 20 {
		t.Fatalf("extension set = %d models, want 20", len(ext))
	}
	for _, s := range ext[16:] {
		if !s.Extension {
			t.Errorf("%s should be flagged Extension", s.Name)
		}
	}
}

func TestLSTMModelsStructure(t *testing.T) {
	for _, name := range []string{"LSTM-Classifier", "CharLSTM"} {
		s := model.MustGet(name)
		g := s.Build(nn.Options{})
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The spec's documented totals must match the built graph.
		if rel := math.Abs(s.GFLOPs()/s.PaperGFLOP - 1); rel > 0.05 {
			t.Errorf("%s GFLOP = %.4f, documented %.4f", name, s.GFLOPs(), s.PaperGFLOP)
		}
		if rel := math.Abs(s.ParamsM()/s.PaperParamsM - 1); rel > 0.05 {
			t.Errorf("%s params = %.3f M, documented %.3f M", name, s.ParamsM(), s.PaperParamsM)
		}
	}
}

func TestLSTMModelExecutes(t *testing.T) {
	s := model.MustGet("LSTM-Classifier")
	g := s.Build(nn.Options{Materialize: true, Seed: 3})
	in := tensor.New(s.InputShape...).Randomize(stats.NewRNG(4), 1)
	out, err := (&graph.Executor{}).Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	var sum float32
	for _, p := range out.Data {
		sum += p
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	// Order sensitivity end to end: reversing the sequence changes the
	// distribution.
	rev := in.Clone()
	steps, feats := s.InputShape[0], s.InputShape[1]
	for step := 0; step < steps/2; step++ {
		for f := 0; f < feats; f++ {
			rev.Data[step*feats+f], rev.Data[(steps-1-step)*feats+f] =
				rev.Data[(steps-1-step)*feats+f], rev.Data[step*feats+f]
		}
	}
	out2, err := (&graph.Executor{}).Run(g, rev)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range out.Data {
		if math.Abs(float64(out.Data[i]-out2.Data[i])) > 1e-6 {
			same = false
		}
	}
	if same {
		t.Fatal("recurrent model should be order sensitive")
	}
}

func TestLSTMModelDeploys(t *testing.T) {
	// The latency model prices recurrent models across devices.
	s, err := core.New("LSTM-Classifier", "PyTorch", "JetsonTX2")
	if err != nil {
		t.Fatal(err)
	}
	tx2 := s.InferenceSeconds()
	if tx2 <= 0 || tx2 > 1 {
		t.Fatalf("TX2 LSTM time = %v", tx2)
	}
	rpi, err := core.New("LSTM-Classifier", "TensorFlow", "RPi3")
	if err != nil {
		t.Fatal(err)
	}
	if rpi.InferenceSeconds() <= tx2 {
		t.Fatal("the RPi should trail the TX2 on the LSTM too")
	}
	// CharLSTM does ~6x the work of LSTM-Classifier; time must scale up.
	big, err := core.New("CharLSTM", "PyTorch", "JetsonTX2")
	if err != nil {
		t.Fatal(err)
	}
	if big.InferenceSeconds() <= tx2 {
		t.Fatal("CharLSTM should cost more than LSTM-Classifier")
	}
}
