package model

import (
	"fmt"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
)

// buildVGG constructs a standard VGG: stages of 3x3 same-padded convs
// separated by 2x2 max pools, then the 4096-4096-1000 classifier.
// stageConvs gives conv counts per stage for widths 64..512.
func buildVGG(opts nn.Options, name string, stageConvs [5]int) *graph.Graph {
	b := nn.NewBuilder(name, opts, 3, 224, 224)
	widths := [5]int{64, 128, 256, 512, 512}
	for stage := 0; stage < 5; stage++ {
		for c := 0; c < stageConvs[stage]; c++ {
			b.Conv2D(fmt.Sprintf("s%d_c%d", stage+1, c+1), widths[stage], 3, 1, 1, true)
			b.ReLU(fmt.Sprintf("s%d_r%d", stage+1, c+1))
		}
		b.MaxPool(fmt.Sprintf("s%d_pool", stage+1), 2, 2, 0)
	}
	b.Dense("fc6", 4096, true)
	b.ReLU("fc6_relu")
	b.Dense("fc7", 4096, true)
	b.ReLU("fc7_relu")
	b.Dense("fc8", 1000, true)
	b.Softmax("prob")
	return b.Build()
}

// buildVGGS constructs VGG-S (Chatfield et al., "Return of the Devil in
// the Details"): 5 convs (96/7x7s2, 256/5x5, 3x 512/3x3) with aggressive
// 3x3-stride-3 pooling and the 4096-4096-1000 classifier. Padding is
// chosen so the feature map entering fc6 is 512x6x6 at 224x224 input,
// reproducing the implementation's 102.9 M parameters (Caffe ceil-mode
// pooling emulated with explicit padding).
func buildVGGS(opts nn.Options, input int) *graph.Graph {
	b := nn.NewBuilder("vgg-s", opts, 3, input, input)
	b.Conv2D("conv1", 96, 7, 2, 2, true)
	b.ReLU("relu1")
	b.MaxPool("pool1", 3, 3, 0)
	b.Conv2D("conv2", 256, 5, 1, 2, true)
	b.ReLU("relu2")
	b.MaxPool("pool2", 2, 2, 1)
	b.Conv2D("conv3", 512, 3, 1, 1, true)
	b.ReLU("relu3")
	b.Conv2D("conv4", 512, 3, 1, 1, true)
	b.ReLU("relu4")
	b.Conv2D("conv5", 512, 3, 1, 1, true)
	b.ReLU("relu5")
	b.MaxPool("pool5", 3, 3, 0)
	b.Dense("fc6", 4096, true)
	b.ReLU("fc6_relu")
	b.Dense("fc7", 4096, true)
	b.ReLU("fc7_relu")
	b.Dense("fc8", 1000, true)
	b.Softmax("prob")
	return b.Build()
}

func init() {
	register(&Spec{
		Name:         "VGG16",
		InputShape:   []int{3, 224, 224},
		PaperGFLOP:   15.47,
		PaperParamsM: 138.36,
		Class:        Recognition,
		build: func(o nn.Options) *graph.Graph {
			return buildVGG(o, "vgg16", [5]int{2, 2, 3, 3, 3})
		},
	})
	register(&Spec{
		Name:         "VGG19",
		InputShape:   []int{3, 224, 224},
		PaperGFLOP:   19.63,
		PaperParamsM: 143.66,
		Class:        Recognition,
		build: func(o nn.Options) *graph.Graph {
			return buildVGG(o, "vgg19", [5]int{2, 2, 4, 4, 4})
		},
	})
	register(&Spec{
		Name:         "VGG-S",
		InputShape:   []int{3, 224, 224},
		PaperGFLOP:   3.27,
		PaperParamsM: 102.91,
		Class:        Recognition,
		Notes:        "Caffe ceil-mode pooling emulated with explicit pads to keep the canonical 512x6x6 fc6 input.",
		build: func(o nn.Options) *graph.Graph {
			return buildVGGS(o, 224)
		},
	})
	register(&Spec{
		Name:         "VGG-S-32",
		InputShape:   []int{3, 32, 32},
		PaperGFLOP:   0.11,
		PaperParamsM: 32.11,
		Class:        Recognition,
		Notes:        "Same trunk at 32x32; fc6 consumes a 512x1x1 map, so parameters land ~8% under the paper's 32.11 M.",
		build: func(o nn.Options) *graph.Graph {
			return buildVGGS(o, 32)
		},
	})
}
