package model

import (
	"edgebench/internal/graph"
	"edgebench/internal/nn"
)

// Recurrent extension models — the paper's declared future work (§II:
// "we plan to extend our models to include more varieties of DNN
// models, such as RNNs and LSTMs"). They are registered as extensions
// (not Table I) and exercise the engine's recurrent path end to end:
// cost accounting, lowering, latency modeling, numeric execution.

// buildLSTMClassifier is a sequence classifier shaped like a sensor/
// keyword-spotting workload: 64 timesteps of 128 features, a 256-unit
// LSTM, and a 10-way head.
func buildLSTMClassifier(opts nn.Options) *graph.Graph {
	b := nn.NewBuilder("lstm-classifier", opts, 64, 128)
	b.LSTM("lstm", 256, true)
	b.Dense("fc", 10, true)
	b.Softmax("prob")
	return b.Build()
}

// buildCharLSTM is a character-model-sized network: 128 steps over a
// 96-symbol alphabet with a 512-unit LSTM.
func buildCharLSTM(opts nn.Options) *graph.Graph {
	b := nn.NewBuilder("char-lstm", opts, 128, 96)
	b.LSTM("lstm", 512, true)
	b.Dense("fc", 96, true)
	b.Softmax("prob")
	return b.Build()
}

func init() {
	register(&Spec{
		Name:       "LSTM-Classifier",
		InputShape: []int{64, 128},
		// No paper reference values: extension model. The fields hold
		// this implementation's own totals for documentation.
		PaperGFLOP:   0.025,
		PaperParamsM: 0.40,
		Class:        Recognition,
		Extension:    true,
		Notes:        "Extension beyond Table I: the paper's declared RNN/LSTM future work.",
		build:        func(o nn.Options) *graph.Graph { return buildLSTMClassifier(o) },
	})
	register(&Spec{
		Name:         "CharLSTM",
		InputShape:   []int{128, 96},
		PaperGFLOP:   0.16,
		PaperParamsM: 1.30,
		Class:        Recognition,
		Extension:    true,
		Notes:        "Extension beyond Table I: character-model-sized LSTM.",
		build:        func(o nn.Options) *graph.Graph { return buildCharLSTM(o) },
	})
}
