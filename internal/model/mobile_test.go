package model_test

import (
	"math"
	"testing"

	"edgebench/internal/core"
	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/stats"
	"edgebench/internal/tensor"
)

func TestMobileModelTotals(t *testing.T) {
	// Documented totals are regression pins; also check they land near
	// the published numbers for these architectures.
	sq := model.MustGet("SqueezeNet")
	if rel := math.Abs(sq.ParamsM()/1.24 - 1); rel > 0.03 {
		t.Errorf("SqueezeNet params = %.3f M, published ~1.24 M", sq.ParamsM())
	}
	sh := model.MustGet("ShuffleNet")
	if sh.ParamsM() < 1.5 || sh.ParamsM() > 2.5 {
		t.Errorf("ShuffleNet params = %.3f M, published ~1.9 M", sh.ParamsM())
	}
	// The efficiency story: both models undercut AlexNet's parameters by
	// ~50-80x while staying in its FLOP class (SqueezeNet's pitch).
	alex := model.MustGet("AlexNet")
	if alex.ParamsM()/sq.ParamsM() < 40 {
		t.Errorf("SqueezeNet should carry ~80x fewer params than the paper's AlexNet")
	}
}

func TestShuffleNetUsesShuffleOps(t *testing.T) {
	g := model.MustGet("ShuffleNet").Build(nn.Options{})
	shuffles, grouped, dw := 0, 0, 0
	for _, n := range g.Nodes {
		switch {
		case n.Kind == graph.OpShuffle:
			shuffles++
		case n.Kind == graph.OpConv2D && n.Attrs.GroupCount() > 1:
			grouped++
		case n.Kind == graph.OpDepthwiseConv2D:
			dw++
		}
	}
	if shuffles < 14 || grouped < 20 || dw != 16 {
		t.Fatalf("structure wrong: %d shuffles, %d grouped convs, %d depthwise", shuffles, grouped, dw)
	}
}

func TestShuffleChannelsRoundTrip(t *testing.T) {
	in := tensor.New(6, 2, 2)
	for i := range in.Data {
		in.Data[i] = float32(i / 4) // channel index
	}
	out := tensor.ShuffleChannels(in, 3)
	// Channel i -> (i%3)*2 + i/3: 0->0, 1->2, 2->4, 3->1, 4->3, 5->5.
	want := []float32{0, 3, 1, 4, 2, 5}
	for ch, w := range want {
		if out.Data[ch*4] != w {
			t.Fatalf("channel %d = %v, want %v", ch, out.Data[ch*4], w)
		}
	}
	// Applying the shuffle with swapped group factor inverts it.
	back := tensor.ShuffleChannels(out, 2)
	for i := range in.Data {
		if back.Data[i] != in.Data[i] {
			t.Fatal("shuffle(g)∘shuffle(C/g) should be identity")
		}
	}
	if tensor.ShuffleChannels(in, 1).Data[4] != in.Data[4] {
		t.Fatal("group 1 shuffle should copy")
	}
}

func TestMobileModelsExecute(t *testing.T) {
	// Execute reduced-size variants end to end by running the real
	// models at a small synthetic input? The architectures are fixed at
	// 224², so instead validate structure and run the latency model.
	for _, name := range []string{"SqueezeNet", "ShuffleNet"} {
		g := model.MustGet(name).Build(nn.Options{})
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s, err := core.New(name, "PyTorch", "JetsonTX2")
		if err != nil {
			t.Fatal(err)
		}
		ts := s.InferenceSeconds()
		if ts <= 0 || ts > 1 {
			t.Fatalf("%s latency %v", name, ts)
		}
	}
	// Efficiency ordering on the TX2: both mobile models beat VGG16.
	vgg, _ := core.New("VGG16", "PyTorch", "JetsonTX2")
	sq, _ := core.New("SqueezeNet", "PyTorch", "JetsonTX2")
	if sq.InferenceSeconds() >= vgg.InferenceSeconds() {
		t.Fatal("SqueezeNet should be far faster than VGG16")
	}
}

func TestShuffleOpSemanticEquivalence(t *testing.T) {
	// A grouped conv after a shuffle sees mixed groups: verify via the
	// executor that shuffle+gconv differs from gconv alone (the whole
	// point of the op), while shuffle of group 1 is a no-op.
	build := func(withShuffle bool) *tensor.Tensor {
		b := nn.NewBuilder("t", nn.Options{Materialize: true, Seed: 9}, 6, 4, 4)
		if withShuffle {
			b.Shuffle("sh", 3)
		}
		b.Conv2DG("gc", 6, 1, 1, 0, 3, true)
		g := b.Build()
		in := tensor.New(6, 4, 4).Randomize(stats.NewRNG(10), 1)
		out, err := (&graph.Executor{}).Run(g, in)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, bOut := build(false), build(true)
	same := true
	for i := range a.Data {
		if a.Data[i] != bOut.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("channel shuffle should change grouped-conv results")
	}
}
