package model

import (
	"fmt"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
)

// cbr appends conv + BN + ReLU with a square kernel ("same" or "valid"
// padding is expressed via pad).
func cbr(b *nn.Builder, name string, cout, k, stride, pad int) *graph.Node {
	b.Conv2D(name, cout, k, stride, pad, false)
	b.BatchNorm(name + "_bn")
	return b.ReLU(name + "_relu")
}

// cbrRect appends conv + BN + ReLU with a rectangular kernel, padded
// "same" per axis (Inception's 1x7/7x1/1x3/3x1 factorizations).
func cbrRect(b *nn.Builder, name string, cout, kh, kw int) *graph.Node {
	b.Conv2DRect(name, cout, kh, kw, 1, (kh-1)/2, (kw-1)/2, false)
	b.BatchNorm(name + "_bn")
	return b.ReLU(name + "_relu")
}

// inceptionStem builds the Inception-v4 stem: 299x299x3 -> 384x35x35.
func inceptionStem(b *nn.Builder) *graph.Node {
	cbr(b, "stem1", 32, 3, 2, 0) // 149
	cbr(b, "stem2", 32, 3, 1, 0) // 147
	cbr(b, "stem3", 64, 3, 1, 1) // 147
	split := b.Current()
	pool := b.MaxPool("stem4_pool", 3, 2, 0) // 73
	conv := cbr(b.From(split), "stem4_conv", 96, 3, 2, 0)
	b.Concat("stem4_cat", pool, conv) // 160x73x73

	split = b.Current()
	cbr(b, "stem5a_1", 64, 1, 1, 0)
	left := cbr(b, "stem5a_2", 96, 3, 1, 0) // 71
	b.From(split)
	cbr(b, "stem5b_1", 64, 1, 1, 0)
	cbrRect(b, "stem5b_2", 64, 1, 7)
	cbrRect(b, "stem5b_3", 64, 7, 1)
	right := cbr(b, "stem5b_4", 96, 3, 1, 0) // 71
	b.Concat("stem5_cat", left, right)       // 192x71x71

	split = b.Current()
	conv = cbr(b, "stem6_conv", 192, 3, 2, 0)           // 35
	pool = b.From(split).MaxPool("stem6_pool", 3, 2, 0) // 35
	return b.Concat("stem6_cat", conv, pool)            // 384x35x35
}

// inceptionA appends one 35x35 Inception-A module (output 384 channels).
func inceptionA(b *nn.Builder, name string) *graph.Node {
	in := b.Current()
	b.AvgPool(name+"_b1_pool", 3, 1, 1)
	b1 := cbr(b, name+"_b1", 96, 1, 1, 0)
	b2 := cbr(b.From(in), name+"_b2", 96, 1, 1, 0)
	cbr(b.From(in), name+"_b3_1", 64, 1, 1, 0)
	b3 := cbr(b, name+"_b3_2", 96, 3, 1, 1)
	cbr(b.From(in), name+"_b4_1", 64, 1, 1, 0)
	cbr(b, name+"_b4_2", 96, 3, 1, 1)
	b4 := cbr(b, name+"_b4_3", 96, 3, 1, 1)
	return b.Concat(name+"_cat", b1, b2, b3, b4)
}

// reductionA shrinks 384x35x35 to 1024x17x17.
func reductionA(b *nn.Builder, name string) *graph.Node {
	in := b.Current()
	b1 := b.MaxPool(name+"_b1_pool", 3, 2, 0)
	b2 := cbr(b.From(in), name+"_b2", 384, 3, 2, 0)
	cbr(b.From(in), name+"_b3_1", 192, 1, 1, 0)
	cbr(b, name+"_b3_2", 224, 3, 1, 1)
	b3 := cbr(b, name+"_b3_3", 256, 3, 2, 0)
	return b.Concat(name+"_cat", b1, b2, b3)
}

// inceptionB appends one 17x17 Inception-B module (output 1024 channels).
func inceptionB(b *nn.Builder, name string) *graph.Node {
	in := b.Current()
	b.AvgPool(name+"_b1_pool", 3, 1, 1)
	b1 := cbr(b, name+"_b1", 128, 1, 1, 0)
	b2 := cbr(b.From(in), name+"_b2", 384, 1, 1, 0)
	cbr(b.From(in), name+"_b3_1", 192, 1, 1, 0)
	cbrRect(b, name+"_b3_2", 224, 1, 7)
	b3 := cbrRect(b, name+"_b3_3", 256, 7, 1)
	cbr(b.From(in), name+"_b4_1", 192, 1, 1, 0)
	cbrRect(b, name+"_b4_2", 192, 1, 7)
	cbrRect(b, name+"_b4_3", 224, 7, 1)
	cbrRect(b, name+"_b4_4", 224, 1, 7)
	b4 := cbrRect(b, name+"_b4_5", 256, 7, 1)
	return b.Concat(name+"_cat", b1, b2, b3, b4)
}

// reductionB shrinks 1024x17x17 to 1536x8x8.
func reductionB(b *nn.Builder, name string) *graph.Node {
	in := b.Current()
	b1 := b.MaxPool(name+"_b1_pool", 3, 2, 0)
	cbr(b.From(in), name+"_b2_1", 192, 1, 1, 0)
	b2 := cbr(b, name+"_b2_2", 192, 3, 2, 0)
	cbr(b.From(in), name+"_b3_1", 256, 1, 1, 0)
	cbrRect(b, name+"_b3_2", 256, 1, 7)
	cbrRect(b, name+"_b3_3", 320, 7, 1)
	b3 := cbr(b, name+"_b3_4", 320, 3, 2, 0)
	return b.Concat(name+"_cat", b1, b2, b3)
}

// inceptionC appends one 8x8 Inception-C module (output 1536 channels).
func inceptionC(b *nn.Builder, name string) *graph.Node {
	in := b.Current()
	b.AvgPool(name+"_b1_pool", 3, 1, 1)
	b1 := cbr(b, name+"_b1", 256, 1, 1, 0)
	b2 := cbr(b.From(in), name+"_b2", 256, 1, 1, 0)
	fork := cbr(b.From(in), name+"_b3_1", 384, 1, 1, 0)
	b3a := cbrRect(b, name+"_b3_2a", 256, 1, 3)
	b3b := cbrRect(b.From(fork), name+"_b3_2b", 256, 3, 1)
	cbr(b.From(in), name+"_b4_1", 384, 1, 1, 0)
	cbrRect(b, name+"_b4_2", 448, 3, 1)
	fork = cbrRect(b, name+"_b4_3", 512, 1, 3)
	b4a := cbrRect(b, name+"_b4_4a", 256, 1, 3)
	b4b := cbrRect(b.From(fork), name+"_b4_4b", 256, 3, 1)
	return b.Concat(name+"_cat", b1, b2, b3a, b3b, b4a, b4b)
}

// buildInceptionV4 constructs the full Inception-v4 (Szegedy et al. 2017)
// at its native 299x299 resolution: stem, 4xA, reduction-A, 7xB,
// reduction-B, 3xC, global pooling, 1000-way classifier.
func buildInceptionV4(opts nn.Options) *graph.Graph {
	b := nn.NewBuilder("inception-v4", opts, 3, 299, 299)
	inceptionStem(b)
	for i := 0; i < 4; i++ {
		inceptionA(b, fmt.Sprintf("a%d", i+1))
	}
	reductionA(b, "ra")
	for i := 0; i < 7; i++ {
		inceptionB(b, fmt.Sprintf("b%d", i+1))
	}
	reductionB(b, "rb")
	for i := 0; i < 3; i++ {
		inceptionC(b, fmt.Sprintf("c%d", i+1))
	}
	b.GlobalAvgPool("gap")
	b.Dense("fc", 1000, true)
	b.Softmax("prob")
	return b.Build()
}

func init() {
	register(&Spec{
		Name:         "Inception-v4",
		InputShape:   []int{3, 299, 299},
		PaperGFLOP:   12.27,
		PaperParamsM: 42.71,
		Class:        Recognition,
		Notes:        "Built at the architecture's native 299x299 (Table I's 224 column is nominal; its 12.27 GFLOP matches the published 299x299 figure).",
		build:        func(o nn.Options) *graph.Graph { return buildInceptionV4(o) },
	})
}
