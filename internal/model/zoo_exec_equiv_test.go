package model_test

import (
	"math"
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/tensor"
	"edgebench/internal/verify"
)

// execBudgetGF bounds the per-model arithmetic cost of the execution
// equivalence suite: models above the budget are skipped (and logged) so
// `go test` stays fast and `go test -race` stays feasible despite the
// instrumented kernels.
func execBudgetGF() float64 {
	if raceEnabled {
		return 0.05
	}
	return 0.2
}

// TestZooPlanConformance runs the static memory planner over every zoo
// model's structural graph: planning must succeed, assign a slot to
// every node, and leave the graph verifier-clean (the planner is
// read-only). This is cheap — no numerics — so it covers the whole zoo
// unconditionally.
func TestZooPlanConformance(t *testing.T) {
	for _, spec := range model.AllWithExtensions() {
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.Build(nn.Options{})
			if g.Mode != graph.Static {
				t.Skipf("%s builds a dynamic graph", spec.Name)
			}
			plan, err := graph.PlanBuffers(g)
			if err != nil {
				t.Fatalf("PlanBuffers(%s): %v", spec.Name, err)
			}
			if plan.NumSlots() == 0 {
				t.Fatalf("%s: plan assigned no arena slots", spec.Name)
			}
			if plan.ArenaBytes() <= 0 {
				t.Fatalf("%s: non-positive arena footprint", spec.Name)
			}
			if err := verify.Err(verify.Check(g)); err != nil {
				t.Fatalf("%s: graph no longer verifies after planning: %v", spec.Name, err)
			}
		})
	}
}

// TestZooExecEquivalence materializes every zoo model under the compute
// budget and checks the parallel scheduler and the pooled (planned-
// arena) executor produce bitwise-identical outputs to plain sequential
// execution — across repeated runs, so arena recycling is exercised.
// Under `-race` (see make race) this doubles as the scheduler's data-race
// gate over real model topologies: Inception branches, residual adds,
// depthwise chains, and recurrent tails.
func TestZooExecEquivalence(t *testing.T) {
	budget := execBudgetGF()
	if testing.Short() {
		budget = 0.05
	}
	ran := 0
	for _, spec := range model.AllWithExtensions() {
		if gf := spec.GFLOPs(); gf > budget {
			t.Logf("skipping %s: %.2f GFLOPs over the %.2f budget", spec.Name, gf, budget)
			continue
		}
		ran++
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.Build(nn.Options{Materialize: true, Seed: 99})
			in := tensor.New(g.Input.OutShape...)
			for i := range in.Data {
				in.Data[i] = float32(math.Sin(float64(i)*0.7)) * 0.5
			}
			want, err := (&graph.Executor{}).Run(g, in)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			variants := []struct {
				name   string
				exec   *graph.Executor
				passes int
			}{
				{"parallel", &graph.Executor{Parallel: true, Workers: 2}, 1},
				{"pooled", &graph.Executor{Pooled: true}, 2},
				{"pooled-parallel", &graph.Executor{Pooled: true, Parallel: true, Workers: 2}, 2},
			}
			for _, v := range variants {
				for pass := 0; pass < v.passes; pass++ {
					got, err := v.exec.Run(g, in)
					if err != nil {
						t.Fatalf("%s pass %d: %v", v.name, pass, err)
					}
					if !got.Shape.Equal(want.Shape) {
						t.Fatalf("%s pass %d: shape %v, want %v", v.name, pass, got.Shape, want.Shape)
					}
					for i := range want.Data {
						if got.Data[i] != want.Data[i] {
							t.Fatalf("%s pass %d: out[%d] = %v, want %v",
								v.name, pass, i, got.Data[i], want.Data[i])
						}
					}
				}
			}
		})
	}
	if ran == 0 {
		t.Fatal("compute budget excluded every zoo model")
	}
}
