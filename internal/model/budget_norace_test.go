//go:build !race

package model_test

// raceEnabled reports whether this test binary was built with the race
// detector; see budget_race_test.go.
const raceEnabled = false
