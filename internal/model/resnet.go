package model

import (
	"fmt"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
)

// basicBlock appends a ResNet-18/34 basic block (two 3x3 convs) with an
// identity or projection shortcut, returning the block output.
func basicBlock(b *nn.Builder, name string, cout, stride int) *graph.Node {
	in := b.Current()
	b.ConvBNReLU(name+"_a", cout, 3, stride, 1)
	b.Conv2D(name+"_b_conv", cout, 3, 1, 1, false)
	main := b.BatchNorm(name + "_b_bn")

	short := in
	if stride != 1 || in.OutShape[0] != cout {
		b.From(in).Conv2D(name+"_down_conv", cout, 1, stride, 0, false)
		short = b.BatchNorm(name + "_down_bn")
	}
	b.Add(name+"_add", main, short)
	return b.ReLU(name + "_out")
}

// bottleneckBlock appends a ResNet-50/101 bottleneck (1x1 reduce, 3x3,
// 1x1 expand x4) with shortcut.
func bottleneckBlock(b *nn.Builder, name string, width, stride int) *graph.Node {
	in := b.Current()
	b.ConvBNReLU(name+"_a", width, 1, 1, 0)
	b.ConvBNReLU(name+"_b", width, 3, stride, 1)
	b.Conv2D(name+"_c_conv", width*4, 1, 1, 0, false)
	main := b.BatchNorm(name + "_c_bn")

	short := in
	if stride != 1 || in.OutShape[0] != width*4 {
		b.From(in).Conv2D(name+"_down_conv", width*4, 1, stride, 0, false)
		short = b.BatchNorm(name + "_down_bn")
	}
	b.Add(name+"_add", main, short)
	return b.ReLU(name + "_out")
}

// buildResNet constructs a standard ImageNet ResNet with the given block
// type and per-stage block counts.
func buildResNet(opts nn.Options, bottleneck bool, blocks [4]int) *graph.Graph {
	b := nn.NewBuilder("resnet", opts, 3, 224, 224)
	b.ConvBNReLU("stem", 64, 7, 2, 3)
	b.MaxPool("stem_pool", 3, 2, 1)
	widths := [4]int{64, 128, 256, 512}
	for stage := 0; stage < 4; stage++ {
		for blk := 0; blk < blocks[stage]; blk++ {
			stride := 1
			if blk == 0 && stage > 0 {
				stride = 2
			}
			name := fmt.Sprintf("s%d_b%d", stage+1, blk+1)
			if bottleneck {
				bottleneckBlock(b, name, widths[stage], stride)
			} else {
				basicBlock(b, name, widths[stage], stride)
			}
		}
	}
	b.GlobalAvgPool("gap")
	b.Dense("fc", 1000, true)
	b.Softmax("prob")
	return b.Build()
}

func init() {
	register(&Spec{
		Name:         "ResNet-18",
		InputShape:   []int{3, 224, 224},
		PaperGFLOP:   1.83,
		PaperParamsM: 11.69,
		Class:        Recognition,
		build: func(o nn.Options) *graph.Graph {
			return buildResNet(o, false, [4]int{2, 2, 2, 2})
		},
	})
	register(&Spec{
		Name:         "ResNet-50",
		InputShape:   []int{3, 224, 224},
		PaperGFLOP:   4.14,
		PaperParamsM: 25.56,
		Class:        Recognition,
		build: func(o nn.Options) *graph.Graph {
			return buildResNet(o, true, [4]int{3, 4, 6, 3})
		},
	})
	register(&Spec{
		Name:         "ResNet-101",
		InputShape:   []int{3, 224, 224},
		PaperGFLOP:   7.87,
		PaperParamsM: 44.55,
		Class:        Recognition,
		build: func(o nn.Options) *graph.Graph {
			return buildResNet(o, true, [4]int{3, 4, 23, 3})
		},
	})
}
