package model_test

import (
	"math"
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/tensor"
)

// int8Tolerance matches TestQuantizeINT8 in internal/graph: the
// quantized path introduces bounded error but must keep whole-model
// outputs close to the FP32 reference.
const int8Tolerance = 0.2

// TestZooInt8Conformance runs every zoo model under the compute budget
// through the real int8 execution path: the graph is quantized with
// QuantizeINT8, executed by the sequential, pooled, and parallel
// executors (so under `make race` this doubles as the int8 kernels'
// data-race gate — the scratch pool and dispatch counters are shared
// across wavefront workers), and each output is compared against the
// FP32 run of the unquantized twin. Models with int8-executable layers
// must actually dispatch int8 kernels, not silently fall back.
func TestZooInt8Conformance(t *testing.T) {
	budget := execBudgetGF()
	if testing.Short() {
		budget = 0.05
	}
	ran := 0
	for _, spec := range model.AllWithExtensions() {
		if gf := spec.GFLOPs(); gf > budget {
			t.Logf("skipping %s: %.2f GFLOPs over the %.2f budget", spec.Name, gf, budget)
			continue
		}
		ran++
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.Build(nn.Options{Materialize: true, Seed: 42})
			in := tensor.New(g.Input.OutShape...)
			for i := range in.Data {
				in.Data[i] = float32(math.Sin(float64(i)*0.7)) * 0.5
			}
			ref, err := (&graph.Executor{}).Run(g, in)
			if err != nil {
				t.Fatalf("fp32 reference: %v", err)
			}

			qg := g.Clone()
			graph.QuantizeINT8(qg)
			quantizable := 0
			for _, n := range qg.Nodes {
				if n.QWeights != nil {
					quantizable++
				}
			}
			variants := []struct {
				name string
				exec *graph.Executor
			}{
				{"sequential", &graph.Executor{}},
				{"pooled", &graph.Executor{Pooled: true}},
				{"parallel", &graph.Executor{Parallel: true, Workers: 2}},
			}
			for _, v := range variants {
				got, err := v.exec.Run(qg, in)
				if err != nil {
					t.Fatalf("%s int8 run: %v", v.name, err)
				}
				if !got.Shape.Equal(ref.Shape) {
					t.Fatalf("%s: shape %v, want %v", v.name, got.Shape, ref.Shape)
				}
				var maxDiff float64
				for i := range ref.Data {
					if d := math.Abs(float64(got.Data[i] - ref.Data[i])); d > maxDiff {
						maxDiff = d
					}
				}
				if maxDiff > int8Tolerance {
					t.Fatalf("%s: int8 output drifts %.4f from FP32 (tolerance %v)",
						v.name, maxDiff, int8Tolerance)
				}
				i8, _, _ := v.exec.DispatchCounts()
				if quantizable > 0 && i8 == 0 {
					t.Fatalf("%s: %d quantizable nodes but zero int8 kernel dispatches",
						v.name, quantizable)
				}
			}
		})
	}
	if ran == 0 {
		t.Fatal("compute budget excluded every zoo model")
	}
}
