package model_test

import (
	"math"
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/stats"
	"edgebench/internal/tensor"
)

// tolerances holds per-model acceptance bands against the paper's
// Table I. Defaults are tight (params are structural); wider bands carry
// a documented reason in the model's Notes field.
type tolerance struct{ flop, params float64 }

var paperTolerances = map[string]tolerance{
	// Deviations documented in Spec.Notes / EXPERIMENTS.md.
	"VGG-S-32":         {flop: 0.20, params: 0.10}, // classifier shrinks at 32x32 input
	"CifarNet":         {flop: 2.00, params: 0.03}, // paper's 0.01 is one significant figure
	"SSD-MobileNet-v1": {flop: 0.20, params: 0.08}, // paper tracks backbone-dominated count
	"TinyYolo":         {flop: 0.30, params: 0.02}, // paper FLOP sourced from tiny-yolov3
	"C3D":              {flop: 0.05, params: 0.12}, // canonical C3D is ~80M params
}

func tol(name string) tolerance {
	if t, ok := paperTolerances[name]; ok {
		return t
	}
	return tolerance{flop: 0.03, params: 0.01}
}

func TestRegistryComplete(t *testing.T) {
	if len(model.All()) != 16 {
		t.Fatalf("registry holds %d models, want 16", len(model.All()))
	}
	for _, name := range model.TableIOrder {
		if _, ok := model.Get(name); !ok {
			t.Errorf("Table I model %q not registered", name)
		}
	}
	if names := model.Names(); len(names) != 16 || names[0] != "ResNet-18" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestMustGetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet of unknown model should panic")
		}
	}()
	model.MustGet("NoSuchNet")
}

// TestTableIReproduction is the headline Table I check: every model's
// parameter count and FLOP total (in the paper's per-model convention)
// must land inside its documented band.
func TestTableIReproduction(t *testing.T) {
	for _, s := range model.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			band := tol(s.Name)
			gf := s.GFLOPs()
			pm := s.ParamsM()
			if rel := math.Abs(gf/s.PaperGFLOP - 1); rel > band.flop {
				t.Errorf("GFLOP = %.3f, paper %.3f (%.1f%% > %.0f%% band)",
					gf, s.PaperGFLOP, rel*100, band.flop*100)
			}
			if rel := math.Abs(pm/s.PaperParamsM - 1); rel > band.params {
				t.Errorf("ParamsM = %.3f, paper %.3f (%.1f%% > %.0f%% band)",
					pm, s.PaperParamsM, rel*100, band.params*100)
			}
		})
	}
}

// TestTableIExactPins are regression pins on the values our builders
// produce, so architecture edits are deliberate.
func TestTableIExactPins(t *testing.T) {
	pins := map[string]struct {
		params int64
		ops    int
	}{
		"ResNet-18":    {11699112, 69},
		"ResNet-50":    {25610152, 175},
		"ResNet-101":   {44654504, 345},
		"MobileNet-v2": {3538984, 152},
		"VGG16":        {138357544, 38},
		"VGG19":        {143667240, 44},
		"TinyYolo":     {15867885, 31},
	}
	for name, pin := range pins {
		g := model.MustGet(name).Build(nn.Options{})
		if got := g.Params(); got != pin.params {
			t.Errorf("%s params = %d, pinned %d", name, got, pin.params)
		}
		if got := g.NumOps(); got != pin.ops {
			t.Errorf("%s ops = %d, pinned %d", name, got, pin.ops)
		}
	}
}

func TestAllModelsValidate(t *testing.T) {
	for _, s := range model.All() {
		g := s.Build(nn.Options{})
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if !g.Input.OutShape.Equal(tensor.Shape(s.InputShape)) {
			t.Errorf("%s input shape %v, spec %v", s.Name, g.Input.OutShape, s.InputShape)
		}
	}
}

func TestFLOPPerParamOrdering(t *testing.T) {
	// Figure 1's qualitative shape: the FC-heavy models sit at the bottom
	// and the video models at the top of the FLOP/param ordering.
	fpp := func(name string) float64 { return model.MustGet(name).FLOPPerParam() }
	low := []string{"VGG-S-32", "AlexNet", "CifarNet"}
	high := []string{"C3D", "YOLOv3", "TinyYolo"}
	for _, l := range low {
		for _, h := range high {
			if fpp(l) >= fpp(h) {
				t.Errorf("FLOP/param(%s)=%.1f should be < FLOP/param(%s)=%.1f",
					l, fpp(l), h, fpp(h))
			}
		}
	}
	// Spot values against Table I's column.
	if v := fpp("ResNet-50"); v < 120 || v > 200 {
		t.Errorf("ResNet-50 FLOP/param = %.1f, paper ~162", v)
	}
	if v := fpp("C3D"); v < 600 || v > 850 {
		t.Errorf("C3D FLOP/param = %.1f, paper ~734", v)
	}
}

func TestDetectionModelsHaveMultipleOutputs(t *testing.T) {
	yolo := model.MustGet("YOLOv3").Build(nn.Options{})
	if len(yolo.Extra) != 2 {
		t.Fatalf("YOLOv3 extra outputs = %d, want 2 (3 scales)", len(yolo.Extra))
	}
	ssd := model.MustGet("SSD-MobileNet-v1").Build(nn.Options{})
	if len(ssd.Extra) != 5 {
		t.Fatalf("SSD extra outputs = %d, want 5 (6 heads)", len(ssd.Extra))
	}
	// Dead-code elimination must keep all heads alive.
	before := len(yolo.Nodes)
	graph.EliminateDead(yolo)
	if len(yolo.Nodes) != before {
		t.Fatal("EliminateDead removed live detection-head nodes")
	}
}

func TestSmallModelsExecute(t *testing.T) {
	// The two 32x32 models are small enough to run numerically end to
	// end; this exercises every op kind those graphs contain.
	for _, name := range []string{"CifarNet", "VGG-S-32"} {
		s := model.MustGet(name)
		g := s.Build(nn.Options{Materialize: true, Seed: 1})
		in := tensor.New(s.InputShape...).Randomize(stats.NewRNG(2), 1)
		out, err := (&graph.Executor{}).Run(g, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var sum float32
		for _, v := range out.Data {
			if v < 0 {
				t.Fatalf("%s: negative probability %v", name, v)
			}
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("%s: probabilities sum to %v", name, sum)
		}
	}
}

func TestModelClassMetadata(t *testing.T) {
	if model.MustGet("SSD-MobileNet-v1").Class != model.Detection {
		t.Error("SSD should be Detection")
	}
	if model.MustGet("C3D").Class != model.Video {
		t.Error("C3D should be Video")
	}
	if model.MustGet("ResNet-18").Class != model.Recognition {
		t.Error("ResNet-18 should be Recognition")
	}
	for _, c := range []model.Class{model.Recognition, model.Detection, model.Video} {
		if c.String() == "" {
			t.Error("Class.String empty")
		}
	}
}

func TestDarkNetConventionFlag(t *testing.T) {
	for _, name := range []string{"YOLOv3", "TinyYolo", "C3D"} {
		if model.MustGet(name).FLOPConvention != 2 {
			t.Errorf("%s should use the 2xMAC DarkNet FLOP convention", name)
		}
	}
	if model.MustGet("VGG16").FLOPConvention != 1 {
		t.Error("VGG16 should use the 1xMAC convention")
	}
}

func TestStructuralBuildIsLight(t *testing.T) {
	// Structural VGG16 (138M params) must not allocate weight data.
	g := model.MustGet("VGG16").Build(nn.Options{})
	for _, n := range g.Nodes {
		if n.Weights != nil {
			t.Fatal("structural build allocated weights")
		}
	}
}
