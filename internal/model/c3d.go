package model

import (
	"edgebench/internal/graph"
	"edgebench/internal/nn"
)

// buildC3D constructs C3D (Tran et al. 2015) over the paper's 12-frame
// 112x112 clips: homogeneous 3x3x3 convolutions, a temporal-preserving
// first pool, 2x2x2 pools thereafter, and the 4096-4096-487 classifier
// (Sports-1M head). The final pool pads spatially so fc6 sees the
// canonical 512x4x4 map.
func buildC3D(opts nn.Options) *graph.Graph {
	b := nn.NewBuilder("c3d", opts, 3, 12, 112, 112)
	c3 := func(name string, cout int) *graph.Node {
		b.Conv3D(name, cout, 3, 1, 1, true)
		return b.ReLU(name + "_relu")
	}
	c3("conv1a", 64)
	b.MaxPool3DAsym("pool1", 1, 2, 1, 2, 0) // keep all 12 frames
	c3("conv2a", 128)
	b.MaxPool3DAsym("pool2", 2, 2, 2, 2, 0) // 6 frames, 28x28
	c3("conv3a", 256)
	c3("conv3b", 256)
	b.MaxPool3DAsym("pool3", 2, 2, 2, 2, 0) // 3 frames, 14x14
	c3("conv4a", 512)
	c3("conv4b", 512)
	b.MaxPool3DAsym("pool4", 2, 2, 2, 2, 0) // 1 frame, 7x7
	c3("conv5a", 512)
	c3("conv5b", 512)
	b.MaxPool3DAsym("pool5", 1, 2, 1, 2, 1) // 1 frame, 4x4 (padded)
	b.Dense("fc6", 4096, true)
	b.ReLU("fc6_relu")
	b.Dense("fc7", 4096, true)
	b.ReLU("fc7_relu")
	b.Dense("fc8", 487, true)
	b.Softmax("prob")
	return b.Build()
}

func init() {
	register(&Spec{
		Name:           "C3D",
		InputShape:     []int{3, 12, 112, 112},
		PaperGFLOP:     57.99,
		PaperParamsM:   89.00,
		FLOPConvention: 2,
		Class:          Video,
		Notes:          "12-frame clips per Table I; FLOP = 2 x MAC matches the paper's 57.99. Canonical C3D carries ~80 M parameters, ~10% below the paper's 89 M.",
		build:          func(o nn.Options) *graph.Graph { return buildC3D(o) },
	})
}
