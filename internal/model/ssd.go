package model

import (
	"fmt"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
)

// buildSSDMobileNetV1 constructs SSD with a MobileNet-v1 feature
// extractor at 300x300: the full depthwise-separable trunk, four extra
// feature layers, and 1x1 box predictors over six scales (3 anchors x
// (20 classes + 4 box coords + 1)). Extra-layer widths are halved
// relative to the reference Caffe SSD so the total lands on the paper's
// 4.23 M parameters (which track the backbone-dominated implementation
// it measured).
func buildSSDMobileNetV1(opts nn.Options) *graph.Graph {
	b := nn.NewBuilder("ssd-mobilenet-v1", opts, 3, 300, 300)
	conv11 := mobileNetV1Trunk(b)
	conv13 := b.Current()

	extra := func(name string, squeeze, out int) *graph.Node {
		b.Conv2D(name+"_1", squeeze, 1, 1, 0, false)
		b.BatchNorm(name + "_1_bn")
		b.ReLU6(name + "_1_relu")
		b.Conv2D(name+"_2", out, 3, 2, 1, false)
		b.BatchNorm(name + "_2_bn")
		return b.ReLU6(name + "_2_relu")
	}
	e1 := extra("extra1", 128, 256) // 5x5
	e2 := extra("extra2", 64, 128)  // 3x3
	e3 := extra("extra3", 64, 128)  // 2x2
	e4 := extra("extra4", 32, 64)   // 1x1

	const perAnchor = 3 * (20 + 4 + 1) // 75 channels per feature map
	heads := []*graph.Node{conv11, conv13, e1, e2, e3, e4}
	var outs []*graph.Node
	for i, h := range heads {
		pred := b.From(h).Conv2D(fmt.Sprintf("head%d", i+1), perAnchor, 1, 1, 0, true)
		outs = append(outs, pred)
	}
	for _, o := range outs[:len(outs)-1] {
		b.MarkOutput(o)
	}
	return b.From(outs[len(outs)-1]).Build()
}

func init() {
	register(&Spec{
		Name:         "SSD-MobileNet-v1",
		InputShape:   []int{3, 300, 300},
		PaperGFLOP:   0.98,
		PaperParamsM: 4.23,
		Class:        Detection,
		Notes:        "Extra-layer widths halved vs. reference SSD so parameters match the paper's backbone-dominated 4.23 M.",
		build:        func(o nn.Options) *graph.Graph { return buildSSDMobileNetV1(o) },
	})
}
