package model

import (
	"edgebench/internal/graph"
	"edgebench/internal/nn"
)

// buildAlexNet constructs the grouped (two-tower) AlexNet. The conv3-5
// widths (352) and fc6 width (7168) are tuned so the joint (FLOP, params)
// pair lands on the paper's Table I row (0.72 GFLOP, 102.14 M parameters)
// — the paper's AlexNet carries a much larger classifier than the
// canonical 61 M-parameter definition, as its 7.05 FLOP/param ratio
// shows.
func buildAlexNet(opts nn.Options) *graph.Graph {
	b := nn.NewBuilder("alexnet", opts, 3, 224, 224)
	b.Conv2D("conv1", 96, 11, 4, 2, true)
	b.ReLU("relu1")
	b.MaxPool("pool1", 3, 2, 0)
	b.Conv2DG("conv2", 256, 5, 1, 2, 2, true)
	b.ReLU("relu2")
	b.MaxPool("pool2", 3, 2, 0)
	b.Conv2D("conv3", 352, 3, 1, 1, true)
	b.ReLU("relu3")
	b.Conv2DG("conv4", 352, 3, 1, 1, 2, true)
	b.ReLU("relu4")
	b.Conv2DG("conv5", 256, 3, 1, 1, 2, true)
	b.ReLU("relu5")
	b.MaxPool("pool5", 3, 2, 0)
	b.Dense("fc6", 7168, true)
	b.ReLU("fc6_relu")
	b.Dense("fc7", 4096, true)
	b.ReLU("fc7_relu")
	b.Dense("fc8", 1000, true)
	b.Softmax("prob")
	return b.Build()
}

// buildCifarNet constructs the small CIFAR-10 CNN (TF-slim cifarnet
// family) used by the paper's FPGA experiments: two 5x5 conv+pool stages
// and a 384-192-10 classifier, sized to Table I's 0.79 M parameters and
// ~0.01 GFLOP.
func buildCifarNet(opts nn.Options) *graph.Graph {
	b := nn.NewBuilder("cifarnet", opts, 3, 32, 32)
	b.Conv2D("conv1", 64, 5, 1, 2, true)
	b.ReLU("relu1")
	b.MaxPool("pool1", 3, 2, 0)
	b.Conv2D("conv2", 64, 5, 1, 2, true)
	b.ReLU("relu2")
	b.MaxPool("pool2", 3, 3, 0)
	b.Dense("fc3", 384, true)
	b.ReLU("relu3")
	b.Dense("fc4", 192, true)
	b.ReLU("relu4")
	b.Dense("fc5", 10, true)
	b.Softmax("prob")
	return b.Build()
}

func init() {
	register(&Spec{
		Name:         "AlexNet",
		InputShape:   []int{3, 224, 224},
		PaperGFLOP:   0.72,
		PaperParamsM: 102.14,
		Class:        Recognition,
		Notes:        "Widths tuned to the paper's non-canonical 102 M-parameter AlexNet (conv3-5 = 352ch, fc6 = 7168).",
		build:        func(o nn.Options) *graph.Graph { return buildAlexNet(o) },
	})
	register(&Spec{
		Name:         "CifarNet",
		InputShape:   []int{3, 32, 32},
		PaperGFLOP:   0.01,
		PaperParamsM: 0.79,
		Class:        Recognition,
		Notes:        "Parameters match Table I; any natural CifarNet with 0.79 M parameters costs ~0.03 GMAC, so the paper's single-significant-figure 0.01 GFLOP is unreachable jointly.",
		build:        func(o nn.Options) *graph.Graph { return buildCifarNet(o) },
	})
}
