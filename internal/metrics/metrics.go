// Package metrics is a small, dependency-free instrumentation layer for
// the live serving path: counters, gauges, latency summaries (streaming
// quantiles via the stats reservoir digest), and a Prometheus
// text-format exposition endpoint. It exists because the paper's §VI-C
// serving claims are about observable tail behaviour under load, and a
// real server can only be validated against the analytic envelope if it
// exports the same quantities the simulation reports.
//
// All metric types are safe for concurrent use. Exposition order is
// registration order, so scrapes are deterministic and testable.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"edgebench/internal/stats"
)

// metric is one exposable family: it renders its HELP/TYPE header and
// sample lines in Prometheus text format.
type metric interface {
	expose(w io.Writer)
}

// Registry holds metric families in registration order and renders them
// for scraping. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	order  []metric
	byName map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]metric{}}
}

// register adds m under name, panicking on duplicates — a duplicate
// family is a programming error that would corrupt the exposition.
func (r *Registry) register(name string, m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	r.byName[name] = m
	r.order = append(r.order, m)
}

// WritePrometheus renders every registered family in text exposition
// format (version 0.0.4, the format every Prometheus scraper accepts).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := append([]metric(nil), r.order...)
	r.mu.Unlock()
	for _, m := range fams {
		m.expose(w)
	}
}

// Handler returns the /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Counter is a monotonically increasing count.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(name, c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters never go down).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) expose(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.Value())
}

// CounterVec is a family of counters split by one label (e.g. HTTP
// status code). Children are created on first use and exposed sorted by
// label value.
type CounterVec struct {
	name, help, label string
	mu                sync.Mutex
	children          map[string]*atomic.Uint64
}

// NewCounterVec registers and returns a one-label counter family.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	cv := &CounterVec{name: name, help: help, label: label, children: map[string]*atomic.Uint64{}}
	r.register(name, cv)
	return cv
}

// Inc adds one to the child with the given label value.
func (cv *CounterVec) Inc(value string) { cv.Add(value, 1) }

// Add adds n to the child with the given label value — the bulk form
// per-stage transfer byte/frame counters use.
func (cv *CounterVec) Add(value string, n uint64) {
	cv.mu.Lock()
	c := cv.children[value]
	if c == nil {
		c = &atomic.Uint64{}
		cv.children[value] = c
	}
	cv.mu.Unlock()
	c.Add(n)
}

// Value returns the child's count (zero for a label never incremented).
func (cv *CounterVec) Value(value string) uint64 {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	if c := cv.children[value]; c != nil {
		return c.Load()
	}
	return 0
}

func (cv *CounterVec) expose(w io.Writer) {
	cv.mu.Lock()
	vals := make([]string, 0, len(cv.children))
	for v := range cv.children {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", cv.name, cv.help, cv.name)
	for _, v := range vals {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", cv.name, cv.label, v, cv.children[v].Load())
	}
	cv.mu.Unlock()
}

// Gauge is an instantaneous value that can move both ways (queue depth,
// in-flight requests). Stored as float64 bits in an atomic word.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(name, g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop; safe under contention).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark (e.g. largest batch ever dispatched).
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) expose(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", g.name, g.help, g.name, g.name, formatFloat(g.Value()))
}

// GaugeVec is a family of gauges split by one label (e.g. execution
// datatype). Children are created on first use and exposed sorted by
// label value.
type GaugeVec struct {
	name, help, label string
	mu                sync.Mutex
	children          map[string]*atomic.Uint64
}

// NewGaugeVec registers and returns a one-label gauge family.
func (r *Registry) NewGaugeVec(name, help, label string) *GaugeVec {
	gv := &GaugeVec{name: name, help: help, label: label, children: map[string]*atomic.Uint64{}}
	r.register(name, gv)
	return gv
}

func (gv *GaugeVec) child(value string) *atomic.Uint64 {
	gv.mu.Lock()
	g := gv.children[value]
	if g == nil {
		g = &atomic.Uint64{}
		gv.children[value] = g
	}
	gv.mu.Unlock()
	return g
}

// Set stores v for the child with the given label value.
func (gv *GaugeVec) Set(value string, v float64) {
	gv.child(value).Store(math.Float64bits(v))
}

// Value returns the child's value (zero for a label never set).
func (gv *GaugeVec) Value(value string) float64 {
	gv.mu.Lock()
	defer gv.mu.Unlock()
	if g := gv.children[value]; g != nil {
		return math.Float64frombits(g.Load())
	}
	return 0
}

func (gv *GaugeVec) expose(w io.Writer) {
	gv.mu.Lock()
	vals := make([]string, 0, len(gv.children))
	for v := range gv.children {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", gv.name, gv.help, gv.name)
	for _, v := range vals {
		fmt.Fprintf(w, "%s{%s=%q} %s\n", gv.name, gv.label, v, formatFloat(math.Float64frombits(gv.children[v].Load())))
	}
	gv.mu.Unlock()
}

// Summary tracks a value distribution with streaming quantiles (via the
// stats reservoir digest), a running sum, and a count — the Prometheus
// "summary" type. Observe is safe for concurrent use.
type Summary struct {
	name, help string
	quantiles  []float64
	mu         sync.Mutex
	digest     *stats.Digest
	sum        float64
	count      uint64
}

// DefaultQuantiles are the exposition quantiles used when NewSummary is
// given none: the median and the two tails the paper's serving analysis
// provisions by.
var DefaultQuantiles = []float64{0.5, 0.95, 0.99}

// NewSummary registers and returns a summary with the given exposition
// quantiles (nil means DefaultQuantiles).
func (r *Registry) NewSummary(name, help string, quantiles ...float64) *Summary {
	if len(quantiles) == 0 {
		quantiles = DefaultQuantiles
	}
	s := &Summary{
		name:      name,
		help:      help,
		quantiles: quantiles,
		digest:    stats.NewDigest(0, 1),
	}
	r.register(name, s)
	return s
}

// Observe folds one observation into the summary.
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	s.digest.Add(v)
	s.sum += v
	s.count++
	s.mu.Unlock()
}

// Count returns the number of observations.
func (s *Summary) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Quantile returns the current estimate for q in [0,1] (NaN when empty).
func (s *Summary) Quantile(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.digest.Quantile(q)
}

func (s *Summary) expose(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", s.name, s.help, s.name)
	for _, q := range s.quantiles {
		v := s.digest.Quantile(q)
		if math.IsNaN(v) {
			continue // no observations yet: omit, per exposition convention
		}
		fmt.Fprintf(w, "%s{quantile=%q} %s\n", s.name, trimFloat(q), formatFloat(v))
	}
	fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", s.name, formatFloat(s.sum), s.name, s.count)
}

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip representation, integers without exponent.
func formatFloat(v float64) string {
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}

// trimFloat renders a quantile label like 0.5 / 0.99.
func trimFloat(q float64) string { return fmt.Sprintf("%g", q) }
