package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "a counter")
	g := r.NewGauge("g", "a gauge")
	c.Inc()
	c.Add(2)
	g.Set(4)
	g.Add(-1.5)
	if c.Value() != 3 {
		t.Errorf("counter %d, want 3", c.Value())
	}
	if g.Value() != 2.5 {
		t.Errorf("gauge %v, want 2.5", g.Value())
	}
	g.SetMax(10)
	g.SetMax(7) // lower: ignored
	if g.Value() != 10 {
		t.Errorf("gauge after SetMax %v, want 10", g.Value())
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("req_total", "requests", "code")
	cv.Inc("200")
	cv.Inc("200")
	cv.Inc("429")
	if cv.Value("200") != 2 || cv.Value("429") != 1 || cv.Value("500") != 0 {
		t.Errorf("unexpected child values: 200=%d 429=%d 500=%d",
			cv.Value("200"), cv.Value("429"), cv.Value("500"))
	}
}

func TestSummaryQuantiles(t *testing.T) {
	r := NewRegistry()
	s := r.NewSummary("lat_seconds", "latency")
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	if s.Count() != 100 {
		t.Errorf("count %d, want 100", s.Count())
	}
	if q := s.Quantile(0.99); q < 95 || q > 100 {
		t.Errorf("p99 %v out of range", q)
	}
}

// TestExpositionFormat pins the Prometheus text rendering end to end,
// including the HTTP handler and content type.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "Jobs processed.")
	cv := r.NewCounterVec("req_total", "Requests by code.", "code")
	g := r.NewGauge("depth", "Queue depth.")
	s := r.NewSummary("lat", "Latency.")
	c.Add(7)
	cv.Inc("200")
	cv.Inc("429")
	g.Set(3)
	s.Observe(1)
	s.Observe(2)

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	r.Handler().ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs processed.",
		"# TYPE jobs_total counter",
		"jobs_total 7",
		`req_total{code="200"} 1`,
		`req_total{code="429"} 1`,
		"# TYPE depth gauge",
		"depth 3",
		"# TYPE lat summary",
		`lat{quantile="0.5"} 1.5`,
		"lat_sum 3",
		"lat_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	r := NewRegistry()
	r.NewCounter("dup", "one")
	r.NewCounter("dup", "two")
}

// TestConcurrentUse hammers every metric type under the race detector.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "c")
	cv := r.NewCounterVec("v_total", "v", "k")
	g := r.NewGauge("g", "g")
	hw := r.NewGauge("hw", "high-water")
	s := r.NewSummary("s", "s")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				cv.Inc("a")
				g.Add(1)
				hw.SetMax(float64(j))
				s.Observe(float64(j))
			}
		}(i)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.WritePrometheus(&strings.Builder{})
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 4000 {
		t.Errorf("counter %d, want 4000", c.Value())
	}
	if g.Value() != 4000 {
		t.Errorf("gauge %v, want 4000", g.Value())
	}
	if hw.Value() != 499 {
		t.Errorf("high-water %v, want 499", hw.Value())
	}
}
