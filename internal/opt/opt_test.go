package opt_test

import (
	"errors"
	"strings"
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/opt"
	"edgebench/internal/tensor"
	"edgebench/internal/verify"
)

func convBNReLUNet(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	b := nn.NewBuilder("net", nn.Options{Materialize: true, Seed: seed}, 3, 8, 8)
	b.ConvBNReLU("block1", 4, 3, 1, 1)
	b.ConvBNReLU("block2", 8, 3, 2, 1)
	b.GlobalAvgPool("gap")
	b.Dense("fc", 10, true)
	b.Softmax("prob")
	return b.Build()
}

func TestOptimizeO2FusesAndConverges(t *testing.T) {
	g := convBNReLUNet(t, 1)
	before := len(g.Nodes)
	rep, err := opt.Optimize(g, opt.O2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Level != opt.O2 {
		t.Fatalf("report level %s, want O2", rep.Level)
	}
	if rep.NodesBefore != before || rep.NodesAfter != len(g.Nodes) {
		t.Fatalf("report node counts %d -> %d, graph %d -> %d",
			rep.NodesBefore, rep.NodesAfter, before, len(g.Nodes))
	}
	if rep.NodesAfter >= rep.NodesBefore {
		t.Fatal("O2 removed no nodes from a Conv-BN-ReLU network")
	}
	if rep.TotalRewrites() == 0 {
		t.Fatal("report counts no rewrites")
	}
	var fusion *opt.PassStat
	for i := range rep.Stats {
		if rep.Stats[i].Pass == "pattern-fusion" {
			fusion = &rep.Stats[i]
		}
	}
	if fusion == nil || fusion.Rewrites == 0 {
		t.Fatalf("pattern-fusion did no work: %+v", rep.Stats)
	}
	if fusion.NodeDelta >= 0 {
		t.Fatalf("pattern-fusion node delta %d, want negative", fusion.NodeDelta)
	}
	// Fixpoint: a second O2 run finds nothing left to do.
	rep2, err := opt.Optimize(g, opt.O2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.TotalRewrites() != 0 {
		t.Fatalf("second O2 run rewrote %d more times; fixpoint not reached", rep2.TotalRewrites())
	}
	if rep2.Iterations != 1 {
		t.Fatalf("converged graph took %d iterations, want 1", rep2.Iterations)
	}
	if !strings.Contains(rep.String(), "pattern-fusion") {
		t.Fatalf("report %q does not mention the working pass", rep)
	}
}

func TestOptimizeO0IsIdentityButVerifies(t *testing.T) {
	g := convBNReLUNet(t, 2)
	before := len(g.Nodes)
	rep, err := opt.Optimize(g, opt.O0)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != before || rep.TotalRewrites() != 0 {
		t.Fatal("O0 must not touch the graph")
	}
	// O0 still gates the input graph: a corrupted graph is rejected even
	// with optimization off.
	bad := convBNReLUNet(t, 3)
	bad.Nodes[1].OutShape[0]++
	_, err = opt.Optimize(bad, opt.O0)
	var ve *opt.VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("corrupted input at O0 returned %v, want *VerifyError", err)
	}
	if ve.Pass != "<input>" {
		t.Fatalf("violation attributed to %q, want the input gate", ve.Pass)
	}
}

func TestOptimizeO1SkipsFusion(t *testing.T) {
	g := convBNReLUNet(t, 4)
	rep, err := opt.Optimize(g, opt.O1)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range rep.Stats {
		if st.Pass == "pattern-fusion" {
			t.Fatal("O1 must not run pattern fusion")
		}
	}
	for _, n := range g.Nodes {
		if n.EpiChannels > 0 || n.Activation != 0 {
			t.Fatalf("O1 fused node %s", n)
		}
	}
}

// TestBrokenPassIsRejected is the adversarial legality test: a pass
// that grows a node's output shape without updating its consumers must
// be caught by the post-pass verify gate and surface as a structured
// *VerifyError naming the pass and the violated shape rule — never as
// a corrupted graph handed back to the executor.
func TestBrokenPassIsRejected(t *testing.T) {
	g := convBNReLUNet(t, 5)
	broken := opt.NewPass("break-shapes", func(g *graph.Graph) (int, error) {
		for _, n := range g.Nodes {
			if n.Kind == graph.OpConv2D {
				n.OutShape[0]++ // grow the conv's channel count in place
				return 1, nil
			}
		}
		return 0, nil
	})
	m := opt.NewManager(broken)
	_, err := m.Run(g)
	if err == nil {
		t.Fatal("manager accepted a shape-breaking pass")
	}
	var ve *opt.VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("error %v (%T) is not a *VerifyError", err, err)
	}
	if ve.Pass != "break-shapes" {
		t.Fatalf("violation attributed to pass %q, want break-shapes", ve.Pass)
	}
	if ve.Iteration != 1 {
		t.Fatalf("violation in iteration %d, want 1", ve.Iteration)
	}
	if len(ve.Diags) == 0 {
		t.Fatal("VerifyError carries no diagnostics")
	}
	found := false
	for _, d := range ve.Diags {
		if d.Severity != verify.Error {
			t.Fatalf("gate let a %s-severity diagnostic through: %s", d.Severity, d)
		}
		if d.Rule == "shape" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no shape-rule diagnostic among %v", ve.Diags)
	}
	if !strings.Contains(ve.Error(), "break-shapes") {
		t.Fatalf("error string %q does not name the pass", ve.Error())
	}
}

// TestErroringPassIsWrapped: a pass returning a plain error is wrapped
// with pass name and iteration, distinct from a verify failure.
func TestErroringPassIsWrapped(t *testing.T) {
	g := convBNReLUNet(t, 6)
	boom := errors.New("boom")
	failing := opt.NewPass("failing", func(*graph.Graph) (int, error) { return 0, boom })
	_, err := opt.NewManager(failing).Run(g)
	if !errors.Is(err, boom) {
		t.Fatalf("pass error not wrapped: %v", err)
	}
	var ve *opt.VerifyError
	if errors.As(err, &ve) {
		t.Fatal("a pass's own error must not masquerade as a verify failure")
	}
	if !strings.Contains(err.Error(), "failing") {
		t.Fatalf("error %q does not name the pass", err)
	}
}

// TestFixpointBound: a pass that always reports work stops at MaxIter
// instead of spinning.
func TestFixpointBound(t *testing.T) {
	g := convBNReLUNet(t, 7)
	runs := 0
	liar := opt.NewPass("liar", func(*graph.Graph) (int, error) {
		runs++
		return 1, nil // claims progress forever, changes nothing
	})
	m := opt.NewManager(liar)
	m.MaxIter = 3
	rep, err := m.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if runs != 3 || rep.Iterations != 3 {
		t.Fatalf("ran %d times over %d iterations, want 3/3", runs, rep.Iterations)
	}
}

func TestOptimizeBitEquivalence(t *testing.T) {
	g := convBNReLUNet(t, 8)
	in := tensor.New(3, 8, 8)
	for i := range in.Data {
		in.Data[i] = float32(i%17)/8 - 1
	}
	// UseGEMMConv on both sides: O1+ pre-packs conv weights, which pins
	// the optimized graph to the GEMM lowering, and the bitwise contract
	// is relative to that same lowering (direct conv sums in a different
	// order).
	ref, err := (&graph.Executor{UseGEMMConv: true}).Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	og := g.Clone()
	if _, err := opt.Optimize(og, opt.O2); err != nil {
		t.Fatal(err)
	}
	got, err := (&graph.Executor{UseGEMMConv: true, Pooled: true}).Run(og, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Data {
		if got.Data[i] != ref.Data[i] {
			t.Fatalf("out[%d] = %v, want %v (O2 must be bitwise identical)", i, got.Data[i], ref.Data[i])
		}
	}
}

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want opt.Level
		ok   bool
	}{
		{"O0", opt.O0, true},
		{"o1", opt.O1, true},
		{"O2", opt.O2, true},
		{"o2", opt.O2, true},
		{"O3", opt.O0, false},
		{"", opt.O0, false},
		{"fast", opt.O0, false},
	} {
		got, err := opt.ParseLevel(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if opt.O2.String() != "O2" || opt.LevelUnset.String() != "unset" {
		t.Fatalf("Level.String mismatch: %s/%s", opt.O2, opt.LevelUnset)
	}
}

func TestRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register(nil) should panic")
		}
	}()
	opt.NewManager(nil)
}
