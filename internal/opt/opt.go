// Package opt is the graph compiler's pass manager: it owns the
// catalog of optimization passes (pattern fusion, constant folding,
// identity and dead-node elimination, plus the legacy lowering passes),
// runs them in a deterministic order to a fixpoint, and gates every
// pass run behind the full internal/verify rule catalog — an illegal
// rewrite surfaces as a structured *VerifyError naming the pass and the
// violated rules instead of a corrupted inference later.
//
// The package exists because internal/graph cannot import the verifier
// (verify already imports graph); opt sits above both and is the only
// sanctioned call site for graph rewrites outside internal/graph itself
// (edgelint's pass-verify rule enforces that). Opt levels mirror the
// familiar compiler convention: O0 leaves the graph untouched, O1 runs
// the always-safe cleanups (constant folding, identity and dead-node
// elimination), O2 adds pattern fusion, which collapses conv→BN→act
// chains into single fused-kernel dispatches while remaining bitwise
// identical to the unfused graph (the zoo equivalence suite pins this
// down across every model).
package opt

import (
	"fmt"
	"strings"

	"edgebench/internal/graph"
	"edgebench/internal/verify"
)

// PassResult reports what one pass run did to the graph.
type PassResult struct {
	// Rewrites counts the pass's unit of work (chains fused, nodes
	// folded/removed). Zero means the pass found nothing — the
	// manager's fixpoint terminates when a whole iteration is zero.
	Rewrites int
}

// Pass is one graph rewrite under management: named for diagnostics
// and reporting, returning how much it changed so the manager can
// iterate to fixpoint.
type Pass interface {
	Name() string
	Run(g *graph.Graph) (PassResult, error)
}

// funcPass adapts a count-returning rewrite function to the Pass
// interface.
type funcPass struct {
	name string
	run  func(*graph.Graph) (int, error)
}

func (p funcPass) Name() string { return p.name }

func (p funcPass) Run(g *graph.Graph) (PassResult, error) {
	n, err := p.run(g)
	return PassResult{Rewrites: n}, err
}

// NewPass wraps a count-returning rewrite function as a managed pass.
func NewPass(name string, run func(*graph.Graph) (int, error)) Pass {
	return funcPass{name: name, run: run}
}

// VerifyError reports that a pass left the graph violating IR
// invariants. It carries the verifier's structured diagnostics so
// callers (and tests) can inspect which rules broke, not just that
// something did.
type VerifyError struct {
	Pass      string
	Iteration int
	Diags     []verify.Diagnostic
}

// Error summarizes the violation; the full diagnostic list is on Diags.
func (e *VerifyError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "opt: pass %s (iteration %d) broke %d IR invariant(s)", e.Pass, e.Iteration, len(e.Diags))
	for i, d := range e.Diags {
		if i == 3 {
			fmt.Fprintf(&b, "; and %d more", len(e.Diags)-i)
			break
		}
		b.WriteString("; ")
		b.WriteString(d.String())
	}
	return b.String()
}

// PassStat accumulates one pass's effect across fixpoint iterations.
type PassStat struct {
	Pass      string
	Runs      int // times executed
	Rewrites  int // total rewrites across runs
	NodeDelta int // nodes after - before, summed over runs
	EdgeDelta int // input edges after - before, summed over runs
}

// Report summarizes one manager run: iteration count, whole-graph
// node/edge deltas, and per-pass stats in execution order.
type Report struct {
	Graph       string
	Level       Level // set by Optimize; LevelUnset for custom managers
	Iterations  int
	NodesBefore int
	NodesAfter  int
	EdgesBefore int
	EdgesAfter  int
	Stats       []PassStat
}

// String renders the report as a short human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d -> %d nodes, %d -> %d edges, %d iteration(s)",
		r.Graph, r.NodesBefore, r.NodesAfter, r.EdgesBefore, r.EdgesAfter, r.Iterations)
	for _, s := range r.Stats {
		if s.Rewrites > 0 {
			fmt.Fprintf(&b, "; %s x%d", s.Pass, s.Rewrites)
		}
	}
	return b.String()
}

// TotalRewrites sums rewrites across all passes.
func (r *Report) TotalRewrites() int {
	total := 0
	for _, s := range r.Stats {
		total += s.Rewrites
	}
	return total
}

// PassManager runs a registered pass sequence over graphs. Passes
// execute in registration order — the order is part of the compiler's
// contract (cleanups expose fusion opportunities and vice versa), so
// registration is explicit, never sorted behind the caller's back.
type PassManager struct {
	// MaxIter bounds fixpoint iteration; <= 0 means DefaultMaxIter.
	// Each iteration runs the full pass sequence once; iteration stops
	// early when a whole sweep performs zero rewrites.
	MaxIter int

	passes []Pass
}

// DefaultMaxIter bounds fixpoint iteration when MaxIter is unset. Real
// models converge in 2-3 sweeps; the bound only guards against a pass
// that keeps "finding" work.
const DefaultMaxIter = 10

// NewManager builds a manager over the given passes in order.
func NewManager(passes ...Pass) *PassManager {
	m := &PassManager{}
	for _, p := range passes {
		m.Register(p)
	}
	return m
}

// Register appends a pass to the sequence.
func (m *PassManager) Register(p Pass) {
	if p == nil {
		panic("opt: Register(nil)")
	}
	m.passes = append(m.passes, p)
}

// Passes returns the registered sequence (callers must not mutate it).
func (m *PassManager) Passes() []Pass { return m.passes }

// Run executes the pass sequence over g to a fixpoint, verifying the
// graph after every pass run. It returns the accumulated report; on an
// invariant violation the error is a *VerifyError and the graph is left
// as the offending pass produced it (for postmortem inspection — do not
// execute it).
func (m *PassManager) Run(g *graph.Graph) (*Report, error) {
	maxIter := m.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	r := &Report{
		Graph:       g.Name,
		Level:       LevelUnset,
		NodesBefore: len(g.Nodes),
		EdgesBefore: countEdges(g),
	}
	stats := make([]*PassStat, len(m.passes))
	for i, p := range m.passes {
		stats[i] = &PassStat{Pass: p.Name()}
	}
	// Gate the input graph before any pass runs, so pre-existing
	// breakage is attributed to the caller, not to the first pass.
	if diags := gate(g); len(diags) > 0 {
		return r, &VerifyError{Pass: "<input>", Iteration: 0, Diags: diags}
	}
	for iter := 1; iter <= maxIter; iter++ {
		r.Iterations = iter
		sweep := 0
		for i, p := range m.passes {
			nodes, edges := len(g.Nodes), countEdges(g)
			res, err := p.Run(g)
			if err != nil {
				return r, fmt.Errorf("opt: pass %s (iteration %d): %w", p.Name(), iter, err)
			}
			st := stats[i]
			st.Runs++
			st.Rewrites += res.Rewrites
			st.NodeDelta += len(g.Nodes) - nodes
			st.EdgeDelta += countEdges(g) - edges
			if diags := gate(g); len(diags) > 0 {
				return r, &VerifyError{Pass: p.Name(), Iteration: iter, Diags: diags}
			}
			sweep += res.Rewrites
		}
		if sweep == 0 {
			break
		}
	}
	r.NodesAfter = len(g.Nodes)
	r.EdgesAfter = countEdges(g)
	for _, st := range stats {
		r.Stats = append(r.Stats, *st)
	}
	return r, nil
}

// gate re-proves the IR invariants after a pass: the full structural
// rule catalog, the quantization-domain dataflow walk, and — when the
// graph is static and already planar — a fresh buffer plan proven
// overlap-free. Only Error-severity diagnostics gate; warnings (dead
// nodes awaiting elimination later in the sequence) pass through.
func gate(g *graph.Graph) []verify.Diagnostic {
	diags := verify.CheckAll(g)
	if len(verify.Errors(diags)) == 0 && g.Mode == graph.Static {
		if plan, err := graph.PlanBuffers(g); err == nil {
			diags = append(diags, verify.CheckPlan(g, plan)...)
		}
	}
	return verify.Errors(diags)
}

func countEdges(g *graph.Graph) int {
	n := 0
	for _, node := range g.Nodes {
		n += len(node.Inputs)
	}
	return n
}

// Level selects how aggressively Optimize rewrites a graph.
type Level int

const (
	// LevelUnset marks a report produced by a custom manager rather
	// than a named level.
	LevelUnset Level = iota - 1
	// O0 applies no passes: the graph executes exactly as built.
	O0
	// O1 applies the always-safe cleanups — constant folding, identity
	// elimination, dead-node elimination — plus ahead-of-time weight
	// pre-packing into the GEMM panel layout (bitwise identical; it only
	// changes where packing happens, not what is computed).
	O1
	// O2 adds pattern fusion: conv→BN→activation and dense→activation
	// chains collapse into single fused-kernel dispatches, bitwise
	// identical to the unfused graph.
	O2
)

// String renders the level in compiler convention ("O2").
func (l Level) String() string {
	switch l {
	case O0:
		return "O0"
	case O1:
		return "O1"
	case O2:
		return "O2"
	}
	return "unset"
}

// ParseLevel parses "O0"/"O1"/"O2" (case-insensitive).
func ParseLevel(s string) (Level, error) {
	switch strings.ToUpper(s) {
	case "O0":
		return O0, nil
	case "O1":
		return O1, nil
	case "O2":
		return O2, nil
	}
	return O0, fmt.Errorf("opt: unknown optimization level %q (want O0, O1, or O2)", s)
}

// Passes returns the pass sequence for a level, in execution order.
// Cleanups run before fusion so folded subgraphs and removed identities
// expose single-consumer chains; dead-node elimination runs last each
// sweep to collect what the other passes orphaned.
func (l Level) Passes() []Pass {
	switch l {
	case O1:
		return []Pass{ConstantFolding(), IdentityElimination(), DeadElimination(), WeightPrepack()}
	case O2:
		return []Pass{ConstantFolding(), IdentityElimination(), PatternFusion(), DeadElimination(), WeightPrepack()}
	}
	return nil
}

// Optimize runs the level's pass sequence over g to a fixpoint and
// returns the report. O0 verifies the graph once (a session must not
// accept a broken graph just because optimization was off) but runs no
// passes.
func Optimize(g *graph.Graph, level Level) (*Report, error) {
	m := NewManager(level.Passes()...)
	r, err := m.Run(g)
	if r != nil {
		r.Level = level
	}
	return r, err
}
