package opt

import (
	"fmt"

	"edgebench/internal/graph"
)

// Built-in pass constructors. Each wraps a count-returning rewrite from
// internal/graph; the manager supplies verification, fixpoint
// iteration, and reporting.

// PatternFusion fuses compute→BatchNorm→activation chains into single
// fused-kernel nodes: the BN becomes a runtime per-channel affine
// epilogue (bitwise identical to the separate node — unlike FoldBN,
// nothing rewrites the weights) and the activation becomes the node's
// fused Activation.
func PatternFusion() Pass {
	return NewPass("pattern-fusion", func(g *graph.Graph) (int, error) {
		return graph.FusePatterns(g), nil
	})
}

// ConstantFolding evaluates all-constant subgraphs at compile time
// through the executor itself and replaces them with OpConst nodes.
func ConstantFolding() Pass {
	return NewPass("constant-folding", graph.FoldConstants)
}

// IdentityElimination removes structural no-ops (factor-1 upsamples,
// group-1 shuffles, zero pads, single-input concats, rank-1 flattens).
func IdentityElimination() Pass {
	return NewPass("identity-elimination", func(g *graph.Graph) (int, error) {
		return graph.EliminateIdentity(g), nil
	})
}

// DeadElimination removes nodes unreachable from any graph output,
// keeping the graph input alive even when orphaned.
func DeadElimination() Pass {
	return NewPass("dead-elimination", func(g *graph.Graph) (int, error) {
		return graph.EliminateDeadCount(g), nil
	})
}

// WeightPrepack packs every GEMM-executable node's weights into the
// blocked-panel layout the microkernels consume (Node.Packed/PackedQ),
// so repeated forwards skip the per-call packing — the ahead-of-time
// layout half of the paper's deployment pipeline. Runs last in the
// sequence so it packs the weights the other rewrites settled on;
// idempotent, so the fixpoint sweep after it reports zero rewrites.
func WeightPrepack() Pass {
	return NewPass("prepack-weights", func(g *graph.Graph) (int, error) {
		return graph.PrepackWeights(g), nil
	})
}

// Legacy lowering passes, re-exported behind the verify gate. These are
// the void-style passes the framework lowering pipelines (Table II) and
// the CLIs compose directly — each call runs the underlying rewrite and
// re-proves the IR invariants, panicking on violation (passes are
// internal transformations, so a broken graph is a programming error at
// these call sites; use a PassManager for error-returning runs).

// checked runs fn over g and panics with the verifier's diagnostics if
// the rewrite broke IR invariants.
func checked(name string, g *graph.Graph, fn func(*graph.Graph)) {
	fn(g)
	if diags := gate(g); len(diags) > 0 {
		panic((&VerifyError{Pass: name, Iteration: 1, Diags: diags}).Error())
	}
}

// FoldBN folds batch-norms into producer weights (perturbs numerics;
// prefer PatternFusion's bit-exact epilogue absorption when the graph
// will be checked for equivalence).
func FoldBN(g *graph.Graph) { checked("fold-bn", g, graph.FoldBN) }

// FuseActivations merges activation nodes into their producers.
func FuseActivations(g *graph.Graph) { checked("fuse-activations", g, graph.FuseActivations) }

// EliminateDead removes nodes unreachable from any output.
func EliminateDead(g *graph.Graph) { checked("dead-elimination", g, graph.EliminateDead) }

// QuantizeINT8 applies per-tensor post-training INT8 quantization.
func QuantizeINT8(g *graph.Graph) { checked("quantize-int8", g, graph.QuantizeINT8) }

// QuantizeINT8PerChannel applies per-channel post-training INT8
// quantization.
func QuantizeINT8PerChannel(g *graph.Graph) {
	checked("quantize-int8-per-channel", g, graph.QuantizeINT8PerChannel)
}

// CastFP16 drops execution to half precision.
func CastFP16(g *graph.Graph) { checked("cast-fp16", g, graph.CastFP16) }

// Prune returns a magnitude-pruning pass at the given fraction.
func Prune(fraction float64) func(*graph.Graph) {
	return func(g *graph.Graph) {
		checked(fmt.Sprintf("prune-%.2f", fraction), g, graph.Prune(fraction))
	}
}

// FreezeGraph marks the graph deployment-ready.
func FreezeGraph(g *graph.Graph) { checked("freeze", g, graph.FreezeGraph) }
