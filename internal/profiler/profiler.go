// Package profiler reproduces the paper's software-stack analysis
// (§VI-B3, Fig. 5): it attributes the total wall time of an N-inference
// profiling run to the named function groups the paper's cProfile traces
// surface — library loading, computation-graph setup, tensor/weight
// transfer, per-kernel compute (conv2d, batch_norm, linear, activation),
// and session machinery.
//
// One-time costs (imports, graph construction, weight initialization)
// are modeled explicitly because they dominate short profiling runs:
// the paper could only amortize TensorFlow's graph build over 30
// inferences on the RPi, which is why base_layer shows at 38-50%.
package profiler

import (
	"sort"

	"edgebench/internal/core"
	"edgebench/internal/device"
	"edgebench/internal/graph"
)

// Entry is one slice of the profile pie.
type Entry struct {
	Group   string
	Seconds float64
	Share   float64
}

// Profile simulates profiling iters inferences of the session and
// returns the per-group attribution, largest share first.
func Profile(s *core.Session, iters int) []Entry {
	if iters < 1 {
		iters = 1
	}
	groups := map[string]float64{}

	one := oneTimeCosts(s)
	for g, v := range one {
		groups[g] += v
	}

	perInf := perInferenceCosts(s)
	for g, v := range perInf {
		groups[g] += v * float64(iters)
	}

	var total float64
	for _, v := range groups {
		total += v
	}
	out := make([]Entry, 0, len(groups))
	for g, v := range groups {
		out = append(out, Entry{Group: g, Seconds: v, Share: v / total})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share > out[j].Share {
			return true
		}
		if out[i].Share < out[j].Share {
			return false
		}
		return out[i].Group < out[j].Group
	})
	return out
}

// TotalSeconds sums a profile.
func TotalSeconds(entries []Entry) float64 {
	var t float64
	for _, e := range entries {
		t += e.Seconds
	}
	return t
}

// Share returns the share of a named group (0 if absent).
func Share(entries []Entry, group string) float64 {
	for _, e := range entries {
		if e.Group == group {
			return e.Share
		}
	}
	return 0
}

// Group names shared with the paper's Fig. 5 legends.
const (
	GroupLibraryLoad = "library loading"
	GroupGraphSetup  = "graph setup"   // base_layer / model.__init__
	GroupTransfer    = "tensor to dev" // _C._TensorBase.to()
	GroupWeightInit  = "weight init"   // _initialize_variable / randn
	GroupSession     = "session run"   // TF_SessionRunCallable
	GroupConv        = "conv2d"
	GroupBatchNorm   = "batch_norm"
	GroupLinear      = "linear"
	GroupActivation  = "activation"
	GroupOther       = "other ops"
	GroupDispatch    = "op dispatch" // dynamic-graph per-op overhead
)

// oneTimeCosts models initialization: library import, computation-graph
// construction (static frameworks), parameter initialization/transfer.
func oneTimeCosts(s *core.Session) map[string]float64 {
	out := map[string]float64{}
	slow := cpuSlowness(s.Device)

	// Library import scales with the framework's footprint and the
	// host CPU speed (TensorFlow's "huge codebase", §VI-B1).
	out[GroupLibraryLoad] = float64(s.Framework.BaselineBytes) / 30e6 * slow

	g := s.Lowered()
	params := float64(g.Params())
	numOps := float64(g.NumOps())

	if g.Mode == graph.Static {
		// Static graph construction: per-op cost through the Python
		// layer stack (Fig. 5b/d base_layer).
		out[GroupGraphSetup] = numOps * 0.10 * slow
		out[GroupWeightInit] = params * 4 / 9e6 * slow
	} else {
		// Dynamic graphs build per run; construction shows as model
		// init plus, on GPU hosts, the parameter transfer (.to()).
		out[GroupGraphSetup] = numOps * 0.012 * slow
		if s.Device.Class == device.EdgeGPU || s.Device.Class == device.HPCGPU {
			out[GroupTransfer] = 4.0*slow + params*4/0.8e9
		} else {
			out[GroupWeightInit] = params * 4 / 40e6 * slow
		}
	}
	return out
}

// perInferenceCosts splits one inference's layer timeline into the
// paper's kernel groups.
func perInferenceCosts(s *core.Session) map[string]float64 {
	out := map[string]float64{}
	var dispatch float64
	for _, lt := range s.LayerTimes() {
		body := lt.Seconds - lt.DispatchSec
		dispatch += lt.DispatchSec
		switch lt.Node.Kind {
		case graph.OpConv2D, graph.OpDepthwiseConv2D, graph.OpConv3D:
			out[GroupConv] += body
		case graph.OpBatchNorm:
			out[GroupBatchNorm] += body
		case graph.OpDense:
			out[GroupLinear] += body
		case graph.OpReLU, graph.OpReLU6, graph.OpLeakyReLU, graph.OpSigmoid, graph.OpTanh, graph.OpSoftmax:
			out[GroupActivation] += body
		default:
			out[GroupOther] += body
		}
	}
	// Static sessions surface the run-callable machinery; dynamic
	// frameworks surface per-op dispatch instead (Fig. 5a vs 5b).
	if s.Lowered().Mode == graph.Static {
		out[GroupSession] += sessionSeconds(s)
	} else {
		out[GroupDispatch] += dispatch
		out[GroupSession] += sessionSeconds(s)
	}
	return out
}

// sessionSeconds recovers the per-inference session overhead as the gap
// between the inference total and the layer sum.
func sessionSeconds(s *core.Session) float64 {
	var layers float64
	for _, lt := range s.LayerTimes() {
		layers += lt.Seconds
	}
	gap := s.InferenceSeconds() - layers
	if gap < 0 {
		return 0
	}
	return gap
}

// cpuSlowness scales one-time Python work by host-CPU capability
// relative to a desktop-class core.
func cpuSlowness(d *device.Device) float64 {
	switch d.Class {
	case device.EdgeCPU:
		return 6.0 // Cortex-A53 @ 1.2 GHz
	case device.EdgeGPU:
		return 2.5 // Cortex-A57 hosts
	case device.EdgeAccel, device.FPGA:
		return 5.0
	default:
		return 1.0
	}
}
