package profiler_test

import (
	"math"
	"testing"

	"edgebench/internal/core"
	"edgebench/internal/profiler"
)

func session(t *testing.T, m, fw, dev string) *core.Session {
	t.Helper()
	s, err := core.New(m, fw, dev)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSharesSumToOne(t *testing.T) {
	for _, c := range [][2]string{{"PyTorch", "RPi3"}, {"TensorFlow", "RPi3"},
		{"PyTorch", "JetsonTX2"}, {"TensorFlow", "JetsonTX2"}} {
		s := session(t, "ResNet-18", c[0], c[1])
		entries := profiler.Profile(s, 30)
		var sum float64
		for _, e := range entries {
			if e.Seconds < 0 || e.Share < 0 {
				t.Fatalf("%v: negative entry %+v", c, e)
			}
			sum += e.Share
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%v: shares sum to %v", c, sum)
		}
	}
}

func TestSortedDescending(t *testing.T) {
	entries := profiler.Profile(session(t, "ResNet-18", "PyTorch", "RPi3"), 30)
	for i := 1; i < len(entries); i++ {
		if entries[i].Share > entries[i-1].Share {
			t.Fatal("entries must be sorted by share, descending")
		}
	}
}

func TestFig5aPyTorchRPiConvDominated(t *testing.T) {
	// Fig. 5a: PyTorch on RPi spends the bulk of its time in compute,
	// with conv2d the largest single group (~81% in the paper).
	entries := profiler.Profile(session(t, "ResNet-18", "PyTorch", "RPi3"), 30)
	conv := profiler.Share(entries, profiler.GroupConv)
	if conv < 0.35 {
		t.Fatalf("conv2d share = %.0f%%, should dominate the PyTorch/RPi profile", conv*100)
	}
	if entries[0].Group != profiler.GroupConv {
		t.Fatalf("largest group = %s, want conv2d", entries[0].Group)
	}
	// Graph setup is negligible for the dynamic graph (§VI-B3).
	if gs := profiler.Share(entries, profiler.GroupGraphSetup); gs > 0.10 {
		t.Fatalf("PyTorch graph setup share = %.0f%%, should be negligible", gs*100)
	}
}

func TestFig5bTensorFlowRPiSetupHeavy(t *testing.T) {
	// Fig. 5b: TensorFlow's one-time graph construction (base_layer)
	// accounts for a large share over a 30-inference profile (38-50%).
	entries := profiler.Profile(session(t, "ResNet-18", "TensorFlow", "RPi3"), 30)
	setup := profiler.Share(entries, profiler.GroupGraphSetup) +
		profiler.Share(entries, profiler.GroupWeightInit)
	if setup < 0.30 || setup > 0.70 {
		t.Fatalf("TF one-time setup share = %.0f%%, paper ~46-58%%", setup*100)
	}
	if lib := profiler.Share(entries, profiler.GroupLibraryLoad); lib < 0.05 {
		t.Fatalf("library loading share = %.0f%%, paper ~10-14%%", lib*100)
	}
}

func TestFig5cGPUShiftsToSetup(t *testing.T) {
	// Fig. 5c/d: on the TX2's GPU, compute shrinks so setup/transfer
	// dominates both frameworks.
	pt := profiler.Profile(session(t, "ResNet-18", "PyTorch", "JetsonTX2"), 1000)
	conv := profiler.Share(pt, profiler.GroupConv)
	transfer := profiler.Share(pt, profiler.GroupTransfer)
	if transfer == 0 {
		t.Fatal("GPU profile should carry a tensor-transfer group (.to())")
	}
	ptRPi := profiler.Profile(session(t, "ResNet-18", "PyTorch", "RPi3"), 1000)
	if conv >= profiler.Share(ptRPi, profiler.GroupConv) {
		t.Fatal("conv share should shrink moving from RPi to the TX2 GPU")
	}
}

func TestAmortizationWithIterations(t *testing.T) {
	// One-time costs amortize: the graph-setup share must fall as the
	// profile lengthens (the paper could not run enough inferences to
	// amortize TF's setup, §VI-B3).
	s := session(t, "ResNet-18", "TensorFlow", "RPi3")
	short := profiler.Share(profiler.Profile(s, 30), profiler.GroupGraphSetup)
	long := profiler.Share(profiler.Profile(s, 1000), profiler.GroupGraphSetup)
	if long >= short {
		t.Fatalf("graph setup share should amortize: 30 iters %.0f%%, 1000 iters %.0f%%", short*100, long*100)
	}
}

func TestTotalGrowsLinearly(t *testing.T) {
	s := session(t, "MobileNet-v2", "TFLite", "RPi3")
	t100 := profiler.TotalSeconds(profiler.Profile(s, 100))
	t200 := profiler.TotalSeconds(profiler.Profile(s, 200))
	perInf := t200 - t100
	if perInf <= 0 {
		t.Fatal("per-inference cost must be positive")
	}
	if math.Abs((t200-2*t100+ /* one-time counted twice */ (t100-perInf*100))/t200) > 0.01 {
		t.Log("one-time/amortized split behaves nonlinearly within tolerance")
	}
	if iters1 := profiler.Profile(s, 0); len(iters1) == 0 {
		t.Fatal("zero iterations should clamp to one")
	}
}

func TestShareMissingGroup(t *testing.T) {
	entries := profiler.Profile(session(t, "ResNet-18", "PyTorch", "RPi3"), 10)
	if profiler.Share(entries, "no-such-group") != 0 {
		t.Fatal("missing group should read zero")
	}
}
