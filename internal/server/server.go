package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"edgebench/internal/metrics"
	"edgebench/internal/serving"
	"edgebench/internal/stats"
	"edgebench/internal/tensor"
)

// Metrics is the server's observability surface: every quantity the
// paper's serving analysis provisions by (request rate, tail latency,
// queue depth, shed rate) plus the batching-specific ones (batch-size
// distribution, high-water mark). Exposed on /metrics in Prometheus
// text format.
type Metrics struct {
	// Registry renders the families below on /metrics.
	Registry *metrics.Registry
	// Requests counts completed HTTP requests by status code.
	Requests *metrics.CounterVec
	// Shed counts admission rejections (429s before any queueing).
	Shed *metrics.Counter
	// Batches counts dispatched engine batches.
	Batches *metrics.Counter
	// EngineErrors counts batches that failed inside the engine.
	EngineErrors *metrics.Counter
	// DeadlineDrops counts requests whose context expired while queued,
	// dropped before reaching the engine.
	DeadlineDrops *metrics.Counter
	// QueueDepth gauges requests currently waiting for a batch window.
	QueueDepth *metrics.Gauge
	// InFlight gauges requests between admission and response.
	InFlight *metrics.Gauge
	// BatchSize summarizes dispatched batch sizes (quantiles).
	BatchSize *metrics.Summary
	// BatchMax is the high-water batch size — the single number that
	// proves micro-batching is active (> 1 under concurrent load).
	BatchMax *metrics.Gauge
	// Latency summarizes total request latency in seconds.
	Latency *metrics.Summary
	// QueueWait summarizes time spent queued before dispatch, seconds.
	QueueWait *metrics.Summary
	// ExecDType marks the engine's execution datatype: the active dtype's
	// series is 1 ({dtype="int8"} after a -quantize int8 deployment).
	ExecDType *metrics.GaugeVec
	// WeightBytes gauges the model's parameter footprint in the execution
	// datatype — the series the 4x int8 footprint drop shows up in.
	WeightBytes *metrics.Gauge
	// Int8Dispatches / FP32Dispatches gauge cumulative compute-kernel
	// dispatches by datatype across the engine's replicas, refreshed on
	// each /metrics scrape. FusedDispatches gauges the subset (either
	// datatype) that ran a fused epilogue kernel — absorbed BN/activation
	// applied inside the kernel's output loop.
	Int8Dispatches  *metrics.Gauge
	FP32Dispatches  *metrics.Gauge
	FusedDispatches *metrics.Gauge
}

// NewMetrics builds the standard serving metric set on a fresh registry.
func NewMetrics() *Metrics {
	r := metrics.NewRegistry()
	return &Metrics{
		Registry:      r,
		Requests:      r.NewCounterVec("edgeserve_requests_total", "Completed HTTP inference requests by status code.", "code"),
		Shed:          r.NewCounter("edgeserve_shed_total", "Requests rejected at admission because the queue was full."),
		Batches:       r.NewCounter("edgeserve_batches_total", "Batches dispatched to the inference engine."),
		EngineErrors:  r.NewCounter("edgeserve_engine_errors_total", "Batches that failed inside the inference engine."),
		DeadlineDrops: r.NewCounter("edgeserve_deadline_drops_total", "Requests whose deadline expired while queued, dropped before the engine."),
		QueueDepth:    r.NewGauge("edgeserve_queue_depth", "Requests currently waiting for a batch window."),
		InFlight:      r.NewGauge("edgeserve_inflight", "Requests between admission and response."),
		BatchSize:     r.NewSummary("edgeserve_batch_size", "Dispatched batch size distribution."),
		BatchMax:      r.NewGauge("edgeserve_batch_size_max", "Largest batch dispatched since start."),
		Latency:       r.NewSummary("edgeserve_request_seconds", "Total request latency in seconds (successful requests)."),
		QueueWait:     r.NewSummary("edgeserve_queue_wait_seconds", "Time requests spent queued before dispatch."),
		ExecDType:     r.NewGaugeVec("edgeserve_exec_dtype", "Execution datatype of the served model (active dtype is 1).", "dtype"),
		WeightBytes:   r.NewGauge("edgeserve_model_weight_bytes", "Model parameter footprint in the execution datatype, bytes."),
		Int8Dispatches: r.NewGauge("edgeserve_int8_kernel_dispatches",
			"Cumulative conv/dense kernels dispatched on the int8 path across replicas."),
		FP32Dispatches: r.NewGauge("edgeserve_fp32_kernel_dispatches",
			"Cumulative conv/dense kernels dispatched on the FP32 path across replicas."),
		FusedDispatches: r.NewGauge("edgeserve_fused_kernel_dispatches",
			"Cumulative compute kernels that ran a fused epilogue (absorbed BN/activation) across replicas."),
	}
}

// Engine is the backend contract the server fronts: batched inference
// plus the introspection the metrics endpoint exports. serving.Engine
// is the single-process implementation; cluster.Pipeline satisfies the
// same contract across a chain of stage processes, so the whole HTTP
// surface (admission queue, micro-batching, deadlines, metrics) fronts
// either without knowing which.
type Engine interface {
	Backend
	// InputShape is the shape one request tensor must have.
	InputShape() tensor.Shape
	// ExecDType labels the execution datatype ("fp32", "int8", ...).
	ExecDType() string
	// WeightBytes is the parameter footprint in the execution datatype.
	WeightBytes() int64
	// DispatchCounts reports cumulative kernel dispatches by path.
	DispatchCounts() (int8Kernels, fp32Kernels, fusedKernels int64)
	// Close drains the backend; subsequent InferBatch calls must fail.
	Close() error
}

// Server is the HTTP inference server: admission control and
// micro-batching in front of an Engine, with /infer, /healthz, and
// /metrics endpoints.
type Server struct {
	cfg      Config
	eng      Engine
	bat      *Batcher
	m        *Metrics
	mux      *http.ServeMux
	ready    atomic.Bool
	shape    tensor.Shape
	scrapeMu sync.Mutex
	onScrape []func()
}

// New wires a server around an engine. The engine must be built from a
// materialized graph (serving.NewEngine enforces this).
func New(eng Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	s := &Server{
		cfg:   cfg,
		eng:   eng,
		bat:   NewBatcher(eng, cfg, m),
		m:     m,
		mux:   http.NewServeMux(),
		shape: eng.InputShape(),
	}
	m.ExecDType.Set(eng.ExecDType(), 1)
	m.WeightBytes.Set(float64(eng.WeightBytes()))
	s.mux.HandleFunc("/infer", s.handleInfer)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	metricsHandler := m.Registry.Handler()
	s.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Refresh the dispatch gauges from the engine at scrape time so
		// the exported counts reflect kernels run since start.
		i8, f32, fz := eng.DispatchCounts()
		m.Int8Dispatches.SetMax(float64(i8))
		m.FP32Dispatches.SetMax(float64(f32))
		m.FusedDispatches.SetMax(float64(fz))
		s.scrapeMu.Lock()
		hooks := append([]func(){}, s.onScrape...)
		s.scrapeMu.Unlock()
		for _, fn := range hooks {
			fn()
		}
		metricsHandler.ServeHTTP(w, r)
	})
	s.ready.Store(true)
	return s
}

// OnScrape registers fn to run at every /metrics scrape, before the
// registry renders — the hook backends use to refresh gauges that are
// expensive or remote (the cluster dispatcher polls per-stage stats
// here). Safe to call concurrently with serving.
func (s *Server) OnScrape(fn func()) {
	s.scrapeMu.Lock()
	s.onScrape = append(s.onScrape, fn)
	s.scrapeMu.Unlock()
}

// Handler returns the root handler (mount it on an http.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the metric set for in-process assertions.
func (s *Server) Metrics() *Metrics { return s.m }

// Close begins graceful drain: readiness flips to failing (load
// balancers stop sending), new work is rejected with 503, queued work is
// served to completion, and the engine's replicas are drained. Callers
// should http.Server.Shutdown first so in-flight connections finish.
func (s *Server) Close() error {
	s.ready.Store(false)
	s.bat.Close()
	return s.eng.Close()
}

// InferRequest is the /infer request body. Either Data carries a full
// input tensor (length must match the model's input shape) or Seed asks
// the server to generate a deterministic pseudo-random input — the
// load-generator path, which keeps attack payloads tiny.
type InferRequest struct {
	Data       []float32 `json:"data,omitempty"`
	Seed       int64     `json:"seed,omitempty"`
	DeadlineMs float64   `json:"deadline_ms,omitempty"`
}

// InferResponse is the /infer response body.
type InferResponse struct {
	// Argmax is the index of the largest output element (the predicted
	// class for classifiers).
	Argmax int `json:"argmax"`
	// Output is the full output tensor, flattened.
	Output []float32 `json:"output"`
	// BatchSize is the size of the micro-batch this request rode in.
	BatchSize int `json:"batch_size"`
	// TotalMs is the server-side latency: admission to engine result.
	TotalMs float64 `json:"total_ms"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("POST only"))
		return
	}
	// An empty body is legal (seed-0 generated input), so io.EOF passes.
	var req InferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	in, err := s.buildInput(req)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	// Deadline propagation: explicit per-request deadline wins, then the
	// server default; both ride the request context so queue, batcher,
	// and engine all observe the same clock.
	ctx := r.Context()
	deadline := s.cfg.Deadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs * float64(time.Millisecond))
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}

	s.m.InFlight.Add(1)
	defer s.m.InFlight.Add(-1)
	start := time.Now()
	out, batch, err := s.bat.Do(ctx, in)
	if err != nil {
		code := statusFor(err)
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+1)))
		}
		s.fail(w, code, err)
		return
	}
	elapsed := time.Since(start)
	s.m.Latency.Observe(elapsed.Seconds())
	s.m.Requests.Inc("200")
	w.Header().Set("Content-Type", "application/json")
	// A failed write means the client went away; nothing to recover.
	_ = json.NewEncoder(w).Encode(InferResponse{
		Argmax:    argmax(out.Data),
		Output:    out.Data,
		BatchSize: batch,
		TotalMs:   float64(elapsed) / float64(time.Millisecond),
	})
}

// handleHealthz is the readiness probe: 200 while serving, 503 once
// drain has begun so load balancers stop routing here.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	_, _ = w.Write([]byte("ok\n"))
}

// buildInput materializes the request's input tensor.
func (s *Server) buildInput(req InferRequest) (*tensor.Tensor, error) {
	n := s.shape.NumElems()
	if len(req.Data) > 0 {
		if len(req.Data) != n {
			return nil, fmt.Errorf("data length %d does not match input shape %v (%d elements)", len(req.Data), s.shape, n)
		}
		return tensor.FromData(req.Data, s.shape...), nil
	}
	return SeededInput(s.shape, req.Seed), nil
}

// SeededInput generates the deterministic pseudo-random input tensor a
// request seed maps to. It is shared by the /infer seed path and the
// smoke tools, so bit-exactness comparisons across processes and
// topologies run on identical inputs.
func SeededInput(shape tensor.Shape, seed int64) *tensor.Tensor {
	in := tensor.New(shape...)
	rng := stats.NewRNG(seed)
	for i := range in.Data {
		in.Data[i] = float32(rng.Float64()*2 - 1)
	}
	return in
}

// fail writes the JSON error envelope and records the status metric.
func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.m.Requests.Inc(strconv.Itoa(code))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

// statusFor maps pipeline errors onto HTTP semantics. Any error in the
// chain may declare itself Unavailable() (cluster.StageError does, when
// a stage process dies) to get 503 rather than a generic 500, so load
// balancers retry elsewhere instead of treating the failure as a bug.
func statusFor(err error) int {
	var unavail interface{ Unavailable() bool }
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrClosed), errors.Is(err, serving.ErrEngineClosed):
		return http.StatusServiceUnavailable
	case errors.As(err, &unavail) && unavail.Unavailable():
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// argmax returns the index of the largest element (0 for empty).
func argmax(xs []float32) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
