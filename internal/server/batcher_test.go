package server

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/serving"
	"edgebench/internal/tensor"
)

// servingCNN builds a small materialized graph with branching, matching
// the engine tests' workload.
func servingCNN(t testing.TB) *graph.Graph {
	t.Helper()
	b := nn.NewBuilder("server-cnn", nn.Options{Materialize: true, Seed: 11}, 3, 16, 16)
	stem := b.ConvBNReLU("stem", 8, 3, 1, 1)
	br1 := b.From(stem).Conv2D("br1", 8, 1, 1, 0, true)
	br2 := b.From(stem).Conv2D("br2", 8, 3, 1, 1, true)
	b.Concat("cat", br1, br2)
	b.MaxPool("pool", 2, 2, 0)
	b.GlobalAvgPool("gap")
	b.Dense("fc", 10, true)
	b.Softmax("prob")
	return b.Build()
}

func testInput(i int) *tensor.Tensor {
	in := tensor.New(3, 16, 16)
	for j := range in.Data {
		in.Data[j] = float32(math.Sin(float64(i*257 + j)))
	}
	return in
}

// fakeBackend records every tensor it sees and answers with a
// configurable delay; it lets tests assert exactly which requests
// reached the engine.
type fakeBackend struct {
	mu      sync.Mutex
	batches [][]*tensor.Tensor
	delay   time.Duration
	block   chan struct{} // when non-nil, InferBatch waits for it
	entered atomic.Int32  // calls that have entered InferBatch
}

func (f *fakeBackend) InferBatch(ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
	f.entered.Add(1)
	if f.block != nil {
		<-f.block
	}
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	f.mu.Lock()
	f.batches = append(f.batches, append([]*tensor.Tensor(nil), ins...))
	f.mu.Unlock()
	outs := make([]*tensor.Tensor, len(ins))
	for i, in := range ins {
		outs[i] = in // echo
	}
	return outs, nil
}

func (f *fakeBackend) sawTensor(t *tensor.Tensor) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, b := range f.batches {
		for _, in := range b {
			if in == t {
				return true
			}
		}
	}
	return false
}

func (f *fakeBackend) dispatched() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, b := range f.batches {
		n += len(b)
	}
	return n
}

// TestBatcherMatchesSequentialInfer is the batching correctness gate
// (run under -race by make race): many concurrent requests through the
// batcher + real engine must produce outputs element-identical to a
// dedicated sequential executor on the same inputs.
func TestBatcherMatchesSequentialInfer(t *testing.T) {
	g := servingCNN(t)
	eng, err := serving.NewEngine(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	b := NewBatcher(eng, Config{MaxBatch: 4, MaxWait: 5 * time.Millisecond}, NewMetrics())
	defer b.Close()

	const n = 24
	ins := make([]*tensor.Tensor, n)
	outs := make([]*tensor.Tensor, n)
	batches := make([]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ins[i] = testInput(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], batches[i], errs[i] = b.Do(context.Background(), ins[i])
		}(i)
	}
	wg.Wait()

	ref := &graph.Executor{}
	sawMultiRequestBatch := false
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if batches[i] > 1 {
			sawMultiRequestBatch = true
		}
		want, err := ref.Run(g, ins[i])
		if err != nil {
			t.Fatal(err)
		}
		for j := range want.Data {
			if outs[i].Data[j] != want.Data[j] {
				t.Fatalf("request %d: out[%d] = %v, want %v", i, j, outs[i].Data[j], want.Data[j])
			}
		}
	}
	// 24 simultaneous arrivals against a 4-wide window must coalesce at
	// least once; if every batch had size 1 the scheduler is not batching.
	if !sawMultiRequestBatch {
		t.Error("no request rode in a batch > 1 despite 24 concurrent arrivals")
	}
}

// TestBatcherDeadlineExpiry pins context propagation: a request whose
// deadline fires while queued is answered with the context error and is
// never dispatched to the backend.
func TestBatcherDeadlineExpiry(t *testing.T) {
	release := make(chan struct{})
	be := &fakeBackend{block: release}
	b := NewBatcher(be, Config{MaxBatch: 1, MaxWait: time.Millisecond, QueueCap: 8}, NewMetrics())
	defer b.Close()

	// Occupy the collector: this request blocks inside the backend.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := b.Do(context.Background(), testInput(0)); err != nil {
			t.Errorf("blocker request failed: %v", err)
		}
	}()
	// Wait until the blocker is actually inside InferBatch.
	waitUntil(t, func() bool { return be.inFlight() })

	// This one queues behind it with a deadline shorter than the block.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	victim := testInput(1)
	_, _, err := b.Do(ctx, victim)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired request returned %v, want DeadlineExceeded", err)
	}

	close(release)
	wg.Wait()
	b.Close()
	if be.sawTensor(victim) {
		t.Fatal("expired request reached the backend")
	}
}

// TestBatcherOverloadShedding pins admission control: once the queue is
// full, further requests fail fast with ErrOverloaded and none of the
// shed inputs ever reach the backend.
func TestBatcherOverloadShedding(t *testing.T) {
	release := make(chan struct{})
	be := &fakeBackend{block: release}
	m := NewMetrics()
	const qcap = 4
	b := NewBatcher(be, Config{MaxBatch: 1, MaxWait: time.Millisecond, QueueCap: qcap}, m)
	defer b.Close()

	// One request occupies the collector inside the backend...
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b.Do(context.Background(), testInput(0))
	}()
	waitUntil(t, func() bool { return be.inFlight() })

	// ...then cap more fill the queue.
	accepted := make([]*tensor.Tensor, qcap)
	for i := range accepted {
		accepted[i] = testInput(100 + i)
		wg.Add(1)
		go func(in *tensor.Tensor) {
			defer wg.Done()
			if _, _, err := b.Do(context.Background(), in); err != nil {
				t.Errorf("admitted request failed: %v", err)
			}
		}(accepted[i])
	}
	waitUntil(t, func() bool { return len(b.queue) == qcap })

	// Every further arrival must shed without queueing.
	shed := make([]*tensor.Tensor, 6)
	for i := range shed {
		shed[i] = testInput(200 + i)
		if _, _, err := b.Do(context.Background(), shed[i]); !errors.Is(err, ErrOverloaded) {
			t.Fatalf("overload request %d returned %v, want ErrOverloaded", i, err)
		}
	}
	if got := m.Shed.Value(); got != uint64(len(shed)) {
		t.Errorf("shed counter = %d, want %d", got, len(shed))
	}

	close(release)
	wg.Wait()
	b.Close() // drain everything admitted
	for _, in := range shed {
		if be.sawTensor(in) {
			t.Fatal("shed request reached the backend")
		}
	}
	if got := be.dispatched(); got != 1+qcap {
		t.Errorf("backend saw %d requests, want %d (blocker + admitted)", got, 1+qcap)
	}
}

// TestBatcherCloseDrains pins graceful shutdown: requests admitted
// before Close complete, requests after Close fail with ErrClosed.
func TestBatcherCloseDrains(t *testing.T) {
	be := &fakeBackend{delay: 2 * time.Millisecond}
	b := NewBatcher(be, Config{MaxBatch: 4, MaxWait: time.Millisecond, QueueCap: 16}, nil)

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = b.Do(context.Background(), testInput(i))
		}(i)
	}
	wg.Wait()
	b.Close()
	for i, err := range errs {
		if err != nil {
			t.Errorf("pre-close request %d: %v", i, err)
		}
	}
	if _, _, err := b.Do(context.Background(), testInput(9)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close request returned %v, want ErrClosed", err)
	}
}

// inFlight reports whether some InferBatch call has started (and, in
// blocking mode, is parked on the release channel).
func (f *fakeBackend) inFlight() bool { return f.entered.Load() > 0 }

// waitUntil polls cond for up to 2s.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}
