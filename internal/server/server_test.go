package server_test

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/server"
	"edgebench/internal/serving"
	"edgebench/internal/tensor"
)

func buildEngine(t testing.TB, replicas int) (*graph.Graph, *serving.Engine) {
	t.Helper()
	b := nn.NewBuilder("http-cnn", nn.Options{Materialize: true, Seed: 7}, 3, 16, 16)
	b.ConvBNReLU("stem", 8, 3, 1, 1)
	b.MaxPool("pool", 2, 2, 0)
	b.GlobalAvgPool("gap")
	b.Dense("fc", 10, true)
	b.Softmax("prob")
	g := b.Build()
	eng, err := serving.NewEngine(g, replicas)
	if err != nil {
		t.Fatal(err)
	}
	return g, eng
}

func postInfer(t *testing.T, url string, req server.InferRequest) (*http.Response, server.InferResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out server.InferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return resp, out
}

// TestServerInferMatchesEngine: a round trip through HTTP + batcher must
// return exactly what a direct engine call returns for the same input.
func TestServerInferMatchesEngine(t *testing.T) {
	g, eng := buildEngine(t, 2)
	srv := server.New(eng, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	in := tensor.New(3, 16, 16)
	for j := range in.Data {
		in.Data[j] = float32(math.Cos(float64(j)))
	}
	want, err := (&graph.Executor{}).Run(g, in)
	if err != nil {
		t.Fatal(err)
	}

	resp, out := postInfer(t, ts.URL, server.InferRequest{Data: in.Data})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Output) != len(want.Data) {
		t.Fatalf("output length %d, want %d", len(out.Output), len(want.Data))
	}
	for j := range want.Data {
		if out.Output[j] != want.Data[j] {
			t.Fatalf("output[%d] = %v, want %v", j, out.Output[j], want.Data[j])
		}
	}
	if out.BatchSize < 1 {
		t.Errorf("batch size %d", out.BatchSize)
	}
}

// TestServerSeededInputDeterministic: the seed path must be reproducible
// request to request.
func TestServerSeededInputDeterministic(t *testing.T) {
	_, eng := buildEngine(t, 1)
	srv := server.New(eng, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	_, a := postInfer(t, ts.URL, server.InferRequest{Seed: 42})
	_, b := postInfer(t, ts.URL, server.InferRequest{Seed: 42})
	for j := range a.Output {
		if a.Output[j] != b.Output[j] {
			t.Fatalf("seeded inference not deterministic at %d: %v vs %v", j, a.Output[j], b.Output[j])
		}
	}
}

// TestServerBadInput pins the 400 path: wrong-size data never reaches
// the engine.
func TestServerBadInput(t *testing.T) {
	_, eng := buildEngine(t, 1)
	srv := server.New(eng, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	resp, _ := postInfer(t, ts.URL, server.InferRequest{Data: []float32{1, 2, 3}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if got := srv.Metrics().Requests.Value("400"); got != 1 {
		t.Errorf("400 counter = %d, want 1", got)
	}
}

// slowEngine delays every dispatch so the admission queue observably
// fills during the overload flood regardless of how fast the kernels
// themselves run (pre-packed GEMM made the tiny test model quick
// enough to drain a 1-deep queue between arrivals).
type slowEngine struct {
	server.Engine
	delay time.Duration
}

func (s slowEngine) InferBatch(ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
	time.Sleep(s.delay)
	return s.Engine.InferBatch(ins)
}

// TestServerOverloadReturns429 floods a tiny queue and requires shed
// requests to come back 429 with a Retry-After hint.
func TestServerOverloadReturns429(t *testing.T) {
	_, eng := buildEngine(t, 1)
	srv := server.New(slowEngine{Engine: eng, delay: 2 * time.Millisecond},
		server.Config{MaxBatch: 1, QueueCap: 1, MaxWait: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	const n = 24
	var (
		mu         sync.Mutex
		shed, ok   int
		retryAfter bool
	)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(server.InferRequest{Seed: int64(i)})
			resp, err := http.Post(ts.URL+"/infer", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				ok++
			case http.StatusTooManyRequests:
				shed++
				if resp.Header.Get("Retry-After") != "" {
					retryAfter = true
				}
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	if shed == 0 {
		t.Fatal("no request was shed despite queue capacity 1 and 24 concurrent arrivals")
	}
	if !retryAfter {
		t.Error("429 responses carried no Retry-After header")
	}
	if got := srv.Metrics().Shed.Value(); got != uint64(shed) {
		t.Errorf("shed metric %d, want %d", got, shed)
	}
	if ok == 0 {
		t.Error("every request was shed; expected some admitted")
	}
}

// TestServerMetricsEndpoint scrapes /metrics after traffic and checks
// the exposition carries the serving families with sane values.
func TestServerMetricsEndpoint(t *testing.T) {
	_, eng := buildEngine(t, 2)
	srv := server.New(eng, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	for i := 0; i < 5; i++ {
		resp, _ := postInfer(t, ts.URL, server.InferRequest{Seed: int64(i)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm-up request %d: status %d", i, resp.StatusCode)
		}
	}
	raw, series, err := server.ScrapeMetrics(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(raw, "# TYPE edgeserve_request_seconds summary") {
		t.Errorf("missing summary TYPE header in exposition:\n%s", raw)
	}
	if got := series[`edgeserve_requests_total{code="200"}`]; got != 5 {
		t.Errorf("requests_total 200 = %v, want 5", got)
	}
	if got := series["edgeserve_request_seconds_count"]; got != 5 {
		t.Errorf("request_seconds_count = %v, want 5", got)
	}
	if got := series["edgeserve_batches_total"]; got < 1 {
		t.Errorf("batches_total = %v, want >= 1", got)
	}
	if _, okq := series[`edgeserve_request_seconds{quantile="0.99"}`]; !okq {
		t.Errorf("missing p99 quantile series:\n%s", raw)
	}
	if got := series[`edgeserve_exec_dtype{dtype="fp32"}`]; got != 1 {
		t.Errorf(`exec_dtype{dtype="fp32"} = %v, want 1`, got)
	}
	if got := series["edgeserve_model_weight_bytes"]; got <= 0 {
		t.Errorf("model_weight_bytes = %v, want > 0", got)
	}
	if got := series["edgeserve_fp32_kernel_dispatches"]; got < 1 {
		t.Errorf("fp32_kernel_dispatches = %v, want >= 1", got)
	}
}

// TestServerQuantizedMetrics boots the server on a QuantizeINT8 graph
// and asserts /metrics shows the int8 deployment: the dtype series flips
// to int8, the weight footprint drops 4x vs the FP32 twin, and the int8
// kernel dispatch gauge moves with traffic.
func TestServerQuantizedMetrics(t *testing.T) {
	_, fp32Eng := buildEngine(t, 1)
	fp32Bytes := fp32Eng.WeightBytes()
	fp32Eng.Close()

	g, _ := buildEngine(t, 1)
	graph.QuantizeINT8(g)
	eng, err := serving.NewEngine(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, _ := postInfer(t, ts.URL, server.InferRequest{Seed: int64(i)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	raw, series, err := server.ScrapeMetrics(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got := series[`edgeserve_exec_dtype{dtype="int8"}`]; got != 1 {
		t.Errorf(`exec_dtype{dtype="int8"} = %v, want 1; exposition:
%s`, got, raw)
	}
	got := series["edgeserve_model_weight_bytes"]
	if want := float64(fp32Bytes) / 4; got != want {
		t.Errorf("model_weight_bytes = %v, want %v (4x drop from fp32 %d)", got, want, fp32Bytes)
	}
	if got := series["edgeserve_int8_kernel_dispatches"]; got < 1 {
		t.Errorf("int8_kernel_dispatches = %v, want >= 1 after traffic", got)
	}
}

// TestServerHealthzAndDrain pins the readiness lifecycle: 200 while
// serving, 503 after Close, and /infer refuses new work after drain.
func TestServerHealthzAndDrain(t *testing.T) {
	_, eng := buildEngine(t, 1)
	srv := server.New(eng, server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d", resp.StatusCode)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain: %d, want 503", resp.StatusCode)
	}
	r2, _ := postInfer(t, ts.URL, server.InferRequest{Seed: 1})
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("infer after drain: %d, want 503", r2.StatusCode)
	}
}

// TestAttackAgainstLiveServer runs the built-in load generator against
// an httptest server at a modest rate and requires zero shed, zero
// failures, and micro-batching visibly active (max batch > 1).
func TestAttackAgainstLiveServer(t *testing.T) {
	if testing.Short() {
		t.Skip("drives real load")
	}
	_, eng := buildEngine(t, 2)
	srv := server.New(eng, server.Config{MaxBatch: 8, MaxWait: 5 * time.Millisecond, QueueCap: 128})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	rep, err := server.Attack(ts.URL, server.AttackOptions{
		Rate:     40,
		Duration: time.Second,
		Burst:    4,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent == 0 || rep.OK != rep.Sent {
		t.Fatalf("attack: %s", rep)
	}
	if rep.Shed != 0 || rep.Failed != 0 || rep.Deadline != 0 {
		t.Fatalf("attack saw rejects: %s", rep)
	}
	if rep.MaxBatch < 2 {
		t.Errorf("micro-batching never coalesced: %s", rep)
	}
	if got := srv.Metrics().BatchMax.Value(); got < 2 {
		t.Errorf("batch high-water mark %v, want >= 2", got)
	}
}
