package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"edgebench/internal/stats"
)

// AttackOptions parameterizes a load-generator run against a live
// server — the open-loop counterpart of serving.Simulate, so the
// analytic envelope and the real process can be compared on the same
// axes (rate in, latency quantiles and shed count out).
type AttackOptions struct {
	// Rate is the aggregate request rate in requests/second.
	Rate float64
	// Duration is how long the attack runs.
	Duration time.Duration
	// Burst fires this many simultaneous requests per arrival tick
	// (default 1). Bursts > 1 exercise the micro-batcher: simultaneous
	// arrivals land in one batch window.
	Burst int
	// Seed varies the generated inputs request to request.
	Seed int64
	// DeadlineMs, when positive, attaches a per-request deadline.
	DeadlineMs float64
	// Timeout bounds each HTTP round trip (default 30s).
	Timeout time.Duration
}

// ParseAttack parses the CLI attack spec "rate,duration[,burst]" shared
// by edgeserve and edgepipe. Rate "auto" leaves Rate zero for the
// caller to fill from a measured or simulated service time.
func ParseAttack(s string) (AttackOptions, error) {
	parts := strings.Split(s, ",")
	if len(parts) < 2 || len(parts) > 3 {
		return AttackOptions{}, fmt.Errorf("server: attack spec wants rate,duration[,burst], got %q", s)
	}
	var opts AttackOptions
	if parts[0] != "auto" {
		rate, err := strconv.ParseFloat(parts[0], 64)
		if err != nil || rate <= 0 {
			return opts, fmt.Errorf("server: bad attack rate %q", parts[0])
		}
		opts.Rate = rate
	}
	d, err := time.ParseDuration(parts[1])
	if err != nil || d <= 0 {
		return opts, fmt.Errorf("server: bad attack duration %q", parts[1])
	}
	opts.Duration = d
	opts.Burst = 4
	if len(parts) == 3 {
		b, err := strconv.Atoi(parts[2])
		if err != nil || b < 1 {
			return opts, fmt.Errorf("server: bad attack burst %q", parts[2])
		}
		opts.Burst = b
	}
	return opts, nil
}

// AttackReport summarizes one load-generator run.
type AttackReport struct {
	// Sent is the number of requests issued.
	Sent int
	// OK counts 200s, Shed counts 429s, Deadline counts 504s, and
	// Failed counts transport errors plus every other status.
	OK, Shed, Deadline, Failed int
	// MaxBatch is the largest batch any request reported riding in.
	MaxBatch int
	// MeanBatch is the mean reported batch size over successes.
	MeanBatch float64
	// P50, P95, P99 are client-observed latency quantiles in seconds.
	P50, P95, P99 float64
	// Elapsed is the wall time of the whole run.
	Elapsed time.Duration
}

// String renders the report on one line, mirroring serving.Result.
func (r AttackReport) String() string {
	return fmt.Sprintf("sent %d: ok %d, shed %d, deadline %d, failed %d; p50 %.1fms p95 %.1fms p99 %.1fms; batch mean %.2f max %d",
		r.Sent, r.OK, r.Shed, r.Deadline, r.Failed,
		r.P50*1e3, r.P95*1e3, r.P99*1e3, r.MeanBatch, r.MaxBatch)
}

// Attack drives an open-loop constant-rate load (in bursts of
// opts.Burst) at baseURL's /infer endpoint and reports what came back.
// Open loop means arrivals do not wait for responses — exactly the
// regime where queues grow and admission control matters.
func Attack(baseURL string, opts AttackOptions) (AttackReport, error) {
	if opts.Rate <= 0 || opts.Duration <= 0 {
		return AttackReport{}, fmt.Errorf("server: attack rate and duration must be positive")
	}
	if opts.Burst <= 0 {
		opts.Burst = 1
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	client := &http.Client{
		Timeout: opts.Timeout,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		},
	}

	interval := time.Duration(float64(opts.Burst) / opts.Rate * float64(time.Second))
	ticks := int(opts.Duration.Seconds() * opts.Rate / float64(opts.Burst))
	if ticks < 1 {
		ticks = 1
	}

	var (
		mu        sync.Mutex
		rep       AttackReport
		latencies []float64
		batchSum  int
	)
	var wg sync.WaitGroup
	start := time.Now()
	for tick := 0; tick < ticks; tick++ {
		// Open-loop pacing against absolute time, so slow responses
		// cannot throttle the arrival process.
		time.Sleep(time.Until(start.Add(time.Duration(tick) * interval)))
		for j := 0; j < opts.Burst; j++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				code, resp, err := fire(client, baseURL, opts, id)
				lat := time.Since(start.Add(time.Duration(id/opts.Burst) * interval))
				mu.Lock()
				defer mu.Unlock()
				rep.Sent++
				switch {
				case err != nil:
					rep.Failed++
				case code == http.StatusOK:
					rep.OK++
					latencies = append(latencies, lat.Seconds())
					batchSum += resp.BatchSize
					if resp.BatchSize > rep.MaxBatch {
						rep.MaxBatch = resp.BatchSize
					}
				case code == http.StatusTooManyRequests:
					rep.Shed++
				case code == http.StatusGatewayTimeout:
					rep.Deadline++
				default:
					rep.Failed++
				}
			}(tick*opts.Burst + j)
		}
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	if rep.OK > 0 {
		rep.MeanBatch = float64(batchSum) / float64(rep.OK)
	}
	if len(latencies) > 0 {
		sort.Float64s(latencies)
		rep.P50 = stats.Percentile(latencies, 50)
		rep.P95 = stats.Percentile(latencies, 95)
		rep.P99 = stats.Percentile(latencies, 99)
	}
	return rep, nil
}

// fire issues one /infer request and decodes the response.
func fire(client *http.Client, baseURL string, opts AttackOptions, id int) (int, InferResponse, error) {
	body, err := json.Marshal(InferRequest{
		Seed:       opts.Seed + int64(id),
		DeadlineMs: opts.DeadlineMs,
	})
	if err != nil {
		return 0, InferResponse{}, err
	}
	resp, err := client.Post(baseURL+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, InferResponse{}, err
	}
	defer resp.Body.Close()
	var out InferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return resp.StatusCode, out, err
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body) // drain so the connection is reusable
	}
	return resp.StatusCode, out, nil
}

// ScrapeMetrics fetches the /metrics endpoint and returns the raw
// exposition text plus a parsed map of un-labeled sample values keyed by
// series name (labels included verbatim in the key).
func ScrapeMetrics(baseURL string) (string, map[string]float64, error) {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return "", nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return string(raw), nil, fmt.Errorf("server: /metrics returned %d", resp.StatusCode)
	}
	return string(raw), ParseExposition(string(raw)), nil
}

// ParseExposition parses Prometheus text format into a map from series
// (name plus any label set, verbatim) to sample value. Comment and
// malformed lines are skipped — enough parser for smoke assertions, not
// a general client.
func ParseExposition(text string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out
}
