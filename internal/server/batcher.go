// Package server is the live network surface of edgebench: a real HTTP
// inference server fronting the serving.Engine replica pool. Where
// internal/serving *simulates* the paper's §VI-C single-batch serving
// regime, this package actually runs it — requests arrive over
// stdlib net/http, queue into a dynamic micro-batching scheduler
// (bounded queue, per-model batch window), execute on the engine, and
// are observable through a Prometheus-text /metrics endpoint — so the
// analytic envelope can be validated against a live process under load.
//
// The pipeline is queue → batcher → replica pool:
//
//	POST /infer ─▶ admission (bounded queue, 429 on overflow)
//	            ─▶ batch window (≤ MaxBatch requests or MaxWait, whichever first)
//	            ─▶ Engine.InferBatch across executor replicas
//
// Deadlines ride on context.Context end to end: a request whose context
// expires while queued is dropped before dispatch and never touches the
// engine.
package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"edgebench/internal/tensor"
)

// ErrOverloaded reports an admission rejection: the bounded queue was
// full when the request arrived. The HTTP layer translates it to
// 429 + Retry-After, the standard backpressure signal.
var ErrOverloaded = errors.New("server: queue full, request shed")

// ErrClosed reports a request submitted after shutdown began.
var ErrClosed = errors.New("server: shutting down")

// Backend executes one batch of inference requests. *serving.Engine is
// the production implementation; tests substitute instrumented fakes.
type Backend interface {
	InferBatch(ins []*tensor.Tensor) ([]*tensor.Tensor, error)
}

// Config parameterizes the serving pipeline.
type Config struct {
	// MaxBatch caps requests per dispatched batch (default 8).
	MaxBatch int
	// MaxWait bounds how long the first request of a window waits for
	// company before the batch dispatches anyway (default 2ms, the
	// latency cost ceiling of batching).
	MaxWait time.Duration
	// QueueCap bounds the admission queue; arrivals beyond it are shed
	// with ErrOverloaded (default 64).
	QueueCap int
	// Deadline, when positive, is applied to requests that carry no
	// deadline of their own.
	Deadline time.Duration
	// RetryAfter is the backoff hint attached to 429 responses
	// (default 500ms).
	RetryAfter time.Duration
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 500 * time.Millisecond
	}
	return c
}

// result is what the batch loop hands back to a waiting request.
type result struct {
	out   *tensor.Tensor
	err   error
	batch int // size of the dispatched batch the request rode in
}

// request is one queued inference.
type request struct {
	ctx  context.Context
	in   *tensor.Tensor
	enq  time.Time
	done chan result // buffered(1): the loop never blocks delivering
}

// Batcher is the dynamic micro-batching scheduler: a bounded queue
// drained by a single collector goroutine that groups requests into
// batch windows and dispatches them through the backend. Safe for
// concurrent use.
type Batcher struct {
	cfg   Config
	be    Backend
	m     *Metrics // optional; nil disables instrumentation
	queue chan *request
	stop  chan struct{}
	wg    sync.WaitGroup

	mu     sync.RWMutex
	closed bool
}

// NewBatcher starts the collector goroutine. m may be nil.
func NewBatcher(be Backend, cfg Config, m *Metrics) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{
		cfg:   cfg,
		be:    be,
		m:     m,
		queue: make(chan *request, cfg.QueueCap),
		stop:  make(chan struct{}),
	}
	b.wg.Add(1)
	go b.loop()
	return b
}

// Do submits one request and blocks until its batch completes, its
// context expires, or admission rejects it. It returns the output, the
// size of the batch the request was dispatched in, and an error:
// ErrOverloaded when shed at admission, ErrClosed after shutdown, or
// the context's error when the deadline fired first.
func (b *Batcher) Do(ctx context.Context, in *tensor.Tensor) (*tensor.Tensor, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	r := &request{ctx: ctx, in: in, enq: time.Now(), done: make(chan result, 1)}

	// The read lock pins the open/closed decision against a concurrent
	// Close: once Close holds the write lock, no request can slip into
	// the queue behind the drain.
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return nil, 0, ErrClosed
	}
	select {
	case b.queue <- r:
		if b.m != nil {
			b.m.QueueDepth.Add(1)
		}
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		if b.m != nil {
			b.m.Shed.Inc()
		}
		return nil, 0, ErrOverloaded
	}

	select {
	case res := <-r.done:
		return res.out, res.batch, res.err
	case <-ctx.Done():
		// The loop will still find the request (its context is dead) and
		// drop it before dispatch, delivering into the buffered channel.
		return nil, 0, ctx.Err()
	}
}

// Close stops admission, drains every queued request through the
// backend, and waits for the collector to exit. Idempotent.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.stop)
	b.wg.Wait()
}

// loop is the collector: it blocks for a window's first request, gathers
// company until MaxBatch or MaxWait, and dispatches.
func (b *Batcher) loop() {
	defer b.wg.Done()
	for {
		select {
		case r := <-b.queue:
			b.dequeued(1)
			b.dispatch(b.collect(r))
		case <-b.stop:
			b.drain()
			return
		}
	}
}

// collect gathers up to MaxBatch-1 more requests within the MaxWait
// window opened by first.
func (b *Batcher) collect(first *request) []*request {
	batch := []*request{first}
	if b.cfg.MaxBatch == 1 {
		return batch
	}
	timer := time.NewTimer(b.cfg.MaxWait)
	defer timer.Stop()
	for len(batch) < b.cfg.MaxBatch {
		select {
		case r := <-b.queue:
			b.dequeued(1)
			batch = append(batch, r)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// drain empties the queue after stop, serving (not dropping) everything
// already admitted — the graceful half of shutdown.
func (b *Batcher) drain() {
	for {
		var batch []*request
		for len(batch) < b.cfg.MaxBatch {
			select {
			case r := <-b.queue:
				b.dequeued(1)
				batch = append(batch, r)
			default:
				if len(batch) > 0 {
					b.dispatch(batch)
				}
				return
			}
		}
		b.dispatch(batch)
	}
}

// dispatch drops dead-context requests, runs the survivors as one
// backend batch, and delivers per-request results.
func (b *Batcher) dispatch(batch []*request) {
	live := make([]*request, 0, len(batch))
	ins := make([]*tensor.Tensor, 0, len(batch))
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			// Expired while queued: reject without touching the engine.
			if b.m != nil {
				b.m.DeadlineDrops.Inc()
			}
			r.done <- result{err: err}
			continue
		}
		live = append(live, r)
		ins = append(ins, r.in)
	}
	if len(live) == 0 {
		return
	}
	if b.m != nil {
		b.m.Batches.Inc()
		b.m.BatchSize.Observe(float64(len(live)))
		b.m.BatchMax.SetMax(float64(len(live)))
		for _, r := range live {
			b.m.QueueWait.Observe(time.Since(r.enq).Seconds())
		}
	}
	outs, err := b.be.InferBatch(ins)
	if err != nil && b.m != nil {
		b.m.EngineErrors.Inc()
	}
	for i, r := range live {
		res := result{batch: len(live)}
		if err != nil {
			res.err = err
		} else {
			res.out = outs[i]
		}
		r.done <- res
	}
}

// dequeued maintains the queue-depth gauge as the loop consumes.
func (b *Batcher) dequeued(n int) {
	if b.m != nil {
		b.m.QueueDepth.Add(-float64(n))
	}
}
