package core_test

import (
	"fmt"

	"edgebench/internal/core"
)

// ExampleNew shows the basic characterization flow: bind a Table I model
// to a framework and device, then read the modeled single-batch latency.
func ExampleNew() {
	s, err := core.New("MobileNet-v2", "TFLite", "EdgeTPU")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s graph, %d ops\n", s.Lowered().Mode, s.Lowered().NumOps())
	fmt.Printf("latency %.1f ms\n", s.InferenceSeconds()*1e3)
	// Output:
	// static graph, 65 ops
	// latency 3.1 ms
}

// ExampleNew_incompatible shows deployment rules surfacing as errors:
// the EdgeTPU compiler cannot convert ResNet-18 (Table V).
func ExampleNew_incompatible() {
	_, err := core.New("ResNet-18", "TFLite", "EdgeTPU")
	fmt.Println(err)
	// Output:
	// ResNet-18 on EdgeTPU: conversion-barrier
}

// ExampleSession_BatchInferenceSeconds shows multi-batch throughput
// scaling on an HPC GPU (§VI-C's regime).
func ExampleSession_BatchInferenceSeconds() {
	s, err := core.New("ResNet-50", "PyTorch", "GTXTitanX")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("batch 1: %.0f samples/s\n", s.ThroughputPerSecond(1))
	fmt.Printf("batch 32: %.0f samples/s\n", s.ThroughputPerSecond(32))
	// Output:
	// batch 1: 92 samples/s
	// batch 32: 530 samples/s
}
