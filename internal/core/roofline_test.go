package core_test

import (
	"testing"

	"edgebench/internal/core"
	"edgebench/internal/model"
)

func TestRooflinePositions(t *testing.T) {
	// MobileNet-v2 (90 FLOP/param) vs VGG16 (112) vs C3D (716): the
	// roofline's operational intensity must order them like Fig. 1's
	// proxy, and the FC-heavy AlexNet must sit memory-bound on a GPU.
	mob := mustSession(t, "MobileNet-v2", "PyTorch", "JetsonTX2").Roofline()
	alex := mustSession(t, "AlexNet", "PyTorch", "JetsonTX2").Roofline()
	c3d := mustSession(t, "C3D", "PyTorch", "JetsonTX2").Roofline()
	if !(alex.OperationalIntensity < mob.OperationalIntensity &&
		mob.OperationalIntensity < c3d.OperationalIntensity) {
		t.Fatalf("intensity ordering wrong: alex %.1f mob %.1f c3d %.1f",
			alex.OperationalIntensity, mob.OperationalIntensity, c3d.OperationalIntensity)
	}
	if alex.ComputeBound {
		t.Fatal("the 102M-parameter AlexNet must be memory-bound on the TX2")
	}
	if !c3d.ComputeBound {
		t.Fatal("C3D (716 FLOP/param) must be compute-bound on the TX2")
	}
}

func TestRooflineCeilingRespected(t *testing.T) {
	for _, m := range []string{"ResNet-50", "VGG16", "MobileNet-v2", "C3D"} {
		for _, d := range [][2]string{{"PyTorch", "JetsonTX2"}, {"TensorRT", "JetsonNano"}, {"TFLite", "RPi3"}} {
			s, err := core.New(m, d[0], d[1])
			if err != nil {
				continue // Table V / memory wall (VGG16+C3D on the RPi)
			}
			r := s.Roofline()
			if r.AchievedGFLOPS > r.AttainableGFLOPS*1.001 {
				t.Errorf("%s on %s: achieved %.1f GF exceeds roofline %.1f GF",
					m, d[1], r.AchievedGFLOPS, r.AttainableGFLOPS)
			}
			if r.RidgePoint <= 0 || r.OperationalIntensity <= 0 {
				t.Errorf("%s on %s: degenerate roofline %+v", m, d[1], r)
			}
		}
	}
}

func TestRooflineDTypeShiftsIntensity(t *testing.T) {
	// Quantized TFLite deployments move 4x fewer weight bytes, raising
	// operational intensity vs the fp32 PyTorch lowering of the same
	// model on the same device.
	fp32 := mustSession(t, "ResNet-50", "PyTorch", "RPi3").Roofline()
	int8 := mustSession(t, "ResNet-50", "TFLite", "RPi3").Roofline()
	if int8.OperationalIntensity <= fp32.OperationalIntensity {
		t.Fatalf("int8 intensity %.1f should exceed fp32 %.1f",
			int8.OperationalIntensity, fp32.OperationalIntensity)
	}
}

func TestColdStartExceedsInference(t *testing.T) {
	// §V excludes initialization because it dwarfs a single inference.
	for _, c := range [][3]string{
		{"ResNet-18", "TensorFlow", "RPi3"},
		{"ResNet-18", "PyTorch", "JetsonTX2"},
	} {
		s := mustSession(t, c[0], c[1], c[2])
		cold := s.ColdStartSeconds()
		if cold <= s.InferenceSeconds() {
			t.Errorf("%v: cold start %.2fs should dwarf one inference %.4fs", c, cold, s.InferenceSeconds())
		}
	}
	// TF's static graph construction makes its cold start far heavier
	// than PyTorch's on the same host (Fig. 5's base_layer story).
	tf := mustSession(t, "ResNet-18", "TensorFlow", "RPi3").ColdStartSeconds()
	pt := mustSession(t, "ResNet-18", "PyTorch", "RPi3").ColdStartSeconds()
	if tf <= pt {
		t.Fatalf("TF cold start %.1fs should exceed PyTorch's %.1fs", tf, pt)
	}
}

func TestRooflineAllTableIModels(t *testing.T) {
	// Smoke the roofline across the zoo on one device.
	for _, spec := range model.All() {
		s, err := core.New(spec.Name, "PyTorch", "JetsonTX2")
		if err != nil {
			continue // incompatible on this device
		}
		r := s.Roofline()
		if r.AttainableGFLOPS <= 0 {
			t.Errorf("%s: bad roofline %+v", spec.Name, r)
		}
	}
}
