package core_test

import (
	"testing"
	"testing/quick"

	"edgebench/internal/core"
)

func TestBatchOneMatchesSingle(t *testing.T) {
	s := mustSession(t, "ResNet-50", "PyTorch", "GTXTitanX")
	if s.BatchInferenceSeconds(1) != s.InferenceSeconds() {
		t.Fatal("batch 1 must equal the single-batch model")
	}
	if s.BatchInferenceSeconds(0) != s.InferenceSeconds() {
		t.Fatal("batch 0 should clamp to 1")
	}
}

func TestBatchLatencyMonotone(t *testing.T) {
	s := mustSession(t, "ResNet-50", "PyTorch", "GTXTitanX")
	prev := 0.0
	for _, b := range []int{1, 2, 4, 8, 16, 32, 64} {
		cur := s.BatchInferenceSeconds(b)
		if cur <= prev {
			t.Fatalf("batch %d latency %v not above batch latency %v", b, cur, prev)
		}
		prev = cur
	}
}

func TestBatchThroughputGainsOnGPU(t *testing.T) {
	// §VI-C: HPC GPUs are throughput-oriented; batching must raise
	// samples/second substantially on the GTX but barely on the RPi.
	gtx := mustSession(t, "ResNet-50", "PyTorch", "GTXTitanX")
	gain := gtx.ThroughputPerSecond(64) / gtx.ThroughputPerSecond(1)
	if gain < 3 {
		t.Fatalf("GTX batching gain = %.1fx, expected >3x", gain)
	}
	rpi := mustSession(t, "ResNet-50", "TFLite", "RPi3")
	cpuGain := rpi.ThroughputPerSecond(64) / rpi.ThroughputPerSecond(1)
	if cpuGain >= gain {
		t.Fatalf("RPi gain %.1fx should trail GTX gain %.1fx", cpuGain, gain)
	}
}

func TestBatchChangesTheEdgeVsHPCVerdict(t *testing.T) {
	// The paper's crossover: single-batch HPC advantage is only ~3x, but
	// at datacenter batch sizes the GPU pulls far ahead — the design
	// reason edge devices exist at all.
	tx2 := mustSession(t, "ResNet-50", "PyTorch", "JetsonTX2")
	gtx := mustSession(t, "ResNet-50", "PyTorch", "GTXTitanX")
	single := tx2.InferenceSeconds() / gtx.InferenceSeconds()
	batched := gtx.ThroughputPerSecond(64) / tx2.ThroughputPerSecond(64)
	if batched < 2*single {
		t.Fatalf("batched advantage %.1fx should far exceed single-batch %.1fx", batched, single)
	}
}

func TestBatchMemoryGrowsAndCaps(t *testing.T) {
	s := mustSession(t, "ResNet-50", "PyTorch", "GTXTitanX")
	if s.BatchMemBytes(16) <= s.BatchMemBytes(1) {
		t.Fatal("batching must grow the activation footprint")
	}
	max := s.MaxBatch(4096)
	if max < 1 {
		t.Fatal("ResNet-50 should fit at least batch 1 on a 12 GB GPU")
	}
	if s.BatchMemBytes(max) > float64(s.Device.MemBytes) {
		t.Fatal("MaxBatch returned an over-memory batch")
	}
	// C3D's activation footprint per sample dwarfs ResNet-50's, so its
	// max batch can never exceed ResNet-50's and a smaller device caps
	// it sooner.
	c3d := mustSession(t, "C3D", "PyTorch", "GTXTitanX")
	if c3d.MaxBatch(4096) > max {
		t.Fatal("C3D cannot batch more than ResNet-50")
	}
	// Per-sample activation growth orders models correctly: C3D's video
	// activations cost far more per extra sample than MobileNet's.
	mob, err := core.New("MobileNet-v2", "PyTorch", "GTXTitanX")
	if err != nil {
		t.Fatal(err)
	}
	c3dSlope := c3d.BatchMemBytes(2) - c3d.BatchMemBytes(1)
	mobSlope := mob.BatchMemBytes(2) - mob.BatchMemBytes(1)
	if c3dSlope <= 1.5*mobSlope {
		t.Fatalf("C3D per-sample activation bytes (%.0f MB) should dwarf MobileNet's (%.0f MB)",
			c3dSlope/(1<<20), mobSlope/(1<<20))
	}
	if mob.MaxBatch(4096) < max {
		t.Fatal("MobileNet should batch at least as deep as ResNet-50")
	}
}

// Property: per-sample latency never gets worse with batching.
func TestBatchPerSampleMonotoneProperty(t *testing.T) {
	s := mustSession(t, "MobileNet-v2", "PyTorch", "TitanXp")
	f := func(raw uint8) bool {
		b := int(raw%63) + 1
		perSampleB := s.BatchInferenceSeconds(b) / float64(b)
		perSample1 := s.InferenceSeconds()
		return perSampleB <= perSample1*1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
