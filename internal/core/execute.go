package core

import (
	"fmt"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/opt"
	"edgebench/internal/tensor"
	"edgebench/internal/verify"
)

// Numeric execution on sessions. The analytic latency model prices a
// structural graph; Materialize swaps in the same lowering with real
// (seeded) weights so Infer can run actual forward passes through the
// execution engine — pooled buffer reuse for static-graph frameworks,
// eager release for define-by-run ones, mirroring the memory behaviour
// the latency model prices.

// Materialize rebuilds and re-lowers the session's graph with
// materialized weights (seeded, random — §VI-A fn.4: random weights are
// the standard performance-evaluation proxy) so Infer can execute it.
// Sessions created by NewFromGraph skip this when their graph already
// carries weights.
func (s *Session) Materialize(seed int64) error {
	if s.Model == nil {
		return fmt.Errorf("core: session has no model spec; pass an already-materialized graph to NewFromGraph instead")
	}
	g := s.Framework.Lower(s.Model.Build(nn.Options{Materialize: true, Seed: seed}), s.Device)
	if err := verify.Err(verify.Check(g)); err != nil {
		return fmt.Errorf("core: %s materialized for %s: %w", s.Model.Name, s.Device.Name, err)
	}
	s.lowered = g
	s.exec = nil
	return nil
}

// Optimize runs the graph compiler's pass sequence for the given level
// over the session's lowered graph — constant folding, identity and
// dead-node elimination, and (at O2) pattern fusion into single-dispatch
// fused kernels, each pass run gated by the IR verifier. The graph is
// unfrozen for the rewrite and refrozen when it was frozen before, and
// the cached executor is dropped so the next Infer replans buffers over
// the optimized graph. Returns the pass manager's report.
func (s *Session) Optimize(level opt.Level) (*opt.Report, error) {
	frozen := s.lowered.Frozen
	s.lowered.Frozen = false
	r, err := opt.Optimize(s.lowered, level)
	if frozen {
		s.lowered.Freeze()
	}
	if err != nil {
		return r, fmt.Errorf("core: optimizing %s at %s: %w", s.lowered.Name, level, err)
	}
	s.exec = nil
	return r, nil
}

// Infer executes one real single-batch forward pass through the lowered
// graph and returns the output tensor. Static-graph frameworks run with
// the planned buffer arena (allocation-free in steady state) and the
// wavefront scheduler; dynamic frameworks run define-by-run with eager
// release. The graph must carry materialized weights (Materialize, or a
// NewFromGraph session built from a materialized graph).
func (s *Session) Infer(in *tensor.Tensor) (*tensor.Tensor, error) {
	if s.exec == nil {
		s.exec = &graph.Executor{
			Parallel: true,
			Pooled:   s.lowered.Mode == graph.Static,
		}
	}
	return s.exec.Run(s.lowered, in)
}

// ExecStats reports the arena counters of the session's executor —
// zero-valued before the first pooled Infer.
func (s *Session) ExecStats() tensor.PoolStats {
	if s.exec == nil {
		return tensor.PoolStats{}
	}
	return s.exec.PoolStats()
}
