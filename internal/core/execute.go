package core

import (
	"fmt"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/tensor"
	"edgebench/internal/verify"
)

// Numeric execution on sessions. The analytic latency model prices a
// structural graph; Materialize swaps in the same lowering with real
// (seeded) weights so Infer can run actual forward passes through the
// execution engine — pooled buffer reuse for static-graph frameworks,
// eager release for define-by-run ones, mirroring the memory behaviour
// the latency model prices.

// Materialize rebuilds and re-lowers the session's graph with
// materialized weights (seeded, random — §VI-A fn.4: random weights are
// the standard performance-evaluation proxy) so Infer can execute it.
// Sessions created by NewFromGraph skip this when their graph already
// carries weights.
func (s *Session) Materialize(seed int64) error {
	if s.Model == nil {
		return fmt.Errorf("core: session has no model spec; pass an already-materialized graph to NewFromGraph instead")
	}
	g := s.Framework.Lower(s.Model.Build(nn.Options{Materialize: true, Seed: seed}), s.Device)
	if err := verify.Err(verify.Check(g)); err != nil {
		return fmt.Errorf("core: %s materialized for %s: %w", s.Model.Name, s.Device.Name, err)
	}
	s.lowered = g
	s.exec = nil
	return nil
}

// Infer executes one real single-batch forward pass through the lowered
// graph and returns the output tensor. Static-graph frameworks run with
// the planned buffer arena (allocation-free in steady state) and the
// wavefront scheduler; dynamic frameworks run define-by-run with eager
// release. The graph must carry materialized weights (Materialize, or a
// NewFromGraph session built from a materialized graph).
func (s *Session) Infer(in *tensor.Tensor) (*tensor.Tensor, error) {
	if s.exec == nil {
		s.exec = &graph.Executor{
			Parallel: true,
			Pooled:   s.lowered.Mode == graph.Static,
		}
	}
	return s.exec.Run(s.lowered, in)
}

// ExecStats reports the arena counters of the session's executor —
// zero-valued before the first pooled Infer.
func (s *Session) ExecStats() tensor.PoolStats {
	if s.exec == nil {
		return tensor.PoolStats{}
	}
	return s.exec.PoolStats()
}
