package core

import (
	"fmt"
	"sort"
	"strings"

	"edgebench/internal/device"
	"edgebench/internal/framework"
	"edgebench/internal/model"
)

// UnknownNameError reports a model/framework/device name that matched no
// registry entry, carrying the nearest registered names so CLI surfaces
// can print a "did you mean" hint instead of a bare failure. The paper's
// registries use exact, punctuation-heavy names ("MobileNet-v2",
// "SSD-MobileNet-v1") that are easy to mistype.
type UnknownNameError struct {
	// Kind is "model", "framework", or "device".
	Kind string
	// Name is the rejected input.
	Name string
	// Suggestions holds the closest registered names, best first.
	Suggestions []string
}

func (e *UnknownNameError) Error() string {
	if len(e.Suggestions) == 0 {
		return fmt.Sprintf("core: unknown %s %q", e.Kind, e.Name)
	}
	return fmt.Sprintf("core: unknown %s %q (did you mean %s?)",
		e.Kind, e.Name, strings.Join(e.Suggestions, ", "))
}

// unknownName builds the typed error with suggestions drawn from the
// matching registry.
func unknownName(kind, name string) *UnknownNameError {
	var candidates []string
	switch kind {
	case "model":
		for _, s := range model.AllWithExtensions() {
			candidates = append(candidates, s.Name)
		}
	case "framework":
		for _, f := range framework.All() {
			candidates = append(candidates, f.Name)
		}
	case "device":
		for _, d := range device.All() {
			candidates = append(candidates, d.Name)
		}
	}
	return &UnknownNameError{Kind: kind, Name: name, Suggestions: Suggest(name, candidates, 3)}
}

// Suggest returns up to max candidate names ranked by similarity to
// name: case-insensitive exact and substring matches first, then
// Levenshtein distance within a third of the name's length (so "RPi4"
// suggests "RPi3" but garbage suggests nothing). Ties break toward the
// registry's original order, which follows the paper's tables.
func Suggest(name string, candidates []string, max int) []string {
	if max <= 0 || len(candidates) == 0 {
		return nil
	}
	lower := strings.ToLower(name)
	type scored struct {
		name string
		cost int
		idx  int
	}
	var ranked []scored
	for i, c := range candidates {
		cl := strings.ToLower(c)
		switch {
		case cl == lower:
			ranked = append(ranked, scored{c, 0, i})
		case strings.Contains(cl, lower) || strings.Contains(lower, cl):
			ranked = append(ranked, scored{c, 1, i})
		default:
			d := levenshtein(lower, cl)
			limit := len(name)/3 + 1
			if d <= limit {
				ranked = append(ranked, scored{c, 1 + d, i})
			}
		}
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].cost != ranked[j].cost {
			return ranked[i].cost < ranked[j].cost
		}
		return ranked[i].idx < ranked[j].idx
	})
	if len(ranked) > max {
		ranked = ranked[:max]
	}
	out := make([]string, len(ranked))
	for i, s := range ranked {
		out[i] = s.name
	}
	return out
}

// levenshtein returns the edit distance between a and b using the
// two-row dynamic program.
func levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			sub := prev[j-1]
			if a[i-1] != b[j-1] {
				sub++
			}
			del := prev[j] + 1
			ins := cur[j-1] + 1
			m := sub
			if del < m {
				m = del
			}
			if ins < m {
				m = ins
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
