package core

import (
	"edgebench/internal/device"
	"edgebench/internal/graph"
)

// Roofline describes where a deployment sits on its device's roofline —
// the formal version of the paper's FLOP/Param compute-intensity proxy
// (§II): a model whose operational intensity falls below the device's
// ridge point is bandwidth-bound there, above it compute-bound.
type Roofline struct {
	// OperationalIntensity is FLOPs per byte of memory traffic for the
	// lowered graph (weights at the deployed datatype + activations).
	OperationalIntensity float64
	// RidgePoint is the device's peak-compute / bandwidth ratio in
	// FLOPs per byte (at the deployment's datatype and calibrated
	// efficiencies): the intensity at which compute and memory balance.
	RidgePoint float64
	// ComputeBound reports which side of the ridge the deployment is on.
	ComputeBound bool
	// AttainableGFLOPS is the roofline ceiling at this intensity:
	// min(peak, intensity * bandwidth), with calibrated efficiencies.
	AttainableGFLOPS float64
	// AchievedGFLOPS is the effective rate the full latency model
	// predicts (including dispatch and session overheads), always at or
	// below the roofline.
	AchievedGFLOPS float64
}

// Roofline computes the deployment's roofline position.
func (s *Session) Roofline() Roofline {
	g := s.lowered
	cal := s.calib

	var flops, bytes float64
	dtype := g.Nodes[len(g.Nodes)-1].DType
	for _, n := range g.Nodes {
		c := graph.NodeCost(n)
		flops += c.FLOPs
		bytes += c.Bytes()
		dtype = n.DType
	}
	peak := s.Device.Peak(dtype) * 1e9 * cal.ComputeEff
	bw := s.Device.MemBandwidthGBs * 1e9 * cal.MemEff

	r := Roofline{RidgePoint: peak / bw}
	if bytes > 0 {
		r.OperationalIntensity = flops / bytes
	}
	r.ComputeBound = r.OperationalIntensity >= r.RidgePoint
	ceiling := peak
	if v := r.OperationalIntensity * bw; v < ceiling {
		ceiling = v
	}
	r.AttainableGFLOPS = ceiling / 1e9
	if t := s.InferenceSeconds(); t > 0 {
		r.AchievedGFLOPS = flops / t / 1e9
	}
	return r
}

// ColdStartSeconds estimates the first-inference penalty the paper's
// methodology deliberately excludes (§V: "we do not include any
// initialization time... a one-time cost that occurs during device
// setup"): library load, graph construction, and parameter
// initialization/transfer, from the same one-time model Fig. 5's
// profiler uses.
func (s *Session) ColdStartSeconds() float64 {
	g := s.lowered
	// Library import scales with the framework footprint and host speed.
	slow := hostSlowness(s.Device)
	t := float64(s.Framework.BaselineBytes) / 30e6 * slow
	params := float64(g.Params())
	numOps := float64(g.NumOps())
	if g.Mode == graph.Static {
		t += numOps*0.10*slow + params*4/9e6*slow
	} else {
		t += numOps * 0.012 * slow
		if s.Device.GPU != "" {
			t += 4.0*slow + params*4/0.8e9
		} else {
			t += params * 4 / 40e6 * slow
		}
	}
	return t
}

// hostSlowness mirrors the profiler's CPU scaling (duplicated here to
// keep the packages independent; both encode the same §VI-B3 story).
func hostSlowness(d *device.Device) float64 {
	switch d.Class {
	case device.EdgeCPU:
		return 6.0
	case device.EdgeGPU:
		return 2.5
	case device.EdgeAccel, device.FPGA:
		return 5.0
	default:
		return 1.0
	}
}
