package core

import (
	"sort"

	"edgebench/internal/device"
	"edgebench/internal/framework"
	"edgebench/internal/graph"
)

// Calib holds the latency-model parameters for one (device, framework)
// pair:
//
//	t_op  = max(FLOPs / (peak·ComputeEff·kindEff), Bytes / (bw·MemEff)) + DispatchSec
//	t_inf = Σ t_op + SessionSec
//
// ComputeEff is the fraction of the device's achievable peak the
// framework's kernels reach on large operations; DispatchSec is the
// per-operation runtime overhead (Python dispatch, kernel launch, graph
// interpretation); SessionSec is the per-inference cost of entering the
// runtime. Values for the pairs the paper measures are calibrated
// against its reported bars (Figs. 2, 7, 8); remaining pairs derive from
// device-class baselines scaled by the framework's structural weights.
type Calib struct {
	ComputeEff  float64
	MemEff      float64
	DispatchSec float64
	SessionSec  float64
	// WeightMemEff, when non-zero, prices weight streaming separately
	// from activation traffic (EdgeTPU pulls spilled weights over a far
	// slower path than its on-chip activation memory).
	WeightMemEff float64
	// KindEff derates specific op kinds relative to ComputeEff
	// (depthwise convolutions are famously underoptimized outside
	// TFLite/TensorRT).
	KindEff map[graph.OpKind]float64
	// DispatchHeavyOnly limits per-op dispatch to weight-bearing ops
	// (convolutions, dense). On GPU/accelerator platforms elementwise
	// kernels are enqueued asynchronously and overlap execution, so only
	// the heavyweight launches cost wall time; on CPUs every op runs
	// serially through the interpreter. Set from the device class.
	DispatchHeavyOnly bool
}

func (c Calib) weightMemEff() float64 {
	if c.WeightMemEff > 0 {
		return c.WeightMemEff
	}
	return c.MemEff
}

func (c Calib) kindEff(k graph.OpKind) float64 {
	if v, ok := c.KindEff[k]; ok {
		return v
	}
	return 1
}

// classBaseline is the starting point for uncalibrated pairs.
type classBaseline struct {
	eff, mem, dispatch, session float64
}

// baselines start uncalibrated pairs conservatively: a framework the
// paper never deployed on a platform runs a generic (often CPU-path)
// backend there, so it must not outrun the tuned vendor stack.
var baselines = map[device.Class]classBaseline{
	device.EdgeCPU:   {eff: 0.25, mem: 0.35, dispatch: 9e-3, session: 10e-3},
	device.EdgeGPU:   {eff: 0.04, mem: 0.45, dispatch: 0.5e-3, session: 10e-3},
	device.EdgeAccel: {eff: 0.10, mem: 0.10, dispatch: 0.3e-3, session: 5e-3},
	device.FPGA:      {eff: 0.20, mem: 0.30, dispatch: 4e-3, session: 30e-3},
	device.HPCCPU:    {eff: 0.04, mem: 0.40, dispatch: 0.50e-3, session: 5e-3},
	device.HPCGPU:    {eff: 0.08, mem: 0.40, dispatch: 0.10e-3, session: 2e-3},
}

// dwPenalty gives per-framework depthwise-convolution efficiency
// relative to dense convolution. TFLite and TensorRT ship tuned
// depthwise kernels; the general frameworks do not (visible in the
// paper's MobileNet bars).
var dwPenalty = map[string]float64{
	"TensorFlow": 0.30,
	"Keras":      0.28,
	"TFLite":     0.60,
	"Caffe":      0.15,
	"PyTorch":    0.05,
	"TensorRT":   0.70,
	"NCSDK":      0.50,
	"DarkNet":    0.20,
	"TVM":        0.50,
}

// overrides pins calibrated pairs. Keys are "device/framework".
var overrides = map[string]Calib{
	// --- Raspberry Pi 3B (Figs. 2, 3, 8, 13) ---
	"RPi3/TensorFlow": {ComputeEff: 0.50, MemEff: 0.35, DispatchSec: 8.7e-3, SessionSec: 10e-3},
	"RPi3/Keras":      {ComputeEff: 0.48, MemEff: 0.35, DispatchSec: 9.2e-3, SessionSec: 12e-3},
	"RPi3/TFLite":     {ComputeEff: 0.27, MemEff: 0.35, DispatchSec: 5.7e-3, SessionSec: 5e-3},
	"RPi3/PyTorch":    {ComputeEff: 0.080, MemEff: 0.35, DispatchSec: 20e-3, SessionSec: 10e-3},
	"RPi3/Caffe":      {ComputeEff: 0.30, MemEff: 0.35, DispatchSec: 12e-3, SessionSec: 10e-3},
	"RPi3/DarkNet":    {ComputeEff: 0.0078, MemEff: 0.35, DispatchSec: 1e-3, SessionSec: 5e-3},

	// --- Jetson TX2 (Figs. 2, 4) ---
	"JetsonTX2/PyTorch": {ComputeEff: 0.35, MemEff: 0.70, DispatchSec: 0.30e-3, SessionSec: 8e-3,
		KindEff: map[graph.OpKind]float64{graph.OpConv3D: 0.85}},
	"JetsonTX2/TensorFlow": {ComputeEff: 0.022, MemEff: 0.60, DispatchSec: 0.55e-3, SessionSec: 30e-3},
	"JetsonTX2/Keras":      {ComputeEff: 0.021, MemEff: 0.60, DispatchSec: 0.60e-3, SessionSec: 33e-3},
	"JetsonTX2/Caffe":      {ComputeEff: 0.030, MemEff: 0.60, DispatchSec: 0.90e-3, SessionSec: 15e-3},
	"JetsonTX2/DarkNet":    {ComputeEff: 0.012, MemEff: 0.55, DispatchSec: 0.30e-3, SessionSec: 5e-3},
	"JetsonTX2/TFLite":     {ComputeEff: 0.008, MemEff: 0.45, DispatchSec: 1.0e-3, SessionSec: 5e-3},

	// --- Jetson Nano (Figs. 2, 7) ---
	"JetsonNano/TensorRT": {ComputeEff: 0.42, MemEff: 0.75, DispatchSec: 0.02e-3, SessionSec: 15e-3,
		// Conv3D lacks tuned TensorRT kernels on Maxwell; the INT8 path
		// falls back on dense layers (visible in the paper's AlexNet bar).
		KindEff: map[graph.OpKind]float64{graph.OpConv3D: 0.68, graph.OpDense: 0.04}},
	"JetsonNano/PyTorch":    {ComputeEff: 0.30, MemEff: 0.65, DispatchSec: 0.05e-3, SessionSec: 115e-3},
	"JetsonNano/TensorFlow": {ComputeEff: 0.018, MemEff: 0.55, DispatchSec: 0.9e-3, SessionSec: 40e-3},
	"JetsonNano/Caffe":      {ComputeEff: 0.025, MemEff: 0.55, DispatchSec: 0.7e-3, SessionSec: 20e-3},
	// TFLite on the Jetsons runs its CPU interpreter (no GPU delegate in
	// the paper's stack).
	"JetsonNano/TFLite": {ComputeEff: 0.010, MemEff: 0.45, DispatchSec: 1.0e-3, SessionSec: 5e-3},

	// --- EdgeTPU (Fig. 2; the 8 MB on-chip cache drives the cliff:
	// spilled weights stream at ~0.36 GB/s while activations stay
	// on-chip) ---
	"EdgeTPU/TFLite": {ComputeEff: 0.25, MemEff: 0.90, WeightMemEff: 0.09,
		DispatchSec: 0.034e-3, SessionSec: 0.6e-3},

	// --- Movidius NCS (Fig. 2) ---
	"Movidius/NCSDK": {ComputeEff: 0.30, MemEff: 0.55, DispatchSec: 0.3e-3, SessionSec: 8e-3,
		KindEff: map[graph.OpKind]float64{graph.OpConv3D: 1.9}},

	// --- PYNQ-Z1 (Fig. 2: ResNet-18 ≈ 600 ms via TVM VTA) ---
	"PYNQ-Z1/TVM": {ComputeEff: 0.20, MemEff: 0.40, DispatchSec: 8e-3, SessionSec: 60e-3},

	// --- HPC platforms (Figs. 6, 9, 10) ---
	"Xeon/PyTorch":         {ComputeEff: 0.055, MemEff: 0.45, DispatchSec: 0.30e-3, SessionSec: 5e-3},
	"Xeon/TensorFlow":      {ComputeEff: 0.065, MemEff: 0.45, DispatchSec: 0.45e-3, SessionSec: 20e-3},
	"GTXTitanX/PyTorch":    {ComputeEff: 0.130, MemEff: 0.65, DispatchSec: 0.075e-3, SessionSec: 1e-3},
	"GTXTitanX/TensorFlow": {ComputeEff: 0.085, MemEff: 0.60, DispatchSec: 0.11e-3, SessionSec: 7e-3},
	"TitanXp/PyTorch":      {ComputeEff: 0.085, MemEff: 0.65, DispatchSec: 0.070e-3, SessionSec: 1e-3},
	"RTX2080/PyTorch":      {ComputeEff: 0.095, MemEff: 0.65, DispatchSec: 0.065e-3, SessionSec: 1e-3},
}

// OverrideKeys lists the pinned (device, framework) calibration pairs as
// "device/framework" keys, for table-consistency tests and the audit
// tool.
func OverrideKeys() []string {
	keys := make([]string, 0, len(overrides))
	for k := range overrides {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Calibrate returns the latency parameters for a (device, framework)
// pair: the pinned calibration when the paper measured the pair, or a
// class-baseline derivation otherwise.
func Calibrate(dev *device.Device, fw *framework.Framework) Calib {
	var c Calib
	if pinned, ok := overrides[dev.Name+"/"+fw.Name]; ok {
		c = pinned
	} else {
		base := baselines[dev.Class]
		c = Calib{
			ComputeEff:  base.eff,
			MemEff:      base.mem,
			DispatchSec: base.dispatch * fw.DispatchWeight,
			SessionSec:  base.session * fw.SessionWeight,
		}
	}
	kinds := map[graph.OpKind]float64{}
	for k, v := range c.KindEff {
		kinds[k] = v
	}
	c.KindEff = kinds
	if _, ok := c.KindEff[graph.OpDepthwiseConv2D]; !ok {
		if p, ok := dwPenalty[fw.Name]; ok {
			c.KindEff[graph.OpDepthwiseConv2D] = p
		}
	}
	// On GPU and accelerator platforms, elementwise kernel launches are
	// asynchronous and overlap; only convolution/dense dispatches cost
	// wall time. CPUs interpret every op serially.
	switch dev.Class {
	case device.EdgeCPU, device.HPCCPU:
		c.DispatchHeavyOnly = false
	default:
		c.DispatchHeavyOnly = true
	}
	return c
}
