package core_test

import (
	"math"
	"testing"

	"edgebench/internal/core"
	"edgebench/internal/graph"
	"edgebench/internal/tensor"
)

func sessionInput(s *core.Session) *tensor.Tensor {
	in := tensor.New(s.Lowered().Input.OutShape...)
	for i := range in.Data {
		in.Data[i] = float32(math.Sin(float64(i))) * 0.5
	}
	return in
}

// TestSessionInferMatchesPlainExecutor materializes a real session and
// checks the session's engine (pooled + parallel) agrees bitwise with a
// plain sequential executor on the same lowered graph, across repeated
// calls (arena reuse).
func TestSessionInferMatchesPlainExecutor(t *testing.T) {
	s, err := core.New("CifarNet", "TensorFlow", "RPi3")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Materialize(42); err != nil {
		t.Fatal(err)
	}
	in := sessionInput(s)
	want, err := (&graph.Executor{}).Run(s.Lowered(), in)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		got, err := s.Infer(in)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("pass %d: out[%d] = %v, want %v", pass, i, got.Data[i], want.Data[i])
			}
		}
	}
	if s.Lowered().Mode == graph.Static {
		st := s.ExecStats()
		if st.Gets == 0 {
			t.Error("static session ran without touching the arena")
		}
	}
}

// TestSessionInferDynamicFramework checks define-by-run sessions execute
// without the planner and still produce a normalized classifier output.
func TestSessionInferDynamicFramework(t *testing.T) {
	s, err := core.New("CifarNet", "PyTorch", "RPi3")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Materialize(7); err != nil {
		t.Fatal(err)
	}
	out, err := s.Infer(sessionInput(s))
	if err != nil {
		t.Fatal(err)
	}
	var sum float32
	for _, v := range out.Data {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("softmax output sums to %v", sum)
	}
}

// TestInferRequiresMaterializedWeights pins the error path: a structural
// session must refuse numeric execution with a helpful message.
func TestInferRequiresMaterializedWeights(t *testing.T) {
	s, err := core.New("CifarNet", "TensorFlow", "RPi3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Infer(sessionInput(s)); err == nil {
		t.Fatal("Infer on structural graph should error")
	}
	if err := s.Materialize(1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Infer(sessionInput(s)); err != nil {
		t.Fatal(err)
	}
}
