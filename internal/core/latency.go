package core

import (
	"edgebench/internal/framework"
	"edgebench/internal/graph"
)

// LayerTime is the predicted cost of one node, with the roofline
// attribution the profiler and the ablation benches consume.
type LayerTime struct {
	Node        *graph.Node
	ComputeSec  float64 // arithmetic at the calibrated rate
	MemorySec   float64 // weight + activation traffic at calibrated bandwidth
	DispatchSec float64 // framework per-op overhead
	// WeightMemSec and ActMemSec split MemorySec into the part that
	// amortizes across a batch (weights) and the part that scales with
	// it (activations).
	WeightMemSec float64
	ActMemSec    float64
	// Seconds is the node's contribution: max(compute, memory) + dispatch.
	Seconds float64
	// MemoryBound records which side of the roofline the node sits on.
	MemoryBound bool
}

// LayerTimes returns the per-node timeline of one inference.
func (s *Session) LayerTimes() []LayerTime {
	g := s.lowered
	cal := s.calib
	dev := s.Device

	// Weights resident in on-chip memory do not stream per inference;
	// the overflow beyond the accelerator cache does (this is what makes
	// EdgeTPU fast on MobileNet yet slow on VGG16, §VI-A).
	var totalWeightBytes float64
	for _, n := range g.Nodes {
		totalWeightBytes += float64(n.WeightBytes())
	}
	streamFrac := 1.0
	if cache := float64(dev.CacheBytes); cache > 0 && totalWeightBytes > 0 {
		streamFrac = 1 - cache/totalWeightBytes
		if streamFrac < 0 {
			streamFrac = 0
		}
	}

	out := make([]LayerTime, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Kind == graph.OpInput {
			continue
		}
		c := graph.NodeCost(n)
		flops := c.FLOPs
		if s.Framework.Opts.PruningExploit && n.Sparsity > 0 {
			flops *= 1 - n.Sparsity
		}
		kindEff := cal.kindEff(n.Kind)
		rate := dev.Peak(n.DType) * 1e9 * cal.ComputeEff * kindEff
		var compute float64
		if flops > 0 {
			compute = flops / rate
		}
		// Weight overflow streams at the (possibly slower) weight path;
		// activations that fit on-chip never touch DRAM.
		weightMem := c.WeightBytes * streamFrac /
			(dev.MemBandwidthGBs * 1e9 * cal.weightMemEff())
		var actMem float64
		if acts := c.ActInBytes + c.ActOutBytes; acts > float64(dev.CacheBytes) {
			actMem = acts / (dev.MemBandwidthGBs * 1e9 * cal.MemEff)
		}
		memory := weightMem + actMem

		dispatch := cal.DispatchSec
		if cal.DispatchHeavyOnly && n.WShape == nil {
			dispatch = 0
		}
		lt := LayerTime{
			Node:         n,
			ComputeSec:   compute,
			MemorySec:    memory,
			WeightMemSec: weightMem,
			ActMemSec:    actMem,
			DispatchSec:  dispatch,
		}
		body := compute
		if memory > compute {
			body = memory
			lt.MemoryBound = true
		}
		lt.Seconds = body + dispatch
		out = append(out, lt)
	}
	return out
}

// graphSeconds sums the layer timeline, session overhead, and any
// Table V degradation penalty.
func (s *Session) graphSeconds() float64 {
	var t float64
	for _, lt := range s.LayerTimes() {
		t += lt.Seconds
	}
	t += s.calib.SessionSec
	if s.status == framework.BRAMOverflow {
		// FPGA models beyond BRAM thrash host DDR3 (Table V "^^").
		t *= bramThrashFactor
	}
	return t
}

// Utilization estimates the fraction of runtime spent in arithmetic —
// the knob the power model uses to place a workload between idle and
// average power.
func (s *Session) Utilization() float64 {
	var compute, total float64
	for _, lt := range s.LayerTimes() {
		compute += lt.ComputeSec
		total += lt.Seconds
	}
	total += s.calib.SessionSec
	if total == 0 {
		return 0
	}
	u := compute / total
	if u > 1 {
		u = 1
	}
	return u
}

// ComputeBoundFraction reports the share of layer time on the compute
// side of the roofline (used by the edge-vs-HPC analysis, §VI-C).
func (s *Session) ComputeBoundFraction() float64 {
	var bound, total float64
	for _, lt := range s.LayerTimes() {
		total += lt.Seconds
		if !lt.MemoryBound {
			bound += lt.Seconds
		}
	}
	if total == 0 {
		return 0
	}
	return bound / total
}

const bramThrashFactor = 25.0
