package core_test

import (
	"errors"
	"math"
	"testing"

	"edgebench/internal/core"
	"edgebench/internal/framework"
	"edgebench/internal/paperdata"
	"edgebench/internal/stats"
)

func mustSession(t *testing.T, m, fw, dev string) *core.Session {
	t.Helper()
	s, err := core.New(m, fw, dev)
	if err != nil {
		t.Fatalf("New(%s,%s,%s): %v", m, fw, dev, err)
	}
	return s
}

func seconds(t *testing.T, m, fw, dev string) float64 {
	t.Helper()
	return mustSession(t, m, fw, dev).InferenceSeconds()
}

func TestSessionErrors(t *testing.T) {
	if _, err := core.New("NoNet", "PyTorch", "RPi3"); err == nil {
		t.Error("unknown model should error")
	}
	if _, err := core.New("ResNet-18", "NoFW", "RPi3"); err == nil {
		t.Error("unknown framework should error")
	}
	if _, err := core.New("ResNet-18", "PyTorch", "NoDev"); err == nil {
		t.Error("unknown device should error")
	}
	// Platform lock: TensorRT is Nvidia-only.
	if _, err := core.New("ResNet-18", "TensorRT", "Xeon"); !errors.Is(err, core.ErrUnsupported) {
		t.Errorf("TensorRT on Xeon = %v, want ErrUnsupported", err)
	}
	// Table V: SSD's base code is incompatible with RPi.
	var inc *core.ErrIncompatible
	if _, err := core.New("SSD-MobileNet-v1", "TensorFlow", "RPi3"); !errors.As(err, &inc) {
		t.Errorf("SSD on RPi = %v, want ErrIncompatible", err)
	} else if inc.Status != framework.CodeIncompatible {
		t.Errorf("SSD status = %v", inc.Status)
	}
	// Table V: EdgeTPU conversion barrier for ResNet-18.
	if _, err := core.New("ResNet-18", "TFLite", "EdgeTPU"); !errors.As(err, &inc) {
		t.Errorf("ResNet-18 on EdgeTPU = %v, want ErrIncompatible", err)
	}
}

func TestStaticOOMOnRPi(t *testing.T) {
	// Table V "^": AlexNet/VGG16/C3D exceed RPi memory under static
	// graphs; TensorFlow fails, PyTorch runs.
	for _, m := range []string{"AlexNet", "VGG16", "C3D"} {
		if _, err := core.New(m, "TensorFlow", "RPi3"); !errors.Is(err, core.ErrOOM) {
			t.Errorf("%s on RPi3/TF = %v, want ErrOOM", m, err)
		}
		if _, err := core.New(m, "PyTorch", "RPi3"); err != nil {
			t.Errorf("%s on RPi3/PyTorch should run: %v", m, err)
		}
	}
	// ResNet-101 fits statically (Fig. 8 measures TF on it).
	if _, err := core.New("ResNet-101", "TensorFlow", "RPi3"); err != nil {
		t.Errorf("ResNet-101 on RPi3/TF should fit: %v", err)
	}
}

func TestMemoryEstimates(t *testing.T) {
	s := mustSession(t, "VGG16", "PyTorch", "JetsonTX2")
	if s.DynamicMemBytes() >= s.StaticMemBytes() {
		t.Error("dynamic footprint should undercut static for a deep chain")
	}
	if s.StaticMemBytes() < 500e6 {
		t.Errorf("VGG16 static bytes = %v, implausibly small", s.StaticMemBytes())
	}
}

func TestInferenceDeterminism(t *testing.T) {
	a := seconds(t, "ResNet-18", "PyTorch", "JetsonTX2")
	b := seconds(t, "ResNet-18", "PyTorch", "JetsonTX2")
	if a != b {
		t.Fatal("InferenceSeconds must be deterministic")
	}
	if a <= 0 {
		t.Fatal("non-positive inference time")
	}
}

func TestRunNoiseSeeded(t *testing.T) {
	s := mustSession(t, "ResNet-18", "TFLite", "RPi3")
	r1 := s.Run(50, 7)
	r2 := s.Run(50, 7)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("same seed must reproduce the run")
		}
	}
	r3 := s.Run(50, 8)
	same := true
	for i := range r1 {
		if r1[i] != r3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
	sum := s.Summary(200, 1)
	base := s.InferenceSeconds()
	if math.Abs(sum.Mean/base-1) > 0.02 {
		t.Fatalf("noisy mean %v drifted from base %v", sum.Mean, base)
	}
	if sum.StdDev == 0 || sum.StdDev > 0.1*base {
		t.Fatalf("noise sd %v implausible", sum.StdDev)
	}
}

func TestDockerOverheadWithinFivePercent(t *testing.T) {
	s := mustSession(t, "ResNet-50", "TensorFlow", "RPi3")
	bare := s.InferenceSeconds()
	s.Docker = true
	dockered := s.InferenceSeconds()
	slow := dockered/bare - 1
	if slow <= 0 || slow > 0.05 {
		t.Fatalf("docker slowdown = %.1f%%, want within (0, 5%%]", slow*100)
	}
}

func TestLayerTimesSumToInference(t *testing.T) {
	s := mustSession(t, "ResNet-50", "PyTorch", "JetsonTX2")
	var sum float64
	for _, lt := range s.LayerTimes() {
		sum += lt.Seconds
		if lt.Seconds < 0 || lt.ComputeSec < 0 || lt.MemorySec < 0 {
			t.Fatal("negative layer time component")
		}
	}
	total := s.InferenceSeconds()
	if sum >= total {
		t.Fatal("layer sum should be below total (session overhead missing)")
	}
	if total-sum > 0.1*total+0.05 {
		t.Fatalf("session overhead %v implausibly large vs total %v", total-sum, total)
	}
}

func TestUtilizationBounds(t *testing.T) {
	for _, c := range [][3]string{
		{"ResNet-50", "PyTorch", "JetsonTX2"},
		{"MobileNet-v2", "TFLite", "EdgeTPU"},
		{"VGG16", "PyTorch", "GTXTitanX"},
	} {
		s := mustSession(t, c[0], c[1], c[2])
		u := s.Utilization()
		if u < 0 || u > 1 {
			t.Errorf("%v utilization = %v", c, u)
		}
		f := s.ComputeBoundFraction()
		if f < 0 || f > 1 {
			t.Errorf("%v compute-bound fraction = %v", c, f)
		}
	}
}

// --- Figure-level shape assertions against the paper ---

func within(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if rel := math.Abs(got/want - 1); rel > tol {
		t.Errorf("%s = %.3g, paper %.3g (off %.0f%% > %.0f%%)", what, got, want, rel*100, tol*100)
	}
}

func TestFig8SpeedupAverages(t *testing.T) {
	var spTF, spPT []float64
	for m := range paperdata.Fig8RPi {
		pt := seconds(t, m, "PyTorch", "RPi3")
		tf := seconds(t, m, "TensorFlow", "RPi3")
		tfl := seconds(t, m, "TFLite", "RPi3")
		if !(tfl < tf && tf < pt) {
			t.Errorf("%s: RPi ordering should be TFLite < TF < PyTorch (%.2f, %.2f, %.2f)", m, tfl, tf, pt)
		}
		spTF = append(spTF, tf/tfl)
		spPT = append(spPT, pt/tfl)
	}
	within(t, "Fig8 TFLite-over-TF avg speedup", stats.Mean(spTF), paperdata.Fig8AvgSpeedupTF, 0.30)
	within(t, "Fig8 TFLite-over-PyTorch avg speedup", stats.Mean(spPT), paperdata.Fig8AvgSpeedupPT, 0.30)
}

func TestFig7SpeedupAverage(t *testing.T) {
	var sp []float64
	for m := range paperdata.Fig7Nano {
		pt := seconds(t, m, "PyTorch", "JetsonNano")
		rt := seconds(t, m, "TensorRT", "JetsonNano")
		if rt >= pt {
			t.Errorf("%s: TensorRT should beat PyTorch on Nano", m)
		}
		sp = append(sp, pt/rt)
	}
	within(t, "Fig7 TensorRT avg speedup", stats.Mean(sp), paperdata.Fig7AvgSpeedup, 0.30)
}

func TestFig10GeomeanSpeedup(t *testing.T) {
	models := []string{"ResNet-18", "ResNet-50", "ResNet-101", "MobileNet-v2",
		"Inception-v4", "AlexNet", "VGG16", "VGG19", "YOLOv3", "TinyYolo", "C3D"}
	hpc := []string{"Xeon", "GTXTitanX", "TitanXp", "RTX2080"}
	var speedups []float64
	for _, m := range models {
		tx2 := seconds(t, m, "PyTorch", "JetsonTX2")
		for _, d := range hpc {
			speedups = append(speedups, tx2/seconds(t, m, "PyTorch", d))
		}
	}
	within(t, "Fig10 HPC geomean speedup over TX2", stats.GeoMean(speedups), paperdata.Fig10GeomeanSpeedup, 0.35)
}

func TestXeonIsPoorAtSingleBatch(t *testing.T) {
	// §VI-C: "on several benchmarks, the Xeon CPU performance is lower
	// than that of all platforms" — except memory-bound VGG-class models
	// where its cache hierarchy helps.
	for _, m := range []string{"ResNet-50", "Inception-v4", "MobileNet-v2"} {
		xeon := seconds(t, m, "PyTorch", "Xeon")
		tx2 := seconds(t, m, "PyTorch", "JetsonTX2")
		if xeon <= tx2 {
			t.Errorf("%s: Xeon (%v) should trail TX2 (%v) on compute-bound models", m, xeon, tx2)
		}
	}
	vggXeon := seconds(t, "VGG16", "PyTorch", "Xeon")
	vggTX2 := seconds(t, "VGG16", "PyTorch", "JetsonTX2")
	if r := vggXeon / vggTX2; r > 1.6 || r < 0.5 {
		t.Errorf("VGG16: Xeon/TX2 = %.2f, paper reports near-parity", r)
	}
}

func TestFig2DeviceOrdering(t *testing.T) {
	// For the models every accelerator supports, the paper's Figure 2
	// ordering: EdgeTPU fastest, Jetsons next, Movidius behind on
	// compute-heavy models, RPi slowest by 1-2 orders of magnitude.
	for _, m := range []string{"ResNet-50", "MobileNet-v2", "Inception-v4"} {
		tpu := seconds(t, m, "TFLite", "EdgeTPU")
		nano := seconds(t, m, "TensorRT", "JetsonNano")
		tx2 := seconds(t, m, "PyTorch", "JetsonTX2")
		mov := seconds(t, m, "NCSDK", "Movidius")
		rpi := seconds(t, m, "TFLite", "RPi3")
		if !(tpu < mov && nano < mov && tx2 < mov) {
			t.Errorf("%s: accelerators should beat Movidius (tpu %.4f nano %.4f tx2 %.4f mov %.4f)", m, tpu, nano, tx2, mov)
		}
		if rpi < 10*mov {
			t.Errorf("%s: RPi (%.3f) should be >10x slower than Movidius (%.3f)", m, rpi, mov)
		}
	}
	// EdgeTPU wins outright on MobileNet-v2 (weights fit on chip) but
	// loses to the Jetson Nano on ResNet-50/Inception-v4, whose weights
	// overflow its 8 MB SRAM — exactly Figure 2's pattern.
	if tpu, nano := seconds(t, "MobileNet-v2", "TFLite", "EdgeTPU"),
		seconds(t, "MobileNet-v2", "TensorRT", "JetsonNano"); tpu >= nano {
		t.Errorf("MobileNet-v2: EdgeTPU (%.4f) should beat Nano (%.4f)", tpu, nano)
	}
	if tpu, nano := seconds(t, "ResNet-50", "TFLite", "EdgeTPU"),
		seconds(t, "ResNet-50", "TensorRT", "JetsonNano"); tpu <= nano {
		t.Errorf("ResNet-50: Nano (%.4f) should beat EdgeTPU (%.4f) once weights spill", nano, tpu)
	}
}

func TestFig2AnchorBand(t *testing.T) {
	// Absolute times for the calibrated Figure 2 anchors stay within a
	// 2x band (most are far closer; per-bar deviations are recorded in
	// EXPERIMENTS.md).
	fw := map[string]string{
		"RPi3": "TFLite", "JetsonTX2": "PyTorch", "JetsonNano": "TensorRT",
		"EdgeTPU": "TFLite", "Movidius": "NCSDK", "PYNQ-Z1": "TVM",
	}
	exceptions := map[string]bool{
		// Documented deviations (EXPERIMENTS.md): the paper's TinyYolo
		// port is ~3x less efficient than its FLOPs imply, EdgeTPU SSD
		// includes CPU post-processing outside the graph.
		"JetsonTX2/TinyYolo":       true,
		"EdgeTPU/SSD-MobileNet-v1": true,
	}
	for dev, models := range paperdata.Fig2BestSeconds {
		for m, paper := range models {
			f := fw[dev]
			switch {
			case dev == "RPi3" && (m == "AlexNet" || m == "VGG16" || m == "C3D"):
				f = "PyTorch"
			case dev == "RPi3" && m == "TinyYolo":
				f = "TensorFlow"
			}
			s, err := core.New(m, f, dev)
			if err != nil {
				t.Errorf("%s/%s/%s: %v", m, f, dev, err)
				continue
			}
			if exceptions[dev+"/"+m] {
				continue
			}
			got := s.InferenceSeconds()
			if got > 2*paper || got < paper/2.1 {
				t.Errorf("%s on %s: pred %.4fs vs paper %.4fs outside 2x band", m, dev, got, paper)
			}
		}
	}
}

func TestQuantizationHelpsWhereHardwareSupports(t *testing.T) {
	// §VI-B2: TFLite's INT8 gains come from fusion/graph slimming on
	// RPi (no native INT8) but engage the systolic array on EdgeTPU.
	tpuMobile := seconds(t, "MobileNet-v2", "TFLite", "EdgeTPU")
	rpiMobile := seconds(t, "MobileNet-v2", "TFLite", "RPi3")
	if tpuMobile > rpiMobile/50 {
		t.Errorf("EdgeTPU MobileNet (%v) should be >>50x faster than RPi TFLite (%v)", tpuMobile, rpiMobile)
	}
}

func TestBRAMOverflowPenalty(t *testing.T) {
	ok, err := core.New("ResNet-18", "TVM", "PYNQ-Z1")
	if err != nil {
		t.Fatal(err)
	}
	over, err := core.New("ResNet-50", "TVM", "PYNQ-Z1")
	if err != nil {
		t.Fatal(err)
	}
	r18 := ok.InferenceSeconds()
	r50 := over.InferenceSeconds()
	// ResNet-50 has ~2.3x the FLOPs but must run >10x slower due to
	// DDR3 thrashing (Table V "^^").
	if r50 < 8*r18 {
		t.Errorf("BRAM overflow penalty missing: ResNet-50 %.3fs vs ResNet-18 %.3fs", r50, r18)
	}
	if over.Status() != framework.BRAMOverflow {
		t.Error("status should record BRAM overflow")
	}
}

func TestCalibrateDefaultsForUncalibratedPair(t *testing.T) {
	// DarkNet on Nano has no pinned calibration; the class baseline must
	// produce a sane positive prediction.
	s := mustSession(t, "TinyYolo", "DarkNet", "JetsonNano")
	if ts := s.InferenceSeconds(); ts <= 0 || ts > 10 {
		t.Errorf("uncalibrated pair time = %v", ts)
	}
}

// TestFig2MedianDeviation summarizes calibration quality across every
// reliable Figure 2 anchor: the median absolute deviation must stay
// within 25% and no anchor outside the documented exceptions may exceed
// 2.2x.
func TestFig2MedianDeviation(t *testing.T) {
	fw := map[string]string{
		"RPi3": "TFLite", "JetsonTX2": "PyTorch", "JetsonNano": "TensorRT",
		"EdgeTPU": "TFLite", "Movidius": "NCSDK", "PYNQ-Z1": "TVM",
	}
	exceptions := map[string]bool{
		"JetsonTX2/TinyYolo":       true,
		"EdgeTPU/SSD-MobileNet-v1": true,
	}
	var devs []float64
	for devName, models := range paperdata.Fig2BestSeconds {
		for m, paper := range models {
			f := fw[devName]
			switch {
			case devName == "RPi3" && (m == "AlexNet" || m == "VGG16" || m == "C3D"):
				f = "PyTorch"
			case devName == "RPi3" && m == "TinyYolo":
				f = "TensorFlow"
			}
			if exceptions[devName+"/"+m] {
				continue
			}
			s, err := core.New(m, f, devName)
			if err != nil {
				t.Fatalf("%s/%s: %v", m, devName, err)
			}
			devs = append(devs, math.Abs(s.InferenceSeconds()/paper-1))
		}
	}
	if len(devs) < 30 {
		t.Fatalf("only %d anchors audited", len(devs))
	}
	if med := stats.Median(devs); med > 0.25 {
		t.Fatalf("median anchor deviation %.0f%% exceeds 25%%", med*100)
	}
	if worst := stats.Max(devs); worst > 1.2 {
		t.Fatalf("worst non-exception anchor off by %.0f%%", worst*100)
	}
}
