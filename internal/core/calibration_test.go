package core_test

import (
	"strings"
	"testing"

	"edgebench/internal/core"
	"edgebench/internal/device"
	"edgebench/internal/framework"
)

// TestCalibrationOverridesAreLegalPairs guards the calibration table
// against drift: every pinned (device, framework) pair must name a real
// device and framework, and the framework must actually deploy on that
// platform — otherwise a pinned calibration would silently never apply.
func TestCalibrationOverridesAreLegalPairs(t *testing.T) {
	for _, key := range core.OverrideKeys() {
		parts := strings.SplitN(key, "/", 2)
		if len(parts) != 2 {
			t.Fatalf("malformed override key %q", key)
		}
		devName, fwName := parts[0], parts[1]
		d, ok := device.Get(devName)
		if !ok {
			t.Errorf("override %q names unknown device", key)
			continue
		}
		fw, ok := framework.Get(fwName)
		if !ok {
			t.Errorf("override %q names unknown framework", key)
			continue
		}
		if !fw.SupportedOn(devName) {
			t.Errorf("override %q pins a pair the platform lock forbids", key)
		}
		c := core.Calibrate(d, fw)
		if c.ComputeEff <= 0 || c.ComputeEff > 1 {
			t.Errorf("%s: compute efficiency %v out of (0,1]", key, c.ComputeEff)
		}
		if c.MemEff <= 0 || c.MemEff > 1 {
			t.Errorf("%s: memory efficiency %v out of (0,1]", key, c.MemEff)
		}
		if c.DispatchSec < 0 || c.SessionSec < 0 {
			t.Errorf("%s: negative overheads", key)
		}
	}
}

// TestEveryMeasuredPairIsPinned ensures the pairs the paper's figures
// measure carry explicit calibrations rather than class defaults.
func TestEveryMeasuredPairIsPinned(t *testing.T) {
	measured := []string{
		"RPi3/TensorFlow", "RPi3/TFLite", "RPi3/PyTorch", "RPi3/Caffe", "RPi3/DarkNet",
		"JetsonTX2/PyTorch", "JetsonTX2/TensorFlow", "JetsonTX2/Caffe", "JetsonTX2/DarkNet",
		"JetsonNano/TensorRT", "JetsonNano/PyTorch",
		"EdgeTPU/TFLite", "Movidius/NCSDK", "PYNQ-Z1/TVM",
		"Xeon/PyTorch", "GTXTitanX/PyTorch", "GTXTitanX/TensorFlow",
		"TitanXp/PyTorch", "RTX2080/PyTorch",
	}
	pinned := map[string]bool{}
	for _, k := range core.OverrideKeys() {
		pinned[k] = true
	}
	for _, k := range measured {
		if !pinned[k] {
			t.Errorf("paper-measured pair %s has no pinned calibration", k)
		}
	}
}
