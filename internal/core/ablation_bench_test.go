package core_test

import (
	"testing"

	"edgebench/internal/core"
	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
)

// Ablation benchmarks for the design choices DESIGN.md §5 calls out:
// each reports the modeled latency effect of toggling one optimization,
// so `go test -bench=Ablation ./internal/core` quantifies where the
// frameworks' speedups come from (§VI-B2's attribution).

func ablate(b *testing.B, passes ...graph.Pass) float64 {
	b.Helper()
	g := model.MustGet("ResNet-50").Build(nn.Options{})
	for _, p := range passes {
		p(g)
	}
	s, err := core.NewFromGraph(g, "TensorRT", "JetsonNano")
	if err != nil {
		b.Fatal(err)
	}
	return s.InferenceSeconds()
}

func BenchmarkAblationBaselineFP32(b *testing.B) {
	var t float64
	for i := 0; i < b.N; i++ {
		t = ablate(b)
	}
	b.ReportMetric(t*1e3, "modeled-ms")
}

func BenchmarkAblationFusionOnly(b *testing.B) {
	var t float64
	for i := 0; i < b.N; i++ {
		t = ablate(b, graph.FoldBN, graph.FuseActivations)
	}
	b.ReportMetric(t*1e3, "modeled-ms")
}

func BenchmarkAblationQuantizationOnly(b *testing.B) {
	var t float64
	for i := 0; i < b.N; i++ {
		t = ablate(b, graph.QuantizeINT8)
	}
	b.ReportMetric(t*1e3, "modeled-ms")
}

func BenchmarkAblationFP16Only(b *testing.B) {
	var t float64
	for i := 0; i < b.N; i++ {
		t = ablate(b, graph.CastFP16)
	}
	b.ReportMetric(t*1e3, "modeled-ms")
}

func BenchmarkAblationFullTensorRTPipeline(b *testing.B) {
	var t float64
	for i := 0; i < b.N; i++ {
		t = ablate(b, graph.FoldBN, graph.FuseActivations, graph.QuantizeINT8, graph.EliminateDead)
	}
	b.ReportMetric(t*1e3, "modeled-ms")
}

// BenchmarkAblationPruning sweeps sparsity on a sparse-aware framework.
func BenchmarkAblationPruning(b *testing.B) {
	for _, frac := range []float64{0, 0.5, 0.9} {
		frac := frac
		b.Run(sparsityName(frac), func(b *testing.B) {
			var t float64
			for i := 0; i < b.N; i++ {
				t = ablate(b, graph.Prune(frac))
			}
			b.ReportMetric(t*1e3, "modeled-ms")
		})
	}
}

func sparsityName(f float64) string {
	switch f {
	case 0:
		return "dense"
	case 0.5:
		return "sparse50"
	default:
		return "sparse90"
	}
}

// BenchmarkAblationStaticVsDynamic compares graph disciplines on the
// dispatch-sensitive RPi.
func BenchmarkAblationStaticVsDynamic(b *testing.B) {
	for _, mode := range []graph.Mode{graph.Static, graph.Dynamic} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			var t float64
			for i := 0; i < b.N; i++ {
				g := model.MustGet("ResNet-18").Build(nn.Options{})
				g.Mode = mode
				fw := "TensorFlow"
				if mode == graph.Dynamic {
					fw = "PyTorch"
				}
				s, err := core.NewFromGraph(g, fw, "RPi3")
				if err != nil {
					b.Fatal(err)
				}
				t = s.InferenceSeconds()
			}
			b.ReportMetric(t*1e3, "modeled-ms")
		})
	}
}

// TestAblationOrdering pins the qualitative ablation result: each
// optimization helps, and the full pipeline beats any single one.
func TestAblationOrdering(t *testing.T) {
	base := ablateT(t)
	fused := ablateT(t, graph.FoldBN, graph.FuseActivations)
	quant := ablateT(t, graph.QuantizeINT8)
	fp16 := ablateT(t, graph.CastFP16)
	full := ablateT(t, graph.FoldBN, graph.FuseActivations, graph.QuantizeINT8, graph.EliminateDead)
	if !(fused < base && quant < base && fp16 < base) {
		t.Fatalf("each optimization should help: base %v fused %v quant %v fp16 %v", base, fused, quant, fp16)
	}
	if !(full < fused && full < quant) {
		t.Fatalf("full pipeline should dominate: full %v fused %v quant %v", full, fused, quant)
	}
	// INT8 on a device with native INT8 should beat FP16.
	if quant >= fp16 {
		t.Fatalf("int8 (%v) should beat fp16 (%v) on the Nano", quant, fp16)
	}
}

func ablateT(t *testing.T, passes ...graph.Pass) float64 {
	t.Helper()
	g := model.MustGet("ResNet-50").Build(nn.Options{})
	for _, p := range passes {
		p(g)
	}
	s, err := core.NewFromGraph(g, "TensorRT", "JetsonNano")
	if err != nil {
		t.Fatal(err)
	}
	return s.InferenceSeconds()
}

// TestPruningSparseAwareVsNot pins Table II's ‡‡ distinction: pruning
// only buys compute on frameworks that exploit sparsity.
func TestPruningSparseAwareVsNot(t *testing.T) {
	build := func() *graph.Graph {
		g := model.MustGet("ResNet-50").Build(nn.Options{})
		graph.Prune(0.8)(g)
		return g
	}
	aware, err := core.NewFromGraph(build(), "TensorRT", "JetsonNano") // PruningExploit: true
	if err != nil {
		t.Fatal(err)
	}
	naive, err := core.NewFromGraph(build(), "PyTorch", "JetsonNano") // PruningExploit: false
	if err != nil {
		t.Fatal(err)
	}
	denseAware, err := core.NewFromGraph(model.MustGet("ResNet-50").Build(nn.Options{}), "TensorRT", "JetsonNano")
	if err != nil {
		t.Fatal(err)
	}
	denseNaive, err := core.NewFromGraph(model.MustGet("ResNet-50").Build(nn.Options{}), "PyTorch", "JetsonNano")
	if err != nil {
		t.Fatal(err)
	}
	if aware.InferenceSeconds() >= denseAware.InferenceSeconds() {
		t.Fatal("sparse-aware framework should gain from pruning")
	}
	if naive.InferenceSeconds() < denseNaive.InferenceSeconds()*0.999 {
		t.Fatal("non-exploiting framework should gain nothing from pruning")
	}
}
