// Package core is the characterization engine of edgebench: it binds a
// model, a framework, and a device into a Session, lowers the model
// through the framework's real optimization pipeline, and predicts
// single-batch inference latency with a calibrated roofline model
// (compute vs. memory bound per layer, plus per-op dispatch and
// per-inference session overheads).
//
// The latency model is analytic because the paper's observable — wall
// time on ten physical platforms — cannot be reproduced by host-CPU
// execution. Its parameters are calibrated against the paper's measured
// anchors (Figs. 2, 7, 8) in calibration.go, and its structure makes the
// paper's qualitative findings emerge rather than being hardcoded:
// dynamic graphs pay dispatch per op per inference, fusion removes ops,
// quantization shrinks traffic and engages native INT8 units, memory-
// bound layers ride bandwidth.
package core

import (
	"errors"
	"fmt"

	"edgebench/internal/device"
	"edgebench/internal/framework"
	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/stats"
	"edgebench/internal/verify"
	"edgebench/internal/virt"
)

// ErrOOM reports that a static-graph framework cannot fit the model in
// device memory (Table V "^": only a dynamic-graph framework runs it).
var ErrOOM = errors.New("model exceeds device memory under a static graph")

// ErrUnsupported reports that the framework does not deploy on the
// platform (Table III platform row).
var ErrUnsupported = errors.New("framework not available on platform")

// ErrIncompatible reports a Table V incompatibility (code issues or
// conversion barriers).
type ErrIncompatible struct {
	Model, Device string
	Status        framework.Status
}

func (e *ErrIncompatible) Error() string {
	return fmt.Sprintf("%s on %s: %s", e.Model, e.Device, e.Status)
}

// Session is one (model, framework, device) deployment.
type Session struct {
	Model     *model.Spec
	Framework *framework.Framework
	Device    *device.Device

	// Docker applies the virtualization overhead of §VI-D.
	Docker bool

	lowered *graph.Graph
	calib   Calib
	status  framework.Status

	// exec lazily holds the numeric execution engine for Infer; reset
	// whenever the lowered graph is replaced (Materialize).
	exec *graph.Executor
}

// New prepares a session, enforcing the paper's deployment rules:
// platform-framework locks, Table V compatibility, and the static-graph
// memory wall.
func New(modelName, fwName, devName string) (*Session, error) {
	spec, ok := model.Get(modelName)
	if !ok {
		return nil, unknownName("model", modelName)
	}
	fw, ok := framework.Get(fwName)
	if !ok {
		return nil, unknownName("framework", fwName)
	}
	dev, ok := device.Get(devName)
	if !ok {
		return nil, unknownName("device", devName)
	}
	if !fw.SupportedOn(devName) {
		return nil, fmt.Errorf("core: %s on %s: %w", fwName, devName, ErrUnsupported)
	}
	status := framework.TableVStatus(modelName, devName)
	if !status.Runnable() {
		return nil, &ErrIncompatible{Model: modelName, Device: devName, Status: status}
	}
	s := &Session{
		Model:     spec,
		Framework: fw,
		Device:    dev,
		calib:     Calibrate(dev, fw),
		status:    status,
	}
	s.lowered = fw.Lower(spec.Build(nn.Options{}), dev)
	// Static verification at session open: the lowered graph is what the
	// latency and memory models price, so a pass that corrupted it would
	// silently invalidate every measurement downstream.
	if err := verify.Err(verify.Check(s.lowered)); err != nil {
		return nil, fmt.Errorf("core: %s lowered by %s for %s: %w", modelName, fwName, devName, err)
	}

	if status == framework.DynamicGraphRequired && fw.Mode == graph.Static {
		return nil, fmt.Errorf("core: %s on %s with %s: %w", modelName, devName, fwName, ErrOOM)
	}
	if fw.Mode == graph.Static && s.StaticMemBytes() > float64(dev.MemBytes) {
		return nil, fmt.Errorf("core: %s on %s with %s: %w", modelName, devName, fwName, ErrOOM)
	}
	return s, nil
}

// NewFromGraph prices an arbitrary pre-lowered graph on a device under a
// framework's calibration, bypassing the registry, compatibility, and
// memory checks. It exists for ablation studies (fusion on/off,
// quantization on/off, pruning sweeps) where the caller composes graph
// passes directly.
func NewFromGraph(g *graph.Graph, fwName, devName string) (*Session, error) {
	fw, ok := framework.Get(fwName)
	if !ok {
		return nil, unknownName("framework", fwName)
	}
	dev, ok := device.Get(devName)
	if !ok {
		return nil, unknownName("device", devName)
	}
	if err := verify.Err(verify.Check(g)); err != nil {
		return nil, fmt.Errorf("core: graph %s on %s: %w", g.Name, devName, err)
	}
	return &Session{
		Framework: fw,
		Device:    dev,
		calib:     Calibrate(dev, fw),
		status:    framework.OK,
		lowered:   g,
	}, nil
}

// Lowered returns the framework-optimized executable graph.
func (s *Session) Lowered() *graph.Graph { return s.lowered }

// Status returns the Table V classification the session runs under.
func (s *Session) Status() framework.Status { return s.status }

// StaticMemBytes estimates the resident footprint of a static-graph
// deployment: weights plus all activation buffers, scaled by the
// framework's bookkeeping factor, plus its baseline.
func (s *Session) StaticMemBytes() float64 {
	var weights, acts float64
	for _, n := range s.lowered.Nodes {
		weights += float64(n.WeightBytes())
		acts += float64(n.OutShape.NumElems()) * float64(n.DType.Bytes())
	}
	return (weights+acts)*s.Framework.MemoryFactor + float64(s.Framework.BaselineBytes)
}

// DynamicMemBytes estimates the peak footprint of a define-by-run
// deployment: weights plus the peak of live activations.
func (s *Session) DynamicMemBytes() float64 {
	var weights float64
	for _, n := range s.lowered.Nodes {
		weights += float64(n.WeightBytes())
	}
	return weights + s.lowered.PeakActivationBytes() + float64(s.Framework.BaselineBytes)
}

// InferenceSeconds returns the deterministic model-predicted time of one
// single-batch inference, excluding one-time initialization (§V's
// methodology).
func (s *Session) InferenceSeconds() float64 {
	t := s.graphSeconds()
	if s.Docker {
		t *= virt.Docker.Slowdown()
	}
	return t
}

// Run simulates iters single-batch inferences and returns their
// durations in seconds, with measurement noise drawn from a seeded
// source (reproducible, per the paper's open-harness goal). One-time
// costs are excluded, matching §V.
func (s *Session) Run(iters int, seed int64) []float64 {
	base := s.InferenceSeconds()
	rng := stats.NewRNG(seed)
	out := make([]float64, iters)
	for i := range out {
		noise := 1 + stats.GaussianNoise(rng, measurementNoiseSigma)
		if noise < 0.5 {
			noise = 0.5
		}
		out[i] = base * noise
	}
	return out
}

// Summary runs iters inferences and summarizes them.
func (s *Session) Summary(iters int, seed int64) stats.Summary {
	return stats.Summarize(s.Run(iters, seed))
}

// measurementNoiseSigma matches the few-percent run-to-run variation of
// repeated single-batch inference loops.
const measurementNoiseSigma = 0.02
