package core

import (
	"errors"
	"strings"
	"testing"
)

func TestSuggestRanksCandidates(t *testing.T) {
	candidates := []string{"MobileNet-v2", "ResNet-50", "ResNet-18", "TinyYolo"}
	got := Suggest("mobilenet", candidates, 3)
	if len(got) == 0 || got[0] != "MobileNet-v2" {
		t.Fatalf("Suggest(mobilenet) = %v, want MobileNet-v2 first", got)
	}
	// One character off: edit distance catches it.
	got = Suggest("ResNet-51", candidates, 3)
	if len(got) == 0 || !strings.HasPrefix(got[0], "ResNet") {
		t.Fatalf("Suggest(ResNet-51) = %v, want a ResNet", got)
	}
	// Garbage suggests nothing.
	if got := Suggest("qqqqqqqqqqqq", candidates, 3); len(got) != 0 {
		t.Fatalf("garbage input suggested %v", got)
	}
}

func TestSuggestCaps(t *testing.T) {
	candidates := []string{"a1", "a2", "a3", "a4", "a5"}
	if got := Suggest("a", candidates, 2); len(got) > 2 {
		t.Fatalf("Suggest returned %d items, cap was 2", len(got))
	}
	if got := Suggest("a", candidates, 0); got != nil {
		t.Fatalf("max 0 should return nil, got %v", got)
	}
}

// TestNewUnknownNamesCarrySuggestions pins the did-you-mean surface on
// the session constructor for all three registries.
func TestNewUnknownNamesCarrySuggestions(t *testing.T) {
	cases := []struct {
		model, fw, dev string
		kind           string
		wantSuggestion string
	}{
		{"MobileNetv2", "TFLite", "EdgeTPU", "model", "MobileNet-v2"},
		{"MobileNet-v2", "TFLight", "EdgeTPU", "framework", "TFLite"},
		{"MobileNet-v2", "TFLite", "EdgeGPU", "device", "EdgeTPU"},
	}
	for _, c := range cases {
		_, err := New(c.model, c.fw, c.dev)
		var ue *UnknownNameError
		if !errors.As(err, &ue) {
			t.Fatalf("New(%q,%q,%q) = %v, want UnknownNameError", c.model, c.fw, c.dev, err)
		}
		if ue.Kind != c.kind {
			t.Errorf("kind %q, want %q", ue.Kind, c.kind)
		}
		found := false
		for _, s := range ue.Suggestions {
			if s == c.wantSuggestion {
				found = true
			}
		}
		if !found {
			t.Errorf("%s suggestions %v missing %q", c.kind, ue.Suggestions, c.wantSuggestion)
		}
		if !strings.Contains(ue.Error(), "did you mean") {
			t.Errorf("error %q lacks did-you-mean hint", ue.Error())
		}
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b); got != c.want {
			t.Errorf("levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
