package core

import "edgebench/internal/device"

// Batch support extends the latency model to the multi-batch regime the
// paper contrasts with edge inference (§VI-C): HPC platforms "are
// designed to exploit massive data parallelism available at data
// centers, where large companies batch several requests together".
//
// Batching changes three things:
//   - arithmetic and activation traffic scale with the batch size;
//   - weight traffic is amortized — weights stream once per batch, not
//     once per sample;
//   - hardware utilization rises: single-batch kernels cannot fill wide
//     GPUs, which is exactly why the calibrated single-batch
//     efficiencies sit far below peak. Efficiency approaches a
//     class-dependent ceiling as the batch grows.

// batchCeiling is the utilization ceiling reachable with large batches.
func batchCeiling(class device.Class) float64 {
	switch class {
	case device.HPCGPU:
		return 0.75
	case device.EdgeGPU:
		return 0.60
	case device.HPCCPU:
		return 0.45
	case device.EdgeAccel:
		return 0.50
	default:
		return 0.40 // CPUs/FPGA gain little from batching
	}
}

// batchEff interpolates the calibrated single-batch efficiency toward
// the class ceiling: eff(B) = ceil * B / (B + k), with k fixed by
// eff(1) = single.
func batchEff(single, ceiling float64, batch int) float64 {
	if batch <= 1 {
		return single
	}
	if single >= ceiling {
		return single
	}
	k := ceiling/single - 1
	return ceiling * float64(batch) / (float64(batch) + k)
}

// BatchInferenceSeconds returns the modeled latency of one batch of the
// given size (the whole batch, not per sample).
func (s *Session) BatchInferenceSeconds(batch int) float64 {
	if batch < 1 {
		batch = 1
	}
	if batch == 1 {
		return s.InferenceSeconds()
	}
	dev := s.Device
	cal := s.calib
	eff := batchEff(cal.ComputeEff, batchCeiling(dev.Class), batch)
	scale := eff / cal.ComputeEff

	var total float64
	for _, lt := range s.LayerTimes() {
		compute := lt.ComputeSec * float64(batch) / scale
		// Weight traffic amortizes across the batch; activation traffic
		// scales with it.
		memory := lt.WeightMemSec + lt.ActMemSec*float64(batch)
		body := compute
		if memory > compute {
			body = memory
		}
		total += body + lt.DispatchSec
	}
	return total + cal.SessionSec
}

// ThroughputPerSecond returns samples/second at the given batch size.
func (s *Session) ThroughputPerSecond(batch int) float64 {
	t := s.BatchInferenceSeconds(batch)
	if t <= 0 {
		return 0
	}
	return float64(batch) / t
}

// BatchMemBytes estimates the resident footprint at the given batch size
// (activations scale; weights do not). It guards against batching a
// model out of device memory.
func (s *Session) BatchMemBytes(batch int) float64 {
	var weights, acts float64
	for _, n := range s.lowered.Nodes {
		weights += float64(n.WeightBytes())
		acts += float64(n.OutShape.NumElems()) * float64(n.DType.Bytes())
	}
	return (weights+acts*float64(batch))*s.Framework.MemoryFactor + float64(s.Framework.BaselineBytes)
}

// MaxBatch returns the largest power-of-two batch that fits device
// memory, capped at limit.
func (s *Session) MaxBatch(limit int) int {
	best := 0
	for b := 1; b <= limit; b *= 2 {
		if s.BatchMemBytes(b) <= float64(s.Device.MemBytes) {
			best = b
		}
	}
	if best == 0 {
		return 0
	}
	return best
}
