package nn_test

import (
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/stats"
	"edgebench/internal/tensor"
)

func TestBuilderShapes(t *testing.T) {
	b := nn.NewBuilder("t", nn.Options{}, 3, 32, 32)
	c := b.Conv2D("c1", 16, 3, 1, 1, false)
	if !c.OutShape.Equal(tensor.Shape{16, 32, 32}) {
		t.Fatalf("conv shape %v", c.OutShape)
	}
	p := b.MaxPool("p1", 2, 2, 0)
	if !p.OutShape.Equal(tensor.Shape{16, 16, 16}) {
		t.Fatalf("pool shape %v", p.OutShape)
	}
	d := b.DepthwiseConv2D("dw", 3, 2, 1, false)
	if !d.OutShape.Equal(tensor.Shape{16, 8, 8}) {
		t.Fatalf("dw shape %v", d.OutShape)
	}
	g := b.GlobalAvgPool("gap")
	if !g.OutShape.Equal(tensor.Shape{16}) {
		t.Fatalf("gap shape %v", g.OutShape)
	}
	fc := b.Dense("fc", 10, true)
	if !fc.OutShape.Equal(tensor.Shape{10}) {
		t.Fatalf("fc shape %v", fc.OutShape)
	}
	if err := b.Build().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDenseAutoFlattens(t *testing.T) {
	b := nn.NewBuilder("t", nn.Options{}, 2, 4, 4)
	fc := b.Dense("fc", 5, false)
	if fc.WShape[1] != 32 {
		t.Fatalf("dense input dim = %d, want 32", fc.WShape[1])
	}
}

func TestGroupedConvParams(t *testing.T) {
	b := nn.NewBuilder("t", nn.Options{}, 96, 27, 27)
	c := b.Conv2DG("c2", 256, 5, 1, 2, 2, true)
	// Grouped: weights are [256, 48, 5, 5].
	if c.ParamCount() != 256*48*5*5+256 {
		t.Fatalf("grouped params = %d", c.ParamCount())
	}
	if !c.OutShape.Equal(tensor.Shape{256, 27, 27}) {
		t.Fatalf("grouped out shape %v", c.OutShape)
	}
}

func TestGroupedConvPanicsOnBadGroups(t *testing.T) {
	b := nn.NewBuilder("t", nn.Options{}, 3, 8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("indivisible groups should panic")
		}
	}()
	b.Conv2DG("c", 4, 3, 1, 1, 2, false)
}

func TestGroupedConvExecutionMatchesBlockDiagonal(t *testing.T) {
	// A grouped conv equals two independent convs on channel halves.
	b := nn.NewBuilder("t", nn.Options{Materialize: true, Seed: 3}, 4, 6, 6)
	c := b.Conv2DG("g", 4, 3, 1, 1, 2, true)
	g := b.Build()
	in := tensor.New(4, 6, 6).Randomize(stats.NewRNG(99), 1)
	out, err := (&graph.Executor{}).Run(g, in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	// Reference: split manually.
	for gi := 0; gi < 2; gi++ {
		gin := tensor.FromData(in.Data[gi*2*36:(gi+1)*2*36], 2, 6, 6)
		gw := tensor.FromData(c.Weights.Data[gi*2*2*9:(gi+1)*2*2*9], 2, 2, 3, 3)
		gb := c.Bias[gi*2 : (gi+1)*2]
		ref := tensor.Conv2D(gin, gw, gb, tensor.Conv2DSpec{Stride: 1, Pad: 1})
		for i := range ref.Data {
			got := out.Data[gi*2*36+i]
			if d := got - ref.Data[i]; d > 1e-5 || d < -1e-5 {
				t.Fatalf("group %d diverges at %d", gi, i)
			}
		}
	}
	// GEMM path agrees too.
	out2, err := (&graph.Executor{UseGEMMConv: true}).Run(g, in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for i := range out.Data {
		if d := out.Data[i] - out2.Data[i]; d > 1e-4 || d < -1e-4 {
			t.Fatal("gemm grouped path diverges")
		}
	}
}

func TestSeparableConv(t *testing.T) {
	b := nn.NewBuilder("t", nn.Options{}, 8, 16, 16)
	pw := b.SeparableConv2D("sep", 32, 3, 1, 1)
	if !pw.OutShape.Equal(tensor.Shape{32, 16, 16}) {
		t.Fatalf("separable out %v", pw.OutShape)
	}
	g := b.Build()
	// dw + bn + relu + pw
	if g.NumOps() != 4 {
		t.Fatalf("NumOps = %d, want 4", g.NumOps())
	}
}

func TestConvBNReLUStructure(t *testing.T) {
	b := nn.NewBuilder("t", nn.Options{}, 3, 8, 8)
	out := b.ConvBNReLU("blk", 8, 3, 1, 1)
	if out.Kind != graph.OpReLU {
		t.Fatal("ConvBNReLU should end in ReLU")
	}
	g := b.Build()
	if g.NumOps() != 3 {
		t.Fatalf("NumOps = %d", g.NumOps())
	}
	// Conv before BN should have no bias.
	if g.Nodes[1].BiasLen != 0 {
		t.Fatal("conv before BN should be bias-free")
	}
}

func TestStructuralBuilderAllocatesNoWeights(t *testing.T) {
	b := nn.NewBuilder("t", nn.Options{}, 3, 224, 224)
	b.Conv2D("huge", 512, 3, 1, 1, true)
	g := b.Build()
	for _, n := range g.Nodes {
		if n.Weights != nil || n.Bias != nil || n.BN != nil {
			t.Fatal("structural build must not allocate parameter data")
		}
	}
	if g.Params() == 0 {
		t.Fatal("structural params must still be counted")
	}
}

func TestMaterializedBuilderIsDeterministic(t *testing.T) {
	build := func() *nn.Graph {
		b := nn.NewBuilder("t", nn.Options{Materialize: true, Seed: 42}, 3, 8, 8)
		b.ConvBNReLU("b", 4, 3, 1, 1)
		return b.Build()
	}
	g1, g2 := build(), build()
	w1 := g1.Nodes[1].Weights
	w2 := g2.Nodes[1].Weights
	for i := range w1.Data {
		if w1.Data[i] != w2.Data[i] {
			t.Fatal("same seed must produce identical weights")
		}
	}
}

func TestActivationVariants(t *testing.T) {
	b := nn.NewBuilder("t", nn.Options{}, 1, 4, 4)
	if b.ReLU6("r6").Kind != graph.OpReLU6 {
		t.Fatal("ReLU6 kind")
	}
	if n := b.LeakyReLU("lr", 0.1); n.Kind != graph.OpLeakyReLU || n.Attrs.Alpha != 0.1 {
		t.Fatal("LeakyReLU kind/alpha")
	}
	if b.Sigmoid("s").Kind != graph.OpSigmoid {
		t.Fatal("Sigmoid kind")
	}
	if b.Tanh("th").Kind != graph.OpTanh {
		t.Fatal("Tanh kind")
	}
	if b.AvgPool("ap", 2, 2, 0).Kind != graph.OpAvgPool2D {
		t.Fatal("AvgPool kind")
	}
}

func TestConv3DAndPool3D(t *testing.T) {
	b := nn.NewBuilder("t", nn.Options{}, 3, 12, 32, 32)
	c := b.Conv3D("c3", 8, 3, 1, 1, true)
	if !c.OutShape.Equal(tensor.Shape{8, 12, 32, 32}) {
		t.Fatalf("conv3d shape %v", c.OutShape)
	}
	p := b.MaxPool3D("p3", 2, 2)
	if !p.OutShape.Equal(tensor.Shape{8, 6, 16, 16}) {
		t.Fatalf("pool3d shape %v", p.OutShape)
	}
}
