// Package nn provides a fluent layer-level builder over the graph IR.
// Model definitions (internal/model) use it to express architectures the
// way framework users do — Conv/BN/ReLU chains, residual blocks, Inception
// branches — while the builder takes care of shape inference, parameter
// bookkeeping, and optional weight materialization.
package nn

import (
	"math"
	"math/rand"

	"edgebench/internal/graph"
	"edgebench/internal/stats"
	"edgebench/internal/tensor"
)

// Builder incrementally constructs a computation graph. The builder keeps
// a cursor (the node new layers consume); branching models capture node
// handles and re-seat the cursor with From.
type Builder struct {
	g   *Graph
	cur *graph.Node
	rng *rand.Rand

	// materialize controls whether layers allocate real weight tensors.
	materialize bool
}

// Graph aliases graph.Graph so callers of nn need not import both
// packages for the common build-then-run flow.
type Graph = graph.Graph

// Options configures builder behaviour.
type Options struct {
	// Materialize allocates and randomizes real weights so the graph can
	// be executed numerically. Leave false for timing/cost experiments on
	// large models.
	Materialize bool
	// Seed drives weight initialization when materializing.
	Seed int64
}

// NewBuilder starts a graph with the given input shape ([C,H,W] for image
// models, [C,D,H,W] for video models).
func NewBuilder(name string, opts Options, inputShape ...int) *Builder {
	g := graph.New(name, inputShape...)
	return &Builder{
		g:           g,
		cur:         g.Input,
		rng:         stats.NewRNG(opts.Seed),
		materialize: opts.Materialize,
	}
}

// Current returns the cursor node (the most recent layer output).
func (b *Builder) Current() *graph.Node { return b.cur }

// From re-seats the cursor on n so the next layer consumes it.
func (b *Builder) From(n *graph.Node) *Builder {
	b.cur = n
	return b
}

// MarkOutput registers n as an additional graph output (detection heads).
// The primary output remains the cursor at Build time.
func (b *Builder) MarkOutput(n *graph.Node) *Builder {
	b.g.Extra = append(b.g.Extra, n)
	return b
}

// Build finalizes and validates the graph, returning it. It panics on
// invariant violations: model definitions are code, so a bad graph is a
// bug, not input error.
func (b *Builder) Build() *Graph {
	b.g.Output = b.cur
	if err := b.g.Validate(); err != nil {
		panic("nn: " + err.Error())
	}
	return b.g
}

func (b *Builder) add(n *graph.Node) *graph.Node {
	if len(n.Inputs) == 0 && n.Kind != graph.OpInput {
		n.Inputs = []*graph.Node{b.cur}
	}
	b.g.Add(n)
	b.cur = n
	return n
}

// newWeights materializes a randomized weight tensor when the builder is
// in materialize mode, using He-style scaling by fan-in for stable
// activations through deep stacks.
func (b *Builder) newWeights(shape tensor.Shape, fanIn int) *tensor.Tensor {
	if !b.materialize {
		return nil
	}
	scale := float32(math.Sqrt(2 / float64(fanIn)))
	return tensor.New(shape...).Randomize(b.rng, scale)
}

func (b *Builder) newBias(n int) []float32 {
	if !b.materialize {
		return nil
	}
	return make([]float32, n)
}

// Conv2D appends a 2-D convolution with cout filters of size k, given
// stride and padding. withBias controls the additive bias term (layers
// followed by BN conventionally omit it).
func (b *Builder) Conv2D(name string, cout, k, stride, pad int, withBias bool) *graph.Node {
	return b.Conv2DG(name, cout, k, stride, pad, 1, withBias)
}

// Conv2DG appends a grouped 2-D convolution: input and output channels
// are split into `groups` independent slices (AlexNet's conv2/4/5 layout).
func (b *Builder) Conv2DG(name string, cout, k, stride, pad, groups int, withBias bool) *graph.Node {
	cin := b.cur.OutShape[0]
	if groups < 1 {
		groups = 1
	}
	if cin%groups != 0 || cout%groups != 0 {
		panic("nn: channels not divisible by groups")
	}
	n := &graph.Node{
		Name:   name,
		Kind:   graph.OpConv2D,
		Attrs:  graph.Attrs{Stride: stride, Pad: pad, Groups: groups},
		WShape: tensor.Shape{cout, cin / groups, k, k},
	}
	n.Weights = b.newWeights(n.WShape, cin/groups*k*k)
	if withBias {
		n.BiasLen = cout
		n.Bias = b.newBias(cout)
	}
	return b.add(n)
}

// DepthwiseConv2D appends a depthwise convolution with one kxk filter per
// channel.
func (b *Builder) DepthwiseConv2D(name string, k, stride, pad int, withBias bool) *graph.Node {
	c := b.cur.OutShape[0]
	n := &graph.Node{
		Name:   name,
		Kind:   graph.OpDepthwiseConv2D,
		Attrs:  graph.Attrs{Stride: stride, Pad: pad},
		WShape: tensor.Shape{c, k, k},
	}
	n.Weights = b.newWeights(n.WShape, k*k)
	if withBias {
		n.BiasLen = c
		n.Bias = b.newBias(c)
	}
	return b.add(n)
}

// Conv2DRect appends a convolution with a rectangular kh x kw kernel and
// per-axis padding — Inception-v4's factorized 1x7/7x1 convolutions.
func (b *Builder) Conv2DRect(name string, cout, kh, kw, stride, padH, padW int, withBias bool) *graph.Node {
	cin := b.cur.OutShape[0]
	n := &graph.Node{
		Name:   name,
		Kind:   graph.OpConv2D,
		Attrs:  graph.Attrs{Stride: stride, PadH: padH, PadW: padW, Asym: true},
		WShape: tensor.Shape{cout, cin, kh, kw},
	}
	n.Weights = b.newWeights(n.WShape, cin*kh*kw)
	if withBias {
		n.BiasLen = cout
		n.Bias = b.newBias(cout)
	}
	return b.add(n)
}

// Conv3D appends a 3-D convolution with cout filters of size kxkxk.
func (b *Builder) Conv3D(name string, cout, k, stride, pad int, withBias bool) *graph.Node {
	cin := b.cur.OutShape[0]
	n := &graph.Node{
		Name:   name,
		Kind:   graph.OpConv3D,
		Attrs:  graph.Attrs{Stride: stride, Pad: pad},
		WShape: tensor.Shape{cout, cin, k, k, k},
	}
	n.Weights = b.newWeights(n.WShape, cin*k*k*k)
	if withBias {
		n.BiasLen = cout
		n.Bias = b.newBias(cout)
	}
	return b.add(n)
}

// SeparableConv2D appends the depthwise-separable pair (depthwise kxk then
// pointwise 1x1) used by Xception and the MobileNets, returning the
// pointwise node.
func (b *Builder) SeparableConv2D(name string, cout, k, stride, pad int) *graph.Node {
	b.DepthwiseConv2D(name+"_dw", k, stride, pad, false)
	b.BatchNorm(name + "_dw_bn")
	b.ReLU(name + "_dw_relu")
	pw := b.Conv2D(name+"_pw", cout, 1, 1, 0, false)
	return pw
}

// Dense appends a fully-connected layer producing out features. The input
// is flattened implicitly if it is not already rank 1.
func (b *Builder) Dense(name string, out int, withBias bool) *graph.Node {
	if len(b.cur.OutShape) != 1 {
		b.Flatten(name + "_flatten")
	}
	in := b.cur.OutShape[0]
	n := &graph.Node{
		Name:   name,
		Kind:   graph.OpDense,
		WShape: tensor.Shape{out, in},
	}
	n.Weights = b.newWeights(n.WShape, in)
	if withBias {
		n.BiasLen = out
		n.Bias = b.newBias(out)
	}
	return b.add(n)
}

// LSTM appends a recurrent layer over a [T, F] sequence, emitting the
// final hidden state of the given width (packed-gate weight layout,
// paper §II future work).
func (b *Builder) LSTM(name string, hidden int, withBias bool) *graph.Node {
	in := b.cur.OutShape
	if len(in) != 2 {
		panic("nn: LSTM input must be a [T, F] sequence")
	}
	n := &graph.Node{
		Name:   name,
		Kind:   graph.OpLSTM,
		WShape: tensor.Shape{4 * hidden, in[1] + hidden},
	}
	n.Weights = b.newWeights(n.WShape, in[1]+hidden)
	if withBias {
		n.BiasLen = 4 * hidden
		n.Bias = b.newBias(4 * hidden)
	}
	return b.add(n)
}

// BatchNorm appends inference-mode batch normalization over the cursor's
// channel dimension.
func (b *Builder) BatchNorm(name string) *graph.Node {
	c := b.cur.OutShape[0]
	n := &graph.Node{Name: name, Kind: graph.OpBatchNorm, BNChannels: c}
	if b.materialize {
		p := &graph.BNParams{
			Gamma:    make([]float32, c),
			Beta:     make([]float32, c),
			Mean:     make([]float32, c),
			Variance: make([]float32, c),
			Eps:      1e-5,
		}
		for i := 0; i < c; i++ {
			p.Gamma[i] = 1 + 0.1*(b.rng.Float32()-0.5)
			p.Beta[i] = 0.1 * (b.rng.Float32() - 0.5)
			p.Mean[i] = 0.1 * (b.rng.Float32() - 0.5)
			p.Variance[i] = 1 + 0.1*b.rng.Float32()
		}
		n.BN = p
	}
	return b.add(n)
}

// ReLU appends a rectifier.
func (b *Builder) ReLU(name string) *graph.Node {
	return b.add(&graph.Node{Name: name, Kind: graph.OpReLU})
}

// ReLU6 appends the clipped rectifier used by MobileNets.
func (b *Builder) ReLU6(name string) *graph.Node {
	return b.add(&graph.Node{Name: name, Kind: graph.OpReLU6})
}

// LeakyReLU appends a leaky rectifier (DarkNet convention alpha=0.1).
func (b *Builder) LeakyReLU(name string, alpha float32) *graph.Node {
	return b.add(&graph.Node{Name: name, Kind: graph.OpLeakyReLU, Attrs: graph.Attrs{Alpha: alpha}})
}

// Sigmoid appends a logistic activation.
func (b *Builder) Sigmoid(name string) *graph.Node {
	return b.add(&graph.Node{Name: name, Kind: graph.OpSigmoid})
}

// Tanh appends a hyperbolic-tangent activation.
func (b *Builder) Tanh(name string) *graph.Node {
	return b.add(&graph.Node{Name: name, Kind: graph.OpTanh})
}

// MaxPool appends kxk max pooling.
func (b *Builder) MaxPool(name string, k, stride, pad int) *graph.Node {
	return b.add(&graph.Node{Name: name, Kind: graph.OpMaxPool2D,
		Attrs: graph.Attrs{Kernel: k, Stride: stride, Pad: pad}})
}

// AvgPool appends kxk average pooling.
func (b *Builder) AvgPool(name string, k, stride, pad int) *graph.Node {
	return b.add(&graph.Node{Name: name, Kind: graph.OpAvgPool2D,
		Attrs: graph.Attrs{Kernel: k, Stride: stride, Pad: pad}})
}

// MaxPool3D appends kxkxk max pooling over video tensors.
func (b *Builder) MaxPool3D(name string, k, stride int) *graph.Node {
	return b.add(&graph.Node{Name: name, Kind: graph.OpMaxPool3D,
		Attrs: graph.Attrs{Kernel: k, Stride: stride}})
}

// MaxPool3DAsym appends 3-D max pooling with an independent temporal
// kernel/stride and optional spatial padding (C3D's (1,2,2) pool1 and
// padded pool5).
func (b *Builder) MaxPool3DAsym(name string, kd, k, sd, s, padSpatial int) *graph.Node {
	return b.add(&graph.Node{Name: name, Kind: graph.OpMaxPool3D,
		Attrs: graph.Attrs{KernelD: kd, Kernel: k, StrideD: sd, Stride: s, Pad: padSpatial}})
}

// Shuffle appends a ShuffleNet channel shuffle across the given groups.
func (b *Builder) Shuffle(name string, groups int) *graph.Node {
	return b.add(&graph.Node{Name: name, Kind: graph.OpShuffle,
		Attrs: graph.Attrs{Groups: groups}})
}

// Upsample appends nearest-neighbor upsampling by the given factor.
func (b *Builder) Upsample(name string, factor int) *graph.Node {
	return b.add(&graph.Node{Name: name, Kind: graph.OpUpsample,
		Attrs: graph.Attrs{Factor: factor}})
}

// GlobalAvgPool appends global average pooling down to a channel vector.
func (b *Builder) GlobalAvgPool(name string) *graph.Node {
	return b.add(&graph.Node{Name: name, Kind: graph.OpGlobalAvgPool})
}

// Add appends an elementwise sum of two captured nodes (residual join).
func (b *Builder) Add(name string, x, y *graph.Node) *graph.Node {
	return b.add(&graph.Node{Name: name, Kind: graph.OpAdd, Inputs: []*graph.Node{x, y}})
}

// Concat appends a channel concatenation of the captured nodes.
func (b *Builder) Concat(name string, ins ...*graph.Node) *graph.Node {
	return b.add(&graph.Node{Name: name, Kind: graph.OpConcat, Inputs: ins})
}

// Flatten appends a reshape to rank 1.
func (b *Builder) Flatten(name string) *graph.Node {
	return b.add(&graph.Node{Name: name, Kind: graph.OpFlatten})
}

// Softmax appends the classifier head normalization.
func (b *Builder) Softmax(name string) *graph.Node {
	return b.add(&graph.Node{Name: name, Kind: graph.OpSoftmax})
}

// Pad appends explicit zero padding.
func (b *Builder) Pad(name string, p int) *graph.Node {
	return b.add(&graph.Node{Name: name, Kind: graph.OpPad, Attrs: graph.Attrs{Pad: p}})
}

// ConvBNReLU appends the ubiquitous conv → batch-norm → ReLU triple and
// returns the ReLU node.
func (b *Builder) ConvBNReLU(name string, cout, k, stride, pad int) *graph.Node {
	b.Conv2D(name+"_conv", cout, k, stride, pad, false)
	b.BatchNorm(name + "_bn")
	return b.ReLU(name + "_relu")
}
