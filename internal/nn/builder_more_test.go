package nn_test

import (
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/tensor"
)

func TestBranchingHelpers(t *testing.T) {
	b := nn.NewBuilder("t", nn.Options{}, 4, 8, 8)
	input := b.Current()
	if input.Kind != graph.OpInput {
		t.Fatal("Current at start should be the input")
	}
	left := b.Conv2D("l", 4, 3, 1, 1, false)
	right := b.From(input).Conv2D("r", 4, 1, 1, 0, false)
	sum := b.Add("sum", left, right)
	if !sum.OutShape.Equal(tensor.Shape{4, 8, 8}) {
		t.Fatalf("add shape %v", sum.OutShape)
	}
	cat := b.Concat("cat", left, right)
	if !cat.OutShape.Equal(tensor.Shape{8, 8, 8}) {
		t.Fatalf("concat shape %v", cat.OutShape)
	}
	b.Pad("pad", 1)
	b.Softmax("sm") // softmax over a spatial tensor is legal in the IR
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMarkOutputKeepsExtras(t *testing.T) {
	b := nn.NewBuilder("t", nn.Options{}, 2, 6, 6)
	head1 := b.Conv2D("h1", 2, 1, 1, 0, true)
	b.MarkOutput(head1)
	b.Conv2D("h2", 3, 1, 1, 0, true)
	g := b.Build()
	if len(g.Extra) != 1 || g.Extra[0] != head1 {
		t.Fatal("MarkOutput should register the extra head")
	}
	before := len(g.Nodes)
	graph.EliminateDead(g)
	if len(g.Nodes) != before {
		t.Fatal("extra output must survive dead-code elimination")
	}
}

func TestRectConvShapes(t *testing.T) {
	b := nn.NewBuilder("t", nn.Options{}, 3, 9, 9)
	r := b.Conv2DRect("r", 5, 1, 7, 1, 0, 3, false)
	if !r.OutShape.Equal(tensor.Shape{5, 9, 9}) {
		t.Fatalf("1x7 same-pad shape %v", r.OutShape)
	}
	r2 := b.Conv2DRect("r2", 5, 7, 1, 1, 3, 0, false)
	if !r2.OutShape.Equal(tensor.Shape{5, 9, 9}) {
		t.Fatalf("7x1 same-pad shape %v", r2.OutShape)
	}
}

func TestLSTMBuilderChecks(t *testing.T) {
	b := nn.NewBuilder("t", nn.Options{}, 10, 4)
	l := b.LSTM("l", 6, true)
	if !l.OutShape.Equal(tensor.Shape{6}) {
		t.Fatalf("lstm shape %v", l.OutShape)
	}
	if l.ParamCount() != int64(4*6*(4+6)+4*6) {
		t.Fatalf("lstm params %d", l.ParamCount())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("LSTM on a rank-3 input should panic")
		}
	}()
	nn.NewBuilder("bad", nn.Options{}, 3, 4, 4).LSTM("l", 2, false)
}

func TestMiscBuilders(t *testing.T) {
	b := nn.NewBuilder("t", nn.Options{}, 4, 8, 8)
	if b.Upsample("u", 2).OutShape[1] != 16 {
		t.Fatal("upsample shape")
	}
	if b.Shuffle("s", 2).Kind != graph.OpShuffle {
		t.Fatal("shuffle kind")
	}
	b2 := nn.NewBuilder("t2", nn.Options{}, 2, 4, 8, 8)
	p := b2.MaxPool3DAsym("p", 1, 2, 1, 2, 1)
	if !p.OutShape.Equal(tensor.Shape{2, 4, 5, 5}) {
		t.Fatalf("asym pool3d shape %v", p.OutShape)
	}
}
