package harness_test

import (
	"testing"

	"edgebench/internal/harness"
	"edgebench/internal/model"
)

func sweepOnce(t *testing.T) []harness.SweepRow {
	t.Helper()
	return harness.Sweep(nil)
}

func TestBestPerModel(t *testing.T) {
	rows := sweepOnce(t)
	best := harness.BestPerModel(rows, true)
	if len(best) != 16 {
		t.Fatalf("best-per-model covers %d models, want 16", len(best))
	}
	byModel := map[string]harness.BestDeployment{}
	for _, b := range best {
		byModel[b.Model] = b
		// Winner must actually be the minimum among ok edge rows.
		for _, r := range rows {
			if r.Status == "ok" && r.Model == b.Model && !isHPC(r.Device) &&
				r.InferenceSec < b.InferenceSec {
				t.Fatalf("%s: %s/%s (%.4fs) beats the reported winner (%.4fs)",
					b.Model, r.Device, r.Framework, r.InferenceSec, b.InferenceSec)
			}
		}
	}
	// Known winners: MobileNet-v2 on the EdgeTPU (Fig. 2).
	if w := byModel["MobileNet-v2"]; w.Device != "EdgeTPU" || w.Framework != "TFLite" {
		t.Fatalf("MobileNet-v2 winner = %s/%s, want EdgeTPU/TFLite", w.Device, w.Framework)
	}
	// edgeOnly=false admits HPC GPUs, which must win on at least some
	// models.
	all := harness.BestPerModel(rows, false)
	hpcWins := 0
	for _, b := range all {
		if isHPC(b.Device) {
			hpcWins++
		}
	}
	if hpcWins == 0 {
		t.Fatal("HPC GPUs should win some models in the open ranking")
	}
}

func isHPC(dev string) bool {
	switch dev {
	case "Xeon", "GTXTitanX", "TitanXp", "RTX2080":
		return true
	}
	return false
}

func TestEDPRanking(t *testing.T) {
	rows := sweepOnce(t)
	ranked := harness.EDPRanking(rows, "ResNet-50")
	if len(ranked) < 8 {
		t.Fatalf("only %d ResNet-50 deployments ranked", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		prev := ranked[i-1].EnergyJ * ranked[i-1].InferenceSec
		cur := ranked[i].EnergyJ * ranked[i].InferenceSec
		if cur < prev {
			t.Fatal("EDP ranking not sorted")
		}
	}
	// An edge accelerator must top the efficiency ranking, not the RPi.
	if top := ranked[0]; top.Device == "RPi3" {
		t.Fatalf("RPi cannot top the energy-delay ranking: %+v", top)
	}
}

func TestFitScaling(t *testing.T) {
	rows := sweepOnce(t)
	fits := harness.FitScaling(rows)
	if len(fits) < 10 {
		t.Fatalf("only %d scaling fits", len(fits))
	}
	for _, f := range fits {
		if f.Samples < 3 {
			t.Fatalf("fit with %d samples emitted", f.Samples)
		}
		if f.Exponent < 0.05 || f.Exponent > 1.6 {
			t.Errorf("%s/%s: implausible scaling exponent %.2f", f.Device, f.Framework, f.Exponent)
		}
		if f.R2 < 0.2 || f.R2 > 1.0001 {
			t.Errorf("%s/%s: R² %.2f out of band", f.Device, f.Framework, f.R2)
		}
	}
	// Dispatch-heavy stacks scale sublinearly; find PyTorch on the TX2
	// and check it sits below perfect linearity.
	for _, f := range fits {
		if f.Device == "JetsonTX2" && f.Framework == "PyTorch" {
			if f.Exponent >= 1.0 {
				t.Errorf("TX2/PyTorch exponent %.2f; per-op overhead should make it sublinear", f.Exponent)
			}
		}
	}
}

func TestSummarizeSweep(t *testing.T) {
	tables := harness.SummarizeSweep(sweepOnce(t))
	if len(tables) != 3 {
		t.Fatalf("summary tables = %d", len(tables))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Fatalf("summary table %q empty", tab.Title)
		}
	}
	_ = model.TableIOrder // anchor the import
}
