package harness

import (
	"fmt"

	"edgebench/internal/core"
	"edgebench/internal/serving"
)

func init() {
	register("ext6", "Extension: real-time serving capacity per edge device (§VI-C)", Ext6Serving)
}

// Ext6Serving answers the provisioning question behind §VI-C's
// "real-time performance is crucial": how many requests per second can
// each edge deployment sustain before its P99 latency breaks a 100 ms
// interactive budget, and what happens at overload.
func Ext6Serving() (*Report, error) {
	const (
		p99Budget = 0.100 // 100 ms interactive budget
		duration  = 90.0
	)
	deployments := []struct{ model, fw, dev string }{
		{"MobileNet-v2", "TFLite", "EdgeTPU"},
		{"MobileNet-v2", "TensorRT", "JetsonNano"},
		{"MobileNet-v2", "PyTorch", "JetsonTX2"},
		{"MobileNet-v2", "NCSDK", "Movidius"},
		{"MobileNet-v2", "TFLite", "RPi3"},
		{"SSD-MobileNet-v1", "TFLite", "EdgeTPU"},
		{"SSD-MobileNet-v1", "TensorRT", "JetsonNano"},
	}
	t := Table{Header: []string{"Deployment", "ms/inf", "max req/s @ p99<100ms", "p99 @ 80% load", "drops @ 2x overload"}}
	for _, d := range deployments {
		s, err := core.New(d.model, d.fw, d.dev)
		if err != nil {
			return nil, err
		}
		base := s.InferenceSeconds()
		maxRate, err := serving.MaxSustainableRate(s, p99Budget, duration, 11)
		if err != nil {
			return nil, err
		}
		maxCell := fmt.Sprintf("%.1f", maxRate)
		if maxRate == 0 {
			maxCell = "0 (misses alone)"
		}
		// P99 at 80% utilization.
		eighty, err := serving.Simulate(s, serving.Config{
			ArrivalPerSec: 0.8 / base, DurationSec: duration, Seed: 12,
		})
		if err != nil {
			return nil, err
		}
		// Drop rate at 2x overload with a 4-deep queue.
		over, err := serving.Simulate(s, serving.Config{
			ArrivalPerSec: 2 / base, DurationSec: duration, Seed: 13, QueueCap: 4,
		})
		if err != nil {
			return nil, err
		}
		dropPct := 0.0
		if over.Arrived > 0 {
			dropPct = 100 * float64(over.Dropped) / float64(over.Arrived)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s/%s/%s", d.model, d.fw, d.dev),
			fmt.Sprintf("%.1f", base*1e3),
			maxCell,
			fmtSeconds(eighty.P99),
			fmt.Sprintf("%.0f%%", dropPct),
		})
	}
	t.Notes = append(t.Notes,
		"Poisson arrivals into a FIFO single-server queue (seeded discrete-event simulation)",
		"the RPi cannot meet an interactive budget at any rate; accelerators leave headroom for bursts")
	return &Report{ID: "ext6", Title: "Real-time serving capacity", Tables: []Table{t}}, nil
}
