package harness

import (
	"fmt"

	"edgebench/internal/core"
	"edgebench/internal/partition"
	"edgebench/internal/stats"
)

func init() {
	register("ext1", "Extension: multi-batch throughput crossover (§VI-C quantified)", Ext1Batching)
	register("ext2", "Extension: Neurosurgeon-style edge/cloud partitioning (§VIII)", Ext2Partitioning)
}

// Ext1Batching extends Figure 9/10 into the multi-batch regime: the
// paper argues HPC platforms win at datacenter batch sizes even though
// their single-batch advantage is only ~3x; this experiment quantifies
// the crossover.
func Ext1Batching() (*Report, error) {
	batches := []int{1, 2, 4, 8, 16, 32, 64}
	devices := []string{"JetsonTX2", "JetsonNano", "Xeon", "GTXTitanX", "RTX2080"}
	t := Table{Header: append([]string{"Device (ResNet-50, PyTorch)"}, func() []string {
		var h []string
		for _, b := range batches {
			h = append(h, fmt.Sprintf("B=%d", b))
		}
		return h
	}()...)}
	type row struct {
		dev string
		tps []float64
	}
	var rows []row
	for _, d := range devices {
		s, err := core.New("ResNet-50", "PyTorch", d)
		if err != nil {
			return nil, err
		}
		r := row{dev: d}
		cells := []string{d}
		for _, b := range batches {
			if b > s.MaxBatch(4096) {
				cells = append(cells, "OOM")
				r.tps = append(r.tps, 0)
				continue
			}
			tps := s.ThroughputPerSecond(b)
			r.tps = append(r.tps, tps)
			cells = append(cells, fmt.Sprintf("%.0f/s", tps))
		}
		rows = append(rows, r)
		t.Rows = append(t.Rows, cells)
	}
	// Advantage summary: GTX over TX2 at each batch size.
	var gtx, tx2 []float64
	for _, r := range rows {
		switch r.dev {
		case "GTXTitanX":
			gtx = r.tps
		case "JetsonTX2":
			tx2 = r.tps
		}
	}
	adv := Table{Title: "GTX Titan X advantage over Jetson TX2", Header: []string{"Batch", "throughput advantage"}}
	for i, b := range batches {
		if tx2[i] == 0 || gtx[i] == 0 {
			continue
		}
		adv.Rows = append(adv.Rows, []string{fmt.Sprint(b), fmt.Sprintf("%.1fx", gtx[i]/tx2[i])})
	}
	adv.Notes = append(adv.Notes,
		"single-batch advantage ~3-5x (Fig. 10); at datacenter batch sizes it multiplies — the design split §VI-C describes")
	return &Report{ID: "ext1", Title: "Multi-batch throughput", Tables: []Table{t, adv}}, nil
}

// Ext2Partitioning evaluates collaborative inference: the optimal
// edge/remote split per model and link.
func Ext2Partitioning() (*Report, error) {
	t := Table{Header: []string{"Model", "Edge", "Link", "best placement", "edge", "xfer", "remote", "total", "vs all-edge", "vs all-cloud"}}
	cases := []struct {
		model, edge string
		link        partition.Link
	}{
		{"VGG16", "RPi3", partition.WiFi},
		{"VGG16", "RPi3", partition.LTE},
		{"VGG16", "JetsonTX2", partition.Ethernet},
		{"VGG16", "JetsonTX2", partition.LTE},
		{"ResNet-18", "RPi3", partition.WiFi},
		{"ResNet-18", "JetsonTX2", partition.LTE},
		{"AlexNet", "RPi3", partition.LTE},
	}
	var speedups []float64
	for _, c := range cases {
		plan, err := partition.Neurosurgeon(c.model, c.edge, "PyTorch", "GTXTitanX", "PyTorch", c.link)
		if err != nil {
			return nil, err
		}
		best := plan.Best
		placement := best.CutAfter
		switch placement {
		case "":
			placement = "all-cloud"
		case "(all)":
			placement = "all-edge"
		default:
			placement = "split@" + placement
		}
		speedups = append(speedups, plan.AllEdge.TotalSec/best.TotalSec)
		t.Rows = append(t.Rows, []string{
			c.model, c.edge, c.link.Name, placement,
			fmtSeconds(best.EdgeSec), fmtSeconds(best.TransferSec), fmtSeconds(best.RemoteSec),
			fmtSeconds(best.TotalSec),
			fmt.Sprintf("%.1fx", plan.AllEdge.TotalSec/best.TotalSec),
			fmt.Sprintf("%.1fx", plan.AllCloud.TotalSec/best.TotalSec),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean speedup over edge-only execution: %.1fx", stats.Mean(speedups)),
		"weak edges offload everything; capable edges keep models local once the link degrades — Neurosurgeon's result over this repo's device models")
	return &Report{ID: "ext2", Title: "Edge/cloud partitioning", Tables: []Table{t}}, nil
}
