package harness_test

import (
	"fmt"
	"strings"
	"testing"

	"edgebench/internal/harness"
)

func TestRegistryCoversEveryArtifact(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table6",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"ext1", "ext2", "ext3", "ext4", "ext5", "ext6", "ext7", "ext8",
	}
	for _, id := range want {
		if _, ok := harness.Get(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(harness.All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(harness.All()), len(want))
	}
	// Paper order: tables first, then figures numerically.
	all := harness.All()
	if all[0].ID != "table1" || all[6].ID != "fig1" || all[len(all)-1].ID != "ext8" {
		t.Errorf("ordering wrong: first %s, seventh %s, last %s", all[0].ID, all[6].ID, all[len(all)-1].ID)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, ok := harness.Get("fig99"); ok {
		t.Fatal("unknown id should miss")
	}
}

func TestMarkdownRendering(t *testing.T) {
	rep, err := harness.TableVI()
	if err != nil {
		t.Fatal(err)
	}
	md := rep.Markdown()
	for _, want := range []string{
		"## table6", "| Device |", "| --- |", "| RPi3 | no | no |", "*Movidius",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	// Pipes in cells must be escaped.
	tab := harness.Table{Header: []string{"a|b"}, Rows: [][]string{{"c|d"}}}
	if out := tab.Markdown(); !strings.Contains(out, "a\\|b") || !strings.Contains(out, "c\\|d") {
		t.Fatalf("pipe escaping missing: %q", out)
	}
}

// TestAllExperimentsRun executes every experiment end to end — the
// integration test for the whole stack.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range harness.All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run()
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if rep.ID != e.ID {
				t.Errorf("report id %q != %q", rep.ID, e.ID)
			}
			if len(rep.Tables) == 0 {
				t.Fatal("no tables produced")
			}
			out := rep.String()
			if !strings.Contains(out, e.ID) || len(out) < 100 {
				t.Fatalf("rendering too thin:\n%s", out)
			}
			for _, tab := range rep.Tables {
				if len(tab.Rows) == 0 {
					t.Errorf("table %q empty", tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Header) {
						t.Errorf("table %q: row width %d != header %d", tab.Title, len(row), len(tab.Header))
					}
				}
			}
		})
	}
}

func TestFig2ReproducesTableVHoles(t *testing.T) {
	rep, err := harness.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	// The n/a holes must match Table V: EdgeTPU conversion barriers and
	// the RPi SSD code issue.
	for _, frag := range []string{
		"ResNet-18         EdgeTPU     -",
		"TinyYolo          EdgeTPU     -",
		"C3D               EdgeTPU     -",
		"AlexNet           EdgeTPU     -",
		"SSD-MobileNet-v1  RPi3        -",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing expected n/a row: %q", frag)
		}
	}
}

func TestFig2FrameworkSelection(t *testing.T) {
	// Figure 2's caption: best framework per device. The winners must
	// match the paper's: TFLite on RPi for classifiers, PyTorch where
	// dynamic graphs are forced, PyTorch on TX2, TensorRT on Nano.
	rep, err := harness.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, frag := range []string{
		"ResNet-18         RPi3        TFLite",
		"VGG16             RPi3        PyTorch",
		"ResNet-18         JetsonTX2   PyTorch",
		"ResNet-18         JetsonNano  TensorRT",
		"MobileNet-v2      EdgeTPU     TFLite",
		"ResNet-18         Movidius    NCSDK",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("expected winner row missing: %q", frag)
		}
	}
}

func TestBestOnDeviceErrors(t *testing.T) {
	if _, _, err := harness.BestOnDevice("ResNet-18", "Abacus"); err == nil {
		t.Fatal("unknown device should error")
	}
	if _, _, err := harness.BestOnDevice("C3D", "EdgeTPU"); err == nil {
		t.Fatal("conversion-barrier pair should error")
	}
	sec, fw, err := harness.BestOnDevice("MobileNet-v2", "EdgeTPU")
	if err != nil || fw != "TFLite" || sec <= 0 {
		t.Fatalf("EdgeTPU best = %v/%v/%v", sec, fw, err)
	}
}

func TestFig3MemoryErrors(t *testing.T) {
	rep, err := harness.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	// AlexNet and VGG16 rows must show memory errors for the static
	// frameworks but a PyTorch time (Fig. 3's pattern).
	if !strings.Contains(out, "mem-err/n.a.") {
		t.Fatal("Fig. 3 should carry memory-error cells")
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "VGG16") {
			if strings.Count(line, "mem-err/n.a.") != 3 {
				t.Fatalf("VGG16 row should fail on DarkNet/Caffe/TF: %q", line)
			}
			if !strings.Contains(line, " s") && !strings.Contains(line, " ms") {
				t.Fatalf("VGG16 row should carry a PyTorch time: %q", line)
			}
		}
	}
}

func TestFig13WithinFivePercent(t *testing.T) {
	rep, err := harness.Figure13()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Tables[0].Rows {
		slow := row[3]
		if !strings.HasSuffix(slow, "%") {
			t.Fatalf("slowdown cell %q", slow)
		}
		if strings.HasPrefix(slow, "-") {
			t.Fatalf("docker should never be faster: %q", slow)
		}
	}
}

func TestFig14Events(t *testing.T) {
	rep, err := harness.Figure14()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	if !strings.Contains(out, "device shutdown") {
		t.Fatal("Fig. 14 must show the RPi shutdown event")
	}
	if !strings.Contains(out, "working") {
		t.Fatal("Fig. 14 must show the TX2 fan working")
	}
}

func TestFig12ParetoExtremes(t *testing.T) {
	// §VI-E / Fig. 12: Movidius is the lowest-power extreme, EdgeTPU the
	// lowest-latency extreme among the edge accelerators.
	rep, err := harness.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	type pt struct{ sec, watts float64 }
	best := map[string]pt{}
	for _, row := range rep.Tables[0].Rows {
		dev := row[0]
		var sec, watts float64
		// Parse "x.x ms" / "x.xx s" and watts cells.
		if strings.HasSuffix(row[2], " ms") {
			fmt.Sscanf(row[2], "%f ms", &sec)
			sec /= 1e3
		} else {
			fmt.Sscanf(row[2], "%f s", &sec)
		}
		fmt.Sscanf(row[3], "%f", &watts)
		if cur, ok := best[dev]; !ok || sec < cur.sec {
			best[dev] = pt{sec, watts}
		}
	}
	for dev, p := range best {
		if dev != "Movidius" && p.watts <= best["Movidius"].watts {
			t.Errorf("%s power %.2fW undercuts Movidius %.2fW", dev, p.watts, best["Movidius"].watts)
		}
		if dev != "EdgeTPU" && dev != "GTXTitanX" && p.sec <= best["EdgeTPU"].sec {
			t.Errorf("%s best latency %.4fs undercuts EdgeTPU %.4fs", dev, p.sec, best["EdgeTPU"].sec)
		}
	}
}
