package harness

import (
	"fmt"

	"edgebench/internal/device"
	"edgebench/internal/framework"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/tensor"
)

func init() {
	register("table1", "DNN model inventory (paper Table I)", TableI)
	register("table2", "Framework feature matrix (paper Table II)", TableII)
	register("table3", "Hardware platform specifications (paper Table III)", TableIII)
	register("table4", "Experiment index (paper Table IV)", TableIV)
	register("table5", "Model-platform compatibility matrix (paper Table V)", TableV)
	register("table6", "Cooling instruments and idle temperatures (paper Table VI)", TableVI)
}

// TableI regenerates the model inventory with measured GFLOP/parameter
// totals next to the paper's.
func TableI() (*Report, error) {
	t := Table{
		Header: []string{"Model", "Input", "GFLOP", "paperGFLOP", "Δ", "Params(M)", "paperM", "Δ", "FLOP/Param"},
	}
	for _, s := range model.All() {
		gf, pm := s.GFLOPs(), s.ParamsM()
		in := fmt.Sprint(s.InputShape[len(s.InputShape)-1])
		if len(s.InputShape) == 4 {
			in = fmt.Sprintf("%dx%d", s.InputShape[1], s.InputShape[3])
		}
		t.Rows = append(t.Rows, []string{
			s.Name, in,
			fmtFloat(gf, 2), fmtFloat(s.PaperGFLOP, 2), fmtDelta(gf, s.PaperGFLOP),
			fmtFloat(pm, 2), fmtFloat(s.PaperParamsM, 2), fmtDelta(pm, s.PaperParamsM),
			fmtFloat(s.FLOPPerParam(), 1),
		})
		if s.Notes != "" {
			t.Notes = append(t.Notes, s.Name+": "+s.Notes)
		}
	}
	return &Report{ID: "table1", Title: "DNN models", Tables: []Table{t}}, nil
}

// TableII regenerates the framework feature matrix.
func TableII() (*Report, error) {
	fws := framework.All()
	header := []string{"Property"}
	for _, f := range fws {
		header = append(header, f.Name)
	}
	t := Table{Header: header}
	row := func(name string, get func(*framework.Framework) string) {
		cells := []string{name}
		for _, f := range fws {
			cells = append(cells, get(f))
		}
		t.Rows = append(t.Rows, cells)
	}
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	row("Language", func(f *framework.Framework) string { return f.Language })
	row("Industry backed", func(f *framework.Framework) string { return yn(f.IndustryBacked) })
	row("Training framework", func(f *framework.Framework) string { return yn(f.TrainingFramework) })
	row("Usability", func(f *framework.Framework) string { return f.Usability.String() })
	row("Adding new models", func(f *framework.Framework) string { return f.AddingModels.String() })
	row("Pre-defined models", func(f *framework.Framework) string { return f.PreDefined.String() })
	row("Documentation", func(f *framework.Framework) string { return f.Documentation.String() })
	row("No extra steps", func(f *framework.Framework) string { return yn(f.NoExtraSteps) })
	row("Mobile deployment", func(f *framework.Framework) string {
		switch f.Mobile {
		case framework.FullMobile:
			return "full"
		case framework.PartialMobile:
			return "partial"
		default:
			return "no"
		}
	})
	row("Low-level mods", func(f *framework.Framework) string { return f.LowLevel.String() })
	row("Quantization", func(f *framework.Framework) string { return yn(f.Opts.Quantization) })
	row("Mixed precision", func(f *framework.Framework) string { return yn(f.Opts.MixedPrecision) })
	row("Dynamic graph", func(f *framework.Framework) string { return yn(f.Opts.DynamicGraph) })
	row("Pruning exploit", func(f *framework.Framework) string { return yn(f.Opts.PruningExploit) })
	row("Fusion", func(f *framework.Framework) string { return yn(f.Opts.Fusion) })
	row("Auto tuning", func(f *framework.Framework) string { return yn(f.Opts.AutoTuning) })
	row("Half precision", func(f *framework.Framework) string { return yn(f.Opts.HalfPrecision) })
	return &Report{ID: "table2", Title: "Frameworks", Tables: []Table{t}}, nil
}

// TableIII regenerates the platform-specification table.
func TableIII() (*Report, error) {
	t := Table{
		Header: []string{"Platform", "Class", "CPU", "GPU/Accel", "Mem", "BW(GB/s)", "Peak fp32", "Idle(W)", "Avg(W)"},
	}
	for _, d := range device.All() {
		gpu := d.GPU
		if gpu == "" {
			gpu = d.Accel
		}
		if gpu == "" {
			gpu = "-"
		}
		cpu := d.CPU
		if cpu == "" {
			cpu = "-"
		}
		t.Rows = append(t.Rows, []string{
			d.Name, d.Class.String(), cpu, gpu,
			fmt.Sprintf("%.1f GB", float64(d.MemBytes)/(1<<30)),
			fmtFloat(d.MemBandwidthGBs, 1),
			fmt.Sprintf("%.0f GF", d.Peak(tensor.FP32)),
			fmtFloat(d.IdleWatts, 2), fmtFloat(d.AvgWatts, 2),
		})
	}
	return &Report{ID: "table3", Title: "Platforms", Tables: []Table{t}}, nil
}

// TableIV regenerates the experiment index.
func TableIV() (*Report, error) {
	t := Table{Header: []string{"Experiment", "Paper artifact", "Metric"}}
	rows := [][3]string{
		{"fig2", "Fig. 2 (§VI-A)", "time/inference, best framework per edge device"},
		{"fig3", "Fig. 3 (§VI-B1)", "time/inference on RPi across frameworks"},
		{"fig4", "Fig. 4 (§VI-B1)", "time/inference on TX2 across frameworks"},
		{"fig5", "Fig. 5 (§VI-B3)", "software-stack latency breakdown"},
		{"fig6", "Fig. 6 (§VI-B1)", "TF vs PyTorch on GTX Titan X + speedup"},
		{"fig7", "Fig. 7 (§VI-B2)", "PyTorch vs TensorRT on Jetson Nano + speedup"},
		{"fig8", "Fig. 8 (§VI-B2)", "PyTorch/TF/TFLite on RPi + speedups"},
		{"fig9", "Fig. 9 (§VI-C)", "edge vs HPC time/inference (PyTorch)"},
		{"fig10", "Fig. 10 (§VI-C)", "speedup over Jetson TX2, geomean"},
		{"fig11", "Fig. 11 (§VI-E)", "energy per inference (log scale)"},
		{"fig12", "Fig. 12 (§VI-E)", "inference time vs active power"},
		{"fig13", "Fig. 13 (§VI-D)", "bare metal vs Docker on RPi"},
		{"fig14", "Fig. 14 (§VI-F)", "temperature while executing DNNs"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r[0], r[1], r[2]})
	}
	return &Report{ID: "table4", Title: "Experiments", Tables: []Table{t}}, nil
}

// TableV regenerates the compatibility matrix, cross-checking the
// transcribed statuses against the memory model where they interact.
func TableV() (*Report, error) {
	models := []string{"ResNet-18", "ResNet-50", "MobileNet-v2", "Inception-v4",
		"AlexNet", "VGG16", "SSD-MobileNet-v1", "TinyYolo", "C3D"}
	devs := []string{"RPi3", "JetsonTX2", "JetsonNano", "EdgeTPU", "Movidius", "PYNQ-Z1"}
	t := Table{Header: append([]string{"Model"}, devs...)}
	for _, m := range models {
		row := []string{m}
		for _, d := range devs {
			st := framework.TableVStatus(m, d)
			mark := map[framework.Status]string{
				framework.OK:                   "ok",
				framework.DynamicGraphRequired: "^dyn",
				framework.CodeIncompatible:     "O code",
				framework.ConversionBarrier:    "x conv",
				framework.BRAMOverflow:         "^^bram",
			}[st]
			row = append(row, mark)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"^dyn: exceeds memory under a static graph; runs via PyTorch only",
		"O code: base-code incompatibility; x conv: EdgeTPU compiler barrier; ^^bram: exceeds FPGA BRAM",
	)

	// Cross-check: the memory model must agree that ^dyn models OOM
	// statically on the RPi while the others fit.
	check := Table{Title: "memory-model cross-check (RPi3, static TensorFlow)",
		Header: []string{"Model", "static MB", "fits 1 GB", "Table V"}}
	for _, m := range models {
		st := framework.TableVStatus(m, "RPi3")
		if st == framework.CodeIncompatible {
			continue
		}
		g := model.MustGet(m).Build(nn.Options{})
		fw := framework.MustGet("TensorFlow")
		low := fw.Lower(g, device.MustGet("RPi3"))
		var bytes float64
		for _, n := range low.Nodes {
			bytes += float64(n.WeightBytes()) + float64(n.OutShape.NumElems()*4)
		}
		bytes = bytes*fw.MemoryFactor + float64(fw.BaselineBytes)
		fits := bytes <= float64(device.MustGet("RPi3").MemBytes)
		check.Rows = append(check.Rows, []string{
			m, fmtFloat(bytes/(1<<20), 0), fmt.Sprint(fits), st.String(),
		})
	}
	return &Report{ID: "table5", Title: "Compatibility", Tables: []Table{t, check}}, nil
}

// TableVI regenerates the cooling table.
func TableVI() (*Report, error) {
	t := Table{Header: []string{"Device", "Heatsink", "Fan", "Idle temp (°C)", "Fan-on (°C)"}}
	for _, name := range []string{"RPi3", "JetsonTX2", "JetsonNano", "EdgeTPU", "Movidius"} {
		d := device.MustGet(name)
		yn := func(b bool) string {
			if b {
				return "yes"
			}
			return "no"
		}
		fanOn := "-"
		if d.Cooling.Fan {
			fanOn = fmtFloat(d.Cooling.FanOnC, 0)
		}
		t.Rows = append(t.Rows, []string{
			name, yn(d.Cooling.Heatsink), yn(d.Cooling.Fan),
			fmtFloat(d.Thermal.IdleC, 1), fanOn,
		})
	}
	t.Notes = append(t.Notes, "Movidius: the stick body is designed as a heatsink (Table VI †)")
	return &Report{ID: "table6", Title: "Cooling", Tables: []Table{t}}, nil
}
