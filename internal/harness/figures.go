package harness

import (
	"fmt"
	"math"
	"sort"

	"edgebench/internal/core"
	"edgebench/internal/framework"
	"edgebench/internal/model"
	"edgebench/internal/paperdata"
	"edgebench/internal/power"
	"edgebench/internal/stats"
)

func init() {
	register("fig1", "Models sorted by FLOP/parameter (paper Fig. 1)", Figure1)
	register("fig2", "Time per inference, best framework per edge device (paper Fig. 2)", Figure2)
	register("fig3", "Framework comparison on Raspberry Pi (paper Fig. 3)", Figure3)
	register("fig4", "Framework comparison on Jetson TX2 (paper Fig. 4)", Figure4)
	register("fig6", "TensorFlow vs PyTorch on GTX Titan X (paper Fig. 6)", Figure6)
	register("fig7", "PyTorch vs TensorRT on Jetson Nano (paper Fig. 7)", Figure7)
	register("fig8", "PyTorch vs TensorFlow vs TFLite on RPi (paper Fig. 8)", Figure8)
	register("fig9", "Edge vs HPC time per inference (paper Fig. 9)", Figure9)
	register("fig10", "Speedup over Jetson TX2 (paper Fig. 10)", Figure10)
	register("fig11", "Energy per inference (paper Fig. 11)", Figure11)
	register("fig12", "Inference time vs active power (paper Fig. 12)", Figure12)
	register("fig13", "Bare metal vs Docker on RPi (paper Fig. 13)", Figure13)
}

// seconds runs a session and returns the modeled inference time.
func seconds(m, fw, dev string) (float64, error) {
	s, err := core.New(m, fw, dev)
	if err != nil {
		return 0, err
	}
	return s.InferenceSeconds(), nil
}

// BestOnDevice finds the fastest deployable framework for a model on a
// device — Figure 2's selection rule.
func BestOnDevice(modelName, devName string) (sec float64, fwName string, err error) {
	fws, err := framework.FrameworksFor(devName)
	if err != nil {
		return 0, "", err
	}
	best := math.Inf(1)
	var lastErr error
	for _, f := range fws {
		s, err := core.New(modelName, f.Name, devName)
		if err != nil {
			lastErr = err
			continue
		}
		if t := s.InferenceSeconds(); t < best {
			best, fwName = t, f.Name
		}
	}
	if math.IsInf(best, 1) {
		return 0, "", fmt.Errorf("harness: no framework runs %s on %s: %w", modelName, devName, lastErr)
	}
	return best, fwName, nil
}

// Figure1 sorts the model zoo by FLOP/parameter.
func Figure1() (*Report, error) {
	specs := model.All()
	sort.Slice(specs, func(i, j int) bool { return specs[i].FLOPPerParam() < specs[j].FLOPPerParam() })
	t := Table{Header: []string{"Model", "FLOP/Param", "character"}}
	for _, s := range specs {
		fpp := s.FLOPPerParam()
		kind := "memory-intensive"
		if fpp > 150 {
			kind = "compute-intensive"
		}
		t.Rows = append(t.Rows, []string{s.Name, fmtFloat(fpp, 1), kind})
	}
	t.Notes = append(t.Notes, "higher FLOP/Param = more compute-intensive (§II)")
	return &Report{ID: "fig1", Title: "FLOP per parameter", Tables: []Table{t}}, nil
}

// fig2Models lists Figure 2's nine models.
var fig2Models = []string{"ResNet-18", "ResNet-50", "MobileNet-v2", "Inception-v4",
	"AlexNet", "VGG16", "SSD-MobileNet-v1", "TinyYolo", "C3D"}

// fig2Devices lists Figure 2's six edge devices.
var fig2Devices = []string{"RPi3", "JetsonTX2", "JetsonNano", "EdgeTPU", "Movidius", "PYNQ-Z1"}

// Figure2 regenerates the per-device best-framework latencies.
func Figure2() (*Report, error) {
	t := Table{Header: []string{"Model", "Device", "Framework", "time", "paper", "Δ"}}
	for _, m := range fig2Models {
		for _, d := range fig2Devices {
			sec, fw, err := BestOnDevice(m, d)
			if err != nil {
				t.Rows = append(t.Rows, []string{m, d, "-", "n/a (" + shortErr(err) + ")", "-", "-"})
				continue
			}
			paper, ok := paperdata.Fig2BestSeconds[d][m]
			paperCell, delta := "-", "-"
			if ok {
				paperCell, delta = fmtSeconds(paper), fmtDelta(sec, paper)
			}
			t.Rows = append(t.Rows, []string{m, d, fw, fmtSeconds(sec), paperCell, delta})
		}
	}
	t.Notes = append(t.Notes,
		"n/a entries reproduce Table V barriers (EdgeTPU conversion, RPi SSD code issue, PYNQ constraints)")
	return &Report{ID: "fig2", Title: "Best framework per device", Tables: []Table{t}}, nil
}

// figFrameworksModels lists Figures 3/4's model set.
var fig34Models = []string{"ResNet-50", "ResNet-101", "Xception", "MobileNet-v2",
	"Inception-v4", "AlexNet", "VGG16"}

func frameworkComparison(id, title, dev string) (*Report, error) {
	fws := []string{"DarkNet", "Caffe", "TensorFlow", "PyTorch"}
	t := Table{Header: append([]string{"Model"}, fws...)}
	for _, m := range fig34Models {
		row := []string{m}
		for _, fw := range fws {
			sec, err := seconds(m, fw, dev)
			if err != nil {
				row = append(row, "mem-err/n.a.")
				continue
			}
			row = append(row, fmtSeconds(sec))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"mem-err/n.a. mirrors the paper's 'Memory Error / Not Available' bars")
	return &Report{ID: id, Title: title, Tables: []Table{t}}, nil
}

// Figure3 compares frameworks on the Raspberry Pi.
func Figure3() (*Report, error) {
	return frameworkComparison("fig3", "Frameworks on RPi", "RPi3")
}

// Figure4 compares frameworks on the Jetson TX2.
func Figure4() (*Report, error) {
	return frameworkComparison("fig4", "Frameworks on TX2", "JetsonTX2")
}

// Figure6 compares TensorFlow and PyTorch on the GTX Titan X.
func Figure6() (*Report, error) {
	models := []string{"ResNet-50", "MobileNet-v2", "VGG16", "VGG19"}
	t := Table{Header: []string{"Model", "PyTorch", "TensorFlow", "speedup(PT)"}}
	var sp []float64
	for _, m := range models {
		pt, err := seconds(m, "PyTorch", "GTXTitanX")
		if err != nil {
			return nil, err
		}
		tf, err := seconds(m, "TensorFlow", "GTXTitanX")
		if err != nil {
			return nil, err
		}
		sp = append(sp, tf/pt)
		t.Rows = append(t.Rows, []string{m, fmtSeconds(pt), fmtSeconds(tf), fmtFloat(tf/pt, 2) + "x"})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("mean PyTorch speedup %.2fx (paper shows PyTorch ahead on the HPC GPU, §VI-B1)", stats.Mean(sp)))
	return &Report{ID: "fig6", Title: "GTX Titan X: TF vs PyTorch", Tables: []Table{t}}, nil
}

// Figure7 compares PyTorch and TensorRT on the Jetson Nano.
func Figure7() (*Report, error) {
	t := Table{Header: []string{"Model", "PyTorch", "TensorRT", "speedup", "paper PT", "paper TRT"}}
	var sp []float64
	for _, m := range fig2Models {
		pt, err := seconds(m, "PyTorch", "JetsonNano")
		if err != nil {
			return nil, err
		}
		rt, err := seconds(m, "TensorRT", "JetsonNano")
		if err != nil {
			return nil, err
		}
		sp = append(sp, pt/rt)
		a := paperdata.Fig7Nano[m]
		t.Rows = append(t.Rows, []string{m, fmtSeconds(pt), fmtSeconds(rt),
			fmtFloat(pt/rt, 1) + "x", fmtSeconds(a.PyTorch), fmtSeconds(a.TensorRT)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("average TensorRT speedup %.2fx (paper: %.1fx)",
		stats.Mean(sp), paperdata.Fig7AvgSpeedup))
	return &Report{ID: "fig7", Title: "Nano: PyTorch vs TensorRT", Tables: []Table{t}}, nil
}

// Figure8 compares PyTorch, TensorFlow, and TFLite on the RPi.
func Figure8() (*Report, error) {
	models := []string{"ResNet-18", "ResNet-50", "ResNet-101", "MobileNet-v2", "Inception-v4"}
	t := Table{Header: []string{"Model", "PyTorch", "TensorFlow", "TFLite", "sp(TF)", "sp(PT)"}}
	var spTF, spPT []float64
	for _, m := range models {
		pt, err := seconds(m, "PyTorch", "RPi3")
		if err != nil {
			return nil, err
		}
		tf, err := seconds(m, "TensorFlow", "RPi3")
		if err != nil {
			return nil, err
		}
		tfl, err := seconds(m, "TFLite", "RPi3")
		if err != nil {
			return nil, err
		}
		spTF = append(spTF, tf/tfl)
		spPT = append(spPT, pt/tfl)
		t.Rows = append(t.Rows, []string{m, fmtSeconds(pt), fmtSeconds(tf), fmtSeconds(tfl),
			fmtFloat(tf/tfl, 2) + "x", fmtFloat(pt/tfl, 2) + "x"})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("TFLite average speedup: %.2fx over TF (paper %.2fx), %.2fx over PyTorch (paper %.2fx)",
			stats.Mean(spTF), paperdata.Fig8AvgSpeedupTF, stats.Mean(spPT), paperdata.Fig8AvgSpeedupPT))
	return &Report{ID: "fig8", Title: "RPi: PyTorch/TF/TFLite", Tables: []Table{t}}, nil
}

// fig9Models lists Figure 9/10's model set.
var fig9Models = []string{"ResNet-18", "ResNet-50", "ResNet-101", "MobileNet-v2",
	"Inception-v4", "AlexNet", "VGG16", "VGG19", "VGG-S", "VGG-S-32", "YOLOv3", "TinyYolo", "C3D"}

// fig9Devices lists Figure 9/10's platforms (PyTorch everywhere).
var fig9Devices = []string{"JetsonTX2", "Xeon", "GTXTitanX", "TitanXp", "RTX2080"}

// Figure9 compares edge and HPC platforms under PyTorch.
func Figure9() (*Report, error) {
	t := Table{Header: append([]string{"Model"}, fig9Devices...)}
	for _, m := range fig9Models {
		row := []string{m}
		for _, d := range fig9Devices {
			sec, err := seconds(m, "PyTorch", d)
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			row = append(row, fmtSeconds(sec))
		}
		t.Rows = append(t.Rows, row)
	}
	return &Report{ID: "fig9", Title: "Edge vs HPC (PyTorch)", Tables: []Table{t}}, nil
}

// Figure10 derives speedups over the TX2 with the geomean headline.
func Figure10() (*Report, error) {
	hpc := fig9Devices[1:]
	t := Table{Header: append([]string{"Model"}, hpc...)}
	var all []float64
	for _, m := range fig9Models {
		tx2, err := seconds(m, "PyTorch", "JetsonTX2")
		if err != nil {
			return nil, err
		}
		row := []string{m}
		for _, d := range hpc {
			sec, err := seconds(m, "PyTorch", d)
			if err != nil {
				row = append(row, "n/a")
				continue
			}
			sp := tx2 / sec
			all = append(all, sp)
			row = append(row, fmtFloat(sp, 2)+"x")
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("geomean speedup over TX2: %.2fx (paper ~%.0fx, §VI-C)",
		stats.GeoMean(all), paperdata.Fig10GeomeanSpeedup))
	return &Report{ID: "fig10", Title: "Speedup over TX2", Tables: []Table{t}}, nil
}

// fig11Models lists the energy figure's model set.
var fig11Models = []string{"ResNet-18", "ResNet-50", "MobileNet-v2", "Inception-v4"}

// fig11Frameworks fixes the per-device frameworks to the paper's
// Table IV assignment for the energy experiments.
var fig11Frameworks = map[string]string{
	"RPi3": "TFLite", "JetsonNano": "TensorRT", "JetsonTX2": "PyTorch",
	"EdgeTPU": "TFLite", "Movidius": "NCSDK", "GTXTitanX": "PyTorch",
}

// fig11Devices lists the energy figure's platforms.
var fig11Devices = []string{"RPi3", "JetsonNano", "JetsonTX2", "EdgeTPU", "Movidius", "GTXTitanX"}

// Figure11 regenerates energy per inference.
func Figure11() (*Report, error) {
	t := Table{Header: []string{"Model", "Device", "Framework", "energy (mJ)", "paper (mJ)"}}
	for _, m := range fig11Models {
		for _, d := range fig11Devices {
			fw := fig11Frameworks[d]
			s, err := core.New(m, fw, d)
			if err != nil {
				t.Rows = append(t.Rows, []string{m, d, fw, "n/a", "-"})
				continue
			}
			mj := power.EnergyPerInferenceJ(s) * 1e3
			paperCell := "-"
			if v, ok := paperdata.Fig11EnergyMJ[d][m]; ok {
				paperCell = fmtFloat(v, 0)
			}
			t.Rows = append(t.Rows, []string{m, d, fw, fmtFloat(mj, 1), paperCell})
		}
	}
	t.Notes = append(t.Notes, "log-scale figure in the paper; RPi highest, EdgeTPU as low as ~11 mJ (§VI-E)")
	return &Report{ID: "fig11", Title: "Energy per inference", Tables: []Table{t}}, nil
}

// Figure12 regenerates the latency-vs-power scatter.
func Figure12() (*Report, error) {
	t := Table{Header: []string{"Device", "Model", "time", "active power (W)"}}
	for _, d := range fig11Devices {
		for _, m := range fig11Models {
			sess, err := core.New(m, fig11Frameworks[d], d)
			if err != nil {
				continue
			}
			watts := power.ActiveWatts(sess.Device, sess.Utilization())
			t.Rows = append(t.Rows, []string{d, m, fmtSeconds(sess.InferenceSeconds()), fmtFloat(watts, 2)})
		}
	}
	t.Notes = append(t.Notes,
		"paper Fig. 12: GTX ~100 W far left; Movidius lowest power; EdgeTPU lowest latency; Nano balanced")
	return &Report{ID: "fig12", Title: "Time vs power", Tables: []Table{t}}, nil
}

// Figure13 regenerates the virtualization-overhead experiment.
func Figure13() (*Report, error) {
	models := []string{"ResNet-18", "ResNet-50", "MobileNet-v2", "Inception-v4", "TinyYolo"}
	t := Table{Header: []string{"Model", "bare metal", "docker", "slowdown", "paper bare", "paper docker"}}
	for _, m := range models {
		s, err := core.New(m, "TensorFlow", "RPi3")
		if err != nil {
			return nil, err
		}
		bare := s.InferenceSeconds()
		s.Docker = true
		docker := s.InferenceSeconds()
		a := paperdata.Fig13Docker[m]
		t.Rows = append(t.Rows, []string{m, fmtSeconds(bare), fmtSeconds(docker),
			fmtFloat(100*(docker/bare-1), 1) + "%", fmtSeconds(a.Bare), fmtSeconds(a.Docker)})
	}
	t.Notes = append(t.Notes, "paper: overhead within 5% in all cases (§VI-D)")
	return &Report{ID: "fig13", Title: "Docker overhead", Tables: []Table{t}}, nil
}

func shortErr(err error) string {
	s := err.Error()
	if len(s) > 48 {
		s = s[:48]
	}
	return s
}
