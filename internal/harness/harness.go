// Package harness regenerates every table and figure of the paper's
// evaluation (Table IV's experiment index): each experiment binds
// models, frameworks, and devices through internal/core and renders a
// typed report with the paper's reference values alongside, so
// EXPERIMENTS.md's paper-vs-measured record is produced mechanically.
package harness

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a rendered experiment artifact: a titled grid plus notes.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Report is an experiment result: one or more tables.
type Report struct {
	ID     string
	Title  string
	Tables []Table
}

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for i := range r.Tables {
		b.WriteString(r.Tables[i].String())
	}
	return b.String()
}

func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "\n-- %s --\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the report as GitHub-flavored Markdown, for
// generating results documents straight from the harness.
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n", r.ID, r.Title)
	for i := range r.Tables {
		b.WriteString(r.Tables[i].Markdown())
	}
	return b.String()
}

// Markdown renders one table as GitHub-flavored Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "\n### %s\n", t.Title)
	}
	b.WriteByte('\n')
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" " + esc(c) + " |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", esc(n))
	}
	return b.String()
}

// Experiment pairs an identifier with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Report, error)
}

var registry []Experiment

func register(id, title string, run func() (*Report, error)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the experiments in paper order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// Get returns the experiment registered under id.
func Get(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// orderKey sorts tables first, then figures, then extensions,
// numerically within each group.
func orderKey(id string) string {
	var kind byte = 'z'
	var n int
	switch {
	case strings.HasPrefix(id, "table"):
		kind = 'a'
		_, _ = fmt.Sscanf(id, "table%d", &n) // unnumbered ids sort as 0
	case strings.HasPrefix(id, "fig"):
		kind = 'b'
		_, _ = fmt.Sscanf(id, "fig%d", &n)
	case strings.HasPrefix(id, "ext"):
		kind = 'c'
		_, _ = fmt.Sscanf(id, "ext%d", &n)
	}
	return fmt.Sprintf("%c%02d", kind, n)
}

// fmtSeconds renders a duration with sensible units.
func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 1:
		return fmt.Sprintf("%.1f ms", s*1e3)
	default:
		return fmt.Sprintf("%.2f s", s)
	}
}

// fmtDelta renders a prediction-vs-paper deviation.
func fmtDelta(pred, paper float64) string {
	if paper == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.0f%%", 100*(pred/paper-1))
}

func fmtFloat(v float64, digits int) string {
	return fmt.Sprintf("%.*f", digits, v)
}
