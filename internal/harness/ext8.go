package harness

import (
	"fmt"

	"edgebench/internal/device"
	"edgebench/internal/framework"
	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/verify"
)

func init() {
	register("ext8", "Extension: static verification conformance of the model zoo (§III validity)", Ext8Verification)
}

// Ext8Verification runs the graph-IR verifier over the entire
// experimental surface: every zoo model as built, and every model as
// lowered by every framework for a representative device. The paper's
// cross-framework comparisons are only meaningful if every optimized
// graph is structurally equivalent to its source — this report is the
// mechanical receipt. Any nonzero cell means some measurement upstream
// is untrustworthy.
func Ext8Verification() (*Report, error) {
	dev, ok := device.Get("JetsonTX2")
	if !ok {
		return nil, fmt.Errorf("ext8: device registry has no JetsonTX2")
	}
	fws := framework.All()

	t := Table{
		Title:  "verifier diagnostics per graph (errors/warnings; all cells must be 0/0)",
		Header: append([]string{"Model", "as built"}, fwNames(fws)...),
	}
	graphsChecked, nodesChecked := 0, 0
	var dirty int
	for _, spec := range model.AllWithExtensions() {
		g := spec.Build(nn.Options{})
		row := []string{spec.Name, diagCell(g, &dirty)}
		graphsChecked++
		nodesChecked += len(g.Nodes)
		for _, fw := range fws {
			lowered := fw.Lower(g.Clone(), dev)
			row = append(row, diagCell(lowered, &dirty))
			graphsChecked++
			nodesChecked += len(lowered.Nodes)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d graphs, %d nodes checked against the full rule catalog (see internal/verify)", graphsChecked, nodesChecked),
		fmt.Sprintf("lowerings target %s; the verifier also gates exchange.Import and core session open", dev.Name))
	if dirty > 0 {
		return nil, fmt.Errorf("ext8: %d graphs failed verification", dirty)
	}
	return &Report{ID: "ext8", Title: "Static verification conformance", Tables: []Table{t}}, nil
}

func fwNames(fws []*framework.Framework) []string {
	out := make([]string, len(fws))
	for i, fw := range fws {
		out[i] = fw.Name
	}
	return out
}

// diagCell renders a graph's diagnostic counts as "errors/warnings" and
// bumps dirty when any Error-severity diagnostic is present.
func diagCell(g *graph.Graph, dirty *int) string {
	diags := verify.Check(g)
	errs := len(verify.Errors(diags))
	if errs > 0 {
		*dirty++
	}
	return fmt.Sprintf("%d/%d", errs, len(diags)-errs)
}
