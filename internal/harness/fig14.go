package harness

import (
	"fmt"

	"edgebench/internal/device"
	"edgebench/internal/thermal"
)

func init() {
	register("fig14", "Temperature behaviour under sustained inference (paper Fig. 14)", Figure14)
}

// Figure14 runs the RC thermal simulation for each edge device under a
// sustained heavy load (the paper runs Inception-v4 to steady state).
func Figure14() (*Report, error) {
	devices := []string{"RPi3", "JetsonNano", "JetsonTX2", "EdgeTPU", "Movidius"}
	t := Table{Header: []string{"Device", "idle (°C)", "steady (°C)", "peak (°C)", "fan", "event"}}
	trace := Table{Title: "junction traces (°C at 0/2/5/10/20/30 min)",
		Header: []string{"Device", "0", "2m", "5m", "10m", "20m", "30m"}}
	for _, name := range devices {
		dev := device.MustGet(name)
		sim := thermal.NewSimulator(dev)
		load := thermal.SustainedWatts(dev)
		pts := sim.Run(1800, func(float64) float64 { return load })
		var peak float64
		fanOn, shut := false, false
		for _, p := range pts {
			if p.JunctionC > peak {
				peak = p.JunctionC
			}
			fanOn = fanOn || p.FanOn
			shut = shut || p.Shutdown
		}
		event := "-"
		if shut {
			event = "device shutdown"
		}
		fan := "off"
		if fanOn {
			fan = "working"
		}
		final := pts[len(pts)-1].JunctionC
		t.Rows = append(t.Rows, []string{name,
			fmtFloat(dev.Thermal.IdleC, 1), fmtFloat(final, 1), fmtFloat(peak, 1), fan, event})

		at := func(sec int) string {
			if sec >= len(pts) {
				sec = len(pts) - 1
			}
			return fmt.Sprintf("%.0f", pts[sec].JunctionC)
		}
		trace.Rows = append(trace.Rows, []string{name,
			at(0), at(120), at(300), at(600), at(1200), at(1800)})
	}
	t.Notes = append(t.Notes,
		"paper Fig. 14: RPi shuts down; TX2's fan activates; Movidius stays coolest; EdgeTPU's fan never trips")
	return &Report{ID: "fig14", Title: "Thermal behaviour", Tables: []Table{t, trace}}, nil
}
