package harness

import (
	"fmt"

	"edgebench/internal/core"
	"edgebench/internal/profiler"
)

func init() {
	register("fig5", "Software-stack profiles (paper Fig. 5)", Figure5)
}

// Figure5 profiles PyTorch and TensorFlow on the RPi (30 inferences, as
// the paper could not amortize further under the profiler) and the TX2
// (1000 inferences), attributing time to the paper's function groups.
func Figure5() (*Report, error) {
	cases := []struct {
		label, fw, dev string
		iters          int
	}{
		{"(a) PyTorch / RPi, 30 inferences", "PyTorch", "RPi3", 30},
		{"(b) TensorFlow / RPi, 30 inferences", "TensorFlow", "RPi3", 30},
		{"(c) PyTorch / TX2, 1000 inferences", "PyTorch", "JetsonTX2", 1000},
		{"(d) TensorFlow / TX2, 1000 inferences", "TensorFlow", "JetsonTX2", 1000},
	}
	rep := &Report{ID: "fig5", Title: "Software-stack profiling (ResNet-18)"}
	for _, c := range cases {
		s, err := core.New("ResNet-18", c.fw, c.dev)
		if err != nil {
			return nil, err
		}
		entries := profiler.Profile(s, c.iters)
		t := Table{Title: c.label, Header: []string{"group", "seconds", "share"}}
		for _, e := range entries {
			t.Rows = append(t.Rows, []string{e.Group,
				fmt.Sprintf("%.2f", e.Seconds), fmt.Sprintf("%.1f%%", e.Share*100)})
		}
		rep.Tables = append(rep.Tables, t)
	}
	rep.Tables[len(rep.Tables)-1].Notes = []string{
		"paper Fig. 5: PyTorch/RPi is conv2d-dominated (~81%); TensorFlow/RPi splits between",
		"graph setup (base_layer ~38-50%) and the run callable; on the TX2's GPU both frameworks",
		"shift their time into setup/transfer because compute shrinks (§VI-B3)",
	}
	return rep, nil
}
