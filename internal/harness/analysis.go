package harness

import (
	"fmt"
	"math"
	"sort"

	"edgebench/internal/model"
	"edgebench/internal/stats"
)

// Analysis post-processes a characterization sweep into the summaries a
// deployment engineer reads: winners per model, energy-delay rankings,
// and per-device scaling fits — the downstream half of the paper's
// open-harness workflow.

// BestDeployment is the fastest legal deployment of a model.
type BestDeployment struct {
	Model, Device, Framework string
	InferenceSec             float64
	EnergyJ                  float64
}

// BestPerModel returns each model's fastest deployment across the sweep
// (edge devices only when edgeOnly is set), sorted by model name.
func BestPerModel(rows []SweepRow, edgeOnly bool) []BestDeployment {
	hpc := map[string]bool{"Xeon": true, "GTXTitanX": true, "TitanXp": true, "RTX2080": true}
	best := map[string]BestDeployment{}
	for _, r := range rows {
		if r.Status != "ok" {
			continue
		}
		if edgeOnly && hpc[r.Device] {
			continue
		}
		cur, ok := best[r.Model]
		if !ok || r.InferenceSec < cur.InferenceSec {
			best[r.Model] = BestDeployment{
				Model: r.Model, Device: r.Device, Framework: r.Framework,
				InferenceSec: r.InferenceSec, EnergyJ: r.EnergyJ,
			}
		}
	}
	out := make([]BestDeployment, 0, len(best))
	for _, b := range best {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

// EDPRanking ranks ok-deployments of one model by energy-delay product
// (J·s), the efficiency metric that punishes both slow and hungry
// designs. Lower is better.
func EDPRanking(rows []SweepRow, modelName string) []SweepRow {
	var out []SweepRow
	for _, r := range rows {
		if r.Status == "ok" && r.Model == modelName {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].EnergyJ*out[i].InferenceSec < out[j].EnergyJ*out[j].InferenceSec
	})
	return out
}

// ScalingFit is a per-(device, framework) log-log fit of inference time
// against model GFLOPs: the exponent says how close the stack is to
// ideal linear scaling (1.0), and R² how well FLOPs alone predict time.
type ScalingFit struct {
	Device, Framework string
	Exponent          float64
	R2                float64
	Samples           int
}

// FitScaling computes scaling fits for every (device, framework) pair
// with at least three ok models in the sweep.
func FitScaling(rows []SweepRow) []ScalingFit {
	type key struct{ dev, fw string }
	groups := map[key][][2]float64{} // (log gflop, log sec)
	for _, r := range rows {
		if r.Status != "ok" {
			continue
		}
		spec, ok := model.Get(r.Model)
		if !ok {
			continue
		}
		gf := spec.GFLOPs()
		if gf <= 0 || r.InferenceSec <= 0 {
			continue
		}
		k := key{r.Device, r.Framework}
		groups[k] = append(groups[k], [2]float64{math.Log(gf), math.Log(r.InferenceSec)})
	}
	var out []ScalingFit
	for k, pts := range groups {
		if len(pts) < 3 {
			continue
		}
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i] = p[0]
			ys[i] = p[1]
		}
		slope, intercept := stats.LinearFit(xs, ys)
		// R² from residuals.
		my := stats.Mean(ys)
		var ssTot, ssRes float64
		for i := range xs {
			pred := slope*xs[i] + intercept
			ssRes += (ys[i] - pred) * (ys[i] - pred)
			ssTot += (ys[i] - my) * (ys[i] - my)
		}
		r2 := 1.0
		if ssTot > 0 {
			r2 = 1 - ssRes/ssTot
		}
		out = append(out, ScalingFit{Device: k.dev, Framework: k.fw,
			Exponent: slope, R2: r2, Samples: len(pts)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Device != out[j].Device {
			return out[i].Device < out[j].Device
		}
		return out[i].Framework < out[j].Framework
	})
	return out
}

// SummarizeSweep renders the analysis tables for a sweep.
func SummarizeSweep(rows []SweepRow) []Table {
	best := Table{Title: "fastest deployment per model (edge devices)",
		Header: []string{"Model", "Device", "Framework", "time", "energy (mJ)"}}
	for _, b := range BestPerModel(rows, true) {
		best.Rows = append(best.Rows, []string{
			b.Model, b.Device, b.Framework, fmtSeconds(b.InferenceSec),
			fmt.Sprintf("%.1f", b.EnergyJ*1e3)})
	}

	edp := Table{Title: "energy-delay ranking, ResNet-50",
		Header: []string{"Device", "Framework", "time", "energy (mJ)", "EDP (mJ·s)"}}
	for _, r := range EDPRanking(rows, "ResNet-50") {
		edp.Rows = append(edp.Rows, []string{
			r.Device, r.Framework, fmtSeconds(r.InferenceSec),
			fmt.Sprintf("%.1f", r.EnergyJ*1e3),
			fmt.Sprintf("%.2f", r.EnergyJ*r.InferenceSec*1e3)})
	}

	fits := Table{Title: "time vs GFLOPs scaling (log-log fit)",
		Header: []string{"Device", "Framework", "exponent", "R²", "models"}}
	for _, f := range FitScaling(rows) {
		fits.Rows = append(fits.Rows, []string{
			f.Device, f.Framework, fmt.Sprintf("%.2f", f.Exponent),
			fmt.Sprintf("%.2f", f.R2), fmt.Sprint(f.Samples)})
	}
	fits.Notes = append(fits.Notes,
		"exponent < 1: per-op overheads dominate small models; ~1: FLOP-proportional scaling")
	return []Table{best, edp, fits}
}
