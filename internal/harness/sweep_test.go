package harness_test

import (
	"bytes"
	"strings"
	"testing"

	"edgebench/internal/harness"
	"edgebench/internal/model"
)

func TestSweepCoverage(t *testing.T) {
	rows := harness.Sweep(nil)
	// 16 models x (6 edge + 4 HPC devices) x their framework lists:
	// every combination must appear exactly once.
	seen := map[string]bool{}
	okCount, failCount := 0, 0
	for _, r := range rows {
		key := r.Model + "|" + r.Device + "|" + r.Framework
		if seen[key] {
			t.Fatalf("duplicate sweep row %s", key)
		}
		seen[key] = true
		if r.Status == "ok" {
			okCount++
			if r.InferenceSec <= 0 || r.EnergyJ <= 0 || r.MemBytes <= 0 || r.GraphOps <= 0 {
				t.Fatalf("ok row with zero metrics: %+v", r)
			}
			if r.Utilization < 0 || r.Utilization > 1 || r.ComputeBound < 0 || r.ComputeBound > 1 {
				t.Fatalf("fractions out of range: %+v", r)
			}
		} else {
			failCount++
			if r.InferenceSec != 0 {
				t.Fatalf("failed row carries metrics: %+v", r)
			}
		}
	}
	if okCount < 500 {
		t.Fatalf("only %d ok combinations", okCount)
	}
	// Table V / memory walls must surface as failures.
	if failCount < 20 {
		t.Fatalf("only %d failures recorded; compatibility census missing", failCount)
	}
}

func TestSweepSubset(t *testing.T) {
	spec := model.MustGet("MobileNet-v2")
	rows := harness.Sweep([]*model.Spec{spec})
	for _, r := range rows {
		if r.Model != "MobileNet-v2" {
			t.Fatalf("unexpected model %s", r.Model)
		}
	}
	// MobileNet runs everywhere Table V allows; EdgeTPU TFLite row must
	// be ok with batch-16 throughput on devices with memory headroom.
	found := false
	for _, r := range rows {
		if r.Device == "EdgeTPU" && r.Framework == "TFLite" {
			found = true
			if r.Status != "ok" {
				t.Fatalf("EdgeTPU MobileNet should deploy: %+v", r)
			}
		}
	}
	if !found {
		t.Fatal("EdgeTPU row missing")
	}
}

func TestWriteCSV(t *testing.T) {
	rows := harness.Sweep([]*model.Spec{model.MustGet("CifarNet")})
	var buf bytes.Buffer
	if err := harness.WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(rows)+1 {
		t.Fatalf("csv lines = %d, rows = %d", len(lines), len(rows))
	}
	if !strings.HasPrefix(lines[0], "model,device,framework,status,inference_ms") {
		t.Fatalf("csv header wrong: %q", lines[0])
	}
	for _, line := range lines[1:] {
		if strings.Count(line, ",") != strings.Count(lines[0], ",") {
			t.Fatalf("ragged csv row: %q", line)
		}
	}
}
