package harness

import (
	"fmt"
	"math"

	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/stats"
	"edgebench/internal/trace"
)

func init() {
	register("ext3", "Extension: numeric fidelity of deployment lowerings (measured, not modeled)", Ext3Fidelity)
}

// Ext3Fidelity measures — with the real inference engine, on real
// numbers — what the deployment optimizations cost in output fidelity:
// for each executable model, it compares the FP32 reference against the
// fused, FP16, and INT8 lowerings over a batch of synthetic inputs,
// reporting top-1 agreement and output error. This grounds the paper's
// Table II optimization story: fusion is exact, FP16 is tight, INT8
// costs a bounded numeric error that the task usually tolerates.
func Ext3Fidelity() (*Report, error) {
	const inputs = 10
	models := []string{"CifarNet", "LSTM-Classifier"}
	t := Table{Header: []string{"Model", "lowering", "top-1 agreement", "mean |Δprob|", "max |Δprob|"}}

	for _, name := range models {
		spec := model.MustGet(name)
		ref := spec.Build(nn.Options{Materialize: true, Seed: 77})

		// The ablation table measures the raw, unverified passes on
		// purpose — fidelity drift of each lowering is the observable —
		// so the pass-verify rule is suppressed per row.
		lowerings := []struct {
			name string
			pass graph.Pass
		}{
			{"fused", graph.Pipeline(graph.FoldBN, graph.FuseActivations)}, // edgelint:ignore pass-verify
			{"fp16", graph.CastFP16},                       // edgelint:ignore pass-verify
			{"int8/tensor", graph.QuantizeINT8},            // edgelint:ignore pass-verify
			{"int8/channel", graph.QuantizeINT8PerChannel}, // edgelint:ignore pass-verify
			{"fused+int8", graph.Pipeline(graph.FoldBN, graph.FuseActivations, graph.QuantizeINT8)}, // edgelint:ignore pass-verify
		}
		for _, low := range lowerings {
			g := ref.Clone()
			low.pass(g)
			agree, meanErr, maxErr, err := fidelity(ref, g, spec.InputShape, inputs)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, low.name, err)
			}
			t.Rows = append(t.Rows, []string{
				name, low.name,
				fmt.Sprintf("%.0f%%", agree*100),
				fmt.Sprintf("%.2e", meanErr),
				fmt.Sprintf("%.2e", maxErr),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured over %d synthetic inputs per model with the functional engine", inputs),
		"fusion is numerically exact (BN folding reassociates floats only); INT8 error stays bounded by the scales;",
		"per-channel scales (TFLite's conv scheme) help when channel magnitudes differ — synthetic weights are uniform, so the gap here is small")
	return &Report{ID: "ext3", Title: "Deployment-lowering fidelity", Tables: []Table{t}}, nil
}

// fidelity runs both graphs over n inputs and compares outputs.
func fidelity(ref, lowered *graph.Graph, inputShape []int, n int) (agree, meanErr, maxErr float64, err error) {
	var exec graph.Executor
	var errs []float64
	agreeCount := 0
	for i := 0; i < n; i++ {
		in, err := trace.Generator{Seed: int64(1000 + i)}.Input(inputShape)
		if err != nil {
			return 0, 0, 0, err
		}
		want, err := exec.Run(ref, in.Clone())
		if err != nil {
			return 0, 0, 0, err
		}
		got, err := exec.Run(lowered, in.Clone())
		if err != nil {
			return 0, 0, 0, err
		}
		if argmax(want.Data) == argmax(got.Data) {
			agreeCount++
		}
		for j := range want.Data {
			errs = append(errs, math.Abs(float64(want.Data[j]-got.Data[j])))
		}
	}
	return float64(agreeCount) / float64(n), stats.Mean(errs), stats.Max(errs), nil
}

func argmax(xs []float32) int {
	best, arg := float32(-math.MaxFloat32), 0
	for i, v := range xs {
		if v > best {
			best, arg = v, i
		}
	}
	return arg
}
