package harness

import (
	"fmt"

	"edgebench/internal/core"
	"edgebench/internal/device"
	"edgebench/internal/power"
	"edgebench/internal/thermal"
)

func init() {
	register("ext7", "Extension: burst vs sustained performance under thermal limits (§VI-F)", Ext7Sustained)
}

// Ext7Sustained closes the loop between the thermal model and the
// latency model: Figure 2's numbers are burst performance, but a
// continuously-loaded fanless device throttles (or, for the RPi, shuts
// down), so its *sustained* throughput is lower. This is the
// deployment-relevant consequence of §VI-F's temperature study.
func Ext7Sustained() (*Report, error) {
	deployments := []struct{ model, fw, dev string }{
		{"ResNet-50", "TFLite", "RPi3"},
		{"ResNet-50", "PyTorch", "JetsonTX2"},
		{"ResNet-50", "TensorRT", "JetsonNano"},
		{"ResNet-50", "TFLite", "EdgeTPU"},
		{"ResNet-50", "NCSDK", "Movidius"},
	}
	t := Table{Header: []string{"Device", "burst ms/inf", "sustained factor", "sustained ms/inf", "thermal event"}}
	for _, d := range deployments {
		s, err := core.New(d.model, d.fw, d.dev)
		if err != nil {
			return nil, err
		}
		dev := device.MustGet(d.dev)
		burst := s.InferenceSeconds()
		// Continuous back-to-back inference stresses the whole SoC
		// (cores, memory, I/O) beyond the per-model active power, so the
		// sustained-load estimate governs the thermal fate.
		watts := power.ActiveWatts(dev, s.Utilization())
		if sw := thermal.SustainedWatts(dev); sw > watts {
			watts = sw
		}
		sim := thermal.NewSimulator(dev)
		factor := sim.SustainedFactor(watts)

		event := "full speed"
		sustained := "-"
		switch {
		case factor == 0:
			event = "thermal shutdown"
		case factor < 1:
			event = fmt.Sprintf("throttles to %.0f%%", factor*100)
			sustained = fmtSeconds(burst / factor)
		default:
			sustained = fmtSeconds(burst)
		}
		t.Rows = append(t.Rows, []string{d.dev, fmtSeconds(burst), fmt.Sprintf("%.2f", factor), sustained, event})
	}
	t.Notes = append(t.Notes,
		"sustained factor from the RC thermal model under the deployment's own active power",
		"the fanned TX2 and the low-power accelerators hold burst speed; the fanless Nano throttles; the bare RPi shuts down (Fig. 14)")
	return &Report{ID: "ext7", Title: "Burst vs sustained performance", Tables: []Table{t}}, nil
}
