package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"edgebench/internal/core"
	"edgebench/internal/device"
	"edgebench/internal/framework"
	"edgebench/internal/model"
	"edgebench/internal/power"
)

// SweepRow is one (model, device, framework) characterization — the
// full-factorial record the paper's open-source harness collects across
// its testbed ("our experiments are reproducible and extendable to new
// platforms", §I).
type SweepRow struct {
	Model     string
	Device    string
	Framework string
	// Status is "ok" or the deployment failure reason.
	Status string
	// The remaining fields are zero when Status != "ok".
	InferenceSec  float64
	EnergyJ       float64
	ActiveWatts   float64
	Utilization   float64
	MemBytes      float64
	GraphOps      int
	ComputeBound  float64
	ThroughputB16 float64 // samples/s at batch 16 (0 if it does not fit)
}

// Sweep characterizes every legal combination over the given model set
// (nil means Table I). Illegal combinations are recorded with their
// failure reason rather than skipped, so the sweep doubles as a
// compatibility census.
func Sweep(models []*model.Spec) []SweepRow {
	if models == nil {
		models = model.All()
	}
	var rows []SweepRow
	for _, spec := range models {
		for _, dev := range device.All() {
			fws, err := framework.FrameworksFor(dev.Name)
			if err != nil {
				continue
			}
			for _, fw := range fws {
				row := SweepRow{Model: spec.Name, Device: dev.Name, Framework: fw.Name}
				s, err := core.New(spec.Name, fw.Name, dev.Name)
				if err != nil {
					row.Status = shortErr(err)
					rows = append(rows, row)
					continue
				}
				row.Status = "ok"
				row.InferenceSec = s.InferenceSeconds()
				row.EnergyJ = power.EnergyPerInferenceJ(s)
				row.ActiveWatts = power.ActiveWatts(dev, s.Utilization())
				row.Utilization = s.Utilization()
				row.GraphOps = s.Lowered().NumOps()
				row.ComputeBound = s.ComputeBoundFraction()
				if s.Lowered().Mode.String() == "dynamic" {
					row.MemBytes = s.DynamicMemBytes()
				} else {
					row.MemBytes = s.StaticMemBytes()
				}
				if s.MaxBatch(16) >= 16 {
					row.ThroughputB16 = s.ThroughputPerSecond(16)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows
}

// WriteCSV emits sweep rows as CSV with a header.
func WriteCSV(w io.Writer, rows []SweepRow) error {
	cw := csv.NewWriter(w)
	header := []string{"model", "device", "framework", "status",
		"inference_ms", "energy_mj", "active_watts", "utilization",
		"mem_mb", "graph_ops", "compute_bound_frac", "throughput_b16"}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64, digits int) string {
		return strconv.FormatFloat(v, 'f', digits, 64)
	}
	for _, r := range rows {
		rec := []string{r.Model, r.Device, r.Framework, r.Status,
			f(r.InferenceSec*1e3, 3), f(r.EnergyJ*1e3, 2), f(r.ActiveWatts, 2),
			f(r.Utilization, 3), f(r.MemBytes/(1<<20), 1),
			strconv.Itoa(r.GraphOps), f(r.ComputeBound, 3), f(r.ThroughputB16, 2)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("harness: csv: %w", err)
	}
	return nil
}
