package harness

import (
	"fmt"

	"edgebench/internal/core"
	"edgebench/internal/partition"
)

func init() {
	register("ext4", "Extension: framework memory footprints (pCAMP-style, §VIII)", Ext4Memory)
	register("ext5", "Extension: pipelined model parallelism across an RPi cluster (§VIII)", Ext5Pipeline)
}

// Ext4Memory compares resident deployment footprints across frameworks —
// the comparison the pCAMP study (§VIII) ran on physical edge boxes.
// The numbers come from the real lowered graphs: parameter and
// activation bytes at the deployed datatype, scaled by each framework's
// bookkeeping factor.
func Ext4Memory() (*Report, error) {
	models := []string{"MobileNet-v2", "ResNet-50", "Inception-v4", "VGG16"}
	fws := []string{"TensorFlow", "TFLite", "Caffe", "PyTorch", "DarkNet"}
	t := Table{Header: append([]string{"Model (on RPi3, MB)"}, fws...)}
	for _, m := range models {
		row := []string{m}
		for _, fw := range fws {
			s, err := core.New(m, fw, "RPi3")
			if err != nil {
				row = append(row, "OOM")
				continue
			}
			bytes := s.StaticMemBytes()
			if s.Lowered().Mode.String() == "dynamic" {
				bytes = s.DynamicMemBytes()
			}
			row = append(row, fmt.Sprintf("%.0f", bytes/(1<<20)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"TFLite's arena + int8 weights give the smallest footprints; PyTorch's eager frees keep dynamic peaks low;",
		"TensorFlow's graph duplication is the largest — consistent with pCAMP's finding that PyTorch is memory-efficient (§VIII)")
	return &Report{ID: "ext4", Title: "Framework memory footprints", Tables: []Table{t}}, nil
}

// Ext5Pipeline scales a Raspberry Pi cluster over a model with pipelined
// model parallelism — the authors' collaborative-IoT line quantified.
func Ext5Pipeline() (*Report, error) {
	t := Table{Header: []string{"RPis", "bottleneck", "throughput", "speedup", "frame latency"}}
	const modelName = "VGG-S"
	for _, k := range []int{1, 2, 3, 4, 6, 8} {
		devices := make([]string, k)
		for i := range devices {
			devices[i] = "RPi3"
		}
		plan, err := partition.PipelinePartition(modelName, devices, "TensorFlow", partition.Ethernet)
		if err != nil {
			t.Rows = append(t.Rows, []string{fmt.Sprint(k), "-", "-", "-", "infeasible"})
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k),
			fmtSeconds(plan.BottleneckSec),
			fmt.Sprintf("%.2f fps", plan.ThroughputPerSec()),
			fmt.Sprintf("%.2fx", plan.ThroughputSpeedup()),
			fmtSeconds(plan.LatencySec),
		})
	}
	t.Notes = append(t.Notes,
		modelName+" across an Ethernet-linked RPi cluster; throughput scales with the chain while per-frame latency pays the hops",
		"mirrors the authors' model-parallel IoT deployments (§VIII: collaborative robots, Musical Chair)")
	return &Report{ID: "ext5", Title: "RPi-cluster pipelining", Tables: []Table{t}}, nil
}
