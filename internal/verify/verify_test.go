package verify_test

import (
	"strings"
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/tensor"
	"edgebench/internal/verify"
)

// cleanCNN builds a materialized conv-bn-relu-pool-dense network with no
// dead branches, so a clean run must produce zero diagnostics.
func cleanCNN(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	b := nn.NewBuilder("clean", nn.Options{Materialize: true, Seed: seed}, 3, 8, 8)
	b.ConvBNReLU("block1", 4, 3, 1, 1)
	b.MaxPool("pool1", 2, 2, 0)
	b.Conv2D("conv2", 8, 3, 1, 1, true)
	b.ReLU("relu2")
	b.GlobalAvgPool("gap")
	b.Dense("fc", 10, true)
	b.Softmax("prob")
	return b.Build()
}

func hasRule(diags []verify.Diagnostic, rule string) bool {
	for _, d := range diags {
		if d.Rule == rule {
			return true
		}
	}
	return false
}

func node(t *testing.T, g *graph.Graph, name string) *graph.Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("graph has no node %q", name)
	return nil
}

func TestCleanGraphHasZeroDiagnostics(t *testing.T) {
	g := cleanCNN(t, 1)
	if diags := verify.Check(g); len(diags) != 0 {
		t.Fatalf("clean graph produced %d diagnostics: %v", len(diags), diags)
	}
}

func TestNilGraph(t *testing.T) {
	diags := verify.Check(nil)
	if !hasRule(diags, "io") {
		t.Fatalf("nil graph: got %v, want io diagnostic", diags)
	}
	if verify.Err(diags) == nil {
		t.Fatal("nil graph must be an error")
	}
}

func TestDetectsCycle(t *testing.T) {
	g := cleanCNN(t, 2)
	// relu2 consumes conv2; closing conv2 -> relu2 makes a 2-cycle.
	conv2 := node(t, g, "conv2")
	relu2 := node(t, g, "relu2")
	conv2.Inputs = append(conv2.Inputs, relu2)
	diags := verify.Check(g)
	if !hasRule(diags, "acyclic") {
		t.Fatalf("cycle not detected: %v", diags)
	}
	if verify.Err(diags) == nil {
		t.Fatal("cycle must be an error")
	}
}

func TestDetectsShapeMismatch(t *testing.T) {
	g := cleanCNN(t, 3)
	node(t, g, "conv2").OutShape = tensor.Shape{1, 2, 3}
	diags := verify.Check(g)
	if !hasRule(diags, "shape") {
		t.Fatalf("shape mismatch not detected: %v", diags)
	}
}

func TestDetectsDanglingInput(t *testing.T) {
	g := cleanCNN(t, 4)
	foreign := &graph.Node{Kind: graph.OpReLU, Name: "foreign"}
	node(t, g, "relu2").Inputs = []*graph.Node{foreign}
	diags := verify.Check(g)
	if !hasRule(diags, "dangling-input") {
		t.Fatalf("dangling input not detected: %v", diags)
	}
}

func TestDetectsNilInput(t *testing.T) {
	g := cleanCNN(t, 5)
	node(t, g, "relu2").Inputs = []*graph.Node{nil}
	if diags := verify.Check(g); !hasRule(diags, "dangling-input") {
		t.Fatalf("nil input not detected: %v", diags)
	}
}

func TestDetectsMixedDTypeEdge(t *testing.T) {
	g := cleanCNN(t, 6)
	node(t, g, "conv2").DType = tensor.INT8
	diags := verify.Check(g)
	if !hasRule(diags, "dtype-uniform") {
		t.Fatalf("mixed-dtype edge not detected: %v", diags)
	}
	if !strings.Contains(verify.Err(diags).Error(), "dtype-uniform") {
		t.Fatalf("Err() should name the rule: %v", verify.Err(diags))
	}
}

func TestDetectsDuplicateID(t *testing.T) {
	g := cleanCNN(t, 7)
	node(t, g, "conv2").ID = node(t, g, "relu2").ID
	if diags := verify.Check(g); !hasRule(diags, "single-def") {
		t.Fatalf("duplicate ID not detected: %v", diags)
	}
}

func TestDetectsDuplicateNode(t *testing.T) {
	g := cleanCNN(t, 8)
	g.Nodes = append(g.Nodes, node(t, g, "relu2"))
	if diags := verify.Check(g); !hasRule(diags, "single-def") {
		t.Fatalf("duplicate node not detected: %v", diags)
	}
}

func TestDetectsTopoOrderViolation(t *testing.T) {
	g := cleanCNN(t, 9)
	last := len(g.Nodes) - 1
	g.Nodes[last-1], g.Nodes[last] = g.Nodes[last], g.Nodes[last-1]
	if diags := verify.Check(g); !hasRule(diags, "topo-order") {
		t.Fatalf("topological-order violation not detected: %v", diags)
	}
}

func TestDeadNodeIsWarningOnly(t *testing.T) {
	g := cleanCNN(t, 10)
	g.Append(&graph.Node{
		Kind: graph.OpReLU, Name: "orphan",
		Inputs:   []*graph.Node{g.Input},
		OutShape: g.Input.OutShape.Clone(),
	})
	diags := verify.Check(g)
	if !hasRule(diags, "dead-node") {
		t.Fatalf("dead node not reported: %v", diags)
	}
	if err := verify.Err(diags); err != nil {
		t.Fatalf("dead node should be a warning, got error: %v", err)
	}
	if len(verify.Errors(diags)) != 0 {
		t.Fatalf("Errors() should drop warnings: %v", verify.Errors(diags))
	}
}

func TestDetectsFrozenDynamic(t *testing.T) {
	g := cleanCNN(t, 11)
	g.Mode = graph.Dynamic
	g.Frozen = true
	if diags := verify.Check(g); !hasRule(diags, "frozen") {
		t.Fatalf("frozen dynamic graph not detected: %v", diags)
	}
}

func TestDetectsIllegalFusion(t *testing.T) {
	g := cleanCNN(t, 12)
	// An activation fused onto softmax: legal op, illegal carrier.
	node(t, g, "prob").Activation = graph.OpReLU
	if diags := verify.Check(g); !hasRule(diags, "fusion") {
		t.Fatalf("activation on softmax not detected: %v", diags)
	}

	g = cleanCNN(t, 13)
	// A non-activation op in the fused slot.
	node(t, g, "conv2").Activation = graph.OpConv2D
	if diags := verify.Check(g); !hasRule(diags, "fusion") {
		t.Fatalf("non-activation fusion not detected: %v", diags)
	}

	g = cleanCNN(t, 14)
	// FusedBN on a pool, which FoldBN never folds into.
	node(t, g, "pool1").FusedBN = true
	if diags := verify.Check(g); !hasRule(diags, "fusion") {
		t.Fatalf("FusedBN on pool not detected: %v", diags)
	}
}

func TestDetectsParamMismatch(t *testing.T) {
	g := cleanCNN(t, 15)
	conv2 := node(t, g, "conv2")
	conv2.Bias = conv2.Bias[:len(conv2.Bias)-1]
	if diags := verify.Check(g); !hasRule(diags, "params") {
		t.Fatalf("bias length mismatch not detected: %v", diags)
	}

	g = cleanCNN(t, 16)
	node(t, g, "conv2").Sparsity = 1.5
	if diags := verify.Check(g); !hasRule(diags, "params") {
		t.Fatalf("out-of-range sparsity not detected: %v", diags)
	}
}

func TestDetectsBrokenIO(t *testing.T) {
	g := cleanCNN(t, 17)
	g.Output = &graph.Node{Kind: graph.OpReLU, Name: "foreign_out"}
	if diags := verify.Check(g); !hasRule(diags, "io") {
		t.Fatalf("foreign output not detected: %v", diags)
	}

	g = cleanCNN(t, 18)
	g.Input = nil
	if diags := verify.Check(g); !hasRule(diags, "io") {
		t.Fatalf("missing input not detected: %v", diags)
	}
}

func TestErrTruncatesLongLists(t *testing.T) {
	g := cleanCNN(t, 19)
	for _, n := range g.Nodes {
		n.Sparsity = -1 // one params error per node
	}
	err := verify.Err(verify.Check(g))
	if err == nil {
		t.Fatal("expected an error")
	}
	if !strings.Contains(err.Error(), "more") {
		t.Fatalf("long diagnostic lists should truncate: %v", err)
	}
}

func TestCheckedPanicsOnBrokenPass(t *testing.T) {
	breaker := func(g *graph.Graph) {
		g.Nodes[len(g.Nodes)-1].OutShape = tensor.Shape{9, 9, 9}
	}
	g := cleanCNN(t, 20)
	defer func() {
		if recover() == nil {
			t.Fatal("Checked should panic when the pass breaks invariants")
		}
	}()
	verify.Checked("breaker", breaker)(g)
}

func TestCheckedPassesCleanPass(t *testing.T) {
	g := cleanCNN(t, 21)
	verify.Checked("fold", graph.FoldBN)(g) // must not panic
}

func TestPipelineVerifiesBetweenPasses(t *testing.T) {
	g := cleanCNN(t, 22)
	verify.Pipeline(graph.FoldBN, graph.FuseActivations, graph.EliminateDead)(g)
	if diags := verify.Check(g); len(diags) != 0 {
		t.Fatalf("pipeline left diagnostics: %v", diags)
	}
}

func TestMustVerify(t *testing.T) {
	verify.MustVerify(cleanCNN(t, 23), "clean") // must not panic

	g := cleanCNN(t, 24)
	node(t, g, "conv2").DType = tensor.FP16
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustVerify should panic on a mixed-dtype graph")
		}
		if !strings.Contains(r.(string), "dtype-uniform") {
			t.Fatalf("panic should carry the rule ID: %v", r)
		}
	}()
	verify.MustVerify(g, "corrupt")
}

// TestDetectsStalePackedPanels: the packed-shape rule backstops the
// pass contract that weight-mutating passes clear cached panels. A
// cleanly pre-packed graph verifies clean; any panel whose dimensions
// or host node disagree with the declared weights is an error.
func TestDetectsStalePackedPanels(t *testing.T) {
	g := cleanCNN(t, 30)
	if n := graph.PrepackWeights(g); n == 0 {
		t.Fatal("pre-pack packed nothing")
	}
	if diags := verify.Check(g); len(diags) != 0 {
		t.Fatalf("pre-packed graph should verify clean: %v", diags)
	}

	// A panel whose K no longer matches cin*kh*kw is stale.
	conv2 := node(t, g, "conv2")
	conv2.Packed.K++
	diags := verify.Check(g)
	if !hasRule(diags, "packed-shape") {
		t.Fatalf("stale panel K not detected: %v", diags)
	}
	if verify.Err(diags) == nil {
		t.Fatal("stale panels must be an error")
	}
	conv2.Packed.K--

	// FP32 panels on a non-conv node (here: migrated onto the dense
	// head) violate the only-ungrouped-Conv2D-packs invariant.
	fc := node(t, g, "fc")
	fc.Packed = conv2.Packed
	if diags := verify.Check(g); !hasRule(diags, "packed-shape") {
		t.Fatalf("FP32 panels on dense node not detected: %v", diags)
	}
	fc.Packed = nil

	// Quantized panels require QWeights on the node.
	fc.PackedQ = &tensor.PackedQWeights{K: 8, N: 10, Shape: tensor.Shape{10, 8}}
	if diags := verify.Check(g); !hasRule(diags, "packed-shape") {
		t.Fatalf("orphan quantized panels not detected: %v", diags)
	}
	fc.PackedQ = nil

	if diags := verify.Check(g); len(diags) != 0 {
		t.Fatalf("repaired graph should verify clean: %v", diags)
	}
}
