package verify_test

import (
	"math"
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/tensor"
	"edgebench/internal/verify"
)

func runGraph(t *testing.T, g *graph.Graph, in *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	out, err := (&graph.Executor{}).Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func maxAbsDiff(a, b *tensor.Tensor) float64 {
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i] - b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// TestPassLegalityTable runs every optimization pass under
// verify.Checked (so a broken invariant panics with the rule ID),
// asserts the optimized graph verifies with zero diagnostics — not even
// warnings — and bounds the numeric deviation from the unoptimized
// output on a fixed input. Tolerances reflect each transformation's
// intrinsic error: exact rewrites near machine epsilon, reduced
// precision at its quantization step, pruning at the damage a 5% weight
// cut can do to a softmax.
func TestPassLegalityTable(t *testing.T) {
	cases := []struct {
		name string
		pass graph.Pass
		tol  float64
	}{
		{"FoldBN", graph.FoldBN, 1e-4},
		{"FuseActivations", graph.FuseActivations, 1e-6},
		{"EliminateDead", graph.EliminateDead, 0},
		{"QuantizeINT8", graph.QuantizeINT8, 0.3},
		{"QuantizeINT8PerChannel", graph.QuantizeINT8PerChannel, 0.3},
		{"CastFP16", graph.CastFP16, 0.02},
		{"Prune", graph.Prune(0.05), 0.5},
	}
	in := tensor.New(3, 8, 8).Fill(0.3)
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := cleanCNN(t, 42)
			ref := runGraph(t, g, in)

			opt := g.Clone()
			verify.Checked(c.name, c.pass)(opt)
			if diags := verify.Check(opt); len(diags) != 0 {
				t.Fatalf("%s left %d diagnostics: %v", c.name, len(diags), diags)
			}
			got := runGraph(t, opt, in)
			if d := maxAbsDiff(ref, got); d > c.tol {
				t.Fatalf("%s changed output by %v, tolerance %v", c.name, d, c.tol)
			}
		})
	}
}

// TestFullPipelineLegality chains the standard static-deployment
// sequence through verify.Pipeline: fold, fuse, eliminate, quantize —
// the order framework lowering uses — and requires a clean final graph.
func TestFullPipelineLegality(t *testing.T) {
	g := cleanCNN(t, 43)
	verify.Pipeline(
		graph.FoldBN,
		graph.FuseActivations,
		graph.EliminateDead,
		graph.QuantizeINT8,
	)(g)
	if diags := verify.Check(g); len(diags) != 0 {
		t.Fatalf("pipeline left diagnostics: %v", diags)
	}
	if g.Nodes[len(g.Nodes)-1].DType != tensor.INT8 {
		t.Fatal("pipeline should end INT8")
	}
}
