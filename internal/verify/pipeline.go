package verify

import (
	"fmt"

	"edgebench/internal/graph"
)

// Checked wraps an optimization pass so the graph is re-verified after
// it runs: the structural rule catalog, the quant-domain dataflow walk,
// and — for static graphs — a fresh buffer plan proven overlap-free by
// CheckPlan, so a pass that breaks the planner's liveness assumptions is
// caught here rather than by a corrupted inference later. Passes are
// internal transformations, so an invariant violation is a programming
// error, not a runtime condition: Checked panics with the full
// diagnostic list. It replaces the old graph.CheckAfterPass hook with
// the complete rule catalog.
func Checked(name string, p graph.Pass) graph.Pass {
	return func(g *graph.Graph) {
		p(g)
		diags := CheckAll(g)
		if len(Errors(diags)) == 0 && g.Mode == graph.Static {
			if plan, err := graph.PlanBuffers(g); err == nil {
				diags = append(diags, CheckPlan(g, plan)...)
			}
		}
		if err := Err(diags); err != nil {
			panic(fmt.Sprintf("verify: pass %s broke invariants: %v", name, err))
		}
	}
}

// Pipeline composes passes into one, re-verifying the graph between
// every pass (the verified analogue of graph.Pipeline). The pass index
// names the offender in the panic message.
func Pipeline(passes ...graph.Pass) graph.Pass {
	return func(g *graph.Graph) {
		for i, p := range passes {
			Checked(fmt.Sprintf("#%d", i), p)(g)
		}
	}
}

// MustVerify panics unless g verifies with no Error-severity
// diagnostics — the assertion form used by code that constructs graphs
// programmatically (model builders are code, so a bad graph is a bug).
func MustVerify(g *graph.Graph, context string) {
	if err := Err(Check(g)); err != nil {
		panic(fmt.Sprintf("verify: %s: %v", context, err))
	}
}
