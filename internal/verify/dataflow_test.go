package verify_test

import (
	"strings"
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/tensor"
	"edgebench/internal/verify"
)

// planCNN builds a materialized static CNN with a Flatten alias in the
// middle, so the plan checker's independent alias resolution is
// exercised on every run.
func planCNN(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	b := nn.NewBuilder("plan", nn.Options{Materialize: true, Seed: seed}, 3, 8, 8)
	b.ConvBNReLU("block1", 4, 3, 1, 1)
	b.MaxPool("pool1", 2, 2, 0)
	b.Conv2D("conv2", 8, 3, 1, 1, true)
	b.ReLU("relu2")
	b.Flatten("flat")
	b.Dense("fc", 10, true)
	b.Softmax("prob")
	return b.Build()
}

func mustPlan(t *testing.T, g *graph.Graph) *graph.Plan {
	t.Helper()
	p, err := graph.PlanBuffers(g)
	if err != nil {
		t.Fatalf("PlanBuffers: %v", err)
	}
	return p
}

func TestCleanPlanVerifies(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g := planCNN(t, seed)
		p := mustPlan(t, g)
		if diags := verify.CheckPlan(g, p); len(diags) != 0 {
			t.Fatalf("clean plan produced diagnostics: %v", diags)
		}
	}
}

// TestSeededPlanOverlapCaught is the acceptance case: a deliberately
// seeded overlap — a node reassigned into the slot of a buffer that is
// still live when it is defined — must be reported as plan-overlap.
func TestSeededPlanOverlapCaught(t *testing.T) {
	g := planCNN(t, 4)
	p := mustPlan(t, g)
	conv2 := node(t, g, "conv2")
	relu2 := node(t, g, "relu2")
	slot, ok := p.SlotOf(conv2)
	if !ok {
		t.Fatal("conv2 should be pooled")
	}
	if _, ok := p.SlotOf(relu2); !ok {
		t.Fatal("relu2 should be pooled")
	}
	// conv2's buffer is live until relu2 (its consumer) executes; giving
	// relu2 the same slot makes the kernel write its own input.
	p.Reassign(relu2, slot)
	diags := verify.CheckPlan(g, p)
	if !hasRule(diags, "plan-overlap") {
		t.Fatalf("seeded overlap not caught: %v", diags)
	}
	if verify.Err(diags) == nil {
		t.Fatal("plan overlap must be an error")
	}
}

func TestSeededSlotSizeMismatchCaught(t *testing.T) {
	g := planCNN(t, 5)
	p := mustPlan(t, g)
	conv2 := node(t, g, "conv2")
	fc := node(t, g, "fc")
	slot, ok := p.SlotOf(conv2)
	if !ok {
		t.Fatal("conv2 should be pooled")
	}
	if fc.OutShape.NumElems() == conv2.OutShape.NumElems() {
		t.Fatal("test graph needs differently sized buffers")
	}
	p.Reassign(fc, slot)
	if diags := verify.CheckPlan(g, p); !hasRule(diags, "plan-slot-size") {
		t.Fatalf("slot size mismatch not caught: %v", diags)
	}
}

func TestKeptOutputPooledCaught(t *testing.T) {
	g := planCNN(t, 6)
	p := mustPlan(t, g)
	p.Reassign(g.Output, 0)
	if diags := verify.CheckPlan(g, p); !hasRule(diags, "plan-kept") {
		t.Fatalf("pooled kept output not caught: %v", diags)
	}
}

func TestAliasNodePooledCaught(t *testing.T) {
	g := planCNN(t, 7)
	p := mustPlan(t, g)
	p.Reassign(node(t, g, "flat"), 0)
	if diags := verify.CheckPlan(g, p); !hasRule(diags, "plan-kept") {
		t.Fatalf("pooled alias node not caught: %v", diags)
	}
}

func TestCheckPlanRejectsMalformedGraph(t *testing.T) {
	g := planCNN(t, 8)
	p := mustPlan(t, g)
	node(t, g, "conv2").OutShape = tensor.Shape{1, 2, 3}
	diags := verify.CheckPlan(g, p)
	if len(verify.Errors(diags)) == 0 {
		t.Fatalf("malformed graph should fail plan checking: %v", diags)
	}
}

func TestQuantDomainsCleanOnQuantizedGraph(t *testing.T) {
	g := planCNN(t, 9)
	graph.QuantizeINT8(g)
	if diags := verify.CheckAll(g); len(verify.Errors(diags)) != 0 {
		t.Fatalf("uniformly quantized graph should be clean: %v", diags)
	}
}

func TestQuantBoundaryCaught(t *testing.T) {
	g := planCNN(t, 10)
	graph.QuantizeINT8(g)
	// Retype one weightless node back to FP32: both of its edges now
	// cross the int8/fp border with no boundary op.
	node(t, g, "relu2").DType = tensor.FP32
	diags := verify.CheckQuantDomains(g)
	if !hasRule(diags, "quant-boundary") {
		t.Fatalf("domain border crossing not caught: %v", diags)
	}
	if verify.Err(diags) == nil {
		t.Fatal("quant-boundary must be an error")
	}
}

// TestQuantExecCaught seeds the unexecutable-node case: int8 codes on an
// op the int8 kernels cannot run (grouped conv), with the dequantized
// FP32 shadow removed — neither execution path could run it.
func TestQuantExecCaught(t *testing.T) {
	g := planCNN(t, 11)
	graph.QuantizeINT8(g)
	conv2 := node(t, g, "conv2")
	if conv2.QWeights == nil {
		t.Fatal("quantization should have stored int8 codes on conv2")
	}
	conv2.Attrs.Groups = 2
	conv2.Weights = nil
	if diags := verify.CheckQuantDomains(g); !hasRule(diags, "quant-exec") {
		t.Fatalf("unexecutable int8 node not caught: %v", diags)
	}
}

func TestQuantCodesOutsideDomainCaught(t *testing.T) {
	g := planCNN(t, 12)
	conv2 := node(t, g, "conv2")
	// int8 codes stored while the node (and graph) stay in the fp
	// domain: a quantization pass that retyped only part of the graph.
	conv2.QWeights = tensor.QuantizeSymmetric(conv2.Weights)
	if diags := verify.CheckQuantDomains(g); !hasRule(diags, "quant-codes") {
		t.Fatalf("codes outside the int8 domain not caught: %v", diags)
	}
}

// TestDebugExecutorVetoesCorruptGraph proves the wiring: a Debug-mode
// executor consults the registered dataflow checker before first
// executing a graph and refuses to run one that fails it.
func TestDebugExecutorVetoesCorruptGraph(t *testing.T) {
	g := planCNN(t, 13)
	conv2 := node(t, g, "conv2")
	conv2.QWeights = tensor.QuantizeSymmetric(conv2.Weights) // quant-codes corruption
	in := tensor.New(g.Input.OutShape...)
	ex := &graph.Executor{Pooled: true, Debug: true}
	if _, err := ex.Run(g, in); err == nil || !strings.Contains(err.Error(), "quant-codes") {
		t.Fatalf("debug executor should veto the corrupt graph, got err=%v", err)
	}

	clean := planCNN(t, 14)
	ex2 := &graph.Executor{Pooled: true, Debug: true}
	if _, err := ex2.Run(clean, tensor.New(clean.Input.OutShape...)); err != nil {
		t.Fatalf("debug executor should pass a clean graph: %v", err)
	}
}

func TestCheckedRunsPlanPass(t *testing.T) {
	// A pass that corrupts liveness-relevant structure on a static graph
	// must be caught by the plan leg of Checked. Marking an interior
	// node as an extra output after planning assumptions is fine for the
	// structural rules, so corrupt the shape flow instead — Checked's
	// CheckAll leg already panics there; here we only pin that a clean
	// static pass still passes with the plan leg active.
	g := planCNN(t, 15)
	verify.Pipeline(graph.FoldBN, graph.FuseActivations, graph.EliminateDead)(g)
	if diags := verify.CheckAll(g); len(verify.Errors(diags)) != 0 {
		t.Fatalf("pipeline left errors: %v", diags)
	}
}
