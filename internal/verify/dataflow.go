// Dataflow passes over the graph IR: independent re-derivations of the
// two properties the execution engine takes on faith at runtime.
//
// CheckPlan re-proves the static memory planner's central claim — no
// arena slot ever holds two simultaneously-live tensors — from nothing
// but the graph and the plan's slot assignments. The liveness analysis
// here is written independently of graph.PlanBuffers (separate consumer
// counting, separate alias resolution), so a planner bug cannot hide
// behind its own bookkeeping: the checker catches it before the pooled
// executor writes through an aliased buffer.
//
// CheckQuantDomains walks datatype flow and rejects graphs where int8
// codes feed FP32-only ops without a requantize/dequantize boundary. In
// this IR the boundary is concrete: the dequantized FP32 shadow
// (Weights) is the dequantize side and the kernels' dynamic activation
// quantization is the requantize side, so a node holding int8 codes the
// executor cannot dispatch must carry the shadow or the graph is
// unexecutable.
//
// Rule catalog (extends the structural catalog in verify.go):
//
//	plan-overlap   two tensors live at once share an arena slot
//	plan-slot-size a slot's element count differs from its tenant's
//	plan-kept      a kept output / input / alias node owns a slot
//	quant-boundary an edge crosses the int8/fp domain border (no cast
//	               op exists, so a partial quantization pass shipped)
//	quant-codes    int8 codes on a node outside the int8 domain (the
//	               executor would run int8 kernels the cost model and
//	               serving metrics never see)
//	quant-exec     int8 codes feed an FP32-only op with no dequantized
//	               shadow: neither kernel path can execute the node
package verify

import (
	"edgebench/internal/graph"
	"edgebench/internal/tensor"
)

func init() {
	// Arm graph.Executor's Debug mode with both dataflow passes: a debug
	// executor re-proves structural invariants, quant domains, and (for
	// planned runs) buffer-plan safety before first executing a graph.
	graph.RegisterDebugChecker(func(g *graph.Graph, p *graph.Plan) error {
		diags := CheckAll(g)
		if p != nil && len(Errors(diags)) == 0 {
			diags = append(diags, CheckPlan(g, p)...)
		}
		return Err(diags)
	})
}

// CheckAll runs the structural rule catalog plus the quant-domain
// dataflow pass — the full static checking surface for a graph without a
// buffer plan. Pipeline/Checked verify with this between passes.
func CheckAll(g *graph.Graph) []Diagnostic {
	diags := Check(g)
	if g != nil && len(Errors(diags)) == 0 {
		diags = append(diags, CheckQuantDomains(g)...)
	}
	return diags
}

// CheckPlan proves p's slot assignments safe for g: it independently
// re-derives each buffer's live interval in executor (topological) order
// and reports any slot shared by two overlapping intervals, any slot
// sized differently than its tenant, and any slot assigned to storage
// that must outlive the run (graph input, kept outputs, alias views).
// The graph must already pass Check; call on malformed graphs returns a
// single diagnostic rather than cascading noise.
func CheckPlan(g *graph.Graph, p *graph.Plan) []Diagnostic {
	if g == nil || p == nil {
		return []Diagnostic{{Rule: "plan-overlap", Severity: Error, Msg: "nil graph or plan"}}
	}
	if err := Err(Check(g)); err != nil {
		return []Diagnostic{{Rule: "plan-overlap", Severity: Error, Graph: g.Name,
			Msg: "graph fails structural verification; fix that before checking the plan"}}
	}
	c := &checker{g: g, pos: make(map[*graph.Node]int, len(g.Nodes))}
	for i, n := range g.Nodes {
		c.pos[n] = i
	}

	// Independent alias resolution: a Flatten output is a view of its
	// input's storage, so its storage owner is the nearest non-view
	// ancestor. (Deliberately re-derived rather than read from the plan —
	// the plan's own root map is part of what is being checked.)
	owner := make(map[*graph.Node]*graph.Node, len(g.Nodes))
	rootOf := func(n *graph.Node) *graph.Node {
		if r, ok := owner[n]; ok {
			return r
		}
		return n
	}
	for _, n := range g.Nodes {
		if n.Kind == graph.OpFlatten {
			owner[n] = rootOf(n.Inputs[0])
		}
	}

	// Independent liveness: a buffer is defined at its owner's position
	// and freed when its last counted consumer executes. Alias nodes do
	// not count as consumers (their reads borrow the view, their own
	// consumers finish the buffer) — mirroring executor release order,
	// where allocation at position i strictly precedes the releases of
	// position i, so reuse requires def(next) > lastUse(prev).
	infinity := len(g.Nodes)
	lastUse := make(map[*graph.Node]int, len(g.Nodes))
	refs := make(map[*graph.Node]int, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Kind == graph.OpFlatten {
			continue
		}
		for _, in := range n.Inputs {
			r := rootOf(in)
			refs[r]++
			if c.pos[n] > lastUse[r] {
				lastUse[r] = c.pos[n]
			}
		}
	}
	kept := map[*graph.Node]bool{}
	for _, root := range g.Roots() {
		kept[rootOf(root)] = true
	}
	if g.Input != nil {
		kept[g.Input] = true
	}
	freeAt := func(n *graph.Node) int {
		if kept[n] || refs[n] == 0 {
			return infinity // never returned to the arena
		}
		return lastUse[n]
	}

	// Per-slot tenancy audit.
	tenants := map[int][]*graph.Node{}
	for _, n := range g.Nodes {
		slot, pooled := p.SlotOf(n)
		if !pooled {
			continue
		}
		switch {
		case n.Kind == graph.OpInput:
			c.add("plan-kept", Error, n, "the graph input is caller-owned storage but was assigned slot %d", slot)
		case n.Kind == graph.OpFlatten:
			c.add("plan-kept", Error, n, "alias node owns no storage but was assigned slot %d", slot)
		case kept[n]:
			c.add("plan-kept", Error, n, "kept output would be recycled into slot %d while the caller still holds it", slot)
		}
		if slot < 0 || slot >= len(p.Slots) {
			c.add("plan-slot-size", Error, n, "assigned slot %d outside the %d-slot arena", slot, len(p.Slots))
			continue
		}
		if want, got := n.OutShape.NumElems(), p.Slots[slot]; want != got {
			c.add("plan-slot-size", Error, n, "needs %d elements but slot %d holds %d", want, slot, got)
		}
		tenants[slot] = append(tenants[slot], n)
	}

	// The aliasing proof: within a slot, every pair of tenants must have
	// disjoint live intervals, with strict ordering (a buffer freed at
	// position i is reusable only by definitions after i, because the
	// executor allocates before it releases at each step).
	for slot, ns := range tenants {
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				a, b := ns[i], ns[j]
				if c.pos[a] > c.pos[b] {
					a, b = b, a
				}
				if c.pos[b] <= freeAt(a) {
					c.add("plan-overlap", Error, b,
						"slot %d already holds %s, live until position %d, when %s is defined at position %d",
						slot, a, freeAt(a), b, c.pos[b])
				}
			}
		}
	}
	return c.diags
}

// fusableActs mirrors the executor's int8 epilogue support: activations
// outside this set force the FP32 fallback even on int8-executable ops.
var fusableActs = map[graph.OpKind]bool{
	graph.OpReLU:      true,
	graph.OpReLU6:     true,
	graph.OpLeakyReLU: true,
	graph.OpSigmoid:   true,
	graph.OpTanh:      true,
}

// int8Dispatchable mirrors the executor's int8 kernel coverage: dense
// (ungrouped) Conv2D and Dense, with a fusable (or absent) activation.
// Re-derived here rather than exported from internal/graph so the
// checker stays an independent witness.
func int8Dispatchable(n *graph.Node) bool {
	if n.Activation != 0 && !fusableActs[n.Activation] {
		return false
	}
	switch n.Kind {
	case graph.OpConv2D:
		return n.Attrs.GroupCount() == 1
	case graph.OpDense:
		return true
	}
	return false
}

// CheckQuantDomains walks datatype flow over the graph and enforces the
// int8 execution-domain discipline: domains may not mix across an edge
// (the IR has no cast op), int8 codes may not appear outside the int8
// domain, and int8 codes on an op with no int8 kernel must carry the
// dequantized FP32 shadow — the dequantize half of the boundary — or
// neither kernel path can execute the node.
func CheckQuantDomains(g *graph.Graph) []Diagnostic {
	if g == nil {
		return nil
	}
	c := &checker{g: g, pos: make(map[*graph.Node]int, len(g.Nodes))}
	int8Domain := func(n *graph.Node) bool { return n.DType == tensor.INT8 }
	for _, n := range g.Nodes {
		if n == nil {
			continue
		}
		for _, in := range n.Inputs {
			if in == nil {
				continue
			}
			if int8Domain(in) != int8Domain(n) {
				c.add("quant-boundary", Error, n,
					"edge from %s crosses the %s/%s domain border without a requantize/dequantize boundary",
					in, in.DType, n.DType)
			}
		}
		if n.QWeights == nil {
			continue
		}
		if !int8Domain(n) {
			c.add("quant-codes", Error, n,
				"node carries int8 weight codes but its execution datatype is %s; a quantization pass retyped only part of the graph", n.DType)
		}
		if !int8Dispatchable(n) && n.Weights == nil {
			c.add("quant-exec", Error, n,
				"int8 codes feed an op with no int8 kernel and no dequantized FP32 shadow; neither execution path can run this node")
		}
	}
	return c.diags
}
