// Package verify is the static checker of the graph IR: it runs full
// shape and dtype inference over a Graph and checks every invariant the
// engine assumes, returning structured diagnostics instead of panicking.
//
// The paper's central observable is how framework graph transformations
// (freezing, BN-folding, fusion, INT8/FP16 quantization — §III,
// Table II) change per-inference cost, so the correctness of the
// internal/graph passes is the experiment's validity. Benchmarking
// studies stress that cross-framework comparisons are only trustworthy
// when every converted/optimized model is verified equivalent before
// measurement; this package enforces the structural half of that
// statically, at graph-build time: exchange.Import rejects malformed
// serialized graphs, core.Session verifies once at session open, and
// Checked/Pipeline re-verify between optimization passes.
//
// The rule catalog (IDs appear in diagnostics and DESIGN.md):
//
//	topo-order     every input precedes its consumer in Nodes
//	acyclic        no cycles through Inputs edges
//	single-def     each node (and node ID) appears exactly once
//	dangling-input every input is a member of Nodes
//	arity          op-specific input counts
//	shape          recorded OutShape matches full shape inference
//	dtype-uniform  no mixed-dtype edge (the IR has no cast op, so a
//	               INT8/FP32 boundary inside a graph is illegal)
//	io             Input/Output/Extra well-formed; exactly one input node
//	frozen         a frozen graph must be Static-mode
//	fusion         fused activations/BN only on legal op kinds
//	params         materialized parameters consistent with their
//	               structural description
//	packed-shape   ahead-of-time packed weight panels (Node.Packed /
//	               PackedQ) agree with the weights they were packed
//	               from — a mismatch means a pass mutated weights
//	               without clearing the stale panels
//	dead-node      (warning) node unreachable from any output
package verify

import (
	"fmt"
	"strings"

	"edgebench/internal/graph"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Warning flags suspicious but executable structure (dead nodes).
	Warning Severity = iota
	// Error flags structure the engine cannot execute soundly.
	Error
)

// String names the severity level.
func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "error"
}

// Diagnostic is one rule violation, locating the offending node when the
// violation is node-scoped.
type Diagnostic struct {
	Rule     string // stable rule ID from the package catalog
	Severity Severity
	Graph    string // graph name
	Node     string // offending node (String form), empty for graph-level rules
	Msg      string
}

// String renders the diagnostic as "graph: node N: severity: rule: msg".
func (d Diagnostic) String() string {
	loc := d.Graph
	if d.Node != "" {
		loc += ": node " + d.Node
	}
	return fmt.Sprintf("%s: %s: %s: %s", loc, d.Severity, d.Rule, d.Msg)
}

// Errors filters a diagnostic list down to Error severity.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// Err converts a diagnostic list into a single error, nil when no
// Error-severity diagnostics are present (warnings alone do not fail).
func Err(diags []Diagnostic) error {
	errs := Errors(diags)
	if len(errs) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "verify: %d invariant violation(s): ", len(errs))
	for i, d := range errs {
		if i == 3 {
			fmt.Fprintf(&b, "; and %d more", len(errs)-i)
			break
		}
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(d.String())
	}
	return fmt.Errorf("%s", b.String())
}

// Check runs the full rule catalog over g and returns every violation
// found. It never panics, even on arbitrarily malformed graphs (nil
// nodes, cycles, foreign inputs) — the property the exchange fuzzer
// asserts.
func Check(g *graph.Graph) []Diagnostic {
	if g == nil {
		return []Diagnostic{{Rule: "io", Severity: Error, Msg: "nil graph"}}
	}
	c := &checker{g: g, pos: make(map[*graph.Node]int, len(g.Nodes))}
	c.indexNodes()
	c.checkIO()
	c.checkEdges()
	c.checkCycles()
	c.checkShapes()
	c.checkDTypes()
	c.checkFrozen()
	c.checkFusion()
	c.checkParams()
	c.checkPacked()
	c.checkLiveness()
	return c.diags
}

type checker struct {
	g     *graph.Graph
	pos   map[*graph.Node]int // first occurrence in Nodes
	diags []Diagnostic
}

func (c *checker) add(rule string, sev Severity, n *graph.Node, format string, args ...any) {
	d := Diagnostic{Rule: rule, Severity: sev, Graph: c.g.Name, Msg: fmt.Sprintf(format, args...)}
	if n != nil {
		d.Node = n.String()
	}
	c.diags = append(c.diags, d)
}

// indexNodes records each node's position and flags duplicates (a node
// or node ID defined twice breaks the single-producer discipline).
func (c *checker) indexNodes() {
	ids := make(map[int]*graph.Node, len(c.g.Nodes))
	for i, n := range c.g.Nodes {
		if n == nil {
			c.add("single-def", Error, nil, "Nodes[%d] is nil", i)
			continue
		}
		if prev, dup := c.pos[n]; dup {
			c.add("single-def", Error, n, "node defined at positions %d and %d", prev, i)
			continue
		}
		c.pos[n] = i
		if prev, dup := ids[n.ID]; dup {
			c.add("single-def", Error, n, "node ID %d already used by %s", n.ID, prev)
		}
		ids[n.ID] = n
	}
}

// checkIO verifies the graph's entry and exit points: a single input
// node that is the registered Input, and member Output/Extra roots.
func (c *checker) checkIO() {
	inputs := 0
	for _, n := range c.g.Nodes {
		if n != nil && n.Kind == graph.OpInput {
			inputs++
		}
	}
	switch {
	case c.g.Input == nil:
		c.add("io", Error, nil, "graph has no input node")
	case c.g.Input.Kind != graph.OpInput:
		c.add("io", Error, c.g.Input, "Input is a %s node, want %s", c.g.Input.Kind, graph.OpInput)
	default:
		if _, ok := c.pos[c.g.Input]; !ok {
			c.add("io", Error, c.g.Input, "Input node is not a member of Nodes")
		}
	}
	if inputs != 1 {
		c.add("io", Error, nil, "graph has %d input nodes, want exactly 1", inputs)
	}
	if c.g.Output == nil {
		c.add("io", Error, nil, "graph has no output node")
	} else if _, ok := c.pos[c.g.Output]; !ok {
		c.add("io", Error, c.g.Output, "Output node is not a member of Nodes")
	}
	for _, x := range c.g.Extra {
		if x == nil {
			c.add("io", Error, nil, "Extra contains a nil output")
			continue
		}
		if _, ok := c.pos[x]; !ok {
			c.add("io", Error, x, "extra output is not a member of Nodes")
		}
	}
}

// checkEdges verifies input membership, topological order, and arity.
func (c *checker) checkEdges() {
	for i, n := range c.g.Nodes {
		if n == nil {
			continue
		}
		for j, in := range n.Inputs {
			if in == nil {
				c.add("dangling-input", Error, n, "input %d is nil", j)
				continue
			}
			p, ok := c.pos[in]
			if !ok {
				c.add("dangling-input", Error, n, "input %d (%s) is not a member of Nodes", j, in)
				continue
			}
			if p >= i {
				c.add("topo-order", Error, n, "uses input %s defined at position %d >= %d", in, p, i)
			}
		}
		if n.Kind == graph.OpInput && len(n.Inputs) != 0 {
			c.add("arity", Error, n, "input node has %d inputs, want 0", len(n.Inputs))
		}
	}
}

// checkCycles walks Inputs edges from every member node with a
// three-color DFS; a back edge is a cycle (topological order implies
// acyclicity, but a corrupted node list can hide a cycle among nodes at
// equal footing, so the walk is explicit).
func (c *checker) checkCycles() {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[*graph.Node]int, len(c.g.Nodes))
	var walk func(n *graph.Node) bool
	walk = func(n *graph.Node) bool {
		switch color[n] {
		case grey:
			c.add("acyclic", Error, n, "node participates in a cycle")
			return false
		case black:
			return true
		}
		color[n] = grey
		for _, in := range n.Inputs {
			if in == nil {
				continue
			}
			if !walk(in) {
				break // report one cycle per connected component
			}
		}
		color[n] = black
		return true
	}
	for _, n := range c.g.Nodes {
		if n != nil {
			walk(n)
		}
	}
}

// checkShapes re-runs shape inference over every node and compares the
// result with the recorded OutShape. Nodes with dangling or nil inputs
// are skipped — checkEdges already reported them, and inference over a
// foreign subgraph would cascade noise.
func (c *checker) checkShapes() {
	for _, n := range c.g.Nodes {
		if n == nil || !c.edgesResolved(n) {
			continue
		}
		if n.Kind == graph.OpInput {
			if len(n.OutShape) == 0 {
				c.add("shape", Error, n, "input node has no shape")
			}
			for _, d := range n.OutShape {
				if d < 1 {
					c.add("shape", Error, n, "input shape %v has a non-positive dimension", n.OutShape)
					break
				}
			}
			continue
		}
		inferred, err := graph.InferShapeE(n)
		if err != nil {
			c.add("shape", Error, n, "%v", err)
			continue
		}
		if !inferred.Equal(n.OutShape) {
			c.add("shape", Error, n, "recorded shape %v, inferred %v", n.OutShape, inferred)
		}
	}
}

// edgesResolved reports whether every input of n is a member node.
func (c *checker) edgesResolved(n *graph.Node) bool {
	for _, in := range n.Inputs {
		if in == nil {
			return false
		}
		if _, ok := c.pos[in]; !ok {
			return false
		}
	}
	return true
}

// checkDTypes enforces quantization consistency: every edge must connect
// nodes of the same execution datatype. The IR has no cast op — the
// quantization passes retype whole graphs — so a mixed INT8/FP32 edge
// means a pass (or an imported file) retyped only part of a graph.
func (c *checker) checkDTypes() {
	for _, n := range c.g.Nodes {
		if n == nil {
			continue
		}
		for _, in := range n.Inputs {
			if in == nil {
				continue
			}
			if in.DType != n.DType {
				c.add("dtype-uniform", Error, n,
					"mixed-dtype edge without a cast: input %s is %s, node is %s", in, in.DType, n.DType)
			}
		}
	}
}

// checkFrozen enforces freeze discipline: freezing is the static-graph
// deployment step (§III-A), so a frozen define-by-run graph is a
// contradiction.
func (c *checker) checkFrozen() {
	if c.g.Frozen && c.g.Mode == graph.Dynamic {
		c.add("frozen", Error, nil, "frozen graph is Dynamic-mode; freezing is a static-graph discipline")
	}
}

// checkFusion verifies fusion legality: a fused activation must be an
// activation op riding on a compute op, and the FusedBN flag only makes
// sense on the op kinds FoldBN folds into.
func (c *checker) checkFusion() {
	for _, n := range c.g.Nodes {
		if n == nil {
			continue
		}
		if n.Activation != 0 {
			if !n.Activation.IsActivation() {
				c.add("fusion", Error, n, "fused op %s is not an activation", n.Activation)
			}
			switch n.Kind {
			case graph.OpConv2D, graph.OpDepthwiseConv2D, graph.OpConv3D, graph.OpDense, graph.OpAdd:
			default:
				c.add("fusion", Error, n, "fused activation on non-compute op %s", n.Kind)
			}
		}
		if n.FusedBN {
			switch n.Kind {
			case graph.OpConv2D, graph.OpDepthwiseConv2D, graph.OpConv3D, graph.OpDense:
			default:
				c.add("fusion", Error, n, "FusedBN on op %s, which FoldBN never folds into", n.Kind)
			}
		}
		if n.EpiChannels > 0 {
			// The absorbed-BN epilogue exists only where the executor has a
			// fused FP32 kernel; elsewhere the affine would silently be
			// skipped by the generic fallback.
			switch n.Kind {
			case graph.OpConv2D:
				if n.Attrs.GroupCount() != 1 {
					c.add("fusion", Error, n, "BN epilogue on grouped convolution (no fused kernel)")
				}
			case graph.OpDepthwiseConv2D, graph.OpDense:
			default:
				c.add("fusion", Error, n, "BN epilogue on op %s, which has no fused kernel", n.Kind)
			}
			if n.QWeights != nil {
				c.add("fusion", Error, n, "BN epilogue on an int8-dispatched node (the int8 requantize epilogue has no affine stage)")
			}
			if len(n.OutShape) > 0 && n.EpiChannels != n.OutShape[0] {
				c.add("fusion", Error, n, "BN epilogue has %d channels over output %v", n.EpiChannels, n.OutShape)
			}
		}
	}
}

// checkParams verifies that materialized parameter values agree with the
// node's structural description (structural-only nodes are legal — cost
// and timing experiments never allocate weights).
func (c *checker) checkParams() {
	for _, n := range c.g.Nodes {
		if n == nil {
			continue
		}
		if n.WShape == nil && n.Weights != nil {
			c.add("params", Error, n, "weights present but WShape is nil")
		}
		if n.Weights != nil && n.WShape != nil && !n.Weights.Shape.Equal(n.WShape) {
			c.add("params", Error, n, "weights shape %v, declared %v", n.Weights.Shape, n.WShape)
		}
		if n.Bias != nil && len(n.Bias) != n.BiasLen {
			c.add("params", Error, n, "bias length %d, declared %d", len(n.Bias), n.BiasLen)
		}
		if n.BN != nil {
			for _, arr := range [][]float32{n.BN.Gamma, n.BN.Beta, n.BN.Mean, n.BN.Variance} {
				if len(arr) != n.BNChannels {
					c.add("params", Error, n, "batch-norm arrays sized %d/%d/%d/%d, declared %d channels",
						len(n.BN.Gamma), len(n.BN.Beta), len(n.BN.Mean), len(n.BN.Variance), n.BNChannels)
					break
				}
			}
		}
		if n.EpiChannels > 0 {
			if (n.EpiScale != nil || n.EpiShift != nil) &&
				(len(n.EpiScale) != n.EpiChannels || len(n.EpiShift) != n.EpiChannels) {
				c.add("params", Error, n, "epilogue arrays sized %d/%d, declared %d channels",
					len(n.EpiScale), len(n.EpiShift), n.EpiChannels)
			}
		} else if n.EpiScale != nil || n.EpiShift != nil {
			c.add("params", Error, n, "epilogue arrays present but EpiChannels is 0")
		}
		if n.Sparsity < 0 || n.Sparsity > 1 {
			c.add("params", Error, n, "sparsity %v outside [0, 1]", n.Sparsity)
		}
		if q := n.QWeights; q != nil {
			if n.WShape == nil {
				c.add("params", Error, n, "int8 weights present but WShape is nil")
			} else if !q.Shape.Equal(n.WShape) {
				c.add("params", Error, n, "int8 weights shape %v, declared %v", q.Shape, n.WShape)
			}
			if len(q.Data) != q.Shape.NumElems() {
				c.add("params", Error, n, "int8 weights hold %d values for shape %v", len(q.Data), q.Shape)
			}
			if q.Scales != nil && len(q.Shape) > 0 && len(q.Scales) != q.Shape[0] {
				c.add("params", Error, n, "int8 per-channel scales length %d, want %d", len(q.Scales), q.Shape[0])
			}
			if n.Weights == nil {
				c.add("params", Error, n, "int8 weights present without the dequantized FP32 shadow (FP32 fallback would fail)")
			}
		}
	}
}

// checkPacked verifies ahead-of-time packed weight panels against the
// node's declared weight geometry. Panels are a cached derivative of
// Weights/QWeights: a pass that rewrites the weights must clear them
// (stale panels would silently compute with the old values), so a
// shape/dimension mismatch here is always a pass bug, never benign.
func (c *checker) checkPacked() {
	for _, n := range c.g.Nodes {
		if n == nil {
			continue
		}
		if p := n.Packed; p != nil {
			if n.Kind != graph.OpConv2D || n.Attrs.GroupCount() > 1 {
				c.add("packed-shape", Error, n, "FP32 packed panels on a %s node (only ungrouped Conv2D packs)", n.Kind)
				continue
			}
			if n.Weights == nil {
				c.add("packed-shape", Error, n, "FP32 packed panels without source weights")
				continue
			}
			if !p.Shape.Equal(n.Weights.Shape) {
				c.add("packed-shape", Error, n, "packed panels built from weight shape %v, weights now %v (stale panels)", p.Shape, n.Weights.Shape)
				continue
			}
			rows := n.Weights.Shape[1] * n.Weights.Shape[2] * n.Weights.Shape[3]
			if p.K != rows || p.N != n.Weights.Shape[0] {
				c.add("packed-shape", Error, n, "packed panel dims %dx%d, want %dx%d from weights %v", p.K, p.N, rows, n.Weights.Shape[0], n.Weights.Shape)
			}
		}
		if q := n.PackedQ; q != nil {
			if n.QWeights == nil {
				c.add("packed-shape", Error, n, "int8 packed panels without int8 weights")
				continue
			}
			if !q.Shape.Equal(n.QWeights.Shape) {
				c.add("packed-shape", Error, n, "int8 packed panels built from weight shape %v, weights now %v (stale panels)", q.Shape, n.QWeights.Shape)
				continue
			}
			var rows, cout int
			switch {
			case n.Kind == graph.OpConv2D && n.Attrs.GroupCount() <= 1 && len(q.Shape) == 4:
				rows, cout = q.Shape[1]*q.Shape[2]*q.Shape[3], q.Shape[0]
			case n.Kind == graph.OpDense && len(q.Shape) == 2:
				rows, cout = q.Shape[1], q.Shape[0]
			default:
				c.add("packed-shape", Error, n, "int8 packed panels on a %s node with weight rank %d", n.Kind, len(q.Shape))
				continue
			}
			if q.K != rows || q.N != cout {
				c.add("packed-shape", Error, n, "int8 packed panel dims %dx%d, want %dx%d from weights %v", q.K, q.N, rows, cout, q.Shape)
			}
		}
	}
}

// checkLiveness reports nodes unreachable from any output as dead —
// legal to execute past, but a static framework would have eliminated
// them, so they usually indicate a broken pass or builder.
func (c *checker) checkLiveness() {
	reachable := make(map[*graph.Node]bool, len(c.g.Nodes))
	var mark func(n *graph.Node)
	mark = func(n *graph.Node) {
		if n == nil || reachable[n] {
			return
		}
		reachable[n] = true
		for _, in := range n.Inputs {
			if _, member := c.pos[in]; member {
				mark(in)
			}
		}
	}
	for _, root := range c.g.Roots() {
		if root != nil {
			if _, member := c.pos[root]; member {
				mark(root)
			}
		}
	}
	for _, n := range c.g.Nodes {
		if n != nil && !reachable[n] {
			c.add("dead-node", Warning, n, "unreachable from any graph output")
		}
	}
}
