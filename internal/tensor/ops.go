package tensor

import (
	"fmt"
	"math"
)

// ReLU applies max(0, x) elementwise in place and returns t.
func ReLU(t *Tensor) *Tensor {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
	return t
}

// ReLU6 applies min(max(0, x), 6) in place — the MobileNet activation.
func ReLU6(t *Tensor) *Tensor {
	for i, v := range t.Data {
		switch {
		case v < 0:
			t.Data[i] = 0
		case v > 6:
			t.Data[i] = 6
		}
	}
	return t
}

// LeakyReLU applies x if x>0 else alpha*x in place — the DarkNet/YOLO
// activation (alpha = 0.1 in DarkNet).
func LeakyReLU(t *Tensor, alpha float32) *Tensor {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = alpha * v
		}
	}
	return t
}

// Sigmoid applies the logistic function in place.
func Sigmoid(t *Tensor) *Tensor {
	for i, v := range t.Data {
		t.Data[i] = float32(1 / (1 + math.Exp(-float64(v))))
	}
	return t
}

// Tanh applies the hyperbolic tangent in place.
func Tanh(t *Tensor) *Tensor {
	for i, v := range t.Data {
		t.Data[i] = float32(math.Tanh(float64(v)))
	}
	return t
}

// Add computes a + b elementwise into a new tensor (residual connections).
func Add(a, b *Tensor) *Tensor {
	if !a.Shape.Equal(b.Shape) {
		panic(fmt.Sprintf("tensor: Add shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// ConcatChannels concatenates [C?, H, W] tensors along the channel axis
// (Inception branches, YOLO route layers). All inputs must share H and W.
func ConcatChannels(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: ConcatChannels needs at least one input")
	}
	h, w := ts[0].Shape[1], ts[0].Shape[2]
	totalC := 0
	for _, t := range ts {
		if len(t.Shape) != 3 || t.Shape[1] != h || t.Shape[2] != w {
			panic(fmt.Sprintf("tensor: ConcatChannels spatial mismatch: %v", t.Shape))
		}
		totalC += t.Shape[0]
	}
	out := New(totalC, h, w)
	off := 0
	for _, t := range ts {
		copy(out.Data[off:], t.Data)
		off += len(t.Data)
	}
	return out
}

// BatchNorm applies per-channel affine normalization over [C, H, W] (or
// any tensor whose first axis is channels):
//
//	y = gamma * (x - mean) / sqrt(var + eps) + beta
//
// Inference-mode BN with frozen statistics, as every framework executes it.
func BatchNorm(t *Tensor, gamma, beta, mean, variance []float32, eps float32) *Tensor {
	c := t.Shape[0]
	if len(gamma) != c || len(beta) != c || len(mean) != c || len(variance) != c {
		panic("tensor: BatchNorm parameter length mismatch")
	}
	plane := t.Shape.NumElems() / c
	out := t.Clone()
	for ic := 0; ic < c; ic++ {
		scale := gamma[ic] / float32(math.Sqrt(float64(variance[ic]+eps)))
		shift := beta[ic] - mean[ic]*scale
		seg := out.Data[ic*plane : (ic+1)*plane]
		for i, v := range seg {
			seg[i] = v*scale + shift
		}
	}
	return out
}

// FoldBatchNorm folds BN parameters into convolution weights and bias,
// returning the fused weights/bias. This is the arithmetic behind the
// conv+BN kernel-fusion optimization (Table II "Fusion" row): after
// folding, the BN op disappears from the graph.
//
// w is [Cout, ...]; bias may be nil (treated as zeros).
func FoldBatchNorm(w *Tensor, bias, gamma, beta, mean, variance []float32, eps float32) (*Tensor, []float32) {
	cout := w.Shape[0]
	if len(gamma) != cout || len(beta) != cout || len(mean) != cout || len(variance) != cout {
		panic("tensor: FoldBatchNorm parameter length mismatch")
	}
	fw := w.Clone()
	fb := make([]float32, cout)
	per := len(w.Data) / cout
	for oc := 0; oc < cout; oc++ {
		scale := gamma[oc] / float32(math.Sqrt(float64(variance[oc]+eps)))
		seg := fw.Data[oc*per : (oc+1)*per]
		for i := range seg {
			seg[i] *= scale
		}
		var b float32
		if bias != nil {
			b = bias[oc]
		}
		fb[oc] = (b-mean[oc])*scale + beta[oc]
	}
	return fw, fb
}

// Dense computes w*x + bias for a [Out, In] weight matrix and a flattened
// input vector.
func Dense(w *Tensor, bias, x []float32) []float32 {
	out := MatVec(w, x)
	if bias != nil {
		if len(bias) != len(out) {
			panic("tensor: Dense bias length mismatch")
		}
		for i := range out {
			out[i] += bias[i]
		}
	}
	return out
}

// Softmax returns the softmax of x, computed with the max-subtraction
// trick for numerical stability.
func Softmax(x []float32) []float32 {
	if len(x) == 0 {
		return nil
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	out := make([]float32, len(x))
	var sum float64
	for i, v := range x {
		e := math.Exp(float64(v - m))
		out[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// Pad2D zero-pads a [C, H, W] tensor by p on every spatial side.
func Pad2D(in *Tensor, p int) *Tensor {
	if p < 0 {
		panic("tensor: negative padding")
	}
	if p == 0 {
		return in.Clone()
	}
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	out := New(c, h+2*p, w+2*p)
	ow := w + 2*p
	for ic := 0; ic < c; ic++ {
		for iy := 0; iy < h; iy++ {
			src := in.Data[(ic*h+iy)*w : (ic*h+iy)*w+w]
			dstOff := (ic*(h+2*p)+iy+p)*ow + p
			copy(out.Data[dstOff:dstOff+w], src)
		}
	}
	return out
}
