// Package tensor implements the numerical substrate of the edgebench
// inference engine: dense tensors in NCHW layout and the convolution,
// matrix-multiplication, pooling, normalization, and activation kernels
// that CNN inference is built from.
//
// The package executes real math (it is not a mock): model correctness
// tests and engine micro-benchmarks run through these kernels. Storage is
// float32; reduced-precision datatypes (FP16, INT8) are emulated via
// explicit quantize/round-trip helpers in quant.go so framework
// optimization passes can measure their numerical effect.
package tensor

import (
	"fmt"
	"math/rand"
)

// Shape describes tensor dimensions, outermost first. CNN activations use
// [C, H, W] (single batch, the paper's edge-inference setting) and video
// tensors use [C, D, H, W].
type Shape []int

// NumElems returns the total number of elements, or 0 for an empty shape.
func (s Shape) NumElems() int {
	if len(s) == 0 {
		return 0
	}
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Equal reports whether two shapes have identical dimensions.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape { return append(Shape(nil), s...) }

// String renders the shape as a bracketed dimension list.
func (s Shape) String() string { return fmt.Sprint([]int(s)) }

// Tensor is a dense float32 tensor with row-major layout.
type Tensor struct {
	Shape Shape
	Data  []float32
}

// New allocates a zero tensor of the given shape. Dimensions must be
// positive.
func New(shape ...int) *Tensor {
	s := Shape(shape)
	for _, d := range s {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", s))
		}
	}
	return &Tensor{Shape: s.Clone(), Data: make([]float32, s.NumElems())}
}

// FromData wraps data in a tensor of the given shape. The length of data
// must match the shape's element count.
func FromData(data []float32, shape ...int) *Tensor {
	s := Shape(shape)
	if len(data) != s.NumElems() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elems)",
			len(data), s, s.NumElems()))
	}
	return &Tensor{Shape: s.Clone(), Data: data}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: t.Shape.Clone(), Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// Fill sets every element to v and returns t for chaining.
func (t *Tensor) Fill(v float32) *Tensor {
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Randomize fills t with uniform values in [-scale, scale) drawn from r,
// and returns t. Used for synthetic weights and inputs (§VI-A fn.4: random
// weights are the standard performance-evaluation proxy).
func (t *Tensor) Randomize(r *rand.Rand, scale float32) *Tensor {
	for i := range t.Data {
		t.Data[i] = (r.Float32()*2 - 1) * scale
	}
	return t
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d != shape rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Reshape returns a view of t with a new shape of equal element count.
// The returned tensor shares t's backing data.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	s := Shape(shape)
	if s.NumElems() != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, s))
	}
	return &Tensor{Shape: s.Clone(), Data: t.Data}
}

// MaxAbs returns the largest absolute element value, or 0 for an empty
// tensor. Quantization uses it to pick symmetric scales.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}
