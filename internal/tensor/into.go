package tensor

import (
	"fmt"
	"math"
)

// This file holds the destination-passing variants of the pointwise and
// pooling kernels. Every *Into function overwrites all of dst — never
// read-modify-write — so destinations may come from a tensor.Pool whose
// buffers carry stale values from earlier inferences.

func checkSameShape(op string, dst *Tensor, shape Shape) {
	if !dst.Shape.Equal(shape) {
		panic(fmt.Sprintf("tensor: %s dst shape %v, want %v", op, dst.Shape, shape))
	}
}

// AddInto computes dst = a + b elementwise; dst must match both shapes.
func AddInto(dst, a, b *Tensor) {
	if !a.Shape.Equal(b.Shape) {
		panic(fmt.Sprintf("tensor: Add shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	checkSameShape("Add", dst, a.Shape)
	bd := b.Data
	for i, v := range a.Data {
		dst.Data[i] = v + bd[i]
	}
}

// ActivationInto copies src into dst applying the activation f elementwise.
func activationInto(dst, src *Tensor, f func(float32) float32) {
	checkSameShape("activation", dst, src.Shape)
	for i, v := range src.Data {
		dst.Data[i] = f(v)
	}
}

// ReLUInto writes max(0, src) into dst.
func ReLUInto(dst, src *Tensor) {
	activationInto(dst, src, func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
}

// ReLU6Into writes min(max(0, src), 6) into dst.
func ReLU6Into(dst, src *Tensor) {
	activationInto(dst, src, func(v float32) float32 {
		if v < 0 {
			return 0
		}
		if v > 6 {
			return 6
		}
		return v
	})
}

// LeakyReLUInto writes x if x>0 else alpha*x into dst.
func LeakyReLUInto(dst, src *Tensor, alpha float32) {
	activationInto(dst, src, func(v float32) float32 {
		if v < 0 {
			return alpha * v
		}
		return v
	})
}

// SigmoidInto writes the logistic function of src into dst.
func SigmoidInto(dst, src *Tensor) {
	activationInto(dst, src, func(v float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(v))))
	})
}

// TanhInto writes the hyperbolic tangent of src into dst.
func TanhInto(dst, src *Tensor) {
	activationInto(dst, src, func(v float32) float32 {
		return float32(math.Tanh(float64(v)))
	})
}

// ConcatChannelsInto concatenates [C?, H, W] tensors along channels into
// dst, which must have the summed channel count.
func ConcatChannelsInto(dst *Tensor, ts ...*Tensor) {
	if len(ts) == 0 {
		panic("tensor: ConcatChannels needs at least one input")
	}
	h, w := ts[0].Shape[1], ts[0].Shape[2]
	totalC := 0
	for _, t := range ts {
		if len(t.Shape) != 3 || t.Shape[1] != h || t.Shape[2] != w {
			panic(fmt.Sprintf("tensor: ConcatChannels spatial mismatch: %v", t.Shape))
		}
		totalC += t.Shape[0]
	}
	checkSameShape("ConcatChannels", dst, Shape{totalC, h, w})
	off := 0
	for _, t := range ts {
		copy(dst.Data[off:], t.Data)
		off += len(t.Data)
	}
}

// BatchNormInto applies inference-mode per-channel affine normalization
// of src into dst (see BatchNorm).
func BatchNormInto(dst, src *Tensor, gamma, beta, mean, variance []float32, eps float32) {
	c := src.Shape[0]
	if len(gamma) != c || len(beta) != c || len(mean) != c || len(variance) != c {
		panic("tensor: BatchNorm parameter length mismatch")
	}
	checkSameShape("BatchNorm", dst, src.Shape)
	plane := src.Shape.NumElems() / c
	for ic := 0; ic < c; ic++ {
		scale := gamma[ic] / float32(math.Sqrt(float64(variance[ic]+eps)))
		shift := beta[ic] - mean[ic]*scale
		in := src.Data[ic*plane : (ic+1)*plane]
		out := dst.Data[ic*plane : (ic+1)*plane]
		for i, v := range in {
			out[i] = v*scale + shift
		}
	}
}

// DenseInto computes dst = w*x + bias for a [Out, In] weight matrix,
// overwriting all of dst (length Out).
func DenseInto(dst []float32, w *Tensor, bias, x []float32) {
	if len(w.Shape) != 2 || w.Shape[1] != len(x) {
		panic(fmt.Sprintf("tensor: Dense shape mismatch: %v x vec(%d)", w.Shape, len(x)))
	}
	m, k := w.Shape[0], w.Shape[1]
	if len(dst) != m {
		panic("tensor: Dense dst length mismatch")
	}
	if bias != nil && len(bias) != m {
		panic("tensor: Dense bias length mismatch")
	}
	matVecInto(dst, w.Data, x, m, k)
	if bias != nil {
		for i := range dst {
			dst[i] += bias[i]
		}
	}
}

// SoftmaxInto writes the softmax of x into dst (same length), using the
// max-subtraction trick for numerical stability.
func SoftmaxInto(dst, x []float32) {
	if len(dst) != len(x) {
		panic("tensor: Softmax dst length mismatch")
	}
	if len(x) == 0 {
		return
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(float64(v - m))
		dst[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range dst {
		dst[i] *= inv
	}
}

// Pad2DInto zero-pads src by p on every spatial side into dst of shape
// [C, H+2p, W+2p], writing the border zeros explicitly.
func Pad2DInto(dst, src *Tensor, p int) {
	if p < 0 {
		panic("tensor: negative padding")
	}
	c, h, w := src.Shape[0], src.Shape[1], src.Shape[2]
	checkSameShape("Pad2D", dst, Shape{c, h + 2*p, w + 2*p})
	if p == 0 {
		copy(dst.Data, src.Data)
		return
	}
	clear(dst.Data)
	ow := w + 2*p
	for ic := 0; ic < c; ic++ {
		for iy := 0; iy < h; iy++ {
			srow := src.Data[(ic*h+iy)*w : (ic*h+iy)*w+w]
			dstOff := (ic*(h+2*p)+iy+p)*ow + p
			copy(dst.Data[dstOff:dstOff+w], srow)
		}
	}
}

// MaxPool2DInto applies max pooling of src into dst of shape
// [C, Hout, Wout]. Padded positions never win the max.
func MaxPool2DInto(dst, src *Tensor, spec PoolSpec) {
	spec = spec.check()
	c, h, w := src.Shape[0], src.Shape[1], src.Shape[2]
	hout, wout := spec.OutDim(h), spec.OutDim(w)
	checkSameShape("MaxPool2D", dst, Shape{c, hout, wout})
	for ic := 0; ic < c; ic++ {
		for oy := 0; oy < hout; oy++ {
			for ox := 0; ox < wout; ox++ {
				m := negInf
				for ky := 0; ky < spec.Kernel; ky++ {
					iy := oy*spec.Stride + ky - spec.Pad
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < spec.Kernel; kx++ {
						ix := ox*spec.Stride + kx - spec.Pad
						if ix < 0 || ix >= w {
							continue
						}
						if v := src.Data[(ic*h+iy)*w+ix]; v > m {
							m = v
						}
					}
				}
				dst.Data[(ic*hout+oy)*wout+ox] = m
			}
		}
	}
}

// AvgPool2DInto applies average pooling of src into dst of shape
// [C, Hout, Wout] (count_exclude_pad divisor). Windows with no in-bounds
// positions are written as zero explicitly.
func AvgPool2DInto(dst, src *Tensor, spec PoolSpec) {
	spec = spec.check()
	c, h, w := src.Shape[0], src.Shape[1], src.Shape[2]
	hout, wout := spec.OutDim(h), spec.OutDim(w)
	checkSameShape("AvgPool2D", dst, Shape{c, hout, wout})
	for ic := 0; ic < c; ic++ {
		for oy := 0; oy < hout; oy++ {
			for ox := 0; ox < wout; ox++ {
				var sum float32
				var n int
				for ky := 0; ky < spec.Kernel; ky++ {
					iy := oy*spec.Stride + ky - spec.Pad
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < spec.Kernel; kx++ {
						ix := ox*spec.Stride + kx - spec.Pad
						if ix < 0 || ix >= w {
							continue
						}
						sum += src.Data[(ic*h+iy)*w+ix]
						n++
					}
				}
				var v float32
				if n > 0 {
					v = sum / float32(n)
				}
				dst.Data[(ic*hout+oy)*wout+ox] = v
			}
		}
	}
}

// GlobalAvgPool2DInto writes per-channel means of a [C, H, W] src into
// dst (length C).
func GlobalAvgPool2DInto(dst []float32, src *Tensor) {
	c, h, w := src.Shape[0], src.Shape[1], src.Shape[2]
	if len(dst) != c {
		panic("tensor: GlobalAvgPool2D dst length mismatch")
	}
	plane := h * w
	for ic := 0; ic < c; ic++ {
		var sum float32
		for _, v := range src.Data[ic*plane : (ic+1)*plane] {
			sum += v
		}
		dst[ic] = sum / float32(plane)
	}
}

// UpsampleNearest2DInto scales src spatially by integer factor into dst
// of shape [C, H*factor, W*factor] using nearest-neighbor replication.
func UpsampleNearest2DInto(dst, src *Tensor, factor int) {
	if factor < 1 {
		panic(fmt.Sprintf("tensor: upsample factor %d < 1", factor))
	}
	c, h, w := src.Shape[0], src.Shape[1], src.Shape[2]
	oh, ow := h*factor, w*factor
	checkSameShape("UpsampleNearest2D", dst, Shape{c, oh, ow})
	if factor == 1 {
		copy(dst.Data, src.Data)
		return
	}
	for ic := 0; ic < c; ic++ {
		for oy := 0; oy < oh; oy++ {
			srow := src.Data[(ic*h+oy/factor)*w : (ic*h+oy/factor+1)*w]
			drow := dst.Data[(ic*oh+oy)*ow : (ic*oh+oy+1)*ow]
			for ox := 0; ox < ow; ox++ {
				drow[ox] = srow[ox/factor]
			}
		}
	}
}

// ShuffleChannelsInto permutes src's channels across groups into dst
// (ShuffleNet interleave; see ShuffleChannels).
func ShuffleChannelsInto(dst, src *Tensor, groups int) {
	c := src.Shape[0]
	checkSameShape("ShuffleChannels", dst, src.Shape)
	if groups <= 1 {
		copy(dst.Data, src.Data)
		return
	}
	if c%groups != 0 {
		panic(fmt.Sprintf("tensor: shuffle groups %d do not divide channels %d", groups, c))
	}
	plane := src.Shape.NumElems() / c
	per := c / groups
	for i := 0; i < c; i++ {
		d := (i%groups)*per + i/groups
		copy(dst.Data[d*plane:(d+1)*plane], src.Data[i*plane:(i+1)*plane])
	}
}
