package tensor

import "fmt"

// UpsampleNearest2D scales a [C, H, W] tensor spatially by integer factor
// using nearest-neighbor replication — the route-layer upsampling YOLOv3
// uses to merge coarse and fine feature maps.
func UpsampleNearest2D(in *Tensor, factor int) *Tensor {
	if factor < 1 {
		panic(fmt.Sprintf("tensor: upsample factor %d < 1", factor))
	}
	if factor == 1 {
		return in.Clone()
	}
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	oh, ow := h*factor, w*factor
	out := New(c, oh, ow)
	for ic := 0; ic < c; ic++ {
		for oy := 0; oy < oh; oy++ {
			src := in.Data[(ic*h+oy/factor)*w : (ic*h+oy/factor+1)*w]
			dst := out.Data[(ic*oh+oy)*ow : (ic*oh+oy+1)*ow]
			for ox := 0; ox < ow; ox++ {
				dst[ox] = src[ox/factor]
			}
		}
	}
	return out
}

// ShuffleChannels permutes a [C, H, W] tensor's channels across groups
// (ShuffleNet): channel i moves to position (i%g)*(C/g) + i/g, which
// interleaves the groups so the next grouped convolution sees features
// from every group.
func ShuffleChannels(in *Tensor, groups int) *Tensor {
	c := in.Shape[0]
	if groups <= 1 {
		return in.Clone()
	}
	if c%groups != 0 {
		panic(fmt.Sprintf("tensor: shuffle groups %d do not divide channels %d", groups, c))
	}
	plane := in.Shape.NumElems() / c
	out := New(in.Shape...)
	per := c / groups
	for i := 0; i < c; i++ {
		dst := (i%groups)*per + i/groups
		copy(out.Data[dst*plane:(dst+1)*plane], in.Data[i*plane:(i+1)*plane])
	}
	return out
}

// Pool3DSpec describes 3-D max pooling with independent temporal and
// spatial kernels/strides and optional spatial padding — C3D's pool1 is
// (1,2,2) while its deeper pools are (2,2,2), and pool5 uses spatial
// padding to keep a 4x4 map.
type Pool3DSpec struct {
	KernelD, Kernel int
	StrideD, Stride int
	PadSpatial      int
}

func (s Pool3DSpec) check() Pool3DSpec {
	if s.Kernel <= 0 || s.KernelD <= 0 {
		panic("tensor: pool3d kernels must be positive")
	}
	if s.Stride <= 0 {
		s.Stride = s.Kernel
	}
	if s.StrideD <= 0 {
		s.StrideD = s.KernelD
	}
	if s.PadSpatial < 0 {
		panic("tensor: negative pool3d padding")
	}
	return s
}

// OutDims returns the pooled [D, H, W] dimensions.
func (s Pool3DSpec) OutDims(d, h, w int) (int, int, int) {
	s = s.check()
	od := (d-s.KernelD)/s.StrideD + 1
	oh := (h+2*s.PadSpatial-s.Kernel)/s.Stride + 1
	ow := (w+2*s.PadSpatial-s.Kernel)/s.Stride + 1
	if od <= 0 || oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("tensor: pool3d output %dx%dx%d <= 0", od, oh, ow))
	}
	return od, oh, ow
}

// MaxPool3DSpec applies asymmetric 3-D max pooling over [C, D, H, W].
// Padded spatial positions never win the max.
func MaxPool3DSpec(in *Tensor, spec Pool3DSpec) *Tensor {
	spec = spec.check()
	c, d, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	od, oh, ow := spec.OutDims(d, h, w)
	out := New(c, od, oh, ow)
	for ic := 0; ic < c; ic++ {
		for z := 0; z < od; z++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					m := negInf
					for kz := 0; kz < spec.KernelD; kz++ {
						iz := z*spec.StrideD + kz
						if iz >= d {
							continue
						}
						for ky := 0; ky < spec.Kernel; ky++ {
							iy := oy*spec.Stride + ky - spec.PadSpatial
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < spec.Kernel; kx++ {
								ix := ox*spec.Stride + kx - spec.PadSpatial
								if ix < 0 || ix >= w {
									continue
								}
								if v := in.Data[((ic*d+iz)*h+iy)*w+ix]; v > m {
									m = v
								}
							}
						}
					}
					out.Data[((ic*od+z)*oh+oy)*ow+ox] = m
				}
			}
		}
	}
	return out
}
