package tensor

import "fmt"

// Conv3DSpec describes a 3-D convolution over [C, D, H, W] video tensors
// (the C3D model's building block). A single stride/pad applies to all
// three spatial-temporal dimensions, matching C3D's homogeneous 3x3x3
// architecture.
type Conv3DSpec struct {
	Stride int
	Pad    int
}

func (s Conv3DSpec) check() Conv3DSpec {
	if s.Stride <= 0 {
		s.Stride = 1
	}
	if s.Pad < 0 {
		panic("tensor: negative conv3d padding")
	}
	return s
}

// OutDim returns the output size for an input dimension of size in with
// kernel size k.
func (s Conv3DSpec) OutDim(in, k int) int {
	s = s.check()
	out := (in+2*s.Pad-k)/s.Stride + 1
	if out <= 0 {
		panic(fmt.Sprintf("tensor: conv3d output dim %d <= 0", out))
	}
	return out
}

// Conv3D computes a direct 3-D convolution. Input is [Cin, D, H, W],
// weights are [Cout, Cin, KD, KH, KW]; bias may be nil.
func Conv3D(in, w *Tensor, bias []float32, spec Conv3DSpec) *Tensor {
	spec = spec.check()
	cin, d, h, wd := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	cout, wcin, kd, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3], w.Shape[4]
	if cin != wcin {
		panic(fmt.Sprintf("tensor: Conv3D channel mismatch: %v vs %v", in.Shape, w.Shape))
	}
	if bias != nil && len(bias) != cout {
		panic("tensor: Conv3D bias length mismatch")
	}
	dout := spec.OutDim(d, kd)
	hout := spec.OutDim(h, kh)
	wout := spec.OutDim(wd, kw)
	out := New(cout, dout, hout, wout)
	for oc := 0; oc < cout; oc++ {
		var b float32
		if bias != nil {
			b = bias[oc]
		}
		for od := 0; od < dout; od++ {
			for oy := 0; oy < hout; oy++ {
				for ox := 0; ox < wout; ox++ {
					sum := b
					for ic := 0; ic < cin; ic++ {
						for kz := 0; kz < kd; kz++ {
							iz := od*spec.Stride + kz - spec.Pad
							if iz < 0 || iz >= d {
								continue
							}
							for ky := 0; ky < kh; ky++ {
								iy := oy*spec.Stride + ky - spec.Pad
								if iy < 0 || iy >= h {
									continue
								}
								for kx := 0; kx < kw; kx++ {
									ix := ox*spec.Stride + kx - spec.Pad
									if ix < 0 || ix >= wd {
										continue
									}
									sum += in.Data[((ic*d+iz)*h+iy)*wd+ix] *
										w.Data[(((oc*cin+ic)*kd+kz)*kh+ky)*kw+kx]
								}
							}
						}
					}
					out.Data[((oc*dout+od)*hout+oy)*wout+ox] = sum
				}
			}
		}
	}
	return out
}

// MaxPool3D applies kxkxk max pooling with the given stride over
// [C, D, H, W]. C3D uses 2x2x2 pooling (1x2x2 for the first layer, which
// callers express by pre-slicing; the cost model handles the exact shape).
func MaxPool3D(in *Tensor, k, stride int) *Tensor {
	if stride <= 0 {
		stride = k
	}
	c, d, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	dout := (d-k)/stride + 1
	hout := (h-k)/stride + 1
	wout := (w-k)/stride + 1
	if dout <= 0 || hout <= 0 || wout <= 0 {
		panic("tensor: MaxPool3D output dim <= 0")
	}
	out := New(c, dout, hout, wout)
	for ic := 0; ic < c; ic++ {
		for od := 0; od < dout; od++ {
			for oy := 0; oy < hout; oy++ {
				for ox := 0; ox < wout; ox++ {
					m := float32(negInf)
					for kz := 0; kz < k; kz++ {
						for ky := 0; ky < k; ky++ {
							for kx := 0; kx < k; kx++ {
								v := in.Data[((ic*d+od*stride+kz)*h+oy*stride+ky)*w+ox*stride+kx]
								if v > m {
									m = v
								}
							}
						}
					}
					out.Data[((ic*dout+od)*hout+oy)*wout+ox] = m
				}
			}
		}
	}
	return out
}
