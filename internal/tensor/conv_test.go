package tensor

import (
	"testing"
	"testing/quick"

	"edgebench/internal/stats"
)

func TestMatMulSmall(t *testing.T) {
	a := FromData([]float32{1, 2, 3, 4}, 2, 2)
	b := FromData([]float32{5, 6, 7, 8}, 2, 2)
	c := MatMul(a, b)
	want := []float32{19, 22, 43, 50}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched inner dims should panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestMatVec(t *testing.T) {
	a := FromData([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	got := MatVec(a, []float32{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MatVec = %v", got)
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	in := FromData([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 3, 3)
	w := FromData([]float32{1}, 1, 1, 1, 1) // 1x1 identity
	out := Conv2D(in, w, nil, Conv2DSpec{Stride: 1})
	if !out.Shape.Equal(Shape{1, 3, 3}) {
		t.Fatalf("shape = %v", out.Shape)
	}
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Fatal("1x1 identity conv should copy input")
		}
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 3x3 input, 2x2 kernel of ones, stride 1, no pad -> 2x2 box sums.
	in := FromData([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 3, 3)
	w := New(1, 1, 2, 2).Fill(1)
	out := Conv2D(in, w, []float32{10}, Conv2DSpec{})
	want := []float32{12 + 10, 16 + 10, 24 + 10, 28 + 10}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("out[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
}

func TestConv2DPaddingAndStride(t *testing.T) {
	in := New(1, 4, 4).Fill(1)
	w := New(1, 1, 3, 3).Fill(1)
	out := Conv2D(in, w, nil, Conv2DSpec{Stride: 2, Pad: 1})
	if !out.Shape.Equal(Shape{1, 2, 2}) {
		t.Fatalf("shape = %v", out.Shape)
	}
	// Corner at (0,0) covers a 2x2 in-bounds region.
	if out.At(0, 0, 0) != 4 {
		t.Fatalf("corner = %v, want 4", out.At(0, 0, 0))
	}
}

func TestConv2DChannelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("channel mismatch should panic")
		}
	}()
	Conv2D(New(2, 3, 3), New(1, 3, 1, 1), nil, Conv2DSpec{})
}

// Property: GEMM-lowered convolution equals direct convolution.
func TestConvGEMMEquivalenceProperty(t *testing.T) {
	r := stats.NewRNG(42)
	f := func(seed int64) bool {
		cin := 1 + int(seed&3)
		cout := 1 + int(seed>>2&3)
		h := 5 + int(seed>>4&3)
		k := 1 + int(seed>>6&1)*2 // 1 or 3
		stride := 1 + int(seed>>7&1)
		pad := int(seed >> 8 & 1)
		if h+2*pad < k {
			return true
		}
		in := New(cin, h, h).Randomize(r, 1)
		w := New(cout, cin, k, k).Randomize(r, 1)
		bias := make([]float32, cout)
		for i := range bias {
			bias[i] = r.Float32()
		}
		spec := Conv2DSpec{Stride: stride, Pad: pad}
		a := Conv2D(in, w, bias, spec)
		b := Conv2DGEMM(in, w, bias, spec)
		if !a.Shape.Equal(b.Shape) {
			return false
		}
		for i := range a.Data {
			if !almostEq32(a.Data[i], b.Data[i], 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColShape(t *testing.T) {
	in := New(3, 8, 8)
	cols := Im2Col(in, 3, 3, Conv2DSpec{Stride: 1, Pad: 1})
	if !cols.Shape.Equal(Shape{3 * 9, 64}) {
		t.Fatalf("im2col shape = %v", cols.Shape)
	}
}

func TestDepthwiseConv2D(t *testing.T) {
	// Two channels, each with its own 2x2 ones kernel; channels stay apart.
	in := New(2, 3, 3)
	for i := range in.Data[:9] {
		in.Data[i] = 1
	}
	for i := range in.Data[9:] {
		in.Data[9+i] = 2
	}
	w := New(2, 2, 2).Fill(1)
	out := DepthwiseConv2D(in, w, []float32{0, 1}, Conv2DSpec{})
	if !out.Shape.Equal(Shape{2, 2, 2}) {
		t.Fatalf("shape = %v", out.Shape)
	}
	if out.At(0, 0, 0) != 4 {
		t.Fatalf("ch0 = %v, want 4", out.At(0, 0, 0))
	}
	if out.At(1, 0, 0) != 9 {
		t.Fatalf("ch1 = %v, want 8+1", out.At(1, 0, 0))
	}
}

func TestDepthwiseMatchesGroupedDirect(t *testing.T) {
	// Depthwise conv == per-channel direct conv with Cin=1.
	r := stats.NewRNG(7)
	in := New(4, 6, 6).Randomize(r, 1)
	w := New(4, 3, 3).Randomize(r, 1)
	spec := Conv2DSpec{Stride: 1, Pad: 1}
	dw := DepthwiseConv2D(in, w, nil, spec)
	for c := 0; c < 4; c++ {
		chIn := FromData(in.Data[c*36:(c+1)*36], 1, 6, 6)
		chW := FromData(w.Data[c*9:(c+1)*9], 1, 1, 3, 3)
		ref := Conv2D(chIn, chW, nil, spec)
		for i := range ref.Data {
			if !almostEq32(ref.Data[i], dw.Data[c*36+i], 1e-5) {
				t.Fatalf("channel %d diverges at %d", c, i)
			}
		}
	}
}

func TestConv3DKnownValues(t *testing.T) {
	in := New(1, 2, 2, 2).Fill(1)
	w := New(1, 1, 2, 2, 2).Fill(1)
	out := Conv3D(in, w, []float32{0.5}, Conv3DSpec{})
	if !out.Shape.Equal(Shape{1, 1, 1, 1}) {
		t.Fatalf("shape = %v", out.Shape)
	}
	if out.Data[0] != 8.5 {
		t.Fatalf("value = %v, want 8.5", out.Data[0])
	}
}

func TestConv3DPadding(t *testing.T) {
	in := New(1, 2, 2, 2).Fill(1)
	w := New(2, 1, 3, 3, 3).Fill(1)
	out := Conv3D(in, w, nil, Conv3DSpec{Pad: 1})
	if !out.Shape.Equal(Shape{2, 2, 2, 2}) {
		t.Fatalf("shape = %v", out.Shape)
	}
	if out.Data[0] != 8 { // all 8 in-bounds ones
		t.Fatalf("value = %v, want 8", out.Data[0])
	}
}

func TestMaxPool3D(t *testing.T) {
	in := New(1, 2, 2, 2)
	in.Data[7] = 5
	out := MaxPool3D(in, 2, 2)
	if !out.Shape.Equal(Shape{1, 1, 1, 1}) || out.Data[0] != 5 {
		t.Fatalf("MaxPool3D = %v %v", out.Shape, out.Data)
	}
}

func TestConvSpecOutDim(t *testing.T) {
	s := Conv2DSpec{Stride: 2, Pad: 1}
	if got := s.OutDim(224, 3); got != 112 {
		t.Fatalf("OutDim = %d, want 112", got)
	}
	if got := (Conv2DSpec{}).OutDim(5, 3); got != 3 {
		t.Fatalf("default stride OutDim = %d, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("degenerate output should panic")
		}
	}()
	(Conv2DSpec{}).OutDim(2, 5)
}
