package tensor

import (
	"math"
	"testing"
)

// The fused FP32 kernels' contract is bitwise equivalence: a fused
// Conv→BN→act call must produce the exact float32 outputs of the
// separate kernels applied in sequence. These tests pin that contract
// kernel by kernel — any drift (reassociated affine, fused-multiply
// shortcuts, different activation expressions) fails on the first
// differing bit, which is what lets the O2 pattern-fusion pass claim
// bit-identical execution.

// fillPseudo fills data with a deterministic mixed-sign pattern that
// exercises both activation branches.
func fillPseudo(data []float32, seed int) {
	for i := range data {
		data[i] = float32((i*2654435761+seed)%97)/13 - 3.5
	}
}

// bnEpilogue precomputes the per-channel affine with the exact
// scale/shift expressions BatchNormInto uses (the same expressions the
// pattern-fusion pass uses when absorbing a BN node).
func bnEpilogue(c int, seed int) (gamma, beta, mean, variance []float32, eps float32, epi Epilogue) {
	gamma = make([]float32, c)
	beta = make([]float32, c)
	mean = make([]float32, c)
	variance = make([]float32, c)
	eps = 1e-5
	for ic := 0; ic < c; ic++ {
		gamma[ic] = 0.5 + float32((ic+seed)%7)/4
		beta[ic] = float32(ic%5)/3 - 0.6
		mean[ic] = float32((ic*3+seed)%9)/5 - 0.8
		variance[ic] = 0.3 + float32(ic%4)/6
	}
	scale := make([]float32, c)
	shift := make([]float32, c)
	for ic := 0; ic < c; ic++ {
		s := gamma[ic] / float32(math.Sqrt(float64(variance[ic]+eps)))
		scale[ic] = s
		shift[ic] = beta[ic] - mean[ic]*s
	}
	epi = Epilogue{Scale: scale, Shift: shift}
	return
}

func assertBitEqual(t *testing.T, got, want *Tensor, what string) {
	t.Helper()
	if !got.Shape.Equal(want.Shape) {
		t.Fatalf("%s: shape %v, want %v", what, got.Shape, want.Shape)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: out[%d] = %v, want %v (bitwise mismatch)", what, i, got.Data[i], want.Data[i])
		}
	}
}

func TestConv2DFusedBitEquivalence(t *testing.T) {
	in := New(3, 9, 9)
	w := New(6, 3, 3, 3)
	fillPseudo(in.Data, 1)
	fillPseudo(w.Data, 2)
	bias := make([]float32, 6)
	fillPseudo(bias, 3)
	spec := Conv2DSpec{Stride: 1, Pad: 1}
	gamma, beta, mean, variance, eps, epi := bnEpilogue(6, 4)

	for _, act := range []Act{ActNone, ActReLU, ActReLU6, ActLeakyReLU, ActSigmoid, ActTanh} {
		// Unfused chain: conv kernel, then the standalone BN kernel, then
		// the standalone activation kernel.
		want := New(6, 9, 9)
		Conv2DAutoInto(want, in, w, bias, spec)
		BatchNormInto(want, want, gamma, beta, mean, variance, eps)
		applySeparateAct(want, act, 0.1)

		e := epi
		e.Act = act
		e.Alpha = 0.1
		got := New(6, 9, 9)
		Conv2DFusedInto(got, in, w, bias, spec, e)
		assertBitEqual(t, got, want, "Conv2DFusedInto/"+actName(act))
	}
}

func TestConv2DGEMMFusedBitEquivalence(t *testing.T) {
	in := New(4, 8, 8)
	w := New(5, 4, 3, 3)
	fillPseudo(in.Data, 5)
	fillPseudo(w.Data, 6)
	bias := make([]float32, 5)
	fillPseudo(bias, 7)
	spec := Conv2DSpec{Stride: 1, Pad: 1}
	gamma, beta, mean, variance, eps, epi := bnEpilogue(5, 8)

	want := New(5, 8, 8)
	Conv2DGEMMInto(want, in, w, bias, spec, nil)
	BatchNormInto(want, want, gamma, beta, mean, variance, eps)
	ReLUInto(want, want)

	e := epi
	e.Act = ActReLU
	scratch := NewPool()
	got := New(5, 8, 8)
	Conv2DGEMMFusedInto(got, in, w, bias, spec, scratch, e)
	assertBitEqual(t, got, want, "Conv2DGEMMFusedInto")

	// Second call through the warmed scratch pool must be identical too.
	got2 := New(5, 8, 8)
	Conv2DGEMMFusedInto(got2, in, w, bias, spec, scratch, e)
	assertBitEqual(t, got2, want, "Conv2DGEMMFusedInto (pooled)")
}

func TestDepthwiseConv2DFusedBitEquivalence(t *testing.T) {
	in := New(4, 7, 7)
	w := New(4, 3, 3) // depthwise weights are [C, KH, KW]
	fillPseudo(in.Data, 9)
	fillPseudo(w.Data, 10)
	spec := Conv2DSpec{Stride: 1, Pad: 1}
	gamma, beta, mean, variance, eps, epi := bnEpilogue(4, 11)

	want := New(4, 7, 7)
	DepthwiseConv2DInto(want, in, w, nil, spec)
	BatchNormInto(want, want, gamma, beta, mean, variance, eps)
	ReLU6Into(want, want)

	e := epi
	e.Act = ActReLU6
	got := New(4, 7, 7)
	DepthwiseConv2DFusedInto(got, in, w, nil, spec, e)
	assertBitEqual(t, got, want, "DepthwiseConv2DFusedInto")
}

func TestDenseFusedBitEquivalence(t *testing.T) {
	w := New(6, 10)
	x := make([]float32, 10)
	bias := make([]float32, 6)
	fillPseudo(w.Data, 12)
	fillPseudo(x, 13)
	fillPseudo(bias, 14)
	gamma, beta, mean, variance, eps, epi := bnEpilogue(6, 15)

	// A rank-1 output's "channels" are its elements: the affine runs per
	// output neuron, exactly like a BN node after a Dense node.
	want := New(6)
	DenseInto(want.Data, w, bias, x)
	BatchNormInto(want, want, gamma, beta, mean, variance, eps)
	SigmoidInto(want, want)

	e := epi
	e.Act = ActSigmoid
	got := New(6)
	DenseFusedInto(got, w, bias, x, e)
	assertBitEqual(t, got, want, "DenseFusedInto")
}

func TestAddFusedBitEquivalence(t *testing.T) {
	a, b := New(3, 5, 5), New(3, 5, 5)
	fillPseudo(a.Data, 16)
	fillPseudo(b.Data, 17)

	want := New(3, 5, 5)
	AddInto(want, a, b)
	LeakyReLUInto(want, want, 0.2)

	got := New(3, 5, 5)
	AddFusedInto(got, a, b, Epilogue{Act: ActLeakyReLU, Alpha: 0.2})
	assertBitEqual(t, got, want, "AddFusedInto")
}

func TestEpilogueEmptyIsNoOp(t *testing.T) {
	var e Epilogue
	if !e.Empty() {
		t.Fatal("zero Epilogue should be empty")
	}
	d := New(2, 3)
	fillPseudo(d.Data, 18)
	ref := d.Clone()
	e.ApplyInto(d)
	assertBitEqual(t, d, ref, "empty ApplyInto")
	if (Epilogue{Scale: []float32{1}, Shift: []float32{0}}).Empty() {
		t.Fatal("epilogue with an affine is not empty")
	}
	if (Epilogue{Act: ActReLU}).Empty() {
		t.Fatal("epilogue with an activation is not empty")
	}
}

func TestEpilogueRejectsMismatchedChannels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for channels not dividing elements")
		}
	}()
	e := Epilogue{Scale: make([]float32, 4), Shift: make([]float32, 4)}
	e.ApplyInto(New(3, 5)) // 15 elements, 4 channels
}

// applySeparateAct applies the standalone activation kernel matching
// act — the unfused reference path.
func applySeparateAct(tns *Tensor, act Act, alpha float32) {
	switch act {
	case ActReLU:
		ReLUInto(tns, tns)
	case ActReLU6:
		ReLU6Into(tns, tns)
	case ActLeakyReLU:
		LeakyReLUInto(tns, tns, alpha)
	case ActSigmoid:
		SigmoidInto(tns, tns)
	case ActTanh:
		TanhInto(tns, tns)
	}
}

func actName(a Act) string {
	switch a {
	case ActReLU:
		return "relu"
	case ActReLU6:
		return "relu6"
	case ActLeakyReLU:
		return "leaky"
	case ActSigmoid:
		return "sigmoid"
	case ActTanh:
		return "tanh"
	}
	return "none"
}

// TestFoldedEpilogueParallelPath pins bit-equivalence of the fused
// kernels above the parallel MAC threshold, where the folded epilogue
// runs inside worker-pool shards: folded output must equal the explicit
// compute-then-ApplyInto two-sweep sequence exactly.
func TestFoldedEpilogueParallelPath(t *testing.T) {
	t.Run("conv", func(t *testing.T) {
		in := New(16, 32, 32)
		w := New(24, 16, 3, 3)
		fillPseudo(in.Data, 5)
		fillPseudo(w.Data, 6)
		bias := make([]float32, 24)
		fillPseudo(bias, 7)
		spec := Conv2DSpec{Stride: 1, Pad: 1}
		if ConvMACs(w, 32, 32) < ParallelThresholdMACs() {
			t.Fatal("test layer too small to hit the parallel path")
		}
		_, _, _, _, _, epi := bnEpilogue(24, 8)
		epi.Act = ActReLU6
		want := New(24, 32, 32)
		Conv2DAutoInto(want, in, w, bias, spec)
		epi.ApplyInto(want)
		got := New(24, 32, 32)
		Conv2DFusedInto(got, in, w, bias, spec, epi)
		assertBitEqual(t, got, want, "parallel folded conv")
	})
	t.Run("depthwise", func(t *testing.T) {
		c, hw := 64, 160
		in := New(c, hw, hw)
		w := New(c, 3, 3)
		fillPseudo(in.Data, 9)
		fillPseudo(w.Data, 10)
		bias := make([]float32, c)
		fillPseudo(bias, 11)
		spec := Conv2DSpec{Stride: 1, Pad: 1}
		if c*hw*3*3*hw < ParallelThresholdMACs() {
			t.Fatal("test layer too small to hit the parallel path")
		}
		_, _, _, _, _, epi := bnEpilogue(c, 12)
		epi.Act = ActLeakyReLU
		epi.Alpha = 0.1
		want := New(c, hw, hw)
		DepthwiseConv2DInto(want, in, w, bias, spec)
		epi.ApplyInto(want)
		got := New(c, hw, hw)
		DepthwiseConv2DFusedInto(got, in, w, bias, spec, epi)
		assertBitEqual(t, got, want, "parallel folded depthwise")
	})
}

// TestFoldedEpilogueChannelMismatchPanics pins the guard the row-folded
// paths depend on: an affine epilogue sized differently from the output
// channel count must panic, not silently mis-index.
func TestFoldedEpilogueChannelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched epilogue channels should panic")
		}
	}()
	in := New(2, 5, 5)
	w := New(3, 2, 3, 3)
	dst := New(3, 5, 5)
	Conv2DFusedInto(dst, in, w, nil, Conv2DSpec{Stride: 1, Pad: 1},
		Epilogue{Scale: make([]float32, 2), Shift: make([]float32, 2)})
}
