package tensor

import "fmt"

// Conv2DSpec describes a 2-D convolution. Input is [Cin, H, W], weights
// are [Cout, Cin, KH, KW] (rectangular kernels allowed), output is
// [Cout, Hout, Wout] with Hout = (H + 2*padH - KH)/Stride + 1 (and
// likewise for width). Pad applies to both axes; PadH/PadW override it
// per axis when >= 0 and set (used by Inception's 1x7/7x1 factorized
// convolutions).
type Conv2DSpec struct {
	Stride int
	Pad    int
	// PadH/PadW, when either is non-zero, replace Pad per axis. Use
	// Conv2DSpec{PadH: n, PadW: 0} semantics via the Asym flag below.
	PadH, PadW int
	// Asym marks PadH/PadW as authoritative even when zero.
	Asym bool
}

func (s Conv2DSpec) check() Conv2DSpec {
	if s.Stride <= 0 {
		s.Stride = 1
	}
	if !s.Asym {
		s.PadH, s.PadW = s.Pad, s.Pad
	}
	if s.PadH < 0 || s.PadW < 0 {
		panic("tensor: negative conv padding")
	}
	return s
}

// padHW returns the effective per-axis padding.
func (s Conv2DSpec) padHW() (int, int) {
	s = s.check()
	return s.PadH, s.PadW
}

func (s Conv2DSpec) outDim(in, k, pad int) int {
	out := (in+2*pad-k)/s.Stride + 1
	if out <= 0 {
		panic(fmt.Sprintf("tensor: conv output dim %d <= 0 (in=%d k=%d pad=%d stride=%d)",
			out, in, k, pad, s.Stride))
	}
	return out
}

// OutDim returns the spatial output dimension for input size in and kernel
// size k under the spec's symmetric padding (height axis for asymmetric
// specs; use OutDims for both).
func (s Conv2DSpec) OutDim(in, k int) int {
	s = s.check()
	return s.outDim(in, k, s.PadH)
}

// OutDims returns both output dimensions for an input of h x w and a
// kernel of kh x kw.
func (s Conv2DSpec) OutDims(h, w, kh, kw int) (int, int) {
	s = s.check()
	return s.outDim(h, kh, s.PadH), s.outDim(w, kw, s.PadW)
}

// conv2DDims validates operand shapes against the spec and returns
// (cin, h, w, cout, kh, kw, hout, wout).
func conv2DDims(in, w *Tensor, bias []float32, spec Conv2DSpec) (int, int, int, int, int, int, int, int) {
	cin, h, wd := in.Shape[0], in.Shape[1], in.Shape[2]
	cout, wcin, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	if cin != wcin {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch: input %v weights %v", in.Shape, w.Shape))
	}
	if bias != nil && len(bias) != cout {
		panic("tensor: Conv2D bias length mismatch")
	}
	hout, wout := spec.OutDims(h, wd, kh, kw)
	return cin, h, wd, cout, kh, kw, hout, wout
}

// checkConvDst validates a preallocated conv output buffer.
func checkConvDst(dst *Tensor, cout, hout, wout int) {
	if len(dst.Shape) != 3 || dst.Shape[0] != cout || dst.Shape[1] != hout || dst.Shape[2] != wout {
		panic(fmt.Sprintf("tensor: conv dst shape %v, want [%d %d %d]", dst.Shape, cout, hout, wout))
	}
}

// Conv2D computes a direct (naive loop-nest) 2-D convolution with bias.
// bias may be nil. This is the reference implementation; Conv2DGEMM is the
// optimized path, and tests assert both agree.
func Conv2D(in, w *Tensor, bias []float32, spec Conv2DSpec) *Tensor {
	spec = spec.check()
	_, _, _, cout, _, _, hout, wout := conv2DDims(in, w, bias, spec)
	out := New(cout, hout, wout)
	convChannels(in, w, bias, spec, out, 0, cout)
	return out
}

// Conv2DInto computes the direct convolution into a preallocated dst of
// shape [Cout, Hout, Wout], overwriting every element (safe for dirty
// pooled buffers).
func Conv2DInto(dst, in, w *Tensor, bias []float32, spec Conv2DSpec) {
	spec = spec.check()
	_, _, _, cout, _, _, hout, wout := conv2DDims(in, w, bias, spec)
	checkConvDst(dst, cout, hout, wout)
	convChannels(in, w, bias, spec, dst, 0, cout)
}

// Im2Col lowers the convolution input into a [Cin*KH*KW, Hout*Wout] matrix
// so convolution becomes one GEMM — the standard lowering every framework
// in the paper uses on CPUs and GPUs.
func Im2Col(in *Tensor, kh, kw int, spec Conv2DSpec) *Tensor {
	spec = spec.check()
	cin, h, wd := in.Shape[0], in.Shape[1], in.Shape[2]
	hout, wout := spec.OutDims(h, wd, kh, kw)
	out := New(cin*kh*kw, hout*wout)
	im2colInto(out.Data, in, kh, kw, spec, hout, wout)
	return out
}

// im2colElemsThreshold is the lowered-matrix element count above which
// the im2col copy is sharded across the worker pool. Copies are far
// cheaper per element than MACs, so the bar sits at the MAC threshold's
// element count — below it the copy is a microseconds-scale memmove.
const im2colElemsThreshold = parallelThresholdMACs

// im2colInto writes the im2col lowering into cols[0 : cin*kh*kw*hout*wout],
// storing every element — padding positions are written as explicit zeros
// so a dirty pooled scratch buffer cannot leak stale values. Large
// lowerings shard output rows of the cols matrix across the worker pool;
// each row is written by exactly one chunk, so the parallel copy is
// bit-identical to the serial one.
func im2colInto(cols []float32, in *Tensor, kh, kw int, spec Conv2DSpec, hout, wout int) {
	rows := in.Shape[0] * kh * kw
	ncols := hout * wout
	if rows*ncols < im2colElemsThreshold {
		im2colRows(cols, in, kh, kw, spec, hout, wout, 0, rows)
		return
	}
	grain := (1 << 16) / ncols
	parallelFor(rows, grain, func(lo, hi int) {
		im2colRows(cols, in, kh, kw, spec, hout, wout, lo, hi)
	})
}

// im2colRows writes rows [rlo, rhi) of the lowered matrix, where row
// index r maps to (ic = r/(kh*kw), ky = r/kw%kh, kx = r%kw).
func im2colRows(cols []float32, in *Tensor, kh, kw int, spec Conv2DSpec, hout, wout, rlo, rhi int) {
	_, h, wd := in.Shape[0], in.Shape[1], in.Shape[2]
	padH, padW := spec.padHW()
	ncols := hout * wout
	for row := rlo; row < rhi; row++ {
		ic, ky, kx := row/(kh*kw), row/kw%kh, row%kw
		dst := cols[row*ncols : (row+1)*ncols]
		col := 0
		for oy := 0; oy < hout; oy++ {
			iy := oy*spec.Stride + ky - padH
			if iy < 0 || iy >= h {
				clear(dst[col : col+wout])
				col += wout
				continue
			}
			src := in.Data[(ic*h+iy)*wd : (ic*h+iy+1)*wd]
			for ox := 0; ox < wout; ox++ {
				ix := ox*spec.Stride + kx - padW
				if ix >= 0 && ix < wd {
					dst[col] = src[ix]
				} else {
					dst[col] = 0
				}
				col++
			}
		}
	}
}

// Conv2DGEMM computes the convolution by im2col lowering followed by
// matrix multiplication. Results match Conv2D to floating-point
// reassociation tolerance.
func Conv2DGEMM(in, w *Tensor, bias []float32, spec Conv2DSpec) *Tensor {
	spec = spec.check()
	_, _, _, cout, _, _, hout, wout := conv2DDims(in, w, bias, spec)
	out := New(cout, hout, wout)
	conv2DGEMMInto(out, in, w, bias, spec, nil)
	return out
}

// Conv2DGEMMInto computes the im2col+GEMM convolution into a preallocated
// dst of shape [Cout, Hout, Wout], overwriting every element. When
// scratch is non-nil the im2col matrix is borrowed from (and returned to)
// it, so repeated calls on a static graph do no scratch allocation.
func Conv2DGEMMInto(dst, in, w *Tensor, bias []float32, spec Conv2DSpec, scratch *Pool) {
	spec = spec.check()
	_, _, _, cout, _, _, hout, wout := conv2DDims(in, w, bias, spec)
	checkConvDst(dst, cout, hout, wout)
	conv2DGEMMInto(dst, in, w, bias, spec, scratch)
}

func conv2DGEMMInto(dst, in, w *Tensor, bias []float32, spec Conv2DSpec, scratch *Pool) {
	cout, cin, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	hout, wout := dst.Shape[1], dst.Shape[2]
	rows := cin * kh * kw
	ncols := hout * wout
	var cols *Tensor
	if scratch != nil {
		cols = scratch.Get(rows, ncols)
	} else {
		cols = New(rows, ncols)
	}
	im2colInto(cols.Data, in, kh, kw, spec, hout, wout)
	matmulInto(dst.Data, w.Data, cols.Data, cout, rows, ncols)
	if scratch != nil {
		scratch.Put(cols)
	}
	if bias != nil {
		plane := ncols
		for oc := 0; oc < cout; oc++ {
			b := bias[oc]
			seg := dst.Data[oc*plane : (oc+1)*plane]
			for i := range seg {
				seg[i] += b
			}
		}
	}
}

// DepthwiseConv2D applies one [KH, KW] filter per input channel (the
// MobileNet depthwise-separable building block). Weights are
// [C, KH, KW]; bias may be nil.
func DepthwiseConv2D(in, w *Tensor, bias []float32, spec Conv2DSpec) *Tensor {
	spec = spec.check()
	c := in.Shape[0]
	kh, kw := w.Shape[1], w.Shape[2]
	hout, wout := spec.OutDims(in.Shape[1], in.Shape[2], kh, kw)
	out := New(c, hout, wout)
	DepthwiseConv2DInto(out, in, w, bias, spec)
	return out
}

// DepthwiseConv2DInto computes the depthwise convolution into a
// preallocated dst of shape [C, Hout, Wout], overwriting every element.
// Above the MAC work threshold the channel×row tile space is sharded
// across the worker pool (per-tile writes are disjoint, so results are
// bitwise identical to serial); small layers stay on the caller.
func DepthwiseConv2DInto(dst, in, w *Tensor, bias []float32, spec Conv2DSpec) {
	spec = spec.check()
	c, h, wd := in.Shape[0], in.Shape[1], in.Shape[2]
	wc, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2]
	if c != wc {
		panic(fmt.Sprintf("tensor: DepthwiseConv2D channel mismatch: %v vs %v", in.Shape, w.Shape))
	}
	if bias != nil && len(bias) != c {
		panic("tensor: DepthwiseConv2D bias length mismatch")
	}
	hout, wout := spec.OutDims(h, wd, kh, kw)
	checkConvDst(dst, c, hout, wout)
	macsPerRow := kh * kw * wout
	if c*hout*macsPerRow < parallelThresholdMACs {
		depthwiseRows(dst, in, w, bias, spec, 0, c*hout)
		return
	}
	parallelFor(c*hout, grainForMACs(macsPerRow), func(lo, hi int) {
		depthwiseRows(dst, in, w, bias, spec, lo, hi)
	})
}

// depthwiseRows computes the flattened output-row tiles [lo, hi), where
// tile u covers output row (ic = u/hout, oy = u%hout).
func depthwiseRows(dst, in, w *Tensor, bias []float32, spec Conv2DSpec, lo, hi int) {
	h, wd := in.Shape[1], in.Shape[2]
	kh, kw := w.Shape[1], w.Shape[2]
	padH, padW := spec.padHW()
	hout, wout := dst.Shape[1], dst.Shape[2]
	for u := lo; u < hi; u++ {
		ic, oy := u/hout, u%hout
		var b float32
		if bias != nil {
			b = bias[ic]
		}
		for ox := 0; ox < wout; ox++ {
			sum := b
			for ky := 0; ky < kh; ky++ {
				iy := oy*spec.Stride + ky - padH
				if iy < 0 || iy >= h {
					continue
				}
				for kx := 0; kx < kw; kx++ {
					ix := ox*spec.Stride + kx - padW
					if ix < 0 || ix >= wd {
						continue
					}
					sum += in.Data[(ic*h+iy)*wd+ix] * w.Data[(ic*kh+ky)*kw+kx]
				}
			}
			dst.Data[(ic*hout+oy)*wout+ox] = sum
		}
	}
}
