package tensor

// Conv2DParallel computes the same convolution as Conv2D, sharding
// channel×row output tiles across the persistent worker pool. Tiles are
// independent, so the shards share only read-only inputs — no locking.
// For small layers the scheduling overhead dominates, so callers (the
// executor) fall back to the serial kernel below a work threshold.
func Conv2DParallel(in, w *Tensor, bias []float32, spec Conv2DSpec) *Tensor {
	spec = spec.check()
	_, _, _, cout, _, _, hout, wout := conv2DDims(in, w, bias, spec)
	out := New(cout, hout, wout)
	conv2DParallelInto(out, in, w, bias, spec)
	return out
}

// Conv2DParallelInto computes the tile-sharded direct convolution into
// a preallocated dst of shape [Cout, Hout, Wout], overwriting every
// element.
func Conv2DParallelInto(dst, in, w *Tensor, bias []float32, spec Conv2DSpec) {
	spec = spec.check()
	_, _, _, cout, _, _, hout, wout := conv2DDims(in, w, bias, spec)
	checkConvDst(dst, cout, hout, wout)
	conv2DParallelInto(dst, in, w, bias, spec)
}

// conv2DParallelInto shards the flattened channel×row tile space
// (cout*hout output rows) across the worker pool. Row tiles are finer
// than whole channels, so chunk stealing balances tall-skinny layers
// (few channels, many rows) and the grain keeps each chunk above a
// minimum MAC budget so tiny layers never over-split.
func conv2DParallelInto(dst, in, w *Tensor, bias []float32, spec Conv2DSpec) {
	cout, hout, wout := dst.Shape[0], dst.Shape[1], dst.Shape[2]
	macsPerRow := in.Shape[0] * w.Shape[2] * w.Shape[3] * wout
	parallelFor(cout*hout, grainForMACs(macsPerRow), func(lo, hi int) {
		convRows(in, w, bias, spec, dst, lo, hi)
	})
}

// convChannels computes output channels [lo, hi) into out on the
// calling goroutine — the serial reference the sharded kernel is
// checked against.
func convChannels(in, w *Tensor, bias []float32, spec Conv2DSpec, out *Tensor, lo, hi int) {
	hout := out.Shape[1]
	convRows(in, w, bias, spec, out, lo*hout, hi*hout)
}

// convRows computes the flattened output-row tiles [lo, hi) into out,
// where tile index u covers output row (oc = u/hout, oy = u%hout).
// Every tile writes a disjoint wout-length span of out, so any
// partition of the tile space is race-free and bitwise identical to the
// serial order.
func convRows(in, w *Tensor, bias []float32, spec Conv2DSpec, out *Tensor, lo, hi int) {
	cin, h, wd := in.Shape[0], in.Shape[1], in.Shape[2]
	kh, kw := w.Shape[2], w.Shape[3]
	padH, padW := spec.padHW()
	hout, wout := out.Shape[1], out.Shape[2]
	for u := lo; u < hi; u++ {
		oc, oy := u/hout, u%hout
		var b float32
		if bias != nil {
			b = bias[oc]
		}
		for ox := 0; ox < wout; ox++ {
			sum := b
			for ic := 0; ic < cin; ic++ {
				for ky := 0; ky < kh; ky++ {
					iy := oy*spec.Stride + ky - padH
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < kw; kx++ {
						ix := ox*spec.Stride + kx - padW
						if ix < 0 || ix >= wd {
							continue
						}
						sum += in.Data[(ic*h+iy)*wd+ix] *
							w.Data[((oc*cin+ic)*kh+ky)*kw+kx]
					}
				}
			}
			out.Data[(oc*hout+oy)*wout+ox] = sum
		}
	}
}

// parallelThresholdMACs is the work level above which sharding pays for
// its goroutine overhead (~1M multiply-accumulates).
const parallelThresholdMACs = 1 << 20

// ConvMACs returns the multiply-accumulate count of a convolution with
// the given weight tensor and output spatial dims: filter elements times
// output positions. The executor and Conv2DAuto use it as the dispatch
// metric against parallelThresholdMACs.
func ConvMACs(w *Tensor, hout, wout int) int {
	return w.Shape.NumElems() * hout * wout
}

// ParallelThresholdMACs exposes the kernel-dispatch work threshold for
// tests and benchmarks that pin dispatch behaviour.
func ParallelThresholdMACs() int { return parallelThresholdMACs }

// Conv2DAuto picks the parallel kernel for large layers and the serial
// one otherwise.
func Conv2DAuto(in, w *Tensor, bias []float32, spec Conv2DSpec) *Tensor {
	spec = spec.check()
	kh, kw := w.Shape[2], w.Shape[3]
	hout, wout := spec.OutDims(in.Shape[1], in.Shape[2], kh, kw)
	if ConvMACs(w, hout, wout) >= parallelThresholdMACs {
		return Conv2DParallel(in, w, bias, spec)
	}
	return Conv2D(in, w, bias, spec)
}

// Conv2DAutoInto is Conv2DAuto writing into a preallocated dst of shape
// [Cout, Hout, Wout], overwriting every element.
func Conv2DAutoInto(dst, in, w *Tensor, bias []float32, spec Conv2DSpec) {
	spec = spec.check()
	_, _, _, cout, _, _, hout, wout := conv2DDims(in, w, bias, spec)
	checkConvDst(dst, cout, hout, wout)
	if ConvMACs(w, hout, wout) >= parallelThresholdMACs {
		conv2DParallelInto(dst, in, w, bias, spec)
		return
	}
	convChannels(in, w, bias, spec, dst, 0, cout)
}
