package tensor

import (
	"runtime"
	"sync"
)

// Conv2DParallel computes the same convolution as Conv2D, sharding
// output channels across GOMAXPROCS goroutines. Output channels are
// independent, so the shards share only read-only inputs — no locking.
// For small layers the goroutine overhead dominates, so callers (the
// executor) fall back to the serial kernel below a work threshold.
func Conv2DParallel(in, w *Tensor, bias []float32, spec Conv2DSpec) *Tensor {
	spec = spec.check()
	_, _, _, cout, _, _, hout, wout := conv2DDims(in, w, bias, spec)
	out := New(cout, hout, wout)
	conv2DParallelInto(out, in, w, bias, spec)
	return out
}

// Conv2DParallelInto computes the channel-sharded direct convolution into
// a preallocated dst of shape [Cout, Hout, Wout], overwriting every
// element.
func Conv2DParallelInto(dst, in, w *Tensor, bias []float32, spec Conv2DSpec) {
	spec = spec.check()
	_, _, _, cout, _, _, hout, wout := conv2DDims(in, w, bias, spec)
	checkConvDst(dst, cout, hout, wout)
	conv2DParallelInto(dst, in, w, bias, spec)
}

func conv2DParallelInto(dst, in, w *Tensor, bias []float32, spec Conv2DSpec) {
	cout := w.Shape[0]
	workers := runtime.GOMAXPROCS(0)
	if workers > cout {
		workers = cout
	}
	if workers <= 1 {
		convChannels(in, w, bias, spec, dst, 0, cout)
		return
	}
	var wg sync.WaitGroup
	per := (cout + workers - 1) / workers
	for start := 0; start < cout; start += per {
		end := start + per
		if end > cout {
			end = cout
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			convChannels(in, w, bias, spec, dst, lo, hi)
		}(start, end)
	}
	wg.Wait()
}

// convChannels computes output channels [lo, hi) into out.
func convChannels(in, w *Tensor, bias []float32, spec Conv2DSpec, out *Tensor, lo, hi int) {
	cin, h, wd := in.Shape[0], in.Shape[1], in.Shape[2]
	kh, kw := w.Shape[2], w.Shape[3]
	padH, padW := spec.padHW()
	hout, wout := out.Shape[1], out.Shape[2]
	for oc := lo; oc < hi; oc++ {
		var b float32
		if bias != nil {
			b = bias[oc]
		}
		for oy := 0; oy < hout; oy++ {
			for ox := 0; ox < wout; ox++ {
				sum := b
				for ic := 0; ic < cin; ic++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*spec.Stride + ky - padH
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*spec.Stride + kx - padW
							if ix < 0 || ix >= wd {
								continue
							}
							sum += in.Data[(ic*h+iy)*wd+ix] *
								w.Data[((oc*cin+ic)*kh+ky)*kw+kx]
						}
					}
				}
				out.Data[(oc*hout+oy)*wout+ox] = sum
			}
		}
	}
}

// parallelThresholdMACs is the work level above which sharding pays for
// its goroutine overhead (~1M multiply-accumulates).
const parallelThresholdMACs = 1 << 20

// ConvMACs returns the multiply-accumulate count of a convolution with
// the given weight tensor and output spatial dims: filter elements times
// output positions. The executor and Conv2DAuto use it as the dispatch
// metric against parallelThresholdMACs.
func ConvMACs(w *Tensor, hout, wout int) int {
	return w.Shape.NumElems() * hout * wout
}

// ParallelThresholdMACs exposes the kernel-dispatch work threshold for
// tests and benchmarks that pin dispatch behaviour.
func ParallelThresholdMACs() int { return parallelThresholdMACs }

// Conv2DAuto picks the parallel kernel for large layers and the serial
// one otherwise.
func Conv2DAuto(in, w *Tensor, bias []float32, spec Conv2DSpec) *Tensor {
	spec = spec.check()
	kh, kw := w.Shape[2], w.Shape[3]
	hout, wout := spec.OutDims(in.Shape[1], in.Shape[2], kh, kw)
	if ConvMACs(w, hout, wout) >= parallelThresholdMACs {
		return Conv2DParallel(in, w, bias, spec)
	}
	return Conv2D(in, w, bias, spec)
}

// Conv2DAutoInto is Conv2DAuto writing into a preallocated dst of shape
// [Cout, Hout, Wout], overwriting every element.
func Conv2DAutoInto(dst, in, w *Tensor, bias []float32, spec Conv2DSpec) {
	spec = spec.check()
	_, _, _, cout, _, _, hout, wout := conv2DDims(in, w, bias, spec)
	checkConvDst(dst, cout, hout, wout)
	if ConvMACs(w, hout, wout) >= parallelThresholdMACs {
		conv2DParallelInto(dst, in, w, bias, spec)
		return
	}
	convChannels(in, w, bias, spec, dst, 0, cout)
}
