package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"edgebench/internal/stats"
)

func TestActivations(t *testing.T) {
	a := FromData([]float32{-2, 0, 3, 8}, 4)
	if got := ReLU(a.Clone()).Data; got[0] != 0 || got[2] != 3 || got[3] != 8 {
		t.Fatalf("ReLU = %v", got)
	}
	if got := ReLU6(a.Clone()).Data; got[0] != 0 || got[2] != 3 || got[3] != 6 {
		t.Fatalf("ReLU6 = %v", got)
	}
	if got := LeakyReLU(a.Clone(), 0.1).Data; !almostEq32(got[0], -0.2, 1e-6) || got[2] != 3 {
		t.Fatalf("LeakyReLU = %v", got)
	}
	if got := Sigmoid(FromData([]float32{0}, 1)).Data[0]; !almostEq32(got, 0.5, 1e-6) {
		t.Fatalf("Sigmoid(0) = %v", got)
	}
	if got := Tanh(FromData([]float32{0}, 1)).Data[0]; got != 0 {
		t.Fatalf("Tanh(0) = %v", got)
	}
}

func TestAdd(t *testing.T) {
	a := FromData([]float32{1, 2}, 2)
	b := FromData([]float32{10, 20}, 2)
	c := Add(a, b)
	if c.Data[0] != 11 || c.Data[1] != 22 || a.Data[0] != 1 {
		t.Fatalf("Add = %v (a=%v)", c.Data, a.Data)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch should panic")
		}
	}()
	Add(a, New(3))
}

func TestConcatChannels(t *testing.T) {
	a := New(1, 2, 2).Fill(1)
	b := New(3, 2, 2).Fill(2)
	c := ConcatChannels(a, b)
	if !c.Shape.Equal(Shape{4, 2, 2}) {
		t.Fatalf("shape = %v", c.Shape)
	}
	if c.Data[0] != 1 || c.Data[4] != 2 {
		t.Fatal("concat data order wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("spatial mismatch should panic")
		}
	}()
	ConcatChannels(a, New(1, 3, 3))
}

func TestBatchNorm(t *testing.T) {
	in := FromData([]float32{1, 2, 3, 4}, 1, 2, 2)
	gamma := []float32{2}
	beta := []float32{1}
	mean := []float32{2.5}
	variance := []float32{1.25}
	out := BatchNorm(in, gamma, beta, mean, variance, 0)
	// (x-2.5)/sqrt(1.25)*2 + 1
	want0 := float32((1-2.5)/math.Sqrt(1.25)*2 + 1)
	if !almostEq32(out.Data[0], want0, 1e-5) {
		t.Fatalf("BN[0] = %v, want %v", out.Data[0], want0)
	}
	if in.Data[0] != 1 {
		t.Fatal("BatchNorm should not mutate input")
	}
}

// Property: conv followed by BN equals conv with folded BN weights.
func TestFoldBatchNormEquivalence(t *testing.T) {
	r := stats.NewRNG(11)
	f := func(seed int64) bool {
		cin, cout := 1+int(seed&1), 1+int(seed>>1&3)
		in := New(cin, 6, 6).Randomize(r, 1)
		w := New(cout, cin, 3, 3).Randomize(r, 1)
		bias := make([]float32, cout)
		gamma := make([]float32, cout)
		beta := make([]float32, cout)
		mean := make([]float32, cout)
		variance := make([]float32, cout)
		for i := 0; i < cout; i++ {
			bias[i] = r.Float32()
			gamma[i] = r.Float32() + 0.5
			beta[i] = r.Float32()
			mean[i] = r.Float32()
			variance[i] = r.Float32() + 0.1
		}
		spec := Conv2DSpec{Stride: 1, Pad: 1}
		ref := BatchNorm(Conv2D(in, w, bias, spec), gamma, beta, mean, variance, 1e-5)
		fw, fb := FoldBatchNorm(w, bias, gamma, beta, mean, variance, 1e-5)
		fused := Conv2D(in, fw, fb, spec)
		for i := range ref.Data {
			if !almostEq32(ref.Data[i], fused.Data[i], 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDense(t *testing.T) {
	w := FromData([]float32{1, 2, 3, 4}, 2, 2)
	out := Dense(w, []float32{10, 20}, []float32{1, 1})
	if out[0] != 13 || out[1] != 27 {
		t.Fatalf("Dense = %v", out)
	}
	out = Dense(w, nil, []float32{1, 0})
	if out[0] != 1 || out[1] != 3 {
		t.Fatalf("Dense no-bias = %v", out)
	}
}

func TestSoftmax(t *testing.T) {
	out := Softmax([]float32{1, 1, 1, 1})
	for _, v := range out {
		if !almostEq32(v, 0.25, 1e-6) {
			t.Fatalf("uniform softmax = %v", out)
		}
	}
	// Stability with large logits.
	out = Softmax([]float32{1000, 1000})
	if !almostEq32(out[0], 0.5, 1e-6) {
		t.Fatalf("large-logit softmax = %v", out)
	}
	if Softmax(nil) != nil {
		t.Fatal("Softmax(nil) should be nil")
	}
}

func TestSoftmaxSumsToOneProperty(t *testing.T) {
	f := func(raw []float32) bool {
		xs := raw[:0:0]
		for _, v := range raw {
			if !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		var sum float64
		for _, v := range Softmax(xs) {
			if v < 0 {
				return false
			}
			sum += float64(v)
		}
		return math.Abs(sum-1) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPad2D(t *testing.T) {
	in := FromData([]float32{1, 2, 3, 4}, 1, 2, 2)
	out := Pad2D(in, 1)
	if !out.Shape.Equal(Shape{1, 4, 4}) {
		t.Fatalf("shape = %v", out.Shape)
	}
	if out.At(0, 0, 0) != 0 || out.At(0, 1, 1) != 1 || out.At(0, 2, 2) != 4 {
		t.Fatal("padding layout wrong")
	}
	same := Pad2D(in, 0)
	same.Data[0] = 9
	if in.Data[0] != 1 {
		t.Fatal("Pad2D(0) should return a copy")
	}
}

func TestMaxPool2D(t *testing.T) {
	in := FromData([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 3, 3)
	out := MaxPool2D(in, PoolSpec{Kernel: 2, Stride: 1})
	want := []float32{5, 6, 8, 9}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("MaxPool[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
	// Negative inputs with padding: pad cells must not win.
	neg := New(1, 2, 2).Fill(-3)
	p := MaxPool2D(neg, PoolSpec{Kernel: 2, Stride: 2, Pad: 1})
	for _, v := range p.Data {
		if v != -3 {
			t.Fatalf("padded max pooled = %v, want -3", v)
		}
	}
}

func TestAvgPool2D(t *testing.T) {
	in := FromData([]float32{1, 2, 3, 4}, 1, 2, 2)
	out := AvgPool2D(in, PoolSpec{Kernel: 2, Stride: 2})
	if out.Data[0] != 2.5 {
		t.Fatalf("AvgPool = %v, want 2.5", out.Data[0])
	}
	// Padding excluded from divisor.
	p := AvgPool2D(in, PoolSpec{Kernel: 2, Stride: 2, Pad: 1})
	if p.At(0, 0, 0) != 1 {
		t.Fatalf("padded avg = %v, want 1 (single cell)", p.At(0, 0, 0))
	}
}

func TestGlobalAvgPool2D(t *testing.T) {
	in := New(2, 2, 2)
	for i := 0; i < 4; i++ {
		in.Data[i] = 2
		in.Data[4+i] = 4
	}
	got := GlobalAvgPool2D(in)
	if got[0] != 2 || got[1] != 4 {
		t.Fatalf("GAP = %v", got)
	}
}

func TestPoolSpecChecks(t *testing.T) {
	if (PoolSpec{Kernel: 3}).OutDim(9) != 3 {
		t.Fatal("default stride should equal kernel")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero kernel should panic")
		}
	}()
	MaxPool2D(New(1, 2, 2), PoolSpec{})
}
