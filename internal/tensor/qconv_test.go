package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// refQConv computes the exact integer reference for the int8 conv path:
// the same dynamic input quantization, a naive int32 convolution over
// the quantized values, and the same epilogue arithmetic — so the
// optimized kernel must match it bit-for-bit.
func refQConv(in *Tensor, qw *QTensor, bias []float32, spec Conv2DSpec, act Act, alpha float32) *Tensor {
	spec = spec.check()
	cin, h, wd := in.Shape[0], in.Shape[1], in.Shape[2]
	cout, kh, kw := qw.Shape[0], qw.Shape[2], qw.Shape[3]
	hout, wout := spec.OutDims(h, wd, kh, kw)
	padH, padW := spec.padHW()
	qin := make([]int8, len(in.Data))
	sx := QuantizeDynamicInto(qin, in.Data)
	out := New(cout, hout, wout)
	for oc := 0; oc < cout; oc++ {
		var b float32
		if bias != nil {
			b = bias[oc]
		}
		for oy := 0; oy < hout; oy++ {
			for ox := 0; ox < wout; ox++ {
				var acc int32
				for ic := 0; ic < cin; ic++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*spec.Stride + ky - padH
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*spec.Stride + kx - padW
							if ix < 0 || ix >= wd {
								continue
							}
							acc += int32(qin[(ic*h+iy)*wd+ix]) *
								int32(qw.Data[((oc*cin+ic)*kh+ky)*kw+kx])
						}
					}
				}
				seg := out.Data[(oc*hout+oy)*wout+ox : (oc*hout+oy)*wout+ox+1]
				requantizeInto(seg, []int32{acc}, sx*qw.ScaleFor(oc), b, act, alpha)
			}
		}
	}
	return out
}

func randTensor(r *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = float32(r.NormFloat64())
	}
	return t
}

func TestConv2DQInt8MatchesIntegerReference(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cases := []struct {
		cin, h, w, cout, kh, kw int
		spec                    Conv2DSpec
		act                     Act
	}{
		{3, 8, 8, 4, 3, 3, Conv2DSpec{Stride: 1, Pad: 1}, ActReLU},
		{2, 7, 9, 5, 3, 3, Conv2DSpec{Stride: 2, Pad: 1}, ActNone},
		{1, 5, 5, 2, 1, 1, Conv2DSpec{}, ActReLU6},
		{4, 6, 6, 3, 5, 5, Conv2DSpec{Stride: 1, Pad: 2}, ActLeakyReLU},
	}
	for _, tc := range cases {
		in := randTensor(r, tc.cin, tc.h, tc.w)
		w := randTensor(r, tc.cout, tc.cin, tc.kh, tc.kw)
		bias := make([]float32, tc.cout)
		for i := range bias {
			bias[i] = float32(r.NormFloat64())
		}
		for _, qw := range []*QTensor{QuantizeSymmetric(w), QuantizePerChannel(w)} {
			want := refQConv(in, qw, bias, tc.spec, tc.act, 0.1)
			got := New(want.Shape...)
			Conv2DQInt8Into(got, in, qw, bias, tc.spec, tc.act, 0.1)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("case %+v: out[%d] = %g, want %g", tc, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

func TestConv2DQInt8CloseToFP32(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	in := randTensor(r, 3, 12, 12)
	w := randTensor(r, 8, 3, 3, 3)
	bias := make([]float32, 8)
	spec := Conv2DSpec{Stride: 1, Pad: 1}
	ref := Conv2D(in, w, bias, spec)
	got := New(ref.Shape...)
	Conv2DQInt8Into(got, in, QuantizePerChannel(w), bias, spec, ActNone, 0)
	var maxDiff, maxMag float64
	for i := range ref.Data {
		d := math.Abs(float64(got.Data[i] - ref.Data[i]))
		if d > maxDiff {
			maxDiff = d
		}
		if m := math.Abs(float64(ref.Data[i])); m > maxMag {
			maxMag = m
		}
	}
	if maxDiff > 0.05*maxMag {
		t.Fatalf("int8 conv drifts %.4f from FP32 (max magnitude %.4f)", maxDiff, maxMag)
	}
}

func TestDenseQInt8MatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const out, in = 17, 300
	w := randTensor(r, out, in)
	x := make([]float32, in)
	for i := range x {
		x[i] = float32(r.NormFloat64())
	}
	bias := make([]float32, out)
	for i := range bias {
		bias[i] = float32(r.NormFloat64())
	}
	for _, qw := range []*QTensor{QuantizeSymmetric(w), QuantizePerChannel(w)} {
		qx := make([]int8, in)
		sx := QuantizeDynamicInto(qx, x)
		want := make([]float32, out)
		for i := 0; i < out; i++ {
			var acc int32
			for j := 0; j < in; j++ {
				acc += int32(qw.Data[i*in+j]) * int32(qx[j])
			}
			requantizeInto(want[i:i+1], []int32{acc}, sx*qw.ScaleFor(i), bias[i], ActReLU, 0)
		}
		got := make([]float32, out)
		DenseQInt8Into(got, qw, bias, x, ActReLU, 0)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dense out[%d] = %g, want %g", i, got[i], want[i])
			}
		}
	}
}

func TestQuantizeDynamicIntoProperties(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	src := make([]float32, 257)
	for i := range src {
		src[i] = float32(r.NormFloat64() * 3)
	}
	dst := make([]int8, len(src))
	scale := QuantizeDynamicInto(dst, src)
	if scale <= 0 {
		t.Fatalf("scale %g <= 0", scale)
	}
	for i, q := range dst {
		if q < -127 {
			t.Fatalf("code %d at %d below -127", q, i)
		}
		if math.Abs(float64(float32(q)*scale-src[i])) > float64(scale)/2+1e-6 {
			t.Fatalf("dequant error at %d exceeds scale/2", i)
		}
	}
	// All-zero input quantizes with the degenerate-scale guard.
	zero := make([]int8, 4)
	if s := QuantizeDynamicInto(zero, make([]float32, 4)); s != 1 {
		t.Fatalf("zero-input scale %g, want 1", s)
	}
}
