package tensor

// DType identifies the numeric datatype a framework executes a graph in.
// The functional engine always computes in float32; DType drives the
// analytic cost model (bytes per element, device throughput class) and the
// quantization emulation passes.
type DType int

const (
	// FP32 is IEEE-754 single precision, the default inference datatype.
	FP32 DType = iota
	// FP16 is IEEE-754 half precision, supported by GPU-class devices and
	// the Movidius VPU (Table II "Half-Precision" row).
	FP16
	// INT8 is 8-bit symmetric fixed point, used by TFLite/EdgeTPU and
	// TensorRT low-precision inference (Table II "Quantization" row).
	INT8
	// FP64 is double precision; included for completeness (HPC CPUs).
	FP64
)

// Bytes returns the storage size of one element of the datatype.
func (d DType) Bytes() int {
	switch d {
	case FP16:
		return 2
	case INT8:
		return 1
	case FP64:
		return 8
	default:
		return 4
	}
}

// String names the datatype.
func (d DType) String() string {
	switch d {
	case FP32:
		return "fp32"
	case FP16:
		return "fp16"
	case INT8:
		return "int8"
	case FP64:
		return "fp64"
	default:
		return "unknown"
	}
}
