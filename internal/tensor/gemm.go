package tensor

import "sync"

// GEMM blocking parameters. The kernel tiles over N (gemmNC columns) and
// K (gemmKC rows of B) so the packed B panel (gemmKC x gemmNC floats,
// 256 KiB) and the current output row stripe stay cache-resident while
// every A row streams over them. Within a panel, B rows are packed in
// interleaved groups of gemmMR so the microkernel reads gemmMR
// consecutive B values per output element and makes one write pass over
// the output row per gemmMR K-steps instead of per K-step.
const (
	gemmKC = 128 // K-block: rows of B packed per panel
	gemmNC = 512 // N-block: columns of B packed per panel
	gemmMR = 4   // K-interleave of the packed panel / microkernel unroll
)

// sparseSkipFraction is the zero fraction of the left operand above which
// MatMul dispatches to the zero-skipping kernel. Pruned-weight matrices
// (the paper's sparsity study) sit far above this; dense activations sit
// far below, so the dense path never pays a per-element branch.
const sparseSkipFraction = 0.6

// gemmPanelElems is the scratch size one packed B panel needs.
func gemmPanelElems() int { return gemmKC * gemmNC }

// matmulInto computes dst = a x b for row-major a [m, k] and b [k, n],
// overwriting all of dst[0:m*n]. It dispatches between the sparse,
// parallel-blocked, and serial-blocked kernels; the parallel split is by
// output rows, so results are bitwise identical to the serial kernel.
func matmulInto(dst, a, b []float32, m, k, n int) {
	macs := m * k * n
	if macs >= parallelThresholdMACs {
		if zeroFraction(a) >= sparseSkipFraction {
			matmulSparseInto(dst, a, b, m, k, n)
			return
		}
		matmulParallelInto(dst, a, b, m, k, n)
		return
	}
	matmulBlockedRange(dst, a, b, m, k, n, 0, m, nil)
}

// zeroFraction returns the fraction of exactly-zero entries in a.
func zeroFraction(a []float32) float64 {
	if len(a) == 0 {
		return 0
	}
	zeros := 0
	for _, v := range a {
		if v == 0 {
			zeros++
		}
	}
	return float64(zeros) / float64(len(a))
}

// gemmPanelPool recycles packed-panel scratch across parallel GEMM
// shards; each chunk packs its own panels, so the pool keeps steady-state
// scratch allocation at zero without sharing panels between chunks.
var gemmPanelPool = sync.Pool{New: func() any {
	p := make([]float32, gemmPanelElems())
	return &p
}}

// matmulParallelInto shards output M-rows across the persistent worker
// pool in grain-bounded chunks; each chunk runs the blocked kernel over
// its row span with a pooled packed panel, so a chunk is a full
// M-panel pass over the already-packed B panels. Per-row results do not
// depend on the shard split, so the output is bitwise identical to a
// single-shard run; with the pool saturated or GOMAXPROCS=1 the whole
// range runs on the caller, which equals MatMulSerial.
func matmulParallelInto(dst, a, b []float32, m, k, n int) {
	parallelFor(m, grainForMACs(k*n), func(lo, hi int) {
		panel := gemmPanelPool.Get().(*[]float32)
		matmulBlockedRange(dst, a, b, m, k, n, lo, hi, *panel)
		gemmPanelPool.Put(panel)
	})
}

// matmulBlockedRange computes output rows [rlo, rhi) of dst = a x b with
// cache blocking. panel is optional scratch of gemmPanelElems() floats
// (allocated when nil). Rows are zeroed first, then accumulated one
// (K-block, N-block) panel at a time.
func matmulBlockedRange(dst, a, b []float32, m, k, n, rlo, rhi int, panel []float32) {
	_ = m
	if panel == nil {
		panel = make([]float32, gemmPanelElems())
	}
	for i := rlo; i < rhi; i++ {
		clear(dst[i*n : (i+1)*n])
	}
	var abuf [gemmKC]float32
	for jc := 0; jc < n; jc += gemmNC {
		jb := n - jc
		if jb > gemmNC {
			jb = gemmNC
		}
		for kc := 0; kc < k; kc += gemmKC {
			kb := k - kc
			if kb > gemmKC {
				kb = gemmKC
			}
			kb4 := (kb + gemmMR - 1) &^ (gemmMR - 1)
			packPanel(panel, b, n, kc, kb, kb4, jc, jb)
			for i := rlo; i < rhi; i++ {
				copy(abuf[:kb], a[i*k+kc:i*k+kc+kb])
				for z := kb; z < kb4; z++ {
					abuf[z] = 0
				}
				orow := dst[i*n+jc : i*n+jc+jb]
				for g := 0; g < kb4; g += gemmMR {
					a0, a1, a2, a3 := abuf[g], abuf[g+1], abuf[g+2], abuf[g+3]
					p := panel[g*jb : g*jb+jb*gemmMR]
					for j := range orow {
						base := j * gemmMR
						orow[j] += a0*p[base] + a1*p[base+1] + a2*p[base+2] + a3*p[base+3]
					}
				}
			}
		}
	}
}

// packPanel copies the B block rows [kc, kc+kb) x cols [jc, jc+jb) into
// panel, interleaved in groups of gemmMR K-rows: element (kc+g+r, jc+j)
// lands at panel[g*jb + j*gemmMR + r]. Rows past kb (up to the kb4
// round-up) are zero-filled so the microkernel needs no K-remainder.
func packPanel(panel, b []float32, n, kc, kb, kb4, jc, jb int) {
	for g := 0; g < kb4; g += gemmMR {
		dst := panel[g*jb : (g+gemmMR)*jb]
		for r := 0; r < gemmMR; r++ {
			kk := g + r
			if kk >= kb {
				for j := 0; j < jb; j++ {
					dst[j*gemmMR+r] = 0
				}
				continue
			}
			brow := b[(kc+kk)*n+jc : (kc+kk)*n+jc+jb]
			for j, v := range brow {
				dst[j*gemmMR+r] = v
			}
		}
	}
}

// matmulSparseInto is the zero-skipping ikj kernel for pruned left
// operands: rows of a with mostly-zero entries skip whole B rows. Dense
// inputs should use the blocked kernel instead (matmulInto dispatches).
func matmulSparseInto(dst, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := dst[i*n : (i+1)*n]
		clear(orow)
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// checkMatMul validates MatMul operand shapes and returns (m, k, n).
func checkMatMul(a, b *Tensor) (int, int, int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic("tensor: MatMul needs rank-2 operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	if b.Shape[0] != k {
		panic("tensor: MatMul inner dims differ")
	}
	return m, k, b.Shape[1]
}

// MatMulSerial multiplies a [M, K] by b [K, N] on the calling goroutine
// with the cache-blocked kernel — the deterministic reference the
// parallel path is checked against.
func MatMulSerial(a, b *Tensor) *Tensor {
	m, k, nn := checkMatMul(a, b)
	out := New(m, nn)
	matmulBlockedRange(out.Data, a.Data, b.Data, m, k, nn, 0, m, nil)
	return out
}

// MatMulParallel multiplies a [M, K] by b [K, N] with output rows sharded
// across the persistent kernel worker pool, each chunk running the
// cache-blocked kernel. Results are bitwise identical to MatMulSerial.
func MatMulParallel(a, b *Tensor) *Tensor {
	m, k, nn := checkMatMul(a, b)
	out := New(m, nn)
	matmulParallelInto(out.Data, a.Data, b.Data, m, k, nn)
	return out
}

// MatMulSparse multiplies a [M, K] by b [K, N] skipping zero entries of
// a — the pruned-weight fast path. Dense operands should use MatMul,
// which pays no per-element branch.
func MatMulSparse(a, b *Tensor) *Tensor {
	m, k, nn := checkMatMul(a, b)
	out := New(m, nn)
	matmulSparseInto(out.Data, a.Data, b.Data, m, k, nn)
	return out
}
