package tensor

import "sync"

// Pool recycles tensor backing buffers keyed by exact element count — the
// arena behind the static-graph memory planner. Get returns a tensor
// whose data is NOT zeroed when it comes from the free list; every kernel
// writing into a pooled buffer must store all elements (the *Into kernel
// contract). Put hands a buffer back for reuse; the caller must not touch
// the tensor (or any view sharing its data) afterwards, and must not Put
// the same buffer twice. All methods are safe for concurrent use.
type Pool struct {
	mu   sync.Mutex
	free map[int][]*Tensor

	gets, misses, puts int
}

// NewPool returns an empty buffer pool.
func NewPool() *Pool { return &Pool{free: make(map[int][]*Tensor)} }

// Get returns a tensor of the given shape, reusing a free buffer with the
// same element count when one is available (contents are then arbitrary)
// and allocating a fresh zeroed one otherwise.
func (p *Pool) Get(shape ...int) *Tensor {
	s := Shape(shape)
	elems := s.NumElems()
	p.mu.Lock()
	p.gets++
	if list := p.free[elems]; len(list) > 0 {
		t := list[len(list)-1]
		list[len(list)-1] = nil
		p.free[elems] = list[:len(list)-1]
		p.mu.Unlock()
		// Reuse the parked Tensor and its Shape backing: steady-state
		// pooled inference must not touch the allocator at all.
		t.Shape = append(t.Shape[:0], s...)
		return t
	}
	p.misses++
	p.mu.Unlock()
	return New(shape...)
}

// Put returns t's buffer to the pool for a later Get of the same element
// count. nil and empty tensors are ignored.
func (p *Pool) Put(t *Tensor) {
	if t == nil || len(t.Data) == 0 {
		return
	}
	p.mu.Lock()
	p.puts++
	p.free[len(t.Data)] = append(p.free[len(t.Data)], t)
	p.mu.Unlock()
}

// Preallocate seeds the pool with one buffer per element count in counts,
// so a planned first inference runs without allocator traffic.
func (p *Pool) Preallocate(counts ...int) {
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p.Put(New(c))
	}
}

// PoolStats is a snapshot of pool traffic: Misses counts Gets that had to
// allocate, Idle the buffers currently parked on free lists.
type PoolStats struct {
	Gets, Misses, Puts, Idle int
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	idle := 0
	for _, list := range p.free {
		idle += len(list)
	}
	return PoolStats{Gets: p.gets, Misses: p.misses, Puts: p.puts, Idle: idle}
}
