package tensor

import (
	"math"
	"testing"

	"edgebench/internal/stats"
)

func TestShapeBasics(t *testing.T) {
	s := Shape{2, 3, 4}
	if s.NumElems() != 24 {
		t.Fatalf("NumElems = %d, want 24", s.NumElems())
	}
	if !s.Equal(Shape{2, 3, 4}) || s.Equal(Shape{2, 3}) || s.Equal(Shape{2, 3, 5}) {
		t.Fatal("Equal misbehaves")
	}
	c := s.Clone()
	c[0] = 9
	if s[0] != 2 {
		t.Fatal("Clone should be independent")
	}
	if (Shape{}).NumElems() != 0 {
		t.Fatal("empty shape should have 0 elems")
	}
	if s.String() != "[2 3 4]" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestNewAndFromData(t *testing.T) {
	a := New(2, 3)
	if len(a.Data) != 6 {
		t.Fatalf("len = %d", len(a.Data))
	}
	b := FromData([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if b.At(1, 2) != 6 || b.At(0, 0) != 1 {
		t.Fatal("At wrong")
	}
	b.Set(9, 0, 1)
	if b.At(0, 1) != 9 {
		t.Fatal("Set wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromData with wrong length should panic")
		}
	}()
	FromData([]float32{1}, 2, 2)
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero dim should panic")
		}
	}()
	New(2, 0)
}

func TestCloneAndFill(t *testing.T) {
	a := New(4).Fill(3)
	b := a.Clone()
	b.Data[0] = 7
	if a.Data[0] != 3 {
		t.Fatal("Clone should deep copy")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := FromData([]float32{1, 2, 3, 4}, 2, 2)
	v := a.Reshape(4)
	v.Data[0] = 42
	if a.Data[0] != 42 {
		t.Fatal("Reshape must share backing data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reshape with wrong count should panic")
		}
	}()
	a.Reshape(3)
}

func TestRandomizeDeterministic(t *testing.T) {
	a := New(100).Randomize(stats.NewRNG(5), 1)
	b := New(100).Randomize(stats.NewRNG(5), 1)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("same seed should give same tensor")
		}
		if a.Data[i] < -1 || a.Data[i] >= 1 {
			t.Fatalf("value %v outside [-1,1)", a.Data[i])
		}
	}
}

func TestMaxAbs(t *testing.T) {
	a := FromData([]float32{1, -5, 3}, 3)
	if a.MaxAbs() != 5 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
	if New(2).MaxAbs() != 0 {
		t.Fatal("zero tensor MaxAbs should be 0")
	}
}

func TestDTypeBytes(t *testing.T) {
	cases := map[DType]int{FP32: 4, FP16: 2, INT8: 1, FP64: 8, DType(99): 4}
	for d, want := range cases {
		if d.Bytes() != want {
			t.Errorf("%v.Bytes() = %d, want %d", d, d.Bytes(), want)
		}
	}
	for _, d := range []DType{FP32, FP16, INT8, FP64} {
		if d.String() == "unknown" || d.String() == "" {
			t.Errorf("DType %d has bad String", d)
		}
	}
	if DType(99).String() != "unknown" {
		t.Error("unknown DType should stringify as unknown")
	}
}

func TestAtPanicsOnRankMismatch(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At with wrong rank should panic")
		}
	}()
	a.At(1)
}

func TestAtPanicsOutOfRange(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range should panic")
		}
	}()
	a.At(0, 2)
}

func almostEq32(a, b float32, tol float64) bool {
	return math.Abs(float64(a-b)) <= tol
}
