package tensor

import "math"

// QTensor is a symmetric INT8-quantized tensor: value ≈ Scale * int8.
// This is the representation TFLite/EdgeTPU and TensorRT INT8 modes use
// for weights (per-tensor symmetric scheme).
type QTensor struct {
	Shape Shape
	Data  []int8
	Scale float32
}

// QuantizeSymmetric quantizes t to INT8 with a per-tensor scale of
// maxabs/127. An all-zero tensor quantizes with scale 1 to avoid a
// degenerate zero scale.
func QuantizeSymmetric(t *Tensor) *QTensor {
	scale := t.MaxAbs() / 127
	if scale == 0 {
		scale = 1
	}
	q := &QTensor{Shape: t.Shape.Clone(), Data: make([]int8, len(t.Data)), Scale: scale}
	for i, v := range t.Data {
		r := math.RoundToEven(float64(v / scale))
		if r > 127 {
			r = 127
		} else if r < -127 {
			r = -127
		}
		q.Data[i] = int8(r)
	}
	return q
}

// Dequantize reconstructs a float32 tensor from q.
func (q *QTensor) Dequantize() *Tensor {
	t := &Tensor{Shape: q.Shape.Clone(), Data: make([]float32, len(q.Data))}
	for i, v := range q.Data {
		t.Data[i] = float32(v) * q.Scale
	}
	return t
}

// QuantizePerChannelRoundTrip quantizes a weight tensor to INT8 with one
// symmetric scale per output channel (the tensor's first axis) and
// reconstructs it — the per-axis scheme TFLite actually applies to
// convolution weights, which cuts quantization error on layers whose
// channels have very different magnitudes. It returns the reconstructed
// tensor and the per-channel scales.
func QuantizePerChannelRoundTrip(t *Tensor) (*Tensor, []float32) {
	cout := t.Shape[0]
	per := len(t.Data) / cout
	out := t.Clone()
	scales := make([]float32, cout)
	for oc := 0; oc < cout; oc++ {
		seg := out.Data[oc*per : (oc+1)*per]
		var maxAbs float32
		for _, v := range seg {
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		scale := maxAbs / 127
		if scale == 0 {
			scale = 1
		}
		scales[oc] = scale
		for i, v := range seg {
			r := math.RoundToEven(float64(v / scale))
			if r > 127 {
				r = 127
			} else if r < -127 {
				r = -127
			}
			seg[i] = float32(r) * scale
		}
	}
	return out, scales
}

// RoundTripFP16 converts every element to IEEE-754 binary16 and back,
// emulating half-precision inference error. Values beyond the FP16 range
// saturate to ±65504 (no infinities), matching accelerator behaviour.
func RoundTripFP16(t *Tensor) *Tensor {
	out := t.Clone()
	for i, v := range out.Data {
		out.Data[i] = fromFP16(toFP16(v))
	}
	return out
}

// toFP16 converts a float32 to binary16 bits with round-to-nearest-even
// and saturation.
func toFP16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xff) - 127 + 15
	mant := b & 0x7fffff

	switch {
	case exp >= 0x1f: // overflow or inf/NaN
		if b&0x7fffffff > 0x7f800000 { // NaN
			return sign | 0x7e00
		}
		return sign | 0x7bff // saturate to 65504
	case exp <= 0: // subnormal or underflow
		if exp < -10 {
			return sign // flush to zero
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := (mant + half) >> shift
		// round-to-nearest-even on ties
		if mant&((half<<1)-1) == half && rounded&1 == 1 {
			rounded--
		}
		return sign | uint16(rounded)
	default:
		rounded := mant + 0xfff + (mant>>13)&1
		if rounded&0x800000 != 0 { // mantissa overflowed into exponent
			rounded = 0
			exp++
			if exp >= 0x1f {
				return sign | 0x7bff
			}
		}
		return sign | uint16(exp)<<10 | uint16(rounded>>13)
	}
}

// fromFP16 converts binary16 bits to float32.
func fromFP16(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// subnormal: normalize
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0x7f800000 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// PruneMagnitude zeroes the fraction of elements with the smallest
// absolute values (global magnitude pruning) in place and returns the
// count of zeroed elements. fraction is clamped to [0, 1].
func PruneMagnitude(t *Tensor, fraction float64) int {
	if fraction <= 0 || len(t.Data) == 0 {
		return 0
	}
	if fraction > 1 {
		fraction = 1
	}
	k := int(fraction * float64(len(t.Data)))
	if k == 0 {
		return 0
	}
	// Find the k-th smallest |value| via a copied sort of magnitudes.
	mags := make([]float64, len(t.Data))
	for i, v := range t.Data {
		mags[i] = math.Abs(float64(v))
	}
	threshold := kthSmallest(mags, k)
	zeroed := 0
	for i, v := range t.Data {
		if zeroed >= k {
			break
		}
		if math.Abs(float64(v)) <= threshold {
			t.Data[i] = 0
			zeroed++
		}
	}
	return zeroed
}

// Sparsity returns the fraction of exactly-zero elements in t.
func Sparsity(t *Tensor) float64 {
	if len(t.Data) == 0 {
		return 0
	}
	zeros := 0
	for _, v := range t.Data {
		if v == 0 {
			zeros++
		}
	}
	return float64(zeros) / float64(len(t.Data))
}

// kthSmallest returns the k-th smallest value (1-based) using quickselect.
func kthSmallest(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	k-- // 0-based target index
	for lo < hi {
		// Hoare partition: [lo..p] <= pivot <= [p+1..hi].
		p := partition(xs, lo, hi)
		if k <= p {
			hi = p
		} else {
			lo = p + 1
		}
	}
	return xs[k]
}

func partition(xs []float64, lo, hi int) int {
	pivot := xs[(lo+hi)/2]
	i, j := lo, hi
	for {
		for xs[i] < pivot {
			i++
		}
		for xs[j] > pivot {
			j--
		}
		if i >= j {
			return j
		}
		xs[i], xs[j] = xs[j], xs[i]
		i++
		j--
	}
}
