package tensor

import "math"

// QTensor is a symmetric INT8-quantized tensor: value ≈ scale * int8.
// This is the representation TFLite/EdgeTPU and TensorRT INT8 modes use
// for weights, and the format the executor's int8 kernels consume
// directly. Scale is the per-tensor scale; Scales, when non-nil, holds
// one scale per output channel (the tensor's first axis — TFLite's
// per-axis convolution-weight scheme) and takes precedence.
type QTensor struct {
	Shape  Shape
	Data   []int8
	Scale  float32
	Scales []float32
}

// ScaleFor returns the dequantization scale for output channel oc:
// the per-channel scale when present, the per-tensor scale otherwise.
func (q *QTensor) ScaleFor(oc int) float32 {
	if q.Scales != nil {
		return q.Scales[oc]
	}
	return q.Scale
}

// Clone returns a deep copy of q.
func (q *QTensor) Clone() *QTensor {
	if q == nil {
		return nil
	}
	return &QTensor{
		Shape:  q.Shape.Clone(),
		Data:   append([]int8(nil), q.Data...),
		Scale:  q.Scale,
		Scales: append([]float32(nil), q.Scales...),
	}
}

// quantClamp rounds v (already divided by the scale) to the nearest
// int8 code in [-127, 127]. The symmetric scheme never emits -128: the
// code range must mirror around zero so int8 GEMM accumulators and the
// SWAR lane bias stay symmetric-safe, and so |code| * scale never
// exceeds the calibrated maxabs. Every quantizer in this package funnels
// through here; TestQuantClampSymmetricRange pins the edge.
func quantClamp(v float64) int8 {
	r := math.RoundToEven(v)
	if r > 127 {
		return 127
	}
	if r < -127 {
		return -127
	}
	return int8(r)
}

// symmetricScale returns maxAbs/127, substituting 1 for the degenerate
// all-zero case so dequantization never divides by zero.
func symmetricScale(maxAbs float32) float32 {
	scale := maxAbs / 127
	if scale == 0 {
		scale = 1
	}
	return scale
}

// QuantizeSymmetric quantizes t to INT8 with a per-tensor scale of
// maxabs/127. An all-zero tensor quantizes with scale 1 to avoid a
// degenerate zero scale.
func QuantizeSymmetric(t *Tensor) *QTensor {
	scale := symmetricScale(t.MaxAbs())
	q := &QTensor{Shape: t.Shape.Clone(), Data: make([]int8, len(t.Data)), Scale: scale}
	inv := 1 / float64(scale)
	for i, v := range t.Data {
		q.Data[i] = quantClamp(float64(v) * inv)
	}
	return q
}

// QuantizePerChannel quantizes a weight tensor to INT8 with one
// symmetric scale per output channel (the tensor's first axis),
// populating Scales. This is the weight format the per-channel int8
// execution path consumes.
func QuantizePerChannel(t *Tensor) *QTensor {
	cout := t.Shape[0]
	per := len(t.Data) / cout
	q := &QTensor{
		Shape:  t.Shape.Clone(),
		Data:   make([]int8, len(t.Data)),
		Scale:  1,
		Scales: make([]float32, cout),
	}
	for oc := 0; oc < cout; oc++ {
		seg := t.Data[oc*per : (oc+1)*per]
		var maxAbs float32
		for _, v := range seg {
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
		scale := symmetricScale(maxAbs)
		q.Scales[oc] = scale
		inv := 1 / float64(scale)
		dst := q.Data[oc*per : (oc+1)*per]
		for i, v := range seg {
			dst[i] = quantClamp(float64(v) * inv)
		}
	}
	return q
}

// QuantizeDynamicInto quantizes src per-tensor symmetric into dst
// (same length, overwritten) and returns the scale — the runtime
// activation quantization step of the int8 execution path. It is the
// hot-path variant of QuantizeSymmetric: no allocation, float32 rounding.
func QuantizeDynamicInto(dst []int8, src []float32) float32 {
	var maxAbs float32
	for _, v := range src {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	scale := symmetricScale(maxAbs)
	inv := 1 / scale
	for i, v := range src {
		r := v * inv
		// Round half away from zero: cheaper than RoundToEven and at most
		// half an ulp of code difference on exact .5 ties, which dynamic
		// activation scales essentially never produce.
		if r >= 0 {
			r += 0.5
		} else {
			r -= 0.5
		}
		n := int32(r)
		if n > 127 {
			n = 127
		} else if n < -127 {
			n = -127
		}
		dst[i] = int8(n)
	}
	return scale
}

// Dequantize reconstructs a float32 tensor from q, honouring per-channel
// scales when present.
func (q *QTensor) Dequantize() *Tensor {
	t := &Tensor{Shape: q.Shape.Clone(), Data: make([]float32, len(q.Data))}
	if q.Scales != nil {
		cout := q.Shape[0]
		per := len(q.Data) / cout
		for oc := 0; oc < cout; oc++ {
			s := q.Scales[oc]
			src := q.Data[oc*per : (oc+1)*per]
			dst := t.Data[oc*per : (oc+1)*per]
			for i, v := range src {
				dst[i] = float32(v) * s
			}
		}
		return t
	}
	for i, v := range q.Data {
		t.Data[i] = float32(v) * q.Scale
	}
	return t
}

// QuantizePerChannelRoundTrip quantizes a weight tensor to INT8 with one
// symmetric scale per output channel (the tensor's first axis) and
// reconstructs it — the per-axis scheme TFLite actually applies to
// convolution weights, which cuts quantization error on layers whose
// channels have very different magnitudes. It returns the reconstructed
// tensor and the per-channel scales.
func QuantizePerChannelRoundTrip(t *Tensor) (*Tensor, []float32) {
	q := QuantizePerChannel(t)
	return q.Dequantize(), q.Scales
}

// RoundTripFP16 converts every element to IEEE-754 binary16 and back,
// emulating half-precision inference error. Values beyond the FP16 range
// saturate to ±65504 (no infinities), matching accelerator behaviour.
func RoundTripFP16(t *Tensor) *Tensor {
	out := t.Clone()
	for i, v := range out.Data {
		out.Data[i] = fromFP16(toFP16(v))
	}
	return out
}

// toFP16 converts a float32 to binary16 bits with round-to-nearest-even
// and saturation.
func toFP16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xff) - 127 + 15
	mant := b & 0x7fffff

	switch {
	case exp >= 0x1f: // overflow or inf/NaN
		if b&0x7fffffff > 0x7f800000 { // NaN
			return sign | 0x7e00
		}
		return sign | 0x7bff // saturate to 65504
	case exp <= 0: // subnormal or underflow
		if exp < -10 {
			return sign // flush to zero
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := (mant + half) >> shift
		// round-to-nearest-even on ties
		if mant&((half<<1)-1) == half && rounded&1 == 1 {
			rounded--
		}
		return sign | uint16(rounded)
	default:
		rounded := mant + 0xfff + (mant>>13)&1
		if rounded&0x800000 != 0 { // mantissa overflowed into exponent
			rounded = 0
			exp++
			if exp >= 0x1f {
				return sign | 0x7bff
			}
		}
		return sign | uint16(exp)<<10 | uint16(rounded>>13)
	}
}

// fromFP16 converts binary16 bits to float32.
func fromFP16(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// subnormal: normalize
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0x7f800000 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// PruneMagnitude zeroes the fraction of elements with the smallest
// absolute values (global magnitude pruning) in place and returns the
// count of zeroed elements. fraction is clamped to [0, 1].
func PruneMagnitude(t *Tensor, fraction float64) int {
	if fraction <= 0 || len(t.Data) == 0 {
		return 0
	}
	if fraction > 1 {
		fraction = 1
	}
	k := int(fraction * float64(len(t.Data)))
	if k == 0 {
		return 0
	}
	// Find the k-th smallest |value| via a copied sort of magnitudes.
	mags := make([]float64, len(t.Data))
	for i, v := range t.Data {
		mags[i] = math.Abs(float64(v))
	}
	threshold := kthSmallest(mags, k)
	zeroed := 0
	for i, v := range t.Data {
		if zeroed >= k {
			break
		}
		if math.Abs(float64(v)) <= threshold {
			t.Data[i] = 0
			zeroed++
		}
	}
	return zeroed
}

// Sparsity returns the fraction of exactly-zero elements in t.
func Sparsity(t *Tensor) float64 {
	if len(t.Data) == 0 {
		return 0
	}
	zeros := 0
	for _, v := range t.Data {
		if v == 0 {
			zeros++
		}
	}
	return float64(zeros) / float64(len(t.Data))
}

// kthSmallest returns the k-th smallest value (1-based) using quickselect.
func kthSmallest(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	k-- // 0-based target index
	for lo < hi {
		// Hoare partition: [lo..p] <= pivot <= [p+1..hi].
		p := partition(xs, lo, hi)
		if k <= p {
			hi = p
		} else {
			lo = p + 1
		}
	}
	return xs[k]
}

func partition(xs []float64, lo, hi int) int {
	pivot := xs[(lo+hi)/2]
	i, j := lo, hi
	for {
		for xs[i] < pivot {
			i++
		}
		for xs[j] > pivot {
			j--
		}
		if i >= j {
			return j
		}
		xs[i], xs[j] = xs[j], xs[i]
		i++
		j--
	}
}
