package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the package's intra-op parallelism substrate: a
// persistent, GOMAXPROCS-sized worker pool that every parallel kernel
// (GEMM, int8 GEMM, conv, depthwise, im2col, matvec) and the graph
// executor's wavefront scheduler share. The previous design spawned
// goroutines per kernel call; at single-inference granularity the spawn
// and exit cost ate the sharding win (BENCH_engine.json recorded the
// parallel kernels *losing* to serial). Here workers are spawned once,
// park on a channel, and are enlisted per call with a single
// non-blocking channel send.
//
// Scheduling model: parallelFor cuts the index range [0, n) into chunks
// of at least `grain` units and publishes an atomic cursor; the caller
// and any enlisted workers claim chunks from the cursor until the range
// is drained (chunked index-range stealing — a slow chunk does not
// stall the others, and chunk order never affects results because every
// chunk writes a disjoint output slice).
//
// Nested-parallelism rule: enlisting is non-blocking, and the caller
// always works the range itself. When the pool is saturated — a
// parallel kernel invoked from inside another parallel region, e.g. the
// wavefront executor evaluating two conv nodes whose kernels both try
// to shard — the inner call finds no parked worker and simply runs its
// whole range on the calling goroutine. Inner parallelism degrades to
// serial instead of deadlocking (nobody ever blocks waiting for a
// worker) or oversubscribing (the worker set is fixed).
const (
	// chunksPerWorker is how many chunks parallelFor aims to cut per
	// available worker. >1 lets fast workers steal from slow ones;
	// too many and panel repacking (GEMM) and handoff overhead grow.
	chunksPerWorker = 4

	// parallelGrainMACs is the minimum multiply-accumulate count one
	// chunk should carry. Chunks this small still amortize the chunk
	// claim (one atomic add) thousands of times over.
	parallelGrainMACs = parallelThresholdMACs / 16
)

// workTask is one parallelFor invocation's shared state. Workers claim
// chunk indices from cursor; wg counts enlisted helpers so the caller
// can await them before returning.
type workTask struct {
	cursor atomic.Int64
	chunks int
	chunk  int
	n      int
	fn     func(lo, hi int)
	wg     sync.WaitGroup
}

// run claims chunks until the cursor passes the end of the range.
func (t *workTask) run() {
	for {
		c := int(t.cursor.Add(1)) - 1
		if c >= t.chunks {
			return
		}
		lo := c * t.chunk
		hi := lo + t.chunk
		if hi > t.n {
			hi = t.n
		}
		t.fn(lo, hi)
	}
}

// poolState is one generation of the worker pool: a parking channel and
// the stop channel that retires the generation when GOMAXPROCS changes.
// Generations are immutable once published, so readers need no lock.
type poolState struct {
	queue chan *workTask
	stop  chan struct{}
	size  int
}

var (
	poolMu  sync.Mutex
	poolGen atomic.Pointer[poolState]

	// taskPool recycles workTask headers so a parallelFor call costs no
	// steady-state allocation beyond its fn closure.
	taskPool = sync.Pool{New: func() any { return new(workTask) }}

	// Pool traffic counters (tests assert saturation fallback and
	// enlistment actually happen; engbench reads nothing from these).
	poolParallelRuns atomic.Int64 // parallelFor calls that enlisted >= 1 helper
	poolSerialRuns   atomic.Int64 // parallelFor calls that ran entirely on the caller
	poolEnlistments  atomic.Int64 // total helper enlistments
)

// ensurePool returns the pool generation sized to the current
// GOMAXPROCS, retiring the old workers and parking a fresh set when the
// value changed since the last call (engbench sweeps GOMAXPROCS
// in-process; servers set it once at boot).
func ensurePool() *poolState {
	want := runtime.GOMAXPROCS(0)
	if s := poolGen.Load(); s != nil && s.size == want {
		return s
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	if s := poolGen.Load(); s != nil && s.size == want {
		return s
	}
	if old := poolGen.Load(); old != nil {
		close(old.stop) // old workers exit; one mid-task finishes it first
	}
	s := &poolState{
		queue: make(chan *workTask),
		stop:  make(chan struct{}),
		size:  want,
	}
	for i := 0; i < want; i++ {
		go poolWorker(s.queue, s.stop)
	}
	poolGen.Store(s)
	return s
}

// poolWorker parks on queue until enlisted, works the task's chunk
// range, and reports completion through the task's WaitGroup. Closing
// stop (pool resize or test shutdown) retires it; a worker mid-task
// finishes that task before checking.
func poolWorker(queue chan *workTask, stop chan struct{}) {
	for {
		select {
		case t := <-queue:
			t.run()
			t.wg.Done()
		case <-stop:
			return
		}
	}
}

// shutdownPool retires the current worker generation without starting a
// new one; the next parallelFor call rebuilds the pool. Exists for the
// idle/shutdown tests — production code never needs it (idle workers
// are parked on a channel receive and cost nothing).
func shutdownPool() {
	poolMu.Lock()
	defer poolMu.Unlock()
	if old := poolGen.Load(); old != nil {
		close(old.stop)
	}
	poolGen.Store(nil)
}

// parallelFor runs fn over [0, n) in chunks of at least grain indices,
// on the calling goroutine plus any idle pool workers. fn must treat
// [lo, hi) ranges as disjoint work with no cross-chunk ordering
// dependency; every parallel kernel in this package satisfies that by
// writing disjoint output rows. Returns only after every chunk ran.
func parallelFor(n, grain int, fn func(lo, hi int)) {
	parallelForMax(n, grain, 0, fn)
}

// parallelForMax is parallelFor with an explicit cap on total
// goroutines working the range, caller included; bound <= 0 means the
// pool size. The graph executor passes its Workers knob through this.
func parallelForMax(n, grain, bound int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	s := ensurePool()
	limit := s.size
	if bound > 0 && bound < limit {
		limit = bound
	}
	if limit <= 1 || n <= grain {
		poolSerialRuns.Add(1)
		fn(0, n)
		return
	}
	chunk := (n + limit*chunksPerWorker - 1) / (limit * chunksPerWorker)
	if chunk < grain {
		chunk = grain
	}
	chunks := (n + chunk - 1) / chunk
	if chunks <= 1 {
		poolSerialRuns.Add(1)
		fn(0, n)
		return
	}
	t := taskPool.Get().(*workTask)
	t.cursor.Store(0)
	t.chunks, t.chunk, t.n, t.fn = chunks, chunk, n, fn

	// Enlist parked workers with non-blocking sends: at most limit-1
	// helpers (the caller is the limit-th runner) and never more than
	// the chunks they could claim. The first refused send means every
	// worker is busy — stop asking and run with what we have.
	maxHelpers := limit - 1
	if maxHelpers > chunks-1 {
		maxHelpers = chunks - 1
	}
	helpers := 0
enlist:
	for helpers < maxHelpers {
		t.wg.Add(1)
		select {
		case s.queue <- t:
			helpers++
		default:
			t.wg.Add(-1)
			break enlist
		}
	}
	if helpers > 0 {
		poolParallelRuns.Add(1)
		poolEnlistments.Add(int64(helpers))
	} else {
		poolSerialRuns.Add(1)
	}
	t.run()
	t.wg.Wait()
	t.fn = nil
	taskPool.Put(t)
}

// grainForMACs converts a per-unit work estimate into a parallelFor
// grain: the smallest unit count whose chunk still carries at least
// parallelGrainMACs multiply-accumulates.
func grainForMACs(macsPerUnit int) int {
	if macsPerUnit <= 0 {
		return 1
	}
	g := parallelGrainMACs / macsPerUnit
	if g < 1 {
		g = 1
	}
	return g
}

// ParallelFor exposes the kernel worker pool's chunked scheduling to
// sibling packages: the graph executor's wavefront runs level nodes
// through it so inter-op and intra-op parallelism share one fixed
// worker set instead of stacking goroutines. See the package comment
// at the top of this file for the saturation (nested-parallelism)
// semantics.
func ParallelFor(n, grain int, fn func(lo, hi int)) { parallelFor(n, grain, fn) }

// ParallelForMax is ParallelFor with an upper bound on the goroutines
// working the range, caller included; bound <= 0 means the pool size.
func ParallelForMax(n, grain, bound int, fn func(lo, hi int)) { parallelForMax(n, grain, bound, fn) }

// KernelParallelism reports the worker count the kernel pool targets
// (GOMAXPROCS at last resize). Serving layers export it as a metric so
// a deployment can see what intra-op speedup is even possible.
func KernelParallelism() int { return ensurePool().size }
