package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// bitsEqual reports whether two float32 slices are bitwise identical —
// the prepacked kernels' contract against their unpacked twins.
func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestGemmPrepackedMatchesBlocked pins the core bitwise contract: the
// prepacked GEMM over AOT panels equals the per-call-packing blocked
// kernel for awkward K/N remainders, K blocks past gemmKC, N blocks
// past gemmNC, and single-row A operands.
func TestGemmPrepackedMatchesBlocked(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	cases := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 2}, {4, gemmKC, 9}, {5, gemmKC - 1, 7},
		{2, gemmKC + 1, gemmNC + 3}, {7, 300, 17}, {1, 130, 515},
		{9, 2*gemmKC + 3, 33}, {25, 37, 11},
	}
	for _, c := range cases {
		a := New(c.m, c.k).Randomize(r, 1)
		b := New(c.k, c.n).Randomize(r, 1)
		want := MatMulSerial(a, b)
		pw := PackGemmB(b.Data, c.k, c.n)
		got := New(c.m, c.n)
		GemmPrepacked(got.Data, a.Data, pw, c.m)
		if !bitsEqual(got.Data, want.Data) {
			t.Errorf("m=%d k=%d n=%d: prepacked GEMM differs from blocked", c.m, c.k, c.n)
		}
	}
}

// TestGemmPrepackedParallelMatchesSerial crosses the parallel MAC
// threshold so the prepacked row sharding runs, which must not change a
// bit relative to both the serial prepacked range and the unpacked
// blocked kernel.
func TestGemmPrepackedParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	m, k, n := 96, 200, 130 // 2.4M MACs: above parallelThresholdMACs
	a := New(m, k).Randomize(r, 1)
	b := New(k, n).Randomize(r, 1)
	pw := PackGemmB(b.Data, k, n)
	par := New(m, n)
	GemmPrepacked(par.Data, a.Data, pw, m)
	ser := New(m, n)
	gemmPrepackedRange(ser.Data, a.Data, pw, 0, m)
	if !bitsEqual(par.Data, ser.Data) {
		t.Fatal("parallel prepacked GEMM differs from serial prepacked")
	}
	want := MatMulSerial(a, b)
	if !bitsEqual(par.Data, want.Data) {
		t.Fatal("parallel prepacked GEMM differs from unpacked blocked")
	}
}

// TestPackConvWeightsSkipsSparse: pruned-grade weights must not pack,
// preserving the unpacked path's zero-skipping sparse dispatch.
func TestPackConvWeightsSkipsSparse(t *testing.T) {
	w := New(8, 4, 3, 3)
	for i := 0; i < len(w.Data)/8; i++ {
		w.Data[i] = 1 // 12.5% nonzero, far past sparseSkipFraction
	}
	if pw := PackConvWeights(w); pw != nil {
		t.Fatal("PackConvWeights packed a sparse weight tensor")
	}
	w.Randomize(rand.New(rand.NewSource(1)), 1)
	if pw := PackConvWeights(w); pw == nil {
		t.Fatal("PackConvWeights refused dense weights")
	}
}

// convCase is one prepacked-vs-unpacked conv comparison geometry.
type convCase struct {
	name           string
	cin, h, w      int
	cout, kh, kw   int
	spec           Conv2DSpec
}

func prepackConvCases() []convCase {
	return []convCase{
		{"1x1", 8, 6, 6, 5, 1, 1, Conv2DSpec{Stride: 1}},
		{"3x3-pad", 3, 9, 9, 7, 3, 3, Conv2DSpec{Stride: 1, Pad: 1}},
		{"3x3-stride2", 6, 11, 11, 9, 3, 3, Conv2DSpec{Stride: 2, Pad: 1}},
		{"asym-1x7", 4, 8, 8, 6, 1, 7, Conv2DSpec{Stride: 1, PadW: 3, Asym: true}},
		{"k-remainder", 16, 7, 7, 11, 3, 3, Conv2DSpec{Stride: 1, Pad: 1}}, // rows=144 > gemmKC
		{"odd-ncols", 5, 5, 7, 4, 3, 3, Conv2DSpec{Stride: 2, Pad: 1}},    // hout*wout odd
	}
}

// TestConv2DPrepackedMatchesGEMM: the prepacked conv (im2row +
// transposed GEMM + transposing bias sweep) must be bitwise identical
// to the unpacked im2col+GEMM conv on every awkward geometry.
func TestConv2DPrepackedMatchesGEMM(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for _, c := range prepackConvCases() {
		in := randTensor(r, c.cin, c.h, c.w)
		w := randTensor(r, c.cout, c.cin, c.kh, c.kw)
		bias := make([]float32, c.cout)
		for i := range bias {
			bias[i] = r.Float32() - 0.5
		}
		hout, wout := c.spec.OutDims(c.h, c.w, c.kh, c.kw)
		want := New(c.cout, hout, wout)
		Conv2DGEMMInto(want, in, w, bias, c.spec, nil)
		pw := PackConvWeights(w)
		if pw == nil {
			t.Fatalf("%s: dense weights did not pack", c.name)
		}
		got := New(c.cout, hout, wout)
		Conv2DPrepackedInto(got, in, pw, bias, c.spec, Epilogue{}, nil)
		if !bitsEqual(got.Data, want.Data) {
			t.Errorf("%s: prepacked conv differs from unpacked GEMM conv", c.name)
		}
	}
}

// TestConv2DPrepackedFusedMatchesGEMMFused sweeps every fusable
// epilogue (affine alone, each activation, affine+activation) against
// the unpacked fused GEMM kernel, bitwise.
func TestConv2DPrepackedFusedMatchesGEMMFused(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	c := convCase{"fused", 6, 9, 9, 8, 3, 3, Conv2DSpec{Stride: 1, Pad: 1}}
	in := randTensor(r, c.cin, c.h, c.w)
	w := randTensor(r, c.cout, c.cin, c.kh, c.kw)
	bias := make([]float32, c.cout)
	scale := make([]float32, c.cout)
	shift := make([]float32, c.cout)
	for i := range bias {
		bias[i] = r.Float32() - 0.5
		scale[i] = r.Float32() + 0.5
		shift[i] = r.Float32() - 0.5
	}
	pw := PackConvWeights(w)
	hout, wout := c.spec.OutDims(c.h, c.w, c.kh, c.kw)
	epis := []Epilogue{
		{Scale: scale, Shift: shift},
		{Act: ActReLU},
		{Scale: scale, Shift: shift, Act: ActReLU},
		{Scale: scale, Shift: shift, Act: ActReLU6},
		{Scale: scale, Shift: shift, Act: ActLeakyReLU, Alpha: 0.1},
		{Scale: scale, Shift: shift, Act: ActSigmoid},
		{Scale: scale, Shift: shift, Act: ActTanh},
	}
	for _, epi := range epis {
		want := New(c.cout, hout, wout)
		Conv2DGEMMFusedInto(want, in, w, bias, c.spec, nil, epi)
		got := New(c.cout, hout, wout)
		Conv2DPrepackedInto(got, in, pw, bias, c.spec, epi, nil)
		if !bitsEqual(got.Data, want.Data) {
			t.Errorf("act=%d affine=%v: prepacked fused conv differs from unpacked", epi.Act, len(epi.Scale) > 0)
		}
	}
}

// TestConv2DPrepackedLargeParallel crosses the GEMM parallel threshold
// on the whole conv so the sharded prepacked path runs against the
// sharded unpacked path — still bitwise.
func TestConv2DPrepackedLargeParallel(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	in := randTensor(r, 32, 24, 24)
	w := randTensor(r, 48, 32, 3, 3)
	spec := Conv2DSpec{Stride: 1, Pad: 1}
	want := New(48, 24, 24)
	Conv2DGEMMInto(want, in, w, nil, spec, nil)
	pw := PackConvWeights(w)
	got := New(48, 24, 24)
	Conv2DPrepackedInto(got, in, pw, nil, spec, Epilogue{}, nil)
	if !bitsEqual(got.Data, want.Data) {
		t.Fatal("large prepacked conv differs from unpacked GEMM conv")
	}
}

// TestConv2DPrepackedBatchMatchesSequential: the batch-folded wide GEMM
// must reproduce per-sample prepacked outputs bit for bit.
func TestConv2DPrepackedBatchMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	const B = 3
	c := convCase{"batch", 6, 9, 9, 8, 3, 3, Conv2DSpec{Stride: 1, Pad: 1}}
	w := randTensor(r, c.cout, c.cin, c.kh, c.kw)
	bias := make([]float32, c.cout)
	for i := range bias {
		bias[i] = r.Float32() - 0.5
	}
	pw := PackConvWeights(w)
	hout, wout := c.spec.OutDims(c.h, c.w, c.kh, c.kw)
	epi := Epilogue{Act: ActReLU}
	ins := make([]*Tensor, B)
	wants := make([]*Tensor, B)
	gots := make([]*Tensor, B)
	for i := 0; i < B; i++ {
		ins[i] = randTensor(r, c.cin, c.h, c.w)
		wants[i] = New(c.cout, hout, wout)
		Conv2DPrepackedInto(wants[i], ins[i], pw, bias, c.spec, epi, nil)
		gots[i] = New(c.cout, hout, wout)
	}
	Conv2DPrepackedBatchInto(gots, ins, pw, bias, c.spec, epi)
	for i := 0; i < B; i++ {
		if !bitsEqual(gots[i].Data, wants[i].Data) {
			t.Errorf("sample %d: batch-folded conv differs from sequential prepacked", i)
		}
	}
}

// TestQGemmPrepackedMatchesSerial pins the int8 twin: prepacked QGEMM
// equals the unpacked blocked kernel, including the odd-M single-row
// remainder and K blocks past qgemmKC.
func TestQGemmPrepackedMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	cases := []struct{ m, k, n int }{
		{1, 1, 1}, {2, 7, 3}, {5, qgemmKC, 9}, {3, qgemmKC - 1, 7}, // odd m: pair remainder
		{4, qgemmKC + 5, 17}, {7, 300, qgemmNC + 3}, {9, 37, 11},
	}
	for _, c := range cases {
		a := randQ(r, c.m*c.k)
		b := randQ(r, c.k*c.n)
		want := make([]int32, c.m*c.n)
		QGEMMSerial(want, a, b, c.m, c.k, c.n)
		pq := PackQGemmB(b, c.k, c.n)
		got := make([]int32, c.m*c.n)
		QGemmPrepacked(got, a, pq, c.m)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("m=%d k=%d n=%d: prepacked QGEMM differs at %d: %d vs %d",
					c.m, c.k, c.n, i, got[i], want[i])
			}
		}
	}
}

// TestConv2DQPrepackedMatchesUnpacked: the prepacked int8 conv must be
// bitwise identical to Conv2DQInt8Into under both per-tensor and
// per-channel weight quantization, with and without activations, on
// odd output-pixel counts (odd-M row pairs in the transposed GEMM).
func TestConv2DQPrepackedMatchesUnpacked(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	cases := []convCase{
		{"q-3x3", 6, 9, 9, 8, 3, 3, Conv2DSpec{Stride: 1, Pad: 1}},
		{"q-1x1", 8, 6, 6, 5, 1, 1, Conv2DSpec{Stride: 1}},
		{"q-odd-ncols", 5, 5, 7, 4, 3, 3, Conv2DSpec{Stride: 2, Pad: 1}},
	}
	for _, c := range cases {
		in := randTensor(r, c.cin, c.h, c.w)
		w := randTensor(r, c.cout, c.cin, c.kh, c.kw)
		bias := make([]float32, c.cout)
		for i := range bias {
			bias[i] = r.Float32() - 0.5
		}
		hout, wout := c.spec.OutDims(c.h, c.w, c.kh, c.kw)
		for _, qw := range []*QTensor{QuantizeSymmetric(w), QuantizePerChannel(w)} {
			for _, act := range []Act{ActNone, ActReLU, ActLeakyReLU} {
				want := New(c.cout, hout, wout)
				Conv2DQInt8Into(want, in, qw, bias, c.spec, act, 0.1)
				pq := PackQConvWeights(qw)
				got := New(c.cout, hout, wout)
				Conv2DQPrepackedInto(got, in, pq, qw, bias, c.spec, act, 0.1)
				if !bitsEqual(got.Data, want.Data) {
					t.Errorf("%s act=%d perchannel=%v: prepacked int8 conv differs", c.name, act, qw.Scales != nil)
				}
			}
		}
	}
}

// TestConv2DQPrepackedBatchMatchesSequential: batch-folded int8 conv
// (per-sample dynamic scales, one wide QGEMM) vs sequential calls.
func TestConv2DQPrepackedBatchMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	const B = 3
	c := convCase{"qbatch", 6, 9, 9, 8, 3, 3, Conv2DSpec{Stride: 1, Pad: 1}}
	w := randTensor(r, c.cout, c.cin, c.kh, c.kw)
	qw := QuantizePerChannel(w)
	pq := PackQConvWeights(qw)
	bias := make([]float32, c.cout)
	for i := range bias {
		bias[i] = r.Float32() - 0.5
	}
	hout, wout := c.spec.OutDims(c.h, c.w, c.kh, c.kw)
	ins := make([]*Tensor, B)
	wants := make([]*Tensor, B)
	gots := make([]*Tensor, B)
	for i := 0; i < B; i++ {
		ins[i] = randTensor(r, c.cin, c.h, c.w)
		wants[i] = New(c.cout, hout, wout)
		Conv2DQPrepackedInto(wants[i], ins[i], pq, qw, bias, c.spec, ActReLU, 0)
		gots[i] = New(c.cout, hout, wout)
	}
	Conv2DQPrepackedBatchInto(gots, ins, pq, qw, bias, c.spec, ActReLU, 0)
	for i := 0; i < B; i++ {
		if !bitsEqual(gots[i].Data, wants[i].Data) {
			t.Errorf("sample %d: batch-folded int8 conv differs from sequential", i)
		}
	}
}

// TestDenseQPrepackedMatchesUnpacked: prepacked int8 dense (single-row
// QGEMM) vs the unpacked matvec path, per-tensor and per-channel.
func TestDenseQPrepackedMatchesUnpacked(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	for _, dims := range [][2]int{{7, 13}, {33, 300}, {64, 129}} {
		out, in := dims[0], dims[1]
		w := randTensor(r, out, in)
		x := randTensor(r, in)
		bias := make([]float32, out)
		for i := range bias {
			bias[i] = r.Float32() - 0.5
		}
		for _, qw := range []*QTensor{QuantizeSymmetric(w), QuantizePerChannel(w)} {
			want := make([]float32, out)
			DenseQInt8Into(want, qw, bias, x.Data, ActReLU, 0)
			pq := PackQDenseWeights(qw)
			got := make([]float32, out)
			DenseQPrepackedInto(got, pq, qw, bias, x.Data, ActReLU, 0)
			if !bitsEqual(got, want) {
				t.Errorf("out=%d in=%d perchannel=%v: prepacked int8 dense differs", out, in, qw.Scales != nil)
			}
		}
	}
}

// TestDenseQPrepackedBatchMatchesSequential: the folded [B, In] QGEMM
// vs B single-sample calls (each with its own dynamic scale).
func TestDenseQPrepackedBatchMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(83))
	const B, out, in = 5, 33, 127 // odd B: pair remainder in the folded GEMM
	w := randTensor(r, out, in)
	qw := QuantizeSymmetric(w)
	pq := PackQDenseWeights(qw)
	bias := make([]float32, out)
	for i := range bias {
		bias[i] = r.Float32() - 0.5
	}
	ins := make([]*Tensor, B)
	wants := make([]*Tensor, B)
	gots := make([]*Tensor, B)
	for i := 0; i < B; i++ {
		ins[i] = randTensor(r, in)
		wants[i] = New(out)
		DenseQPrepackedInto(wants[i].Data, pq, qw, bias, ins[i].Data, ActReLU, 0)
		gots[i] = New(out)
	}
	DenseQPrepackedBatchInto(gots, ins, pq, qw, bias, ActReLU, 0)
	for i := 0; i < B; i++ {
		if !bitsEqual(gots[i].Data, wants[i].Data) {
			t.Errorf("sample %d: batch-folded int8 dense differs from sequential", i)
		}
	}
}

// TestConv2DPrepackedScratchPool: the arena-backed scratch path must
// produce the same bits as the self-allocating path and return its
// buffers to the pool.
func TestConv2DPrepackedScratchPool(t *testing.T) {
	r := rand.New(rand.NewSource(89))
	c := convCase{"scratch", 6, 9, 9, 8, 3, 3, Conv2DSpec{Stride: 1, Pad: 1}}
	in := randTensor(r, c.cin, c.h, c.w)
	w := randTensor(r, c.cout, c.cin, c.kh, c.kw)
	pw := PackConvWeights(w)
	hout, wout := c.spec.OutDims(c.h, c.w, c.kh, c.kw)
	want := New(c.cout, hout, wout)
	Conv2DPrepackedInto(want, in, pw, nil, c.spec, Epilogue{}, nil)
	pool := NewPool()
	got := New(c.cout, hout, wout)
	Conv2DPrepackedInto(got, in, pw, nil, c.spec, Epilogue{}, pool)
	if !bitsEqual(got.Data, want.Data) {
		t.Fatal("pooled-scratch prepacked conv differs from unpooled")
	}
	st := pool.Stats()
	if st.Gets != 2 || st.Puts != 2 {
		t.Fatalf("scratch pool traffic gets=%d puts=%d, want 2/2", st.Gets, st.Puts)
	}
}
