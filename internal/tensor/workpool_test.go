package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// coverage runs parallelFor and records exactly which indices were
// visited and how many times.
func coverage(t *testing.T, n, grain int) {
	t.Helper()
	counts := make([]int32, n)
	parallelFor(n, grain, func(lo, hi int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad range [%d, %d) for n=%d", lo, hi, n)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&counts[i], 1)
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("n=%d grain=%d: index %d visited %d times, want 1", n, grain, i, c)
		}
	}
}

func TestParallelForExactCoverage(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 16, 129, 1000, 4096, 12345} {
		for _, grain := range []int{0, 1, 2, 64, 5000} {
			coverage(t, n, grain)
		}
	}
}

func TestParallelForMaxBound(t *testing.T) {
	// bound=1 must run the whole range in a single call on the caller.
	var calls int32
	ParallelForMax(100, 1, 1, func(lo, hi int) {
		atomic.AddInt32(&calls, 1)
		if lo != 0 || hi != 100 {
			t.Errorf("bound=1 range [%d, %d), want [0, 100)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("bound=1: fn called %d times, want 1", calls)
	}
}

// TestParallelForNested drives nested parallelFor under load: inner
// calls must complete (serial fallback when the pool is saturated)
// without deadlock, and every index must still be covered exactly once.
func TestParallelForNested(t *testing.T) {
	const outer, inner = 64, 257
	counts := make([]int32, outer*inner)
	parallelFor(outer, 1, func(olo, ohi int) {
		for o := olo; o < ohi; o++ {
			o := o
			parallelFor(inner, 1, func(ilo, ihi int) {
				for i := ilo; i < ihi; i++ {
					atomic.AddInt32(&counts[o*inner+i], 1)
				}
			})
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("nested: index %d visited %d times, want 1", i, c)
		}
	}
}

// TestParallelForConcurrentCallers hammers the pool from many
// goroutines at once — the serving-engine shape (replicas × intra-op).
func TestParallelForConcurrentCallers(t *testing.T) {
	const callers, n = 8, 1024
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			counts := make([]int32, n)
			for rep := 0; rep < 20; rep++ {
				clear(counts)
				parallelFor(n, 3, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&counts[i], 1)
					}
				})
				for i := range counts {
					if counts[i] != 1 {
						t.Errorf("index %d visited %d times", i, counts[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestPoolResize verifies the pool tracks GOMAXPROCS changes (the
// engbench sweep does this in-process) and that retired generations
// don't leak goroutines without bound.
func TestPoolResize(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(2)
	if got := KernelParallelism(); got != 2 {
		t.Fatalf("KernelParallelism after GOMAXPROCS(2) = %d, want 2", got)
	}
	runtime.GOMAXPROCS(4)
	if got := KernelParallelism(); got != 4 {
		t.Fatalf("KernelParallelism after GOMAXPROCS(4) = %d, want 4", got)
	}
	// Work still distributes correctly across a resize.
	coverage(t, 10000, 1)
}

// TestPoolShutdown verifies the test hook stops workers and that the
// next parallelFor transparently restarts the pool.
func TestPoolShutdown(t *testing.T) {
	coverage(t, 1000, 1) // ensure pool is up
	shutdownPool()
	// Pool must come back on demand.
	coverage(t, 1000, 1)
	if KernelParallelism() != runtime.GOMAXPROCS(0) {
		t.Fatalf("pool size %d after restart, want %d", KernelParallelism(), runtime.GOMAXPROCS(0))
	}
}

// TestParallelForSerialSmall pins the dispatch policy: work at or under
// one grain never pays pool overhead.
func TestParallelForSerialSmall(t *testing.T) {
	before := poolParallelRuns.Load()
	parallelFor(8, 8, func(lo, hi int) {})
	parallelFor(1, 0, func(lo, hi int) {})
	if got := poolParallelRuns.Load(); got != before {
		t.Fatalf("small parallelFor took the parallel path (%d new parallel runs)", got-before)
	}
}

func TestGrainForMACs(t *testing.T) {
	if g := grainForMACs(0); g < 1 {
		t.Fatalf("grainForMACs(0) = %d, want >= 1", g)
	}
	if g := grainForMACs(parallelGrainMACs * 10); g != 1 {
		t.Fatalf("grainForMACs(huge) = %d, want 1", g)
	}
	// A unit costing exactly the grain budget should give grain 1;
	// cheap units batch up.
	small := grainForMACs(1)
	if small < 2 {
		t.Fatalf("grainForMACs(1) = %d, want a batching grain > 1", small)
	}
}
