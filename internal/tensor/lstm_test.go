package tensor

import (
	"math"
	"testing"

	"edgebench/internal/stats"
)

func TestLSTMCellStepZeroWeights(t *testing.T) {
	// All-zero weights: gates are sigma(0)=0.5 and tanh(0)=0, so the
	// cell halves each step and the hidden output is o*tanh(c).
	hidden, features := 3, 2
	w := New(4*hidden, features+hidden)
	x := []float32{1, -1}
	h := make([]float32, hidden)
	c := []float32{1, 0, -1}
	hN, cN := LSTMCellStep(w, nil, x, h, c)
	for j := 0; j < hidden; j++ {
		wantC := 0.5 * c[j]
		if !almostEq32(cN[j], wantC, 1e-6) {
			t.Fatalf("c[%d] = %v, want %v", j, cN[j], wantC)
		}
		wantH := 0.5 * tanh32(wantC)
		if !almostEq32(hN[j], wantH, 1e-6) {
			t.Fatalf("h[%d] = %v, want %v", j, hN[j], wantH)
		}
	}
}

func TestLSTMForgetGateSaturation(t *testing.T) {
	// Drive the forget gate hard open via bias: the cell state must be
	// preserved (plus the input-gate contribution).
	w := New(4, 1+1)                    // hidden=1, features=1
	bias := []float32{-30, +30, 0, -30} // i closed, f open, o closed
	c := []float32{0.8}
	_, cN := LSTMCellStep(w, bias, []float32{0.5}, []float32{0}, c)
	if !almostEq32(cN[0], 0.8, 1e-4) {
		t.Fatalf("open forget gate should carry the cell: %v", cN[0])
	}
	// And with the forget gate slammed shut the cell resets.
	bias[1] = -30
	_, cN = LSTMCellStep(w, bias, []float32{0.5}, []float32{0}, c)
	if math.Abs(float64(cN[0])) > 1e-4 {
		t.Fatalf("closed forget gate should clear the cell: %v", cN[0])
	}
}

func TestLSTMSequence(t *testing.T) {
	r := stats.NewRNG(9)
	w := New(4*8, 5+8).Randomize(r, 0.5)
	bias := make([]float32, 32)
	seq := New(10, 5).Randomize(r, 1)
	h := LSTM(w, bias, seq)
	if len(h) != 8 {
		t.Fatalf("hidden size = %d", len(h))
	}
	for _, v := range h {
		if v < -1 || v > 1 {
			t.Fatalf("hidden state %v outside tanh range", v)
		}
	}
	// Manual unroll must agree.
	hm := make([]float32, 8)
	cm := make([]float32, 8)
	for step := 0; step < 10; step++ {
		hm, cm = LSTMCellStep(w, bias, seq.Data[step*5:(step+1)*5], hm, cm)
	}
	for i := range h {
		if h[i] != hm[i] {
			t.Fatal("LSTM disagrees with manual unroll")
		}
	}
}

func TestLSTMOrderSensitivity(t *testing.T) {
	// A recurrent model must distinguish sequence orderings (unlike any
	// pooling reduction).
	r := stats.NewRNG(11)
	w := New(4*4, 3+4).Randomize(r, 1)
	seq := New(6, 3).Randomize(r, 1)
	rev := seq.Clone()
	for step := 0; step < 3; step++ {
		for f := 0; f < 3; f++ {
			rev.Data[step*3+f], rev.Data[(5-step)*3+f] =
				rev.Data[(5-step)*3+f], rev.Data[step*3+f]
		}
	}
	a := LSTM(w, nil, seq)
	b := LSTM(w, nil, rev)
	same := true
	for i := range a {
		if !almostEq32(a[i], b[i], 1e-6) {
			same = false
		}
	}
	if same {
		t.Fatal("LSTM output should depend on sequence order")
	}
}

func TestLSTMPanics(t *testing.T) {
	w := New(8, 5) // 4H=8 -> H=2, F+H must be 5 -> F=3
	for _, tc := range []func(){
		func() { LSTMCellStep(w, nil, []float32{1, 2}, []float32{0, 0}, []float32{0, 0}) }, // F mismatch
		func() { LSTMCellStep(w, []float32{1}, []float32{1, 2, 3}, []float32{0, 0}, []float32{0, 0}) },
		func() { LSTMCellStep(w, nil, []float32{1, 2, 3}, []float32{0, 0}, []float32{0}) },
		func() { LSTM(w, nil, New(2, 3, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc()
		}()
	}
}

func TestActivationHelpers(t *testing.T) {
	if !almostEq32(sigmoid32(0), 0.5, 1e-6) || !almostEq32(tanh32(0), 0, 1e-9) {
		t.Fatal("activation helpers wrong at 0")
	}
	if tanh32(25) != 1 || tanh32(-25) != -1 {
		t.Fatal("tanh saturation wrong")
	}
	if !almostEq32(sigmoid32(2), float32(1/(1+math.Exp(-2))), 1e-6) {
		t.Fatal("sigmoid value wrong")
	}
}
