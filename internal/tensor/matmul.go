package tensor

import "fmt"

// MatMul multiplies a [M, K] tensor by a [K, N] tensor producing [M, N].
// It uses an ikj loop order with a flat inner loop, the cache-friendly
// structure GEMM-based convolution (im2col) relies on.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs rank-2 operands, got %v x %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims differ: %v x %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue // sparse-friendly: skip pruned weights
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatVec multiplies a [M, K] matrix by a length-K vector producing a
// length-M vector. Fully-connected layers in single-batch inference reduce
// to this shape, which is why the paper calls CNN compute "dominated by
// matrix-matrix and matrix-vector multiplications" (Table I footnote).
func MatVec(a *Tensor, x []float32) []float32 {
	if len(a.Shape) != 2 || a.Shape[1] != len(x) {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch: %v x vec(%d)", a.Shape, len(x)))
	}
	m, k := a.Shape[0], a.Shape[1]
	out := make([]float32, m)
	for i := 0; i < m; i++ {
		row := a.Data[i*k : (i+1)*k]
		var sum float32
		for j, v := range row {
			sum += v * x[j]
		}
		out[i] = sum
	}
	return out
}
