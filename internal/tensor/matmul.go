package tensor

import "fmt"

// MatMul multiplies a [M, K] tensor by a [K, N] tensor producing [M, N].
// The dense path is the cache-blocked kernel in gemm.go (parallel above
// parallelThresholdMACs multiply-accumulates) with no per-element
// branches; left operands that are at least sparseSkipFraction zeros
// (pruned weights) dispatch to MatMulSparse's zero-skipping kernel.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul(a, b)
	out := New(m, n)
	matmulInto(out.Data, a.Data, b.Data, m, k, n)
	return out
}

// MatVec multiplies a [M, K] matrix by a length-K vector producing a
// length-M vector. Fully-connected layers in single-batch inference reduce
// to this shape, which is why the paper calls CNN compute "dominated by
// matrix-matrix and matrix-vector multiplications" (Table I footnote).
// Large matrices (VGG's 4096x25088 fc6) shard rows across goroutines.
func MatVec(a *Tensor, x []float32) []float32 {
	if len(a.Shape) != 2 || a.Shape[1] != len(x) {
		panic(fmt.Sprintf("tensor: MatVec shape mismatch: %v x vec(%d)", a.Shape, len(x)))
	}
	m, k := a.Shape[0], a.Shape[1]
	out := make([]float32, m)
	matVecInto(out, a.Data, x, m, k)
	return out
}

// matVecInto computes out = a x vec for row-major a [m, k], overwriting
// all of out[0:m]. Rows are independent, so the parallel split is
// bitwise-equal to the serial order; large products shard rows across
// the persistent worker pool.
func matVecInto(out, a, x []float32, m, k int) {
	if m*k < parallelThresholdMACs {
		matVecRange(out, a, x, k, 0, m)
		return
	}
	parallelFor(m, grainForMACs(k), func(lo, hi int) {
		matVecRange(out, a, x, k, lo, hi)
	})
}

func matVecRange(out, a, x []float32, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := a[i*k : (i+1)*k]
		var sum float32
		for j, v := range row {
			sum += v * x[j]
		}
		out[i] = sum
	}
}
