package tensor

import "fmt"

// This file is the int8 twin of prepack.go: ahead-of-time packing of
// quantized weights into the biased column-major panels the SWAR QGEMM
// microkernel consumes, plus the transposed conv/dense entry points
// that execute against them. The transposed formulation makes the
// constant weight matrix the packed B operand (activations stream as A
// rows), so the per-call packQPanel work in qgemm.go disappears
// entirely. Integer accumulation is exact in any order, so — unlike the
// FP32 path, which must replicate the blocked kernel's float
// accumulation order — the int8 prepacked results are bitwise identical
// to the unpacked kernels by construction, including int8 Dense (whose
// FP32 counterpart stays unpacked).

// PackedQWeights is an int8 weight matrix packed AOT into the QGEMM
// panel layout: +128-biased bytes, column-major per (N-block, K-block)
// tile, concatenated in kernel traversal order (jc outer, kc inner).
// Immutable after construction — graph clones share the pointer.
type PackedQWeights struct {
	// K and N are the GEMM dimensions of the packed operand: it stands
	// in for a [K, N] int8 B matrix (K = Cin*KH*KW, N = Cout for convs;
	// K = In, N = Out for dense layers).
	K, N int
	// Shape is the original quantized weight shape, kept so the
	// executor can derive kernel geometry from the pack alone.
	Shape Shape
	// Panels is the concatenated packed panel data (one byte per
	// element, value = int8 + 128).
	Panels []byte
}

// Elems returns the packed panel byte count.
func (p *PackedQWeights) Elems() int { return len(p.Panels) }

// PackQGemmB packs a row-major [k, n] int8 B matrix into the QGEMM
// panel layout, one packQPanel tile per (jc, kc) block in kernel
// traversal order. The result feeds QGemmPrepacked.
func PackQGemmB(b []int8, k, n int) *PackedQWeights {
	if len(b) != k*n {
		panic(fmt.Sprintf("tensor: PackQGemmB data length %d, want %d", len(b), k*n))
	}
	pq := &PackedQWeights{K: k, N: n, Panels: make([]byte, packedPanelsLen(k, n, qgemmKC, qgemmNC, qgemmMR))}
	off := 0
	for jc := 0; jc < n; jc += qgemmNC {
		jb := min(n-jc, qgemmNC)
		for kc := 0; kc < k; kc += qgemmKC {
			kb := min(k-kc, qgemmKC)
			kb4 := (kb + qgemmMR - 1) &^ (qgemmMR - 1)
			packQPanel(pq.Panels[off:off+kb4*jb], b, n, kc, kb, kb4, jc, jb)
			off += kb4 * jb
		}
	}
	return pq
}

// packQTransposed packs the transpose of a row-major [n, k] int8 matrix
// (so the packed operand is [k, n]) — the shared core of the conv and
// dense weight packers.
func packQTransposed(data []int8, n, k int, shape Shape) *PackedQWeights {
	bt := make([]int8, k*n)
	for row := 0; row < n; row++ {
		src := data[row*k : (row+1)*k]
		for c, v := range src {
			bt[c*n+row] = v
		}
	}
	pq := PackQGemmB(bt, k, n)
	pq.Shape = shape.Clone()
	return pq
}

// PackQConvWeights packs [Cout, Cin, KH, KW] int8 convolution weights
// for the prepacked QGEMM path (transposed to [Cin*KH*KW, Cout]).
func PackQConvWeights(qw *QTensor) *PackedQWeights {
	if len(qw.Shape) != 4 {
		panic(fmt.Sprintf("tensor: PackQConvWeights wants rank-4 weights, got %v", qw.Shape))
	}
	cout := qw.Shape[0]
	rows := qw.Shape[1] * qw.Shape[2] * qw.Shape[3]
	return packQTransposed(qw.Data, cout, rows, qw.Shape)
}

// PackQDenseWeights packs an [Out, In] int8 dense weight matrix for the
// prepacked QGEMM path (transposed to [In, Out]).
func PackQDenseWeights(qw *QTensor) *PackedQWeights {
	if len(qw.Shape) != 2 {
		panic(fmt.Sprintf("tensor: PackQDenseWeights wants rank-2 weights, got %v", qw.Shape))
	}
	return packQTransposed(qw.Data, qw.Shape[0], qw.Shape[1], qw.Shape)
}

// QGemmPrepacked computes dst = a x B for a row-major int8 a [m, pq.K]
// and the prepacked B operand, overwriting all of dst[0:m*pq.N]. Like
// QGEMM it shards large multiplies by row pairs to keep the SWAR
// two-rows-per-int64 pairing on even boundaries; results are identical
// to any split because integer accumulation is exact.
func QGemmPrepacked(dst []int32, a []int8, pq *PackedQWeights, m int) {
	k, n := pq.K, pq.N
	if m*k*n < parallelThresholdMACs {
		qgemmPrepackedRange(dst, a, pq, 0, m)
		return
	}
	pairs := (m + 1) / 2
	parallelFor(pairs, grainForMACs(2*k*n), func(lo, hi int) {
		rlo, rhi := qgemmPairRange(lo, hi, m)
		qgemmPrepackedRange(dst, a, pq, rlo, rhi)
	})
}

// qgemmPrepackedRange computes output rows [rlo, rhi) of dst = a x B.
// The loop structure, row staging, and SWAR microkernels are exactly
// qgemmBlockedRange's; only the panel source differs.
func qgemmPrepackedRange(dst []int32, a []int8, pq *PackedQWeights, rlo, rhi int) {
	k, n := pq.K, pq.N
	for i := rlo; i < rhi; i++ {
		clear(dst[i*n : (i+1)*n])
	}
	var abuf0, abuf1 [qgemmKC]int8
	var pair [qgemmKC]int64
	off := 0
	for jc := 0; jc < n; jc += qgemmNC {
		jb := min(n-jc, qgemmNC)
		for kc := 0; kc < k; kc += qgemmKC {
			kb := min(k-kc, qgemmKC)
			kb4 := (kb + qgemmMR - 1) &^ (qgemmMR - 1)
			panel := pq.Panels[off : off+kb4*jb]
			off += kb4 * jb
			i := rlo
			for ; i+1 < rhi; i += 2 {
				s0 := loadQRow(&abuf0, a, i, k, kc, kb, kb4)
				s1 := loadQRow(&abuf1, a, i+1, k, kc, kb, kb4)
				for g := 0; g < kb4; g++ {
					pair[g] = int64(abuf1[g])<<32 + int64(abuf0[g])
				}
				qkernel2(dst[i*n+jc:i*n+jc+jb], dst[(i+1)*n+jc:(i+1)*n+jc+jb],
					panel, pair[:kb4], 128*s0, 128*s1, kb4)
			}
			if i < rhi {
				s0 := loadQRow(&abuf0, a, i, k, kc, kb, kb4)
				qkernel1(dst[i*n+jc:i*n+jc+jb], panel, abuf0[:kb4], 128*s0, kb4)
			}
		}
	}
}

// im2rowQInto is the int8 twin of im2rowInto: it lowers the quantized
// input (layout [Cin, H, W]) into rowsQ as a [Hout*Wout, Cin*KH*KW]
// int8 matrix, padding positions written as explicit zeros (the int8
// zero-point of the symmetric scheme).
func im2rowQInto(rowsQ []int8, qin []int8, cin, h, wd, kh, kw int, spec Conv2DSpec, hout, wout int) {
	padH, padW := spec.padHW()
	rdim := cin * kh * kw
	for p := 0; p < hout*wout; p++ {
		oy, ox := p/wout, p%wout
		dst := rowsQ[p*rdim : (p+1)*rdim]
		r := 0
		for ic := 0; ic < cin; ic++ {
			for ky := 0; ky < kh; ky++ {
				iy := oy*spec.Stride + ky - padH
				if iy < 0 || iy >= h {
					clear(dst[r : r+kw])
					r += kw
					continue
				}
				src := qin[(ic*h+iy)*wd : (ic*h+iy+1)*wd]
				for kx := 0; kx < kw; kx++ {
					ix := ox*spec.Stride + kx - padW
					if ix >= 0 && ix < wd {
						dst[r] = src[ix]
					} else {
						dst[r] = 0
					}
					r++
				}
			}
		}
	}
}

// requantizeStrided is requantizeInto over a strided accumulator view:
// dst[i] is computed from acc[i*stride] with exactly the per-element
// expressions of requantizeInto, so the transposed prepacked path's
// outputs are bitwise identical to the unpacked epilogue's.
func requantizeStrided(dst []float32, acc []int32, stride int, scale float32, bias float32, act Act, alpha float32) {
	switch act {
	case ActNone:
		for i := range dst {
			dst[i] = float32(acc[i*stride])*scale + bias
		}
	case ActReLU:
		for i := range dst {
			x := float32(acc[i*stride])*scale + bias
			if x < 0 {
				x = 0
			}
			dst[i] = x
		}
	case ActReLU6:
		for i := range dst {
			x := float32(acc[i*stride])*scale + bias
			if x < 0 {
				x = 0
			} else if x > 6 {
				x = 6
			}
			dst[i] = x
		}
	case ActLeakyReLU:
		for i := range dst {
			x := float32(acc[i*stride])*scale + bias
			if x < 0 {
				x *= alpha
			}
			dst[i] = x
		}
	default:
		// The transcendental activations share requantizeInto's exact
		// expressions via a per-element forwarding call.
		for i := range dst {
			requantizeInto(dst[i:i+1], acc[i*stride:i*stride+1], scale, bias, act, alpha)
		}
	}
}

// prepackedQConvDims validates the input against the packed weights and
// returns (cin, h, w, cout, kh, kw, hout, wout).
func prepackedQConvDims(in *Tensor, pq *PackedQWeights, spec Conv2DSpec) (int, int, int, int, int, int, int, int) {
	if len(pq.Shape) != 4 {
		panic(fmt.Sprintf("tensor: prepacked qconv weights carry shape %v, want rank 4", pq.Shape))
	}
	cin, h, wd := in.Shape[0], in.Shape[1], in.Shape[2]
	cout, wcin, kh, kw := pq.Shape[0], pq.Shape[1], pq.Shape[2], pq.Shape[3]
	if cin != wcin {
		panic(fmt.Sprintf("tensor: prepacked qconv channel mismatch: input %v weights %v", in.Shape, pq.Shape))
	}
	hout, wout := spec.OutDims(h, wd, kh, kw)
	return cin, h, wd, cout, kh, kw, hout, wout
}

// Conv2DQPrepackedInto is Conv2DQInt8Into against AOT-packed weights:
// dynamic activation quantization, int8 im2row, prepacked QGEMM, and
// the fused requantize+bias+activation epilogue applied through the
// strided (transposed) accumulator view. qw supplies the weight scales
// (per-tensor or per-channel); its codes are not read.
func Conv2DQPrepackedInto(dst, in *Tensor, pq *PackedQWeights, qw *QTensor, bias []float32, spec Conv2DSpec, act Act, alpha float32) {
	spec = spec.check()
	cin, h, wd, cout, kh, kw, hout, wout := prepackedQConvDims(in, pq, spec)
	if bias != nil && len(bias) != cout {
		panic("tensor: prepacked qconv bias length mismatch")
	}
	checkConvDst(dst, cout, hout, wout)
	ncols := hout * wout
	s := qscratchPool.Get().(*qscratch)
	s.grow(len(in.Data), ncols*pq.K, ncols*cout)

	sx := QuantizeDynamicInto(s.qin, in.Data)
	im2rowQInto(s.cols, s.qin, cin, h, wd, kh, kw, spec, hout, wout)
	QGemmPrepacked(s.acc, s.cols, pq, ncols)

	for oc := 0; oc < cout; oc++ {
		var b float32
		if bias != nil {
			b = bias[oc]
		}
		requantizeStrided(dst.Data[oc*ncols:(oc+1)*ncols], s.acc[oc:],
			cout, sx*qw.ScaleFor(oc), b, act, alpha)
	}
	qscratchPool.Put(s)
}

// Conv2DQPrepackedBatchInto is the batch-folded prepacked int8
// convolution: every sample is quantized with its own dynamic scale
// (bitwise matching B sequential calls), the im2row lowerings stack
// into one (B*Hout*Wout) x rows matrix, and a single prepacked QGEMM
// produces all accumulators before the per-sample requantize sweeps.
func Conv2DQPrepackedBatchInto(dsts, ins []*Tensor, pq *PackedQWeights, qw *QTensor, bias []float32, spec Conv2DSpec, act Act, alpha float32) {
	if len(dsts) != len(ins) || len(ins) == 0 {
		panic("tensor: prepacked batch qconv needs equal non-empty dst/in slices")
	}
	spec = spec.check()
	cin, h, wd, cout, kh, kw, hout, wout := prepackedQConvDims(ins[0], pq, spec)
	if bias != nil && len(bias) != cout {
		panic("tensor: prepacked qconv bias length mismatch")
	}
	for i, in := range ins {
		if !in.Shape.Equal(ins[0].Shape) {
			panic(fmt.Sprintf("tensor: prepacked batch qconv input %d shape %v, want %v", i, in.Shape, ins[0].Shape))
		}
		checkConvDst(dsts[i], cout, hout, wout)
	}
	b := len(ins)
	ncols := hout * wout
	s := qscratchPool.Get().(*qscratch)
	s.grow(len(ins[0].Data), b*ncols*pq.K, b*ncols*cout)
	scales := make([]float32, b)
	for i, in := range ins {
		scales[i] = QuantizeDynamicInto(s.qin, in.Data)
		im2rowQInto(s.cols[i*ncols*pq.K:(i+1)*ncols*pq.K], s.qin, cin, h, wd, kh, kw, spec, hout, wout)
	}
	QGemmPrepacked(s.acc, s.cols, pq, b*ncols)
	for i, dst := range dsts {
		acc := s.acc[i*ncols*cout : (i+1)*ncols*cout]
		for oc := 0; oc < cout; oc++ {
			var bb float32
			if bias != nil {
				bb = bias[oc]
			}
			requantizeStrided(dst.Data[oc*ncols:(oc+1)*ncols], acc[oc:],
				cout, scales[i]*qw.ScaleFor(oc), bb, act, alpha)
		}
	}
	qscratchPool.Put(s)
}

// DenseQPrepackedInto is DenseQInt8Into against AOT-packed weights: the
// quantized input runs as a single A row through the prepacked QGEMM
// (integer-exact, so identical to the unpacked matvec), then the
// requantize epilogue applies per output element.
func DenseQPrepackedInto(dst []float32, pq *PackedQWeights, qw *QTensor, bias, x []float32, act Act, alpha float32) {
	if len(pq.Shape) != 2 || pq.K != len(x) {
		panic(fmt.Sprintf("tensor: DenseQPrepacked shape mismatch: %v x vec(%d)", pq.Shape, len(x)))
	}
	m := pq.N
	if len(dst) != m {
		panic("tensor: DenseQPrepacked dst length mismatch")
	}
	if bias != nil && len(bias) != m {
		panic("tensor: DenseQPrepacked bias length mismatch")
	}
	s := qscratchPool.Get().(*qscratch)
	s.grow(pq.K, 0, m)
	sx := QuantizeDynamicInto(s.qin, x)
	QGemmPrepacked(s.acc, s.qin, pq, 1)
	for i := range dst {
		var b float32
		if bias != nil {
			b = bias[i]
		}
		requantizeInto(dst[i:i+1], s.acc[i:i+1], sx*qw.ScaleFor(i), b, act, alpha)
	}
	qscratchPool.Put(s)
}

// DenseQPrepackedBatchInto folds a micro-batch of dense forwards into
// one prepacked QGEMM: each sample quantizes with its own dynamic scale
// into one A row, so B matvecs become a [B, In] x [In, Out] multiply —
// wide enough to engage the SWAR row-pairing the single-row path cannot
// use. Outputs are bitwise identical to B sequential calls.
func DenseQPrepackedBatchInto(dsts []*Tensor, ins []*Tensor, pq *PackedQWeights, qw *QTensor, bias []float32, act Act, alpha float32) {
	if len(dsts) != len(ins) || len(ins) == 0 {
		panic("tensor: prepacked batch dense needs equal non-empty dst/in slices")
	}
	if len(pq.Shape) != 2 {
		panic(fmt.Sprintf("tensor: DenseQPrepackedBatch weights carry shape %v, want rank 2", pq.Shape))
	}
	m := pq.N
	if bias != nil && len(bias) != m {
		panic("tensor: DenseQPrepacked bias length mismatch")
	}
	b := len(ins)
	for i, in := range ins {
		if len(in.Data) != pq.K {
			panic(fmt.Sprintf("tensor: DenseQPrepackedBatch input %d length %d, want %d", i, len(in.Data), pq.K))
		}
		if len(dsts[i].Data) != m {
			panic("tensor: DenseQPrepacked dst length mismatch")
		}
	}
	s := qscratchPool.Get().(*qscratch)
	s.grow(b*pq.K, 0, b*m)
	scales := make([]float32, b)
	for i, in := range ins {
		scales[i] = QuantizeDynamicInto(s.qin[i*pq.K:(i+1)*pq.K], in.Data)
	}
	QGemmPrepacked(s.acc, s.qin, pq, b)
	for i, dst := range dsts {
		acc := s.acc[i*m : (i+1)*m]
		for j := 0; j < m; j++ {
			var bb float32
			if bias != nil {
				bb = bias[j]
			}
			requantizeInto(dst.Data[j:j+1], acc[j:j+1], scales[i]*qw.ScaleFor(j), bb, act, alpha)
		}
	}
	qscratchPool.Put(s)
}
