package tensor

import (
	"fmt"
	"sync"
)

// This file is the ahead-of-time weight pre-packing layer for the FP32
// GEMM path. The per-call blocked kernel (gemm.go) packs its B operand
// into interleaved panels on every invocation; for inference the weight
// operand is constant, so a session can pack it once and reuse the
// panels forever. To make the *weights* the packed operand the
// convolution is executed in its transposed formulation:
//
//	unpacked: dst[cout, ncols]  = W[cout, rows]  x cols[rows, ncols]
//	prepacked: out[ncols, cout] = rowsA[ncols, rows] x Wt[rows, cout]
//
// where rowsA is the im2row lowering (one row per output pixel) and Wt
// is the transposed weight matrix, packed AOT by PackConvWeights. The
// blocked kernel's per-output-element accumulation order depends only
// on the K blocking, which is identical in both formulations, and
// float multiplication is bitwise commutative, so GemmPrepacked output
// element (nc, oc) is bitwise identical to unpacked element (oc, nc) —
// the property the prepack pass's zoo-wide equivalence gate pins down.
// Padding positions contribute +0.0 in both formulations (both the
// zero-padded A row and the zero-filled panel rows are positive zeros).
//
// FP32 Dense is deliberately NOT prepacked: DenseInto accumulates each
// dot product in four independent chains (matVecInto), an order the
// blocked GEMM cannot reproduce, so packing it would break the bitwise
// contract. The int8 twin (qprepack.go) packs Dense too, because
// integer accumulation is exact in any order.

// PackedWeights is a weight matrix packed AOT into the blocked-panel
// layout the FP32 GEMM microkernel consumes: the panels of every
// (N-block, K-block) tile of the transposed weight matrix, concatenated
// in the kernel's traversal order (jc outer, kc inner). Immutable after
// construction — clones of a graph share the pointer.
type PackedWeights struct {
	// K and N are the GEMM dimensions of the packed operand: it stands
	// in for a [K, N] B matrix (K = Cin*KH*KW, N = Cout for convs).
	K, N int
	// Shape is the original weight tensor shape ([Cout, Cin, KH, KW]
	// for convs), kept so the executor can derive conv geometry without
	// consulting the FP32 weights.
	Shape Shape
	// Panels is the concatenated packed panel data.
	Panels []float32
}

// Elems returns the packed panel element count (the memory cost of the
// pre-pack, within rounding of the original weight count).
func (p *PackedWeights) Elems() int { return len(p.Panels) }

// packedPanelsLen returns the total panel length for a [k, n] B operand
// under the FP32 blocking: each (jc, kc) tile stores kb4 x jb elements.
func packedPanelsLen(k, n, kc0, nc0, mr int) int {
	total := 0
	for jc := 0; jc < n; jc += nc0 {
		jb := min(n-jc, nc0)
		for kc := 0; kc < k; kc += kc0 {
			kb := min(k-kc, kc0)
			kb4 := (kb + mr - 1) &^ (mr - 1)
			total += kb4 * jb
		}
	}
	return total
}

// PackGemmB packs a row-major [k, n] B matrix into the blocked-panel
// layout, one packPanel tile per (jc, kc) block in kernel traversal
// order. The result feeds GemmPrepacked.
func PackGemmB(b []float32, k, n int) *PackedWeights {
	if len(b) != k*n {
		panic(fmt.Sprintf("tensor: PackGemmB data length %d, want %d", len(b), k*n))
	}
	pw := &PackedWeights{K: k, N: n, Panels: make([]float32, packedPanelsLen(k, n, gemmKC, gemmNC, gemmMR))}
	off := 0
	for jc := 0; jc < n; jc += gemmNC {
		jb := min(n-jc, gemmNC)
		for kc := 0; kc < k; kc += gemmKC {
			kb := min(k-kc, gemmKC)
			kb4 := (kb + gemmMR - 1) &^ (gemmMR - 1)
			packPanel(pw.Panels[off:off+kb4*jb], b, n, kc, kb, kb4, jc, jb)
			off += kb4 * jb
		}
	}
	return pw
}

// PackConvWeights packs a [Cout, Cin, KH, KW] convolution weight tensor
// for the prepacked GEMM path: the weight matrix is transposed to
// [rows, Cout] (rows = Cin*KH*KW) and packed with PackGemmB. It returns
// nil for weights sparse enough that the unpacked path would take the
// zero-skipping kernel (pruned models keep their sparse fast path, and
// the prepacked dense kernel would not be bitwise identical to it).
func PackConvWeights(w *Tensor) *PackedWeights {
	if len(w.Shape) != 4 {
		panic(fmt.Sprintf("tensor: PackConvWeights wants rank-4 weights, got %v", w.Shape))
	}
	if zeroFraction(w.Data) >= sparseSkipFraction {
		return nil
	}
	cout := w.Shape[0]
	rows := w.Shape[1] * w.Shape[2] * w.Shape[3]
	wt := make([]float32, rows*cout)
	for oc := 0; oc < cout; oc++ {
		src := w.Data[oc*rows : (oc+1)*rows]
		for r, v := range src {
			wt[r*cout+oc] = v
		}
	}
	pw := PackGemmB(wt, rows, cout)
	pw.Shape = w.Shape.Clone()
	return pw
}

// GemmPrepacked computes dst = a x B for a row-major a [m, pw.K] and the
// prepacked B operand, overwriting all of dst[0:m*pw.N]. It is the
// blocked kernel with the per-call packPanel step deleted: each (jc, kc)
// tile's panel is a slice of pw.Panels at its precomputed offset. Large
// multiplies shard output rows across the worker pool; per-row results
// do not depend on the split, so output is bitwise identical to serial.
func GemmPrepacked(dst, a []float32, pw *PackedWeights, m int) {
	k, n := pw.K, pw.N
	if m*k*n >= parallelThresholdMACs {
		parallelFor(m, grainForMACs(k*n), func(lo, hi int) {
			gemmPrepackedRange(dst, a, pw, lo, hi)
		})
		return
	}
	gemmPrepackedRange(dst, a, pw, 0, m)
}

// gemmPrepackedRange computes output rows [rlo, rhi) of dst = a x B.
// The loop structure, A-row staging, and microkernel are exactly
// matmulBlockedRange's; only the panel source differs.
func gemmPrepackedRange(dst, a []float32, pw *PackedWeights, rlo, rhi int) {
	k, n := pw.K, pw.N
	for i := rlo; i < rhi; i++ {
		clear(dst[i*n : (i+1)*n])
	}
	var abuf [gemmKC]float32
	off := 0
	for jc := 0; jc < n; jc += gemmNC {
		jb := min(n-jc, gemmNC)
		for kc := 0; kc < k; kc += gemmKC {
			kb := min(k-kc, gemmKC)
			kb4 := (kb + gemmMR - 1) &^ (gemmMR - 1)
			panel := pw.Panels[off : off+kb4*jb]
			off += kb4 * jb
			for i := rlo; i < rhi; i++ {
				copy(abuf[:kb], a[i*k+kc:i*k+kc+kb])
				for z := kb; z < kb4; z++ {
					abuf[z] = 0
				}
				orow := dst[i*n+jc : i*n+jc+jb]
				for g := 0; g < kb4; g += gemmMR {
					a0, a1, a2, a3 := abuf[g], abuf[g+1], abuf[g+2], abuf[g+3]
					p := panel[g*jb : g*jb+jb*gemmMR]
					for j := range orow {
						base := j * gemmMR
						orow[j] += a0*p[base] + a1*p[base+1] + a2*p[base+2] + a3*p[base+3]
					}
				}
			}
		}
	}
}

// im2rowInto writes the im2row lowering of in into rowsA: a row-major
// [Hout*Wout, Cin*KH*KW] matrix, one row per output pixel (the
// transpose of im2colInto's layout), every element stored — padding
// positions are explicit zeros, so dirty scratch cannot leak. Large
// lowerings shard output-pixel rows across the worker pool; each row is
// written by exactly one chunk.
func im2rowInto(rowsA []float32, in *Tensor, kh, kw int, spec Conv2DSpec, hout, wout int) {
	rdim := in.Shape[0] * kh * kw
	if hout*wout*rdim < im2colElemsThreshold {
		im2rowPixels(rowsA, in, kh, kw, spec, hout, wout, 0, hout*wout)
		return
	}
	grain := (1 << 16) / rdim
	parallelFor(hout*wout, grain, func(lo, hi int) {
		im2rowPixels(rowsA, in, kh, kw, spec, hout, wout, lo, hi)
	})
}

// im2rowPixels writes rows [plo, phi) of the im2row matrix, where row
// index p maps to output pixel (oy = p/wout, ox = p%wout).
func im2rowPixels(rowsA []float32, in *Tensor, kh, kw int, spec Conv2DSpec, hout, wout, plo, phi int) {
	cin, h, wd := in.Shape[0], in.Shape[1], in.Shape[2]
	padH, padW := spec.padHW()
	rdim := cin * kh * kw
	for p := plo; p < phi; p++ {
		oy, ox := p/wout, p%wout
		dst := rowsA[p*rdim : (p+1)*rdim]
		r := 0
		for ic := 0; ic < cin; ic++ {
			for ky := 0; ky < kh; ky++ {
				iy := oy*spec.Stride + ky - padH
				if iy < 0 || iy >= h {
					clear(dst[r : r+kw])
					r += kw
					continue
				}
				src := in.Data[(ic*h+iy)*wd : (ic*h+iy+1)*wd]
				for kx := 0; kx < kw; kx++ {
					ix := ox*spec.Stride + kx - padW
					if ix >= 0 && ix < wd {
						dst[r] = src[ix]
					} else {
						dst[r] = 0
					}
					r++
				}
			}
		}
	}
}

// prepackScratch holds the FP32 prepacked path's per-call scratch when
// the caller supplies no arena: the im2row matrix and the transposed
// GEMM output. Pooled so concurrent replicas never share or reallocate.
type prepackScratch struct {
	rows []float32
	outT []float32
}

var prepackScratchPool = sync.Pool{New: func() any { return new(prepackScratch) }}

func (s *prepackScratch) grow(nrows, nout int) {
	if cap(s.rows) < nrows {
		s.rows = make([]float32, nrows)
	}
	s.rows = s.rows[:nrows]
	if cap(s.outT) < nout {
		s.outT = make([]float32, nout)
	}
	s.outT = s.outT[:nout]
}

// prepackedConvDims validates the input against the packed weights and
// returns (cout, kh, kw, hout, wout).
func prepackedConvDims(in *Tensor, pw *PackedWeights, spec Conv2DSpec) (int, int, int, int, int) {
	if len(pw.Shape) != 4 {
		panic(fmt.Sprintf("tensor: prepacked conv weights carry shape %v, want rank 4", pw.Shape))
	}
	cin, h, wd := in.Shape[0], in.Shape[1], in.Shape[2]
	cout, wcin, kh, kw := pw.Shape[0], pw.Shape[1], pw.Shape[2], pw.Shape[3]
	if cin != wcin {
		panic(fmt.Sprintf("tensor: prepacked conv channel mismatch: input %v weights %v", in.Shape, pw.Shape))
	}
	hout, wout := spec.OutDims(h, wd, kh, kw)
	return cout, kh, kw, hout, wout
}

// convEpilogueTransposed writes output channel plane oc of dst from the
// transposed GEMM output: the gather transposes outT's (pixel, channel)
// layout back to channel-major, then the bias, affine, and activation
// sweeps run over the contiguous plane with exactly the per-element
// expressions of Conv2DGEMMFusedInto's epilogue, so prepacked output is
// bitwise identical to the unpacked fused (or plain bias-swept) path.
func convEpilogueTransposed(seg, outT []float32, oc, cout int, bias []float32, epi Epilogue) {
	for i := range seg {
		seg[i] = outT[i*cout+oc]
	}
	if bias != nil {
		b := bias[oc]
		for i := range seg {
			seg[i] += b
		}
	}
	if len(epi.Scale) > 0 {
		scale, shift := epi.Scale[oc], epi.Shift[oc]
		for i, v := range seg {
			seg[i] = v*scale + shift
		}
	}
	applyActInPlace(seg, epi.Act, epi.Alpha)
}

// Conv2DPrepackedInto computes the im2row + prepacked-GEMM convolution
// into a preallocated dst of shape [Cout, Hout, Wout], overwriting
// every element, with the bias/affine/activation epilogue applied
// during the transpose back to channel-major layout. A zero-value epi
// reproduces the plain GEMM conv (bias sweep only). When scratch is
// non-nil the lowering and transposed-output buffers are borrowed from
// (and returned to) it — the planner-reserved arena slots — otherwise a
// package pool supplies them.
func Conv2DPrepackedInto(dst, in *Tensor, pw *PackedWeights, bias []float32, spec Conv2DSpec, epi Epilogue, scratch *Pool) {
	spec = spec.check()
	cout, kh, kw, hout, wout := prepackedConvDims(in, pw, spec)
	checkConvDst(dst, cout, hout, wout)
	checkEpilogueChannels(epi, cout)
	if bias != nil && len(bias) != cout {
		panic("tensor: prepacked conv bias length mismatch")
	}
	ncols := hout * wout
	var rowsA, outT []float32
	if scratch != nil {
		rt := scratch.Get(ncols, pw.K)
		ot := scratch.Get(ncols, cout)
		defer func() { scratch.Put(rt); scratch.Put(ot) }()
		rowsA, outT = rt.Data, ot.Data
	} else {
		s := prepackScratchPool.Get().(*prepackScratch)
		s.grow(ncols*pw.K, ncols*cout)
		defer prepackScratchPool.Put(s)
		rowsA, outT = s.rows, s.outT
	}
	im2rowInto(rowsA, in, kh, kw, spec, hout, wout)
	GemmPrepacked(outT, rowsA, pw, ncols)
	convEpilogueSweep(dst.Data, outT, cout, ncols, bias, epi)
}

// convEpilogueSweep runs convEpilogueTransposed over every output
// channel, sharding channels across the worker pool when the output is
// large (each channel's plane is written by exactly one chunk, so the
// parallel sweep is bitwise identical to serial).
func convEpilogueSweep(dst, outT []float32, cout, ncols int, bias []float32, epi Epilogue) {
	if cout*ncols < parallelThresholdMACs {
		for oc := 0; oc < cout; oc++ {
			convEpilogueTransposed(dst[oc*ncols:(oc+1)*ncols], outT, oc, cout, bias, epi)
		}
		return
	}
	parallelFor(cout, grainForMACs(ncols), func(lo, hi int) {
		for oc := lo; oc < hi; oc++ {
			convEpilogueTransposed(dst[oc*ncols:(oc+1)*ncols], outT, oc, cout, bias, epi)
		}
	})
}

// Conv2DPrepackedBatchInto is the batch-folded prepacked convolution:
// the B inputs' im2row lowerings are stacked into one (B*Hout*Wout) x
// rows matrix and multiplied in a single prepacked GEMM, so a serving
// micro-batch becomes one wide GEMM instead of B narrow ones. Each
// sample's rows are independent in the blocked kernel, so every output
// is bitwise identical to B separate Conv2DPrepackedInto calls.
func Conv2DPrepackedBatchInto(dsts, ins []*Tensor, pw *PackedWeights, bias []float32, spec Conv2DSpec, epi Epilogue) {
	if len(dsts) != len(ins) || len(ins) == 0 {
		panic("tensor: prepacked batch conv needs equal non-empty dst/in slices")
	}
	spec = spec.check()
	cout, kh, kw, hout, wout := prepackedConvDims(ins[0], pw, spec)
	for i, in := range ins {
		if !in.Shape.Equal(ins[0].Shape) {
			panic(fmt.Sprintf("tensor: prepacked batch conv input %d shape %v, want %v", i, in.Shape, ins[0].Shape))
		}
		checkConvDst(dsts[i], cout, hout, wout)
	}
	checkEpilogueChannels(epi, cout)
	if bias != nil && len(bias) != cout {
		panic("tensor: prepacked conv bias length mismatch")
	}
	b := len(ins)
	ncols := hout * wout
	s := prepackScratchPool.Get().(*prepackScratch)
	s.grow(b*ncols*pw.K, b*ncols*cout)
	defer prepackScratchPool.Put(s)
	for i, in := range ins {
		im2rowInto(s.rows[i*ncols*pw.K:(i+1)*ncols*pw.K], in, kh, kw, spec, hout, wout)
	}
	GemmPrepacked(s.outT, s.rows, pw, b*ncols)
	for i, dst := range dsts {
		convEpilogueSweep(dst.Data, s.outT[i*ncols*cout:(i+1)*ncols*cout], cout, ncols, bias, epi)
	}
}
