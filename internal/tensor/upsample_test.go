package tensor

import (
	"runtime"
	"testing"

	"edgebench/internal/stats"
)

func TestUpsampleNearest2D(t *testing.T) {
	in := FromData([]float32{1, 2, 3, 4}, 1, 2, 2)
	out := UpsampleNearest2D(in, 2)
	if !out.Shape.Equal(Shape{1, 4, 4}) {
		t.Fatalf("shape %v", out.Shape)
	}
	want := []float32{
		1, 1, 2, 2,
		1, 1, 2, 2,
		3, 3, 4, 4,
		3, 3, 4, 4,
	}
	for i, v := range want {
		if out.Data[i] != v {
			t.Fatalf("out[%d] = %v, want %v", i, out.Data[i], v)
		}
	}
	// Factor 1 copies.
	same := UpsampleNearest2D(in, 1)
	same.Data[0] = 9
	if in.Data[0] != 1 {
		t.Fatal("factor-1 upsample should copy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("factor 0 should panic")
		}
	}()
	UpsampleNearest2D(in, 0)
}

func TestPool3DSpecOutDims(t *testing.T) {
	s := Pool3DSpec{KernelD: 1, Kernel: 2, PadSpatial: 1}
	d, h, w := s.OutDims(12, 7, 7)
	if d != 12 || h != 4 || w != 4 {
		t.Fatalf("dims = %d,%d,%d", d, h, w)
	}
	// Default strides follow kernels.
	s2 := Pool3DSpec{KernelD: 2, Kernel: 2}
	d, h, w = s2.OutDims(8, 8, 8)
	if d != 4 || h != 4 || w != 4 {
		t.Fatalf("default-stride dims = %d,%d,%d", d, h, w)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero kernel should panic")
		}
	}()
	(Pool3DSpec{}).OutDims(4, 4, 4)
}

func TestMaxPool3DSpecPadding(t *testing.T) {
	in := New(1, 2, 3, 3).Fill(-1)
	in.Data[0] = 5 // (d=0, y=0, x=0)
	out := MaxPool3DSpec(in, Pool3DSpec{KernelD: 2, Kernel: 2, StrideD: 2, Stride: 2, PadSpatial: 1})
	if !out.Shape.Equal(Shape{1, 1, 2, 2}) {
		t.Fatalf("shape %v", out.Shape)
	}
	if out.At(0, 0, 0, 0) != 5 {
		t.Fatalf("padded max = %v, want 5", out.At(0, 0, 0, 0))
	}
	// Padded positions must not contribute zeros against negatives.
	if out.At(0, 0, 1, 1) != -1 {
		t.Fatalf("all-negative window = %v, want -1", out.At(0, 0, 1, 1))
	}
}

func TestConv2DParallelWorkerPath(t *testing.T) {
	// The host may have one CPU; raise GOMAXPROCS so the sharded path
	// actually runs multiple goroutines.
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	r := stats.NewRNG(31)
	in := New(8, 12, 12).Randomize(r, 1)
	w := New(8, 8, 3, 3).Randomize(r, 1)
	bias := make([]float32, 8)
	spec := Conv2DSpec{Stride: 1, Pad: 1}
	a := Conv2D(in, w, bias, spec)
	b := Conv2DParallel(in, w, bias, spec)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("worker-sharded conv diverges from serial")
		}
	}
	// More workers than channels clamps.
	small := New(2, 4, 4).Randomize(r, 1)
	sw := New(2, 2, 1, 1).Randomize(r, 1)
	c := Conv2DParallel(small, sw, nil, Conv2DSpec{})
	d := Conv2D(small, sw, nil, Conv2DSpec{})
	for i := range c.Data {
		if c.Data[i] != d.Data[i] {
			t.Fatal("clamped worker conv diverges")
		}
	}
}
