package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// naiveMatMul is the straightforward triple loop used as the oracle for
// the blocked kernel.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float32
			for kk := 0; kk < k; kk++ {
				sum += a.Data[i*k+kk] * b.Data[kk*n+j]
			}
			out.Data[i*n+j] = sum
		}
	}
	return out
}

func maxAbsDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// TestBlockedMatMulMatchesNaive sweeps awkward sizes around the blocking
// parameters (K remainders, N remainders, tiny dims) against the naive
// oracle.
func TestBlockedMatMulMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	cases := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 5, 2}, {4, gemmKC, 9}, {5, gemmKC - 1, 7},
		{2, gemmKC + 1, gemmNC + 3}, {7, 300, 17}, {16, 130, 515},
		{9, 2*gemmKC + 3, 33},
	}
	for _, c := range cases {
		a := New(c.m, c.k).Randomize(r, 1)
		b := New(c.k, c.n).Randomize(r, 1)
		want := naiveMatMul(a, b)
		got := MatMulSerial(a, b)
		// The blocked kernel reassociates the K sum, so allow a small
		// accumulation tolerance scaled by K.
		tol := 1e-5 * float64(c.k)
		if d := maxAbsDiff(got.Data, want.Data); d > tol {
			t.Errorf("m=%d k=%d n=%d: blocked vs naive diff %g > %g", c.m, c.k, c.n, d, tol)
		}
	}
}

// TestMatMulParallelBitwiseEqualsSerial verifies the row-shard split
// changes nothing: identical bits, not just close values.
func TestMatMulParallelBitwiseEqualsSerial(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := New(37, 301).Randomize(r, 1)
	b := New(301, 129).Randomize(r, 1)
	serial := MatMulSerial(a, b)
	parallel := MatMulParallel(a, b)
	for i := range serial.Data {
		if serial.Data[i] != parallel.Data[i] {
			t.Fatalf("element %d: serial %v != parallel %v", i, serial.Data[i], parallel.Data[i])
		}
	}
}

// TestMatMulSparseMatchesDense checks the pruned-weight path and that the
// dense dispatcher routes a mostly-zero left operand through it with the
// same results.
func TestMatMulSparseMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	a := New(130, 140)
	for i := range a.Data {
		if r.Float32() < 0.2 { // 80% zeros: above sparseSkipFraction
			a.Data[i] = r.Float32()*2 - 1
		}
	}
	b := New(140, 150).Randomize(r, 1)
	want := naiveMatMul(a, b)
	for name, got := range map[string]*Tensor{
		"MatMulSparse": MatMulSparse(a, b),
		"MatMul":       MatMul(a, b),
	} {
		if d := maxAbsDiff(got.Data, want.Data); d > 1e-3 {
			t.Errorf("%s vs naive diff %g", name, d)
		}
	}
	if zf := zeroFraction(a.Data); zf < sparseSkipFraction {
		t.Fatalf("test matrix zero fraction %v below dispatch threshold", zf)
	}
}

// TestConvMACsDispatchThreshold pins the Conv2DAuto dispatch metric: the
// old estimate divided and re-multiplied by Cout, truncating to a wrong
// value; the metric must be exactly filter-elems x output-positions.
func TestConvMACsDispatchThreshold(t *testing.T) {
	// 7 output channels: w elems = 7*3*3*3 = 189. With hout=wout=10,
	// MACs = 189*100 = 18900. The old buggy form computed
	// 18900/7*7 = 18900 only when divisible — pick dims where the
	// truncation bites: elems*hout*wout = 18900, /7*7 = 18900 (divisible);
	// instead check against an explicit product for several shapes.
	cases := []struct {
		cout, cin, kh, kw, hout, wout int
	}{
		{7, 3, 3, 3, 10, 10},
		{5, 13, 3, 1, 17, 23},
		{64, 32, 3, 3, 28, 28},
	}
	for _, c := range cases {
		w := New(c.cout, c.cin, c.kh, c.kw)
		want := c.cout * c.cin * c.kh * c.kw * c.hout * c.wout
		if got := ConvMACs(w, c.hout, c.wout); got != want {
			t.Errorf("ConvMACs(%dx%dx%dx%d, %dx%d) = %d, want %d",
				c.cout, c.cin, c.kh, c.kw, c.hout, c.wout, got, want)
		}
	}
	// Pin the threshold itself so dispatch behaviour cannot drift
	// silently: a 16->16 3x3 conv on a 56x56 output (7.2M MACs) is above
	// it, the same conv on 14x14 (450K MACs) is below.
	w := New(16, 16, 3, 3)
	if ConvMACs(w, 56, 56) < ParallelThresholdMACs() {
		t.Error("56x56 16->16 3x3 conv should dispatch parallel")
	}
	if ConvMACs(w, 14, 14) >= ParallelThresholdMACs() {
		t.Error("14x14 16->16 3x3 conv should stay serial")
	}
	if ParallelThresholdMACs() != 1<<20 {
		t.Errorf("parallel threshold changed to %d; update benchmarks and this pin deliberately", ParallelThresholdMACs())
	}
}

// dirty returns a tensor filled with a sentinel value, standing in for a
// recycled pool buffer with stale contents.
func dirty(shape ...int) *Tensor {
	return New(shape...).Fill(float32(math.NaN()))
}

// TestIntoKernelsOverwriteDirtyBuffers runs every destination-passing
// kernel against a NaN-poisoned dst and requires exact agreement with the
// allocating variant — any cell the kernel forgets to write stays NaN and
// fails the comparison.
func TestIntoKernelsOverwriteDirtyBuffers(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	in := New(3, 9, 9).Randomize(r, 1)
	w := New(4, 3, 3, 3).Randomize(r, 1)
	dw := New(3, 3, 3).Randomize(r, 1)
	bias := []float32{0.1, -0.2, 0.3, -0.4}
	spec := Conv2DSpec{Stride: 2, Pad: 1}

	check := func(name string, want *Tensor, run func(dst *Tensor)) {
		t.Helper()
		dst := dirty(want.Shape...)
		run(dst)
		for i := range want.Data {
			if dst.Data[i] != want.Data[i] {
				t.Fatalf("%s: dst[%d] = %v, want %v (stale cell?)", name, i, dst.Data[i], want.Data[i])
			}
		}
	}

	check("Conv2DInto", Conv2D(in, w, bias, spec), func(d *Tensor) { Conv2DInto(d, in, w, bias, spec) })
	check("Conv2DAutoInto", Conv2DAuto(in, w, bias, spec), func(d *Tensor) { Conv2DAutoInto(d, in, w, bias, spec) })
	check("Conv2DGEMMInto", Conv2DGEMM(in, w, bias, spec), func(d *Tensor) { Conv2DGEMMInto(d, in, w, bias, spec, nil) })
	check("DepthwiseConv2DInto", DepthwiseConv2D(in, dw, bias[:3], spec), func(d *Tensor) { DepthwiseConv2DInto(d, in, dw, bias[:3], spec) })
	check("AddInto", Add(in, in), func(d *Tensor) { AddInto(d, in, in) })
	check("ConcatChannelsInto", ConcatChannels(in, in), func(d *Tensor) { ConcatChannelsInto(d, in, in) })
	check("Pad2DInto", Pad2D(in, 2), func(d *Tensor) { Pad2DInto(d, in, 2) })
	check("UpsampleNearest2DInto", UpsampleNearest2D(in, 2), func(d *Tensor) { UpsampleNearest2DInto(d, in, 2) })
	check("ShuffleChannelsInto", ShuffleChannels(in, 3), func(d *Tensor) { ShuffleChannelsInto(d, in, 3) })
	check("ReLUInto", ReLU(in.Clone()), func(d *Tensor) { ReLUInto(d, in) })
	check("ReLU6Into", ReLU6(in.Clone()), func(d *Tensor) { ReLU6Into(d, in) })
	check("LeakyReLUInto", LeakyReLU(in.Clone(), 0.1), func(d *Tensor) { LeakyReLUInto(d, in, 0.1) })
	check("SigmoidInto", Sigmoid(in.Clone()), func(d *Tensor) { SigmoidInto(d, in) })
	check("TanhInto", Tanh(in.Clone()), func(d *Tensor) { TanhInto(d, in) })

	gamma := []float32{1, 0.5, 2}
	beta := []float32{0, 1, -1}
	mean := []float32{0.1, 0.2, 0.3}
	variance := []float32{1, 2, 3}
	check("BatchNormInto", BatchNorm(in, gamma, beta, mean, variance, 1e-5),
		func(d *Tensor) { BatchNormInto(d, in, gamma, beta, mean, variance, 1e-5) })

	pspec := PoolSpec{Kernel: 3, Stride: 2, Pad: 1}
	check("MaxPool2DInto", MaxPool2D(in, pspec), func(d *Tensor) { MaxPool2DInto(d, in, pspec) })
	check("AvgPool2DInto", AvgPool2D(in, pspec), func(d *Tensor) { AvgPool2DInto(d, in, pspec) })

	// Vector-destination kernels.
	dm := New(5, len(in.Data)).Randomize(r, 1)
	wantDense := Dense(dm, []float32{1, 2, 3, 4, 5}, in.Data)
	gotDense := []float32{negInf, negInf, negInf, negInf, negInf}
	DenseInto(gotDense, dm, []float32{1, 2, 3, 4, 5}, in.Data)
	for i := range wantDense {
		if gotDense[i] != wantDense[i] {
			t.Fatalf("DenseInto[%d] = %v, want %v", i, gotDense[i], wantDense[i])
		}
	}
	wantSm := Softmax(wantDense)
	gotSm := []float32{negInf, negInf, negInf, negInf, negInf}
	SoftmaxInto(gotSm, wantDense)
	for i := range wantSm {
		if gotSm[i] != wantSm[i] {
			t.Fatalf("SoftmaxInto[%d] = %v, want %v", i, gotSm[i], wantSm[i])
		}
	}
	wantGap := GlobalAvgPool2D(in)
	gotGap := []float32{negInf, negInf, negInf}
	GlobalAvgPool2DInto(gotGap, in)
	for i := range wantGap {
		if gotGap[i] != wantGap[i] {
			t.Fatalf("GlobalAvgPool2DInto[%d] = %v, want %v", i, gotGap[i], wantGap[i])
		}
	}
}

// TestIm2ColIntoWritesPaddingZeros poisons the scratch buffer and checks
// the lowering still matches a fresh Im2Col — the padding cells must be
// written as explicit zeros.
func TestIm2ColIntoWritesPaddingZeros(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	in := New(2, 5, 5).Randomize(r, 1)
	spec := Conv2DSpec{Stride: 1, Pad: 2}
	want := Im2Col(in, 3, 3, spec)
	hout, wout := spec.OutDims(5, 5, 3, 3)
	got := dirty(want.Shape...)
	im2colInto(got.Data, in, 3, 3, spec.check(), hout, wout)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("im2colInto[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

// TestConv2DGEMMIntoWithPoolScratch runs the pooled-scratch GEMM conv
// twice so the second call reuses the first call's dirty im2col buffer.
func TestConv2DGEMMIntoWithPoolScratch(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	in := New(3, 17, 17).Randomize(r, 1)
	w := New(8, 3, 3, 3).Randomize(r, 1)
	spec := Conv2DSpec{Stride: 1, Pad: 1}
	want := Conv2DGEMM(in, w, nil, spec)
	pool := NewPool()
	for run := 0; run < 2; run++ {
		dst := dirty(want.Shape...)
		Conv2DGEMMInto(dst, in, w, nil, spec, pool)
		for i := range want.Data {
			if dst.Data[i] != want.Data[i] {
				t.Fatalf("run %d: dst[%d] = %v, want %v", run, i, dst.Data[i], want.Data[i])
			}
		}
	}
	st := pool.Stats()
	if st.Gets != 2 || st.Misses != 1 || st.Puts != 2 {
		t.Errorf("pool stats %+v: want 2 gets, 1 miss, 2 puts (scratch reused)", st)
	}
}

// TestPoolReuse pins the arena contract: same element count reuses the
// buffer (under a fresh shape), different count allocates.
func TestPoolReuse(t *testing.T) {
	p := NewPool()
	a := p.Get(2, 3)
	p.Put(a)
	b := p.Get(3, 2) // same elems, new shape: must reuse storage
	if &b.Data[0] != &a.Data[0] {
		t.Error("pool did not reuse same-elems buffer")
	}
	if !b.Shape.Equal(Shape{3, 2}) {
		t.Errorf("reused tensor shape %v, want [3 2]", b.Shape)
	}
	c := p.Get(4, 4)
	if len(c.Data) != 16 {
		t.Errorf("fresh buffer len %d", len(c.Data))
	}
	st := p.Stats()
	if st.Gets != 3 || st.Misses != 2 || st.Puts != 1 {
		t.Errorf("stats %+v", st)
	}
	p.Preallocate(16, 5)
	d := p.Get(4, 4)
	if st2 := p.Stats(); st2.Misses != 2 {
		t.Errorf("Get after Preallocate missed: %+v", st2)
	}
	_ = d
}

// TestMatVecParallelMatchesSerial pins the sharded MatVec against the
// plain row loop on a matrix above the parallel threshold.
func TestMatVecParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	m, k := 2048, 1024 // 2M MACs: above parallelThresholdMACs
	a := New(m, k).Randomize(r, 1)
	x := make([]float32, k)
	for i := range x {
		x[i] = r.Float32()*2 - 1
	}
	want := make([]float32, m)
	matVecRange(want, a.Data, x, k, 0, m)
	got := MatVec(a, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MatVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
