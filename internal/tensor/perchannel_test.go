package tensor

import (
	"math"
	"testing"

	"edgebench/internal/stats"
)

func TestPerChannelQuantBound(t *testing.T) {
	r := stats.NewRNG(17)
	// Channels with wildly different magnitudes — the case per-channel
	// scales exist for.
	w := New(4, 3, 3, 3)
	for oc := 0; oc < 4; oc++ {
		mag := float32(math.Pow(10, float64(oc)-2)) // 0.01 .. 10
		seg := w.Data[oc*27 : (oc+1)*27]
		for i := range seg {
			seg[i] = (r.Float32()*2 - 1) * mag
		}
	}
	out, scales := QuantizePerChannelRoundTrip(w)
	if len(scales) != 4 {
		t.Fatalf("scales = %d", len(scales))
	}
	for oc := 0; oc < 4; oc++ {
		bound := float64(scales[oc]) * 0.51
		for i := oc * 27; i < (oc+1)*27; i++ {
			if math.Abs(float64(w.Data[i]-out.Data[i])) > bound {
				t.Fatalf("channel %d error exceeds half-scale", oc)
			}
		}
	}
	// Per-channel must beat per-tensor on this tensor by a wide margin.
	perTensor := QuantizeSymmetric(w).Dequantize()
	var errPC, errPT float64
	for i := range w.Data {
		errPC += math.Abs(float64(w.Data[i] - out.Data[i]))
		errPT += math.Abs(float64(w.Data[i] - perTensor.Data[i]))
	}
	if errPC*2 > errPT {
		t.Fatalf("per-channel error %.4g should be well below per-tensor %.4g", errPC, errPT)
	}
}

func TestPerChannelZeroChannel(t *testing.T) {
	w := New(2, 4) // channel 0 zero, channel 1 ones
	for i := 4; i < 8; i++ {
		w.Data[i] = 1
	}
	out, scales := QuantizePerChannelRoundTrip(w)
	if scales[0] != 1 {
		t.Fatalf("zero channel scale = %v, want 1", scales[0])
	}
	for i := 0; i < 4; i++ {
		if out.Data[i] != 0 {
			t.Fatal("zero channel should round-trip to zero")
		}
	}
	for i := 4; i < 8; i++ {
		if out.Data[i] != 1 {
			t.Fatal("unit channel should round-trip exactly")
		}
	}
}
