package tensor

import "testing"

// Benchmarks pinning the epilogue-fold satellite: the folded kernels
// must not lose to compute-then-two-sweeps. engbench's epilogue group
// reports the same comparison in BENCH_engine.json; these are the
// package-local versions for `go test -bench` iteration.

func benchTensors(c, hw int) (in, dw *Tensor, bias []float32, epi Epilogue) {
	in = New(c, hw, hw)
	dw = New(c, 3, 3)
	for i := range in.Data {
		in.Data[i] = float32(i%1024)/512 - 1
	}
	for i := range dw.Data {
		dw.Data[i] = float32(i%64)/32 - 1
	}
	bias = make([]float32, c)
	epi = Epilogue{Scale: make([]float32, c), Shift: make([]float32, c), Act: ActReLU6}
	for i := range epi.Scale {
		epi.Scale[i] = 1 + float32(i%7)/16
		epi.Shift[i] = float32(i%5)/8 - 0.25
	}
	return in, dw, bias, epi
}

func BenchmarkDepthwiseEpilogueSweep(b *testing.B) {
	in, dw, bias, epi := benchTensors(64, 128)
	dst := New(64, 128, 128)
	spec := Conv2DSpec{Stride: 1, Pad: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DepthwiseConv2DInto(dst, in, dw, bias, spec)
		epi.ApplyInto(dst)
	}
}

func BenchmarkDepthwiseEpilogueFolded(b *testing.B) {
	in, dw, bias, epi := benchTensors(64, 128)
	dst := New(64, 128, 128)
	spec := Conv2DSpec{Stride: 1, Pad: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DepthwiseConv2DFusedInto(dst, in, dw, bias, spec, epi)
	}
}
