package tensor

// SameStorage reports whether two tensors share a backing buffer: their
// data slices start at the same element. Pooled arena buffers and fresh
// allocations are always whole allocations (views created by Reshape
// share their source's start), so start-pointer identity is exactly the
// aliasing the executor must never create between a kernel's dst and a
// still-live src — the *Into kernel contract says dst contents are
// arbitrary on entry, so writing through an alias corrupts the live
// input mid-kernel. The executor's debug mode asserts this at every
// allocation; edgelint's into-alias rule proves the static cases.
func SameStorage(a, b *Tensor) bool {
	if a == nil || b == nil || len(a.Data) == 0 || len(b.Data) == 0 {
		return false
	}
	return &a.Data[0] == &b.Data[0]
}
