package tensor

import (
	"fmt"
	"math"
)

// This file is the FP32 twin of the int8 epilogue in qconv.go: fused
// kernels that run a compute op's main loop and then apply an absorbed
// batch-norm (per-channel affine) and activation in the output buffer,
// so a Conv→BN→ReLU chain is one kernel call with no intermediate
// tensors. Bit-exactness contract: the epilogue performs the exact
// per-element operation sequence of the unfused node chain —
// (x [+bias]) then (x*scale + shift) then act(x) — with scale/shift
// precomputed by the same formula BatchNormInto uses, so fused and
// unfused execution produce bitwise-identical float32 outputs.

// Epilogue describes the fused post-processing a kernel applies to its
// output: an optional per-channel affine (an absorbed batch-norm, with
// scale = gamma/sqrt(var+eps) and shift = beta - mean*scale) followed
// by an optional activation. The zero value is a no-op.
type Epilogue struct {
	// Scale/Shift are per-output-channel affine terms; nil means no
	// absorbed batch-norm. Both must have equal length.
	Scale, Shift []float32
	// Act is the fused activation; ActNone means none.
	Act Act
	// Alpha is the LeakyReLU negative slope.
	Alpha float32
}

// Empty reports whether the epilogue performs no work.
func (e Epilogue) Empty() bool { return len(e.Scale) == 0 && e.Act == ActNone }

// ApplyInto applies the epilogue to dst in place: the affine sweep runs
// per channel (channel count = len(Scale), plane = elements/channel —
// for a rank-1 vector that degenerates to one term per element), then
// the activation sweep runs elementwise. The two sweeps reproduce the
// separate BatchNorm and activation nodes' per-element operation order
// exactly, so the result is bitwise identical to the unfused chain.
func (e Epilogue) ApplyInto(dst *Tensor) {
	if c := len(e.Scale); c > 0 {
		if len(e.Shift) != c {
			panic("tensor: Epilogue scale/shift length mismatch")
		}
		n := dst.Shape.NumElems()
		if n%c != 0 {
			panic("tensor: Epilogue channels do not divide output elements")
		}
		plane := n / c
		for ic := 0; ic < c; ic++ {
			seg := dst.Data[ic*plane : (ic+1)*plane]
			scale, shift := e.Scale[ic], e.Shift[ic]
			for i, v := range seg {
				seg[i] = v*scale + shift
			}
		}
	}
	if e.Act != ActNone {
		applyActInPlace(dst.Data, e.Act, e.Alpha)
	}
}

// applyActInPlace applies the activation elementwise in place, using
// the exact expressions of the standalone *Into activation kernels.
func applyActInPlace(data []float32, act Act, alpha float32) {
	switch act {
	case ActReLU:
		for i, v := range data {
			if v < 0 {
				data[i] = 0
			}
		}
	case ActReLU6:
		for i, v := range data {
			if v < 0 {
				data[i] = 0
			} else if v > 6 {
				data[i] = 6
			}
		}
	case ActLeakyReLU:
		for i, v := range data {
			if v < 0 {
				data[i] = alpha * v
			}
		}
	case ActSigmoid:
		for i, v := range data {
			data[i] = float32(1 / (1 + math.Exp(-float64(v))))
		}
	case ActTanh:
		for i, v := range data {
			data[i] = float32(math.Tanh(float64(v)))
		}
	}
}

// applyEpilogueSpan applies the epilogue to a contiguous span of output
// channel oc in ONE traversal: each element goes through the exact
// per-element operation sequence of Epilogue.ApplyInto — (v*scale +
// shift) then act — so the result is bitwise identical to the separate
// whole-tensor sweeps, but the span is read and written once instead of
// twice. The cheap clamping activations fuse into the affine loop; the
// transcendental ones fall back to two passes (their math/exp call
// dominates anyway).
func applyEpilogueSpan(seg []float32, oc int, epi Epilogue) {
	if len(epi.Scale) == 0 {
		applyActInPlace(seg, epi.Act, epi.Alpha)
		return
	}
	scale, shift := epi.Scale[oc], epi.Shift[oc]
	switch epi.Act {
	case ActNone:
		for i, v := range seg {
			seg[i] = v*scale + shift
		}
	case ActReLU:
		for i, v := range seg {
			v = v*scale + shift
			if v < 0 {
				v = 0
			}
			seg[i] = v
		}
	case ActReLU6:
		for i, v := range seg {
			v = v*scale + shift
			if v < 0 {
				v = 0
			} else if v > 6 {
				v = 6
			}
			seg[i] = v
		}
	case ActLeakyReLU:
		for i, v := range seg {
			v = v*scale + shift
			if v < 0 {
				v = epi.Alpha * v
			}
			seg[i] = v
		}
	default:
		for i, v := range seg {
			seg[i] = v*scale + shift
		}
		applyActInPlace(seg, epi.Act, epi.Alpha)
	}
}

// foldEpilogueRows applies the epilogue to the flattened output-row
// tiles [lo, hi) by channel-contiguous spans, so a compute shard's
// epilogue costs a handful of span calls, not one call per row.
func foldEpilogueRows(out *Tensor, lo, hi int, epi Epilogue) {
	hout, wout := out.Shape[1], out.Shape[2]
	for u := lo; u < hi; {
		oc := u / hout
		end := (oc + 1) * hout
		if end > hi {
			end = hi
		}
		applyEpilogueSpan(out.Data[u*wout:end*wout], oc, epi)
		u = end
	}
}

// checkEpilogueChannels rejects an affine epilogue whose channel count
// does not match the kernel's output channels (the row-folded paths
// index Scale/Shift by output channel directly).
func checkEpilogueChannels(epi Epilogue, cout int) {
	if c := len(epi.Scale); c > 0 && (len(epi.Shift) != c || c != cout) {
		panic("tensor: fused epilogue scale/shift length does not match output channels")
	}
}

// convRowsFused computes the flattened output-row tiles [lo, hi) and
// then applies the epilogue to just those rows while the shard is still
// cache-resident — the epilogue work rides along with each compute
// shard instead of running as two extra whole-tensor sweeps after all
// shards finish.
func convRowsFused(in, w *Tensor, bias []float32, spec Conv2DSpec, out *Tensor, lo, hi int, epi Epilogue) {
	convRows(in, w, bias, spec, out, lo, hi)
	foldEpilogueRows(out, lo, hi, epi)
}

// Conv2DFusedInto computes the direct convolution with bias and the
// epilogue folded into the row loop — one output traversal per fused
// Conv→BN→act node, sharded across the worker pool above the MAC
// threshold exactly like Conv2DAutoInto.
func Conv2DFusedInto(dst, in, w *Tensor, bias []float32, spec Conv2DSpec, epi Epilogue) {
	spec = spec.check()
	_, _, _, cout, _, _, hout, wout := conv2DDims(in, w, bias, spec)
	checkConvDst(dst, cout, hout, wout)
	checkEpilogueChannels(epi, cout)
	if ConvMACs(w, hout, wout) >= parallelThresholdMACs {
		macsPerRow := in.Shape[0] * w.Shape[2] * w.Shape[3] * wout
		parallelFor(cout*hout, grainForMACs(macsPerRow), func(lo, hi int) {
			convRowsFused(in, w, bias, spec, dst, lo, hi, epi)
		})
		return
	}
	convRowsFused(in, w, bias, spec, dst, 0, cout*hout, epi)
}

// Conv2DGEMMFusedInto is the im2col+GEMM convolution with the bias,
// affine, and activation folded into one per-channel output sweep (the
// GEMM path's bias loop already traverses the output once; the fused
// sweep does bias+epilogue in that same pass).
func Conv2DGEMMFusedInto(dst, in, w *Tensor, bias []float32, spec Conv2DSpec, scratch *Pool, epi Epilogue) {
	spec = spec.check()
	_, _, _, cout, _, _, hout, wout := conv2DDims(in, w, bias, spec)
	checkConvDst(dst, cout, hout, wout)
	if c := len(epi.Scale); c > 0 && (len(epi.Shift) != c || c != cout) {
		panic("tensor: Conv2DGEMMFused epilogue length mismatch")
	}
	cin, kh, kw := w.Shape[1], w.Shape[2], w.Shape[3]
	rows := cin * kh * kw
	ncols := hout * wout
	var cols *Tensor
	if scratch != nil {
		cols = scratch.Get(rows, ncols)
	} else {
		cols = New(rows, ncols)
	}
	im2colInto(cols.Data, in, kh, kw, spec, hout, wout)
	matmulInto(dst.Data, w.Data, cols.Data, cout, rows, ncols)
	if scratch != nil {
		scratch.Put(cols)
	}
	for oc := 0; oc < cout; oc++ {
		seg := dst.Data[oc*ncols : (oc+1)*ncols]
		if bias != nil {
			b := bias[oc]
			for i := range seg {
				seg[i] += b
			}
		}
		if len(epi.Scale) > 0 {
			scale, shift := epi.Scale[oc], epi.Shift[oc]
			for i, v := range seg {
				seg[i] = v*scale + shift
			}
		}
		applyActInPlace(seg, epi.Act, epi.Alpha)
	}
}

// depthwiseRowsFused is depthwiseRows with the epilogue folded into the
// row loop, mirroring convRowsFused.
func depthwiseRowsFused(dst, in, w *Tensor, bias []float32, spec Conv2DSpec, lo, hi int, epi Epilogue) {
	depthwiseRows(dst, in, w, bias, spec, lo, hi)
	foldEpilogueRows(dst, lo, hi, epi)
}

// DepthwiseConv2DFusedInto computes the depthwise convolution with the
// epilogue folded into the row loop — one output traversal, same
// sharding policy as DepthwiseConv2DInto.
func DepthwiseConv2DFusedInto(dst, in, w *Tensor, bias []float32, spec Conv2DSpec, epi Epilogue) {
	spec = spec.check()
	c, h, wd := in.Shape[0], in.Shape[1], in.Shape[2]
	wc, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2]
	if c != wc {
		panic(fmt.Sprintf("tensor: DepthwiseConv2DFused channel mismatch: %v vs %v", in.Shape, w.Shape))
	}
	if bias != nil && len(bias) != c {
		panic("tensor: DepthwiseConv2DFused bias length mismatch")
	}
	hout, wout := spec.OutDims(h, wd, kh, kw)
	checkConvDst(dst, c, hout, wout)
	checkEpilogueChannels(epi, c)
	macsPerRow := kh * kw * wout
	if c*hout*macsPerRow < parallelThresholdMACs {
		depthwiseRowsFused(dst, in, w, bias, spec, 0, c*hout, epi)
		return
	}
	parallelFor(c*hout, grainForMACs(macsPerRow), func(lo, hi int) {
		depthwiseRowsFused(dst, in, w, bias, spec, lo, hi, epi)
	})
}

// DenseFusedInto computes dst = epi(w*x + bias) for a [Out, In] weight
// matrix; the epilogue's affine (if any) is per output element.
func DenseFusedInto(dst *Tensor, w *Tensor, bias, x []float32, epi Epilogue) {
	DenseInto(dst.Data, w, bias, x)
	epi.ApplyInto(dst)
}

// AddFusedInto computes dst = epi(a + b) — the fused residual-add +
// activation kernel (the epilogue carries no affine for adds).
func AddFusedInto(dst, a, b *Tensor, epi Epilogue) {
	AddInto(dst, a, b)
	epi.ApplyInto(dst)
}
