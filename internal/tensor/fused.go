package tensor

import "math"

// This file is the FP32 twin of the int8 epilogue in qconv.go: fused
// kernels that run a compute op's main loop and then apply an absorbed
// batch-norm (per-channel affine) and activation in the output buffer,
// so a Conv→BN→ReLU chain is one kernel call with no intermediate
// tensors. Bit-exactness contract: the epilogue performs the exact
// per-element operation sequence of the unfused node chain —
// (x [+bias]) then (x*scale + shift) then act(x) — with scale/shift
// precomputed by the same formula BatchNormInto uses, so fused and
// unfused execution produce bitwise-identical float32 outputs.

// Epilogue describes the fused post-processing a kernel applies to its
// output: an optional per-channel affine (an absorbed batch-norm, with
// scale = gamma/sqrt(var+eps) and shift = beta - mean*scale) followed
// by an optional activation. The zero value is a no-op.
type Epilogue struct {
	// Scale/Shift are per-output-channel affine terms; nil means no
	// absorbed batch-norm. Both must have equal length.
	Scale, Shift []float32
	// Act is the fused activation; ActNone means none.
	Act Act
	// Alpha is the LeakyReLU negative slope.
	Alpha float32
}

// Empty reports whether the epilogue performs no work.
func (e Epilogue) Empty() bool { return len(e.Scale) == 0 && e.Act == ActNone }

// ApplyInto applies the epilogue to dst in place: the affine sweep runs
// per channel (channel count = len(Scale), plane = elements/channel —
// for a rank-1 vector that degenerates to one term per element), then
// the activation sweep runs elementwise. The two sweeps reproduce the
// separate BatchNorm and activation nodes' per-element operation order
// exactly, so the result is bitwise identical to the unfused chain.
func (e Epilogue) ApplyInto(dst *Tensor) {
	if c := len(e.Scale); c > 0 {
		if len(e.Shift) != c {
			panic("tensor: Epilogue scale/shift length mismatch")
		}
		n := dst.Shape.NumElems()
		if n%c != 0 {
			panic("tensor: Epilogue channels do not divide output elements")
		}
		plane := n / c
		for ic := 0; ic < c; ic++ {
			seg := dst.Data[ic*plane : (ic+1)*plane]
			scale, shift := e.Scale[ic], e.Shift[ic]
			for i, v := range seg {
				seg[i] = v*scale + shift
			}
		}
	}
	if e.Act != ActNone {
		applyActInPlace(dst.Data, e.Act, e.Alpha)
	}
}

// applyActInPlace applies the activation elementwise in place, using
// the exact expressions of the standalone *Into activation kernels.
func applyActInPlace(data []float32, act Act, alpha float32) {
	switch act {
	case ActReLU:
		for i, v := range data {
			if v < 0 {
				data[i] = 0
			}
		}
	case ActReLU6:
		for i, v := range data {
			if v < 0 {
				data[i] = 0
			} else if v > 6 {
				data[i] = 6
			}
		}
	case ActLeakyReLU:
		for i, v := range data {
			if v < 0 {
				data[i] = alpha * v
			}
		}
	case ActSigmoid:
		for i, v := range data {
			data[i] = float32(1 / (1 + math.Exp(-float64(v))))
		}
	case ActTanh:
		for i, v := range data {
			data[i] = float32(math.Tanh(float64(v)))
		}
	}
}

// Conv2DFusedInto computes the direct (auto-parallel) convolution with
// bias and applies the epilogue in the output buffer — one kernel call
// for a fused Conv→BN→act node.
func Conv2DFusedInto(dst, in, w *Tensor, bias []float32, spec Conv2DSpec, epi Epilogue) {
	Conv2DAutoInto(dst, in, w, bias, spec)
	epi.ApplyInto(dst)
}

// Conv2DGEMMFusedInto is the im2col+GEMM convolution with the bias,
// affine, and activation folded into one per-channel output sweep (the
// GEMM path's bias loop already traverses the output once; the fused
// sweep does bias+epilogue in that same pass).
func Conv2DGEMMFusedInto(dst, in, w *Tensor, bias []float32, spec Conv2DSpec, scratch *Pool, epi Epilogue) {
	spec = spec.check()
	_, _, _, cout, _, _, hout, wout := conv2DDims(in, w, bias, spec)
	checkConvDst(dst, cout, hout, wout)
	if c := len(epi.Scale); c > 0 && (len(epi.Shift) != c || c != cout) {
		panic("tensor: Conv2DGEMMFused epilogue length mismatch")
	}
	cin, kh, kw := w.Shape[1], w.Shape[2], w.Shape[3]
	rows := cin * kh * kw
	ncols := hout * wout
	var cols *Tensor
	if scratch != nil {
		cols = scratch.Get(rows, ncols)
	} else {
		cols = New(rows, ncols)
	}
	im2colInto(cols.Data, in, kh, kw, spec, hout, wout)
	matmulInto(dst.Data, w.Data, cols.Data, cout, rows, ncols)
	if scratch != nil {
		scratch.Put(cols)
	}
	for oc := 0; oc < cout; oc++ {
		seg := dst.Data[oc*ncols : (oc+1)*ncols]
		if bias != nil {
			b := bias[oc]
			for i := range seg {
				seg[i] += b
			}
		}
		if len(epi.Scale) > 0 {
			scale, shift := epi.Scale[oc], epi.Shift[oc]
			for i, v := range seg {
				seg[i] = v*scale + shift
			}
		}
		applyActInPlace(seg, epi.Act, epi.Alpha)
	}
}

// DepthwiseConv2DFusedInto computes the depthwise convolution with bias
// and applies the epilogue in the output buffer.
func DepthwiseConv2DFusedInto(dst, in, w *Tensor, bias []float32, spec Conv2DSpec, epi Epilogue) {
	DepthwiseConv2DInto(dst, in, w, bias, spec)
	epi.ApplyInto(dst)
}

// DenseFusedInto computes dst = epi(w*x + bias) for a [Out, In] weight
// matrix; the epilogue's affine (if any) is per output element.
func DenseFusedInto(dst *Tensor, w *Tensor, bias, x []float32, epi Epilogue) {
	DenseInto(dst.Data, w, bias, x)
	epi.ApplyInto(dst)
}

// AddFusedInto computes dst = epi(a + b) — the fused residual-add +
// activation kernel (the epilogue carries no affine for adds).
func AddFusedInto(dst, a, b *Tensor, epi Epilogue) {
	AddInto(dst, a, b)
	epi.ApplyInto(dst)
}
