package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"edgebench/internal/stats"
)

func TestQuantizeRoundTripBound(t *testing.T) {
	r := stats.NewRNG(3)
	in := New(1000).Randomize(r, 10)
	q := QuantizeSymmetric(in)
	out := q.Dequantize()
	bound := float64(q.Scale) / 2 * 1.0001
	for i := range in.Data {
		if math.Abs(float64(in.Data[i]-out.Data[i])) > bound {
			t.Fatalf("elem %d error %v exceeds half-scale %v",
				i, in.Data[i]-out.Data[i], bound)
		}
	}
}

func TestQuantizeZeroTensor(t *testing.T) {
	q := QuantizeSymmetric(New(4))
	if q.Scale != 1 {
		t.Fatalf("zero tensor scale = %v, want 1", q.Scale)
	}
	for _, v := range q.Dequantize().Data {
		if v != 0 {
			t.Fatal("zero tensor should round-trip to zero")
		}
	}
}

func TestQuantizeSaturation(t *testing.T) {
	in := FromData([]float32{127, -127, 1}, 3)
	q := QuantizeSymmetric(in)
	if q.Data[0] != 127 || q.Data[1] != -127 {
		t.Fatalf("extremes = %v", q.Data)
	}
}

// TestQuantClampSymmetricRange pins the negative clip edge: the
// symmetric scheme's code range is [-127, 127] and no quantizer may
// emit -128 — the int8 kernels' SWAR lane bias and the documented
// |code|*scale <= maxabs contract both depend on it. The adversarial
// inputs steer float rounding toward the -128 boundary.
func TestQuantClampSymmetricRange(t *testing.T) {
	if got := quantClamp(-127.5); got != -127 {
		t.Fatalf("quantClamp(-127.5) = %d, want -127", got)
	}
	if got := quantClamp(-1e9); got != -127 {
		t.Fatalf("quantClamp(-1e9) = %d, want -127", got)
	}
	if got := quantClamp(1e9); got != 127 {
		t.Fatalf("quantClamp(1e9) = %d, want 127", got)
	}
	adversarial := []float32{-1, -0.9999999, -127, -127.0001, -1e30, 1e-30, 0}
	in := FromData(adversarial, len(adversarial))
	for _, q := range []*QTensor{QuantizeSymmetric(in), QuantizePerChannel(FromData(adversarial, len(adversarial), 1))} {
		for i, v := range q.Data {
			if v == -128 {
				t.Fatalf("code -128 emitted at %d for input %g", i, adversarial[i])
			}
		}
	}
	dyn := make([]int8, len(adversarial))
	QuantizeDynamicInto(dyn, adversarial)
	for i, v := range dyn {
		if v == -128 {
			t.Fatalf("dynamic code -128 emitted at %d for input %g", i, adversarial[i])
		}
	}
}

// Property: quantization error is bounded by half the scale for all inputs.
func TestQuantizePropertyBound(t *testing.T) {
	f := func(raw []float32) bool {
		xs := raw[:0:0]
		for _, v := range raw {
			if !math.IsNaN(float64(v)) && !math.IsInf(float64(v), 0) && math.Abs(float64(v)) < 1e20 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		in := FromData(xs, len(xs))
		q := QuantizeSymmetric(in)
		out := q.Dequantize()
		for i := range xs {
			if math.Abs(float64(xs[i]-out.Data[i])) > float64(q.Scale)*0.51 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFP16ExactValues(t *testing.T) {
	cases := []float32{0, 1, -1, 0.5, 2, 1024, -0.25, 65504}
	for _, v := range cases {
		if got := fromFP16(toFP16(v)); got != v {
			t.Errorf("fp16 round trip of %v = %v", v, got)
		}
	}
}

func TestFP16Saturation(t *testing.T) {
	if got := fromFP16(toFP16(1e9)); got != 65504 {
		t.Fatalf("overflow should saturate to 65504, got %v", got)
	}
	if got := fromFP16(toFP16(-1e9)); got != -65504 {
		t.Fatalf("negative overflow = %v", got)
	}
}

func TestFP16NaN(t *testing.T) {
	nan := float32(math.NaN())
	if !math.IsNaN(float64(fromFP16(toFP16(nan)))) {
		t.Fatal("NaN should round-trip to NaN")
	}
}

func TestFP16Subnormals(t *testing.T) {
	// Smallest positive fp16 subnormal is 2^-24 ≈ 5.96e-8.
	small := float32(math.Ldexp(1, -24))
	if got := fromFP16(toFP16(small)); got != small {
		t.Fatalf("subnormal round trip = %v, want %v", got, small)
	}
	// Values below half the smallest subnormal flush to zero.
	tiny := float32(math.Ldexp(1, -26))
	if got := fromFP16(toFP16(tiny)); got != 0 {
		t.Fatalf("tiny value should flush to zero, got %v", got)
	}
}

// Property: fp16 relative error is within 2^-11 for normal-range values.
func TestFP16RelativeErrorProperty(t *testing.T) {
	f := func(raw float32) bool {
		v := raw
		a := math.Abs(float64(v))
		if math.IsNaN(a) || a < 1e-4 || a > 6e4 {
			return true
		}
		got := fromFP16(toFP16(v))
		rel := math.Abs(float64(got-v)) / a
		return rel <= math.Ldexp(1, -11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripFP16Tensor(t *testing.T) {
	r := stats.NewRNG(9)
	in := New(256).Randomize(r, 100)
	out := RoundTripFP16(in)
	for i := range in.Data {
		rel := math.Abs(float64(out.Data[i]-in.Data[i])) / math.Max(1e-6, math.Abs(float64(in.Data[i])))
		if rel > 1e-3 {
			t.Fatalf("fp16 tensor error too large at %d: %v vs %v", i, out.Data[i], in.Data[i])
		}
	}
	if in.Data[0] == out.Data[0] && in.Data[0] != fromFP16(toFP16(in.Data[0])) {
		t.Fatal("RoundTripFP16 must not mutate the input")
	}
}

func TestPruneMagnitude(t *testing.T) {
	in := FromData([]float32{0.1, -5, 0.2, 3, -0.05, 7, 0.3, -2}, 8)
	n := PruneMagnitude(in, 0.5)
	if n != 4 {
		t.Fatalf("pruned %d, want 4", n)
	}
	if Sparsity(in) != 0.5 {
		t.Fatalf("sparsity = %v, want 0.5", Sparsity(in))
	}
	// Largest magnitudes must survive.
	surviving := map[float32]bool{}
	for _, v := range in.Data {
		surviving[v] = true
	}
	for _, must := range []float32{-5, 3, 7, -2} {
		if !surviving[must] {
			t.Fatalf("large weight %v was pruned", must)
		}
	}
}

func TestPruneMagnitudeEdgeCases(t *testing.T) {
	in := FromData([]float32{1, 2}, 2)
	if PruneMagnitude(in, 0) != 0 {
		t.Fatal("zero fraction should prune nothing")
	}
	if PruneMagnitude(in.Clone(), 2) != 2 {
		t.Fatal("fraction > 1 should clamp and prune all")
	}
	if PruneMagnitude(New(1), 0.0001) != 0 {
		t.Fatal("sub-element fraction should prune nothing")
	}
}

// Property: pruning fraction f yields sparsity >= f (within one element).
func TestPruneSparsityProperty(t *testing.T) {
	r := stats.NewRNG(21)
	f := func(frac float64) bool {
		frac = math.Mod(math.Abs(frac), 1)
		in := New(64).Randomize(r, 1)
		PruneMagnitude(in, frac)
		return Sparsity(in) >= frac-1.0/64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKthSmallest(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	for k := 1; k <= 5; k++ {
		cp := append([]float64(nil), xs...)
		if got := kthSmallest(cp, k); got != float64(k) {
			t.Fatalf("kthSmallest(%d) = %v", k, got)
		}
	}
}
