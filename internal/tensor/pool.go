package tensor

import "math"

const negInf = float32(-math.MaxFloat32)

// PoolSpec describes 2-D pooling over [C, H, W] tensors.
type PoolSpec struct {
	Kernel int
	Stride int
	Pad    int
}

func (s PoolSpec) check() PoolSpec {
	if s.Kernel <= 0 {
		panic("tensor: pooling kernel must be positive")
	}
	if s.Stride <= 0 {
		s.Stride = s.Kernel
	}
	if s.Pad < 0 {
		panic("tensor: negative pooling padding")
	}
	return s
}

// OutDim returns the pooled output size for input size in.
func (s PoolSpec) OutDim(in int) int {
	s = s.check()
	out := (in+2*s.Pad-s.Kernel)/s.Stride + 1
	if out <= 0 {
		panic("tensor: pooling output dim <= 0")
	}
	return out
}

// MaxPool2D applies max pooling. Padded positions never win the max
// (they contribute -inf), matching framework semantics.
func MaxPool2D(in *Tensor, spec PoolSpec) *Tensor {
	spec = spec.check()
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	hout := spec.OutDim(h)
	wout := spec.OutDim(w)
	out := New(c, hout, wout)
	for ic := 0; ic < c; ic++ {
		for oy := 0; oy < hout; oy++ {
			for ox := 0; ox < wout; ox++ {
				m := negInf
				for ky := 0; ky < spec.Kernel; ky++ {
					iy := oy*spec.Stride + ky - spec.Pad
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < spec.Kernel; kx++ {
						ix := ox*spec.Stride + kx - spec.Pad
						if ix < 0 || ix >= w {
							continue
						}
						if v := in.Data[(ic*h+iy)*w+ix]; v > m {
							m = v
						}
					}
				}
				out.Data[(ic*hout+oy)*wout+ox] = m
			}
		}
	}
	return out
}

// AvgPool2D applies average pooling. The divisor counts only in-bounds
// positions (the "count_exclude_pad" convention).
func AvgPool2D(in *Tensor, spec PoolSpec) *Tensor {
	spec = spec.check()
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	hout := spec.OutDim(h)
	wout := spec.OutDim(w)
	out := New(c, hout, wout)
	for ic := 0; ic < c; ic++ {
		for oy := 0; oy < hout; oy++ {
			for ox := 0; ox < wout; ox++ {
				var sum float32
				var n int
				for ky := 0; ky < spec.Kernel; ky++ {
					iy := oy*spec.Stride + ky - spec.Pad
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < spec.Kernel; kx++ {
						ix := ox*spec.Stride + kx - spec.Pad
						if ix < 0 || ix >= w {
							continue
						}
						sum += in.Data[(ic*h+iy)*w+ix]
						n++
					}
				}
				if n > 0 {
					out.Data[(ic*hout+oy)*wout+ox] = sum / float32(n)
				}
			}
		}
	}
	return out
}

// GlobalAvgPool2D reduces [C, H, W] to a length-C vector of per-channel
// means — the head of ResNet/MobileNet/Inception classifiers.
func GlobalAvgPool2D(in *Tensor) []float32 {
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	out := make([]float32, c)
	plane := h * w
	for ic := 0; ic < c; ic++ {
		var sum float32
		for _, v := range in.Data[ic*plane : (ic+1)*plane] {
			sum += v
		}
		out[ic] = sum / float32(plane)
	}
	return out
}
