package tensor

import (
	"math/rand"
	"testing"
)

func qnaive(dst []int32, a, b []int8, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s int32
			for l := 0; l < k; l++ {
				s += int32(a[i*k+l]) * int32(b[l*n+j])
			}
			dst[i*n+j] = s
		}
	}
}

func randQ(r *rand.Rand, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(r.Intn(255) - 127)
	}
	return out
}

func TestQGEMMMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {4, 256, 9}, {17, 300, 33}, {64, 64, 64}, {2, 515, 2}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randQ(r, m*k), randQ(r, k*n)
		want := make([]int32, m*n)
		qnaive(want, a, b, m, k, n)
		got := make([]int32, m*n)
		QGEMMSerial(got, a, b, m, k, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dims %v: serial dst[%d] = %d, want %d", dims, i, got[i], want[i])
			}
		}
		clear(got)
		QGEMM(got, a, b, m, k, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dims %v: parallel dst[%d] = %d, want %d", dims, i, got[i], want[i])
			}
		}
	}
}

func BenchmarkQGEMM512(b *testing.B) {
	const d = 512
	r := rand.New(rand.NewSource(1))
	a, bb := randQ(r, d*d), randQ(r, d*d)
	dst := make([]int32, d*d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QGEMMSerial(dst, a, bb, d, d, d)
	}
}

func BenchmarkGEMMFP32Blocked512(b *testing.B) {
	const d = 512
	a, bb := New(d, d), New(d, d)
	for i := range a.Data {
		a.Data[i] = float32(i%255) - 127
		bb.Data[i] = float32((i*7)%255) - 127
	}
	dst := make([]float32, d*d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matmulBlockedRange(dst, a.Data, bb.Data, d, d, d, 0, d, nil)
	}
}
