package tensor

import (
	"math/rand"
	"testing"
)

func qnaive(dst []int32, a, b []int8, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s int32
			for l := 0; l < k; l++ {
				s += int32(a[i*k+l]) * int32(b[l*n+j])
			}
			dst[i*n+j] = s
		}
	}
}

func randQ(r *rand.Rand, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(r.Intn(255) - 127)
	}
	return out
}

func TestQGEMMMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {4, 256, 9}, {17, 300, 33}, {64, 64, 64}, {2, 515, 2}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randQ(r, m*k), randQ(r, k*n)
		want := make([]int32, m*n)
		qnaive(want, a, b, m, k, n)
		got := make([]int32, m*n)
		QGEMMSerial(got, a, b, m, k, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dims %v: serial dst[%d] = %d, want %d", dims, i, got[i], want[i])
			}
		}
		clear(got)
		QGEMM(got, a, b, m, k, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dims %v: parallel dst[%d] = %d, want %d", dims, i, got[i], want[i])
			}
		}
	}
}

// TestQGEMMParallelOddM drives the sharded path above the parallel
// threshold with odd M: shard boundaries must land on even rows so the
// SWAR two-rows-per-int64 pairing stays intact, and only the final row
// pays the single-row remainder kernel. Integer accumulation is exact,
// so parallel must equal serial bit for bit.
func TestQGEMMParallelOddM(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, dims := range [][3]int{{129, 160, 160}, {255, 128, 64}, {65, 127, 255}} {
		m, k, n := dims[0], dims[1], dims[2]
		if m*k*n < ParallelThresholdMACs() {
			t.Fatalf("dims %v below parallel threshold; test would not exercise sharding", dims)
		}
		a, b := randQ(r, m*k), randQ(r, k*n)
		want := make([]int32, m*n)
		QGEMMSerial(want, a, b, m, k, n)
		got := make([]int32, m*n)
		QGEMM(got, a, b, m, k, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dims %v: parallel dst[%d] = %d, want %d", dims, i, got[i], want[i])
			}
		}
	}
}

// TestQGEMMPairRange pins the pair-to-row mapping: even boundaries
// everywhere, the odd remainder row owned by the last pair, and full
// coverage of [0, m).
func TestQGEMMPairRange(t *testing.T) {
	cases := []struct {
		lo, hi, m, rlo, rhi int
	}{
		{0, 2, 8, 0, 4},
		{2, 4, 8, 4, 8},
		{0, 3, 5, 0, 5}, // last pair absorbs the remainder row
		{2, 3, 5, 4, 5}, // remainder pair alone
		{0, 1, 1, 0, 1}, // m=1: a single lone row
		{0, 65, 129, 0, 129},
	}
	for _, c := range cases {
		rlo, rhi := qgemmPairRange(c.lo, c.hi, c.m)
		if rlo != c.rlo || rhi != c.rhi {
			t.Errorf("qgemmPairRange(%d, %d, m=%d) = [%d, %d), want [%d, %d)",
				c.lo, c.hi, c.m, rlo, rhi, c.rlo, c.rhi)
		}
		if rlo%2 != 0 {
			t.Errorf("qgemmPairRange(%d, %d, m=%d): shard start %d is odd", c.lo, c.hi, c.m, rlo)
		}
	}
}

func BenchmarkQGEMM512(b *testing.B) {
	const d = 512
	r := rand.New(rand.NewSource(1))
	a, bb := randQ(r, d*d), randQ(r, d*d)
	dst := make([]int32, d*d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QGEMMSerial(dst, a, bb, d, d, d)
	}
}

func BenchmarkGEMMFP32Blocked512(b *testing.B) {
	const d = 512
	a, bb := New(d, d), New(d, d)
	for i := range a.Data {
		a.Data[i] = float32(i%255) - 127
		bb.Data[i] = float32((i*7)%255) - 127
	}
	dst := make([]float32, d*d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matmulBlockedRange(dst, a.Data, bb.Data, d, d, d, 0, d, nil)
	}
}
