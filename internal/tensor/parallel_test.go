package tensor

import (
	"testing"
	"testing/quick"

	"edgebench/internal/stats"
)

// TestParallelMatchesSerial is the correctness contract: the sharded
// kernel must agree with the serial reference exactly (same summation
// order per channel, so bit-identical).
func TestParallelMatchesSerial(t *testing.T) {
	r := stats.NewRNG(13)
	f := func(seed int64) bool {
		cin := 1 + int(seed&3)
		cout := 1 + int(seed>>2&7)
		h := 6 + int(seed>>5&7)
		k := 1 + 2*int(seed>>8&1)
		stride := 1 + int(seed>>9&1)
		pad := int(seed >> 10 & 1)
		if h+2*pad < k {
			return true
		}
		in := New(cin, h, h).Randomize(r, 1)
		w := New(cout, cin, k, k).Randomize(r, 1)
		bias := make([]float32, cout)
		for i := range bias {
			bias[i] = r.Float32()
		}
		spec := Conv2DSpec{Stride: stride, Pad: pad}
		a := Conv2D(in, w, bias, spec)
		b := Conv2DParallel(in, w, bias, spec)
		if !a.Shape.Equal(b.Shape) {
			return false
		}
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConv2DAutoDispatch(t *testing.T) {
	r := stats.NewRNG(14)
	// A big layer (above the threshold) must still be exact.
	in := New(16, 32, 32).Randomize(r, 1)
	w := New(32, 16, 3, 3).Randomize(r, 1)
	spec := Conv2DSpec{Stride: 1, Pad: 1}
	a := Conv2D(in, w, nil, spec)
	b := Conv2DAuto(in, w, nil, spec)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("auto dispatch changed results")
		}
	}
	// Tiny layer goes through the serial path — still exact.
	tiny := Conv2DAuto(New(1, 4, 4).Fill(1), New(1, 1, 3, 3).Fill(1), nil, spec)
	if tiny.At(0, 1, 1) != 9 {
		t.Fatalf("serial path wrong: %v", tiny.At(0, 1, 1))
	}
}

func BenchmarkConv2DSerialLarge(b *testing.B) {
	r := stats.NewRNG(15)
	in := New(64, 56, 56).Randomize(r, 1)
	w := New(64, 64, 3, 3).Randomize(r, 1)
	spec := Conv2DSpec{Stride: 1, Pad: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(in, w, nil, spec)
	}
}

func BenchmarkConv2DParallelLarge(b *testing.B) {
	r := stats.NewRNG(15)
	in := New(64, 56, 56).Randomize(r, 1)
	w := New(64, 64, 3, 3).Randomize(r, 1)
	spec := Conv2DSpec{Stride: 1, Pad: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DParallel(in, w, nil, spec)
	}
}
