package tensor

import "sync"

// Int8 GEMM blocking parameters. The kernel mirrors the FP32 blocked
// kernel in gemm.go — tile over N and K, pack the B block into a panel
// interleaved in groups of qgemmMR K-rows, stream every A row over it —
// but the panel holds one byte per element, so the same cache budget
// covers a 4x larger block and the microkernel's panel traffic is a
// quarter of the FP32 kernel's.
//
// The microkernel beats scalar FP32 by dodging the integer-multiply
// throughput wall (one scalar IMUL per cycle on most cores, vs two FP
// multiply ports) with a SWAR pairing: two A rows are packed into one
// int64 lane pair (hi<<32 + lo) and multiplied by a zero-extended panel
// byte, so a single 64-bit multiply yields both rows' products. To keep
// the lanes separable the panel stores c+128 (unsigned), and the +128
// bias is subtracted once per K-block via the rows' precomputed sums —
// exact integer arithmetic throughout, accumulated in int32 (the lane
// sums stay below 2^18, far under overflow).
const (
	qgemmKC = 256 // K-block: rows of B packed per panel (2x the FP32 KC; same bytes)
	qgemmNC = 512 // N-block: columns of B packed per panel
	qgemmMR = 4   // K-interleave of the packed panel / microkernel unroll
)

// qgemmPanelElems is the scratch size one packed B panel needs, in bytes.
func qgemmPanelElems() int { return qgemmKC * qgemmNC }

// qgemmPanelPool recycles packed int8 panels across parallel QGEMM
// chunks (one panel per in-flight chunk, zero steady-state allocation).
var qgemmPanelPool = sync.Pool{New: func() any {
	p := make([]byte, qgemmPanelElems())
	return &p
}}

// QGEMM computes dst = a x b for row-major int8 matrices a [m, k] and
// b [k, n] into int32 accumulators, overwriting all of dst[0:m*n]. Work
// above the parallel threshold is sharded across the persistent worker
// pool by row *pairs* — qgemmPairRange maps each chunk to an even row
// start, keeping the SWAR two-rows-per-int64 pairing intact so only the
// final row of an odd-M matrix pays the single-row remainder kernel.
// Results are identical to QGEMMSerial because integer accumulation is
// exact regardless of the shard split.
func QGEMM(dst []int32, a, b []int8, m, k, n int) {
	if m*k*n < parallelThresholdMACs {
		qgemmBlockedRange(dst, a, b, m, k, n, 0, m, nil)
		return
	}
	pairs := (m + 1) / 2
	parallelFor(pairs, grainForMACs(2*k*n), func(lo, hi int) {
		rlo, rhi := qgemmPairRange(lo, hi, m)
		panel := qgemmPanelPool.Get().(*[]byte)
		qgemmBlockedRange(dst, a, b, m, k, n, rlo, rhi, *panel)
		qgemmPanelPool.Put(panel)
	})
}

// qgemmPairRange converts a chunk of row-pair indices [lo, hi) into the
// row range it owns: shard boundaries always land on even rows, and the
// last pair of an odd-M matrix owns the lone remainder row.
func qgemmPairRange(lo, hi, m int) (rlo, rhi int) {
	rlo, rhi = lo*2, hi*2
	if rhi > m {
		rhi = m
	}
	return rlo, rhi
}

// QGEMMSerial computes dst = a x b on the calling goroutine with the
// blocked int8 kernel — the deterministic reference the parallel path
// is checked against, and the kernel the fp32-vs-int8 benchmarks time.
func QGEMMSerial(dst []int32, a, b []int8, m, k, n int) {
	qgemmBlockedRange(dst, a, b, m, k, n, 0, m, nil)
}

// qgemmBlockedRange computes output rows [rlo, rhi) of dst = a x b with
// cache blocking. panel is optional scratch of qgemmPanelElems() bytes
// (allocated when nil). Rows are zeroed first, then accumulated one
// (K-block, N-block) panel at a time; two A rows ride each panel pass.
func qgemmBlockedRange(dst []int32, a, b []int8, m, k, n, rlo, rhi int, panel []byte) {
	_ = m
	if panel == nil {
		panel = make([]byte, qgemmPanelElems())
	}
	for i := rlo; i < rhi; i++ {
		clear(dst[i*n : (i+1)*n])
	}
	var abuf0, abuf1 [qgemmKC]int8
	var pair [qgemmKC]int64
	for jc := 0; jc < n; jc += qgemmNC {
		jb := n - jc
		if jb > qgemmNC {
			jb = qgemmNC
		}
		for kc := 0; kc < k; kc += qgemmKC {
			kb := k - kc
			if kb > qgemmKC {
				kb = qgemmKC
			}
			kb4 := (kb + qgemmMR - 1) &^ (qgemmMR - 1)
			packQPanel(panel, b, n, kc, kb, kb4, jc, jb)
			i := rlo
			for ; i+1 < rhi; i += 2 {
				s0 := loadQRow(&abuf0, a, i, k, kc, kb, kb4)
				s1 := loadQRow(&abuf1, a, i+1, k, kc, kb, kb4)
				for g := 0; g < kb4; g++ {
					pair[g] = int64(abuf1[g])<<32 + int64(abuf0[g])
				}
				qkernel2(dst[i*n+jc:i*n+jc+jb], dst[(i+1)*n+jc:(i+1)*n+jc+jb],
					panel, pair[:kb4], 128*s0, 128*s1, kb4)
			}
			if i < rhi {
				s0 := loadQRow(&abuf0, a, i, k, kc, kb, kb4)
				qkernel1(dst[i*n+jc:i*n+jc+jb], panel, abuf0[:kb4], 128*s0, kb4)
			}
		}
	}
}

// loadQRow copies A row i's K-block into abuf, zero-padding to the kb4
// round-up so the microkernel needs no K-remainder handling, and
// returns the sum of the copied values (the panel-bias correction term;
// the zero padding contributes nothing to it or to any product).
func loadQRow(abuf *[qgemmKC]int8, a []int8, i, k, kc, kb, kb4 int) int32 {
	copy(abuf[:kb], a[i*k+kc:i*k+kc+kb])
	for z := kb; z < kb4; z++ {
		abuf[z] = 0
	}
	var s int32
	for _, v := range abuf[:kb] {
		s += int32(v)
	}
	return s
}

// qkernel2 accumulates two output rows against one packed panel. Each
// packed lane pair (row1<<32 + row0) times a biased panel byte yields
// both rows' products in one 64-bit multiply; a whole panel column is
// summed into four independent accumulators (the lane sums stay below
// 2^24, so a single 2^31 low-lane bias splits the final value without
// a carry), and the +128 panel bias is removed per column via
// corr0/corr1 (128 x the rows' A sums).
func qkernel2(o0, o1 []int32, panel []byte, pair []int64, corr0, corr1 int32, kb4 int) {
	j := 0
	// Two panel columns per pass: each loaded lane pair is used twice,
	// halving the pair-load traffic per multiply.
	for ; j+1 < len(o0); j += 2 {
		c0 := panel[j*kb4 : j*kb4+kb4]
		c1 := panel[(j+1)*kb4 : (j+1)*kb4+kb4]
		pr := pair
		var a0, a1, b0, b1 uint64
		for len(pr) >= qgemmMR && len(c0) >= qgemmMR && len(c1) >= qgemmMR {
			p0, p1, p2, p3 := uint64(pr[0]), uint64(pr[1]), uint64(pr[2]), uint64(pr[3])
			a0 += p0*uint64(c0[0]) + p1*uint64(c0[1])
			a1 += p2*uint64(c0[2]) + p3*uint64(c0[3])
			b0 += p0*uint64(c1[0]) + p1*uint64(c1[1])
			b1 += p2*uint64(c1[2]) + p3*uint64(c1[3])
			pr, c0, c1 = pr[qgemmMR:], c0[qgemmMR:], c1[qgemmMR:]
		}
		ra := a0 + a1 + 1<<31
		rb := b0 + b1 + 1<<31
		o0[j] += int32(uint32(ra)^1<<31) - corr0
		o1[j] += int32(uint32(ra>>32)) - corr1
		o0[j+1] += int32(uint32(rb)^1<<31) - corr0
		o1[j+1] += int32(uint32(rb>>32)) - corr1
	}
	if j < len(o0) {
		col := panel[j*kb4 : j*kb4+kb4]
		pr := pair
		var r0, r1 uint64
		for len(pr) >= qgemmMR && len(col) >= qgemmMR {
			r0 += uint64(pr[0])*uint64(col[0]) + uint64(pr[1])*uint64(col[1])
			r1 += uint64(pr[2])*uint64(col[2]) + uint64(pr[3])*uint64(col[3])
			pr, col = pr[qgemmMR:], col[qgemmMR:]
		}
		r := r0 + r1 + 1<<31
		o0[j] += int32(uint32(r)^1<<31) - corr0
		o1[j] += int32(uint32(r>>32)) - corr1
	}
}

// qkernel1 is the single-row remainder: plain int32 products against
// the biased panel, with the same per-column bias correction.
func qkernel1(o0 []int32, panel []byte, abuf []int8, corr0 int32, kb4 int) {
	for j := range o0 {
		col := panel[j*kb4 : j*kb4+kb4]
		ab := abuf
		var r0, r1, r2, r3 int32
		for len(col) >= qgemmMR && len(ab) >= qgemmMR {
			r0 += int32(ab[0]) * int32(col[0])
			r1 += int32(ab[1]) * int32(col[1])
			r2 += int32(ab[2]) * int32(col[2])
			r3 += int32(ab[3]) * int32(col[3])
			col = col[qgemmMR:]
			ab = ab[qgemmMR:]
		}
		o0[j] += r0 + r1 + r2 + r3 - corr0
	}
}

// packQPanel copies the B block rows [kc, kc+kb) x cols [jc, jc+jb) into
// panel with a +128 bias (so panel bytes are unsigned and SWAR lanes
// stay separable), column-major: element (kc+g, jc+j) lands at
// panel[j*kb4 + g], making each output column's dot product one
// contiguous byte run. Rows past kb (up to the kb4 round-up) are filled
// with the bias value, which the zero-padded A rows multiply to nothing.
func packQPanel(panel []byte, b []int8, n, kc, kb, kb4, jc, jb int) {
	for g := 0; g < kb; g++ {
		brow := b[(kc+g)*n+jc : (kc+g)*n+jc+jb]
		for j, v := range brow {
			panel[j*kb4+g] = byte(int16(v) + 128)
		}
	}
	for g := kb; g < kb4; g++ {
		for j := 0; j < jb; j++ {
			panel[j*kb4+g] = 128
		}
	}
}
