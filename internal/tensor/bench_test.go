package tensor

import (
	"testing"

	"edgebench/internal/stats"
)

// Micro-benchmarks of the functional compute engine, including the
// direct-vs-GEMM convolution ablation DESIGN.md calls out.

func benchInput(c, h, w int) *Tensor {
	return New(c, h, w).Randomize(stats.NewRNG(1), 1)
}

func BenchmarkMatMul128(b *testing.B) {
	x := New(128, 128).Randomize(stats.NewRNG(1), 1)
	y := New(128, 128).Randomize(stats.NewRNG(2), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
	b.ReportMetric(2*128*128*128/1e6, "MFLOP/op")
}

func BenchmarkConv2DDirect(b *testing.B) {
	in := benchInput(32, 28, 28)
	w := New(64, 32, 3, 3).Randomize(stats.NewRNG(3), 1)
	spec := Conv2DSpec{Stride: 1, Pad: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(in, w, nil, spec)
	}
}

func BenchmarkConv2DGEMM(b *testing.B) {
	in := benchInput(32, 28, 28)
	w := New(64, 32, 3, 3).Randomize(stats.NewRNG(3), 1)
	spec := Conv2DSpec{Stride: 1, Pad: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DGEMM(in, w, nil, spec)
	}
}

func BenchmarkDepthwiseConv2D(b *testing.B) {
	in := benchInput(64, 28, 28)
	w := New(64, 3, 3).Randomize(stats.NewRNG(4), 1)
	spec := Conv2DSpec{Stride: 1, Pad: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DepthwiseConv2D(in, w, nil, spec)
	}
}

func BenchmarkQuantizeRoundTrip(b *testing.B) {
	in := New(1<<16).Randomize(stats.NewRNG(5), 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		QuantizeSymmetric(in).Dequantize()
	}
}

func BenchmarkFP16RoundTrip(b *testing.B) {
	in := New(1<<16).Randomize(stats.NewRNG(6), 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RoundTripFP16(in)
	}
}

// BenchmarkSparseMatMul shows the zero-skip path: a 90%-pruned operand
// multiplies faster than a dense one.
func BenchmarkSparseMatMul(b *testing.B) {
	x := New(128, 128).Randomize(stats.NewRNG(7), 1)
	PruneMagnitude(x, 0.9)
	y := New(128, 128).Randomize(stats.NewRNG(8), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}
