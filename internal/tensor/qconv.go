package tensor

import (
	"fmt"
	"math"
	"sync"
)

// This file is the int8 execution path for convolution and dense layers:
// dynamic per-tensor activation quantization, an int8 im2col, the QGEMM
// int32 accumulation, and a fused requantize+bias+activation epilogue,
// so a quantized Conv/Dense is a single kernel call producing float32.
//
// Accumulator safety: products are at most 127*127 and the reduction
// length (Cin*KH*KW for convs, In for dense) tops out around 25088 in
// the zoo (VGG16 fc1), so |acc| <= 127*127*25088 ≈ 4.0e8, comfortably
// inside int32.

// Act selects the activation fused into a quantized kernel's epilogue.
// It mirrors the graph's fusable activation set without importing it
// (tensor is the bottom of the dependency stack).
type Act uint8

// Fusable epilogue activations.
const (
	ActNone Act = iota
	ActReLU
	ActReLU6
	ActLeakyReLU
	ActSigmoid
	ActTanh
)

// qscratch holds the per-call scratch of the int8 path. Pooled through
// a sync.Pool so concurrent executor replicas and wavefront workers
// never share or reallocate buffers.
type qscratch struct {
	qin  []int8  // quantized input activations
	cols []int8  // int8 im2col matrix
	acc  []int32 // GEMM accumulators
}

var qscratchPool = sync.Pool{New: func() any { return new(qscratch) }}

func (s *qscratch) grow(nqin, ncols, nacc int) {
	if cap(s.qin) < nqin {
		s.qin = make([]int8, nqin)
	}
	s.qin = s.qin[:nqin]
	if cap(s.cols) < ncols {
		s.cols = make([]int8, ncols)
	}
	s.cols = s.cols[:ncols]
	if cap(s.acc) < nacc {
		s.acc = make([]int32, nacc)
	}
	s.acc = s.acc[:nacc]
}

// im2colQInto is the int8 twin of im2colInto: it lowers the quantized
// input qin (layout [Cin, H, W]) into cols as a [Cin*KH*KW, Hout*Wout]
// int8 matrix, writing padding positions as explicit zeros (the int8
// zero-point of the symmetric scheme).
func im2colQInto(cols []int8, qin []int8, cin, h, wd, kh, kw int, spec Conv2DSpec, hout, wout int) {
	padH, padW := spec.padHW()
	ncols := hout * wout
	row := 0
	for ic := 0; ic < cin; ic++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				dst := cols[row*ncols : (row+1)*ncols]
				col := 0
				for oy := 0; oy < hout; oy++ {
					iy := oy*spec.Stride + ky - padH
					if iy < 0 || iy >= h {
						clear(dst[col : col+wout])
						col += wout
						continue
					}
					src := qin[(ic*h+iy)*wd : (ic*h+iy+1)*wd]
					for ox := 0; ox < wout; ox++ {
						ix := ox*spec.Stride + kx - padW
						if ix >= 0 && ix < wd {
							dst[col] = src[ix]
						} else {
							dst[col] = 0
						}
						col++
					}
				}
				row++
			}
		}
	}
}

// requantizeInto is the fused epilogue: dst = act(acc*scale + bias),
// where scale combines the activation scale and the (possibly
// per-channel) weight scale. seg runs over one output channel's plane.
func requantizeInto(dst []float32, acc []int32, scale float32, bias float32, act Act, alpha float32) {
	switch act {
	case ActNone:
		for i, v := range acc {
			dst[i] = float32(v)*scale + bias
		}
	case ActReLU:
		for i, v := range acc {
			x := float32(v)*scale + bias
			if x < 0 {
				x = 0
			}
			dst[i] = x
		}
	case ActReLU6:
		for i, v := range acc {
			x := float32(v)*scale + bias
			if x < 0 {
				x = 0
			} else if x > 6 {
				x = 6
			}
			dst[i] = x
		}
	case ActLeakyReLU:
		for i, v := range acc {
			x := float32(v)*scale + bias
			if x < 0 {
				x *= alpha
			}
			dst[i] = x
		}
	case ActSigmoid:
		for i, v := range acc {
			x := float32(v)*scale + bias
			dst[i] = float32(1 / (1 + math.Exp(-float64(x))))
		}
	case ActTanh:
		for i, v := range acc {
			x := float32(v)*scale + bias
			dst[i] = float32(math.Tanh(float64(x)))
		}
	default:
		panic(fmt.Sprintf("tensor: unknown epilogue activation %d", act))
	}
}

// Conv2DQInt8Into computes a 2-D convolution with int8-quantized weights
// into a preallocated float32 dst of shape [Cout, Hout, Wout],
// overwriting every element. The input is quantized dynamically
// (per-tensor symmetric), lowered with the int8 im2col, multiplied with
// the blocked int8 GEMM into int32 accumulators, and requantized through
// the fused bias+activation epilogue — one kernel call end to end.
func Conv2DQInt8Into(dst, in *Tensor, qw *QTensor, bias []float32, spec Conv2DSpec, act Act, alpha float32) {
	spec = spec.check()
	cin, h, wd := in.Shape[0], in.Shape[1], in.Shape[2]
	cout, wcin, kh, kw := qw.Shape[0], qw.Shape[1], qw.Shape[2], qw.Shape[3]
	if cin != wcin {
		panic(fmt.Sprintf("tensor: Conv2DQInt8 channel mismatch: input %v weights %v", in.Shape, qw.Shape))
	}
	if bias != nil && len(bias) != cout {
		panic("tensor: Conv2DQInt8 bias length mismatch")
	}
	hout, wout := spec.OutDims(h, wd, kh, kw)
	checkConvDst(dst, cout, hout, wout)

	rows := cin * kh * kw
	ncols := hout * wout
	s := qscratchPool.Get().(*qscratch)
	s.grow(len(in.Data), rows*ncols, cout*ncols)

	sx := QuantizeDynamicInto(s.qin, in.Data)
	im2colQInto(s.cols, s.qin, cin, h, wd, kh, kw, spec, hout, wout)
	QGEMM(s.acc, qw.Data, s.cols, cout, rows, ncols)

	for oc := 0; oc < cout; oc++ {
		var b float32
		if bias != nil {
			b = bias[oc]
		}
		requantizeInto(dst.Data[oc*ncols:(oc+1)*ncols], s.acc[oc*ncols:(oc+1)*ncols],
			sx*qw.ScaleFor(oc), b, act, alpha)
	}
	qscratchPool.Put(s)
}

// DenseQInt8Into computes dst = act(wq*x + bias) for an int8-quantized
// [Out, In] weight matrix, overwriting all of dst (length Out). The
// input vector is quantized dynamically; each row is an int8 dot
// product accumulated in int32 and requantized in the epilogue.
func DenseQInt8Into(dst []float32, qw *QTensor, bias, x []float32, act Act, alpha float32) {
	if len(qw.Shape) != 2 || qw.Shape[1] != len(x) {
		panic(fmt.Sprintf("tensor: DenseQInt8 shape mismatch: %v x vec(%d)", qw.Shape, len(x)))
	}
	m, k := qw.Shape[0], qw.Shape[1]
	if len(dst) != m {
		panic("tensor: DenseQInt8 dst length mismatch")
	}
	if bias != nil && len(bias) != m {
		panic("tensor: DenseQInt8 bias length mismatch")
	}
	s := qscratchPool.Get().(*qscratch)
	s.grow(k, 0, m)
	sx := QuantizeDynamicInto(s.qin, x)
	qMatVecInto(s.acc, qw.Data, s.qin, m, k)
	for i := range dst {
		var b float32
		if bias != nil {
			b = bias[i]
		}
		requantizeInto(dst[i:i+1], s.acc[i:i+1], sx*qw.ScaleFor(i), b, act, alpha)
	}
	qscratchPool.Put(s)
}

// qMatVecInto computes dst = w*x for a row-major int8 [m, k] matrix and
// int8 vector, accumulating in int32 with a four-way unrolled dot.
func qMatVecInto(dst []int32, w, x []int8, m, k int) {
	k4 := k &^ 3
	for i := 0; i < m; i++ {
		row := w[i*k : i*k+k]
		var s0, s1, s2, s3 int32
		for j := 0; j < k4; j += 4 {
			s0 += int32(row[j]) * int32(x[j])
			s1 += int32(row[j+1]) * int32(x[j+1])
			s2 += int32(row[j+2]) * int32(x[j+2])
			s3 += int32(row[j+3]) * int32(x[j+3])
		}
		s := s0 + s1 + s2 + s3
		for j := k4; j < k; j++ {
			s += int32(row[j]) * int32(x[j])
		}
		dst[i] = s
	}
}
