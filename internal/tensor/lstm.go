package tensor

import (
	"fmt"
	"math"
)

// LSTMCellStep advances one LSTM time step. Weights follow the packed
// [4H, F+H] layout (gate order: input, forget, cell, output), operating
// on the concatenated [x_t ; h_{t-1}] vector; bias is length 4H. It
// returns the new hidden and cell states.
//
// This is the recurrent building block of the paper's declared future
// work (§II: "we plan to extend our models to include more varieties of
// DNN models, such as RNNs and LSTMs").
func LSTMCellStep(w *Tensor, bias, x, h, c []float32) (hNext, cNext []float32) {
	hidden := len(h)
	features := len(x)
	if len(w.Shape) != 2 || w.Shape[0] != 4*hidden || w.Shape[1] != features+hidden {
		panic(fmt.Sprintf("tensor: LSTM weights %v incompatible with x(%d) h(%d)",
			w.Shape, features, hidden))
	}
	if bias != nil && len(bias) != 4*hidden {
		panic("tensor: LSTM bias length mismatch")
	}
	if len(c) != hidden {
		panic("tensor: LSTM cell-state length mismatch")
	}
	// gates = W * [x; h] + b
	xh := make([]float32, features+hidden)
	copy(xh, x)
	copy(xh[features:], h)
	gates := MatVec(w, xh)
	if bias != nil {
		for i := range gates {
			gates[i] += bias[i]
		}
	}
	hNext = make([]float32, hidden)
	cNext = make([]float32, hidden)
	for j := 0; j < hidden; j++ {
		i := sigmoid32(gates[j])
		f := sigmoid32(gates[hidden+j])
		g := tanh32(gates[2*hidden+j])
		o := sigmoid32(gates[3*hidden+j])
		cNext[j] = f*c[j] + i*g
		hNext[j] = o * tanh32(cNext[j])
	}
	return hNext, cNext
}

// LSTM runs a full sequence [T, F] through an LSTM with the given packed
// weights and returns the final hidden state (the classification
// convention) starting from zero states.
func LSTM(w *Tensor, bias []float32, seq *Tensor) []float32 {
	if len(seq.Shape) != 2 {
		panic(fmt.Sprintf("tensor: LSTM input must be [T, F], got %v", seq.Shape))
	}
	steps, features := seq.Shape[0], seq.Shape[1]
	hidden := w.Shape[0] / 4
	h := make([]float32, hidden)
	c := make([]float32, hidden)
	for t := 0; t < steps; t++ {
		x := seq.Data[t*features : (t+1)*features]
		h, c = LSTMCellStep(w, bias, x, h, c)
	}
	return h
}

func sigmoid32(x float32) float32 {
	// Stable logistic via tanh: sigma(x) = (tanh(x/2)+1)/2.
	return (tanh32(x/2) + 1) / 2
}

func tanh32(x float32) float32 {
	switch {
	case x > 20:
		return 1
	case x < -20:
		return -1
	}
	// tanh via exp identity with float64 core for accuracy.
	e := exp64(2 * float64(x))
	return float32((e - 1) / (e + 1))
}

// exp64 is a thin alias kept local so the hot loop stays inlinable.
func exp64(x float64) float64 { return math.Exp(x) }
