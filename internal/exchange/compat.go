package exchange

import (
	"fmt"

	"edgebench/internal/graph"
)

// ImportInto checks whether a serialized model can be lowered by the
// named framework's toolchain and returns framework-specific rejection
// reasons — the §III-B/§VI-A compatibility wall reproduced at the
// interchange layer:
//
//   - the EdgeTPU compiler path (TFLite for EdgeTPU) accepts only ops it
//     can map to the systolic array, rejecting 3-D convolutions and
//     leaky rectifiers (DarkNet models), matching Table V's "4" marks;
//   - NCSDK rejects 3-D ops beyond its SHAVE kernels only when they are
//     absent from its hand-tuned library — it ships a C3D kernel, so
//     video models pass (Fig. 2 measures C3D on the stick);
//   - the general frameworks import everything.
func ImportInto(data []byte, framework string) (*graph.Graph, error) {
	g, err := Import(data)
	if err != nil {
		return nil, err
	}
	switch framework {
	case "TFLite-EdgeTPU":
		for _, n := range g.Nodes {
			switch n.Kind {
			case graph.OpConv3D, graph.OpMaxPool3D:
				return nil, fmt.Errorf("exchange: edgetpu compiler: op %s unsupported (no 3-D kernels)", n.Kind)
			case graph.OpLeakyReLU:
				return nil, fmt.Errorf("exchange: edgetpu compiler: op %s unsupported (quantized leaky relu unavailable)", n.Kind)
			}
		}
	case "NCSDK":
		for _, n := range g.Nodes {
			if n.Kind == graph.OpUpsample {
				return nil, fmt.Errorf("exchange: ncsdk: op %s requires a hand-tuned kernel that does not exist", n.Kind)
			}
		}
	}
	return g, nil
}
