// Package exchange implements an ONNX-style model interchange format
// for the graph IR. The paper devotes §III-B to the interoperability
// pain it hit — "we find limited compatibility among frameworks... each
// framework usually requires its own model description format" — and
// cites the then-nascent ONNX effort as the way out. This package is
// that way out for the edgebench engine: a versioned, self-describing
// JSON container that round-trips structure exactly and weights
// optionally, plus per-framework import checks that reproduce the
// paper's compatibility quirks (NCSDK and the EdgeTPU compiler reject
// what they cannot lower).
package exchange

import (
	"encoding/json"
	"fmt"

	"edgebench/internal/graph"
	"edgebench/internal/tensor"
	"edgebench/internal/verify"
)

// FormatVersion guards decoding across releases.
const FormatVersion = 1

// File is the serialized model container.
type File struct {
	Version    int        `json:"version"`
	Name       string     `json:"name"`
	Mode       string     `json:"mode"`
	InputShape []int      `json:"input_shape"`
	Nodes      []NodeJSON `json:"nodes"`
	// Output and Extra reference node indices.
	Output int   `json:"output"`
	Extra  []int `json:"extra,omitempty"`
}

// NodeJSON serializes one operation.
type NodeJSON struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	Inputs []int  `json:"inputs"` // indices into Nodes; -1 = graph input

	Kernel  int     `json:"kernel,omitempty"`
	KernelD int     `json:"kernel_d,omitempty"`
	Stride  int     `json:"stride,omitempty"`
	StrideD int     `json:"stride_d,omitempty"`
	Pad     int     `json:"pad,omitempty"`
	PadH    int     `json:"pad_h,omitempty"`
	PadW    int     `json:"pad_w,omitempty"`
	Asym    bool    `json:"asym,omitempty"`
	Groups  int     `json:"groups,omitempty"`
	Factor  int     `json:"factor,omitempty"`
	Alpha   float32 `json:"alpha,omitempty"`

	WShape     []int `json:"w_shape,omitempty"`
	BiasLen    int   `json:"bias_len,omitempty"`
	BNChannels int   `json:"bn_channels,omitempty"`

	// Deployment annotations (set by lowering passes). EpiChannels
	// records an absorbed batch-norm epilogue (opt.FusePatterns); the
	// materialized scale/shift ride with the weights below.
	DType       string  `json:"dtype,omitempty"`
	Activation  string  `json:"activation,omitempty"`
	FusedBN     bool    `json:"fused_bn,omitempty"`
	EpiChannels int     `json:"epi_channels,omitempty"`
	Sparsity    float64 `json:"sparsity,omitempty"`

	// Optional materialized parameters (Options.IncludeWeights).
	Weights  []float32 `json:"weights,omitempty"`
	Bias     []float32 `json:"bias,omitempty"`
	EpiScale []float32 `json:"epi_scale,omitempty"`
	EpiShift []float32 `json:"epi_shift,omitempty"`
	Gamma    []float32 `json:"gamma,omitempty"`
	Beta     []float32 `json:"beta,omitempty"`
	Mean     []float32 `json:"mean,omitempty"`
	Variance []float32 `json:"variance,omitempty"`
	Eps      float32   `json:"eps,omitempty"`
}

// Options configures export.
type Options struct {
	// IncludeWeights embeds materialized parameters (large!). Structural
	// exports carry shapes only — enough for cost modeling and timing.
	IncludeWeights bool
}

// kindNames maps op kinds to stable wire names.
var kindNames = map[graph.OpKind]string{
	graph.OpInput: "input", graph.OpConv2D: "conv2d",
	graph.OpDepthwiseConv2D: "dwconv2d", graph.OpConv3D: "conv3d",
	graph.OpDense: "dense", graph.OpBatchNorm: "batchnorm",
	graph.OpReLU: "relu", graph.OpReLU6: "relu6",
	graph.OpLeakyReLU: "leaky_relu", graph.OpSigmoid: "sigmoid",
	graph.OpTanh: "tanh", graph.OpMaxPool2D: "maxpool2d",
	graph.OpAvgPool2D: "avgpool2d", graph.OpMaxPool3D: "maxpool3d",
	graph.OpGlobalAvgPool: "global_avgpool", graph.OpAdd: "add",
	graph.OpConcat: "concat", graph.OpFlatten: "flatten",
	graph.OpSoftmax: "softmax", graph.OpPad: "pad",
	graph.OpUpsample: "upsample", graph.OpLSTM: "lstm",
	graph.OpShuffle: "shuffle", graph.OpConst: "const",
}

var kindValues = func() map[string]graph.OpKind {
	m := make(map[string]graph.OpKind, len(kindNames))
	for k, v := range kindNames {
		m[v] = k
	}
	return m
}()

var dtypeValues = map[string]tensor.DType{
	"fp32": tensor.FP32, "fp16": tensor.FP16,
	"int8": tensor.INT8, "fp64": tensor.FP64,
}

// Export serializes a graph.
func Export(g *graph.Graph, opts Options) ([]byte, error) {
	idx := make(map[*graph.Node]int, len(g.Nodes))
	f := File{
		Version:    FormatVersion,
		Name:       g.Name,
		Mode:       g.Mode.String(),
		InputShape: append([]int(nil), g.Input.OutShape...),
	}
	for i, n := range g.Nodes {
		idx[n] = i
		kind, ok := kindNames[n.Kind]
		if !ok {
			return nil, fmt.Errorf("exchange: unsupported op %v", n.Kind)
		}
		nj := NodeJSON{
			Name: n.Name, Kind: kind,
			Kernel: n.Attrs.Kernel, KernelD: n.Attrs.KernelD,
			Stride: n.Attrs.Stride, StrideD: n.Attrs.StrideD,
			Pad: n.Attrs.Pad, PadH: n.Attrs.PadH, PadW: n.Attrs.PadW,
			Asym: n.Attrs.Asym, Groups: n.Attrs.Groups,
			Factor: n.Attrs.Factor, Alpha: n.Attrs.Alpha,
			WShape: n.WShape, BiasLen: n.BiasLen, BNChannels: n.BNChannels,
			FusedBN: n.FusedBN, EpiChannels: n.EpiChannels, Sparsity: n.Sparsity,
		}
		if n.DType != tensor.FP32 {
			nj.DType = n.DType.String()
		}
		if n.Activation != 0 {
			act, ok := kindNames[n.Activation]
			if !ok {
				return nil, fmt.Errorf("exchange: unsupported fused activation %v", n.Activation)
			}
			nj.Activation = act
		}
		for _, in := range n.Inputs {
			j, ok := idx[in]
			if !ok {
				return nil, fmt.Errorf("exchange: node %s references an unserialized input", n)
			}
			nj.Inputs = append(nj.Inputs, j)
		}
		if opts.IncludeWeights {
			if n.Weights != nil {
				nj.Weights = n.Weights.Data
			}
			nj.Bias = n.Bias
			if n.BN != nil {
				nj.Gamma, nj.Beta = n.BN.Gamma, n.BN.Beta
				nj.Mean, nj.Variance = n.BN.Mean, n.BN.Variance
				nj.Eps = n.BN.Eps
			}
			nj.EpiScale, nj.EpiShift = n.EpiScale, n.EpiShift
		}
		f.Nodes = append(f.Nodes, nj)
	}
	f.Output = idx[g.Output]
	for _, x := range g.Extra {
		f.Extra = append(f.Extra, idx[x])
	}
	return json.Marshal(&f)
}

// Import deserializes a graph and validates it structurally.
func Import(data []byte) (*graph.Graph, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("exchange: %w", err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("exchange: format version %d, want %d", f.Version, FormatVersion)
	}
	if len(f.Nodes) == 0 {
		return nil, fmt.Errorf("exchange: empty model")
	}
	g := &graph.Graph{Name: f.Name}
	if f.Mode == "dynamic" {
		g.Mode = graph.Dynamic
	}
	nodes := make([]*graph.Node, len(f.Nodes))
	for i, nj := range f.Nodes {
		kind, ok := kindValues[nj.Kind]
		if !ok {
			return nil, fmt.Errorf("exchange: node %d: unknown kind %q", i, nj.Kind)
		}
		n := &graph.Node{
			Name: nj.Name, Kind: kind,
			Attrs: graph.Attrs{
				Kernel: nj.Kernel, KernelD: nj.KernelD,
				Stride: nj.Stride, StrideD: nj.StrideD,
				Pad: nj.Pad, PadH: nj.PadH, PadW: nj.PadW,
				Asym: nj.Asym, Groups: nj.Groups,
				Factor: nj.Factor, Alpha: nj.Alpha,
			},
			WShape: nj.WShape, BiasLen: nj.BiasLen, BNChannels: nj.BNChannels,
			FusedBN: nj.FusedBN, EpiChannels: nj.EpiChannels, Sparsity: nj.Sparsity,
		}
		if nj.DType != "" {
			dt, ok := dtypeValues[nj.DType]
			if !ok {
				return nil, fmt.Errorf("exchange: node %d: unknown dtype %q", i, nj.DType)
			}
			n.DType = dt
		}
		if nj.Activation != "" {
			act, ok := kindValues[nj.Activation]
			if !ok || !act.IsActivation() {
				return nil, fmt.Errorf("exchange: node %d: bad fused activation %q", i, nj.Activation)
			}
			n.Activation = act
		}
		for _, j := range nj.Inputs {
			if j < 0 || j >= i {
				return nil, fmt.Errorf("exchange: node %d: input index %d violates topological order", i, j)
			}
			n.Inputs = append(n.Inputs, nodes[j])
		}
		if kind == graph.OpInput {
			n.OutShape = tensor.Shape(f.InputShape).Clone()
			g.Input = n
		} else {
			shape, err := graph.InferShapeE(n)
			if err != nil {
				return nil, fmt.Errorf("exchange: node %d: %w", i, err)
			}
			n.OutShape = shape
		}
		if nj.Weights != nil {
			if len(nj.Weights) != tensor.Shape(nj.WShape).NumElems() {
				return nil, fmt.Errorf("exchange: node %d: %d weight values for shape %v", i, len(nj.Weights), nj.WShape)
			}
			n.Weights = tensor.FromData(nj.Weights, nj.WShape...)
		}
		n.Bias = nj.Bias
		n.EpiScale, n.EpiShift = nj.EpiScale, nj.EpiShift
		if nj.Gamma != nil {
			n.BN = &graph.BNParams{
				Gamma: nj.Gamma, Beta: nj.Beta,
				Mean: nj.Mean, Variance: nj.Variance, Eps: nj.Eps,
			}
		}
		nodes[i] = n
		g.Append(n)
	}
	if f.Output < 0 || f.Output >= len(nodes) {
		return nil, fmt.Errorf("exchange: output index %d out of range", f.Output)
	}
	g.Output = nodes[f.Output]
	for _, j := range f.Extra {
		if j < 0 || j >= len(nodes) {
			return nil, fmt.Errorf("exchange: extra output index %d out of range", j)
		}
		g.Extra = append(g.Extra, nodes[j])
	}
	if g.Input == nil {
		return nil, fmt.Errorf("exchange: model has no input node")
	}
	// Full static verification: a malformed serialized graph must never
	// reach a session. Error-severity diagnostics reject the file;
	// warnings (dead nodes a dynamic-mode exporter left in) are tolerated.
	if err := verify.Err(verify.Check(g)); err != nil {
		return nil, fmt.Errorf("exchange: %w", err)
	}
	return g, nil
}
