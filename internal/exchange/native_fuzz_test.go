package exchange_test

import (
	"testing"

	"edgebench/internal/exchange"
	"edgebench/internal/model"
	"edgebench/internal/nn"
)

// FuzzImport feeds arbitrary bytes (seeded with real exports) into the
// decoder: it must never panic, and anything it accepts must be a valid
// graph that re-exports cleanly.
func FuzzImport(f *testing.F) {
	for _, name := range []string{"CifarNet", "MobileNet-v2", "LSTM-Classifier"} {
		g := model.MustGet(name).Build(nn.Options{})
		data, err := exchange.Export(g, exchange.Options{})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"version":1,"name":"x","mode":"static","input_shape":[1,2,2],` +
		`"nodes":[{"name":"input","kind":"input","inputs":[]}],"output":0}`))
	f.Add([]byte("{}"))
	f.Add([]byte("]["))

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := exchange.Import(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted an invalid graph: %v", err)
		}
		if _, err := exchange.Export(g, exchange.Options{}); err != nil {
			t.Fatalf("accepted graph fails to re-export: %v", err)
		}
	})
}
