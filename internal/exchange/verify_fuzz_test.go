package exchange_test

import (
	"testing"

	"edgebench/internal/exchange"
	"edgebench/internal/graph"
	"edgebench/internal/verify"
)

// FuzzVerify is the verifier's soundness gate on the import boundary:
// whatever bytes arrive, Import either rejects them with an error or
// produces a graph that verify.Check passes with no Error-severity
// diagnostics — an unverifiable graph must never come back without an
// error. verify.Check itself must never panic on the way.
func FuzzVerify(f *testing.F) {
	// Real exports — structural and with weights — seed the valid side.
	for seed := int64(0); seed < 4; seed++ {
		g := randomCNN(seed)
		for _, opts := range []exchange.Options{{}, {IncludeWeights: true}} {
			data, err := exchange.Export(g, opts)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
		}
	}
	// Hand-corrupted files seed the invalid side: wrong weight counts,
	// dangling indices, bogus dtypes, self-referential inputs.
	for _, corrupt := range []string{
		`{"version":1,"name":"x","input_shape":[1,2,2],"nodes":[` +
			`{"name":"in","kind":"input","inputs":[]},` +
			`{"name":"r","kind":"relu","inputs":[5]}],"output":1}`,
		`{"version":1,"name":"x","input_shape":[1,2,2],"nodes":[` +
			`{"name":"in","kind":"input","inputs":[]},` +
			`{"name":"r","kind":"relu","inputs":[1]}],"output":1}`,
		`{"version":1,"name":"x","input_shape":[1,2,2],"nodes":[` +
			`{"name":"in","kind":"input","inputs":[]},` +
			`{"name":"c","kind":"conv2d","inputs":[0],"kernel":3,"stride":1,` +
			`"w_shape":[4,1,3,3],"weights":[1,2,3]}],"output":1}`,
		`{"version":1,"name":"x","input_shape":[1,2,2],"nodes":[` +
			`{"name":"in","kind":"input","inputs":[]},` +
			`{"name":"r","kind":"relu","inputs":[0],"dtype":"int9"}],"output":1}`,
		`{"version":1,"name":"x","input_shape":[-1,0],"nodes":[` +
			`{"name":"in","kind":"input","inputs":[]}],"output":0}`,
	} {
		f.Add([]byte(corrupt))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := exchange.Import(data)
		if err != nil {
			return // rejection is the correct outcome for malformed input
		}
		if verr := verify.Err(verify.Check(g)); verr != nil {
			t.Fatalf("Import accepted an unverifiable graph: %v", verr)
		}
	})
}

// TestVerifyNeverPanicsOnCorruptGraphs drives verify.Check over directly
// corrupted in-memory graphs — states no importer would produce — as a
// deterministic complement to the fuzzer.
func TestVerifyNeverPanicsOnCorruptGraphs(t *testing.T) {
	corruptions := []func(g *graph.Graph){
		func(g *graph.Graph) { g.Nodes[1] = nil },
		func(g *graph.Graph) { g.Nodes[1].Inputs = []*graph.Node{g.Nodes[len(g.Nodes)-1]} },
		func(g *graph.Graph) { g.Input = nil },
		func(g *graph.Graph) { g.Output = nil },
		func(g *graph.Graph) { g.Nodes[1].OutShape = nil },
		func(g *graph.Graph) { g.Nodes[1].Attrs.Kernel = -3 },
		func(g *graph.Graph) { g.Nodes = g.Nodes[:0] },
	}
	for i, corrupt := range corruptions {
		g := randomCNN(int64(100 + i))
		corrupt(g)
		_ = verify.Check(g) // must not panic; diagnostics content is free-form
	}
}
