package exchange_test

import (
	"strings"
	"testing"

	"edgebench/internal/exchange"
	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/opt"
	"edgebench/internal/stats"
	"edgebench/internal/tensor"
)

func TestRoundTripStructural(t *testing.T) {
	// Every Table I model must survive a structural round trip with
	// identical cost accounting.
	for _, spec := range model.All() {
		g := spec.Build(nn.Options{})
		data, err := exchange.Export(g, exchange.Options{})
		if err != nil {
			t.Fatalf("%s export: %v", spec.Name, err)
		}
		back, err := exchange.Import(data)
		if err != nil {
			t.Fatalf("%s import: %v", spec.Name, err)
		}
		if back.Params() != g.Params() {
			t.Errorf("%s: params %d -> %d", spec.Name, g.Params(), back.Params())
		}
		if back.FLOPs() != g.FLOPs() {
			t.Errorf("%s: flops %v -> %v", spec.Name, g.FLOPs(), back.FLOPs())
		}
		if back.NumOps() != g.NumOps() {
			t.Errorf("%s: ops %d -> %d", spec.Name, g.NumOps(), back.NumOps())
		}
		if len(back.Extra) != len(g.Extra) {
			t.Errorf("%s: extra outputs %d -> %d", spec.Name, len(g.Extra), len(back.Extra))
		}
		if back.Mode != g.Mode || back.Name != g.Name {
			t.Errorf("%s: metadata drift", spec.Name)
		}
	}
}

func TestRoundTripWithWeightsExecutes(t *testing.T) {
	b := nn.NewBuilder("wtrip", nn.Options{Materialize: true, Seed: 4}, 3, 8, 8)
	b.ConvBNReLU("blk", 4, 3, 1, 1)
	b.GlobalAvgPool("gap")
	b.Dense("fc", 3, true)
	b.Softmax("p")
	g := b.Build()

	data, err := exchange.Export(g, exchange.Options{IncludeWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	back, err := exchange.Import(data)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(3, 8, 8).Randomize(stats.NewRNG(5), 1)
	want, err := (&graph.Executor{}).Run(g, in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	got, err := (&graph.Executor{}).Run(back, in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("execution diverges at %d", i)
		}
	}
}

func TestStructuralExportIsCompact(t *testing.T) {
	g := model.MustGet("VGG16").Build(nn.Options{})
	data, err := exchange.Export(g, exchange.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 138M parameters must NOT be in a structural export.
	if len(data) > 64<<10 {
		t.Fatalf("structural VGG16 export is %d bytes; weights leaked?", len(data))
	}
}

func TestImportRejectsCorruption(t *testing.T) {
	g := model.MustGet("CifarNet").Build(nn.Options{})
	data, err := exchange.Export(g, exchange.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(string) string{
		"bad version": func(s string) string {
			return strings.Replace(s, `"version":1`, `"version":9`, 1)
		},
		"unknown op": func(s string) string {
			return strings.Replace(s, `"kind":"conv2d"`, `"kind":"quantum"`, 1)
		},
		"forward reference": func(s string) string {
			return strings.Replace(s, `"inputs":[0]`, `"inputs":[99]`, 1)
		},
		"not json": func(string) string { return "][" },
	}
	for name, corrupt := range cases {
		if _, err := exchange.Import([]byte(corrupt(string(data)))); err == nil {
			t.Errorf("%s: import should fail", name)
		}
	}
	if _, err := exchange.Import([]byte(`{"version":1,"nodes":[]}`)); err == nil {
		t.Error("empty model should fail")
	}
}

func TestImportIntoFrameworkQuirks(t *testing.T) {
	export := func(name string) []byte {
		g := model.MustGet(name).Build(nn.Options{})
		data, err := exchange.Export(g, exchange.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	// The EdgeTPU compiler path rejects DarkNet (leaky relu) and video
	// (conv3d) models — Table V's "4" marks.
	if _, err := exchange.ImportInto(export("TinyYolo"), "TFLite-EdgeTPU"); err == nil {
		t.Error("edgetpu should reject TinyYolo")
	}
	if _, err := exchange.ImportInto(export("C3D"), "TFLite-EdgeTPU"); err == nil {
		t.Error("edgetpu should reject C3D")
	}
	if _, err := exchange.ImportInto(export("MobileNet-v2"), "TFLite-EdgeTPU"); err != nil {
		t.Errorf("edgetpu should accept MobileNet-v2: %v", err)
	}
	// NCSDK lacks an upsample kernel (YOLOv3) but ships C3D kernels.
	if _, err := exchange.ImportInto(export("YOLOv3"), "NCSDK"); err == nil {
		t.Error("ncsdk should reject YOLOv3")
	}
	if _, err := exchange.ImportInto(export("C3D"), "NCSDK"); err != nil {
		t.Errorf("ncsdk should accept C3D: %v", err)
	}
	// General frameworks accept everything.
	if _, err := exchange.ImportInto(export("YOLOv3"), "PyTorch"); err != nil {
		t.Errorf("pytorch import: %v", err)
	}
}

func TestRoundTripLoweredGraph(t *testing.T) {
	// A deployment-lowered graph carries fused activations, folded BN
	// flags, reduced dtypes, and sparsity; the wire format must round-trip
	// them so cost metrics survive exactly.
	g := model.MustGet("ResNet-50").Build(nn.Options{})
	graph.FoldBN(g)
	graph.FuseActivations(g)
	graph.Prune(0.5)(g)
	data, err := exchange.Export(g, exchange.Options{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := exchange.Import(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumOps() != g.NumOps() || back.Params() != g.Params() {
		t.Fatalf("lowered structure drifted: ops %d->%d params %d->%d",
			g.NumOps(), back.NumOps(), g.Params(), back.Params())
	}
	if back.FLOPs() != g.FLOPs() {
		t.Fatalf("flops drifted: %v -> %v", g.FLOPs(), back.FLOPs())
	}
}

func TestRoundTripDeploymentAnnotations(t *testing.T) {
	g := model.MustGet("MobileNet-v2").Build(nn.Options{})
	graph.FoldBN(g)
	graph.FuseActivations(g)
	graph.QuantizeINT8(g)
	data, err := exchange.Export(g, exchange.Options{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := exchange.Import(data)
	if err != nil {
		t.Fatal(err)
	}
	var fused, int8n int
	for _, n := range back.Nodes {
		if n.Activation != 0 {
			fused++
		}
		if n.DType == tensor.INT8 {
			int8n++
		}
	}
	if fused == 0 || int8n != len(back.Nodes) {
		t.Fatalf("annotations lost: %d fused, %d int8 of %d", fused, int8n, len(back.Nodes))
	}
	// Corrupt annotation values must be rejected.
	bad := strings.Replace(string(data), `"activation":"relu6"`, `"activation":"conv2d"`, 1)
	if bad != string(data) {
		if _, err := exchange.Import([]byte(bad)); err == nil {
			t.Fatal("non-activation fused op should be rejected")
		}
	}
	bad2 := strings.Replace(string(data), `"dtype":"int8"`, `"dtype":"int3"`, 1)
	if _, err := exchange.Import([]byte(bad2)); err == nil {
		t.Fatal("unknown dtype should be rejected")
	}
}

func TestRoundTripFusedGraphExecutes(t *testing.T) {
	// An O2-fused graph (epilogue-carrying nodes, folded consts removed)
	// must survive a weighted round trip and execute bitwise-identically:
	// EpiChannels/EpiScale/EpiShift ride the interchange format.
	b := nn.NewBuilder("ftrip", nn.Options{Materialize: true, Seed: 6}, 3, 8, 8)
	b.ConvBNReLU("blk1", 4, 3, 1, 1)
	b.ConvBNReLU("blk2", 8, 3, 2, 1)
	b.GlobalAvgPool("gap")
	b.Dense("fc", 3, true)
	b.Softmax("p")
	g := b.Build()
	if _, err := opt.Optimize(g, opt.O2); err != nil {
		t.Fatal(err)
	}
	fused := 0
	for _, n := range g.Nodes {
		if n.EpiChannels > 0 {
			fused++
		}
	}
	if fused == 0 {
		t.Fatal("O2 fused nothing; the round trip would not exercise epilogues")
	}

	data, err := exchange.Export(g, exchange.Options{IncludeWeights: true})
	if err != nil {
		t.Fatal(err)
	}
	back, err := exchange.Import(data)
	if err != nil {
		t.Fatal(err)
	}
	backFused := 0
	for _, n := range back.Nodes {
		if n.EpiChannels > 0 {
			backFused++
			if len(n.EpiScale) != n.EpiChannels || len(n.EpiShift) != n.EpiChannels {
				t.Fatalf("node %s epilogue arrays %d/%d, want %d",
					n, len(n.EpiScale), len(n.EpiShift), n.EpiChannels)
			}
		}
	}
	if backFused != fused {
		t.Fatalf("round trip kept %d epilogue nodes, want %d", backFused, fused)
	}
	// Packed panels are a local cache, not part of the exchange format;
	// re-derive them on the imported graph so both sides execute the
	// same pre-packed GEMM lowering.
	graph.PrepackWeights(back)
	in := tensor.New(3, 8, 8).Randomize(stats.NewRNG(7), 1)
	want, err := (&graph.Executor{}).Run(g, in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	got, err := (&graph.Executor{}).Run(back, in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("fused execution diverges at %d after round trip", i)
		}
	}
}
