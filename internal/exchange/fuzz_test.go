package exchange_test

import (
	"math"
	"testing"
	"testing/quick"

	"edgebench/internal/exchange"
	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/stats"
	"edgebench/internal/tensor"
)

// randomCNN builds a random-but-valid materialized CNN from a seed:
// random depth, channel widths, strides, optional BN/activation/pool per
// stage, optional residual, random head. Used to fuzz the interchange
// round trip and the optimization passes far beyond the fixed zoo.
func randomCNN(seed int64) *graph.Graph {
	rng := stats.NewRNG(seed)
	b := nn.NewBuilder("fuzz", nn.Options{Materialize: true, Seed: seed}, 2+rng.Intn(2), 9, 9)
	stages := 1 + rng.Intn(3)
	for s := 0; s < stages; s++ {
		ch := 2 + rng.Intn(6)
		k := 1 + 2*rng.Intn(2) // 1 or 3
		withBias := rng.Intn(2) == 0
		name := string(rune('a' + s))
		pre := b.Current()
		b.Conv2D("conv_"+name, ch, k, 1, k/2, withBias)
		if rng.Intn(2) == 0 {
			b.BatchNorm("bn_" + name)
		}
		switch rng.Intn(4) {
		case 0:
			b.ReLU("relu_" + name)
		case 1:
			b.ReLU6("relu6_" + name)
		case 2:
			b.LeakyReLU("leaky_"+name, 0.1)
		case 3:
			b.Sigmoid("sig_" + name)
		}
		// Occasional residual via 1x1 projection.
		if rng.Intn(3) == 0 {
			main := b.Current()
			proj := b.From(pre).Conv2D("proj_"+name, ch, 1, 1, 0, false)
			b.Add("res_"+name, main, proj)
		}
		if rng.Intn(3) == 0 {
			b.MaxPool("pool_"+name, 2, 2, 0)
		}
	}
	b.GlobalAvgPool("gap")
	b.Dense("fc", 2+rng.Intn(6), true)
	b.Softmax("prob")
	return b.Build()
}

// TestFuzzRoundTripExecutes round-trips random CNNs with weights and
// checks bit-identical execution.
func TestFuzzRoundTripExecutes(t *testing.T) {
	f := func(seed int64) bool {
		g := randomCNN(seed)
		data, err := exchange.Export(g, exchange.Options{IncludeWeights: true})
		if err != nil {
			return false
		}
		back, err := exchange.Import(data)
		if err != nil {
			return false
		}
		in := tensor.New(g.Input.OutShape...).Randomize(stats.NewRNG(seed+1), 1)
		var exec graph.Executor
		want, err := exec.Run(g, in.Clone())
		if err != nil {
			return false
		}
		got, err := exec.Run(back, in.Clone())
		if err != nil {
			return false
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzOptimizationPipeline applies the full deployment pipeline to
// random CNNs and checks semantics within int8 tolerance plus structural
// invariants.
func TestFuzzOptimizationPipeline(t *testing.T) {
	f := func(seed int64) bool {
		g := randomCNN(seed)
		in := tensor.New(g.Input.OutShape...).Randomize(stats.NewRNG(seed+2), 1)
		var exec graph.Executor
		want, err := exec.Run(g, in.Clone())
		if err != nil {
			return false
		}
		opt := g.Clone()
		graph.FoldBN(opt)
		graph.FuseActivations(opt)
		graph.EliminateDead(opt)
		if err := opt.Validate(); err != nil {
			return false
		}
		if opt.NumOps() > g.NumOps() {
			return false
		}
		got, err := exec.Run(opt, in.Clone())
		if err != nil {
			return false
		}
		for i := range want.Data {
			if math.Abs(float64(want.Data[i]-got.Data[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
