// Package paperdata transcribes the measured values reported in the
// paper's figures, used as calibration anchors and as the reference
// column of EXPERIMENTS.md. Values marked approximate were read off bar
// labels whose association is unambiguous; a handful of Figure 2 bars
// are labelled in the text dump without clear column mapping and are
// recorded with their best-supported interpretation.
package paperdata

// Seconds maps figure anchors: figure -> device/framework -> model ->
// time per inference in seconds.

// Fig2BestSeconds is Figure 2: time per inference on each edge device
// with its best-performing framework (milliseconds in the paper).
var Fig2BestSeconds = map[string]map[string]float64{
	"RPi3": { // TFLite for classifiers; PyTorch where Table V forces a dynamic graph; TF for TinyYolo
		"ResNet-18":    0.870,
		"ResNet-50":    2.460,
		"MobileNet-v2": 0.480,
		"Inception-v4": 5.510,
		"AlexNet":      2.8017,
		"VGG16":        16.485,
		"TinyYolo":     0.967,
		"C3D":          32.460,
	},
	"JetsonTX2": { // PyTorch
		"ResNet-18":        0.0265,
		"ResNet-50":        0.0543,
		"MobileNet-v2":     0.0401,
		"Inception-v4":     0.1062,
		"AlexNet":          0.0156,
		"VGG16":            0.0877,
		"SSD-MobileNet-v1": 0.0416,
		"TinyYolo":         0.1079,
		"C3D":              0.1968,
	},
	"JetsonNano": { // TensorRT
		"ResNet-18":        0.023,
		"ResNet-50":        0.032,
		"MobileNet-v2":     0.018,
		"Inception-v4":     0.095,
		"AlexNet":          0.046,
		"VGG16":            0.092,
		"SSD-MobileNet-v1": 0.032,
		"TinyYolo":         0.042,
		"C3D":              0.229,
	},
	"EdgeTPU": { // TFLite (only supported pairs)
		"ResNet-50":        0.065,
		"MobileNet-v2":     0.0029,
		"Inception-v4":     0.1025,
		"VGG16":            0.365,
		"SSD-MobileNet-v1": 0.016,
	},
	"Movidius": { // NCSDK
		"ResNet-18":        0.1019,
		"ResNet-50":        0.1999,
		"MobileNet-v2":     0.051,
		"Inception-v4":     0.6326,
		"SSD-MobileNet-v1": 0.0802,
		"TinyYolo":         0.1861,
		"C3D":              0.600,
	},
	"PYNQ-Z1": { // TVM VTA
		"ResNet-18": 0.600,
	},
}

// Fig2Uncertain holds bar values whose column association in the source
// text dump is ambiguous (the Movidius AlexNet/VGG16 readings are
// physically inconsistent with the device's 1.6 GB/s memory path — VGG16
// cannot beat ResNet-18 while streaming 276 MB of FP16 weights). They
// are recorded for completeness but excluded from calibration and shape
// assertions.
var Fig2Uncertain = map[string]map[string]float64{
	"Movidius": {
		"AlexNet": 0.0911, // possibly 0.911 s
		"VGG16":   0.0871, // possibly 0.871 s
	},
}

// Fig7Nano is Figure 7: Jetson Nano, PyTorch vs TensorRT (seconds).
// Average speedup: 4.1x.
var Fig7Nano = map[string]struct{ PyTorch, TensorRT float64 }{
	"ResNet-18":        {0.1413, 0.023},
	"ResNet-50":        {0.2150, 0.032},
	"MobileNet-v2":     {0.1184, 0.018},
	"Inception-v4":     {0.2925, 0.095},
	"AlexNet":          {0.1321, 0.046},
	"VGG16":            {0.2907, 0.092},
	"SSD-MobileNet-v1": {0.1917, 0.032},
	"TinyYolo":         {0.1238, 0.042},
	"C3D":              {0.5554, 0.229},
}

// Fig7AvgSpeedup is the paper's reported average TensorRT speedup.
const Fig7AvgSpeedup = 4.1

// Fig8RPi is Figure 8: Raspberry Pi, PyTorch / TensorFlow / TFLite
// (seconds). Average speedups: TFLite 1.58x over TF, 4.53x over PyTorch.
var Fig8RPi = map[string]struct{ PyTorch, TensorFlow, TFLite float64 }{
	"ResNet-18":    {6.57, 0.99, 0.87},
	"ResNet-50":    {8.30, 3.06, 2.46},
	"ResNet-101":   {15.32, 13.32, 8.86},
	"MobileNet-v2": {8.28, 1.40, 0.48},
	"Inception-v4": {13.84, 8.87, 5.51},
}

// Fig8AvgSpeedupTF and Fig8AvgSpeedupPT are the paper's averages.
const (
	Fig8AvgSpeedupTF = 1.58
	Fig8AvgSpeedupPT = 4.53
)

// Fig3RPiTF is Figure 3's TensorFlow row (RPi, seconds): TensorFlow is
// the fastest full framework on RPi; MobileNet-v2 anchors are quoted in
// the text (TF 1.40 s, Caffe 2.27 s, PyTorch 8.25 s).
var Fig3RPiTF = map[string]float64{
	"MobileNet-v2": 1.40,
}

// Fig3RPiCaffe anchors Caffe on RPi.
var Fig3RPiCaffe = map[string]float64{
	"MobileNet-v2": 2.27,
}

// Fig3RPiPyTorch anchors PyTorch on RPi (Fig. 3 quotes 8.25 s for
// MobileNet-v2; Fig. 8 lists 8.28 s — instrument noise between runs).
var Fig3RPiPyTorch = map[string]float64{
	"MobileNet-v2": 8.25,
}

// Fig13Docker is Figure 13: bare-metal vs Docker on RPi/TensorFlow
// (seconds); slowdown within 5%.
var Fig13Docker = map[string]struct{ Bare, Docker float64 }{
	"ResNet-18":    {1.01, 1.06},
	"ResNet-50":    {3.15, 3.18},
	"MobileNet-v2": {1.07, 1.10},
	"Inception-v4": {9.31, 9.54},
	"TinyYolo":     {0.96, 0.96},
}

// Fig11EnergyMJ spots Figure 11's quoted energies (millijoules per
// inference).
var Fig11EnergyMJ = map[string]map[string]float64{
	"EdgeTPU":    {"MobileNet-v2": 11},
	"JetsonNano": {"ResNet-18": 84, "Inception-v4": 500},
	"Movidius":   {"MobileNet-v2": 66, "Inception-v4": 1000},
	"JetsonTX2":  {"ResNet-18": 300, "Inception-v4": 1000},
	"GTXTitanX":  {"ResNet-18": 1000, "Inception-v4": 5000},
}

// Fig10GeomeanSpeedup is §VI-C's headline: HPC platforms average only
// ~3x over Jetson TX2 for single-batch inference.
const Fig10GeomeanSpeedup = 3.0

// TableVIIdleTemps repeats Table VI idle temperatures (Celsius).
var TableVIIdleTemps = map[string]float64{
	"RPi3": 43.3, "JetsonTX2": 32.4, "JetsonNano": 35.2,
	"EdgeTPU": 33.9, "Movidius": 25.8,
}
