// Package partition implements collaborative DNN inference across
// devices — the third research direction the paper's related-work
// section surveys (§VIII): Neurosurgeon's edge-cloud layer split and the
// authors' own model-parallel distribution across edge devices.
//
// A model graph is cut at an articulation point (a node whose value is
// the only live tensor crossing the boundary); the head runs on one
// device, the activation crosses a network link, and the tail runs on
// another. The planner enumerates every legal cut and returns the
// latency-optimal placement, reproducing Neurosurgeon's core result:
// depending on the model's activation-size profile and the link, the
// best split is sometimes all-edge, sometimes all-cloud, and sometimes
// genuinely in the middle.
package partition

import (
	"fmt"

	"edgebench/internal/core"
	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
)

// Link models a network between the edge device and the remote helper.
type Link struct {
	Name string
	// BandwidthBps is the usable payload bandwidth in bytes/second.
	BandwidthBps float64
	// LatencySec is the one-way message latency.
	LatencySec float64
}

// TransferSec returns the time to ship bytes across the link.
func (l Link) TransferSec(bytes float64) float64 {
	if l.BandwidthBps <= 0 {
		return 0
	}
	return l.LatencySec + bytes/l.BandwidthBps
}

// Standard links used by the experiments.
var (
	// WiFi approximates 802.11n at realistic goodput.
	WiFi = Link{Name: "wifi", BandwidthBps: 5e6, LatencySec: 2e-3}
	// LTE approximates a cellular uplink.
	LTE = Link{Name: "lte", BandwidthBps: 1.5e6, LatencySec: 50e-3}
	// Ethernet approximates wired 1 GbE goodput.
	Ethernet = Link{Name: "ethernet", BandwidthBps: 100e6, LatencySec: 0.5e-3}
)

// CutPoint is a legal split position.
type CutPoint struct {
	// After is the last head node; its output crosses the link.
	After *graph.Node
	// Index is After's position in the node list.
	Index int
	// TransferBytes is the activation payload (FP32).
	TransferBytes float64
}

// CutPoints returns every articulation point of the graph: positions
// where exactly one tensor is live across the boundary. Residual and
// Inception models only admit cuts between blocks — exactly the
// constraint real partitioners face.
func CutPoints(g *graph.Graph) []CutPoint {
	// consumersAfter[i] = true if some node beyond position i consumes
	// the node at position <= i.
	pos := make(map[*graph.Node]int, len(g.Nodes))
	for i, n := range g.Nodes {
		pos[n] = i
	}
	roots := map[*graph.Node]bool{}
	for _, r := range g.Roots() {
		roots[r] = true
	}
	var out []CutPoint
	for i, n := range g.Nodes {
		if i == len(g.Nodes)-1 {
			break // cutting after the output is not a split
		}
		// Live set at boundary i: nodes at <= i consumed by nodes > i,
		// plus any root at <= i (its value must still be delivered).
		live := map[*graph.Node]bool{}
		for j := i + 1; j < len(g.Nodes); j++ {
			for _, in := range g.Nodes[j].Inputs {
				if pos[in] <= i {
					live[in] = true
				}
			}
		}
		for r := range roots {
			if pos[r] <= i {
				live[r] = true
			}
		}
		if len(live) == 1 && live[n] {
			out = append(out, CutPoint{
				After:         n,
				Index:         i,
				TransferBytes: float64(n.OutShape.NumElems() * 4),
			})
		}
	}
	return out
}

// Split rebuilds the model's prefix up to and including cut as a
// standalone head graph, and the suffix as a tail graph with a fresh
// input of the cut's shape. Both preserve node structure (names, shapes,
// attributes) so the cost model prices them exactly like the original
// layers; parameters stay structural — use CopyParams to materialize a
// split for numeric execution.
func Split(g *graph.Graph, cut CutPoint) (head, tail *graph.Graph, err error) {
	head = &graph.Graph{Name: g.Name + "/head", Mode: g.Mode}
	mapping := map[*graph.Node]*graph.Node{}
	cloneInto := func(dst *graph.Graph, n *graph.Node) *graph.Node {
		cp := &graph.Node{
			Name: n.Name, Kind: n.Kind, Attrs: n.Attrs,
			WShape: n.WShape.Clone(), BiasLen: n.BiasLen, BNChannels: n.BNChannels,
			OutShape: n.OutShape.Clone(), DType: n.DType,
			Activation: n.Activation, FusedBN: n.FusedBN, Sparsity: n.Sparsity,
		}
		for _, in := range n.Inputs {
			m, ok := mapping[in]
			if !ok {
				return nil
			}
			cp.Inputs = append(cp.Inputs, m)
		}
		dst.Append(cp)
		mapping[n] = cp
		return cp
	}
	for i := 0; i <= cut.Index; i++ {
		cp := cloneInto(head, g.Nodes[i])
		if cp == nil {
			return nil, nil, fmt.Errorf("partition: head references a node outside the prefix")
		}
		if g.Nodes[i].Kind == graph.OpInput {
			head.Input = cp
		}
		head.Output = cp
	}

	tail = &graph.Graph{Name: g.Name + "/tail", Mode: g.Mode}
	// The bridge input inherits the cut node's execution datatype so a
	// split of a quantized graph keeps every edge dtype-uniform (the
	// verifier rejects mixed-dtype edges).
	bridge := &graph.Node{Kind: graph.OpInput, Name: "cut_input",
		OutShape: cut.After.OutShape.Clone(), DType: cut.After.DType}
	tail.Append(bridge)
	tail.Input = bridge
	tail.Output = bridge
	mapping = map[*graph.Node]*graph.Node{cut.After: bridge}
	for i := cut.Index + 1; i < len(g.Nodes); i++ {
		cp := cloneInto(tail, g.Nodes[i])
		if cp == nil {
			return nil, nil, fmt.Errorf("partition: tail references a non-cut prefix node")
		}
		tail.Output = cp
	}
	for _, r := range g.Extra {
		if m, ok := mapping[r]; ok {
			tail.Extra = append(tail.Extra, m)
		}
	}
	if err := head.Validate(); err != nil {
		return nil, nil, fmt.Errorf("partition: head: %w", err)
	}
	if err := tail.Validate(); err != nil {
		return nil, nil, fmt.Errorf("partition: tail: %w", err)
	}
	return head, tail, nil
}

// CopyParams transfers materialized parameters from the source graph
// into split graphs by node name, enabling numeric execution of a
// partition. Nodes missing from a part (they belong to the other side)
// are skipped.
func CopyParams(src *graph.Graph, parts ...*graph.Graph) {
	byName := map[string]*graph.Node{}
	for _, n := range src.Nodes {
		byName[n.Name] = n
	}
	for _, part := range parts {
		for _, n := range part.Nodes {
			orig, ok := byName[n.Name]
			if !ok {
				continue
			}
			n.Weights = orig.Weights
			n.Bias = orig.Bias
			n.BN = orig.BN
		}
	}
}

// Placement describes one evaluated split.
type Placement struct {
	// CutAfter names the last edge-side layer; empty means all-remote,
	// "(all)" means all-edge.
	CutAfter      string
	EdgeSec       float64
	TransferSec   float64
	RemoteSec     float64
	TotalSec      float64
	TransferBytes float64
}

// Plan holds the planner's full evaluation.
type Plan struct {
	Model    string
	EdgeDev  string
	Remote   string
	Link     Link
	Best     Placement
	AllEdge  Placement
	AllCloud Placement
	// Evaluated lists every legal placement, cut order first.
	Evaluated []Placement
}

// Neurosurgeon finds the latency-optimal split of modelName between an
// edge device and a remote helper across the link, including the
// degenerate all-edge and all-remote placements. Frameworks are chosen
// per side (the edge runs its framework, the remote its own).
func Neurosurgeon(modelName, edgeDev, edgeFw, remoteDev, remoteFw string, link Link) (*Plan, error) {
	spec, ok := model.Get(modelName)
	if !ok {
		return nil, fmt.Errorf("partition: unknown model %q", modelName)
	}
	g := spec.Build(nn.Options{})

	inputBytes := float64(g.Input.OutShape.NumElems() * 4)
	plan := &Plan{Model: modelName, EdgeDev: edgeDev, Remote: remoteDev, Link: link}

	priceOn := func(gr *graph.Graph, fw, dev string) (float64, error) {
		s, err := core.NewFromGraph(gr, fw, dev)
		if err != nil {
			return 0, err
		}
		return s.InferenceSeconds(), nil
	}

	edgeAll, err := priceOn(g, edgeFw, edgeDev)
	if err != nil {
		return nil, err
	}
	plan.AllEdge = Placement{CutAfter: "(all)", EdgeSec: edgeAll, TotalSec: edgeAll}

	remoteAll, err := priceOn(g, remoteFw, remoteDev)
	if err != nil {
		return nil, err
	}
	up := link.TransferSec(inputBytes)
	plan.AllCloud = Placement{
		CutAfter: "", EdgeSec: 0, TransferSec: up, RemoteSec: remoteAll,
		TotalSec: up + remoteAll, TransferBytes: inputBytes,
	}

	plan.Best = plan.AllEdge
	if plan.AllCloud.TotalSec < plan.Best.TotalSec {
		plan.Best = plan.AllCloud
	}
	plan.Evaluated = append(plan.Evaluated, plan.AllCloud)

	for _, cut := range CutPoints(g) {
		head, tail, err := Split(g, cut)
		if err != nil {
			return nil, err
		}
		eh, err := priceOn(head, edgeFw, edgeDev)
		if err != nil {
			return nil, err
		}
		rt, err := priceOn(tail, remoteFw, remoteDev)
		if err != nil {
			return nil, err
		}
		tr := link.TransferSec(cut.TransferBytes)
		p := Placement{
			CutAfter: cut.After.Name, EdgeSec: eh, TransferSec: tr,
			RemoteSec: rt, TotalSec: eh + tr + rt, TransferBytes: cut.TransferBytes,
		}
		plan.Evaluated = append(plan.Evaluated, p)
		if p.TotalSec < plan.Best.TotalSec {
			plan.Best = p
		}
	}
	plan.Evaluated = append(plan.Evaluated, plan.AllEdge)
	return plan, nil
}
