// Package partition implements collaborative DNN inference across
// devices — the third research direction the paper's related-work
// section surveys (§VIII): Neurosurgeon's edge-cloud layer split and the
// authors' own model-parallel distribution across edge devices.
//
// A model graph is cut at an articulation point (a node whose value is
// the only live tensor crossing the boundary); the head runs on one
// device, the activation crosses a network link, and the tail runs on
// another. The planner enumerates every legal cut and returns the
// latency-optimal placement, reproducing Neurosurgeon's core result:
// depending on the model's activation-size profile and the link, the
// best split is sometimes all-edge, sometimes all-cloud, and sometimes
// genuinely in the middle.
package partition

import (
	"fmt"

	"edgebench/internal/core"
	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
)

// Link models a network between the edge device and the remote helper.
type Link struct {
	Name string
	// BandwidthBps is the usable payload bandwidth in bytes/second.
	BandwidthBps float64
	// LatencySec is the one-way message latency.
	LatencySec float64
}

// TransferSec returns the time to ship bytes across the link.
func (l Link) TransferSec(bytes float64) float64 {
	if l.BandwidthBps <= 0 {
		return 0
	}
	return l.LatencySec + bytes/l.BandwidthBps
}

// Standard links used by the experiments.
var (
	// WiFi approximates 802.11n at realistic goodput.
	WiFi = Link{Name: "wifi", BandwidthBps: 5e6, LatencySec: 2e-3}
	// LTE approximates a cellular uplink.
	LTE = Link{Name: "lte", BandwidthBps: 1.5e6, LatencySec: 50e-3}
	// Ethernet approximates wired 1 GbE goodput.
	Ethernet = Link{Name: "ethernet", BandwidthBps: 100e6, LatencySec: 0.5e-3}
)

// CutPoint is a legal split position.
type CutPoint struct {
	// After is the last head node; its output crosses the link.
	After *graph.Node
	// Index is After's position in the node list.
	Index int
	// TransferBytes is the activation payload (FP32).
	TransferBytes float64
}

// CutPoints returns every articulation point of the graph: positions
// where exactly one tensor is live across the boundary. Residual and
// Inception models only admit cuts between blocks — exactly the
// constraint real partitioners face.
func CutPoints(g *graph.Graph) []CutPoint {
	// consumersAfter[i] = true if some node beyond position i consumes
	// the node at position <= i.
	pos := make(map[*graph.Node]int, len(g.Nodes))
	for i, n := range g.Nodes {
		pos[n] = i
	}
	roots := map[*graph.Node]bool{}
	for _, r := range g.Roots() {
		roots[r] = true
	}
	var out []CutPoint
	for i, n := range g.Nodes {
		if i == len(g.Nodes)-1 {
			break // cutting after the output is not a split
		}
		// Live set at boundary i: nodes at <= i consumed by nodes > i,
		// plus any root at <= i (its value must still be delivered).
		live := map[*graph.Node]bool{}
		for j := i + 1; j < len(g.Nodes); j++ {
			for _, in := range g.Nodes[j].Inputs {
				if pos[in] <= i {
					live[in] = true
				}
			}
		}
		for r := range roots {
			if pos[r] <= i {
				live[r] = true
			}
		}
		if len(live) == 1 && live[n] {
			out = append(out, CutPoint{
				After:         n,
				Index:         i,
				TransferBytes: float64(n.OutShape.NumElems() * 4),
			})
		}
	}
	return out
}

// Split rebuilds the model's prefix up to and including cut as a
// standalone head graph, and the suffix as a tail graph with a fresh
// input of the cut's shape. Both preserve node structure (names, shapes,
// attributes) so the cost model prices them exactly like the original
// layers; parameters stay structural — use CopyParams to materialize a
// split for numeric execution. Split is the 2-way case of SplitN.
func Split(g *graph.Graph, cut CutPoint) (head, tail *graph.Graph, err error) {
	parts, err := SplitN(g, cut)
	if err != nil {
		return nil, nil, err
	}
	parts[0].Name = g.Name + "/head"
	parts[1].Name = g.Name + "/tail"
	return parts[0], parts[1], nil
}

// SplitN cuts the graph at every given cut point (which must come from
// CutPoints(g) and be in ascending node order), returning len(cuts)+1
// consecutive subgraphs named name/stage0..stageK. Each subgraph after
// the first starts with a fresh "cut_input" bridge node carrying the
// preceding cut's shape and execution datatype, so a split of a
// quantized graph keeps every edge dtype-uniform. Structure — names,
// shapes, attributes, fused-epilogue annotations — is preserved so the
// cost model prices the stages exactly like the original layers;
// parameters stay structural. Use CopyParams to materialize the parts
// for numeric execution: running the stages in sequence, feeding each
// output into the next bridge input, is bit-identical to running g.
func SplitN(g *graph.Graph, cuts ...CutPoint) ([]*graph.Graph, error) {
	if len(cuts) == 0 {
		return nil, fmt.Errorf("partition: SplitN needs at least one cut")
	}
	for i, c := range cuts {
		if c.After == nil || c.Index < 0 || c.Index >= len(g.Nodes) || g.Nodes[c.Index] != c.After {
			return nil, fmt.Errorf("partition: cut %d does not reference a node of %s", i, g.Name)
		}
		if c.Index == len(g.Nodes)-1 {
			return nil, fmt.Errorf("partition: cut %d after the output node is not a split", i)
		}
		if i > 0 && c.Index <= cuts[i-1].Index {
			return nil, fmt.Errorf("partition: cuts out of order (index %d after %d)", c.Index, cuts[i-1].Index)
		}
	}

	var parts []*graph.Graph
	mapping := map[*graph.Node]*graph.Node{}
	cloneInto := func(dst *graph.Graph, n *graph.Node) *graph.Node {
		cp := &graph.Node{
			Name: n.Name, Kind: n.Kind, Attrs: n.Attrs,
			WShape: n.WShape.Clone(), BiasLen: n.BiasLen, BNChannels: n.BNChannels,
			OutShape: n.OutShape.Clone(), DType: n.DType,
			Activation: n.Activation, FusedBN: n.FusedBN,
			EpiChannels: n.EpiChannels, Sparsity: n.Sparsity,
		}
		for _, in := range n.Inputs {
			m, ok := mapping[in]
			if !ok {
				return nil
			}
			cp.Inputs = append(cp.Inputs, m)
		}
		dst.Append(cp)
		mapping[n] = cp
		return cp
	}

	start := 0
	for s := 0; s <= len(cuts); s++ {
		part := &graph.Graph{Name: fmt.Sprintf("%s/stage%d", g.Name, s), Mode: g.Mode}
		if s > 0 {
			// The bridge inherits the cut node's shape and dtype; the
			// previous stage's cut node maps to it, so cross-cut edges
			// resolve to the bridge. Mappings from earlier stages are
			// dropped — a reference that skips a stage has no single
			// live tensor at the boundary and CutPoints would not have
			// admitted the cut.
			cut := cuts[s-1]
			bridge := &graph.Node{Kind: graph.OpInput, Name: "cut_input",
				OutShape: cut.After.OutShape.Clone(), DType: cut.After.DType}
			part.Append(bridge)
			part.Input = bridge
			part.Output = bridge
			mapping = map[*graph.Node]*graph.Node{cut.After: bridge}
		}
		end := len(g.Nodes) - 1
		if s < len(cuts) {
			end = cuts[s].Index
		}
		for i := start; i <= end; i++ {
			cp := cloneInto(part, g.Nodes[i])
			if cp == nil {
				return nil, fmt.Errorf("partition: stage %d references a node outside its range", s)
			}
			if g.Nodes[i].Kind == graph.OpInput {
				part.Input = cp
			}
			part.Output = cp
		}
		if s == len(cuts) {
			for _, r := range g.Extra {
				if m, ok := mapping[r]; ok {
					part.Extra = append(part.Extra, m)
				}
			}
		}
		if err := part.Validate(); err != nil {
			return nil, fmt.Errorf("partition: stage %d: %w", s, err)
		}
		parts = append(parts, part)
		start = end + 1
	}
	return parts, nil
}

// CopyParams transfers materialized parameters from the source graph
// into split graphs by node name, enabling numeric execution of a
// partition. All parameter kinds travel — FP32 weights, quantized
// weights, bias, batch-norm, and absorbed-epilogue scale/shift — so
// split quantized or pattern-fused graphs execute identically to the
// whole. Nodes missing from a part (they belong to another stage) are
// skipped.
func CopyParams(src *graph.Graph, parts ...*graph.Graph) {
	byName := map[string]*graph.Node{}
	for _, n := range src.Nodes {
		byName[n.Name] = n
	}
	for _, part := range parts {
		for _, n := range part.Nodes {
			orig, ok := byName[n.Name]
			if !ok {
				continue
			}
			n.Weights = orig.Weights
			n.QWeights = orig.QWeights
			n.Bias = orig.Bias
			n.BN = orig.BN
			n.EpiScale = orig.EpiScale
			n.EpiShift = orig.EpiShift
		}
	}
}

// Placement describes one evaluated split.
type Placement struct {
	// CutAfter names the last edge-side layer; empty means all-remote,
	// "(all)" means all-edge.
	CutAfter      string
	EdgeSec       float64
	TransferSec   float64
	RemoteSec     float64
	TotalSec      float64
	TransferBytes float64
}

// Plan holds the planner's full evaluation.
type Plan struct {
	Model    string
	EdgeDev  string
	Remote   string
	Link     Link
	Best     Placement
	AllEdge  Placement
	AllCloud Placement
	// Evaluated lists every legal placement, cut order first.
	Evaluated []Placement
}

// Neurosurgeon finds the latency-optimal split of modelName between an
// edge device and a remote helper across the link, including the
// degenerate all-edge and all-remote placements. Frameworks are chosen
// per side (the edge runs its framework, the remote its own).
func Neurosurgeon(modelName, edgeDev, edgeFw, remoteDev, remoteFw string, link Link) (*Plan, error) {
	spec, ok := model.Get(modelName)
	if !ok {
		return nil, fmt.Errorf("partition: unknown model %q", modelName)
	}
	g := spec.Build(nn.Options{})

	inputBytes := float64(g.Input.OutShape.NumElems() * 4)
	plan := &Plan{Model: modelName, EdgeDev: edgeDev, Remote: remoteDev, Link: link}

	priceOn := func(gr *graph.Graph, fw, dev string) (float64, error) {
		s, err := core.NewFromGraph(gr, fw, dev)
		if err != nil {
			return 0, err
		}
		return s.InferenceSeconds(), nil
	}

	edgeAll, err := priceOn(g, edgeFw, edgeDev)
	if err != nil {
		return nil, err
	}
	plan.AllEdge = Placement{CutAfter: "(all)", EdgeSec: edgeAll, TotalSec: edgeAll}

	remoteAll, err := priceOn(g, remoteFw, remoteDev)
	if err != nil {
		return nil, err
	}
	up := link.TransferSec(inputBytes)
	plan.AllCloud = Placement{
		CutAfter: "", EdgeSec: 0, TransferSec: up, RemoteSec: remoteAll,
		TotalSec: up + remoteAll, TransferBytes: inputBytes,
	}

	plan.Best = plan.AllEdge
	if plan.AllCloud.TotalSec < plan.Best.TotalSec {
		plan.Best = plan.AllCloud
	}
	plan.Evaluated = append(plan.Evaluated, plan.AllCloud)

	for _, cut := range CutPoints(g) {
		head, tail, err := Split(g, cut)
		if err != nil {
			return nil, err
		}
		eh, err := priceOn(head, edgeFw, edgeDev)
		if err != nil {
			return nil, err
		}
		rt, err := priceOn(tail, remoteFw, remoteDev)
		if err != nil {
			return nil, err
		}
		tr := link.TransferSec(cut.TransferBytes)
		p := Placement{
			CutAfter: cut.After.Name, EdgeSec: eh, TransferSec: tr,
			RemoteSec: rt, TotalSec: eh + tr + rt, TransferBytes: cut.TransferBytes,
		}
		plan.Evaluated = append(plan.Evaluated, p)
		if p.TotalSec < plan.Best.TotalSec {
			plan.Best = p
		}
	}
	plan.Evaluated = append(plan.Evaluated, plan.AllEdge)
	return plan, nil
}
