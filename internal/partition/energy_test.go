package partition_test

import (
	"math"
	"testing"

	"edgebench/internal/partition"
)

func TestEnergyAwareOffloadSavesBattery(t *testing.T) {
	// A drone's RPi over Wi-Fi with a relaxed latency bound: offloading
	// must slash the edge energy vs local execution.
	plan, err := partition.NeurosurgeonEnergyAware(
		"ResNet-50", "RPi3", "PyTorch", "GTXTitanX", "PyTorch", partition.WiFi, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("a 1 s bound must be feasible over Wi-Fi")
	}
	if plan.Best.EdgeEnergyJ >= plan.AllEdge.EdgeEnergyJ/5 {
		t.Fatalf("offloading should cut edge energy >5x: best %.2f J vs local %.2f J",
			plan.Best.EdgeEnergyJ, plan.AllEdge.EdgeEnergyJ)
	}
	if plan.Best.TotalSec > plan.LatencyBound {
		t.Fatal("best placement violates the bound")
	}
}

func TestEnergyAwareBoundForcesLocality(t *testing.T) {
	// Over LTE the input transfer alone takes ~450 ms; a tight 100 ms
	// bound forces a capable edge device to keep everything local.
	plan, err := partition.NeurosurgeonEnergyAware(
		"ResNet-50", "JetsonTX2", "PyTorch", "GTXTitanX", "PyTorch", partition.LTE, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("the TX2 alone meets 100 ms for ResNet-50")
	}
	if plan.Best.CutAfter != "(all)" {
		t.Fatalf("tight bound over LTE should stay local, got cut %q", plan.Best.CutAfter)
	}
}

func TestEnergyAwareInfeasible(t *testing.T) {
	// The RPi cannot run ResNet-50 in 50 ms and LTE cannot ship the
	// input that fast either: no placement is feasible.
	plan, err := partition.NeurosurgeonEnergyAware(
		"ResNet-50", "RPi3", "PyTorch", "GTXTitanX", "PyTorch", partition.LTE, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible {
		t.Fatalf("50 ms over LTE from an RPi should be infeasible, got %+v", plan.Best)
	}
}

func TestEnergyAwareErrors(t *testing.T) {
	if _, err := partition.NeurosurgeonEnergyAware("ResNet-50", "RPi3", "PyTorch", "Xeon", "PyTorch", partition.WiFi, 0); err == nil {
		t.Fatal("zero bound should error")
	}
	if _, err := partition.NeurosurgeonEnergyAware("NoNet", "RPi3", "PyTorch", "Xeon", "PyTorch", partition.WiFi, 1); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestEnergyAccountingComposition(t *testing.T) {
	// Edge energy = head compute energy + radio energy; for the
	// all-cloud placement it is exactly the radio term.
	plan, err := partition.NeurosurgeonEnergyAware(
		"ResNet-18", "RPi3", "PyTorch", "GTXTitanX", "PyTorch", partition.WiFi, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Find the all-cloud placement via a fresh evaluation: its energy
	// must equal TxPowerW x transfer time.
	if plan.Best.CutAfter == "" {
		want := partition.TxPowerW * plan.Best.TransferSec
		if math.Abs(plan.Best.EdgeEnergyJ-want) > 1e-9 {
			t.Fatalf("all-cloud edge energy %.4f J != radio %.4f J", plan.Best.EdgeEnergyJ, want)
		}
	}
	if plan.Best.EdgeEnergyJ <= 0 {
		t.Fatal("edge energy must be positive")
	}
}
