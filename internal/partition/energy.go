package partition

import (
	"fmt"
	"math"

	"edgebench/internal/core"
	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/power"
)

// Energy-aware offloading: battery-powered platforms (the drones and
// robots of §I) care about the edge device's energy per inference, not
// just latency. Shipping activations costs radio energy, and computing
// locally costs compute energy; the right split minimizes the battery
// drain subject to a responsiveness bound.

// TxPowerW is the radio transmit power drawn while shipping activations
// over a wireless link (typical small-module Wi-Fi/cellular budget).
const TxPowerW = 0.8

// EnergyPlacement is one split evaluated by edge-side energy.
type EnergyPlacement struct {
	Placement
	// EdgeEnergyJ is the battery cost per inference on the edge device:
	// compute energy for the head plus radio energy for the transfer.
	EdgeEnergyJ float64
}

// EnergyPlan is the energy-aware planner's result.
type EnergyPlan struct {
	Model        string
	EdgeDev      string
	Remote       string
	Link         Link
	LatencyBound float64
	// Best is the minimum-edge-energy placement meeting the bound; nil
	// Feasible when nothing meets it.
	Best     EnergyPlacement
	Feasible bool
	// AllEdge is the local-only reference point.
	AllEdge EnergyPlacement
}

// NeurosurgeonEnergyAware minimizes the edge device's energy per
// inference subject to a total-latency bound — the objective a drone's
// perception payload actually optimizes (§I's UAV scenario).
func NeurosurgeonEnergyAware(modelName, edgeDev, edgeFw, remoteDev, remoteFw string, link Link, latencyBound float64) (*EnergyPlan, error) {
	if latencyBound <= 0 {
		return nil, fmt.Errorf("partition: latency bound must be positive")
	}
	spec, ok := model.Get(modelName)
	if !ok {
		return nil, fmt.Errorf("partition: unknown model %q", modelName)
	}
	g := spec.Build(nn.Options{})

	plan := &EnergyPlan{
		Model: modelName, EdgeDev: edgeDev, Remote: remoteDev,
		Link: link, LatencyBound: latencyBound,
	}

	price := func(gr *graph.Graph, fw, dev string) (*core.Session, error) {
		return core.NewFromGraph(gr, fw, dev)
	}

	evaluate := func(head *graph.Graph, transferBytes float64, tail *graph.Graph) (EnergyPlacement, error) {
		var p EnergyPlacement
		if head != nil {
			s, err := price(head, edgeFw, edgeDev)
			if err != nil {
				return p, err
			}
			p.EdgeSec = s.InferenceSeconds()
			p.EdgeEnergyJ = power.EnergyPerInferenceJ(s)
		}
		if transferBytes > 0 {
			p.TransferSec = link.TransferSec(transferBytes)
			p.TransferBytes = transferBytes
			p.EdgeEnergyJ += TxPowerW * p.TransferSec
		}
		if tail != nil {
			s, err := price(tail, remoteFw, remoteDev)
			if err != nil {
				return p, err
			}
			p.RemoteSec = s.InferenceSeconds()
		}
		p.TotalSec = p.EdgeSec + p.TransferSec + p.RemoteSec
		return p, nil
	}

	// All-edge.
	allEdge, err := evaluate(g, 0, nil)
	if err != nil {
		return nil, err
	}
	allEdge.CutAfter = "(all)"
	plan.AllEdge = allEdge

	best := EnergyPlacement{EdgeEnergyJ: math.Inf(1)}
	consider := func(p EnergyPlacement) {
		if p.TotalSec <= latencyBound && p.EdgeEnergyJ < best.EdgeEnergyJ {
			best = p
			plan.Feasible = true
		}
	}
	consider(allEdge)

	// All-cloud: edge pays only the input radio energy.
	inputBytes := float64(g.Input.OutShape.NumElems() * 4)
	allCloud, err := evaluate(nil, inputBytes, g)
	if err != nil {
		return nil, err
	}
	allCloud.CutAfter = ""
	consider(allCloud)

	for _, cut := range CutPoints(g) {
		head, tail, err := Split(g, cut)
		if err != nil {
			return nil, err
		}
		p, err := evaluate(head, cut.TransferBytes, tail)
		if err != nil {
			return nil, err
		}
		p.CutAfter = cut.After.Name
		consider(p)
	}
	if plan.Feasible {
		plan.Best = best
	}
	return plan, nil
}
