package partition_test

import (
	"strings"
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
	"edgebench/internal/partition"
	"edgebench/internal/stats"
	"edgebench/internal/tensor"
	"edgebench/internal/verify"
)

func TestLinkTransfer(t *testing.T) {
	l := partition.Link{BandwidthBps: 1e6, LatencySec: 0.01}
	if got := l.TransferSec(1e6); got != 1.01 {
		t.Fatalf("TransferSec = %v", got)
	}
	if (partition.Link{}).TransferSec(100) != 0 {
		t.Fatal("zero-bandwidth link should cost nothing (disabled)")
	}
	if partition.WiFi.BandwidthBps <= partition.LTE.BandwidthBps {
		t.Fatal("WiFi should outrun LTE")
	}
	if partition.Ethernet.BandwidthBps <= partition.WiFi.BandwidthBps {
		t.Fatal("Ethernet should outrun WiFi")
	}
}

func TestCutPointsChain(t *testing.T) {
	// A pure chain admits a cut after every node but the last.
	b := nn.NewBuilder("chain", nn.Options{}, 3, 8, 8)
	b.Conv2D("c1", 4, 3, 1, 1, true)
	b.ReLU("r1")
	b.Conv2D("c2", 8, 3, 1, 1, true)
	b.GlobalAvgPool("gap")
	g := b.Build()
	cuts := partition.CutPoints(g)
	if len(cuts) != len(g.Nodes)-1 {
		t.Fatalf("chain cuts = %d, want %d", len(cuts), len(g.Nodes)-1)
	}
	// Transfer bytes follow the activation shapes.
	if cuts[1].TransferBytes != float64(4*8*8*4) {
		t.Fatalf("transfer bytes after c1 = %v", cuts[1].TransferBytes)
	}
}

func TestCutPointsRespectResiduals(t *testing.T) {
	// Inside a residual block two tensors are live, so no cut may fall
	// there; cuts exist only at block boundaries.
	b := nn.NewBuilder("res", nn.Options{}, 4, 8, 8)
	pre := b.Conv2D("pre", 4, 3, 1, 1, true)
	b.Conv2D("body", 4, 3, 1, 1, true)
	b.Add("join", pre, b.Current())
	b.ReLU("out")
	g := b.Build()
	cuts := partition.CutPoints(g)
	for _, c := range cuts {
		if c.After.Name == "body" {
			t.Fatal("cut inside residual block must be illegal")
		}
	}
	names := map[string]bool{}
	for _, c := range cuts {
		names[c.After.Name] = true
	}
	for _, want := range []string{"input", "pre", "join"} {
		if !names[want] {
			t.Errorf("expected legal cut after %q", want)
		}
	}
}

func TestResNetCutsAtBlockBoundaries(t *testing.T) {
	g := model.MustGet("ResNet-18").Build(nn.Options{})
	cuts := partition.CutPoints(g)
	if len(cuts) < 8 {
		t.Fatalf("ResNet-18 should admit at least its block boundaries, got %d", len(cuts))
	}
	for _, c := range cuts {
		// No cut may land inside a residual block, where the block input
		// is still live for the shortcut. Block-internal conv/bn names
		// contain "_a_" or "_b_".
		if strings.Contains(c.After.Name, "_a_") || strings.Contains(c.After.Name, "_b_conv") {
			t.Fatalf("cut after %s lands inside a residual block", c.After)
		}
	}
}

func TestNeurosurgeonPlanStructure(t *testing.T) {
	plan, err := partition.Neurosurgeon("ResNet-18", "RPi3", "PyTorch", "GTXTitanX", "PyTorch", partition.WiFi)
	if err != nil {
		t.Fatal(err)
	}
	if plan.AllEdge.TotalSec <= 0 || plan.AllCloud.TotalSec <= 0 {
		t.Fatal("degenerate placements must be priced")
	}
	if plan.Best.TotalSec > plan.AllEdge.TotalSec || plan.Best.TotalSec > plan.AllCloud.TotalSec {
		t.Fatal("best placement cannot lose to a degenerate one")
	}
	if len(plan.Evaluated) < 10 {
		t.Fatalf("only %d placements evaluated", len(plan.Evaluated))
	}
	// Every evaluated placement's total must be the sum of its parts.
	for _, p := range plan.Evaluated {
		if diff := p.TotalSec - (p.EdgeSec + p.TransferSec + p.RemoteSec); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("placement %q total inconsistent", p.CutAfter)
		}
	}
}

func TestNeurosurgeonLinkSensitivity(t *testing.T) {
	// Neurosurgeon's headline behaviour: on a fast link the cloud wins;
	// as the link degrades, computation moves toward the edge.
	fast, err := partition.Neurosurgeon("VGG16", "JetsonTX2", "PyTorch", "GTXTitanX", "PyTorch", partition.Ethernet)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := partition.Neurosurgeon("VGG16", "JetsonTX2", "PyTorch", "GTXTitanX", "PyTorch", partition.LTE)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Best.EdgeSec >= slow.Best.EdgeSec {
		t.Fatalf("edge share should grow as the link slows: ethernet edge %.3fs vs lte edge %.3fs",
			fast.Best.EdgeSec, slow.Best.EdgeSec)
	}
	// On Ethernet the giant GPU should pull (nearly) everything over.
	if fast.Best.TotalSec > fast.AllEdge.TotalSec {
		t.Fatal("offloading over ethernet must beat the TX2 alone for VGG16")
	}
	// On LTE, shipping even the input costs more than running locally.
	if slow.Best.CutAfter != "(all)" {
		t.Fatalf("LTE should keep VGG16 on the TX2, best cut = %q", slow.Best.CutAfter)
	}
	// The RPi, in contrast, is so slow that offloading wins even on LTE
	// (the paper's cloud-offload premise for weak devices).
	rpi, err := partition.Neurosurgeon("VGG16", "RPi3", "PyTorch", "GTXTitanX", "PyTorch", partition.LTE)
	if err != nil {
		t.Fatal(err)
	}
	if rpi.Best.TotalSec >= rpi.AllEdge.TotalSec {
		t.Fatal("offloading should beat the RPi even over LTE")
	}
}

func TestNeurosurgeonUnknownModel(t *testing.T) {
	if _, err := partition.Neurosurgeon("NoNet", "RPi3", "PyTorch", "Xeon", "PyTorch", partition.WiFi); err == nil {
		t.Fatal("unknown model should error")
	}
}

// TestSplitPreservesSemantics executes head and tail numerically and
// compares against the unsplit graph.
func TestSplitPreservesSemantics(t *testing.T) {
	b := nn.NewBuilder("sem", nn.Options{Materialize: true, Seed: 5}, 2, 8, 8)
	b.Conv2D("c1", 4, 3, 1, 1, true)
	b.ReLU("r1")
	b.MaxPool("p1", 2, 2, 0)
	b.Conv2D("c2", 6, 3, 1, 1, true)
	b.GlobalAvgPool("gap")
	b.Dense("fc", 5, true)
	b.Softmax("prob")
	g := b.Build()

	in := tensor.New(2, 8, 8).Randomize(stats.NewRNG(8), 1)
	want, err := (&graph.Executor{}).Run(g, in)
	if err != nil {
		t.Fatal(err)
	}

	for _, cut := range partition.CutPoints(g) {
		if cut.After.Kind == graph.OpInput {
			continue
		}
		head, tail, err := partition.Split(g, cut)
		if err != nil {
			t.Fatalf("cut %s: %v", cut.After.Name, err)
		}
		// Split keeps structure only; materialize from the source.
		partition.CopyParams(g, head, tail)
		mid, err := (&graph.Executor{}).Run(head, in.Clone())
		if err != nil {
			t.Fatalf("head at %s: %v", cut.After.Name, err)
		}
		got, err := (&graph.Executor{}).Run(tail, mid)
		if err != nil {
			t.Fatalf("tail at %s: %v", cut.After.Name, err)
		}
		for i := range want.Data {
			if d := want.Data[i] - got.Data[i]; d > 1e-5 || d < -1e-5 {
				t.Fatalf("cut %s changes output", cut.After.Name)
			}
		}
	}
}

// runChain executes the split parts in sequence, feeding each output
// into the next stage's bridge input.
func runChain(t *testing.T, parts []*graph.Graph, in *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	cur := in
	for _, p := range parts {
		out, err := (&graph.Executor{}).Run(p, cur)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		cur = out
	}
	return cur
}

// TestSplitNPreservesSemantics cuts a chain at two points and requires
// the three-stage execution to be bit-identical to the whole graph —
// the property the distributed pipeline's correctness rests on.
func TestSplitNPreservesSemantics(t *testing.T) {
	b := nn.NewBuilder("semN", nn.Options{Materialize: true, Seed: 7}, 2, 8, 8)
	b.Conv2D("c1", 4, 3, 1, 1, true)
	b.ReLU("r1")
	b.MaxPool("p1", 2, 2, 0)
	b.Conv2D("c2", 6, 3, 1, 1, true)
	b.ReLU("r2")
	b.GlobalAvgPool("gap")
	b.Dense("fc", 5, true)
	b.Softmax("prob")
	g := b.Build()

	in := tensor.New(2, 8, 8).Randomize(stats.NewRNG(9), 1)
	want, err := (&graph.Executor{}).Run(g, in)
	if err != nil {
		t.Fatal(err)
	}

	cuts := partition.CutPoints(g)
	if len(cuts) < 4 {
		t.Fatalf("chain admits only %d cuts", len(cuts))
	}
	parts, err := partition.SplitN(g, cuts[1], cuts[3])
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("SplitN returned %d parts, want 3", len(parts))
	}
	total := 0
	for _, p := range parts {
		if diags := verify.Check(p); len(verify.Errors(diags)) != 0 {
			t.Fatalf("%s not verify-clean: %v", p.Name, diags)
		}
		total += p.NumOps()
	}
	if total != g.NumOps() {
		t.Fatalf("stages carry %d ops, whole graph has %d", total, g.NumOps())
	}
	partition.CopyParams(g, parts...)
	got := runChain(t, parts, in.Clone())
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("3-stage output differs from whole graph at %d: %v vs %v",
				i, want.Data[i], got.Data[i])
		}
	}
}

// TestSplitNResidualBoundary splits a residual model exactly at a block
// boundary and checks numeric equivalence: inside the block two tensors
// are live, so CutPoints only offers the join, and SplitN must keep the
// shortcut edge intact within its stage.
func TestSplitNResidualBoundary(t *testing.T) {
	b := nn.NewBuilder("resN", nn.Options{Materialize: true, Seed: 3}, 4, 8, 8)
	pre := b.Conv2D("pre", 4, 3, 1, 1, true)
	b.Conv2D("body", 4, 3, 1, 1, true)
	b.Add("join", pre, b.Current())
	b.ReLU("mid")
	skip := b.Conv2D("skip", 4, 3, 1, 1, true)
	b.Conv2D("body2", 4, 3, 1, 1, true)
	b.Add("join2", skip, b.Current())
	b.GlobalAvgPool("gap")
	g := b.Build()

	var cuts []partition.CutPoint
	for _, c := range partition.CutPoints(g) {
		if c.After.Name == "mid" {
			cuts = append(cuts, c)
		}
	}
	if len(cuts) != 1 {
		t.Fatalf("expected one cut at the block boundary, got %d", len(cuts))
	}
	parts, err := partition.SplitN(g, cuts...)
	if err != nil {
		t.Fatal(err)
	}
	partition.CopyParams(g, parts...)

	in := tensor.New(4, 8, 8).Randomize(stats.NewRNG(4), 1)
	want, err := (&graph.Executor{}).Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	got := runChain(t, parts, in.Clone())
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatal("residual-boundary split changes the output")
		}
	}
}

// TestSplitNZooModels K-way-splits real zoo models (structural mode) at
// evenly spread cuts and requires every stage to be verify-clean with
// the op count conserved — residual/inverted-residual boundaries
// included.
func TestSplitNZooModels(t *testing.T) {
	for _, name := range []string{"MobileNet-v2", "ResNet-18", "CifarNet", "TinyYolo"} {
		t.Run(name, func(t *testing.T) {
			g := model.MustGet(name).Build(nn.Options{})
			cuts := partition.CutPoints(g)
			if len(cuts) < 3 {
				t.Fatalf("%s admits only %d cuts", name, len(cuts))
			}
			picked := []partition.CutPoint{cuts[len(cuts)/3], cuts[2*len(cuts)/3]}
			if picked[0].Index >= picked[1].Index {
				t.Skipf("spread cuts collide for %s", name)
			}
			parts, err := partition.SplitN(g, picked...)
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for _, p := range parts {
				if diags := verify.Check(p); len(verify.Errors(diags)) != 0 {
					t.Fatalf("%s not verify-clean: %v", p.Name, diags)
				}
				total += p.NumOps()
			}
			if total != g.NumOps() {
				t.Fatalf("stages carry %d ops, whole graph has %d", total, g.NumOps())
			}
			if !parts[0].Input.OutShape.Equal(g.Input.OutShape) {
				t.Fatal("stage 0 must keep the model input shape")
			}
		})
	}
}

// TestSplitNRejectsBadCuts pins the error paths: empty, disordered, and
// foreign cut lists must fail loudly instead of producing broken stages.
func TestSplitNRejectsBadCuts(t *testing.T) {
	b := nn.NewBuilder("bad", nn.Options{}, 2, 8, 8)
	b.Conv2D("c1", 4, 3, 1, 1, true)
	b.ReLU("r1")
	b.GlobalAvgPool("gap")
	g := b.Build()
	cuts := partition.CutPoints(g)
	if _, err := partition.SplitN(g); err == nil {
		t.Fatal("SplitN with no cuts should error")
	}
	if _, err := partition.SplitN(g, cuts[1], cuts[0]); err == nil {
		t.Fatal("disordered cuts should error")
	}
	if _, err := partition.SplitN(g, partition.CutPoint{After: g.Nodes[0], Index: 2}); err == nil {
		t.Fatal("a cut whose index does not match its node should error")
	}
	if _, err := partition.SplitN(g, partition.CutPoint{After: g.Output, Index: len(g.Nodes) - 1}); err == nil {
		t.Fatal("a cut after the output should error")
	}
}

// TestPipelinePlanCuts round-trips an analytic placement into
// executable stage subgraphs: the plan's stage boundaries must resolve
// to legal cut points and SplitN must accept them.
func TestPipelinePlanCuts(t *testing.T) {
	plan, err := partition.PipelinePartition("MobileNet-v2",
		[]string{"JetsonNano", "JetsonNano", "JetsonNano"}, "TFLite", partition.Ethernet)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Stages) != 3 {
		t.Fatalf("plan has %d stages, want 3", len(plan.Stages))
	}
	g := model.MustGet("MobileNet-v2").Build(nn.Options{})
	cuts, err := plan.Cuts(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 2 {
		t.Fatalf("plan yields %d cuts, want 2", len(cuts))
	}
	parts, err := partition.SplitN(g, cuts...)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		if p.NumOps() == 0 {
			t.Fatalf("stage %d is empty", i)
		}
		if got, want := parts[i].Nodes[len(parts[i].Nodes)-1].Name, plan.Stages[i].LastOp; got != want {
			t.Fatalf("stage %d ends at %s, plan says %s", i, got, want)
		}
	}
}
