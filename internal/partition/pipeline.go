package partition

import (
	"fmt"
	"math"

	"edgebench/internal/core"
	"edgebench/internal/graph"
	"edgebench/internal/model"
	"edgebench/internal/nn"
)

// Pipelined model parallelism across a chain of edge devices — the
// paper authors' own research line (§VIII: "Hadidi et al. investigate
// the distribution of DNN models for single-batch inferences with
// model-parallelism methods, deploying distributed systems in robots
// and IoT devices"). The model splits into K consecutive stages, one
// per device; on a steady stream of inputs the stages overlap, so
// throughput is set by the bottleneck stage while single-frame latency
// is the sum of the chain.

// PipelineStage is one device's share of the model.
type PipelineStage struct {
	Device string
	// FirstOp and LastOp name the stage's node range.
	FirstOp, LastOp string
	// ComputeSec is the stage's execution time on its device.
	ComputeSec float64
	// TransferSec ships the stage boundary activation to the next
	// device (zero for the last stage).
	TransferSec   float64
	TransferBytes float64
}

// PipelinePlan is a full K-way placement.
type PipelinePlan struct {
	Model  string
	Link   Link
	Stages []PipelineStage
	// LatencySec is one frame's end-to-end time through the chain.
	LatencySec float64
	// BottleneckSec is the slowest stage (compute + outbound transfer);
	// steady-state throughput is its reciprocal.
	BottleneckSec float64
	// SingleDeviceSec is the best single device's time, for speedup
	// comparison.
	SingleDeviceSec float64
}

// ThroughputPerSec returns the pipeline's steady-state frame rate.
func (p *PipelinePlan) ThroughputPerSec() float64 {
	if p.BottleneckSec <= 0 {
		return 0
	}
	return 1 / p.BottleneckSec
}

// ThroughputSpeedup compares pipeline throughput against the best
// single device running the whole model.
func (p *PipelinePlan) ThroughputSpeedup() float64 {
	if p.SingleDeviceSec <= 0 {
		return 0
	}
	return p.SingleDeviceSec / p.BottleneckSec
}

// Cuts maps the plan's stage boundaries back onto g's legal cut points,
// in stage order — the input SplitN needs to turn an analytic placement
// into executable stage subgraphs. g must be built from the same model
// the plan was computed for (node names are the join key).
func (p *PipelinePlan) Cuts(g *graph.Graph) ([]CutPoint, error) {
	all := CutPoints(g)
	byName := make(map[string]CutPoint, len(all))
	for _, c := range all {
		byName[c.After.Name] = c
	}
	var cuts []CutPoint
	for i, st := range p.Stages {
		if i == len(p.Stages)-1 {
			break // the last stage ends at the graph output, not a cut
		}
		c, ok := byName[st.LastOp]
		if !ok {
			return nil, fmt.Errorf("partition: plan stage %d ends at %q, which is not a cut point of %s",
				i, st.LastOp, g.Name)
		}
		cuts = append(cuts, c)
	}
	return cuts, nil
}

// PipelinePartition splits modelName across the ordered device chain
// (all running framework fw, linked pairwise by link), choosing cuts
// that minimize the bottleneck stage — the throughput-optimal objective
// of the collaborative-IoT line. It returns an error when the chain
// cannot be filled (fewer legal cuts than devices need).
func PipelinePartition(modelName string, devices []string, fw string, link Link) (*PipelinePlan, error) {
	if len(devices) == 0 {
		return nil, fmt.Errorf("partition: empty device chain")
	}
	spec, ok := model.Get(modelName)
	if !ok {
		return nil, fmt.Errorf("partition: unknown model %q", modelName)
	}
	g := spec.Build(nn.Options{})
	cuts := CutPoints(g)
	if len(cuts) < len(devices)-1 {
		return nil, fmt.Errorf("partition: %s admits %d cuts, cannot fill %d devices",
			modelName, len(cuts), len(devices))
	}

	// Per-device prefix sums of layer time over node positions, plus
	// per-stage session overhead.
	type devCost struct {
		prefix  []float64 // prefix[i] = time of nodes [0..i)
		session float64
	}
	costs := make([]devCost, len(devices))
	for di, dev := range devices {
		s, err := core.NewFromGraph(g, fw, dev)
		if err != nil {
			return nil, err
		}
		lts := s.LayerTimes()
		// LayerTimes skips input nodes; rebuild alignment with g.Nodes.
		prefix := make([]float64, len(g.Nodes)+1)
		k := 0
		for i, n := range g.Nodes {
			t := 0.0
			if n.Kind != graph.OpInput {
				t = lts[k].Seconds
				k++
			}
			prefix[i+1] = prefix[i] + t
		}
		costs[di] = devCost{prefix: prefix, session: s.InferenceSeconds() - prefix[len(g.Nodes)]}
	}
	seg := func(di, from, to int) float64 { // nodes [from, to)
		c := costs[di]
		return c.prefix[to] - c.prefix[from] + c.session
	}

	// Boundary positions: after cut.Index (exclusive end = Index+1),
	// plus the chain end.
	type boundary struct {
		pos   int // exclusive node end of a stage
		bytes float64
		name  string
	}
	var bounds []boundary
	for _, c := range cuts {
		bounds = append(bounds, boundary{pos: c.Index + 1, bytes: c.TransferBytes, name: c.After.Name})
	}
	bounds = append(bounds, boundary{pos: len(g.Nodes), name: g.Output.Name})

	// DP over (boundary index, device index): dp = minimal bottleneck
	// finishing stage d exactly at boundary b.
	K := len(devices)
	B := len(bounds)
	inf := math.Inf(1)
	dp := make([][]float64, B)
	from := make([][]int, B)
	for i := range dp {
		dp[i] = make([]float64, K)
		from[i] = make([]int, K)
		for j := range dp[i] {
			dp[i][j] = inf
			from[i][j] = -1
		}
	}
	stageCost := func(d, start, b int) float64 {
		t := seg(d, start, bounds[b].pos)
		if d < K-1 { // outbound transfer except for the last device
			t += link.TransferSec(bounds[b].bytes)
		}
		return t
	}
	for b := 0; b < B; b++ {
		dp[b][0] = stageCost(0, 0, b)
	}
	for d := 1; d < K; d++ {
		for b := d; b < B; b++ {
			for pb := d - 1; pb < b; pb++ {
				if math.IsInf(dp[pb][d-1], 1) {
					continue
				}
				cand := math.Max(dp[pb][d-1], stageCost(d, bounds[pb].pos, b))
				if cand < dp[b][d] {
					dp[b][d] = cand
					from[b][d] = pb
				}
			}
		}
	}
	if math.IsInf(dp[B-1][K-1], 1) {
		return nil, fmt.Errorf("partition: no feasible %d-way split", K)
	}

	// Reconstruct stage boundaries.
	ends := make([]int, K)
	b := B - 1
	for d := K - 1; d >= 0; d-- {
		ends[d] = b
		b = from[b][d]
	}
	plan := &PipelinePlan{Model: modelName, Link: link, BottleneckSec: dp[B-1][K-1]}
	start := 0
	var latency float64
	for d := 0; d < K; d++ {
		bd := bounds[ends[d]]
		compute := seg(d, start, bd.pos)
		var xfer, bytes float64
		if d < K-1 {
			xfer = link.TransferSec(bd.bytes)
			bytes = bd.bytes
		}
		plan.Stages = append(plan.Stages, PipelineStage{
			Device:        devices[d],
			FirstOp:       g.Nodes[start].Name,
			LastOp:        g.Nodes[bd.pos-1].Name,
			ComputeSec:    compute,
			TransferSec:   xfer,
			TransferBytes: bytes,
		})
		latency += compute + xfer
		start = bd.pos
	}
	plan.LatencySec = latency

	best := inf
	for di := range devices {
		if t := seg(di, 0, len(g.Nodes)); t < best {
			best = t
		}
	}
	plan.SingleDeviceSec = best
	return plan, nil
}
