package partition_test

import (
	"math"
	"testing"

	"edgebench/internal/partition"
)

func TestPipelineSingleDeviceDegenerates(t *testing.T) {
	plan, err := partition.PipelinePartition("ResNet-18", []string{"RPi3"}, "TFLite", partition.WiFi)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Stages) != 1 {
		t.Fatalf("stages = %d", len(plan.Stages))
	}
	if plan.Stages[0].TransferSec != 0 {
		t.Fatal("single stage has nothing to transfer")
	}
	if math.Abs(plan.LatencySec-plan.BottleneckSec) > 1e-12 {
		t.Fatal("one stage: latency == bottleneck")
	}
	if math.Abs(plan.ThroughputSpeedup()-1) > 1e-9 {
		t.Fatalf("single-device speedup = %v, want 1", plan.ThroughputSpeedup())
	}
}

func TestPipelineThroughputScalesAcrossRPis(t *testing.T) {
	// The collaborative-IoT result: several RPis pipelining a model
	// sustain a higher frame rate than one RPi, at some latency cost.
	devices := []string{"RPi3", "RPi3", "RPi3", "RPi3"}
	plan, err := partition.PipelinePartition("VGG-S", devices, "TensorFlow", partition.Ethernet)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Stages) != 4 {
		t.Fatalf("stages = %d", len(plan.Stages))
	}
	sp := plan.ThroughputSpeedup()
	if sp < 1.7 || sp > 4 {
		t.Fatalf("4-way pipeline throughput speedup = %.2fx, expected ~2-4x", sp)
	}
	// Latency exceeds the single device (extra hops) but throughput wins.
	if plan.LatencySec < plan.SingleDeviceSec {
		t.Log("note: pipeline latency happens to beat single device (session amortization)")
	}
	if plan.BottleneckSec >= plan.SingleDeviceSec {
		t.Fatal("bottleneck stage must undercut whole-model time")
	}
}

func TestPipelineHeterogeneousChain(t *testing.T) {
	// A weak-then-strong chain must push most work onto the strong
	// device.
	plan, err := partition.PipelinePartition("ResNet-50", []string{"RPi3", "JetsonTX2"}, "PyTorch", partition.Ethernet)
	if err != nil {
		t.Fatal(err)
	}
	rpi, tx2 := plan.Stages[0], plan.Stages[1]
	if rpi.Device != "RPi3" || tx2.Device != "JetsonTX2" {
		t.Fatal("stage order must follow the chain")
	}
	// The RPi is ~100x slower per FLOP, so the balanced split gives it a
	// tiny prefix.
	if rpi.ComputeSec > plan.BottleneckSec+1e-9 {
		t.Fatal("bottleneck bookkeeping wrong")
	}
	if tx2.ComputeSec <= rpi.ComputeSec {
		t.Log("note: RPi stage is tiny (expected); TX2 carries the model")
	}
	// Stage boundaries must tile the model.
	if rpi.FirstOp != "input" || tx2.LastOp != "prob" {
		t.Fatalf("stages do not tile: %q..%q | %q..%q",
			rpi.FirstOp, rpi.LastOp, tx2.FirstOp, tx2.LastOp)
	}
}

func TestPipelineSlowLinkHurts(t *testing.T) {
	devs := []string{"RPi3", "RPi3"}
	eth, err := partition.PipelinePartition("ResNet-18", devs, "TFLite", partition.Ethernet)
	if err != nil {
		t.Fatal(err)
	}
	lte, err := partition.PipelinePartition("ResNet-18", devs, "TFLite", partition.LTE)
	if err != nil {
		t.Fatal(err)
	}
	if lte.BottleneckSec <= eth.BottleneckSec {
		t.Fatal("a slower link cannot improve the bottleneck")
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, err := partition.PipelinePartition("ResNet-18", nil, "TFLite", partition.WiFi); err == nil {
		t.Fatal("empty chain should error")
	}
	if _, err := partition.PipelinePartition("NoNet", []string{"RPi3"}, "TFLite", partition.WiFi); err == nil {
		t.Fatal("unknown model should error")
	}
	// More devices than cut points: a tiny chain model.
	many := make([]string, 64)
	for i := range many {
		many[i] = "RPi3"
	}
	if _, err := partition.PipelinePartition("CifarNet", many, "TensorFlow", partition.WiFi); err == nil {
		t.Fatal("over-long chain should error")
	}
}
