package partition_test

import (
	"fmt"

	"edgebench/internal/partition"
)

// ExampleNeurosurgeon reproduces the planner's classic AlexNet-over-LTE
// result: the optimal placement is a genuine mid-network split.
func ExampleNeurosurgeon() {
	plan, err := partition.Neurosurgeon("AlexNet", "RPi3", "PyTorch", "GTXTitanX", "PyTorch", partition.LTE)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("best cut: %s\n", plan.Best.CutAfter)
	fmt.Printf("ships %.0f KB instead of the %.0f KB input\n",
		plan.Best.TransferBytes/1024, plan.AllCloud.TransferBytes/1024)
	// Output:
	// best cut: pool1
	// ships 273 KB instead of the 588 KB input
}

// ExamplePipelinePartition splits a model across two Raspberry Pis,
// doubling throughput at some latency cost.
func ExamplePipelinePartition() {
	plan, err := partition.PipelinePartition("VGG-S", []string{"RPi3", "RPi3"}, "TensorFlow", partition.Ethernet)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d stages, throughput speedup %.2fx\n", len(plan.Stages), plan.ThroughputSpeedup())
	// Output:
	// 2 stages, throughput speedup 1.78x
}
