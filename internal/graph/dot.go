package graph

import (
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz format for inspection and
// documentation: one box per op annotated with shape and parameter
// count, fused activations and folded batch-norms marked, edges
// following dataflow.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", g.Name)
	for _, n := range g.Nodes {
		// The op line shows the whole absorbed chain (e.g. conv2d+bn+relu6)
		// so a fused node reads as the ops it executes, whether the BN was
		// folded into weights (FoldBN) or kept as a runtime epilogue
		// (FusePatterns).
		kind := n.Kind.String()
		if n.FusedBN || n.EpiChannels > 0 {
			kind += "+bn"
		}
		if n.Activation != 0 {
			kind += "+" + n.Activation.String()
		}
		label := fmt.Sprintf("%s\\n%s %v", n.Name, kind, []int(n.OutShape))
		if p := n.ParamCount(); p > 0 {
			label += fmt.Sprintf("\\n%d params", p)
		}
		var marks []string
		if n.Sparsity > 0 {
			marks = append(marks, fmt.Sprintf("%.0f%% sparse", n.Sparsity*100))
		}
		if len(marks) > 0 {
			label += "\\n[" + strings.Join(marks, " ") + "]"
		}
		attrs := fmt.Sprintf("label=\"%s\"", label)
		switch {
		case n.Kind == OpInput:
			attrs += ", style=filled, fillcolor=lightblue"
		case n == g.Output || isExtra(g, n):
			attrs += ", style=filled, fillcolor=lightyellow"
		case n.Kind.HasWeights():
			attrs += ", style=filled, fillcolor=whitesmoke"
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", n.ID, attrs)
		for _, in := range n.Inputs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", in.ID, n.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func isExtra(g *Graph, n *Node) bool {
	for _, x := range g.Extra {
		if x == n {
			return true
		}
	}
	return false
}
