package graph

import (
	"fmt"

	"edgebench/internal/tensor"
)

// Attrs carries the scalar attributes of an operation. Zero values mean
// "default" (stride 1, no padding).
type Attrs struct {
	Kernel  int     // pooling kernel size (convs derive it from weights)
	KernelD int     // temporal pooling kernel for 3-D pools (0 = Kernel)
	Stride  int     // spatial stride
	StrideD int     // temporal stride for 3-D pools (0 = StrideD follows kernel)
	Pad     int     // spatial zero padding (both axes)
	PadH    int     // per-axis padding override (with Asym)
	PadW    int     // per-axis padding override (with Asym)
	Asym    bool    // PadH/PadW are authoritative
	Groups  int     // conv channel groups (0/1 = dense conv; AlexNet uses 2)
	Factor  int     // upsample factor
	Alpha   float32 // LeakyReLU negative slope
}

// ConvSpec translates the attrs into a tensor convolution spec.
func (a Attrs) ConvSpec() tensor.Conv2DSpec {
	return tensor.Conv2DSpec{Stride: a.Stride, Pad: a.Pad, PadH: a.PadH, PadW: a.PadW, Asym: a.Asym}
}

// Pool3DSpec translates the attrs into a tensor 3-D pooling spec.
func (a Attrs) Pool3DSpec() tensor.Pool3DSpec {
	kd := a.KernelD
	if kd == 0 {
		kd = a.Kernel
	}
	return tensor.Pool3DSpec{
		KernelD: kd, Kernel: a.Kernel,
		StrideD: a.StrideD, Stride: a.Stride,
		PadSpatial: a.Pad,
	}
}

// GroupCount returns the effective group count (at least 1).
func (a Attrs) GroupCount() int {
	if a.Groups <= 1 {
		return 1
	}
	return a.Groups
}

// LeakySlope returns the effective LeakyReLU negative slope: Alpha when
// set, else the DarkNet default 0.1. Centralizing the default keeps the
// forward and backward paths agreeing and avoids sentinel float
// comparisons at use sites (edgelint's float-eq rule).
func (a Attrs) LeakySlope() float32 {
	if a.Alpha > 0 {
		return a.Alpha
	}
	return 0.1
}

// BNParams holds frozen batch-normalization statistics and affine terms.
type BNParams struct {
	Gamma, Beta, Mean, Variance []float32
	Eps                         float32
}

// Clone returns a deep copy of the parameters.
func (p *BNParams) Clone() *BNParams {
	if p == nil {
		return nil
	}
	return &BNParams{
		Gamma:    append([]float32(nil), p.Gamma...),
		Beta:     append([]float32(nil), p.Beta...),
		Mean:     append([]float32(nil), p.Mean...),
		Variance: append([]float32(nil), p.Variance...),
		Eps:      p.Eps,
	}
}

// Node is one operation in a computation graph.
//
// Parameters have two layers: the *structural* description (WShape,
// BiasLen, BNChannels) always present so cost/FLOP accounting works on
// arbitrarily large models without allocating gigabytes, and the
// *materialized* values (Weights, Bias, BN) present only when the graph
// will be executed numerically. The paper's largest models (VGG16: 138 M
// parameters) are used in timing/cost experiments only, exactly as the
// paper uses randomized weights as a performance proxy (§VI-A fn.4).
type Node struct {
	ID     int
	Name   string
	Kind   OpKind
	Inputs []*Node
	Attrs  Attrs

	// Structural parameter description.
	WShape     tensor.Shape // weight tensor shape; nil if the op has none
	BiasLen    int          // number of bias parameters
	BNChannels int          // batch-norm channels (4 parameters each)

	// Materialized parameter values (may be nil on structural graphs).
	Weights *tensor.Tensor
	Bias    []float32
	BN      *BNParams

	// QWeights holds real int8 weights after a quantization pass. When
	// set, the executor dispatches the node to the int8 kernels (with
	// dynamic activation quantization); Weights keeps the dequantized
	// shadow so verification, cloning, and the FP32 fallback still work.
	QWeights *tensor.QTensor

	// Packed caches the node's FP32 conv weights in the blocked-panel
	// layout the GEMM microkernels consume, built once at session open by
	// PrepackWeights (the opt prepack pass / serving.NewEngine). When set,
	// the executor skips the per-call packPanel work via the
	// tensor.GemmPrepacked entry points — bitwise identical to the
	// unpacked im2col+GEMM lowering. PackedQ is the int8 twin covering
	// quantized Conv2D and Dense weights. Both are immutable once built;
	// passes that rewrite Weights/QWeights must clear them (stale panels
	// would silently compute with the old values — the verifier's
	// packed-shape rule backstops this).
	Packed  *tensor.PackedWeights
	PackedQ *tensor.PackedQWeights

	// OutShape is the inferred output shape.
	OutShape tensor.Shape

	// DType is the execution datatype. Quantization/FP16 passes set it;
	// the analytic cost model reads it.
	DType tensor.DType

	// Activation, when non-zero, is an activation fused into this node by
	// the fusion pass (executed after the node's main computation).
	Activation OpKind

	// FusedBN records that a batch-norm was folded into this node, so
	// profiling can attribute the saved op.
	FusedBN bool

	// EpiChannels, when non-zero, records a batch-norm absorbed into this
	// node as a per-channel affine epilogue by the pattern-fusion pass
	// (opt.FusePatterns). Unlike FoldBN, which rewrites the weights (and
	// so perturbs numerics), the epilogue executes at runtime inside the
	// fused kernel — bitwise identical to the separate BatchNorm node.
	// EpiChannels is the structural description; EpiScale/EpiShift are the
	// materialized per-channel terms (scale = gamma/sqrt(var+eps),
	// shift = beta - mean*scale), nil on structural graphs.
	EpiChannels int
	// EpiScale and EpiShift hold the materialized epilogue affine terms,
	// each of length EpiChannels.
	EpiScale, EpiShift []float32

	// Sparsity is the fraction of zero weights after pruning, in [0, 1].
	Sparsity float64
}

// String renders the node as "#ID name(kind)->shape" for diagnostics.
func (n *Node) String() string {
	return fmt.Sprintf("#%d %s(%s)->%v", n.ID, n.Name, n.Kind, n.OutShape)
}

// ParamCount returns the number of learned parameters the node carries.
func (n *Node) ParamCount() int64 {
	var p int64
	if n.WShape != nil {
		p += int64(n.WShape.NumElems())
	}
	p += int64(n.BiasLen)
	p += 4 * int64(n.BNChannels)
	p += 2 * int64(n.EpiChannels)
	return p
}

// WeightBytes returns the storage footprint of the node's parameters in
// the node's execution datatype.
func (n *Node) WeightBytes() int64 {
	return n.ParamCount() * int64(n.DType.Bytes())
}

// Materialized reports whether the node's parameter values are allocated
// (a requirement for numeric execution).
func (n *Node) Materialized() bool {
	if n.WShape != nil && n.Weights == nil {
		return false
	}
	if n.BiasLen > 0 && n.Bias == nil {
		return false
	}
	if n.BNChannels > 0 && n.BN == nil {
		return false
	}
	if n.EpiChannels > 0 && (n.EpiScale == nil || n.EpiShift == nil) {
		return false
	}
	return true
}

func (n *Node) in(i int) *Node {
	if i >= len(n.Inputs) {
		panic(fmt.Sprintf("graph: node %s missing input %d", n, i))
	}
	return n.Inputs[i]
}
