package graph

import (
	"fmt"

	"edgebench/internal/tensor"
)

// Mode distinguishes the two graph-construction disciplines the paper
// contrasts (§III, Table II "Dynamic Graph" row).
type Mode int

const (
	// Static graphs are built once, frozen, optimized offline, and reused
	// across inferences (TensorFlow, TFLite, Caffe, TensorRT after build).
	Static Mode = iota
	// Dynamic graphs are constructed, used, and freed per inference
	// (PyTorch define-by-run). They pay per-op dispatch each run but can
	// execute models that exceed device memory by freeing intermediates.
	Dynamic
)

func (m Mode) String() string {
	if m == Dynamic {
		return "dynamic"
	}
	return "static"
}

// Graph is a single-input, single-output computation DAG. Nodes is kept
// in topological order by construction (every node is appended after its
// inputs).
type Graph struct {
	Name   string
	Nodes  []*Node
	Input  *Node
	Output *Node
	// Extra holds additional graph outputs beyond Output — detection
	// models (YOLOv3, SSD) emit one tensor per scale/head. Liveness
	// analysis (dead-code elimination, dynamic-mode memory release)
	// treats them as roots.
	Extra []*Node
	Mode  Mode

	// Frozen marks a static graph as deployment-ready: variables have
	// been converted to constants and no further building is allowed
	// (TFLite's "freezing the computation graph", §III-A).
	Frozen bool

	nextID int
}

// New creates an empty graph with an input node of the given shape.
func New(name string, inputShape ...int) *Graph {
	g := &Graph{Name: name}
	in := &Node{Kind: OpInput, Name: "input", OutShape: tensor.Shape(inputShape).Clone()}
	g.add(in)
	g.Input = in
	g.Output = in
	return g
}

func (g *Graph) add(n *Node) *Node {
	if g.Frozen {
		panic("graph: cannot add nodes to a frozen graph")
	}
	n.ID = g.nextID
	g.nextID++
	if n.Name == "" {
		n.Name = fmt.Sprintf("%s_%d", n.Kind, n.ID)
	}
	g.Nodes = append(g.Nodes, n)
	g.Output = n
	return n
}

// Add appends a node computing kind over the given inputs, infers its
// output shape, and returns it. Weight-bearing ops must have Weights set
// before Add via the With* option funcs on Node, so model builders use the
// helper constructors below instead.
func (g *Graph) Add(n *Node) *Node {
	if len(n.Inputs) == 0 && n.Kind != OpInput {
		n.Inputs = []*Node{g.Output}
	}
	n.OutShape = InferShape(n)
	return g.add(n)
}

// Freeze marks the graph as deployment-ready. Further structural changes
// panic. Freezing an already frozen graph is a no-op.
func (g *Graph) Freeze() { g.Frozen = true }

// NumOps returns the count of non-input nodes (the per-inference dispatch
// count in the cost model).
func (g *Graph) NumOps() int {
	n := 0
	for _, node := range g.Nodes {
		if node.Kind != OpInput {
			n++
		}
	}
	return n
}

// Params returns the total learned-parameter count.
func (g *Graph) Params() int64 {
	var p int64
	for _, n := range g.Nodes {
		p += n.ParamCount()
	}
	return p
}

// Validate checks structural invariants: topological order, input arity,
// and shape consistency. It returns the first violation found.
func (g *Graph) Validate() error {
	seen := make(map[*Node]bool, len(g.Nodes))
	ids := make(map[int]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		if ids[n.ID] {
			return fmt.Errorf("graph %s: duplicate node id %d", g.Name, n.ID)
		}
		ids[n.ID] = true
		for _, in := range n.Inputs {
			if !seen[in] {
				return fmt.Errorf("graph %s: node %s uses input %s before definition", g.Name, n, in)
			}
		}
		if want := arity(n.Kind); want >= 0 && len(n.Inputs) != want {
			return fmt.Errorf("graph %s: node %s has %d inputs, want %d", g.Name, n, len(n.Inputs), want)
		}
		if n.Kind != OpInput {
			inferred := InferShape(n)
			if !inferred.Equal(n.OutShape) {
				return fmt.Errorf("graph %s: node %s shape %v, inferred %v", g.Name, n, n.OutShape, inferred)
			}
		}
		seen[n] = true
	}
	if g.Output == nil || !seen[g.Output] {
		return fmt.Errorf("graph %s: output node not in graph", g.Name)
	}
	for _, x := range g.Extra {
		if !seen[x] {
			return fmt.Errorf("graph %s: extra output %s not in graph", g.Name, x)
		}
	}
	return nil
}

// Roots returns all output nodes (primary plus extras).
func (g *Graph) Roots() []*Node {
	return append([]*Node{g.Output}, g.Extra...)
}

// arity returns the required input count for an op kind, or -1 for
// variadic ops.
func arity(k OpKind) int {
	switch k {
	case OpInput:
		return 0
	case OpAdd:
		return 2
	case OpConcat:
		return -1
	default:
		return 1
	}
}

// Clone returns a structurally independent copy of the graph. Weight
// tensors are deep-copied so optimization passes on the clone do not
// disturb the original (frameworks each lower the same model).
func (g *Graph) Clone() *Graph {
	mapping := make(map[*Node]*Node, len(g.Nodes))
	out := &Graph{Name: g.Name, Mode: g.Mode, Frozen: false, nextID: g.nextID}
	for _, n := range g.Nodes {
		cp := &Node{
			ID:         n.ID,
			Name:       n.Name,
			Kind:       n.Kind,
			Attrs:      n.Attrs,
			WShape:     n.WShape.Clone(),
			BiasLen:    n.BiasLen,
			BNChannels: n.BNChannels,
			OutShape:   n.OutShape.Clone(),
			DType:      n.DType,
			Activation: n.Activation,
			FusedBN:    n.FusedBN,
			Sparsity:   n.Sparsity,
			BN:         n.BN.Clone(),
		}
		if n.Weights != nil {
			cp.Weights = n.Weights.Clone()
		}
		if n.Bias != nil {
			cp.Bias = append([]float32(nil), n.Bias...)
		}
		for _, in := range n.Inputs {
			cp.Inputs = append(cp.Inputs, mapping[in])
		}
		mapping[n] = cp
		out.Nodes = append(out.Nodes, cp)
	}
	out.Input = mapping[g.Input]
	out.Output = mapping[g.Output]
	for _, x := range g.Extra {
		out.Extra = append(out.Extra, mapping[x])
	}
	return out
}

// InferShape computes a node's output shape from its inputs and
// attributes. It panics on inconsistent structure, which Validate converts
// into errors during graph checking.
func InferShape(n *Node) tensor.Shape {
	switch n.Kind {
	case OpInput:
		return n.OutShape
	case OpConv2D:
		in := n.in(0).OutShape
		w := n.WShape
		h, wd := n.Attrs.ConvSpec().OutDims(in[1], in[2], w[2], w[3])
		return tensor.Shape{w[0], h, wd}
	case OpDepthwiseConv2D:
		in := n.in(0).OutShape
		w := n.WShape
		h, wd := n.Attrs.ConvSpec().OutDims(in[1], in[2], w[1], w[2])
		return tensor.Shape{in[0], h, wd}
	case OpConv3D:
		in := n.in(0).OutShape
		w := n.WShape
		spec := tensor.Conv3DSpec{Stride: n.Attrs.Stride, Pad: n.Attrs.Pad}
		return tensor.Shape{w[0], spec.OutDim(in[1], w[2]), spec.OutDim(in[2], w[3]), spec.OutDim(in[3], w[4])}
	case OpDense:
		return tensor.Shape{n.WShape[0]}
	case OpLSTM:
		in := n.in(0).OutShape
		hidden := n.WShape[0] / 4
		if len(in) != 2 || n.WShape[1] != in[1]+hidden {
			panic(fmt.Sprintf("graph: LSTM weights %v incompatible with input %v", n.WShape, in))
		}
		return tensor.Shape{hidden}
	case OpMaxPool2D, OpAvgPool2D:
		in := n.in(0).OutShape
		spec := tensor.PoolSpec{Kernel: n.Attrs.Kernel, Stride: n.Attrs.Stride, Pad: n.Attrs.Pad}
		return tensor.Shape{in[0], spec.OutDim(in[1]), spec.OutDim(in[2])}
	case OpMaxPool3D:
		in := n.in(0).OutShape
		d, h, w := n.Attrs.Pool3DSpec().OutDims(in[1], in[2], in[3])
		return tensor.Shape{in[0], d, h, w}
	case OpUpsample:
		in := n.in(0).OutShape
		f := n.Attrs.Factor
		if f < 1 {
			f = 1
		}
		return tensor.Shape{in[0], in[1] * f, in[2] * f}
	case OpGlobalAvgPool:
		return tensor.Shape{n.in(0).OutShape[0]}
	case OpFlatten:
		return tensor.Shape{n.in(0).OutShape.NumElems()}
	case OpAdd:
		a, b := n.in(0).OutShape, n.in(1).OutShape
		if !a.Equal(b) {
			panic(fmt.Sprintf("graph: add shape mismatch %v vs %v", a, b))
		}
		return a.Clone()
	case OpConcat:
		first := n.in(0).OutShape
		c := 0
		for _, in := range n.Inputs {
			s := in.OutShape
			if len(s) != 3 || s[1] != first[1] || s[2] != first[2] {
				panic(fmt.Sprintf("graph: concat spatial mismatch %v vs %v", s, first))
			}
			c += s[0]
		}
		return tensor.Shape{c, first[1], first[2]}
	case OpPad:
		in := n.in(0).OutShape
		p := n.Attrs.Pad
		return tensor.Shape{in[0], in[1] + 2*p, in[2] + 2*p}
	case OpBatchNorm, OpReLU, OpReLU6, OpLeakyReLU, OpSigmoid, OpTanh, OpSoftmax:
		return n.in(0).OutShape.Clone()
	case OpShuffle:
		in := n.in(0).OutShape
		if g := n.Attrs.GroupCount(); in[0]%g != 0 {
			panic(fmt.Sprintf("graph: shuffle groups %d do not divide channels %d", g, in[0]))
		}
		return in.Clone()
	default:
		panic(fmt.Sprintf("graph: cannot infer shape for op %v", n.Kind))
	}
}
