package graph

import (
	"fmt"

	"edgebench/internal/tensor"
)

// Mode distinguishes the two graph-construction disciplines the paper
// contrasts (§III, Table II "Dynamic Graph" row).
type Mode int

const (
	// Static graphs are built once, frozen, optimized offline, and reused
	// across inferences (TensorFlow, TFLite, Caffe, TensorRT after build).
	Static Mode = iota
	// Dynamic graphs are constructed, used, and freed per inference
	// (PyTorch define-by-run). They pay per-op dispatch each run but can
	// execute models that exceed device memory by freeing intermediates.
	Dynamic
)

// String names the execution mode.
func (m Mode) String() string {
	if m == Dynamic {
		return "dynamic"
	}
	return "static"
}

// Graph is a single-input, single-output computation DAG. Nodes is kept
// in topological order by construction (every node is appended after its
// inputs).
type Graph struct {
	Name   string
	Nodes  []*Node
	Input  *Node
	Output *Node
	// Extra holds additional graph outputs beyond Output — detection
	// models (YOLOv3, SSD) emit one tensor per scale/head. Liveness
	// analysis (dead-code elimination, dynamic-mode memory release)
	// treats them as roots.
	Extra []*Node
	Mode  Mode

	// Frozen marks a static graph as deployment-ready: variables have
	// been converted to constants and no further building is allowed
	// (TFLite's "freezing the computation graph", §III-A).
	Frozen bool

	nextID int
}

// New creates an empty graph with an input node of the given shape.
func New(name string, inputShape ...int) *Graph {
	g := &Graph{Name: name}
	in := &Node{Kind: OpInput, Name: "input", OutShape: tensor.Shape(inputShape).Clone()}
	g.add(in)
	g.Input = in
	g.Output = in
	return g
}

func (g *Graph) add(n *Node) *Node {
	g.Append(n)
	g.Output = n
	return n
}

// Add appends a node computing kind over the given inputs, infers its
// output shape, and returns it. Weight-bearing ops must have Weights set
// before Add via the With* option funcs on Node, so model builders use the
// helper constructors below instead.
func (g *Graph) Add(n *Node) *Node {
	if len(n.Inputs) == 0 && n.Kind != OpInput {
		n.Inputs = []*Node{g.Output}
	}
	n.OutShape = InferShape(n)
	return g.add(n)
}

// Freeze marks the graph as deployment-ready. Further structural changes
// panic. Freezing an already frozen graph is a no-op.
func (g *Graph) Freeze() { g.Frozen = true }

// Append appends a fully-formed node without shape inference or output
// rewiring — the entry point for deserializers and graph surgery outside
// this package (which must not mutate Nodes directly; edgelint's
// nodes-mut rule enforces that). The caller is responsible for
// topological placement and for setting Input/Output/Extra; Validate and
// verify.Check enforce the result. The node receives the next free ID,
// and an empty name defaults to kind_id.
func (g *Graph) Append(n *Node) *Node {
	if g.Frozen {
		panic("graph: cannot append nodes to a frozen graph")
	}
	n.ID = g.nextID
	g.nextID++
	if n.Name == "" {
		n.Name = fmt.Sprintf("%s_%d", n.Kind, n.ID)
	}
	g.Nodes = append(g.Nodes, n)
	return n
}

// NumOps returns the count of non-input nodes (the per-inference dispatch
// count in the cost model).
func (g *Graph) NumOps() int {
	n := 0
	for _, node := range g.Nodes {
		if node.Kind != OpInput {
			n++
		}
	}
	return n
}

// Params returns the total learned-parameter count.
func (g *Graph) Params() int64 {
	var p int64
	for _, n := range g.Nodes {
		p += n.ParamCount()
	}
	return p
}

// Validate checks structural invariants: topological order, input arity,
// and shape consistency. It returns the first violation found.
func (g *Graph) Validate() error {
	seen := make(map[*Node]bool, len(g.Nodes))
	ids := make(map[int]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		if ids[n.ID] {
			return fmt.Errorf("graph %s: duplicate node id %d", g.Name, n.ID)
		}
		ids[n.ID] = true
		for _, in := range n.Inputs {
			if !seen[in] {
				return fmt.Errorf("graph %s: node %s uses input %s before definition", g.Name, n, in)
			}
		}
		if want := arity(n.Kind); want >= 0 && len(n.Inputs) != want {
			return fmt.Errorf("graph %s: node %s has %d inputs, want %d", g.Name, n, len(n.Inputs), want)
		}
		if n.Kind != OpInput {
			inferred, err := InferShapeE(n)
			if err != nil {
				return fmt.Errorf("graph %s: %w", g.Name, err)
			}
			if !inferred.Equal(n.OutShape) {
				return fmt.Errorf("graph %s: node %s shape %v, inferred %v", g.Name, n, n.OutShape, inferred)
			}
		}
		seen[n] = true
	}
	if g.Output == nil || !seen[g.Output] {
		return fmt.Errorf("graph %s: output node not in graph", g.Name)
	}
	for _, x := range g.Extra {
		if !seen[x] {
			return fmt.Errorf("graph %s: extra output %s not in graph", g.Name, x)
		}
	}
	return nil
}

// Roots returns all output nodes (primary plus extras).
func (g *Graph) Roots() []*Node {
	return append([]*Node{g.Output}, g.Extra...)
}

// arity returns the required input count for an op kind, or -1 for
// variadic ops.
func arity(k OpKind) int {
	switch k {
	case OpInput, OpConst:
		return 0
	case OpAdd:
		return 2
	case OpConcat:
		return -1
	default:
		return 1
	}
}

// Clone returns a structurally independent copy of the graph. Weight
// tensors are deep-copied so optimization passes on the clone do not
// disturb the original (frameworks each lower the same model).
func (g *Graph) Clone() *Graph {
	mapping := make(map[*Node]*Node, len(g.Nodes))
	out := &Graph{Name: g.Name, Mode: g.Mode, Frozen: false, nextID: g.nextID}
	for _, n := range g.Nodes {
		cp := &Node{
			ID:          n.ID,
			Name:        n.Name,
			Kind:        n.Kind,
			Attrs:       n.Attrs,
			WShape:      n.WShape.Clone(),
			BiasLen:     n.BiasLen,
			BNChannels:  n.BNChannels,
			OutShape:    n.OutShape.Clone(),
			DType:       n.DType,
			Activation:  n.Activation,
			FusedBN:     n.FusedBN,
			EpiChannels: n.EpiChannels,
			Sparsity:    n.Sparsity,
			BN:          n.BN.Clone(),
		}
		if n.EpiScale != nil {
			cp.EpiScale = append([]float32(nil), n.EpiScale...)
		}
		if n.EpiShift != nil {
			cp.EpiShift = append([]float32(nil), n.EpiShift...)
		}
		if n.Weights != nil {
			cp.Weights = n.Weights.Clone()
		}
		if n.QWeights != nil {
			cp.QWeights = n.QWeights.Clone()
		}
		// Packed panels are immutable once built (any pass mutating the
		// weights must clear them), so clones share the pointers instead of
		// re-packing megabytes of panels per replica.
		cp.Packed = n.Packed
		cp.PackedQ = n.PackedQ
		if n.Bias != nil {
			cp.Bias = append([]float32(nil), n.Bias...)
		}
		for _, in := range n.Inputs {
			cp.Inputs = append(cp.Inputs, mapping[in])
		}
		mapping[n] = cp
		out.Nodes = append(out.Nodes, cp)
	}
	out.Input = mapping[g.Input]
	out.Output = mapping[g.Output]
	for _, x := range g.Extra {
		out.Extra = append(out.Extra, mapping[x])
	}
	return out
}

// InferShape computes a node's output shape from its inputs and
// attributes. It panics on inconsistent structure: model builders are
// code, so a bad node is a bug. Error-tolerant callers (deserializers,
// the verifier) use InferShapeE instead.
func InferShape(n *Node) tensor.Shape {
	s, err := InferShapeE(n)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// InferShapeE computes a node's output shape from its inputs and
// attributes, returning an error for any structural inconsistency: wrong
// arity, wrong input or weight rank, channel mismatches, or degenerate
// (non-positive) output dimensions. A recover guard converts residual
// panics from the tensor spec helpers into errors, so InferShapeE never
// panics on malformed nodes — the property the exchange fuzzers assert.
func InferShapeE(n *Node) (shape tensor.Shape, err error) {
	defer func() {
		if r := recover(); r != nil {
			shape, err = nil, fmt.Errorf("graph: node %s: shape inference: %v", n, r)
		}
	}()
	if want := arity(n.Kind); want >= 0 {
		if len(n.Inputs) != want {
			return nil, fmt.Errorf("graph: node %s: %d inputs, want %d", n, len(n.Inputs), want)
		}
	} else if len(n.Inputs) == 0 {
		return nil, fmt.Errorf("graph: node %s: variadic op needs at least one input", n)
	}
	for i, in := range n.Inputs {
		if in == nil {
			return nil, fmt.Errorf("graph: node %s: input %d is nil", n, i)
		}
	}
	shape, err = inferShape(n)
	if err != nil {
		return nil, fmt.Errorf("graph: node %s: %w", n, err)
	}
	for _, d := range shape {
		if d < 1 {
			return nil, fmt.Errorf("graph: node %s: inferred shape %v has a non-positive dimension", n, shape)
		}
	}
	return shape, nil
}

// wantRank checks an input or weight shape's rank.
func wantRank(what string, s tensor.Shape, rank int) error {
	if len(s) != rank {
		return fmt.Errorf("%s %v is rank %d, want %d", what, s, len(s), rank)
	}
	return nil
}

func inferShape(n *Node) (tensor.Shape, error) {
	switch n.Kind {
	case OpInput:
		if len(n.OutShape) == 0 {
			return nil, fmt.Errorf("input node has no shape")
		}
		return n.OutShape, nil
	case OpConst:
		if len(n.WShape) == 0 {
			return nil, fmt.Errorf("const node has no value shape")
		}
		return n.WShape.Clone(), nil
	case OpConv2D:
		in, w := n.in(0).OutShape, n.WShape
		if err := wantRank("input", in, 3); err != nil {
			return nil, err
		}
		if err := wantRank("weights", w, 4); err != nil {
			return nil, err
		}
		g := n.Attrs.GroupCount()
		if in[0] != w[1]*g || w[0]%g != 0 {
			return nil, fmt.Errorf("conv channels: input %d, weights %v, groups %d", in[0], w, g)
		}
		h, wd := n.Attrs.ConvSpec().OutDims(in[1], in[2], w[2], w[3])
		return tensor.Shape{w[0], h, wd}, nil
	case OpDepthwiseConv2D:
		in, w := n.in(0).OutShape, n.WShape
		if err := wantRank("input", in, 3); err != nil {
			return nil, err
		}
		if err := wantRank("weights", w, 3); err != nil {
			return nil, err
		}
		if in[0] != w[0] {
			return nil, fmt.Errorf("depthwise channels: input %d, weights %d", in[0], w[0])
		}
		h, wd := n.Attrs.ConvSpec().OutDims(in[1], in[2], w[1], w[2])
		return tensor.Shape{in[0], h, wd}, nil
	case OpConv3D:
		in, w := n.in(0).OutShape, n.WShape
		if err := wantRank("input", in, 4); err != nil {
			return nil, err
		}
		if err := wantRank("weights", w, 5); err != nil {
			return nil, err
		}
		if in[0] != w[1] {
			return nil, fmt.Errorf("conv3d channels: input %d, weights %d", in[0], w[1])
		}
		spec := tensor.Conv3DSpec{Stride: n.Attrs.Stride, Pad: n.Attrs.Pad}
		return tensor.Shape{w[0], spec.OutDim(in[1], w[2]), spec.OutDim(in[2], w[3]), spec.OutDim(in[3], w[4])}, nil
	case OpDense:
		in, w := n.in(0).OutShape, n.WShape
		if err := wantRank("weights", w, 2); err != nil {
			return nil, err
		}
		if w[1] != in.NumElems() {
			return nil, fmt.Errorf("dense weights %v incompatible with input %v", w, in)
		}
		return tensor.Shape{w[0]}, nil
	case OpLSTM:
		in, w := n.in(0).OutShape, n.WShape
		if err := wantRank("weights", w, 2); err != nil {
			return nil, err
		}
		hidden := w[0] / 4
		if len(in) != 2 || w[0]%4 != 0 || w[1] != in[1]+hidden {
			return nil, fmt.Errorf("LSTM weights %v incompatible with input %v", w, in)
		}
		return tensor.Shape{hidden}, nil
	case OpMaxPool2D, OpAvgPool2D:
		in := n.in(0).OutShape
		if err := wantRank("input", in, 3); err != nil {
			return nil, err
		}
		if n.Attrs.Kernel < 1 || n.Attrs.Pad < 0 {
			return nil, fmt.Errorf("bad pool spec %+v", n.Attrs)
		}
		spec := tensor.PoolSpec{Kernel: n.Attrs.Kernel, Stride: n.Attrs.Stride, Pad: n.Attrs.Pad}
		return tensor.Shape{in[0], spec.OutDim(in[1]), spec.OutDim(in[2])}, nil
	case OpMaxPool3D:
		in := n.in(0).OutShape
		if err := wantRank("input", in, 4); err != nil {
			return nil, err
		}
		if n.Attrs.Kernel < 1 || n.Attrs.Pad < 0 {
			return nil, fmt.Errorf("bad pool spec %+v", n.Attrs)
		}
		d, h, w := n.Attrs.Pool3DSpec().OutDims(in[1], in[2], in[3])
		return tensor.Shape{in[0], d, h, w}, nil
	case OpUpsample:
		in := n.in(0).OutShape
		if err := wantRank("input", in, 3); err != nil {
			return nil, err
		}
		f := n.Attrs.Factor
		if f < 1 {
			f = 1
		}
		return tensor.Shape{in[0], in[1] * f, in[2] * f}, nil
	case OpGlobalAvgPool:
		in := n.in(0).OutShape
		if err := wantRank("input", in, 3); err != nil {
			return nil, err
		}
		return tensor.Shape{in[0]}, nil
	case OpFlatten:
		return tensor.Shape{n.in(0).OutShape.NumElems()}, nil
	case OpAdd:
		a, b := n.in(0).OutShape, n.in(1).OutShape
		if !a.Equal(b) {
			return nil, fmt.Errorf("add shape mismatch %v vs %v", a, b)
		}
		return a.Clone(), nil
	case OpConcat:
		first := n.in(0).OutShape
		if err := wantRank("input", first, 3); err != nil {
			return nil, err
		}
		c := 0
		for _, in := range n.Inputs {
			s := in.OutShape
			if len(s) != 3 || s[1] != first[1] || s[2] != first[2] {
				return nil, fmt.Errorf("concat spatial mismatch %v vs %v", s, first)
			}
			c += s[0]
		}
		return tensor.Shape{c, first[1], first[2]}, nil
	case OpPad:
		in := n.in(0).OutShape
		if err := wantRank("input", in, 3); err != nil {
			return nil, err
		}
		p := n.Attrs.Pad
		if p < 0 {
			return nil, fmt.Errorf("negative padding %d", p)
		}
		return tensor.Shape{in[0], in[1] + 2*p, in[2] + 2*p}, nil
	case OpBatchNorm:
		in := n.in(0).OutShape
		if n.BNChannels > 0 && n.BNChannels != in[0] {
			return nil, fmt.Errorf("batchnorm channels %d over input %v", n.BNChannels, in)
		}
		return in.Clone(), nil
	case OpReLU, OpReLU6, OpLeakyReLU, OpSigmoid, OpTanh, OpSoftmax:
		return n.in(0).OutShape.Clone(), nil
	case OpShuffle:
		in := n.in(0).OutShape
		if err := wantRank("input", in, 3); err != nil {
			return nil, err
		}
		if g := n.Attrs.GroupCount(); in[0]%g != 0 {
			return nil, fmt.Errorf("shuffle groups %d do not divide channels %d", g, in[0])
		}
		return in.Clone(), nil
	default:
		return nil, fmt.Errorf("cannot infer shape for op %v", n.Kind)
	}
}
