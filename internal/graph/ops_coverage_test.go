package graph_test

import (
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/stats"
	"edgebench/internal/tensor"
)

// TestEveryOpKindExecutes drives each operation kind through the
// executor and the cost model from within the graph package's own test
// suite: builder construction, shape inference, numeric execution (both
// conv paths), and per-node cost.
func TestEveryOpKindExecutes(t *testing.T) {
	cases := []struct {
		name  string
		shape []int
		build func(b *nn.Builder)
	}{
		{"conv3d+pool3d", []int{2, 4, 6, 6}, func(b *nn.Builder) {
			b.Conv3D("c3", 3, 3, 1, 1, true)
			b.Tanh("t")
			b.MaxPool3DAsym("p3", 1, 2, 1, 2, 0)
			b.Flatten("f")
			b.Dense("fc", 4, true)
		}},
		{"upsample+pad+leaky", []int{2, 5, 5}, func(b *nn.Builder) {
			b.Conv2D("c", 3, 3, 1, 1, false)
			b.LeakyReLU("lk", 0.1)
			b.Upsample("up", 2)
			b.Pad("pad", 1)
			b.AvgPool("ap", 2, 2, 0)
		}},
		{"lstm", []int{6, 5}, func(b *nn.Builder) {
			b.LSTM("l", 7, true)
			b.Dense("fc", 3, true)
			b.Softmax("p")
		}},
		{"shuffle+grouped", []int{6, 6, 6}, func(b *nn.Builder) {
			b.Conv2DG("g1", 6, 1, 1, 0, 3, true)
			b.Shuffle("sh", 3)
			b.Conv2DG("g2", 6, 3, 1, 1, 2, true)
			b.Sigmoid("s")
		}},
		{"rect+asym", []int{2, 7, 7}, func(b *nn.Builder) {
			b.Conv2DRect("r1", 4, 1, 5, 1, 0, 2, true)
			b.Conv2DRect("r2", 4, 5, 1, 1, 2, 0, true)
			b.ReLU6("r6")
			b.GlobalAvgPool("gap")
		}},
		{"softmax-midgraph", []int{1, 3, 3}, func(b *nn.Builder) {
			b.Flatten("f")
			b.Softmax("s1")
			b.Dense("fc", 4, true)
			b.Softmax("s2")
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			b := nn.NewBuilder(c.name, nn.Options{Materialize: true, Seed: 5}, c.shape...)
			c.build(b)
			g := b.Build()
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			in := tensor.New(c.shape...).Randomize(stats.NewRNG(6), 1)
			direct, err := (&graph.Executor{}).Run(g, in.Clone())
			if err != nil {
				t.Fatal(err)
			}
			gemm, err := (&graph.Executor{UseGEMMConv: true}).Run(g, in.Clone())
			if err != nil {
				t.Fatal(err)
			}
			for i := range direct.Data {
				d := direct.Data[i] - gemm.Data[i]
				if d > 1e-3 || d < -1e-3 {
					t.Fatalf("conv paths diverge at %d: %v vs %v", i, direct.Data[i], gemm.Data[i])
				}
			}
			// Every node must price without panicking, with non-negative
			// cost, and the total must be positive.
			var total graph.Cost
			for _, n := range g.Nodes {
				cost := graph.NodeCost(n)
				if cost.FLOPs < 0 || cost.Bytes() < 0 {
					t.Fatalf("negative cost on %s", n)
				}
				total = total.Plus(cost)
			}
			if total.FLOPs <= 0 {
				t.Fatal("graph should cost something")
			}
			// RunValues retains every node value for training.
			values, err := (&graph.Executor{}).RunValues(g, in.Clone())
			if err != nil {
				t.Fatal(err)
			}
			if len(values) != len(g.Nodes) {
				t.Fatalf("RunValues retained %d of %d nodes", len(values), len(g.Nodes))
			}
		})
	}
}

// TestDynamicModeReleasesIntermediates pins the define-by-run memory
// behaviour: after a dynamic run, only the output remains referenced
// (verified indirectly — RunValues forces retention, Run does not).
func TestDynamicModeReleasesIntermediates(t *testing.T) {
	b := nn.NewBuilder("dyn", nn.Options{Materialize: true, Seed: 8}, 2, 6, 6)
	b.Conv2D("c1", 4, 3, 1, 1, true)
	b.ReLU("r")
	b.Conv2D("c2", 2, 3, 1, 1, true)
	g := b.Build()
	g.Mode = graph.Dynamic
	out, err := (&graph.Executor{}).Run(g, tensor.New(2, 6, 6).Fill(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape.Equal(tensor.Shape{2, 6, 6}) {
		t.Fatalf("output shape %v", out.Shape)
	}
	// RunValues on a dynamic graph must still retain everything (it
	// temporarily forces static retention).
	values, err := (&graph.Executor{}).RunValues(g, tensor.New(2, 6, 6).Fill(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != len(g.Nodes) {
		t.Fatal("RunValues must retain all values even in dynamic mode")
	}
	if g.Mode != graph.Dynamic {
		t.Fatal("RunValues must restore the graph mode")
	}
}

func TestInferShapePanicsOnBadLSTM(t *testing.T) {
	g := graph.New("bad", 4, 3) // [T=4, F=3]
	defer func() {
		if recover() == nil {
			t.Fatal("incompatible LSTM weights should panic shape inference")
		}
	}()
	g.Add(&graph.Node{
		Kind:   graph.OpLSTM,
		WShape: tensor.Shape{8, 9}, // H=2 needs F+H=5, not 9
	})
}

func TestShuffleInferShapePanicsOnBadGroups(t *testing.T) {
	g := graph.New("bad", 5, 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("indivisible shuffle groups should panic")
		}
	}()
	g.Add(&graph.Node{Kind: graph.OpShuffle, Attrs: graph.Attrs{Groups: 2}})
}
