package graph

// DebugChecker is the static revalidation hook a Debug-mode executor
// consults before first executing a graph: g is the graph about to run
// and plan its buffer plan (nil for unplanned or dynamic runs). The
// checker returns an error to veto execution.
//
// The hook exists because this package cannot import internal/verify
// without a cycle: verify registers its dataflow passes (plan-aliasing
// proof, quant-domain walk) here from an init function, so any binary
// that links the verifier arms every Debug executor automatically.
type DebugChecker func(g *Graph, plan *Plan) error

// debugChecker is written once during package initialization (verify's
// init) and read by executors afterwards; init runs before main, so no
// synchronization is needed.
var debugChecker DebugChecker

// RegisterDebugChecker installs the checker Debug-mode executors call.
// Call it from an init function only — registration after executors have
// started racing Run is not synchronized.
func RegisterDebugChecker(c DebugChecker) { debugChecker = c }

// debugCheck runs the registered checker, if any.
func debugCheck(g *Graph, plan *Plan) error {
	if debugChecker == nil {
		return nil
	}
	return debugChecker(g, plan)
}
