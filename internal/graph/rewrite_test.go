package graph_test

import (
	"strings"
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/tensor"
)

// assertBitwiseEqual fails on the first float32 that differs — the
// pattern fuser's contract is bitwise identity, not tolerance.
func assertBitwiseEqual(t *testing.T, got, want *tensor.Tensor, what string) {
	t.Helper()
	if !got.Shape.Equal(want.Shape) {
		t.Fatalf("%s: shape %v, want %v", what, got.Shape, want.Shape)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: out[%d] = %v, want %v (bitwise mismatch)", what, i, got.Data[i], want.Data[i])
		}
	}
}

func TestFusePatternsBitEquivalence(t *testing.T) {
	g := smallCNN(t, 21)
	in := tensor.New(3, 8, 8).Fill(-0.3)
	ref := run(t, g, in)

	fg := g.Clone()
	before := len(fg.Nodes)
	fused := graph.FusePatterns(fg)
	checkAfterPass(t, fg, "FusePatterns")
	if fused == 0 {
		t.Fatal("FusePatterns fused no chains in a Conv-BN-ReLU network")
	}
	if len(fg.Nodes) >= before {
		t.Fatalf("FusePatterns removed no nodes (%d -> %d)", before, len(fg.Nodes))
	}
	got := run(t, fg, in)
	assertBitwiseEqual(t, got, ref, "fused forward")

	// The conv that absorbed its BN must carry the affine epilogue —
	// weights untouched (unlike FoldBN, which rewrites them).
	var epi *graph.Node
	for _, n := range fg.Nodes {
		if n.Kind == graph.OpBatchNorm {
			t.Fatalf("BN node %s survived fusion", n)
		}
		if n.EpiChannels > 0 {
			epi = n
		}
	}
	if epi == nil {
		t.Fatal("no node carries an absorbed BN epilogue")
	}
	if epi.FusedBN {
		t.Fatalf("node %s has FusedBN set: the pattern fuser must not rewrite weights", epi)
	}
	if len(epi.EpiScale) != epi.EpiChannels || len(epi.EpiShift) != epi.EpiChannels {
		t.Fatalf("epilogue arrays %d/%d, want %d", len(epi.EpiScale), len(epi.EpiShift), epi.EpiChannels)
	}
	if epi.Activation == 0 {
		t.Fatalf("node %s absorbed the BN but not the following ReLU", epi)
	}
}

func TestFusePatternsCountsFusedDispatches(t *testing.T) {
	g := smallCNN(t, 22)
	in := tensor.New(3, 8, 8).Fill(0.4)
	graph.FusePatterns(g)
	ex := &graph.Executor{}
	if _, err := ex.Run(g, in); err != nil {
		t.Fatal(err)
	}
	i8, f32, fz := ex.DispatchCounts()
	if i8 != 0 {
		t.Fatalf("fp32 graph dispatched %d int8 kernels", i8)
	}
	if fz == 0 {
		t.Fatal("fused graph dispatched no fused kernels")
	}
	if f32 == 0 {
		t.Fatal("fused dispatches should still count in the conv/dense family")
	}
}

func TestFusePatternsSkipsMultiConsumerProducer(t *testing.T) {
	// conv feeds both a ReLU and a residual Add: absorbing either stage
	// would corrupt the Add's view of the conv output.
	b := nn.NewBuilder("skip", nn.Options{Materialize: true, Seed: 23}, 2, 6, 6)
	conv := b.Conv2D("conv", 2, 3, 1, 1, true)
	relu := b.ReLU("relu")
	b.Add("join", conv, relu)
	g := b.Build()
	in := tensor.New(2, 6, 6).Fill(-1)
	ref := run(t, g, in)
	graph.FusePatterns(g)
	checkAfterPass(t, g, "FusePatterns")
	if conv.Activation != 0 {
		t.Fatal("conv with two consumers must not absorb the activation")
	}
	got := run(t, g, in)
	assertBitwiseEqual(t, got, ref, "multi-consumer graph")
}

func TestFusePatternsSkipsQuantizedBN(t *testing.T) {
	// An int8-dispatched conv has no affine stage in its requantize
	// epilogue, so the BN must stay a separate node; the activation can
	// still fuse (the int8 kernel applies it).
	b := nn.NewBuilder("qbn", nn.Options{Materialize: true, Seed: 24}, 3, 8, 8)
	b.Conv2D("conv", 4, 3, 1, 1, true)
	b.BatchNorm("bn")
	b.ReLU("relu")
	g := b.Build()
	graph.QuantizeINT8(g)
	fused := graph.FusePatterns(g)
	checkAfterPass(t, g, "FusePatterns after QuantizeINT8")
	bnSurvives := false
	for _, n := range g.Nodes {
		if n.Kind == graph.OpBatchNorm {
			bnSurvives = true
		}
		if n.QWeights != nil && n.EpiChannels > 0 {
			t.Fatalf("node %s carries both int8 codes and a BN epilogue", n)
		}
	}
	if !bnSurvives {
		t.Fatal("quantized conv absorbed its BN; the int8 epilogue cannot apply it")
	}
	_ = fused
}

func TestFusePatternsMACsInvariant(t *testing.T) {
	g := smallCNN(t, 25)
	before := g.TotalCost()
	graph.FusePatterns(g)
	after := g.TotalCost()
	if before.MACs != after.MACs {
		t.Fatalf("fusion changed MACs %v -> %v; MACs count contraction multiplies only", before.MACs, after.MACs)
	}
	// The absorbed BN's 2*elems FLOPs move onto the fused node's
	// epilogue, so total FLOPs are preserved too.
	if before.FLOPs != after.FLOPs {
		t.Fatalf("fusion changed FLOPs %v -> %v", before.FLOPs, after.FLOPs)
	}
	if before.MACs >= before.FLOPs {
		t.Fatalf("MACs %v should be below FLOPs %v (bias/BN/act are FLOPs, not MACs)", before.MACs, before.FLOPs)
	}
}

// constGraph builds input(4) + relu(c1 + c2): the c1+c2 and relu nodes
// are compile-time constant, the final add is not.
func constGraph(t *testing.T) (*graph.Graph, *graph.Node) {
	t.Helper()
	g := graph.New("consts", 4)
	mkConst := func(name string, vals []float32) *graph.Node {
		w := tensor.New(4)
		copy(w.Data, vals)
		return g.Append(&graph.Node{
			Kind:     graph.OpConst,
			Name:     name,
			WShape:   tensor.Shape{4},
			Weights:  w,
			OutShape: tensor.Shape{4},
		})
	}
	c1 := mkConst("c1", []float32{-4, -1, 1, 2})
	c2 := mkConst("c2", []float32{1, -1, 1, -4})
	sum := g.Append(&graph.Node{
		Kind:     graph.OpAdd,
		Name:     "sum",
		Inputs:   []*graph.Node{c1, c2},
		OutShape: tensor.Shape{4},
	})
	relu := g.Append(&graph.Node{
		Kind:     graph.OpReLU,
		Name:     "relu",
		Inputs:   []*graph.Node{sum},
		OutShape: tensor.Shape{4},
	})
	out := g.Append(&graph.Node{
		Kind:     graph.OpAdd,
		Name:     "out",
		Inputs:   []*graph.Node{g.Input, relu},
		OutShape: tensor.Shape{4},
	})
	g.Output = out
	return g, out
}

func TestFoldConstantsCascades(t *testing.T) {
	g, out := constGraph(t)
	folded, err := graph.FoldConstants(g)
	if err != nil {
		t.Fatal(err)
	}
	// One topological sweep folds sum and then relu-of-the-fold.
	if folded != 2 {
		t.Fatalf("folded %d nodes, want 2", folded)
	}
	fc := out.Inputs[1]
	if fc.Kind != graph.OpConst || !strings.HasSuffix(fc.Name, "_folded") {
		t.Fatalf("output's second input is %s, want a folded const", fc)
	}
	want := []float32{0, 0, 2, 0} // relu((-4+1), (-1-1), (1+1), (2-4))
	for i, v := range want {
		if fc.Weights.Data[i] != v {
			t.Fatalf("folded const[%d] = %v, want %v", i, fc.Weights.Data[i], v)
		}
	}
	// Dead elimination sweeps the orphaned source consts (and the
	// intermediate folded const) but keeps the graph input.
	removed := graph.EliminateDeadCount(g)
	if removed != 3 {
		t.Fatalf("dead elimination removed %d nodes, want 3", removed)
	}
	checkAfterPass(t, g, "FoldConstants+EliminateDeadCount")
	in := tensor.New(4).Fill(10)
	got := run(t, g, in)
	for i, v := range want {
		if got.Data[i] != 10+v {
			t.Fatalf("out[%d] = %v, want %v", i, got.Data[i], 10+v)
		}
	}
}

func TestFoldConstantsReportsEvalErrors(t *testing.T) {
	g := graph.New("badfold", 4)
	w3 := tensor.New(3)
	c1 := g.Append(&graph.Node{
		Kind: graph.OpConst, Name: "c1",
		WShape: tensor.Shape{3}, Weights: w3, OutShape: tensor.Shape{3},
	})
	w4 := tensor.New(4)
	c2 := g.Append(&graph.Node{
		Kind: graph.OpConst, Name: "c2",
		WShape: tensor.Shape{4}, Weights: w4, OutShape: tensor.Shape{4},
	})
	// Shape-inconsistent add (the adversarial input FoldConstants must
	// surface as an error, not a panic).
	bad := g.Append(&graph.Node{
		Kind:     graph.OpAdd,
		Name:     "bad",
		Inputs:   []*graph.Node{c1, c2},
		OutShape: tensor.Shape{4},
	})
	g.Output = bad
	if _, err := graph.FoldConstants(g); err == nil {
		t.Fatal("folding a shape-mismatched add should error")
	} else if !strings.Contains(err.Error(), "bad") {
		t.Fatalf("error %q does not name the offending node", err)
	}
}

func TestEliminateIdentity(t *testing.T) {
	b := nn.NewBuilder("ident", nn.Options{Materialize: true, Seed: 26}, 4, 6, 6)
	b.Upsample("up1", 1)  // factor-1 upsample: pure copy
	b.Shuffle("shuf1", 1) // group-1 shuffle: pure copy
	b.Pad("pad0", 0)      // zero pad: pure copy
	b.Conv2D("conv", 4, 3, 1, 1, true)
	g := b.Build()
	in := tensor.New(4, 6, 6).Fill(0.7)
	ref := run(t, g, in)
	removed := graph.EliminateIdentity(g)
	checkAfterPass(t, g, "EliminateIdentity")
	if removed != 3 {
		t.Fatalf("removed %d identity nodes, want 3", removed)
	}
	got := run(t, g, in)
	assertBitwiseEqual(t, got, ref, "identity-eliminated graph")

	// Real work must never be treated as identity.
	b2 := nn.NewBuilder("real", nn.Options{}, 4, 6, 6)
	b2.Upsample("up2", 2)
	b2.Shuffle("shuf2", 2)
	g2 := b2.Build()
	if n := graph.EliminateIdentity(g2); n != 0 {
		t.Fatalf("removed %d nodes from a graph with no identities", n)
	}
}

func TestEliminateDeadCountKeepsInput(t *testing.T) {
	g, _ := constGraph(t)
	// Point the output at the constant subgraph: the graph input becomes
	// unreferenced but must survive (a graph without its input node does
	// not verify).
	g.Output = g.Nodes[4] // the relu over consts
	removed := graph.EliminateDeadCount(g)
	if removed != 1 { // only the input+relu add is dead
		t.Fatalf("removed %d nodes, want 1", removed)
	}
	foundInput := false
	for _, n := range g.Nodes {
		if n == g.Input {
			foundInput = true
		}
	}
	if !foundInput {
		t.Fatal("dead elimination removed the graph input")
	}
}

func TestOpConstExecution(t *testing.T) {
	g, _ := constGraph(t)
	in := tensor.New(4).Fill(1)
	got := run(t, g, in)
	want := []float32{1, 1, 3, 1} // 1 + relu(c1+c2)
	for i, v := range want {
		if got.Data[i] != v {
			t.Fatalf("out[%d] = %v, want %v", i, got.Data[i], v)
		}
	}
}
