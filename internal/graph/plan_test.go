package graph_test

import (
	"math"
	"strings"
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/tensor"
	"edgebench/internal/verify"
)

// branchyCNN builds a materialized graph exercising every planner hazard:
// an Inception-style concat fan-out, a residual Add whose left arm is
// longer than its right, and a Flatten alias feeding a Dense while a
// second branch still reads the flattened buffer's storage.
func branchyCNN(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	b := nn.NewBuilder("branchy", nn.Options{Materialize: true, Seed: seed}, 3, 16, 16)
	stem := b.ConvBNReLU("stem", 8, 3, 1, 1)
	// Inception-style branches off the stem.
	br1 := b.From(stem).Conv2D("br1", 8, 1, 1, 0, true)
	br2a := b.From(stem).Conv2D("br2a", 8, 3, 1, 1, true)
	b.ReLU("br2a_relu")
	br2 := b.Conv2D("br2b", 8, 3, 1, 1, true)
	_ = br2a
	br3 := b.From(stem).MaxPool("br3", 3, 1, 1)
	cat := b.Concat("cat", br1, br2, br3)
	// Residual arm: identity vs conv path.
	arm := b.From(cat).Conv2D("arm1", 24, 3, 1, 1, true)
	b.ReLU("arm_relu")
	arm2 := b.Conv2D("arm2", 24, 3, 1, 1, true)
	_ = arm
	sum := b.Add("residual", cat, arm2)
	b.From(sum).GlobalAvgPool("gap")
	b.Dense("fc", 10, true)
	b.Softmax("prob")
	return b.Build()
}

// flattenAliasCNN stresses the alias hazard: conv1's buffer is viewed by
// Flatten and must stay live until the Dense consumer reads the view,
// even though another branch (the Extra output) already consumed conv1.
func flattenAliasCNN(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	b := nn.NewBuilder("alias", nn.Options{Materialize: true, Seed: seed}, 3, 8, 8)
	conv1 := b.Conv2D("conv1", 4, 3, 1, 1, true)
	side := b.From(conv1).Conv2D("side", 4, 3, 1, 1, true)
	b.MarkOutput(side)
	b.From(conv1).Flatten("flat")
	b.Dense("fc", 10, true)
	b.Softmax("prob")
	return b.Build()
}

func TestPlanBuffersSlotReuse(t *testing.T) {
	// A pure chain of same-shape ops needs exactly two slots: producer
	// and consumer ping-pong.
	b := nn.NewBuilder("chain", nn.Options{Materialize: true, Seed: 1}, 4, 8, 8)
	b.Conv2D("c1", 4, 3, 1, 1, true)
	b.ReLU("r1")
	b.Conv2D("c2", 4, 3, 1, 1, true)
	b.ReLU("r2")
	b.Conv2D("c3", 4, 3, 1, 1, true)
	b.ReLU("r3")
	b.Conv2D("c4", 4, 3, 1, 1, true)
	g := b.Build()
	plan, err := graph.PlanBuffers(g)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumSlots() != 2 {
		t.Errorf("chain plan uses %d slots (%v), want 2", plan.NumSlots(), plan.Slots)
	}
	if plan.ArenaBytes() != 2*4*8*8*4 {
		t.Errorf("arena bytes = %d", plan.ArenaBytes())
	}
	if plan.PeakBytes <= 0 {
		t.Error("peak bytes not computed")
	}
}

func TestPlanBuffersRejectsDynamic(t *testing.T) {
	g := smallCNN(t, 1)
	g.Mode = graph.Dynamic
	if _, err := graph.PlanBuffers(g); err == nil || !strings.Contains(err.Error(), "dynamic") {
		t.Fatalf("dynamic graph must be rejected, got %v", err)
	}
}

func TestPlanBuffersKeepsRootsUnpooled(t *testing.T) {
	g := flattenAliasCNN(t, 2)
	plan, err := graph.PlanBuffers(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, root := range g.Roots() {
		if plan.Pooled(root) {
			t.Errorf("root %s assigned an arena slot; kept outputs must not recycle", root)
		}
		if !plan.Kept(root) {
			t.Errorf("root %s not marked kept", root)
		}
	}
	if plan.Pooled(g.Input) {
		t.Error("graph input must never be pooled")
	}
}

// TestPlanVerifiesZooGraphs is covered per-model in internal/model; here
// we pin that planning itself never mutates the graph: verify stays clean
// after PlanBuffers.
func TestPlanBuffersLeavesGraphVerified(t *testing.T) {
	g := branchyCNN(t, 3)
	if diags := verify.Check(g); len(diags) != 0 {
		t.Fatalf("pre-plan diagnostics: %v", diags)
	}
	if _, err := graph.PlanBuffers(g); err != nil {
		t.Fatal(err)
	}
	if diags := verify.Check(g); len(diags) != 0 {
		t.Fatalf("post-plan diagnostics: %v", diags)
	}
}

// runVariants executes g under every executor configuration and checks
// outputs match the plain sequential run bitwise. Each pooled executor
// runs three times so later passes consume recycled (dirty) buffers.
func runVariants(t *testing.T, g *graph.Graph, in *tensor.Tensor) {
	t.Helper()
	ref, err := (&graph.Executor{}).Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]*graph.Executor{
		"parallel":        {Parallel: true},
		"parallel2":       {Parallel: true, Workers: 2},
		"pooled":          {Pooled: true},
		"pooled+parallel": {Pooled: true, Parallel: true},
		"pooled+gemm":     {Pooled: true, UseGEMMConv: true},
	}
	gemmRef, err := (&graph.Executor{UseGEMMConv: true}).Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	for name, e := range variants {
		want := ref
		if e.UseGEMMConv {
			want = gemmRef
		}
		for pass := 0; pass < 3; pass++ {
			got, err := e.Run(g, in)
			if err != nil {
				t.Fatalf("%s pass %d: %v", name, pass, err)
			}
			if !got.Shape.Equal(want.Shape) {
				t.Fatalf("%s pass %d: shape %v, want %v", name, pass, got.Shape, want.Shape)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%s pass %d: out[%d] = %v, want %v", name, pass, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}

func TestExecutorVariantsEquivalentOnBranchyGraph(t *testing.T) {
	g := branchyCNN(t, 7)
	in := tensor.New(3, 16, 16)
	fillDeterministic(in)
	runVariants(t, g, in)
}

func TestExecutorVariantsEquivalentOnAliasGraph(t *testing.T) {
	g := flattenAliasCNN(t, 8)
	in := tensor.New(3, 8, 8)
	fillDeterministic(in)
	runVariants(t, g, in)
	// The Extra output must also survive pooling intact: run pooled and
	// compare the side output via RunValues on a fresh executor.
	vals, err := (&graph.Executor{}).RunValues(g, in)
	if err != nil {
		t.Fatal(err)
	}
	var side *graph.Node
	for _, n := range g.Nodes {
		if n.Name == "side" {
			side = n
		}
	}
	want := vals[side]
	pooled := &graph.Executor{Pooled: true}
	if _, err := pooled.Run(g, in); err != nil {
		t.Fatal(err)
	}
	if _, err := pooled.Run(g, in); err != nil {
		t.Fatal(err)
	}
	// Kept side outputs are not exposed by Run; re-check through
	// RunValues on the pooled executor (pooling disabled there, but the
	// executor must recover cleanly from pooled state).
	vals2, err := pooled.RunValues(g, in)
	if err != nil {
		t.Fatal(err)
	}
	got := vals2[side]
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("side output diverged at %d", i)
		}
	}
}

// TestPooledExecutorReusesArena pins the planner's win: after the first
// pass, repeated inference performs zero pool misses (every intermediate
// comes from the arena) and the executor's outputs stay immutable —
// the previous pass's returned tensor is not overwritten.
func TestPooledExecutorReusesArena(t *testing.T) {
	g := branchyCNN(t, 9)
	in := tensor.New(3, 16, 16)
	fillDeterministic(in)
	e := &graph.Executor{Pooled: true}
	first, err := e.Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float32(nil), first.Data...)
	misses0 := e.PoolStats().Misses
	for i := 0; i < 3; i++ {
		if _, err := e.Run(g, in); err != nil {
			t.Fatal(err)
		}
	}
	st := e.PoolStats()
	if st.Misses != misses0 {
		t.Errorf("steady-state pool misses grew from %d to %d; arena not reused", misses0, st.Misses)
	}
	if st.Gets <= misses0 {
		t.Errorf("pool stats %+v: expected hits on repeated runs", st)
	}
	for i := range snapshot {
		if first.Data[i] != snapshot[i] {
			t.Fatalf("first run's output mutated at %d: caller-visible tensor recycled", i)
		}
	}
}

// TestParallelErrorDeterministic forces a kernel failure and checks the
// parallel scheduler reports the same first-failing node as sequential.
func TestParallelErrorDeterministic(t *testing.T) {
	g := smallCNN(t, 10)
	// Corrupt a mid-graph node's weights so its kernel panics.
	var victim *graph.Node
	for _, n := range g.Nodes {
		if n.Kind == graph.OpDense {
			victim = n
		}
	}
	victim.Weights = tensor.New(1, 1)
	in := tensor.New(3, 8, 8).Fill(0.5)
	_, errSeq := (&graph.Executor{}).Run(g, in)
	_, errPar := (&graph.Executor{Parallel: true}).Run(g, in)
	if errSeq == nil || errPar == nil {
		t.Fatalf("expected failures, got seq=%v par=%v", errSeq, errPar)
	}
	if !strings.Contains(errPar.Error(), victim.Name) || !strings.Contains(errSeq.Error(), victim.Name) {
		t.Fatalf("errors should name node %s: seq=%v par=%v", victim.Name, errSeq, errPar)
	}
}

// TestRunValuesUnaffectedByPooling checks the training path still retains
// every node value when the executor is configured for pooling.
func TestRunValuesUnaffectedByPooling(t *testing.T) {
	g := smallCNN(t, 11)
	in := tensor.New(3, 8, 8).Fill(0.3)
	vals, err := (&graph.Executor{Pooled: true, Parallel: true}).RunValues(g, in)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g.Nodes {
		if n.Kind == graph.OpInput {
			continue
		}
		if vals[n] == nil {
			t.Fatalf("RunValues missing value for %s", n)
		}
	}
}

func fillDeterministic(t *tensor.Tensor) {
	for i := range t.Data {
		t.Data[i] = float32(math.Sin(float64(i))) * 0.5
	}
}
