package graph_test

import (
	"math"
	"testing"
	"testing/quick"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/stats"
	"edgebench/internal/tensor"
	"edgebench/internal/verify"
)

// checkAfterPass asserts the graph verifies clean after a pass — the
// verify.Checked contract, usable mid-test without the panic.
func checkAfterPass(t *testing.T, g *graph.Graph, pass string) {
	t.Helper()
	if err := verify.Err(verify.Check(g)); err != nil {
		t.Fatalf("pass %s broke invariants: %v", pass, err)
	}
}

func run(t *testing.T, g *graph.Graph, in *tensor.Tensor) *tensor.Tensor {
	t.Helper()
	out, err := (&graph.Executor{}).Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func maxAbsDiff(a, b *tensor.Tensor) float64 {
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i] - b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestFoldBNPreservesSemantics(t *testing.T) {
	g := smallCNN(t, 10)
	in := tensor.New(3, 8, 8).Fill(0.3)
	ref := run(t, g, in)

	opt := g.Clone()
	before := len(opt.Nodes)
	graph.FoldBN(opt)
	checkAfterPass(t, opt, "FoldBN")
	if len(opt.Nodes) != before-1 {
		t.Fatalf("FoldBN removed %d nodes, want 1", before-len(opt.Nodes))
	}
	got := run(t, opt, in)
	if d := maxAbsDiff(ref, got); d > 1e-4 {
		t.Fatalf("FoldBN changed output by %v", d)
	}
	// The conv must now carry a bias and the fused flag.
	found := false
	for _, n := range opt.Nodes {
		if n.FusedBN {
			found = true
			if n.BiasLen == 0 {
				t.Fatal("folded conv should have bias")
			}
		}
		if n.Kind == graph.OpBatchNorm {
			t.Fatal("BN node should be gone")
		}
	}
	if !found {
		t.Fatal("no node marked FusedBN")
	}
}

func TestFuseActivationsPreservesSemantics(t *testing.T) {
	g := smallCNN(t, 11)
	in := tensor.New(3, 8, 8).Fill(-0.2)
	ref := run(t, g, in)

	opt := g.Clone()
	graph.FoldBN(opt)
	before := len(opt.Nodes)
	graph.FuseActivations(opt)
	checkAfterPass(t, opt, "FuseActivations")
	if len(opt.Nodes) >= before {
		t.Fatal("FuseActivations removed no nodes")
	}
	got := run(t, opt, in)
	if d := maxAbsDiff(ref, got); d > 1e-4 {
		t.Fatalf("fusion changed output by %v", d)
	}
	fused := 0
	for _, n := range opt.Nodes {
		if n.Activation != 0 {
			fused++
		}
	}
	if fused == 0 {
		t.Fatal("no node carries a fused activation")
	}
}

func TestFuseSkipsMultiConsumerProducer(t *testing.T) {
	// conv output feeds both a ReLU and a residual Add: fusing the ReLU
	// into the conv would corrupt the Add input, so the pass must skip it.
	b := nn.NewBuilder("skip", nn.Options{Materialize: true, Seed: 12}, 2, 6, 6)
	conv := b.Conv2D("conv", 2, 3, 1, 1, true)
	relu := b.ReLU("relu")
	b.Add("join", conv, relu)
	g := b.Build()
	in := tensor.New(2, 6, 6).Fill(-1)
	ref := run(t, g, in)
	graph.FuseActivations(g)
	checkAfterPass(t, g, "FuseActivations")
	got := run(t, g, in)
	if d := maxAbsDiff(ref, got); d != 0 {
		t.Fatalf("fusion with shared producer changed output by %v", d)
	}
	if g.Nodes[1].Activation != 0 {
		t.Fatal("conv with two consumers must not absorb the activation")
	}
}

func TestEliminateDead(t *testing.T) {
	b := nn.NewBuilder("dead", nn.Options{Materialize: true, Seed: 13}, 2, 4, 4)
	input := b.Current()
	live := b.Conv2D("live", 2, 3, 1, 1, true)
	b.From(input).Conv2D("dead_branch", 4, 3, 1, 1, true)
	g := b.From(live).Build()
	if g.Output != live {
		t.Fatal("output should be the live conv")
	}
	before := len(g.Nodes)
	graph.EliminateDead(g)
	checkAfterPass(t, g, "EliminateDead")
	if len(g.Nodes) != before-1 {
		t.Fatalf("dead elimination removed %d, want 1", before-len(g.Nodes))
	}
}

func TestQuantizeINT8(t *testing.T) {
	g := smallCNN(t, 14)
	in := tensor.New(3, 8, 8).Fill(0.2)
	ref := run(t, g, in)
	graph.QuantizeINT8(g)
	checkAfterPass(t, g, "QuantizeINT8")
	for _, n := range g.Nodes {
		if n.DType != tensor.INT8 {
			t.Fatalf("node %s dtype = %v", n, n.DType)
		}
	}
	got := run(t, g, in)
	// Quantization introduces bounded error but must keep outputs close
	// (small network, well-scaled weights).
	if d := maxAbsDiff(ref, got); d > 0.2 {
		t.Fatalf("int8 output error too large: %v", d)
	}
}

func TestCastFP16(t *testing.T) {
	g := smallCNN(t, 15)
	in := tensor.New(3, 8, 8).Fill(0.2)
	ref := run(t, g, in)
	graph.CastFP16(g)
	checkAfterPass(t, g, "CastFP16")
	for _, n := range g.Nodes {
		if n.DType != tensor.FP16 {
			t.Fatalf("node %s dtype = %v", n, n.DType)
		}
	}
	got := run(t, g, in)
	if d := maxAbsDiff(ref, got); d > 1e-2 {
		t.Fatalf("fp16 output error too large: %v", d)
	}
}

func TestPrunePass(t *testing.T) {
	g := smallCNN(t, 16)
	graph.Prune(0.5)(g)
	checkAfterPass(t, g, "Prune")
	checked := 0
	for _, n := range g.Nodes {
		if n.Kind == graph.OpConv2D || n.Kind == graph.OpDense {
			if n.Sparsity < 0.4 {
				t.Fatalf("node %s sparsity %v after 50%% prune", n, n.Sparsity)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no prunable nodes found")
	}
}

func TestPruneStructuralGraph(t *testing.T) {
	b := nn.NewBuilder("structural", nn.Options{}, 3, 8, 8)
	b.Conv2D("c", 4, 3, 1, 1, true)
	g := b.Build()
	graph.Prune(0.7)(g)
	if g.Nodes[1].Sparsity != 0.7 {
		t.Fatalf("structural sparsity = %v, want 0.7", g.Nodes[1].Sparsity)
	}
}

func TestPipelineComposes(t *testing.T) {
	g := smallCNN(t, 17)
	in := tensor.New(3, 8, 8).Fill(0.15)
	ref := run(t, g, in)
	p := graph.Pipeline(graph.FoldBN, graph.FuseActivations, graph.EliminateDead, graph.FreezeGraph)
	p(g)
	if !g.Frozen {
		t.Fatal("pipeline should freeze")
	}
	got := run(t, g, in)
	if d := maxAbsDiff(ref, got); d > 1e-4 {
		t.Fatalf("pipeline changed output by %v", d)
	}
}

// Property: for random small CNN seeds, FoldBN+Fuse is semantics
// preserving and strictly reduces op count.
func TestOptimizationEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := smallCNN(t, seed)
		in := tensor.New(3, 8, 8).Randomize(stats.NewRNG(seed), 1)
		ref, err := (&graph.Executor{}).Run(g, in.Clone())
		if err != nil {
			return false
		}
		opt := g.Clone()
		nBefore := opt.NumOps()
		graph.FoldBN(opt)
		graph.FuseActivations(opt)
		if opt.NumOps() >= nBefore {
			return false
		}
		got, err := (&graph.Executor{}).Run(opt, in.Clone())
		if err != nil {
			return false
		}
		return maxAbsDiff(ref, got) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCostAccounting(t *testing.T) {
	b := nn.NewBuilder("cost", nn.Options{}, 3, 8, 8)
	conv := b.Conv2D("conv", 16, 3, 1, 1, true)
	g := b.Build()
	c := graph.NodeCost(conv)
	// MACs: 3*3*3 per filter position x 16*8*8 outputs, plus bias adds.
	wantMACs := float64(3*3*3*16*8*8) + float64(16*8*8)
	if c.FLOPs != wantMACs {
		t.Fatalf("conv FLOPs = %v, want %v", c.FLOPs, wantMACs)
	}
	if c.WeightBytes != float64((3*3*3*16+16)*4) {
		t.Fatalf("weight bytes = %v", c.WeightBytes)
	}
	total := g.TotalCost()
	if total.FLOPs != c.FLOPs {
		t.Fatal("graph total should equal single conv cost")
	}
	if g.FLOPs() != total.FLOPs {
		t.Fatal("FLOPs helper mismatch")
	}
}

func TestCostDTypeShrinksBytes(t *testing.T) {
	b := nn.NewBuilder("dtype", nn.Options{}, 3, 8, 8)
	conv := b.Conv2D("conv", 4, 3, 1, 1, false)
	_ = b.Build()
	fp32 := graph.NodeCost(conv).Bytes()
	conv.DType = tensor.INT8
	int8b := graph.NodeCost(conv).Bytes()
	if int8b*3.9 > fp32 {
		t.Fatalf("int8 bytes %v not ~4x smaller than %v", int8b, fp32)
	}
}

func TestPeakActivationBytes(t *testing.T) {
	b := nn.NewBuilder("peak", nn.Options{}, 4, 16, 16)
	b.Conv2D("c1", 8, 3, 1, 1, false) // doubles activation volume
	b.MaxPool("p1", 2, 2, 0)          // quarters it
	g := b.Build()
	peak := g.PeakActivationBytes()
	// Peak is while conv output (8*16*16) and input (4*16*16) coexist.
	want := float64((4*16*16 + 8*16*16) * 4)
	if peak != want {
		t.Fatalf("peak = %v, want %v", peak, want)
	}
}
