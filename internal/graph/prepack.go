package graph

import "edgebench/internal/tensor"

// PrepackWeights packs every GEMM-executable node's weight operand into
// the blocked-panel layout the GEMM/QGEMM microkernels consume and
// caches it on the node, so repeated forwards skip the per-call
// packPanel traversal. It is the session-open half of the paper's
// ahead-of-time layout planning: serving.NewEngine runs it on the
// served graph, the opt pass manager runs it as the final O1/O2 pass,
// and pipeline stage workers inherit it through their stage engines.
//
// Packing follows the executor's dispatch rules exactly:
//
//   - Ungrouped FP32 Conv2D packs Weights (transposed to [rows, Cout])
//     unless the weights are sparse enough for the zero-skipping GEMM
//     dispatch, which a fixed panel layout cannot reproduce —
//     tensor.PackConvWeights returns nil there and the node keeps the
//     unpacked path.
//   - Quantized Conv2D/Dense pack QWeights whenever the node is
//     int8-dispatchable; nodes the int8 path rejects (absorbed-BN
//     epilogues, unfusable activations) run FP32 and get FP32 panels
//     for their dequantized shadow instead.
//   - FP32 Dense stays unpacked on purpose: its matvec kernel
//     accumulates in a 4-chain order the blocked GEMM cannot reproduce
//     bitwise, and a 1×N GEMM wins nothing over the matvec.
//
// The call is idempotent (already-packed nodes are skipped), which is
// what lets the opt pass reach fixpoint. It returns the number of
// nodes newly packed.
func PrepackWeights(g *Graph) int {
	packed := 0
	for _, n := range g.Nodes {
		if prepackNode(n) {
			packed++
		}
	}
	return packed
}

// int8Prepackable mirrors Executor.evalQuantized's dispatch guards: a
// PackedQ panel is only useful (and only valid) on nodes the int8
// kernel path actually accepts.
func int8Prepackable(n *Node) bool {
	if n.QWeights == nil || n.EpiChannels > 0 {
		return false
	}
	if n.Activation != 0 && actFor(n.Activation) == tensor.ActNone {
		return false
	}
	return int8Executable(n)
}

// prepackNode packs one node's weights if a panel layout applies and
// none is cached yet; it reports whether it packed anything.
func prepackNode(n *Node) bool {
	switch n.Kind {
	case OpConv2D:
		if n.Attrs.GroupCount() > 1 {
			return false // grouped convs slice weights per group at run time
		}
		if int8Prepackable(n) {
			if n.PackedQ != nil {
				return false
			}
			n.PackedQ = tensor.PackQConvWeights(n.QWeights)
			return true
		}
		if n.Weights == nil || n.Packed != nil {
			return false
		}
		if pw := tensor.PackConvWeights(n.Weights); pw != nil {
			n.Packed = pw
			return true
		}
		return false
	case OpDense:
		if !int8Prepackable(n) || n.PackedQ != nil {
			return false
		}
		n.PackedQ = tensor.PackQDenseWeights(n.QWeights)
		return true
	}
	return false
}
