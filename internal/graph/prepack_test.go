package graph_test

import (
	"math"
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/tensor"
)

// prepackCNN builds a graph holding every pre-pack eligibility class in
// one topology: a dense FP32 conv (packed), a grouped conv (skipped —
// the GEMM lowering only covers ungrouped convs), and an FP32 dense
// layer (skipped — matVecInto's 4-chain accumulation has no packed
// twin).
func prepackCNN(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	b := nn.NewBuilder("prepack", nn.Options{Materialize: true, Seed: seed}, 4, 8, 8)
	b.Conv2D("conv1", 8, 3, 1, 1, true)
	b.ReLU("relu1")
	b.Conv2DG("gconv", 8, 3, 1, 1, 2, true)
	b.GlobalAvgPool("gap")
	b.Dense("fc", 10, true)
	b.Softmax("prob")
	return b.Build()
}

func findNode(t testing.TB, g *graph.Graph, name string) *graph.Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("graph has no node %q", name)
	return nil
}

// seededInput fills a deterministic but non-constant input so bitwise
// comparisons exercise real value diversity.
func seededInput(shape tensor.Shape, seed int) *tensor.Tensor {
	in := tensor.New(shape...)
	for i := range in.Data {
		in.Data[i] = float32(math.Sin(float64(i+37*seed)*0.7)) * 0.5
	}
	return in
}

// TestPrepackDispatchProbe: PrepackWeights packs exactly the eligible
// nodes, executing a packed graph is bitwise identical to the unpacked
// GEMM lowering in every executor mode, and the executor's counter
// proves the prepacked kernel actually ran.
func TestPrepackDispatchProbe(t *testing.T) {
	g := prepackCNN(t, 31)
	in := seededInput(g.Input.OutShape, 1)

	// Reference BEFORE packing, pinned to the GEMM lowering: the packed
	// kernel's bitwise contract is against the blocked GEMM, not direct
	// conv (which accumulates in a different order).
	want, err := (&graph.Executor{UseGEMMConv: true}).Run(g, in)
	if err != nil {
		t.Fatal(err)
	}

	if n := graph.PrepackWeights(g); n != 1 {
		t.Fatalf("PrepackWeights packed %d nodes, want 1 (conv1 only)", n)
	}
	if findNode(t, g, "conv1").Packed == nil {
		t.Fatal("conv1 not packed")
	}
	if p := findNode(t, g, "gconv"); p.Packed != nil || p.PackedQ != nil {
		t.Fatal("grouped conv must not be packed")
	}
	if p := findNode(t, g, "fc"); p.Packed != nil || p.PackedQ != nil {
		t.Fatal("FP32 dense must not be packed")
	}
	// Idempotent: a second sweep finds nothing to do (the opt pass runs
	// inside a fixpoint loop and must not report perpetual rewrites).
	if n := graph.PrepackWeights(g); n != 0 {
		t.Fatalf("second PrepackWeights repacked %d nodes, want 0", n)
	}

	// UseGEMMConv stays pinned on the packed-graph executors too: the
	// prepacked conv ignores the flag (dispatch is on n.Packed), but the
	// UNpacked grouped conv honors it, and the reference above lowered
	// that node through GEMM.
	modes := []struct {
		name string
		mk   func() *graph.Executor
	}{
		{"sequential", func() *graph.Executor { return &graph.Executor{UseGEMMConv: true} }},
		{"parallel", func() *graph.Executor { return &graph.Executor{UseGEMMConv: true, Parallel: true, Workers: 4} }},
		{"pooled", func() *graph.Executor { return &graph.Executor{UseGEMMConv: true, Pooled: true} }},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			e := mode.mk()
			got, err := e.Run(g, in)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("out[%d] = %v, want %v (bitwise)", i, got.Data[i], want.Data[i])
				}
			}
			if e.PrepackedDispatches() != 1 {
				t.Fatalf("prepacked dispatches = %d, want 1", e.PrepackedDispatches())
			}
		})
	}
}

// TestPrepackInt8DispatchProbe: on a quantized graph the pre-pack pass
// caches int8 panels for the conv and the dense head, execution stays
// bitwise identical to the unpacked QGEMM path (integer accumulation is
// order-independent), and both prepacked dispatches are counted.
func TestPrepackInt8DispatchProbe(t *testing.T) {
	in := tensor.New(3, 8, 8).Fill(0.25)
	g := mixedCNN(t, 33)
	graph.FuseActivations(g)
	graph.QuantizeINT8(g)
	ref := run(t, g, in)

	if n := graph.PrepackWeights(g); n != 2 {
		t.Fatalf("PrepackWeights packed %d nodes, want 2 (conv1+fc)", n)
	}
	if findNode(t, g, "conv1").PackedQ == nil || findNode(t, g, "fc").PackedQ == nil {
		t.Fatal("quantized conv1/fc must carry PackedQ panels")
	}
	if findNode(t, g, "dw").PackedQ != nil {
		t.Fatal("depthwise conv must not be packed")
	}

	e := &graph.Executor{}
	got, err := e.Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Data {
		if got.Data[i] != ref.Data[i] {
			t.Fatalf("out[%d] = %v, want %v (bitwise vs unpacked int8)", i, got.Data[i], ref.Data[i])
		}
	}
	if e.PrepackedDispatches() != 2 {
		t.Fatalf("prepacked dispatches = %d, want 2", e.PrepackedDispatches())
	}
	i8, f32, _ := e.DispatchCounts()
	if i8 != 2 || f32 != 1 {
		t.Fatalf("dispatch counts i8=%d f32=%d, want 2/1", i8, f32)
	}
}

// TestRunBatchMatchesSequential is the batch-folding contract: RunBatch
// over B distinct inputs is bitwise identical to B sequential Runs, for
// both an FP32 pre-packed graph and a quantized one, and the dispatch
// counters account for every folded sample.
func TestRunBatchMatchesSequential(t *testing.T) {
	const B = 5
	cases := []struct {
		name      string
		mk        func() *graph.Graph
		prepacked int // nodes RunBatch folds through prepacked kernels
	}{
		{"fp32", func() *graph.Graph {
			g := smallCNN(t, 41)
			if n := graph.PrepackWeights(g); n != 2 {
				t.Fatalf("packed %d, want 2 convs", n)
			}
			return g
		}, 2},
		{"int8", func() *graph.Graph {
			g := mixedCNN(t, 43)
			graph.FuseActivations(g)
			graph.QuantizeINT8(g)
			if n := graph.PrepackWeights(g); n != 2 {
				t.Fatalf("packed %d, want conv1+fc", n)
			}
			return g
		}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.mk()
			ins := make([]*tensor.Tensor, B)
			for i := range ins {
				ins[i] = seededInput(g.Input.OutShape, i)
			}
			wants := make([]*tensor.Tensor, B)
			for i := range ins {
				w, err := (&graph.Executor{}).Run(g, ins[i])
				if err != nil {
					t.Fatal(err)
				}
				wants[i] = w
			}
			e := &graph.Executor{}
			outs, err := e.RunBatch(g, ins)
			if err != nil {
				t.Fatal(err)
			}
			if len(outs) != B {
				t.Fatalf("RunBatch returned %d outputs, want %d", len(outs), B)
			}
			for b := range outs {
				if !outs[b].Shape.Equal(wants[b].Shape) {
					t.Fatalf("sample %d: shape %v, want %v", b, outs[b].Shape, wants[b].Shape)
				}
				for i := range wants[b].Data {
					if outs[b].Data[i] != wants[b].Data[i] {
						t.Fatalf("sample %d: out[%d] = %v, want %v (bitwise)",
							b, i, outs[b].Data[i], wants[b].Data[i])
					}
				}
			}
			if got := e.PrepackedDispatches(); got != int64(tc.prepacked*B) {
				t.Fatalf("prepacked dispatches = %d, want %d (%d nodes x %d samples)",
					got, tc.prepacked*B, tc.prepacked, B)
			}
		})
	}
}

// TestRunBatchEdgeCases covers the batched entry point's error paths
// and its single-input delegation.
func TestRunBatchEdgeCases(t *testing.T) {
	g := smallCNN(t, 47)
	graph.PrepackWeights(g)
	e := &graph.Executor{}

	if _, err := e.RunBatch(g, nil); err == nil {
		t.Fatal("empty batch must error")
	}
	bad := []*tensor.Tensor{seededInput(g.Input.OutShape, 0), tensor.New(3, 4, 4).Fill(1)}
	if _, err := e.RunBatch(g, bad); err == nil {
		t.Fatal("shape-mismatched batch member must error")
	}

	in := seededInput(g.Input.OutShape, 9)
	want, err := (&graph.Executor{}).Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := e.RunBatch(g, []*tensor.Tensor{in})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("got %d outputs, want 1", len(outs))
	}
	for i := range want.Data {
		if outs[0].Data[i] != want.Data[i] {
			t.Fatalf("single-input RunBatch diverges from Run at %d", i)
		}
	}
}

// TestPlanReservesPrepackScratch: buffer planning on a pre-packed graph
// reserves the persistent im2col and transposed-output scratch the
// prepacked conv kernel borrows per call — two element counts per
// distinct conv geometry — and reserves nothing before packing.
func TestPlanReservesPrepackScratch(t *testing.T) {
	g := smallCNN(t, 51)
	plain, err := graph.PlanBuffers(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Scratch) != 0 {
		t.Fatalf("unpacked graph reserved scratch %v", plain.Scratch)
	}

	graph.PrepackWeights(g)
	p, err := graph.PlanBuffers(g)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{}
	for _, n := range g.Nodes {
		if n.Packed == nil {
			continue
		}
		ncols := n.OutShape[1] * n.OutShape[2]
		want[ncols*n.Packed.K] = true
		want[ncols*n.Packed.N] = true
	}
	if len(want) == 0 {
		t.Fatal("no packed convs to plan for")
	}
	if len(p.Scratch) != len(want) {
		t.Fatalf("plan reserved %d scratch sizes %v, want %d", len(p.Scratch), p.Scratch, len(want))
	}
	for _, sz := range p.Scratch {
		if !want[sz] {
			t.Fatalf("unexpected scratch reservation %d (want one of %v)", sz, want)
		}
	}
}
