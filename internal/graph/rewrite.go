package graph

import (
	"fmt"
	"math"

	"edgebench/internal/tensor"
)

// This file holds the count-returning graph rewrites behind the
// internal/opt pass manager: pattern fusion (Conv→BN→act and
// Dense→act chains into single epilogue-fused nodes), compile-time
// constant folding, identity elimination, and generalized dead-node
// elimination. Each returns how much it changed so the manager can
// iterate to fixpoint and report per-pass deltas. Unlike FoldBN, the
// pattern fuser never rewrites weights — the batch-norm becomes a
// runtime per-channel affine epilogue inside the fused kernel, so a
// fused graph's outputs are bitwise identical to the unfused graph's.

// epiFusable reports whether the executor has a fused FP32 epilogue
// kernel that can absorb a batch-norm affine for n's kind.
func epiFusable(n *Node) bool {
	switch n.Kind {
	case OpConv2D:
		return n.Attrs.GroupCount() == 1
	case OpDepthwiseConv2D, OpDense:
		return true
	}
	return false
}

// actFusable reports whether an activation node can be absorbed into n
// (the executor either has a fused kernel or applies the recorded
// activation after the unfused kernel, so this set is wider than
// epiFusable).
func actFusable(n *Node) bool {
	switch n.Kind {
	case OpConv2D, OpDepthwiseConv2D, OpConv3D, OpDense, OpAdd:
		return true
	}
	return false
}

// FusePatterns rewrites compute→BatchNorm→activation chains (and the
// degenerate BN-only / activation-only tails) into single fused nodes
// and returns the number of chains rewritten. The batch-norm is
// absorbed as a per-channel affine epilogue (EpiChannels/EpiScale/
// EpiShift) computed with the exact BatchNormInto formula, and the
// activation as the node's fused Activation — both execute inside one
// kernel call, bitwise identical to the separate nodes. A stage is
// absorbed only when the producer's value has exactly one consumer and
// is not itself a graph root (otherwise the intermediate value is
// observable and must keep its own node). Quantized nodes (QWeights)
// absorb activations but never the affine: the int8 requantize epilogue
// has no per-channel affine stage.
func FusePatterns(g *Graph) int {
	cons := consumers(g)
	dead := map[*Node]bool{}
	fused := 0
	for _, n := range g.Nodes {
		if dead[n] || n.Activation != 0 || n.EpiChannels > 0 {
			continue
		}
		if !epiFusable(n) && !actFusable(n) {
			continue
		}
		tail := n
		changed := false

		// Absorb a following batch-norm as the affine epilogue.
		if epiFusable(n) && n.QWeights == nil && singleUse(g, cons, tail) {
			if bn := cons[tail][0]; bn.Kind == OpBatchNorm && !dead[bn] {
				absorbBN(n, bn)
				replaceUses(g, bn, n)
				cons[n] = cons[bn]
				dead[bn] = true
				tail = n
				changed = true
			}
		}

		// Absorb a following activation.
		if actFusable(n) && singleUse(g, cons, tail) {
			if a := cons[tail][0]; a.Kind.IsActivation() && !dead[a] {
				n.Activation = a.Kind
				n.Attrs.Alpha = a.Attrs.Alpha
				replaceUses(g, a, n)
				cons[n] = cons[a]
				dead[a] = true
				changed = true
			}
		}

		if changed {
			fused++
		}
	}
	removeNodes(g, dead)
	return fused
}

// singleUse reports whether n's value flows to exactly one consumer and
// is not observable as a graph root — the legality condition for
// absorbing n's consumer into n.
func singleUse(g *Graph, cons map[*Node][]*Node, n *Node) bool {
	return len(cons[n]) == 1 && g.Output != n && !isExtra(g, n)
}

// absorbBN moves bn's normalization onto n as an epilogue affine. The
// scale/shift terms replicate BatchNormInto exactly so the fused kernel
// computes bit-identical values; on structural graphs (no BN arrays)
// only the channel count is recorded.
func absorbBN(n *Node, bn *Node) {
	c := bn.OutShape[0]
	n.EpiChannels = c
	if p := bn.BN; p != nil {
		scale := make([]float32, c)
		shift := make([]float32, c)
		for ic := 0; ic < c; ic++ {
			s := p.Gamma[ic] / float32(math.Sqrt(float64(p.Variance[ic]+p.Eps)))
			scale[ic] = s
			shift[ic] = p.Beta[ic] - p.Mean[ic]*s
		}
		n.EpiScale, n.EpiShift = scale, shift
	}
}

// FoldConstants evaluates every node whose inputs are all materialized
// constants at compile time — by running the node through the executor
// itself, so folded values take the exact kernel paths inference would —
// and replaces it with an OpConst carrying the result. The sweep runs
// in topological order, so folds cascade through all-constant subgraphs
// in one call. Returns the number of nodes folded.
func FoldConstants(g *Graph) (int, error) {
	folded := 0
	for i, n := range g.Nodes {
		if !constFoldable(n) {
			continue
		}
		val, err := evalConst(g, n)
		if err != nil {
			return folded, fmt.Errorf("graph %s: folding node %s: %w", g.Name, n, err)
		}
		c := &Node{
			Name:     n.Name + "_folded",
			Kind:     OpConst,
			WShape:   val.Shape.Clone(),
			Weights:  val,
			OutShape: val.Shape.Clone(),
			DType:    n.DType,
		}
		c.ID = g.nextID
		g.nextID++
		g.Nodes[i] = c
		replaceUses(g, n, c)
		folded++
	}
	return folded, nil
}

// constFoldable reports whether n can be evaluated at compile time: a
// non-source op with at least one input, every input a materialized
// constant, its own parameters materialized, and no int8 codes (a
// quantized node's dispatch is an execution-path property the fold
// would erase).
func constFoldable(n *Node) bool {
	if n.Kind == OpInput || n.Kind == OpConst || len(n.Inputs) == 0 {
		return false
	}
	if !n.Materialized() || n.QWeights != nil {
		return false
	}
	for _, in := range n.Inputs {
		if in.Kind != OpConst || in.Weights == nil {
			return false
		}
	}
	return true
}

// evalConst evaluates n over its constant inputs with a scratch
// executor on a minimal temporary graph (dummy input node, cloned
// constant inputs, one clone of n).
func evalConst(g *Graph, n *Node) (*tensor.Tensor, error) {
	tmp := New(g.Name+"_constfold", 1)
	cp := &Node{
		Name:        n.Name,
		Kind:        n.Kind,
		Attrs:       n.Attrs,
		WShape:      n.WShape,
		BiasLen:     n.BiasLen,
		BNChannels:  n.BNChannels,
		Weights:     n.Weights,
		Bias:        n.Bias,
		BN:          n.BN,
		OutShape:    n.OutShape,
		DType:       n.DType,
		Activation:  n.Activation,
		EpiChannels: n.EpiChannels,
		EpiScale:    n.EpiScale,
		EpiShift:    n.EpiShift,
	}
	for _, in := range n.Inputs {
		c := &Node{
			Name:     in.Name,
			Kind:     OpConst,
			WShape:   in.WShape,
			Weights:  in.Weights,
			OutShape: in.OutShape,
			DType:    in.DType,
		}
		tmp.Append(c)
		cp.Inputs = append(cp.Inputs, c)
	}
	tmp.Append(cp)
	tmp.Output = cp
	// edgelint:ignore pool-alloc — compile-time dummy input, not a hot path
	return (&Executor{}).Run(tmp, tensor.New(1))
}

// EliminateIdentity removes structural no-ops — shape-preserving nodes
// whose kernels reduce to a copy: factor-1 upsamples, group-1 shuffles,
// zero pads, single-input concats, and flattens of already-flat
// tensors. Returns the number of nodes removed.
func EliminateIdentity(g *Graph) int {
	dead := map[*Node]bool{}
	for _, n := range g.Nodes {
		if !isIdentityNode(n) {
			continue
		}
		replaceUses(g, n, n.Inputs[0])
		dead[n] = true
	}
	removeNodes(g, dead)
	return len(dead)
}

// isIdentityNode reports whether n provably forwards its input
// unchanged (the kernel would perform a pure copy).
func isIdentityNode(n *Node) bool {
	if len(n.Inputs) != 1 || n.Activation != 0 || n.EpiChannels > 0 {
		return false
	}
	if !n.OutShape.Equal(n.Inputs[0].OutShape) {
		return false
	}
	switch n.Kind {
	case OpUpsample:
		return n.Attrs.Factor <= 1
	case OpShuffle:
		return n.Attrs.GroupCount() == 1
	case OpPad:
		return n.Attrs.Pad == 0
	case OpConcat:
		return true // single input, checked above
	case OpFlatten:
		return true // input already rank-1, shapes equal
	}
	return false
}

// EliminateDeadCount removes nodes unreachable from any graph root and
// returns how many were removed. The graph input is always kept even
// when unreferenced (constant folding can orphan it; a graph without
// its input node no longer verifies).
func EliminateDeadCount(g *Graph) int {
	reachable := map[*Node]bool{}
	var mark func(*Node)
	mark = func(n *Node) {
		if reachable[n] {
			return
		}
		reachable[n] = true
		for _, in := range n.Inputs {
			mark(in)
		}
	}
	for _, root := range g.Roots() {
		mark(root)
	}
	if g.Input != nil {
		reachable[g.Input] = true
	}
	dead := map[*Node]bool{}
	for _, n := range g.Nodes {
		if !reachable[n] {
			dead[n] = true
		}
	}
	removeNodes(g, dead)
	return len(dead)
}
