// Package graph defines the computation-graph IR of the edgebench engine:
// typed operation nodes, static (build→freeze→optimize→run) and dynamic
// (define-by-run) execution modes, a functional executor backed by
// internal/tensor, and the optimization passes the paper's frameworks
// implement (Table II): batch-norm folding, activation fusion, dead-node
// elimination, post-training quantization, FP16 casting, and magnitude
// pruning.
package graph

// OpKind identifies the operation a node performs.
type OpKind int

const (
	// OpInput is the graph entry placeholder.
	OpInput OpKind = iota
	// OpConv2D is a standard 2-D convolution.
	OpConv2D
	// OpDepthwiseConv2D convolves one filter per channel.
	OpDepthwiseConv2D
	// OpConv3D is a 3-D (video) convolution.
	OpConv3D
	// OpDense is a fully-connected layer.
	OpDense
	// OpBatchNorm is inference-mode batch normalization.
	OpBatchNorm
	// OpReLU applies max(0,x).
	OpReLU
	// OpReLU6 applies min(max(0,x),6).
	OpReLU6
	// OpLeakyReLU applies the DarkNet leaky rectifier.
	OpLeakyReLU
	// OpSigmoid applies the logistic function.
	OpSigmoid
	// OpTanh applies the hyperbolic tangent.
	OpTanh
	// OpMaxPool2D applies 2-D max pooling.
	OpMaxPool2D
	// OpAvgPool2D applies 2-D average pooling.
	OpAvgPool2D
	// OpMaxPool3D applies 3-D max pooling.
	OpMaxPool3D
	// OpGlobalAvgPool reduces spatial dims to per-channel means.
	OpGlobalAvgPool
	// OpAdd sums two inputs elementwise (residual connections).
	OpAdd
	// OpConcat concatenates inputs along channels.
	OpConcat
	// OpFlatten reshapes to a rank-1 vector.
	OpFlatten
	// OpSoftmax normalizes a vector to a distribution.
	OpSoftmax
	// OpPad zero-pads spatial dims (DarkNet/SSD explicit padding).
	OpPad
	// OpUpsample replicates pixels by an integer factor (YOLOv3 routes).
	OpUpsample
	// OpLSTM consumes a [T, F] sequence and emits the final hidden
	// state — the recurrent extension the paper declares as future work
	// (§II). Weights are packed [4H, F+H], gate order i,f,g,o.
	OpLSTM
	// OpShuffle permutes channels across groups (ShuffleNet's channel
	// shuffle, §VIII's mobile-specific-model group): with g groups,
	// channel i moves to (i%g)*(C/g) + i/g. Pure data movement.
	OpShuffle
	// OpConst is a compile-time constant tensor: zero inputs, value in
	// Weights (shape WShape). Produced by the constant-folding pass when
	// an all-constant subgraph is evaluated offline; costs zero FLOPs at
	// inference.
	OpConst
)

var opNames = map[OpKind]string{
	OpInput:           "input",
	OpConv2D:          "conv2d",
	OpDepthwiseConv2D: "dwconv2d",
	OpConv3D:          "conv3d",
	OpDense:           "dense",
	OpBatchNorm:       "batchnorm",
	OpReLU:            "relu",
	OpReLU6:           "relu6",
	OpLeakyReLU:       "leaky_relu",
	OpSigmoid:         "sigmoid",
	OpTanh:            "tanh",
	OpMaxPool2D:       "maxpool2d",
	OpAvgPool2D:       "avgpool2d",
	OpMaxPool3D:       "maxpool3d",
	OpGlobalAvgPool:   "global_avgpool",
	OpAdd:             "add",
	OpConcat:          "concat",
	OpFlatten:         "flatten",
	OpSoftmax:         "softmax",
	OpPad:             "pad",
	OpUpsample:        "upsample",
	OpLSTM:            "lstm",
	OpShuffle:         "shuffle",
	OpConst:           "const",
}

// String names the op kind.
func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return "unknown"
}

// IsActivation reports whether the op is a pure elementwise activation,
// eligible for kernel fusion into a preceding compute op.
func (k OpKind) IsActivation() bool {
	switch k {
	case OpReLU, OpReLU6, OpLeakyReLU, OpSigmoid, OpTanh:
		return true
	}
	return false
}

// HasWeights reports whether the op carries learned parameters.
// OpConst counts: its value lives in Weights like a parameter tensor.
func (k OpKind) HasWeights() bool {
	switch k {
	case OpConv2D, OpDepthwiseConv2D, OpConv3D, OpDense, OpBatchNorm, OpLSTM, OpConst:
		return true
	}
	return false
}
