package graph_test

import (
	"strings"
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
)

func TestDOTRendering(t *testing.T) {
	b := nn.NewBuilder("dotnet", nn.Options{}, 3, 8, 8)
	b.ConvBNReLU("blk", 4, 3, 1, 1)
	b.Dense("fc", 2, true)
	g := b.Build()
	graph.FoldBN(g)
	graph.FuseActivations(g)
	graph.Prune(0.5)(g)

	dot := g.DOT()
	for _, want := range []string{
		"digraph \"dotnet\"",
		"conv2d",
		"lightblue",   // input highlighted
		"lightyellow", // output highlighted
		"+bn",         // folded batch-norm marked
		"+relu",       // fused activation marked
		"50% sparse",  // pruning marked
		"->",
		"params",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Edges must reference declared nodes only.
	if strings.Count(dot, "digraph") != 1 || !strings.HasSuffix(dot, "}\n") {
		t.Fatal("malformed DOT document")
	}
}

func TestDOTRendersEpilogueFusedChain(t *testing.T) {
	// A pattern-fused node renders its whole absorbed chain
	// ("conv2d+bn+relu6") so the optimized topology stays inspectable.
	b := nn.NewBuilder("fuseddot", nn.Options{}, 3, 8, 8)
	b.Conv2D("conv", 4, 3, 1, 1, false)
	b.BatchNorm("bn")
	b.ReLU6("relu6")
	g := b.Build()
	graph.FusePatterns(g)
	dot := g.DOT()
	if !strings.Contains(dot, "conv2d+bn+relu6") {
		t.Fatalf("DOT output missing the fused chain label:\n%s", dot)
	}
	if strings.Contains(dot, "batchnorm") {
		t.Fatal("absorbed BN still rendered as its own node")
	}
}
