package graph_test

import (
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/tensor"
)

// mixedCNN builds a graph with both int8-executable ops (dense conv,
// dense) and fallback-only ops (depthwise conv), so one run exercises
// the int8 dispatch and the FP32 fallback together.
func mixedCNN(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	b := nn.NewBuilder("mixed", nn.Options{Materialize: true, Seed: seed}, 3, 8, 8)
	b.Conv2D("conv1", 8, 3, 1, 1, true)
	b.ReLU("relu1")
	b.DepthwiseConv2D("dw", 3, 1, 1, true)
	b.GlobalAvgPool("gap")
	b.Dense("fc", 10, true)
	b.Softmax("prob")
	return b.Build()
}

// TestQuantizedDispatchProbe asserts a QuantizeINT8 graph actually
// executes the int8 kernels: the executor's dispatch counters must show
// int8 dispatches for the conv and dense nodes and an FP32 fallback for
// the depthwise conv — in sequential, parallel, and pooled modes.
func TestQuantizedDispatchProbe(t *testing.T) {
	in := tensor.New(3, 8, 8).Fill(0.25)
	modes := []struct {
		name string
		mk   func() *graph.Executor
	}{
		{"sequential", func() *graph.Executor { return &graph.Executor{} }},
		{"parallel", func() *graph.Executor { return &graph.Executor{Parallel: true, Workers: 4} }},
		{"pooled", func() *graph.Executor { return &graph.Executor{Pooled: true} }},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			g := mixedCNN(t, 21)
			graph.FuseActivations(g)
			ref := run(t, g, in)
			graph.QuantizeINT8(g)

			e := mode.mk()
			if i8, f32, _ := e.DispatchCounts(); i8 != 0 || f32 != 0 {
				t.Fatalf("fresh executor counts %d/%d, want 0/0", i8, f32)
			}
			out, err := e.Run(g, in)
			if err != nil {
				t.Fatal(err)
			}
			i8, f32, _ := e.DispatchCounts()
			if i8 != 2 {
				t.Fatalf("int8 dispatches = %d, want 2 (conv1+fc)", i8)
			}
			if f32 != 1 {
				t.Fatalf("fp32 fallback dispatches = %d, want 1 (depthwise)", f32)
			}
			if d := maxAbsDiff(ref, out); d > 0.2 {
				t.Fatalf("int8 output error too large: %v", d)
			}
		})
	}
}

// TestQuantizedFusedActivationMatchesUnfused pins the epilogue fusion:
// a quantized graph with a fused ReLU must equal the same graph with
// the activation as a standalone node (both on the int8 path for the
// conv, identical dynamic quantization inputs).
func TestQuantizedFusedActivationMatchesUnfused(t *testing.T) {
	in := tensor.New(3, 8, 8).Fill(0.3)
	unfused := mixedCNN(t, 33)
	fused := unfused.Clone()
	graph.FuseActivations(fused)
	graph.QuantizeINT8(unfused)
	graph.QuantizeINT8(fused)
	a := run(t, unfused, in)
	b := run(t, fused, in)
	if d := maxAbsDiff(a, b); d != 0 {
		t.Fatalf("fused epilogue diverges from standalone activation by %v", d)
	}
}

// TestQuantizePerChannelExecutesInt8 covers the per-channel pass on the
// same probe: real int8 dispatch with per-output-channel weight scales.
func TestQuantizePerChannelExecutesInt8(t *testing.T) {
	in := tensor.New(3, 8, 8).Fill(0.2)
	g := mixedCNN(t, 8)
	ref := run(t, g, in)
	graph.QuantizeINT8PerChannel(g)
	e := &graph.Executor{}
	out, err := e.Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	if i8, _, _ := e.DispatchCounts(); i8 != 2 {
		t.Fatalf("int8 dispatches = %d, want 2", i8)
	}
	if d := maxAbsDiff(ref, out); d > 0.2 {
		t.Fatalf("per-channel int8 output error too large: %v", d)
	}
	for _, n := range g.Nodes {
		if n.Kind == graph.OpConv2D && n.QWeights != nil && n.QWeights.Scales == nil {
			t.Fatalf("node %s missing per-channel scales", n)
		}
	}
}
