package graph

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"edgebench/internal/tensor"
)

// Executor evaluates a graph numerically over real tensors. It backs the
// functional-correctness path of the engine (the timing path uses the
// analytic cost model in internal/core instead, since the paper's device
// latencies cannot be reproduced by host-CPU wall time).
//
// Two orthogonal options accelerate repeated inference. Parallel runs
// data-independent nodes (Inception branches, residual arms) concurrently
// on a bounded worker pool; outputs are identical to sequential order
// because node inputs are only read from completed earlier levels and
// results are published at level barriers. Pooled plans a static graph's
// intermediate buffers once (PlanBuffers) and recycles them through a
// tensor.Pool arena across Run calls, reproducing the static-framework
// memory reuse the paper measures against define-by-run allocation;
// dynamic graphs keep today's eager-release semantics. An Executor is not
// safe for concurrent Run calls — use one per goroutine (see
// serving.Engine).
type Executor struct {
	// UseGEMMConv selects the im2col+GEMM convolution lowering instead of
	// the direct loop nest. Both produce equal results; the ablation
	// benchmarks compare their host cost.
	UseGEMMConv bool

	// Parallel enables wavefront scheduling: nodes whose inputs are all
	// computed run concurrently, bounded by Workers.
	Parallel bool

	// Workers bounds the scheduler's concurrency when Parallel is set;
	// <= 0 means GOMAXPROCS.
	Workers int

	// Pooled enables the static-graph buffer plan: intermediates live in
	// a per-executor arena reused across Run calls. Ignored for dynamic
	// graphs and for RunValues (which must retain every node value).
	Pooled bool

	// Debug re-proves static safety at runtime: before the first Run on
	// each graph the registered DebugChecker (internal/verify's dataflow
	// passes) revalidates the graph and its buffer plan, and every
	// pooled allocation asserts the recycled dst buffer does not alias a
	// live input of the node about to write it. Costs one map sweep per
	// alloc; off in production, on in tests and `edgeserve -debug`.
	Debug bool

	// plan/pool cache the buffer plan and arena for the last planned
	// graph; replanned when Run sees a different graph. debugged is the
	// last graph the Debug checker accepted, so revalidation runs once
	// per graph, not per inference.
	plan     *Plan
	planned  *Graph
	pool     *tensor.Pool
	debugged *Graph

	// batchPools are the extra per-sample arenas RunBatch lends to
	// samples 1..B-1 (sample 0 reuses pool). One arena per sample keeps
	// the pools single-goroutine while non-folded nodes evaluate all
	// samples concurrently; the slice grows to the largest batch seen
	// and is dropped on replan.
	batchPools []*tensor.Pool

	// levels/leveled cache the wavefront partition for the last graph the
	// Parallel scheduler saw; louts/lerrs are the per-level result slices,
	// sized to the widest level and reused across Run calls so steady-state
	// parallel execution allocates nothing per level. (Safe to keep on the
	// Executor: Run is documented single-goroutine per Executor.)
	levels  [][]*Node
	leveled *Graph
	louts   []*tensor.Tensor
	lerrs   []error

	// nInt8/nFP32 count compute-kernel dispatches (conv/dense families)
	// by execution datatype — the probe tests and the serving metrics
	// use to assert a quantized graph really runs int8 kernels. nFused
	// counts the subset of dispatches (either datatype) that ran a fused
	// epilogue kernel (absorbed BN/activation applied in the output
	// loop) rather than separate elementwise passes. Atomic: the
	// wavefront scheduler evaluates nodes concurrently.
	nInt8, nFP32, nFused atomic.Int64

	// nPrepacked counts conv/dense dispatches that consumed an
	// ahead-of-time packed panel (Node.Packed/PackedQ) instead of packing
	// per call — the probe serving metrics and prepack tests use to
	// assert a pre-packed graph really skips the pack step.
	nPrepacked atomic.Int64

	// lastValues retains the most recent forward pass's node values for
	// RunValues (training) callers.
	lastValues map[*Node]*tensor.Tensor
}

// RunValues evaluates g on input and returns the value of every node —
// the retain-all forward pass training needs (backpropagation reads each
// op's inputs). Dynamic-mode eager release and buffer pooling are
// disabled.
func (e *Executor) RunValues(g *Graph, input *tensor.Tensor) (map[*Node]*tensor.Tensor, error) {
	saved := g.Mode
	g.Mode = Static
	defer func() { g.Mode = saved }()
	if _, err := e.run(g, input, true); err != nil {
		return nil, err
	}
	return e.lastValues, nil
}

// Run evaluates g on input and returns the output tensor. Intermediates
// for nodes whose consumers have all executed are released eagerly in
// Dynamic mode (mirroring define-by-run memory behaviour) and recycled
// into the arena in Pooled static mode.
func (e *Executor) Run(g *Graph, input *tensor.Tensor) (*tensor.Tensor, error) {
	return e.run(g, input, false)
}

// DispatchCounts reports how many compute-kernel dispatches (the
// conv/dense op families) ran on the int8 path vs the FP32 path since
// the executor was created, plus how many of those (across both paths)
// ran a fused epilogue kernel — bias/BN/activation applied in the
// kernel's output loop instead of separate node dispatches. Safe to
// call concurrently with Run.
func (e *Executor) DispatchCounts() (int8Kernels, fp32Kernels, fusedKernels int64) {
	return e.nInt8.Load(), e.nFP32.Load(), e.nFused.Load()
}

// PrepackedDispatches reports how many conv/dense dispatches ran on
// ahead-of-time packed weight panels since the executor was created.
// Safe to call concurrently with Run.
func (e *Executor) PrepackedDispatches() int64 { return e.nPrepacked.Load() }

// PoolStats reports the arena traffic counters summed across the main
// arena and any per-sample batch arenas; zero-valued until a Pooled run
// or a pooled RunBatch has executed.
func (e *Executor) PoolStats() tensor.PoolStats {
	var total tensor.PoolStats
	if e.pool != nil {
		total = e.pool.Stats()
	}
	for _, p := range e.batchPools {
		st := p.Stats()
		total.Gets += st.Gets
		total.Misses += st.Misses
		total.Puts += st.Puts
		total.Idle += st.Idle
	}
	return total
}

func (e *Executor) run(g *Graph, input *tensor.Tensor, retain bool) (*tensor.Tensor, error) {
	if !input.Shape.Equal(g.Input.OutShape) {
		return nil, fmt.Errorf("graph %s: input shape %v, want %v", g.Name, input.Shape, g.Input.OutShape)
	}
	for _, n := range g.Nodes {
		if !n.Materialized() {
			return nil, fmt.Errorf("graph %s: node %s has structural-only parameters; build the model with materialized weights to execute it", g.Name, n)
		}
	}
	rt := &runState{
		exec:   e,
		g:      g,
		values: make(map[*Node]*tensor.Tensor, len(g.Nodes)),
		retain: retain,
	}
	if e.Pooled && !retain && g.Mode == Static {
		if e.plan == nil || e.planned != g {
			plan, err := PlanBuffers(g)
			if err != nil {
				return nil, fmt.Errorf("graph %s: %w", g.Name, err)
			}
			e.plan, e.planned = plan, g
			e.pool = tensor.NewPool()
			e.pool.Preallocate(plan.Slots...)
			e.pool.Preallocate(plan.Scratch...)
			e.batchPools = nil
		}
		rt.pooled = true
		rt.plan = e.plan
		rt.pool = e.pool
		rt.left = make(map[*Node]int, len(e.plan.refs))
		for n, c := range e.plan.refs {
			rt.left[n] = c
		}
	} else if g.Mode == Dynamic && !retain {
		rt.remaining = make(map[*Node]int, len(g.Nodes))
		for _, n := range g.Nodes {
			for _, in := range n.Inputs {
				rt.remaining[in]++
			}
		}
	}
	if e.Debug && e.debugged != g {
		var plan *Plan
		if rt.pooled {
			plan = rt.plan
		}
		if err := debugCheck(g, plan); err != nil {
			return nil, fmt.Errorf("graph %s: debug check: %w", g.Name, err)
		}
		e.debugged = g
	}
	rt.keep = make(map[*Node]bool, 1+len(g.Extra))
	for _, root := range g.Roots() {
		rt.keep[root] = true
	}
	rt.values[g.Input] = input

	var err error
	if e.Parallel {
		err = rt.runLevels()
	} else {
		err = rt.runSequential()
	}
	if err != nil {
		return nil, err
	}
	out, ok := rt.values[g.Output]
	if !ok {
		return nil, fmt.Errorf("graph %s: output value missing", g.Name)
	}
	e.lastValues = rt.values
	return out, nil
}

// runState carries one forward pass's mutable state: computed values,
// release bookkeeping, and the arena when pooling is active.
type runState struct {
	exec   *Executor
	g      *Graph
	values map[*Node]*tensor.Tensor
	keep   map[*Node]bool
	retain bool

	// Dynamic-mode eager release: remaining consumer count per node.
	remaining map[*Node]int

	// Pooled static mode: plan, arena, and remaining counted consumer
	// edges per storage root.
	pooled bool
	plan   *Plan
	pool   *tensor.Pool
	left   map[*Node]int
}

// alloc returns the output buffer for n: a recycled arena slot buffer
// when the plan assigned one (contents arbitrary — every kernel writing
// into it must store all elements), a fresh tensor otherwise. Adding a
// tensor.New call to an eval path instead of alloc silently defeats the
// planner; edgelint's pool-alloc rule flags that.
func (rt *runState) alloc(n *Node) *tensor.Tensor {
	if rt.pooled && rt.plan.Pooled(n) {
		t := rt.pool.Get(n.OutShape...)
		if rt.exec.Debug {
			rt.assertNoAlias(n, t)
		}
		return t
	}
	return tensor.New(n.OutShape...) // edgelint:ignore pool-alloc — the single non-planned fallback
}

// assertNoAlias is the Debug-mode dynamic complement of the static plan
// checker: a recycled dst buffer must not still back one of n's live
// inputs, or the kernel would corrupt its own operand mid-write (the
// *Into contract says dst contents are arbitrary on entry). The panic is
// converted to an error by evalNode's recover guard.
func (rt *runState) assertNoAlias(n *Node, dst *tensor.Tensor) {
	for _, in := range n.Inputs {
		if v := rt.values[in]; v != nil && tensor.SameStorage(v, dst) {
			panic(fmt.Sprintf("debug: planned dst buffer for %s aliases live input %s", n, in))
		}
	}
}

// scratch returns the arena for kernel-internal scratch (im2col) when
// pooling, nil otherwise.
func (rt *runState) scratch() *tensor.Pool {
	if rt.pooled {
		return rt.pool
	}
	return nil
}

// release runs after node n's value is published: dynamic mode drops
// values whose consumers all executed; pooled mode additionally returns
// planned buffers to the arena. Alias nodes (Flatten) hold no storage and
// keep their source buffer alive through the plan's root refcounts.
func (rt *runState) release(n *Node) {
	switch {
	case rt.pooled:
		if isAliasOp(n) {
			return // alias reads don't finish the source buffer
		}
		for _, in := range n.Inputs {
			root := rt.plan.Root(in)
			rt.left[root]--
			if rt.left[root] == 0 && !rt.keep[root] && root.Kind != OpInput {
				if v := rt.values[root]; v != nil && rt.plan.Pooled(root) {
					rt.pool.Put(v)
				}
				delete(rt.values, root)
				for _, al := range rt.plan.aliases[root] {
					delete(rt.values, al)
				}
			}
		}
	case rt.g.Mode == Dynamic && rt.remaining != nil:
		for _, in := range n.Inputs {
			rt.remaining[in]--
			if rt.remaining[in] == 0 && !rt.keep[in] {
				delete(rt.values, in)
			}
		}
	}
}

// runSequential executes nodes in graph (topological) order.
func (rt *runState) runSequential() error {
	for _, n := range rt.g.Nodes {
		if n.Kind == OpInput {
			continue
		}
		out, err := rt.exec.evalNode(n, rt)
		if err != nil {
			return fmt.Errorf("graph %s: node %s: %w", rt.g.Name, n, err)
		}
		rt.values[n] = out
		rt.release(n)
	}
	return nil
}

// runLevels executes the graph as a wavefront: level(n) = 1 +
// max(level(inputs)), every node in a level depends only on strictly
// earlier levels. Multi-node levels are sharded over the persistent
// kernel worker pool (tensor.ParallelForMax, bounded by Workers);
// results land in executor-cached per-level slices and the coordinator
// publishes them into the values map at the level barrier. The
// happens-before chain (ParallelForMax completion before map writes,
// map writes before the next level's shards run) makes node evaluation
// race-free without locking, and output values equal sequential
// execution because per-node inputs are identical. Errors surface
// deterministically as the first failing node in graph order. The
// level partition and result slices are cached on the Executor, so a
// steady-state pass allocates nothing for scheduling.
func (rt *runState) runLevels() error {
	e := rt.exec
	if e.leveled != rt.g {
		e.levels, e.leveled = levelize(rt.g), rt.g
		widest := 0
		for _, level := range e.levels {
			if len(level) > widest {
				widest = len(level)
			}
		}
		e.louts = make([]*tensor.Tensor, widest)
		e.lerrs = make([]error, widest)
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for _, level := range e.levels {
		if len(level) == 1 || workers <= 1 {
			for _, n := range level {
				out, err := e.evalNode(n, rt)
				if err != nil {
					return fmt.Errorf("graph %s: node %s: %w", rt.g.Name, n, err)
				}
				rt.values[n] = out
			}
		} else {
			outs, errs := e.louts[:len(level)], e.lerrs[:len(level)]
			tensor.ParallelForMax(len(level), 1, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					outs[i], errs[i] = e.evalNode(level[i], rt)
				}
			})
			var ferr error
			for i, n := range level {
				if errs[i] != nil && ferr == nil {
					ferr = fmt.Errorf("graph %s: node %s: %w", rt.g.Name, n, errs[i])
				}
				rt.values[n] = outs[i]
				outs[i], errs[i] = nil, nil
			}
			if ferr != nil {
				return ferr
			}
		}
		// Release at the barrier: recycled buffers are only handed to
		// later levels, which start strictly after this point.
		for _, n := range level {
			rt.release(n)
		}
	}
	return nil
}

// levelize partitions non-input nodes into dependency levels, preserving
// graph order within each level.
func levelize(g *Graph) [][]*Node {
	depth := make(map[*Node]int, len(g.Nodes))
	var levels [][]*Node
	for _, n := range g.Nodes {
		if n.Kind == OpInput {
			depth[n] = 0
			continue
		}
		d := 1
		for _, in := range n.Inputs {
			if depth[in]+1 > d {
				d = depth[in] + 1
			}
		}
		depth[n] = d
		for len(levels) < d {
			levels = append(levels, nil)
		}
		levels[d-1] = append(levels[d-1], n)
	}
	return levels
}

// evalNode evaluates one node including its fused activation. Conditions
// the static verifier prevents (shape mismatches, unknown ops) surface
// here as wrapped errors rather than panics, so a verifier miss degrades
// gracefully instead of crashing a whole sweep: the recover guard
// converts residual kernel panics from internal/tensor into errors.
func (e *Executor) evalNode(n *Node, rt *runState) (out *tensor.Tensor, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("kernel panic: %v", r)
		}
	}()
	if out, ok, qerr := e.evalQuantized(n, rt); ok {
		// The int8 kernels fuse the activation into their requantize
		// epilogue, so no separate applyActivation pass runs here.
		e.nInt8.Add(1)
		if n.Activation != 0 {
			e.nFused.Add(1)
		}
		return out, qerr
	}
	if out, ok, ferr := e.evalFused(n, rt); ok {
		// One fused FP32 kernel call: absorbed BN affine and activation
		// run in the output buffer, no separate elementwise dispatches.
		// (Fused adds count as fused kernels but, like unfused adds, stay
		// outside the conv/dense dispatch-family counter.)
		if isComputeKernelKind(n.Kind) {
			e.nFP32.Add(1)
		}
		e.nFused.Add(1)
		return out, ferr
	}
	out, err = e.eval(n, rt)
	if err == nil && n.Activation != 0 {
		out, err = applyActivation(n.Activation, n.Attrs.LeakySlope(), out)
	}
	if err == nil && isComputeKernelKind(n.Kind) {
		e.nFP32.Add(1)
	}
	return out, err
}

// evalFused dispatches nodes carrying a fused FP32 epilogue (an
// absorbed batch-norm affine and/or activation from the pattern-fusion
// pass) to the single-call fused kernels in internal/tensor, mirroring
// the int8 path's requantize epilogue. ok is false when the node has
// nothing fused or no fused kernel exists for its kind (grouped/3-D
// convolutions keep the eval + applyActivation fallback). A node with
// an absorbed affine but no fused kernel is an error: the fallback
// would silently skip the affine, so the verifier forbids the
// combination and the executor refuses it.
func (e *Executor) evalFused(n *Node, rt *runState) (out *tensor.Tensor, ok bool, err error) {
	if n.Activation == 0 && n.EpiChannels == 0 {
		return nil, false, nil
	}
	fusable := false
	switch n.Kind {
	case OpConv2D:
		fusable = n.Attrs.GroupCount() == 1
	case OpDepthwiseConv2D, OpDense:
		fusable = true
	case OpAdd:
		fusable = n.EpiChannels == 0 // adds absorb activations only
	}
	if !fusable {
		if n.EpiChannels > 0 {
			return nil, true, fmt.Errorf("no fused kernel for %s with an absorbed batch-norm epilogue", n.Kind)
		}
		return nil, false, nil
	}
	epi := tensor.Epilogue{
		Scale: n.EpiScale,
		Shift: n.EpiShift,
		Act:   actFor(n.Activation),
		Alpha: n.Attrs.LeakySlope(),
	}
	in, found := rt.values[n.Inputs[0]]
	if !found {
		return nil, true, fmt.Errorf("input %s not computed", n.Inputs[0])
	}
	dst := rt.alloc(n)
	switch n.Kind {
	case OpConv2D:
		switch {
		case n.Packed != nil:
			// Ahead-of-time packed panels force the GEMM lowering (the
			// layout is the GEMM microkernel's); bitwise identical to
			// Conv2DGEMMFusedInto, minus the per-call weight packing.
			tensor.Conv2DPrepackedInto(dst, in, n.Packed, n.Bias, n.Attrs.ConvSpec(), epi, rt.scratch())
			e.nPrepacked.Add(1)
		case e.UseGEMMConv:
			tensor.Conv2DGEMMFusedInto(dst, in, n.Weights, n.Bias, n.Attrs.ConvSpec(), rt.scratch(), epi)
		default:
			tensor.Conv2DFusedInto(dst, in, n.Weights, n.Bias, n.Attrs.ConvSpec(), epi)
		}
	case OpDepthwiseConv2D:
		tensor.DepthwiseConv2DFusedInto(dst, in, n.Weights, n.Bias, n.Attrs.ConvSpec(), epi)
	case OpDense:
		tensor.DenseFusedInto(dst, n.Weights, n.Bias, in.Data, epi)
	case OpAdd:
		b, found := rt.values[n.Inputs[1]]
		if !found {
			return nil, true, fmt.Errorf("input %s not computed", n.Inputs[1])
		}
		tensor.AddFusedInto(dst, in, b, epi)
	}
	return dst, true, nil
}

// isComputeKernelKind reports whether the op is in the conv/dense kernel
// family the dispatch counters track.
func isComputeKernelKind(k OpKind) bool {
	switch k {
	case OpConv2D, OpDepthwiseConv2D, OpConv3D, OpDense:
		return true
	}
	return false
}

// actFor maps a node's fused activation to the tensor epilogue enum.
func actFor(k OpKind) tensor.Act {
	switch k {
	case OpReLU:
		return tensor.ActReLU
	case OpReLU6:
		return tensor.ActReLU6
	case OpLeakyReLU:
		return tensor.ActLeakyReLU
	case OpSigmoid:
		return tensor.ActSigmoid
	case OpTanh:
		return tensor.ActTanh
	}
	return tensor.ActNone
}

// evalQuantized dispatches nodes carrying real int8 weights to the int8
// kernel path: dynamic per-tensor activation quantization, int8 GEMM,
// fused requantize+bias+activation epilogue. ok is false when the node
// has no int8 kernel (no QWeights, grouped conv, unknown fused
// activation) — the caller then takes the FP32 path, which works because
// Weights keeps the dequantized shadow.
func (e *Executor) evalQuantized(n *Node, rt *runState) (out *tensor.Tensor, ok bool, err error) {
	if n.QWeights == nil {
		return nil, false, nil
	}
	if n.EpiChannels > 0 {
		// The int8 requantize epilogue has no per-channel affine stage;
		// fall back to the FP32 fused path via the dequantized shadow.
		return nil, false, nil
	}
	if n.Activation != 0 && actFor(n.Activation) == tensor.ActNone {
		return nil, false, nil
	}
	switch n.Kind {
	case OpConv2D:
		if n.Attrs.GroupCount() > 1 {
			return nil, false, nil
		}
	case OpDense:
	default:
		return nil, false, nil
	}
	in, found := rt.values[n.Inputs[0]]
	if !found {
		return nil, true, fmt.Errorf("input %s not computed", n.Inputs[0])
	}
	dst := rt.alloc(n)
	switch {
	case n.Kind == OpConv2D && n.PackedQ != nil:
		tensor.Conv2DQPrepackedInto(dst, in, n.PackedQ, n.QWeights, n.Bias, n.Attrs.ConvSpec(),
			actFor(n.Activation), n.Attrs.LeakySlope())
		e.nPrepacked.Add(1)
	case n.Kind == OpConv2D:
		tensor.Conv2DQInt8Into(dst, in, n.QWeights, n.Bias, n.Attrs.ConvSpec(),
			actFor(n.Activation), n.Attrs.LeakySlope())
	case n.PackedQ != nil:
		tensor.DenseQPrepackedInto(dst.Data, n.PackedQ, n.QWeights, n.Bias, in.Data,
			actFor(n.Activation), n.Attrs.LeakySlope())
		e.nPrepacked.Add(1)
	default:
		tensor.DenseQInt8Into(dst.Data, n.QWeights, n.Bias, in.Data,
			actFor(n.Activation), n.Attrs.LeakySlope())
	}
	return dst, true, nil
}

func (e *Executor) eval(n *Node, rt *runState) (*tensor.Tensor, error) {
	get := func(i int) (*tensor.Tensor, error) {
		v, ok := rt.values[n.Inputs[i]]
		if !ok {
			return nil, fmt.Errorf("input %s not computed", n.Inputs[i])
		}
		return v, nil
	}
	switch n.Kind {
	case OpConst:
		// The value is the node's weight tensor; consumers treat inputs
		// as read-only, so no defensive copy is made.
		return n.Weights, nil
	case OpConv2D:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		spec := n.Attrs.ConvSpec()
		if g := n.Attrs.GroupCount(); g > 1 {
			return e.groupedConv(n, in, g, spec)
		}
		dst := rt.alloc(n)
		switch {
		case n.Packed != nil:
			tensor.Conv2DPrepackedInto(dst, in, n.Packed, n.Bias, spec, tensor.Epilogue{}, rt.scratch())
			e.nPrepacked.Add(1)
		case e.UseGEMMConv:
			tensor.Conv2DGEMMInto(dst, in, n.Weights, n.Bias, spec, rt.scratch())
		default:
			tensor.Conv2DAutoInto(dst, in, n.Weights, n.Bias, spec)
		}
		return dst, nil
	case OpDepthwiseConv2D:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		dst := rt.alloc(n)
		tensor.DepthwiseConv2DInto(dst, in, n.Weights, n.Bias, n.Attrs.ConvSpec())
		return dst, nil
	case OpConv3D:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		spec := tensor.Conv3DSpec{Stride: n.Attrs.Stride, Pad: n.Attrs.Pad}
		return tensor.Conv3D(in, n.Weights, n.Bias, spec), nil
	case OpDense:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		dst := rt.alloc(n)
		tensor.DenseInto(dst.Data, n.Weights, n.Bias, in.Data)
		return dst, nil
	case OpBatchNorm:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		dst := rt.alloc(n)
		tensor.BatchNormInto(dst, in, n.BN.Gamma, n.BN.Beta, n.BN.Mean, n.BN.Variance, n.BN.Eps)
		return dst, nil
	case OpReLU, OpReLU6, OpLeakyReLU, OpSigmoid, OpTanh:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		dst := rt.alloc(n)
		switch n.Kind {
		case OpReLU:
			tensor.ReLUInto(dst, in)
		case OpReLU6:
			tensor.ReLU6Into(dst, in)
		case OpLeakyReLU:
			tensor.LeakyReLUInto(dst, in, n.Attrs.LeakySlope())
		case OpSigmoid:
			tensor.SigmoidInto(dst, in)
		case OpTanh:
			tensor.TanhInto(dst, in)
		}
		return dst, nil
	case OpMaxPool2D:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		dst := rt.alloc(n)
		tensor.MaxPool2DInto(dst, in, tensor.PoolSpec{Kernel: n.Attrs.Kernel, Stride: n.Attrs.Stride, Pad: n.Attrs.Pad})
		return dst, nil
	case OpAvgPool2D:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		dst := rt.alloc(n)
		tensor.AvgPool2DInto(dst, in, tensor.PoolSpec{Kernel: n.Attrs.Kernel, Stride: n.Attrs.Stride, Pad: n.Attrs.Pad})
		return dst, nil
	case OpMaxPool3D:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		return tensor.MaxPool3DSpec(in, n.Attrs.Pool3DSpec()), nil
	case OpUpsample:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		dst := rt.alloc(n)
		tensor.UpsampleNearest2DInto(dst, in, n.Attrs.Factor)
		return dst, nil
	case OpLSTM:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		h := tensor.LSTM(n.Weights, n.Bias, in)
		return tensor.FromData(h, len(h)), nil
	case OpShuffle:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		dst := rt.alloc(n)
		tensor.ShuffleChannelsInto(dst, in, n.Attrs.GroupCount())
		return dst, nil
	case OpGlobalAvgPool:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		dst := rt.alloc(n)
		tensor.GlobalAvgPool2DInto(dst.Data, in)
		return dst, nil
	case OpAdd:
		a, err := get(0)
		if err != nil {
			return nil, err
		}
		b, err := get(1)
		if err != nil {
			return nil, err
		}
		dst := rt.alloc(n)
		tensor.AddInto(dst, a, b)
		return dst, nil
	case OpConcat:
		ins := make([]*tensor.Tensor, len(n.Inputs))
		for i := range n.Inputs {
			v, err := get(i)
			if err != nil {
				return nil, err
			}
			ins[i] = v
		}
		dst := rt.alloc(n)
		tensor.ConcatChannelsInto(dst, ins...)
		return dst, nil
	case OpFlatten:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		return in.Reshape(in.Shape.NumElems()), nil
	case OpSoftmax:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		dst := rt.alloc(n)
		tensor.SoftmaxInto(dst.Data, in.Data)
		return dst, nil
	case OpPad:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		dst := rt.alloc(n)
		tensor.Pad2DInto(dst, in, n.Attrs.Pad)
		return dst, nil
	default:
		return nil, fmt.Errorf("unsupported op %v", n.Kind)
	}
}

// groupedConv splits the input channels into groups and convolves each
// group with its own filter slice (AlexNet's two-GPU heritage layout).
// Weights are [Cout, Cin/groups, KH, KW]; output channels partition evenly
// across groups.
func (e *Executor) groupedConv(n *Node, in *tensor.Tensor, groups int, spec tensor.Conv2DSpec) (*tensor.Tensor, error) {
	cin, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	cout := n.WShape[0]
	if cin%groups != 0 || cout%groups != 0 {
		return nil, fmt.Errorf("grouped conv: channels %d/%d not divisible by %d groups", cin, cout, groups)
	}
	cinG, coutG := cin/groups, cout/groups
	kh, kw := n.WShape[2], n.WShape[3]
	outs := make([]*tensor.Tensor, groups)
	plane := h * w
	wPer := coutG * cinG * kh * kw
	for gi := 0; gi < groups; gi++ {
		gin := tensor.FromData(in.Data[gi*cinG*plane:(gi+1)*cinG*plane], cinG, h, w)
		gw := tensor.FromData(n.Weights.Data[gi*wPer:(gi+1)*wPer], coutG, cinG, kh, kw)
		var gb []float32
		if n.Bias != nil {
			gb = n.Bias[gi*coutG : (gi+1)*coutG]
		}
		if e.UseGEMMConv {
			outs[gi] = tensor.Conv2DGEMM(gin, gw, gb, spec)
		} else {
			outs[gi] = tensor.Conv2D(gin, gw, gb, spec)
		}
	}
	return tensor.ConcatChannels(outs...), nil
}

func applyActivation(k OpKind, alpha float32, t *tensor.Tensor) (*tensor.Tensor, error) {
	switch k {
	case OpReLU:
		return tensor.ReLU(t), nil
	case OpReLU6:
		return tensor.ReLU6(t), nil
	case OpLeakyReLU:
		return tensor.LeakyReLU(t, alpha), nil
	case OpSigmoid:
		return tensor.Sigmoid(t), nil
	case OpTanh:
		return tensor.Tanh(t), nil
	default:
		return nil, fmt.Errorf("%v is not an activation", k)
	}
}
