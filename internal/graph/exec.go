package graph

import (
	"fmt"

	"edgebench/internal/tensor"
)

// Executor evaluates a graph numerically over real tensors. It backs the
// functional-correctness path of the engine (the timing path uses the
// analytic cost model in internal/core instead, since the paper's device
// latencies cannot be reproduced by host-CPU wall time).
type Executor struct {
	// UseGEMMConv selects the im2col+GEMM convolution lowering instead of
	// the direct loop nest. Both produce equal results; the ablation
	// benchmarks compare their host cost.
	UseGEMMConv bool

	// lastValues retains the most recent forward pass's node values for
	// RunValues (training) callers.
	lastValues map[*Node]*tensor.Tensor
}

// RunValues evaluates g on input and returns the value of every node —
// the retain-all forward pass training needs (backpropagation reads each
// op's inputs). Dynamic-mode eager release is disabled.
func (e *Executor) RunValues(g *Graph, input *tensor.Tensor) (map[*Node]*tensor.Tensor, error) {
	saved := g.Mode
	g.Mode = Static
	defer func() { g.Mode = saved }()
	if _, err := e.run(g, input); err != nil {
		return nil, err
	}
	return e.lastValues, nil
}

// Run evaluates g on input and returns the output tensor. Intermediates
// for nodes whose consumers have all executed are released eagerly in
// Dynamic mode, mirroring define-by-run memory behaviour.
func (e *Executor) Run(g *Graph, input *tensor.Tensor) (*tensor.Tensor, error) {
	return e.run(g, input)
}

func (e *Executor) run(g *Graph, input *tensor.Tensor) (*tensor.Tensor, error) {
	if !input.Shape.Equal(g.Input.OutShape) {
		return nil, fmt.Errorf("graph %s: input shape %v, want %v", g.Name, input.Shape, g.Input.OutShape)
	}
	for _, n := range g.Nodes {
		if !n.Materialized() {
			return nil, fmt.Errorf("graph %s: node %s has structural-only parameters; build the model with materialized weights to execute it", g.Name, n)
		}
	}
	// Count remaining consumers per node for eager release.
	remaining := make(map[*Node]int, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			remaining[in]++
		}
	}
	keep := make(map[*Node]bool, 1+len(g.Extra))
	for _, root := range g.Roots() {
		keep[root] = true
	}
	values := make(map[*Node]*tensor.Tensor, len(g.Nodes))
	values[g.Input] = input
	for _, n := range g.Nodes {
		if n.Kind == OpInput {
			continue
		}
		out, err := e.evalNode(n, values)
		if err != nil {
			return nil, fmt.Errorf("graph %s: node %s: %w", g.Name, n, err)
		}
		values[n] = out
		if g.Mode == Dynamic {
			for _, in := range n.Inputs {
				remaining[in]--
				if remaining[in] == 0 && !keep[in] {
					delete(values, in)
				}
			}
		}
	}
	out, ok := values[g.Output]
	if !ok {
		return nil, fmt.Errorf("graph %s: output value missing", g.Name)
	}
	e.lastValues = values
	return out, nil
}

// evalNode evaluates one node including its fused activation. Conditions
// the static verifier prevents (shape mismatches, unknown ops) surface
// here as wrapped errors rather than panics, so a verifier miss degrades
// gracefully instead of crashing a whole sweep: the recover guard
// converts residual kernel panics from internal/tensor into errors.
func (e *Executor) evalNode(n *Node, values map[*Node]*tensor.Tensor) (out *tensor.Tensor, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("kernel panic: %v", r)
		}
	}()
	out, err = e.eval(n, values)
	if err == nil && n.Activation != 0 {
		out, err = applyActivation(n.Activation, n.Attrs.LeakySlope(), out)
	}
	return out, err
}

func (e *Executor) eval(n *Node, values map[*Node]*tensor.Tensor) (*tensor.Tensor, error) {
	get := func(i int) (*tensor.Tensor, error) {
		v, ok := values[n.Inputs[i]]
		if !ok {
			return nil, fmt.Errorf("input %s not computed", n.Inputs[i])
		}
		return v, nil
	}
	switch n.Kind {
	case OpConv2D:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		spec := n.Attrs.ConvSpec()
		if g := n.Attrs.GroupCount(); g > 1 {
			return e.groupedConv(n, in, g, spec)
		}
		if e.UseGEMMConv {
			return tensor.Conv2DGEMM(in, n.Weights, n.Bias, spec), nil
		}
		return tensor.Conv2DAuto(in, n.Weights, n.Bias, spec), nil
	case OpDepthwiseConv2D:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		return tensor.DepthwiseConv2D(in, n.Weights, n.Bias, n.Attrs.ConvSpec()), nil
	case OpConv3D:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		spec := tensor.Conv3DSpec{Stride: n.Attrs.Stride, Pad: n.Attrs.Pad}
		return tensor.Conv3D(in, n.Weights, n.Bias, spec), nil
	case OpDense:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		out := tensor.Dense(n.Weights, n.Bias, in.Data)
		return tensor.FromData(out, len(out)), nil
	case OpBatchNorm:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		return tensor.BatchNorm(in, n.BN.Gamma, n.BN.Beta, n.BN.Mean, n.BN.Variance, n.BN.Eps), nil
	case OpReLU, OpReLU6, OpLeakyReLU, OpSigmoid, OpTanh:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		return applyActivation(n.Kind, n.Attrs.LeakySlope(), in.Clone())
	case OpMaxPool2D:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		return tensor.MaxPool2D(in, tensor.PoolSpec{Kernel: n.Attrs.Kernel, Stride: n.Attrs.Stride, Pad: n.Attrs.Pad}), nil
	case OpAvgPool2D:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		return tensor.AvgPool2D(in, tensor.PoolSpec{Kernel: n.Attrs.Kernel, Stride: n.Attrs.Stride, Pad: n.Attrs.Pad}), nil
	case OpMaxPool3D:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		return tensor.MaxPool3DSpec(in, n.Attrs.Pool3DSpec()), nil
	case OpUpsample:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		return tensor.UpsampleNearest2D(in, n.Attrs.Factor), nil
	case OpLSTM:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		h := tensor.LSTM(n.Weights, n.Bias, in)
		return tensor.FromData(h, len(h)), nil
	case OpShuffle:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		return tensor.ShuffleChannels(in, n.Attrs.GroupCount()), nil
	case OpGlobalAvgPool:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		v := tensor.GlobalAvgPool2D(in)
		return tensor.FromData(v, len(v)), nil
	case OpAdd:
		a, err := get(0)
		if err != nil {
			return nil, err
		}
		b, err := get(1)
		if err != nil {
			return nil, err
		}
		return tensor.Add(a, b), nil
	case OpConcat:
		ins := make([]*tensor.Tensor, len(n.Inputs))
		for i := range n.Inputs {
			v, err := get(i)
			if err != nil {
				return nil, err
			}
			ins[i] = v
		}
		return tensor.ConcatChannels(ins...), nil
	case OpFlatten:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		return in.Reshape(in.Shape.NumElems()), nil
	case OpSoftmax:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		out := tensor.Softmax(in.Data)
		return tensor.FromData(out, len(out)), nil
	case OpPad:
		in, err := get(0)
		if err != nil {
			return nil, err
		}
		return tensor.Pad2D(in, n.Attrs.Pad), nil
	default:
		return nil, fmt.Errorf("unsupported op %v", n.Kind)
	}
}

// groupedConv splits the input channels into groups and convolves each
// group with its own filter slice (AlexNet's two-GPU heritage layout).
// Weights are [Cout, Cin/groups, KH, KW]; output channels partition evenly
// across groups.
func (e *Executor) groupedConv(n *Node, in *tensor.Tensor, groups int, spec tensor.Conv2DSpec) (*tensor.Tensor, error) {
	cin, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	cout := n.WShape[0]
	if cin%groups != 0 || cout%groups != 0 {
		return nil, fmt.Errorf("grouped conv: channels %d/%d not divisible by %d groups", cin, cout, groups)
	}
	cinG, coutG := cin/groups, cout/groups
	kh, kw := n.WShape[2], n.WShape[3]
	outs := make([]*tensor.Tensor, groups)
	plane := h * w
	wPer := coutG * cinG * kh * kw
	for gi := 0; gi < groups; gi++ {
		gin := tensor.FromData(in.Data[gi*cinG*plane:(gi+1)*cinG*plane], cinG, h, w)
		gw := tensor.FromData(n.Weights.Data[gi*wPer:(gi+1)*wPer], coutG, cinG, kh, kw)
		var gb []float32
		if n.Bias != nil {
			gb = n.Bias[gi*coutG : (gi+1)*coutG]
		}
		if e.UseGEMMConv {
			outs[gi] = tensor.Conv2DGEMM(gin, gw, gb, spec)
		} else {
			outs[gi] = tensor.Conv2D(gin, gw, gb, spec)
		}
	}
	return tensor.ConcatChannels(outs...), nil
}

func applyActivation(k OpKind, alpha float32, t *tensor.Tensor) (*tensor.Tensor, error) {
	switch k {
	case OpReLU:
		return tensor.ReLU(t), nil
	case OpReLU6:
		return tensor.ReLU6(t), nil
	case OpLeakyReLU:
		return tensor.LeakyReLU(t, alpha), nil
	case OpSigmoid:
		return tensor.Sigmoid(t), nil
	case OpTanh:
		return tensor.Tanh(t), nil
	default:
		return nil, fmt.Errorf("%v is not an activation", k)
	}
}
