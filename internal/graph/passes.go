package graph

import (
	"edgebench/internal/tensor"
)

// A Pass transforms a graph in place. Frameworks compose passes into
// their lowering pipelines (Table II optimization rows); each pass is
// individually testable and semantics-preserving (asserted by the
// equivalence property tests).
type Pass func(*Graph)

// consumers returns a map from node to the nodes that read it.
func consumers(g *Graph) map[*Node][]*Node {
	m := make(map[*Node][]*Node, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			m[in] = append(m[in], n)
		}
	}
	return m
}

// replaceUses rewires every reference to old so it points at repl, and
// moves the graph output (and any extra-output root) if necessary.
func replaceUses(g *Graph, old, repl *Node) {
	for _, n := range g.Nodes {
		for i, in := range n.Inputs {
			if in == old {
				n.Inputs[i] = repl
			}
		}
	}
	if g.Output == old {
		g.Output = repl
	}
	for i, x := range g.Extra {
		if x == old {
			g.Extra[i] = repl
		}
	}
}

// removeNodes drops the given set from the node list.
func removeNodes(g *Graph, dead map[*Node]bool) {
	if len(dead) == 0 {
		return
	}
	kept := g.Nodes[:0]
	for _, n := range g.Nodes {
		if !dead[n] {
			kept = append(kept, n)
		}
	}
	g.Nodes = kept
}

// FoldBN folds every batch-norm whose producer is a convolution or dense
// layer with no other consumers into that producer's weights, then removes
// the BN node. This is the conv+BN half of kernel fusion (§III-B).
func FoldBN(g *Graph) {
	cons := consumers(g)
	dead := map[*Node]bool{}
	for _, n := range g.Nodes {
		if n.Kind != OpBatchNorm {
			continue
		}
		prod := n.Inputs[0]
		if len(cons[prod]) != 1 {
			continue // producer feeds other nodes; folding would change them
		}
		switch prod.Kind {
		case OpConv2D, OpDepthwiseConv2D, OpConv3D, OpDense:
			if prod.Weights != nil && n.BN != nil {
				fw, fb := tensor.FoldBatchNorm(prod.Weights, prod.Bias,
					n.BN.Gamma, n.BN.Beta, n.BN.Mean, n.BN.Variance, n.BN.Eps)
				prod.Weights = fw
				prod.Bias = fb
				prod.Packed = nil // panels packed from the pre-fold weights are stale
			}
			// Structurally, folding moves the BN's scale/shift into the
			// producer's weights and a bias of one value per channel
			// (WShape[0] is Cout for convs, channels for depthwise).
			prod.BiasLen = prod.WShape[0]
			prod.FusedBN = true
			replaceUses(g, n, prod)
			dead[n] = true
		}
	}
	removeNodes(g, dead)
}

// FuseActivations merges activation nodes into their single producer when
// the producer is a compute op — the second half of kernel fusion. The
// activation still executes but without a separate kernel dispatch.
func FuseActivations(g *Graph) {
	cons := consumers(g)
	dead := map[*Node]bool{}
	for _, n := range g.Nodes {
		if !n.Kind.IsActivation() {
			continue
		}
		prod := n.Inputs[0]
		if dead[prod] || prod.Activation != 0 || len(cons[prod]) != 1 {
			continue
		}
		switch prod.Kind {
		case OpConv2D, OpDepthwiseConv2D, OpConv3D, OpDense, OpAdd:
			prod.Activation = n.Kind
			prod.Attrs.Alpha = n.Attrs.Alpha
			replaceUses(g, n, prod)
			dead[n] = true
		}
	}
	removeNodes(g, dead)
}

// EliminateDead removes nodes unreachable from the graph output —
// TFLite's "removing several redundant and unnecessary operations" when
// freezing a graph (§III-A).
func EliminateDead(g *Graph) {
	reachable := map[*Node]bool{}
	var mark func(*Node)
	mark = func(n *Node) {
		if reachable[n] {
			return
		}
		reachable[n] = true
		for _, in := range n.Inputs {
			mark(in)
		}
	}
	for _, root := range g.Roots() {
		mark(root)
	}
	dead := map[*Node]bool{}
	for _, n := range g.Nodes {
		if !reachable[n] {
			dead[n] = true
		}
	}
	removeNodes(g, dead)
}

// int8Executable reports whether the executor has a real int8 kernel
// for n: dense convolutions (groups == 1) and dense layers. Other ops
// (depthwise, grouped, 3-D convs, LSTM) keep dequantized FP32 weights
// and take the executor's FP32 fallback.
func int8Executable(n *Node) bool {
	switch n.Kind {
	case OpConv2D:
		return n.Attrs.GroupCount() == 1
	case OpDense:
		return true
	}
	return false
}

// quantizeNode stores real int8 weights on an int8-executable node (per
// channel when perChannel is set) and replaces the FP32 weights with the
// dequantized shadow, so the int8 kernels and the FP32 fallback compute
// from identical calibrated values. Non-executable weight-bearing nodes
// get only the round-trip (quantization error without an int8 kernel).
func quantizeNode(n *Node, perChannel bool) {
	if n.Weights == nil {
		return
	}
	var q *tensor.QTensor
	if perChannel && isPerChannelKind(n.Kind) {
		q = tensor.QuantizePerChannel(n.Weights)
	} else {
		q = tensor.QuantizeSymmetric(n.Weights)
	}
	n.Weights = q.Dequantize()
	n.Packed, n.PackedQ = nil, nil // both layouts derive from the replaced weights
	// A node carrying an absorbed-BN epilogue stays on the FP32 fused
	// path: the int8 requantize epilogue has no per-channel affine stage
	// (verify's fusion rule rejects the combination).
	if int8Executable(n) && n.EpiChannels == 0 {
		n.QWeights = q
	}
}

// isPerChannelKind reports whether the per-channel weight scheme applies
// to the op (one scale per output channel along the first weight axis).
func isPerChannelKind(k OpKind) bool {
	switch k {
	case OpConv2D, OpDepthwiseConv2D, OpConv3D, OpDense:
		return true
	}
	return false
}

// QuantizeINT8 applies post-training symmetric INT8 quantization to every
// weight-bearing node: int8-executable ops (dense conv, dense) get real
// int8 weights the executor dispatches to the int8 kernel path, other
// weights are round-tripped through int8 (so the functional path sees
// quantization error), and the node's execution datatype drops to INT8
// (so the cost model sees 4x smaller weights and the device's INT8
// throughput).
func QuantizeINT8(g *Graph) {
	for _, n := range g.Nodes {
		quantizeNode(n, false)
		n.DType = tensor.INT8
	}
}

// QuantizeINT8PerChannel applies post-training quantization with one
// scale per output channel on weight-bearing compute ops (the TFLite
// convolution scheme) and per-tensor scales elsewhere. Numerically
// tighter than QuantizeINT8; identical cost-model consequences, and the
// same real-int8 execution path for supported ops.
func QuantizeINT8PerChannel(g *Graph) {
	for _, n := range g.Nodes {
		quantizeNode(n, true)
		n.DType = tensor.INT8
	}
}

// ErrNotMaterialized is a sentinel message fragment used when numeric
// execution is requested on a structural-only graph; see Executor.Run.
const ErrNotMaterialized = "structural-only parameters"

// CastFP16 converts execution to half precision: weights are
// round-tripped through binary16 and the datatype drops to FP16.
func CastFP16(g *Graph) {
	for _, n := range g.Nodes {
		if n.Weights != nil {
			n.Weights = tensor.RoundTripFP16(n.Weights)
			n.Packed = nil // stale: packed from the pre-rounding weights
		}
		n.DType = tensor.FP16
	}
}

// Prune applies global magnitude pruning at the given fraction to every
// convolution and dense layer, recording per-node sparsity. Whether the
// zeros translate into compute savings depends on the framework's
// sparse-execution support (Table II ‡‡), which the cost model consults.
func Prune(fraction float64) Pass {
	return func(g *Graph) {
		for _, n := range g.Nodes {
			switch n.Kind {
			case OpConv2D, OpDepthwiseConv2D, OpConv3D, OpDense:
				if n.Weights != nil {
					tensor.PruneMagnitude(n.Weights, fraction)
					n.Sparsity = tensor.Sparsity(n.Weights)
					n.Packed = nil // stale panels; pruned weights take the sparse path
				} else {
					// Structural graph: record the target sparsity for the
					// cost model without weight data to prune.
					n.Sparsity = fraction
				}
			}
		}
	}
}

// FreezeGraph marks the graph deployment-ready (static frameworks run it
// after their offline passes).
func FreezeGraph(g *Graph) { g.Freeze() }

// Pipeline composes passes into one. It runs them unverified — for the
// checked analogue that re-verifies the graph between passes, see
// verify.Pipeline (this package cannot import the verifier without a
// cycle; the old CheckAfterPass hook is absorbed into verify.Checked).
func Pipeline(passes ...Pass) Pass {
	return func(g *Graph) {
		for _, p := range passes {
			p(g)
		}
	}
}
