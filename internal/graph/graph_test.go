package graph_test

import (
	"strings"
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/tensor"
)

// smallCNN builds a materialized conv-bn-relu-pool-dense network for
// functional tests.
func smallCNN(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	b := nn.NewBuilder("small", nn.Options{Materialize: true, Seed: seed}, 3, 8, 8)
	b.ConvBNReLU("block1", 4, 3, 1, 1)
	b.MaxPool("pool1", 2, 2, 0)
	b.Conv2D("conv2", 8, 3, 1, 1, true)
	b.ReLU("relu2")
	b.GlobalAvgPool("gap")
	b.Dense("fc", 10, true)
	b.Softmax("prob")
	return b.Build()
}

func TestGraphValidate(t *testing.T) {
	g := smallCNN(t, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumOps() != len(g.Nodes)-1 {
		t.Fatalf("NumOps = %d, nodes = %d", g.NumOps(), len(g.Nodes))
	}
	if g.Params() == 0 {
		t.Fatal("expected parameters")
	}
}

func TestGraphModeString(t *testing.T) {
	if graph.Static.String() != "static" || graph.Dynamic.String() != "dynamic" {
		t.Fatal("Mode.String wrong")
	}
}

func TestFreezePreventsAdd(t *testing.T) {
	g := graph.New("frozen", 1, 4, 4)
	g.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("adding to frozen graph should panic")
		}
	}()
	g.Add(&graph.Node{Kind: graph.OpReLU})
}

func TestExecutorRunsAndIsNormalized(t *testing.T) {
	g := smallCNN(t, 2)
	in := tensor.New(3, 8, 8).Fill(0.5)
	var e graph.Executor
	out, err := e.Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape.Equal(tensor.Shape{10}) {
		t.Fatalf("output shape = %v", out.Shape)
	}
	var sum float32
	for _, v := range out.Data {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("softmax output sums to %v", sum)
	}
}

func TestExecutorGEMMPathMatchesDirect(t *testing.T) {
	g := smallCNN(t, 3)
	in := tensor.New(3, 8, 8).Fill(0.25)
	direct, err := (&graph.Executor{}).Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	gemm, err := (&graph.Executor{UseGEMMConv: true}).Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.Data {
		d := direct.Data[i] - gemm.Data[i]
		if d > 1e-4 || d < -1e-4 {
			t.Fatalf("paths diverge at %d: %v vs %v", i, direct.Data[i], gemm.Data[i])
		}
	}
}

func TestExecutorRejectsWrongInput(t *testing.T) {
	g := smallCNN(t, 4)
	if _, err := (&graph.Executor{}).Run(g, tensor.New(1, 8, 8)); err == nil {
		t.Fatal("wrong input shape should error")
	}
}

func TestExecutorRejectsStructuralGraph(t *testing.T) {
	b := nn.NewBuilder("structural", nn.Options{}, 3, 8, 8)
	b.Conv2D("c", 4, 3, 1, 1, true)
	g := b.Build()
	_, err := (&graph.Executor{}).Run(g, tensor.New(3, 8, 8))
	if err == nil || !strings.Contains(err.Error(), graph.ErrNotMaterialized) {
		t.Fatalf("structural graph should refuse execution, got %v", err)
	}
}

func TestDynamicModeProducesSameResult(t *testing.T) {
	g1 := smallCNN(t, 5)
	g2 := g1.Clone()
	g2.Mode = graph.Dynamic
	in := tensor.New(3, 8, 8).Fill(0.1)
	a, err := (&graph.Executor{}).Run(g1, in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&graph.Executor{}).Run(g2, in)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("dynamic mode changed numerics")
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := smallCNN(t, 6)
	cp := g.Clone()
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mutating clone weights must not affect the original.
	for _, n := range cp.Nodes {
		if n.Weights != nil {
			n.Weights.Fill(0)
		}
	}
	nonzero := false
	for _, n := range g.Nodes {
		if n.Weights != nil && n.Weights.MaxAbs() > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("clone shares weight storage with original")
	}
	if cp.Params() != g.Params() {
		t.Fatal("clone params differ")
	}
}

func TestResidualBranching(t *testing.T) {
	b := nn.NewBuilder("res", nn.Options{Materialize: true, Seed: 7}, 4, 6, 6)
	trunk := b.Current()
	left := b.Conv2D("left", 4, 3, 1, 1, true)
	right := b.From(trunk).Conv2D("right", 4, 1, 1, 0, true)
	b.Add("join", left, right)
	b.ReLU("out")
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	out, err := (&graph.Executor{}).Run(g, tensor.New(4, 6, 6).Fill(1))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape.Equal(tensor.Shape{4, 6, 6}) {
		t.Fatalf("residual output shape %v", out.Shape)
	}
}

func TestInferShapeConcatAndPad(t *testing.T) {
	b := nn.NewBuilder("cat", nn.Options{}, 2, 5, 5)
	in := b.Current()
	a := b.Conv2D("a", 3, 1, 1, 0, false)
	c := b.From(in).Conv2D("c", 5, 1, 1, 0, false)
	cat := b.Concat("cat", a, c)
	if !cat.OutShape.Equal(tensor.Shape{8, 5, 5}) {
		t.Fatalf("concat shape = %v", cat.OutShape)
	}
	p := b.Pad("pad", 2)
	if !p.OutShape.Equal(tensor.Shape{8, 9, 9}) {
		t.Fatalf("pad shape = %v", p.OutShape)
	}
}

func TestValidateCatchesShapeLie(t *testing.T) {
	g := graph.New("bad", 1, 4, 4)
	n := &graph.Node{Kind: graph.OpReLU, Inputs: []*graph.Node{g.Input}}
	g.Add(n)
	n.OutShape = tensor.Shape{9, 9, 9} // corrupt after add
	if err := g.Validate(); err == nil {
		t.Fatal("Validate should catch wrong shape")
	}
}

func TestValidateCatchesArity(t *testing.T) {
	g := graph.New("bad-arity", 1, 4, 4)
	relu := g.Add(&graph.Node{Kind: graph.OpReLU, Inputs: []*graph.Node{g.Input}})
	relu.Inputs = append(relu.Inputs, g.Input)
	if err := g.Validate(); err == nil {
		t.Fatal("Validate should catch arity violation")
	}
}

func TestOpKindStrings(t *testing.T) {
	for k := graph.OpInput; k <= graph.OpPad; k++ {
		if k.String() == "unknown" {
			t.Errorf("op %d missing a name", k)
		}
	}
	if graph.OpKind(999).String() != "unknown" {
		t.Error("unknown op should stringify as unknown")
	}
	if !graph.OpReLU.IsActivation() || graph.OpConv2D.IsActivation() {
		t.Error("IsActivation wrong")
	}
	if !graph.OpConv2D.HasWeights() || graph.OpAdd.HasWeights() {
		t.Error("HasWeights wrong")
	}
}
