package graph_test

import (
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/tensor"
)

// bigBranchyCNN is branchyCNN scaled so every conv clears the kernel
// parallel threshold: the wavefront scheduler runs branch nodes
// concurrently while each node's conv kernel tries to shard itself,
// exercising the pool's nested-parallelism (saturation → serial) rule
// under real load.
func bigBranchyCNN(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	b := nn.NewBuilder("bigbranchy", nn.Options{Materialize: true, Seed: seed}, 16, 32, 32)
	stem := b.ConvBNReLU("stem", 32, 3, 1, 1)
	br1 := b.From(stem).Conv2D("br1", 32, 3, 1, 1, true)
	br2 := b.From(stem).Conv2D("br2", 32, 3, 1, 1, true)
	br3 := b.From(stem).Conv2D("br3", 32, 3, 1, 1, true)
	cat := b.Concat("cat", br1, br2, br3)
	arm := b.From(cat).Conv2D("arm", 96, 3, 1, 1, true)
	sum := b.Add("residual", cat, arm)
	b.From(sum).GlobalAvgPool("gap")
	b.Dense("fc", 10, true)
	b.Softmax("prob")
	g := b.Build()
	// The point of this graph is nesting: branch convs must individually
	// exceed the intra-op dispatch threshold.
	macs := 32 * 32 * 3 * 3 * 32 * 32 // cin*cout*kh*kw*hout*wout for br1
	if macs < tensor.ParallelThresholdMACs() {
		t.Fatalf("branch conv %d MACs below parallel threshold %d; graph too small to stress nesting",
			macs, tensor.ParallelThresholdMACs())
	}
	return g
}

// TestParallelNestedKernelsBitwiseEqual runs the wavefront executor
// (inter-op) over a graph whose kernels also self-shard (intra-op) and
// checks outputs stay bitwise equal to plain sequential execution
// across repeated passes. Run with -race this doubles as the pool's
// nested-parallelism stress test.
func TestParallelNestedKernelsBitwiseEqual(t *testing.T) {
	g := bigBranchyCNN(t, 21)
	in := tensor.New(16, 32, 32)
	fillDeterministic(in)
	want, err := (&graph.Executor{}).Run(g, in)
	if err != nil {
		t.Fatal(err)
	}
	for name, e := range map[string]*graph.Executor{
		"parallel":        {Parallel: true},
		"pooled+parallel": {Pooled: true, Parallel: true},
	} {
		for pass := 0; pass < 3; pass++ {
			got, err := e.Run(g, in)
			if err != nil {
				t.Fatalf("%s pass %d: %v", name, pass, err)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%s pass %d: out[%d] = %v, want %v", name, pass, i, got.Data[i], want.Data[i])
				}
			}
		}
	}
}
