package graph

import "fmt"

// Plan is a static-mode buffer plan: a liveness-driven assignment of
// every pooled intermediate to a reusable arena slot, computed once from
// the verifier's shape inference and reused by every subsequent
// Executor.Run on the same graph. Two nodes share a slot only when their
// live ranges are disjoint in the executor's topological order, so a
// planned run touches a bounded arena instead of allocating each
// intermediate.
type Plan struct {
	// Slots holds the element count of each arena slot.
	Slots []int
	// PeakBytes is the peak simultaneously-live activation footprint
	// (float32 bytes) under the plan, including the input and all kept
	// outputs.
	PeakBytes int64

	// Scratch holds the element counts of the persistent im2col/GEMM
	// scratch buffers the pre-packed conv kernels borrow from the arena
	// (the lowered [ncols, K] rows matrix and the transposed [ncols, N]
	// GEMM output per distinct geometry), sized from inferred shapes so
	// Executor.run can preallocate them once and lowering reuses stable
	// arena slots instead of churning the pool.
	Scratch []int

	slot    map[*Node]int     // pooled node -> slot index
	root    map[*Node]*Node   // alias node -> storage owner
	aliases map[*Node][]*Node // storage owner -> alias nodes
	refs    map[*Node]int     // storage owner -> counted consumer edges
	keep    map[*Node]bool    // storage owners that outlive the run
}

// isAliasOp reports whether a node's output is a view sharing its input's
// storage (no buffer of its own; its reads keep the input buffer alive).
func isAliasOp(n *Node) bool { return n.Kind == OpFlatten }

// poolable reports whether the executor can evaluate n into a dirty
// recycled buffer. Ops outside this set (Conv3D, LSTM, grouped
// convolutions, pool3d) allocate eagerly; aliases own no storage at all.
func poolable(n *Node) bool {
	switch n.Kind {
	case OpConv2D:
		return n.Attrs.GroupCount() <= 1
	case OpDepthwiseConv2D, OpDense, OpBatchNorm,
		OpReLU, OpReLU6, OpLeakyReLU, OpSigmoid, OpTanh,
		OpMaxPool2D, OpAvgPool2D, OpGlobalAvgPool,
		OpAdd, OpConcat, OpSoftmax, OpPad, OpUpsample, OpShuffle:
		return true
	}
	return false
}

// PlanBuffers computes the buffer plan for a static graph. The graph must
// validate (shape inference is the source of slot sizes). Dynamic graphs
// are rejected: their define-by-run semantics release buffers eagerly
// instead of reusing a persistent arena, the paper's static/dynamic
// memory distinction.
func PlanBuffers(g *Graph) (*Plan, error) {
	if g == nil {
		return nil, fmt.Errorf("plan: nil graph")
	}
	if g.Mode != Static {
		return nil, fmt.Errorf("plan: graph %s is dynamic; buffer planning needs a static graph", g.Name)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	p := &Plan{
		slot:    make(map[*Node]int),
		root:    make(map[*Node]*Node),
		aliases: make(map[*Node][]*Node),
		refs:    make(map[*Node]int),
		keep:    make(map[*Node]bool),
	}
	// Resolve storage owners through alias chains (nodes appear after
	// their inputs, so the input's root is already known).
	for _, n := range g.Nodes {
		if isAliasOp(n) {
			p.root[n] = p.Root(n.Inputs[0])
		}
	}
	// Count consumer edges against storage owners. Alias nodes don't
	// finish a buffer by reading it — their consumers do.
	for _, n := range g.Nodes {
		if isAliasOp(n) {
			continue
		}
		for _, in := range n.Inputs {
			p.refs[p.Root(in)]++
		}
	}
	for _, root := range g.Roots() {
		p.keep[p.Root(root)] = true
	}
	if g.Input != nil {
		p.keep[g.Input] = true
	}
	for owner, root := range p.root {
		p.aliases[root] = append(p.aliases[root], owner)
	}

	// Liveness walk in executor order: assign each pooled node the first
	// free slot of its exact element count (mirroring the pool's keying),
	// then return the slots of inputs whose last counted consumer just
	// ran. Allocation happens before release on purpose: a node must
	// never be handed one of its own inputs' buffers.
	free := make(map[int][]int)
	left := make(map[*Node]int, len(p.refs))
	for n, c := range p.refs {
		left[n] = c
	}
	var cur, peak int64
	if g.Input != nil {
		cur += int64(g.Input.OutShape.NumElems()) * 4
	}
	peak = cur
	for _, n := range g.Nodes {
		if n.Kind == OpInput || isAliasOp(n) {
			continue
		}
		elems := n.OutShape.NumElems()
		if poolable(n) && !p.keep[n] {
			if ids := free[elems]; len(ids) > 0 {
				p.slot[n] = ids[len(ids)-1]
				free[elems] = ids[:len(ids)-1]
			} else {
				p.slot[n] = len(p.Slots)
				p.Slots = append(p.Slots, elems)
			}
		}
		cur += int64(elems) * 4
		if cur > peak {
			peak = cur
		}
		for _, in := range n.Inputs {
			root := p.Root(in)
			left[root]--
			if left[root] == 0 && !p.keep[root] {
				cur -= int64(root.OutShape.NumElems()) * 4
				if s, ok := p.slot[root]; ok {
					free[root.OutShape.NumElems()] = append(free[root.OutShape.NumElems()], s)
				}
			}
		}
	}
	p.PeakBytes = peak

	// Reserve persistent scratch for pre-packed convolutions: the kernel
	// Gets exactly these sizes per dispatch, so preallocating one buffer
	// per distinct size turns the per-call im2col lowering into writes
	// against stable arena slots. (Concurrent same-level dispatches under
	// the wavefront scheduler fall back to on-demand pool growth.)
	seen := make(map[int]bool)
	for _, n := range g.Nodes {
		if n.Packed == nil || n.Kind != OpConv2D || n.Attrs.GroupCount() > 1 {
			continue
		}
		ncols := n.OutShape[1] * n.OutShape[2]
		for _, elems := range []int{ncols * n.Packed.K, ncols * n.Packed.N} {
			if !seen[elems] {
				seen[elems] = true
				p.Scratch = append(p.Scratch, elems)
			}
		}
	}
	return p, nil
}

// Root returns the storage owner of n's output buffer: n itself, or the
// non-alias ancestor a view chain (Flatten) shares data with.
func (p *Plan) Root(n *Node) *Node {
	if r, ok := p.root[n]; ok {
		return r
	}
	return n
}

// Pooled reports whether the plan assigned n an arena slot.
func (p *Plan) Pooled(n *Node) bool {
	_, ok := p.slot[n]
	return ok
}

// SlotOf returns the arena slot the plan assigned to n; ok is false when
// n owns no slot (unpooled op, alias, kept output). The verify package's
// plan dataflow pass reads assignments through this accessor so it can
// re-derive liveness independently and prove no slot ever holds two
// simultaneously-live tensors.
func (p *Plan) SlotOf(n *Node) (slot int, ok bool) {
	slot, ok = p.slot[n]
	return slot, ok
}

// Reassign overrides n's slot assignment. It exists only as a mutation
// seam for the verify package's tests and fuzzing: seeding a deliberate
// overlap (two live nodes sharing a slot) must be caught by
// verify.CheckPlan, proving the checker would catch a real planner bug.
// Production code never calls this — PlanBuffers is the sole authority.
func (p *Plan) Reassign(n *Node, slot int) {
	p.slot[n] = slot
}

// Kept reports whether n's storage owner must survive the run (graph
// input, output, or extra root) and so never returns to the arena.
func (p *Plan) Kept(n *Node) bool { return p.keep[p.Root(n)] }

// NumSlots returns the number of arena slots the plan uses.
func (p *Plan) NumSlots() int { return len(p.Slots) }

// ArenaBytes returns the total float32 byte size of the arena.
func (p *Plan) ArenaBytes() int64 {
	var b int64
	for _, e := range p.Slots {
		b += int64(e) * 4
	}
	return b
}
