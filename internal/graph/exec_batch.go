package graph

import (
	"fmt"
	"sync"

	"edgebench/internal/tensor"
)

// batchFold classifies how a node executes inside RunBatch: folded into
// one wide GEMM across the whole micro-batch, or per-sample through the
// ordinary evalNode dispatch.
type batchFold int

const (
	foldNone     batchFold = iota // no batch kernel; evaluate each sample
	foldFP32Conv                  // pre-packed FP32 conv: one (B·M)×K GEMM
	foldQConv                     // pre-packed int8 conv: one wide QGEMM
	foldQDense                    // pre-packed int8 dense: one [B, In] QGEMM
)

// foldKind replicates evalNode's dispatch decision for a whole batch:
// a node folds only when every sample would take the same pre-packed
// kernel path, so RunBatch outputs are bitwise identical to B
// sequential Run calls.
func foldKind(n *Node) batchFold {
	switch n.Kind {
	case OpConv2D:
		if n.Attrs.GroupCount() > 1 {
			return foldNone
		}
		if int8Prepackable(n) {
			if n.PackedQ != nil {
				return foldQConv
			}
			return foldNone // unpacked int8 path has no batch kernel
		}
		if n.Packed != nil {
			return foldFP32Conv
		}
	case OpDense:
		if int8Prepackable(n) && n.PackedQ != nil {
			return foldQDense
		}
	}
	return foldNone
}

// RunBatch evaluates g on a micro-batch of inputs, folding the batch
// dimension through every pre-packed conv/dense node: the B lowered
// activation matrices stack into one (B·M)×K operand and run as a
// single wide GEMM against the node's ahead-of-time packed panels,
// which is where a batch window earns real throughput (wider GEMMs
// amortize panel traversal and spread rows across the worker pool).
// Nodes without a batch kernel evaluate per sample through the normal
// dispatch — concurrently, one goroutine per sample, since samples are
// independent — so outputs are bitwise identical to B sequential Run
// calls on the same graph. On static graphs each sample runs against
// its own arena (sample 0 borrows the executor's Run arena, the rest
// use cached per-sample pools) with per-sample refcount release: a
// buffer returns to its free list the moment its owning sample is done
// with it, so each arena holds one live buffer per plan slot instead of
// retaining every intermediate (pooling never changes values, only
// allocation traffic). Like Run, RunBatch is single-goroutine per
// Executor.
func (e *Executor) RunBatch(g *Graph, inputs []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("graph %s: empty batch", g.Name)
	}
	if len(inputs) == 1 {
		out, err := e.Run(g, inputs[0])
		if err != nil {
			return nil, err
		}
		return []*tensor.Tensor{out}, nil
	}
	for i, in := range inputs {
		if in == nil {
			return nil, fmt.Errorf("graph %s: batch input %d is nil", g.Name, i)
		}
		if !in.Shape.Equal(g.Input.OutShape) {
			return nil, fmt.Errorf("graph %s: batch input %d shape %v, want %v", g.Name, i, in.Shape, g.Input.OutShape)
		}
	}
	for _, n := range g.Nodes {
		if !n.Materialized() {
			return nil, fmt.Errorf("graph %s: node %s has structural-only parameters; build the model with materialized weights to execute it", g.Name, n)
		}
	}
	pooled := g.Mode == Static
	if pooled {
		if e.plan == nil || e.planned != g {
			plan, err := PlanBuffers(g)
			if err != nil {
				return nil, fmt.Errorf("graph %s: %w", g.Name, err)
			}
			e.plan, e.planned = plan, g
			e.pool = tensor.NewPool()
			e.pool.Preallocate(plan.Slots...)
			e.pool.Preallocate(plan.Scratch...)
			e.batchPools = nil
		}
		// One arena per sample: the Pool is not goroutine-safe across a
		// Get/Put pair, and non-folded nodes evaluate samples
		// concurrently, so each sample owns an arena for the whole call.
		for len(e.batchPools) < len(inputs)-1 {
			p := tensor.NewPool()
			p.Preallocate(e.plan.Slots...)
			p.Preallocate(e.plan.Scratch...)
			e.batchPools = append(e.batchPools, p)
		}
	}
	keep := make(map[*Node]bool, 1+len(g.Extra))
	for _, root := range g.Roots() {
		keep[root] = true
	}
	rts := make([]*runState, len(inputs))
	for i := range rts {
		rts[i] = &runState{
			exec:   e,
			g:      g,
			values: make(map[*Node]*tensor.Tensor, len(g.Nodes)),
			keep:   keep,
			retain: !pooled,
		}
		if pooled {
			rts[i].pooled = true
			rts[i].plan = e.plan
			if i == 0 {
				rts[i].pool = e.pool
			} else {
				rts[i].pool = e.batchPools[i-1]
			}
			rts[i].left = make(map[*Node]int, len(e.plan.refs))
			for n, c := range e.plan.refs {
				rts[i].left[n] = c
			}
		}
		rts[i].values[g.Input] = inputs[i]
	}
	for _, n := range g.Nodes {
		if n.Kind == OpInput {
			continue
		}
		if err := e.evalBatchNode(n, rts); err != nil {
			return nil, fmt.Errorf("graph %s: node %s: %w", g.Name, n, err)
		}
	}
	outs := make([]*tensor.Tensor, len(rts))
	for i, rt := range rts {
		out, ok := rt.values[g.Output]
		if !ok {
			return nil, fmt.Errorf("graph %s: output value missing", g.Name)
		}
		outs[i] = out
	}
	return outs, nil
}

// evalBatchNode runs one node for the whole micro-batch: a folded wide
// GEMM when the node carries packed panels, per-sample evalNode
// otherwise. The recover guard mirrors evalNode's, converting residual
// kernel panics into errors.
func (e *Executor) evalBatchNode(n *Node, rts []*runState) (err error) {
	fold := foldKind(n)
	if fold == foldNone {
		// Samples are independent, so evaluate all of them concurrently:
		// each runState owns its values map and arena, dispatch counters
		// are atomic, and every sample computes exactly what a sequential
		// Run would, so concurrency changes wall-clock, never values.
		// This is where a batch earns throughput on the ops with no wide
		// kernel — B depthwise/pool/activation evaluations overlap
		// instead of queueing behind one another. evalNode's recover
		// guard converts kernel panics to errors inside each goroutine.
		errs := make([]error, len(rts))
		var wg sync.WaitGroup
		for i := range rts {
			rt := rts[i]
			wg.Add(1)
			go func() {
				defer wg.Done()
				out, err := e.evalNode(n, rt)
				if err != nil {
					errs[i] = err
					return
				}
				rt.values[n] = out
				rt.release(n)
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("kernel panic: %v", r)
		}
	}()
	b := int64(len(rts))
	ins := make([]*tensor.Tensor, len(rts))
	dsts := make([]*tensor.Tensor, len(rts))
	for i, rt := range rts {
		in, ok := rt.values[n.Inputs[0]]
		if !ok {
			return fmt.Errorf("input %s not computed", n.Inputs[0])
		}
		ins[i] = in
		dsts[i] = rt.alloc(n)
	}
	switch fold {
	case foldFP32Conv:
		// Same epilogue evalFused builds; with nothing fused it degrades
		// to the bias-only sweep the plain eval path runs.
		epi := tensor.Epilogue{
			Scale: n.EpiScale,
			Shift: n.EpiShift,
			Act:   actFor(n.Activation),
			Alpha: n.Attrs.LeakySlope(),
		}
		tensor.Conv2DPrepackedBatchInto(dsts, ins, n.Packed, n.Bias, n.Attrs.ConvSpec(), epi)
		e.nFP32.Add(b)
		if n.Activation != 0 || n.EpiChannels > 0 {
			e.nFused.Add(b)
		}
	case foldQConv:
		tensor.Conv2DQPrepackedBatchInto(dsts, ins, n.PackedQ, n.QWeights, n.Bias,
			n.Attrs.ConvSpec(), actFor(n.Activation), n.Attrs.LeakySlope())
		e.nInt8.Add(b)
		if n.Activation != 0 {
			e.nFused.Add(b)
		}
	case foldQDense:
		tensor.DenseQPrepackedBatchInto(dsts, ins, n.PackedQ, n.QWeights, n.Bias,
			actFor(n.Activation), n.Attrs.LeakySlope())
		e.nInt8.Add(b)
		if n.Activation != 0 {
			e.nFused.Add(b)
		}
	}
	e.nPrepacked.Add(b)
	for i, rt := range rts {
		rt.values[n] = dsts[i]
		rt.release(n)
	}
	return nil
}
