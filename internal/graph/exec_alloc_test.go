//go:build !race

package graph_test

import (
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/tensor"
)

// TestParallelSteadyStateAllocs pins the scheduling-allocation fix: the
// wavefront executor caches its level partition and result slices, so a
// steady-state pooled-parallel pass must cost at most a small constant
// number of allocations more than the pooled-sequential pass (one fn
// closure per multi-node level, plus kernel-internal scratch misses),
// not the hundreds/op the per-level make() calls used to add.
// Excluded under -race: the race runtime adds allocations of its own.
func TestParallelSteadyStateAllocs(t *testing.T) {
	g := branchyCNN(t, 31)
	in := tensor.New(3, 16, 16)
	fillDeterministic(in)

	measure := func(e *graph.Executor) float64 {
		for i := 0; i < 3; i++ { // warm plan, arena, level cache, pools
			if _, err := e.Run(g, in); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := e.Run(g, in); err != nil {
				t.Fatal(err)
			}
		})
	}

	seq := measure(&graph.Executor{Pooled: true})
	par := measure(&graph.Executor{Pooled: true, Parallel: true})
	if par > seq+16 {
		t.Errorf("pooled-parallel steady state = %.0f allocs/op vs pooled %.0f; scheduler is allocating per level again",
			par, seq)
	}
}
