package graph

// Cost is the analytic resource footprint of one node (or, summed, of a
// whole graph) for a single-batch inference. FLOPs follow the paper's
// Table I convention of one FLOP per multiply-accumulate, which makes our
// model totals directly comparable to the paper's GFLOP column.
type Cost struct {
	// FLOPs is the arithmetic work (1 per MAC, 1 per elementwise op).
	FLOPs float64
	// MACs is the multiply-accumulate subset of FLOPs — the convolution
	// and matrix-product work. Unlike FLOPs it is invariant under fusion:
	// absorbing a BN or activation into a compute kernel moves elementwise
	// work into the kernel's epilogue but adds no multiplies to the
	// contraction, so O2 and O0 lowerings of one model report equal MACs
	// (the property the cost tests pin down).
	MACs float64
	// WeightBytes is parameter traffic in the node's execution datatype.
	WeightBytes float64
	// ActInBytes and ActOutBytes are activation traffic in and out.
	ActInBytes  float64
	ActOutBytes float64
}

// Bytes returns total memory traffic for the node.
func (c Cost) Bytes() float64 { return c.WeightBytes + c.ActInBytes + c.ActOutBytes }

// Plus returns the elementwise sum of two costs.
func (c Cost) Plus(o Cost) Cost {
	return Cost{
		FLOPs:       c.FLOPs + o.FLOPs,
		MACs:        c.MACs + o.MACs,
		WeightBytes: c.WeightBytes + o.WeightBytes,
		ActInBytes:  c.ActInBytes + o.ActInBytes,
		ActOutBytes: c.ActOutBytes + o.ActOutBytes,
	}
}

// NodeCost computes the analytic cost of a node from its structure. It is
// recomputed on demand so optimization passes only need to mutate the
// graph, never cached numbers.
func NodeCost(n *Node) Cost {
	var c Cost
	outElems := float64(n.OutShape.NumElems())
	for _, in := range n.Inputs {
		c.ActInBytes += float64(in.OutShape.NumElems()) * float64(n.DType.Bytes())
	}
	c.ActOutBytes = outElems * float64(n.DType.Bytes())
	c.WeightBytes = float64(n.WeightBytes())

	switch n.Kind {
	case OpInput:
		return Cost{}
	case OpConv2D, OpConv3D:
		// MACs = (elements per filter) x (output elements).
		perFilter := float64(n.WShape.NumElems()) / float64(n.WShape[0])
		c.MACs = perFilter * outElems
		c.FLOPs = c.MACs
		if n.BiasLen > 0 {
			c.FLOPs += outElems
		}
	case OpDepthwiseConv2D:
		kh, kw := n.WShape[1], n.WShape[2]
		c.MACs = float64(kh*kw) * outElems
		c.FLOPs = c.MACs
		if n.BiasLen > 0 {
			c.FLOPs += outElems
		}
	case OpDense:
		c.MACs = float64(n.WShape.NumElems())
		c.FLOPs = c.MACs
		if n.BiasLen > 0 {
			c.FLOPs += outElems
		}
	case OpLSTM:
		// Per step: the packed GEMV plus ~8 elementwise ops per hidden
		// unit for the gate nonlinearities and state updates.
		steps := float64(n.in(0).OutShape[0])
		hidden := float64(n.WShape[0] / 4)
		c.MACs = steps * float64(n.WShape.NumElems())
		c.FLOPs = steps * (float64(n.WShape.NumElems()) + float64(n.BiasLen) + 8*hidden)
	case OpBatchNorm:
		c.FLOPs = 2 * outElems // scale + shift per element
	case OpReLU, OpReLU6, OpLeakyReLU, OpSigmoid, OpTanh, OpAdd, OpSoftmax:
		c.FLOPs = outElems
	case OpMaxPool2D, OpAvgPool2D:
		c.FLOPs = float64(n.Attrs.Kernel*n.Attrs.Kernel) * outElems
	case OpMaxPool3D:
		s := n.Attrs.Pool3DSpec()
		c.FLOPs = float64(s.KernelD*s.Kernel*s.Kernel) * outElems
	case OpGlobalAvgPool:
		c.FLOPs = float64(n.in(0).OutShape.NumElems())
	case OpConcat, OpFlatten, OpPad, OpUpsample, OpShuffle:
		c.FLOPs = 0 // pure data movement
	}

	if n.EpiChannels > 0 {
		c.FLOPs += 2 * outElems // absorbed BN affine: scale + shift per element
	}
	if n.Activation != 0 {
		c.FLOPs += outElems // fused activation still computes
	}
	return c
}

// TotalCost sums the cost of every node in the graph.
func (g *Graph) TotalCost() Cost {
	var c Cost
	for _, n := range g.Nodes {
		c = c.Plus(NodeCost(n))
	}
	return c
}

// FLOPs returns the total arithmetic work of one inference.
func (g *Graph) FLOPs() float64 { return g.TotalCost().FLOPs }

// PeakActivationBytes estimates the largest set of live activations during
// a topological execution — the graph's working-set proxy used by the
// memory-capacity check (Table V: models that exceed device memory need a
// dynamic graph or fail).
func (g *Graph) PeakActivationBytes() float64 {
	remaining := make(map[*Node]int, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			remaining[in]++
		}
	}
	live := make(map[*Node]float64, 8)
	var cur, peak float64
	touch := func(n *Node) {
		b := float64(n.OutShape.NumElems()) * float64(n.DType.Bytes())
		live[n] = b
		cur += b
		if cur > peak {
			peak = cur
		}
	}
	touch(g.Input)
	for _, n := range g.Nodes {
		if n.Kind == OpInput {
			continue
		}
		touch(n)
		for _, in := range n.Inputs {
			remaining[in]--
			if remaining[in] == 0 {
				cur -= live[in]
				delete(live, in)
			}
		}
	}
	return peak
}
