package thermal_test

import (
	"math"
	"testing"
	"testing/quick"

	"edgebench/internal/device"
	"edgebench/internal/thermal"
)

func constPower(w float64) func(float64) float64 {
	return func(float64) float64 { return w }
}

func TestIdleIsFixedPoint(t *testing.T) {
	for _, name := range []string{"RPi3", "JetsonTX2", "JetsonNano", "EdgeTPU", "Movidius"} {
		dev := device.MustGet(name)
		sim := thermal.NewSimulator(dev)
		trace := sim.Run(600, constPower(dev.IdleWatts))
		final := trace[len(trace)-1].JunctionC
		if math.Abs(final-dev.Thermal.IdleC) > 0.5 {
			t.Errorf("%s: idle power should hold at %.1f°C, got %.1f", name, dev.Thermal.IdleC, final)
		}
	}
}

func TestMonotoneRiseUnderLoad(t *testing.T) {
	// Movidius has no fan, throttle, or shutdown: heating must be
	// strictly monotone toward the fixed point.
	dev := device.MustGet("Movidius")
	sim := thermal.NewSimulator(dev)
	trace := sim.Run(900, constPower(thermal.SustainedWatts(dev)))
	for i := 1; i < len(trace); i++ {
		if trace[i].JunctionC < trace[i-1].JunctionC-1e-9 {
			t.Fatalf("temperature dipped at %v without cause", trace[i].TimeSec)
		}
	}
	if trace[len(trace)-1].JunctionC < trace[0].JunctionC+8 {
		t.Fatal("sustained load should heat the stick substantially")
	}
}

func TestNanoThrottles(t *testing.T) {
	// The fanless Nano engages DVFS instead of shutting down: the trace
	// reaches the throttle point, clocks down, and oscillates below it.
	dev := device.MustGet("JetsonNano")
	sim := thermal.NewSimulator(dev)
	trace := sim.Run(3600, constPower(thermal.SustainedWatts(dev)))
	throttled := false
	for _, p := range trace {
		if p.Shutdown {
			t.Fatal("Nano must not shut down")
		}
		if p.Throttled {
			throttled = true
			if p.JunctionC > dev.Thermal.ThrottleC+2 {
				t.Fatalf("throttle failed to cap temperature: %.1f", p.JunctionC)
			}
		}
	}
	if !throttled {
		t.Fatal("sustained load should throttle the fanless Nano")
	}
	if f := sim.SustainedFactor(thermal.SustainedWatts(dev)); f != dev.Thermal.ThrottleFactor {
		t.Fatalf("sustained factor = %v, want throttle factor %v", f, dev.Thermal.ThrottleFactor)
	}
}

func TestSustainedFactorVariants(t *testing.T) {
	// RPi under heavy load shuts down -> factor 0; TX2's fan holds full
	// speed -> factor 1.
	rpi := thermal.NewSimulator(device.MustGet("RPi3"))
	if f := rpi.SustainedFactor(thermal.SustainedWatts(device.MustGet("RPi3"))); f != 0 {
		t.Fatalf("RPi sustained factor = %v, want 0 (shutdown)", f)
	}
	tx2 := thermal.NewSimulator(device.MustGet("JetsonTX2"))
	if f := tx2.SustainedFactor(thermal.SustainedWatts(device.MustGet("JetsonTX2"))); f != 1 {
		t.Fatalf("TX2 sustained factor = %v, want 1 (fan)", f)
	}
}

func TestRPiThermalShutdown(t *testing.T) {
	// Fig. 14: the fanless, heatsink-less RPi reaches shutdown while
	// running a heavy DNN.
	dev := device.MustGet("RPi3")
	sim := thermal.NewSimulator(dev)
	trace := sim.Run(1800, constPower(thermal.SustainedWatts(dev)))
	hit := false
	var peak float64
	for _, p := range trace {
		if p.Shutdown {
			hit = true
		}
		if p.JunctionC > peak {
			peak = p.JunctionC
		}
	}
	if !hit {
		t.Fatalf("RPi should trip thermal shutdown (peak %.1f°C)", peak)
	}
	// After shutdown the device cools back toward ambient.
	final := trace[len(trace)-1]
	if !final.Shutdown || final.JunctionC >= peak-5 {
		t.Fatalf("post-shutdown cooling missing: final %.1f vs peak %.1f", final.JunctionC, peak)
	}
}

func TestTX2FanActivates(t *testing.T) {
	// Fig. 14 annotates "Fan Working" on the TX2 trace; the fan holds
	// the running temperature far below the fanless fixed point.
	dev := device.MustGet("JetsonTX2")
	sim := thermal.NewSimulator(dev)
	load := thermal.SustainedWatts(dev)
	trace := sim.Run(1800, constPower(load))
	fanSeen := false
	for _, p := range trace {
		if p.FanOn {
			fanSeen = true
		}
		if p.Shutdown {
			t.Fatal("TX2 must not shut down")
		}
	}
	if !fanSeen {
		t.Fatal("TX2 fan should spin up under sustained load")
	}
	final := trace[len(trace)-1].JunctionC
	fanless := sim.AmbientC + load*dev.Thermal.ResistanceCPerW
	if final >= fanless-15 {
		t.Fatalf("fan ineffective: final %.1f vs fanless %.1f", final, fanless)
	}
}

func TestEdgeTPUFanStaysOff(t *testing.T) {
	// Table VI: the EdgeTPU's fan never activated in the paper's runs.
	dev := device.MustGet("EdgeTPU")
	sim := thermal.NewSimulator(dev)
	for _, p := range sim.Run(1800, constPower(thermal.SustainedWatts(dev))) {
		if p.FanOn {
			t.Fatal("EdgeTPU fan should stay off under its small power swing")
		}
	}
}

func TestMovidiusCoolestUnderLoad(t *testing.T) {
	// §VI-F: Movidius has the lowest temperature (and power) among the
	// edge peers.
	peak := func(name string) float64 {
		dev := device.MustGet(name)
		sim := thermal.NewSimulator(dev)
		var m float64
		for _, p := range sim.Run(1800, constPower(thermal.SustainedWatts(dev))) {
			if p.JunctionC > m {
				m = p.JunctionC
			}
		}
		return m
	}
	mov := peak("Movidius")
	for _, peer := range []string{"RPi3", "JetsonTX2", "JetsonNano", "EdgeTPU"} {
		if mov >= peak(peer) {
			t.Errorf("Movidius (%.1f°C peak) should run cooler than %s (%.1f°C peak)", mov, peer, peak(peer))
		}
	}
}

func TestSurfaceReadsBelowJunction(t *testing.T) {
	dev := device.MustGet("JetsonNano") // heatsink
	sim := thermal.NewSimulator(dev)
	for _, p := range sim.Run(120, constPower(dev.AvgWatts)) {
		if d := p.JunctionC - p.SurfaceC; d < 5 || d > 10 {
			t.Fatalf("camera offset %v outside the 5-10°C band (§V)", d)
		}
	}
	bare := thermal.NewSimulator(device.MustGet("RPi3"))
	for _, p := range bare.Run(60, constPower(2)) {
		if d := p.JunctionC - p.SurfaceC; d >= 5 {
			t.Fatalf("bare package should read close to junction, offset %v", d)
		}
	}
}

func TestSteadyStateMatchesTrace(t *testing.T) {
	// SteadyStateC models the fan thermostat but not DVFS, so verify it
	// against a device without a throttle point (TX2).
	dev := device.MustGet("JetsonTX2")
	sim := thermal.NewSimulator(dev)
	load := thermal.SustainedWatts(dev)
	trace := sim.Run(3600, constPower(load))
	final := trace[len(trace)-1].JunctionC
	if ss := sim.SteadyStateC(load); math.Abs(ss-final) > 1 {
		t.Fatalf("SteadyStateC %.1f vs trace final %.1f", ss, final)
	}
}

// Property: steady-state temperature is monotone in power.
func TestSteadyStateMonotoneProperty(t *testing.T) {
	sim := thermal.NewSimulator(device.MustGet("JetsonNano"))
	f := func(a, b float64) bool {
		pa, pb := math.Abs(a)/10, math.Abs(b)/10
		if math.IsNaN(pa) || math.IsNaN(pb) || pa > 50 || pb > 50 {
			return true
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		return sim.SteadyStateC(pa) <= sim.SteadyStateC(pb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroStepDefaults(t *testing.T) {
	sim := thermal.NewSimulator(device.MustGet("Movidius"))
	sim.StepSec = 0
	if got := sim.Run(10, constPower(1)); len(got) != 11 {
		t.Fatalf("default step trace length = %d", len(got))
	}
}
