package thermal_test

import (
	"fmt"

	"edgebench/internal/device"
	"edgebench/internal/thermal"
)

// ExampleSimulator_SustainedFactor shows the three thermal fates under
// continuous load: the fanned TX2 holds full speed, the fanless Nano
// throttles, and the bare RPi shuts down (Fig. 14's events).
func ExampleSimulator_SustainedFactor() {
	for _, name := range []string{"JetsonTX2", "JetsonNano", "RPi3"} {
		dev := device.MustGet(name)
		sim := thermal.NewSimulator(dev)
		f := sim.SustainedFactor(thermal.SustainedWatts(dev))
		fmt.Printf("%s: sustained factor %.2f\n", name, f)
	}
	// Output:
	// JetsonTX2: sustained factor 1.00
	// JetsonNano: sustained factor 0.70
	// RPi3: sustained factor 0.00
}
