// Package thermal implements the lumped-RC thermal model behind the
// paper's temperature study (§V, §VI-F, Fig. 14, Table VI): junction
// temperature follows C·dT/dt = P − (T − Tamb)/R, the fan thermostat
// switches R when it spins up, the Raspberry Pi trips thermal shutdown,
// and the simulated Flir camera reads the heatsink surface 5-10 °C below
// the junction (§V).
package thermal

import (
	"edgebench/internal/device"
)

// Point is one instant of a simulated thermal trace.
type Point struct {
	TimeSec   float64
	JunctionC float64
	// SurfaceC is what the thermal camera reads: the heatsink surface
	// sits below the junction by the package's thermal drop.
	SurfaceC  float64
	Watts     float64
	FanOn     bool
	Throttled bool
	Shutdown  bool
}

// cameraOffsetC is the §V junction-to-heatsink-surface drop (5-10 °C;
// we use the midpoint). Devices without a heatsink expose the package
// itself, which reads much closer to the junction.
const (
	cameraOffsetHeatsinkC = 7.5
	cameraOffsetBareC     = 1.5
)

// Simulator integrates the RC model for one device.
type Simulator struct {
	Device *device.Device
	// AmbientC defaults so that the device's measured idle temperature
	// is the model's idle fixed point (self-consistent with Table VI).
	AmbientC float64
	// StepSec is the integration step (default 1 s).
	StepSec float64
}

// NewSimulator builds a simulator with the self-consistent ambient.
func NewSimulator(dev *device.Device) *Simulator {
	return &Simulator{
		Device:   dev,
		AmbientC: dev.Thermal.IdleC - dev.IdleWatts*dev.Thermal.ResistanceCPerW,
		StepSec:  1,
	}
}

// resistance returns the junction-to-ambient resistance given fan state.
func (s *Simulator) resistance(fanOn bool) float64 {
	th := s.Device.Thermal
	if fanOn && th.FanResistanceCPerW > 0 {
		return th.FanResistanceCPerW
	}
	return th.ResistanceCPerW
}

// Run integrates the model for durationSec, drawing instantaneous power
// from powerAt (Watts as a function of time). The trace starts at the
// device's idle temperature. A thermal shutdown latches: power drops to
// zero (the paper's RPi shuts off mid-experiment, Fig. 14) and the
// device cools.
func (s *Simulator) Run(durationSec float64, powerAt func(tSec float64) float64) []Point {
	dev := s.Device
	th := dev.Thermal
	dt := s.StepSec
	if dt <= 0 {
		dt = 1
	}
	temp := th.IdleC
	fanOn := false
	throttled := false
	shutdown := false
	n := int(durationSec/dt) + 1
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		t := float64(i) * dt
		p := powerAt(t)
		if shutdown {
			p = 0
		}
		// Fan thermostat with 5 °C hysteresis.
		if dev.Cooling.Fan {
			switch {
			case !fanOn && temp >= dev.Cooling.FanOnC:
				fanOn = true
			case fanOn && temp < dev.Cooling.FanOnC-5:
				fanOn = false
			}
		}
		// DVFS throttle with 5 °C hysteresis: the firmware clocks down,
		// cutting dynamic power by the throttle factor.
		if th.ThrottleC > 0 {
			switch {
			case !throttled && temp >= th.ThrottleC:
				throttled = true
			case throttled && temp < th.ThrottleC-5:
				throttled = false
			}
			if throttled && !shutdown && p > dev.IdleWatts {
				p = dev.IdleWatts + (p-dev.IdleWatts)*th.ThrottleFactor
			}
		}
		if th.ShutdownC > 0 && temp >= th.ShutdownC {
			shutdown = true
			p = 0
		}
		offset := cameraOffsetBareC
		if dev.Cooling.Heatsink {
			offset = cameraOffsetHeatsinkC
		}
		out = append(out, Point{
			TimeSec:   t,
			JunctionC: temp,
			SurfaceC:  temp - offset,
			Watts:     p,
			FanOn:     fanOn,
			Throttled: throttled && !shutdown,
			Shutdown:  shutdown,
		})
		r := s.resistance(fanOn)
		dTemp := (p - (temp-s.AmbientC)/r) / th.CapacitanceJPerC * dt
		temp += dTemp
	}
	return out
}

// SustainedFactor returns the long-run speed fraction a device delivers
// under a continuous load drawing watts: 1 at full speed, the throttle
// factor once DVFS engages, 0 if the device shuts down instead.
func (s *Simulator) SustainedFactor(watts float64) float64 {
	pts := s.Run(3600, func(float64) float64 { return watts })
	final := pts[len(pts)-1]
	switch {
	case final.Shutdown:
		return 0
	case final.Throttled:
		return s.Device.Thermal.ThrottleFactor
	default:
		return 1
	}
}

// SteadyStateC returns the fixed-point junction temperature at the given
// power, honoring the fan thermostat. It does not model DVFS throttling
// (whose hysteresis makes the long-run state an oscillation around the
// throttle point rather than a fixed temperature); use Run or
// SustainedFactor for throttling devices.
func (s *Simulator) SteadyStateC(watts float64) float64 {
	noFan := s.AmbientC + watts*s.resistance(false)
	if s.Device.Cooling.Fan && noFan >= s.Device.Cooling.FanOnC {
		withFan := s.AmbientC + watts*s.resistance(true)
		if withFan < s.Device.Cooling.FanOnC-5 {
			// The fan would cool below its own trip point; the device
			// oscillates around the threshold — report the threshold.
			return s.Device.Cooling.FanOnC
		}
		return withFan
	}
	return noFan
}

// SustainedWatts estimates the draw of a heavy sustained workload (the
// paper's Fig. 14 runs Inception-v4 until steady state): the Table III
// average plus half of its dynamic swing, since the average spans
// lighter models too.
func SustainedWatts(dev *device.Device) float64 {
	return dev.AvgWatts + 0.5*(dev.AvgWatts-dev.IdleWatts)
}
