package power_test

import (
	"math"
	"testing"

	"edgebench/internal/power"
)

func TestDutyCycleTraceSquareWave(t *testing.T) {
	s := session(t, "Inception-v4", "TensorRT", "JetsonNano")
	// 10 s period, 4 s active, 100 s trace, 0.5 s analyzer sampling.
	trace := power.DutyCycleTrace(s, 10, 4, 100, 3)
	if len(trace) != 200 {
		t.Fatalf("trace length %d", len(trace))
	}
	active := power.ActiveWatts(s.Device, s.Utilization())
	idle := s.Device.IdleWatts
	var high, low int
	for _, p := range trace {
		switch {
		case math.Abs(p.Watts-active) < 0.2:
			high++
		case math.Abs(p.Watts-idle) < 0.2:
			low++
		default:
			t.Fatalf("sample %v is neither active (%v) nor idle (%v)", p.Watts, active, idle)
		}
	}
	// 40% duty cycle within sampling granularity.
	frac := float64(high) / float64(high+low)
	if math.Abs(frac-0.4) > 0.05 {
		t.Fatalf("duty fraction %v, want ~0.4", frac)
	}
}

func TestDutyCycleTraceInvalid(t *testing.T) {
	s := session(t, "ResNet-18", "TensorRT", "JetsonNano")
	if power.DutyCycleTrace(s, 0, 1, 10, 1) != nil {
		t.Fatal("zero period should return nil")
	}
	if power.DutyCycleTrace(s, 5, 6, 10, 1) != nil {
		t.Fatal("active > period should return nil")
	}
}

func TestDutyCycleEnergy(t *testing.T) {
	s := session(t, "ResNet-18", "TensorRT", "JetsonNano")
	day := 86400.0
	idleOnly := power.DutyCycleEnergyJ(s, 0, day)
	if math.Abs(idleOnly-s.Device.IdleWatts*day) > 1e-6 {
		t.Fatal("zero duty should be pure idle energy")
	}
	full := power.DutyCycleEnergyJ(s, 1, day)
	half := power.DutyCycleEnergyJ(s, 0.5, day)
	if !(idleOnly < half && half < full) {
		t.Fatal("energy must grow with duty cycle")
	}
	// Clamping.
	if power.DutyCycleEnergyJ(s, -1, day) != idleOnly || power.DutyCycleEnergyJ(s, 2, day) != full {
		t.Fatal("duty fraction should clamp to [0,1]")
	}
}
