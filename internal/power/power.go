// Package power implements the paper's energy methodology (§V, §VI-E):
// an energy-per-inference model driven by the measured idle/average
// power of Table III, plus models of the two measurement instruments —
// the 1 Hz USB multimeter (±(0.05%+2digits) V, ±(0.1%+4digits) A) used
// for USB-powered devices and the ±0.005 W outlet power analyzer used
// for the rest.
package power

import (
	"math/rand"

	"edgebench/internal/core"
	"edgebench/internal/device"
	"edgebench/internal/stats"
)

// ActiveWatts returns the device's power draw while executing DNN
// inference. The paper reports a single measured average per device
// (Table III); utilization interpolates between idle and a peak slightly
// above that average so compute-saturating models draw more than
// dispatch-bound ones.
func ActiveWatts(dev *device.Device, utilization float64) float64 {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	// The measured average corresponds to a typical ~70% arithmetic
	// utilization; scale the dynamic component accordingly.
	const typicalUtil = 0.7
	dynamic := (dev.AvgWatts - dev.IdleWatts) * (0.5 + 0.5*utilization/typicalUtil)
	peakDynamic := (dev.AvgWatts - dev.IdleWatts) * 1.3
	if dynamic > peakDynamic {
		dynamic = peakDynamic
	}
	return dev.IdleWatts + dynamic
}

// EnergyPerInferenceJ returns the modeled energy of one single-batch
// inference: active power integrated over the inference time.
func EnergyPerInferenceJ(s *core.Session) float64 {
	return ActiveWatts(s.Device, s.Utilization()) * s.InferenceSeconds()
}

// Instrument models a power-measurement device from §V.
type Instrument interface {
	// Name identifies the instrument.
	Name() string
	// SamplePeriodSec is the instrument's sampling interval.
	SamplePeriodSec() float64
	// Reading perturbs a true wattage with the instrument's error model.
	Reading(trueWatts float64, rng *rand.Rand) float64
}

// USBMultimeter is the UM25C-style USB meter: it records voltage and
// current once per second; both carry percentage-plus-digits error.
type USBMultimeter struct{}

// Name implements Instrument.
func (USBMultimeter) Name() string { return "usb-multimeter" }

// SamplePeriodSec implements Instrument (1 Hz logging).
func (USBMultimeter) SamplePeriodSec() float64 { return 1.0 }

// Reading implements Instrument. The meter measures V (±0.05% + 2
// digits of 10 mV) and I (±0.1% + 4 digits of 1 mA) separately on a 5 V
// rail; the power error combines both.
func (USBMultimeter) Reading(trueWatts float64, rng *rand.Rand) float64 {
	const volts = 5.0
	amps := trueWatts / volts
	vErr := stats.GaussianNoise(rng, volts*0.0005/2) + stats.GaussianNoise(rng, 0.02/2)
	iErr := stats.GaussianNoise(rng, amps*0.001/2) + stats.GaussianNoise(rng, 0.004/2)
	return (volts + vErr) * (amps + iErr)
}

// PowerAnalyzer is the outlet analyzer with ±0.005 W accuracy.
type PowerAnalyzer struct{}

// Name implements Instrument.
func (PowerAnalyzer) Name() string { return "power-analyzer" }

// SamplePeriodSec implements Instrument.
func (PowerAnalyzer) SamplePeriodSec() float64 { return 0.5 }

// Reading implements Instrument.
func (PowerAnalyzer) Reading(trueWatts float64, rng *rand.Rand) float64 {
	return trueWatts + stats.GaussianNoise(rng, 0.005/2)
}

// InstrumentFor picks the §V instrument for a device: USB-powered
// platforms (RPi, EdgeTPU dev board, Movidius stick) are measured by the
// USB meter, outlet-powered platforms by the analyzer.
func InstrumentFor(dev *device.Device) Instrument {
	switch dev.Name {
	case "RPi3", "EdgeTPU", "Movidius":
		return USBMultimeter{}
	default:
		return PowerAnalyzer{}
	}
}

// Sample is one instrument reading.
type Sample struct {
	TimeSec float64
	Watts   float64
}

// MeasureRun simulates metering a session for durationSec of sustained
// inference and returns the instrument trace.
func MeasureRun(s *core.Session, durationSec float64, seed int64) []Sample {
	inst := InstrumentFor(s.Device)
	rng := stats.NewRNG(seed)
	truth := ActiveWatts(s.Device, s.Utilization())
	period := inst.SamplePeriodSec()
	n := int(durationSec / period)
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Sample{
			TimeSec: float64(i) * period,
			Watts:   inst.Reading(truth, rng),
		})
	}
	return out
}

// MeanWatts averages a trace.
func MeanWatts(samples []Sample) float64 {
	xs := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.Watts
	}
	return stats.Mean(xs)
}

// MeasuredEnergyPerInferenceJ reproduces the paper's measurement recipe:
// meter the device over a sustained run, multiply mean power by the
// per-inference time.
func MeasuredEnergyPerInferenceJ(s *core.Session, durationSec float64, seed int64) float64 {
	return MeanWatts(MeasureRun(s, durationSec, seed)) * s.InferenceSeconds()
}

// DutyCycleTrace meters a duty-cycled deployment: the device alternates
// between inference bursts (activeSec at active power) and idle gaps,
// with period periodSec. This is the motion-triggered-camera pattern the
// smartcamera example provisions for; the returned trace shows the power
// square wave through the instrument's error model.
func DutyCycleTrace(s *core.Session, periodSec, activeSec, durationSec float64, seed int64) []Sample {
	if periodSec <= 0 || activeSec < 0 || activeSec > periodSec {
		return nil
	}
	inst := InstrumentFor(s.Device)
	rng := stats.NewRNG(seed)
	active := ActiveWatts(s.Device, s.Utilization())
	idle := s.Device.IdleWatts
	period := inst.SamplePeriodSec()
	n := int(durationSec / period)
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		t := float64(i) * period
		truth := idle
		if phase := t - periodSec*float64(int(t/periodSec)); phase < activeSec {
			truth = active
		}
		out = append(out, Sample{TimeSec: t, Watts: inst.Reading(truth, rng)})
	}
	return out
}

// DutyCycleEnergyJ integrates a duty-cycled deployment's energy over a
// day: burst energy plus idle floor.
func DutyCycleEnergyJ(s *core.Session, dutyFraction, daySec float64) float64 {
	if dutyFraction < 0 {
		dutyFraction = 0
	}
	if dutyFraction > 1 {
		dutyFraction = 1
	}
	active := ActiveWatts(s.Device, s.Utilization())
	return active*dutyFraction*daySec + s.Device.IdleWatts*(1-dutyFraction)*daySec
}
