package power_test

import (
	"math"
	"testing"
	"testing/quick"

	"edgebench/internal/core"
	"edgebench/internal/device"
	"edgebench/internal/paperdata"
	"edgebench/internal/power"
	"edgebench/internal/stats"
)

func session(t *testing.T, m, fw, dev string) *core.Session {
	t.Helper()
	s, err := core.New(m, fw, dev)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestActiveWattsBounds(t *testing.T) {
	for _, d := range device.All() {
		low := power.ActiveWatts(d, 0)
		high := power.ActiveWatts(d, 1)
		if low <= d.IdleWatts {
			t.Errorf("%s: active power at zero util (%v) should exceed idle (%v)", d.Name, low, d.IdleWatts)
		}
		if high <= low {
			t.Errorf("%s: power must grow with utilization", d.Name)
		}
		if high > d.IdleWatts+1.5*(d.AvgWatts-d.IdleWatts) {
			t.Errorf("%s: peak power %v too far above table average %v", d.Name, high, d.AvgWatts)
		}
		// Clamping.
		if power.ActiveWatts(d, -1) != power.ActiveWatts(d, 0) {
			t.Errorf("%s: negative utilization should clamp", d.Name)
		}
		if power.ActiveWatts(d, 2) != power.ActiveWatts(d, 1) {
			t.Errorf("%s: utilization above one should clamp", d.Name)
		}
	}
}

func TestEnergyAnchors(t *testing.T) {
	// Fig. 11 quoted values, within a 2.5x band (these compose two
	// models: latency and power).
	cases := []struct {
		dev, fw, model string
		paperMJ        float64
	}{
		{"EdgeTPU", "TFLite", "MobileNet-v2", 11},
		{"JetsonNano", "TensorRT", "ResNet-18", 84},
		{"JetsonNano", "TensorRT", "Inception-v4", 500},
		{"Movidius", "NCSDK", "MobileNet-v2", 66},
		{"Movidius", "NCSDK", "Inception-v4", 1000},
		{"JetsonTX2", "PyTorch", "ResNet-18", 300},
		{"JetsonTX2", "PyTorch", "Inception-v4", 1000},
		{"GTXTitanX", "PyTorch", "ResNet-18", 1000},
		{"GTXTitanX", "PyTorch", "Inception-v4", 5000},
	}
	for _, c := range cases {
		s := session(t, c.model, c.fw, c.dev)
		mj := power.EnergyPerInferenceJ(s) * 1e3
		if mj > 2.5*c.paperMJ || mj < c.paperMJ/2.5 {
			t.Errorf("%s %s: energy %.0f mJ vs paper %.0f mJ outside band", c.dev, c.model, mj, c.paperMJ)
		}
	}
}

func TestFig11Ordering(t *testing.T) {
	// RPi has the highest energy per inference; edge accelerators the
	// lowest (§VI-E).
	m := "ResNet-18"
	rpi := power.EnergyPerInferenceJ(session(t, m, "TFLite", "RPi3"))
	gtx := power.EnergyPerInferenceJ(session(t, m, "PyTorch", "GTXTitanX"))
	tx2 := power.EnergyPerInferenceJ(session(t, m, "PyTorch", "JetsonTX2"))
	nano := power.EnergyPerInferenceJ(session(t, m, "TensorRT", "JetsonNano"))
	if !(rpi > gtx && gtx > tx2 && tx2 > nano) {
		t.Errorf("Fig11 ordering violated: rpi %.3f gtx %.3f tx2 %.3f nano %.3f", rpi, gtx, tx2, nano)
	}
	// TX2 saves roughly 5x energy vs GTX Titan X (§VI-E: "an average of
	// a 5x energy savings").
	if r := gtx / tx2; r < 2 || r > 10 {
		t.Errorf("GTX/TX2 energy ratio %.1f outside the paper's ~5x story", r)
	}
}

func TestInstrumentAssignment(t *testing.T) {
	usb := map[string]bool{"RPi3": true, "EdgeTPU": true, "Movidius": true}
	for _, d := range device.All() {
		inst := power.InstrumentFor(d)
		_, isUSB := inst.(power.USBMultimeter)
		if usb[d.Name] != isUSB {
			t.Errorf("%s instrument = %s", d.Name, inst.Name())
		}
		if inst.SamplePeriodSec() <= 0 {
			t.Errorf("%s: non-positive sample period", d.Name)
		}
	}
}

func TestInstrumentAccuracy(t *testing.T) {
	rng := stats.NewRNG(3)
	// Analyzer: sub-centiwatt error.
	var pa power.PowerAnalyzer
	for i := 0; i < 200; i++ {
		r := pa.Reading(5.0, rng)
		if math.Abs(r-5.0) > 0.02 {
			t.Fatalf("analyzer error %v exceeds spec", r-5.0)
		}
	}
	// USB meter: percent-level error.
	var um power.USBMultimeter
	var errs []float64
	for i := 0; i < 500; i++ {
		errs = append(errs, um.Reading(2.73, rng)-2.73)
	}
	if sd := stats.StdDev(errs); sd > 0.05 || sd == 0 {
		t.Fatalf("usb meter error sd = %v", sd)
	}
	if math.Abs(stats.Mean(errs)) > 0.02 {
		t.Fatalf("usb meter biased: %v", stats.Mean(errs))
	}
}

func TestMeasureRunTrace(t *testing.T) {
	s := session(t, "Inception-v4", "TFLite", "RPi3")
	trace := power.MeasureRun(s, 60, 5)
	if len(trace) != 60 {
		t.Fatalf("trace length = %d, want 60 (1 Hz x 60 s)", len(trace))
	}
	mean := power.MeanWatts(trace)
	if mean < s.Device.IdleWatts || mean > s.Device.AvgWatts*1.5 {
		t.Fatalf("mean metered power %v out of range", mean)
	}
	// Deterministic under the same seed.
	again := power.MeasureRun(s, 60, 5)
	for i := range trace {
		if trace[i] != again[i] {
			t.Fatal("trace must be seed-deterministic")
		}
	}
	// Measured energy tracks modeled energy.
	measured := power.MeasuredEnergyPerInferenceJ(s, 120, 9)
	modeled := power.EnergyPerInferenceJ(s)
	if math.Abs(measured/modeled-1) > 0.05 {
		t.Fatalf("measured %v vs modeled %v energy diverge", measured, modeled)
	}
}

// Property: energy grows monotonically with inference time across models
// on a fixed device/framework.
func TestEnergyMonotoneInTime(t *testing.T) {
	models := []string{"MobileNet-v2", "ResNet-18", "ResNet-50", "Inception-v4"}
	var last float64
	for i, m := range models {
		s := session(t, m, "TensorRT", "JetsonNano")
		e := power.EnergyPerInferenceJ(s)
		if i > 0 && e <= last {
			t.Fatalf("energy not monotone at %s", m)
		}
		last = e
	}
}

func TestPaperIdleTempsReferenced(t *testing.T) {
	// Guard the paperdata transcription against drift.
	if paperdata.TableVIIdleTemps["RPi3"] != 43.3 {
		t.Fatal("paperdata idle temp drifted")
	}
}

// Property: instrument readings average to the truth.
func TestInstrumentUnbiasedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		truth := 1 + math.Abs(float64(seed%100))/10
		var sum float64
		const n = 400
		for i := 0; i < n; i++ {
			sum += power.USBMultimeter{}.Reading(truth, rng)
		}
		return math.Abs(sum/n-truth) < 0.05*truth+0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
