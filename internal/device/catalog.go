package device

import "edgebench/internal/tensor"

// The catalog below transcribes Table III (organization, memory, measured
// idle/average power) and Table VI (cooling, idle temperature). Peak
// throughput figures are achievable-peak estimates for single-batch
// kernels derived from the microarchitectures Table III names; the
// per-(device, framework) calibration in internal/core absorbs the
// remaining efficiency gap against the paper's measured latencies.

const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
)

func init() {
	register(&Device{
		Name:  "RPi3",
		Class: EdgeCPU,
		CPU:   "4-core Cortex-A53 @ 1.2 GHz",
		PeakGFLOPS: map[tensor.DType]float64{
			// NEON: 4 fp32 MACs/cycle/core at realistic occupancy.
			tensor.FP32: 9.6,
			// No native fp16 arithmetic or int8 dot product on A53 NEON
			// (§VI-B2: "TFLite supports low-precision inferencing, but
			// the RPi hardware does not support it").
		},
		MemBandwidthGBs: 2.0,
		MemBytes:        1 * gb,
		CacheBytes:      512 * kb,
		IdleWatts:       1.33,
		AvgWatts:        2.73,
		Cooling:         Cooling{},
		Thermal: Thermal{
			ResistanceCPerW:  18,
			CapacitanceJPerC: 12,
			ShutdownC:        80,
			IdleC:            43.3,
		},
	})
	register(&Device{
		Name:  "JetsonTX2",
		Class: EdgeGPU,
		CPU:   "4-core Cortex-A57 + 2-core Denver2 @ 2 GHz",
		GPU:   "256-core Pascal",
		PeakGFLOPS: map[tensor.DType]float64{
			tensor.FP32: 665,
			tensor.FP16: 1330,
		},
		MemBandwidthGBs: 58.4,
		MemBytes:        8 * gb,
		CacheBytes:      2 * mb,
		IdleWatts:       1.90,
		AvgWatts:        9.65,
		Cooling:         Cooling{Heatsink: true, Fan: true, FanOnC: 45},
		Thermal: Thermal{
			ResistanceCPerW:    4.5,
			FanResistanceCPerW: 1.6,
			CapacitanceJPerC:   60,
			IdleC:              32.4,
		},
	})
	register(&Device{
		Name:  "JetsonNano",
		Class: EdgeGPU,
		CPU:   "4-core Cortex-A57 @ 1.43 GHz",
		GPU:   "128-core Maxwell",
		PeakGFLOPS: map[tensor.DType]float64{
			tensor.FP32: 235,
			tensor.FP16: 470,
			// TensorRT INT8 runs through fp16 units on Maxwell.
			tensor.INT8: 470,
		},
		MemBandwidthGBs: 25.6,
		MemBytes:        4 * gb,
		CacheBytes:      2 * mb,
		IdleWatts:       1.25,
		AvgWatts:        4.58,
		Cooling:         Cooling{Heatsink: true},
		Thermal: Thermal{
			ResistanceCPerW:  6.5,
			CapacitanceJPerC: 45,
			// Fanless module: the firmware clocks down under sustained
			// load instead of shutting off.
			ThrottleC:      65,
			ThrottleFactor: 0.7,
			IdleC:          35.2,
		},
	})
	register(&Device{
		Name:  "EdgeTPU",
		Class: EdgeAccel,
		CPU:   "4-core Cortex-A53 + Cortex-M4 @ 1.5 GHz",
		Accel: "Google Edge TPU ASIC",
		PeakGFLOPS: map[tensor.DType]float64{
			// Host CPU fallback for unsupported ops.
			tensor.FP32: 12,
			// 4 TOPS INT8 systolic array (MAC convention: 2 TMAC/s).
			tensor.INT8: 2000,
		},
		MemBandwidthGBs: 4.0,
		MemBytes:        1 * gb,
		CacheBytes:      8 * mb,
		IdleWatts:       3.24,
		AvgWatts:        4.14,
		Cooling:         Cooling{Heatsink: true, Fan: true, FanOnC: 60},
		Thermal: Thermal{
			ResistanceCPerW:    3.5,
			FanResistanceCPerW: 1.8,
			CapacitanceJPerC:   25,
			IdleC:              33.9,
		},
	})
	register(&Device{
		Name:  "Movidius",
		Class: EdgeAccel,
		Accel: "Myriad 2 VPU, 12 SHAVE cores",
		PeakGFLOPS: map[tensor.DType]float64{
			// SHAVE VLIW/SIMD units natively execute fp16.
			tensor.FP32: 50,
			tensor.FP16: 100,
			tensor.INT8: 100,
		},
		MemBandwidthGBs: 1.6,
		MemBytes:        512 * mb,
		CacheBytes:      2 * mb,
		IdleWatts:       0.36,
		AvgWatts:        1.52,
		Cooling:         Cooling{Heatsink: true}, // the stick body is the heatsink
		Thermal: Thermal{
			ResistanceCPerW:  7,
			CapacitanceJPerC: 8,
			IdleC:            25.8,
		},
	})
	register(&Device{
		Name:  "PYNQ-Z1",
		Class: FPGA,
		CPU:   "2-core Cortex-A9 @ 650 MHz",
		Accel: "Zynq XC7Z020 (13.3k slices, 220 DSP, 630 KB BRAM)",
		PeakGFLOPS: map[tensor.DType]float64{
			// 220 DSP slices at ~100 MHz overlay clock.
			tensor.FP32: 11,
			tensor.INT8: 44,
		},
		MemBandwidthGBs: 1.0,
		MemBytes:        512 * mb,
		CacheBytes:      630 * kb,
		IdleWatts:       2.65,
		AvgWatts:        5.24,
		Cooling:         Cooling{Heatsink: true},
		Thermal: Thermal{
			ResistanceCPerW:  8,
			CapacitanceJPerC: 20,
			IdleC:            32,
		},
	})
	register(&Device{
		Name:  "Xeon",
		Class: HPCCPU,
		CPU:   "2x 22-core E5-2696 v4 @ 2.2 GHz",
		PeakGFLOPS: map[tensor.DType]float64{
			// AVX2 FMA across 44 cores; single-batch kernels cannot
			// scale across sockets, captured by calibration.
			tensor.FP32: 3100,
		},
		MemBandwidthGBs: 153,
		MemBytes:        264 * gb,
		CacheBytes:      110 * mb,
		IdleWatts:       70,
		AvgWatts:        300,
		Cooling:         Cooling{Heatsink: true, Fan: true, FanOnC: 50},
		Thermal: Thermal{
			ResistanceCPerW:    0.3,
			FanResistanceCPerW: 0.12,
			CapacitanceJPerC:   300,
			IdleC:              38,
		},
	})
	register(&Device{
		Name:  "RTX2080",
		Class: HPCGPU,
		GPU:   "2944-core Turing",
		PeakGFLOPS: map[tensor.DType]float64{
			tensor.FP32: 10000,
			tensor.FP16: 20000,
			tensor.INT8: 40000,
		},
		MemBandwidthGBs: 448,
		MemBytes:        8 * gb,
		CacheBytes:      4 * mb,
		IdleWatts:       39,
		AvgWatts:        110,
		Cooling:         Cooling{Heatsink: true, Fan: true, FanOnC: 50},
		Thermal: Thermal{
			ResistanceCPerW:    0.5,
			FanResistanceCPerW: 0.25,
			CapacitanceJPerC:   200,
			IdleC:              35,
		},
	})
	register(&Device{
		Name:  "GTXTitanX",
		Class: HPCGPU,
		GPU:   "3072-core Maxwell",
		PeakGFLOPS: map[tensor.DType]float64{
			tensor.FP32: 6100,
		},
		MemBandwidthGBs: 336,
		MemBytes:        12 * gb,
		CacheBytes:      3 * mb,
		IdleWatts:       15,
		AvgWatts:        100,
		Cooling:         Cooling{Heatsink: true, Fan: true, FanOnC: 50},
		Thermal: Thermal{
			ResistanceCPerW:    0.5,
			FanResistanceCPerW: 0.25,
			CapacitanceJPerC:   220,
			IdleC:              35,
		},
	})
	register(&Device{
		Name:  "TitanXp",
		Class: HPCGPU,
		GPU:   "3840-core Pascal",
		PeakGFLOPS: map[tensor.DType]float64{
			tensor.FP32: 12100,
			tensor.FP16: 12100,
		},
		MemBandwidthGBs: 547,
		MemBytes:        12 * gb,
		CacheBytes:      3 * mb,
		IdleWatts:       55,
		AvgWatts:        120,
		Cooling:         Cooling{Heatsink: true, Fan: true, FanOnC: 50},
		Thermal: Thermal{
			ResistanceCPerW:    0.45,
			FanResistanceCPerW: 0.22,
			CapacitanceJPerC:   230,
			IdleC:              35,
		},
	})
}
