package device_test

import (
	"testing"

	"edgebench/internal/device"
	"edgebench/internal/tensor"
)

func TestCatalogComplete(t *testing.T) {
	if got := len(device.All()); got != 10 {
		t.Fatalf("catalog holds %d devices, want 10", got)
	}
	for _, n := range device.TableIIIOrder {
		if _, ok := device.Get(n); !ok {
			t.Errorf("Table III device %q missing", n)
		}
	}
	if got := len(device.Edge()); got != 6 {
		t.Fatalf("Edge() = %d devices, want 6", got)
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet unknown should panic")
		}
	}()
	device.MustGet("Abacus")
}

func TestTableIIIPowerValues(t *testing.T) {
	// Idle/average power straight from Table III.
	cases := []struct {
		name      string
		idle, avg float64
	}{
		{"RPi3", 1.33, 2.73},
		{"JetsonTX2", 1.90, 9.65},
		{"JetsonNano", 1.25, 4.58},
		{"EdgeTPU", 3.24, 4.14},
		{"Movidius", 0.36, 1.52},
		{"PYNQ-Z1", 2.65, 5.24},
	}
	for _, c := range cases {
		d := device.MustGet(c.name)
		if d.IdleWatts != c.idle || d.AvgWatts != c.avg {
			t.Errorf("%s power = %v/%v, want %v/%v", c.name, d.IdleWatts, d.AvgWatts, c.idle, c.avg)
		}
		if d.AvgWatts <= d.IdleWatts {
			t.Errorf("%s: average power must exceed idle", c.name)
		}
	}
}

func TestPeakFallsBackToFP32(t *testing.T) {
	rpi := device.MustGet("RPi3")
	if rpi.Peak(tensor.INT8) != rpi.Peak(tensor.FP32) {
		t.Fatal("RPi INT8 should fall back to FP32 speed (no native int8)")
	}
	if rpi.SupportsNative(tensor.INT8) {
		t.Fatal("RPi should not report native INT8")
	}
	tpu := device.MustGet("EdgeTPU")
	if !tpu.SupportsNative(tensor.INT8) {
		t.Fatal("EdgeTPU must be natively INT8")
	}
	if tpu.Peak(tensor.INT8) <= 100*tpu.Peak(tensor.FP32) {
		t.Fatal("EdgeTPU INT8 peak should dwarf its host-CPU fallback")
	}
}

func TestClassPredicates(t *testing.T) {
	if !device.MustGet("RPi3").Class.IsEdge() {
		t.Error("RPi3 is edge")
	}
	if device.MustGet("Xeon").Class.IsEdge() || device.MustGet("TitanXp").Class.IsEdge() {
		t.Error("HPC devices are not edge")
	}
	for c := device.EdgeCPU; c <= device.HPCGPU; c++ {
		if c.String() == "unknown" {
			t.Errorf("class %d missing name", c)
		}
	}
}

func TestCoolingTableVI(t *testing.T) {
	// Table VI: RPi has neither heatsink nor fan; TX2 has both; Nano has
	// heatsink only; Movidius' body is its heatsink.
	if c := device.MustGet("RPi3").Cooling; c.Heatsink || c.Fan {
		t.Error("RPi3 cooling wrong")
	}
	if c := device.MustGet("JetsonTX2").Cooling; !c.Heatsink || !c.Fan {
		t.Error("TX2 cooling wrong")
	}
	if c := device.MustGet("JetsonNano").Cooling; !c.Heatsink || c.Fan {
		t.Error("Nano cooling wrong")
	}
	if c := device.MustGet("Movidius").Cooling; !c.Heatsink || c.Fan {
		t.Error("Movidius cooling wrong")
	}
}

func TestIdleTemperatures(t *testing.T) {
	cases := map[string]float64{
		"RPi3": 43.3, "JetsonTX2": 32.4, "JetsonNano": 35.2,
		"EdgeTPU": 33.9, "Movidius": 25.8,
	}
	for name, want := range cases {
		if got := device.MustGet(name).Thermal.IdleC; got != want {
			t.Errorf("%s idle temp = %v, want %v", name, got, want)
		}
	}
}

func TestThermalParamsSane(t *testing.T) {
	for _, d := range device.All() {
		th := d.Thermal
		if th.ResistanceCPerW <= 0 || th.CapacitanceJPerC <= 0 {
			t.Errorf("%s: non-positive thermal params", d.Name)
		}
		if d.Cooling.Fan && th.FanResistanceCPerW >= th.ResistanceCPerW {
			t.Errorf("%s: fan must lower thermal resistance", d.Name)
		}
		if d.Cooling.Fan && d.Cooling.FanOnC <= 0 {
			t.Errorf("%s: fan without threshold", d.Name)
		}
	}
}

func TestEdgeVsHPCPeaks(t *testing.T) {
	// HPC GPUs should dominate all edge devices in raw FP32 peak.
	maxEdge := 0.0
	for _, d := range device.Edge() {
		if p := d.Peak(tensor.FP32); p > maxEdge {
			maxEdge = p
		}
	}
	for _, n := range []string{"GTXTitanX", "TitanXp", "RTX2080"} {
		if device.MustGet(n).Peak(tensor.FP32) <= maxEdge {
			t.Errorf("%s peak should exceed every edge device", n)
		}
	}
}

func TestStringers(t *testing.T) {
	if device.MustGet("RPi3").String() == "" {
		t.Error("Device.String empty")
	}
}
