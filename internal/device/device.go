// Package device models the paper's ten hardware platforms (Table III):
// their compute throughput per datatype, memory system, measured power
// envelope, and cooling configuration (Table VI). These descriptors feed
// the roofline latency model in internal/core, the energy model in
// internal/power, and the RC thermal model in internal/thermal.
package device

import (
	"fmt"
	"sort"

	"edgebench/internal/tensor"
)

// Class buckets platforms the way Table III's header row does.
type Class int

const (
	// EdgeCPU covers CPU-only single-board computers (Raspberry Pi).
	EdgeCPU Class = iota
	// EdgeGPU covers GPU-based edge boards (Jetson TX2/Nano).
	EdgeGPU
	// EdgeAccel covers custom-ASIC edge accelerators (EdgeTPU, Movidius).
	EdgeAccel
	// FPGA covers FPGA-based boards (PYNQ-Z1).
	FPGA
	// HPCCPU covers server CPUs (Xeon).
	HPCCPU
	// HPCGPU covers datacenter/desktop GPUs.
	HPCGPU
)

func (c Class) String() string {
	switch c {
	case EdgeCPU:
		return "edge-cpu"
	case EdgeGPU:
		return "edge-gpu"
	case EdgeAccel:
		return "edge-accelerator"
	case FPGA:
		return "fpga"
	case HPCCPU:
		return "hpc-cpu"
	case HPCGPU:
		return "hpc-gpu"
	default:
		return "unknown"
	}
}

// IsEdge reports whether the class is an edge platform (everything but
// the HPC rows).
func (c Class) IsEdge() bool { return c != HPCCPU && c != HPCGPU }

// Cooling describes a platform's thermal hardware (Table VI).
type Cooling struct {
	Heatsink bool
	Fan      bool
	// FanOnC is the junction temperature at which the fan spins up.
	FanOnC float64
}

// Thermal holds the lumped-RC thermal parameters used by
// internal/thermal: steady-state rise = R * power, time constant = R*C.
type Thermal struct {
	// ResistanceCPerW is the junction-to-ambient thermal resistance in
	// degrees Celsius per Watt (with fan off).
	ResistanceCPerW float64
	// FanResistanceCPerW applies when the fan is active.
	FanResistanceCPerW float64
	// CapacitanceJPerC is the lumped heat capacity.
	CapacitanceJPerC float64
	// ShutdownC is the junction temperature that trips thermal
	// shutdown; 0 means the device never shuts down.
	ShutdownC float64
	// ThrottleC, when positive, is the junction temperature at which the
	// firmware clocks the device down; ThrottleFactor is the resulting
	// speed fraction (and the dynamic-power fraction). Zero disables
	// throttling.
	ThrottleC      float64
	ThrottleFactor float64
	// IdleC is the measured idle surface temperature (Table VI).
	IdleC float64
}

// Device describes one hardware platform.
type Device struct {
	Name  string
	Class Class

	// CPU/GPU/Accel are descriptive strings from Table III.
	CPU   string
	GPU   string
	Accel string

	// PeakGFLOPS is the achievable peak arithmetic throughput per
	// execution datatype in GFLOP/s (MAC convention). A missing entry
	// means the datatype executes at FP32 speed (e.g. INT8 on the
	// Raspberry Pi's NEON pipeline gains nothing, §VI-B2).
	PeakGFLOPS map[tensor.DType]float64

	// MemBandwidthGBs is sustained memory bandwidth in GB/s.
	MemBandwidthGBs float64
	// MemBytes is the effective memory available for DNN execution.
	MemBytes int64
	// CacheBytes is on-chip weight storage (accelerator SRAM / last-level
	// cache). Weights resident there do not stream per inference — the
	// mechanism behind EdgeTPU's cliff between MobileNet-sized and
	// VGG-sized models (§VI-A).
	CacheBytes int64

	// IdleWatts and AvgWatts are the measured power figures of
	// Table III (average while executing DNNs).
	IdleWatts float64
	AvgWatts  float64

	Cooling Cooling
	Thermal Thermal
}

// Peak returns the achievable throughput for dtype, falling back to FP32
// when the device has no native support for it.
func (d *Device) Peak(dt tensor.DType) float64 {
	if v, ok := d.PeakGFLOPS[dt]; ok {
		return v
	}
	return d.PeakGFLOPS[tensor.FP32]
}

// SupportsNative reports whether dtype executes on dedicated hardware
// (i.e. faster than FP32).
func (d *Device) SupportsNative(dt tensor.DType) bool {
	v, ok := d.PeakGFLOPS[dt]
	return ok && v > d.PeakGFLOPS[tensor.FP32]
}

func (d *Device) String() string {
	return fmt.Sprintf("%s (%s)", d.Name, d.Class)
}

var catalog = map[string]*Device{}

func register(d *Device) *Device {
	if _, dup := catalog[d.Name]; dup {
		panic(fmt.Sprintf("device: duplicate %q", d.Name))
	}
	if d.PeakGFLOPS[tensor.FP32] <= 0 {
		panic(fmt.Sprintf("device: %q needs an FP32 peak", d.Name))
	}
	catalog[d.Name] = d
	return d
}

// Get returns the device registered under name.
func Get(name string) (*Device, bool) {
	d, ok := catalog[name]
	return d, ok
}

// MustGet returns the device or panics (experiment tables are
// compile-time constants).
func MustGet(name string) *Device {
	d, ok := catalog[name]
	if !ok {
		panic(fmt.Sprintf("device: unknown device %q", name))
	}
	return d
}

// TableIIIOrder lists platforms in the paper's Table III column order.
var TableIIIOrder = []string{
	"RPi3", "JetsonTX2", "JetsonNano", "EdgeTPU", "Movidius", "PYNQ-Z1",
	"Xeon", "RTX2080", "GTXTitanX", "TitanXp",
}

// All returns every registered device in Table III order, then extras by
// name.
func All() []*Device {
	var out []*Device
	seen := map[string]bool{}
	for _, n := range TableIIIOrder {
		if d, ok := catalog[n]; ok {
			out = append(out, d)
			seen[n] = true
		}
	}
	var extra []string
	for n := range catalog {
		if !seen[n] {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		out = append(out, catalog[n])
	}
	return out
}

// Edge returns the six edge platforms in Table III order.
func Edge() []*Device {
	var out []*Device
	for _, d := range All() {
		if d.Class.IsEdge() {
			out = append(out, d)
		}
	}
	return out
}
