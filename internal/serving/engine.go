// Real batch execution behind the serving simulation: an Engine owns a
// fixed set of executor replicas (each with its own planned buffer
// arena) and drives concurrent single-batch inferences through them —
// the ROADMAP's "serving shim" growing from analytic simulation toward
// actually running requests.
package serving

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"edgebench/internal/graph"
	"edgebench/internal/tensor"
	"edgebench/internal/verify"
)

// ErrEmptyBatch reports an InferBatch call with no inputs: the caller's
// batching layer has a scheduling bug, and spawning zero goroutines to
// "succeed" would hide it.
var ErrEmptyBatch = errors.New("serving: empty batch")

// ErrNilInput reports a nil tensor in a batch; the offending index is in
// the wrapping error.
var ErrNilInput = errors.New("serving: nil input tensor")

// ErrEngineClosed reports an inference attempted after Close.
var ErrEngineClosed = errors.New("serving: engine closed")

// Engine executes real inferences over a materialized graph with a pool
// of executor replicas. Each replica is an independent graph.Executor —
// pooled (arena-reusing) for static graphs, eager-release for dynamic
// ones — so concurrent requests never contend on buffers while still
// reusing memory across requests hitting the same replica. Infer and
// InferBatch are safe for concurrent use, including concurrently with
// Close.
//
// Intra-op parallelism composes with the replica pool: every replica's
// kernels dispatch large layers onto tensor's single package-global
// worker pool, which is sized to GOMAXPROCS regardless of replica
// count. When replicas saturate the machine the kernel pool refuses
// enlistment and each kernel runs serial on its replica's goroutine, so
// total concurrency never exceeds GOMAXPROCS; when the engine is
// lightly loaded a lone request fans its big layers out across the idle
// cores. KernelParallelism reports the shared pool's current size.
type Engine struct {
	g        *graph.Graph
	replicas chan *graph.Executor
	size     int
	closed   chan struct{}
	once     sync.Once
}

// NewEngine verifies g, requires materialized weights, and builds an
// engine with the given number of executor replicas (<= 0 means
// GOMAXPROCS).
//
// Session open is also where ahead-of-time weight pre-packing runs:
// every GEMM-executable node's weights are packed once into the blocked
// panel layout the microkernels consume (graph.PrepackWeights), in
// place on g, so all replicas — and any executor the caller later runs
// on the same graph object — share the panels and skip per-call
// packing. Pre-packed execution is bitwise identical to the unpacked
// GEMM lowering.
func NewEngine(g *graph.Graph, replicas int) (*Engine, error) {
	if err := verify.Err(verify.Check(g)); err != nil {
		return nil, fmt.Errorf("serving: graph %s: %w", g.Name, err)
	}
	for _, n := range g.Nodes {
		if !n.Materialized() {
			return nil, fmt.Errorf("serving: graph %s: node %s has structural-only parameters", g.Name, n)
		}
	}
	graph.PrepackWeights(g)
	if replicas <= 0 {
		replicas = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		g:        g,
		replicas: make(chan *graph.Executor, replicas),
		size:     replicas,
		closed:   make(chan struct{}),
	}
	for i := 0; i < replicas; i++ {
		e.replicas <- &graph.Executor{Pooled: g.Mode == graph.Static}
	}
	return e, nil
}

// Replicas returns the configured replica count.
func (e *Engine) Replicas() int { return e.size }

// Warmup runs one throwaway inference on every replica so each
// executor's arena is allocated before real traffic (or the first
// pipelined frame) arrives. Stage workers call it before reporting
// Ready, keeping first-frame latency off the steady-state measurement.
// It borrows every replica exactly once, so after Warmup no replica is
// cold.
func (e *Engine) Warmup() error {
	in := tensor.New(e.g.Input.OutShape...)
	exs := make([]*graph.Executor, 0, e.size)
	defer func() {
		for _, ex := range exs {
			e.replicas <- ex
		}
	}()
	for i := 0; i < e.size; i++ {
		select {
		case ex := <-e.replicas:
			exs = append(exs, ex)
		case <-e.closed:
			return ErrEngineClosed
		}
	}
	for _, ex := range exs {
		if _, err := ex.Run(e.g, in); err != nil {
			return err
		}
	}
	return nil
}

// KernelParallelism returns the size of the package-global kernel
// worker pool all replicas share (GOMAXPROCS at last use) — the
// intra-op concurrency bound, as opposed to Replicas, the inter-request
// bound.
func (e *Engine) KernelParallelism() int { return tensor.KernelParallelism() }

// InputShape returns the shape one request tensor must have.
func (e *Engine) InputShape() tensor.Shape { return e.g.Input.OutShape }

// Graph returns the materialized graph the engine executes.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Infer runs one single-batch forward pass, borrowing a replica for the
// duration of the call. After Close it fails fast with ErrEngineClosed.
func (e *Engine) Infer(in *tensor.Tensor) (*tensor.Tensor, error) {
	if in == nil {
		return nil, ErrNilInput
	}
	select {
	case <-e.closed:
		return nil, ErrEngineClosed
	default:
	}
	select {
	case ex := <-e.replicas:
		defer func() { e.replicas <- ex }()
		return ex.Run(e.g, in)
	case <-e.closed:
		return nil, ErrEngineClosed
	}
}

// maxFoldPerRun bounds how many inputs fold into one batch-folded
// executor forward: past ~8 samples the stacked (B·M)×K lowered matrix
// stops fitting the panel reuse the blocking gives and latency for the
// whole chunk grows without throughput to show for it, so larger
// batches split into chunks that spread across idle replicas instead.
const maxFoldPerRun = 8

// InferBatch runs a micro-batch and returns outputs in input order.
// Inputs are folded into batched executor forwards (Executor.RunBatch)
// in chunks of up to maxFoldPerRun: every pre-packed conv/dense node
// executes the whole chunk as one wide GEMM instead of B narrow ones.
// Chunks spread across however many replicas are idle right now — one
// replica is always acquired (blocking), extras are taken
// opportunistically — so a batch never waits behind the full pool.
// Outputs are bitwise identical to per-input Infer calls. An empty
// batch fails with ErrEmptyBatch and a nil tensor with ErrNilInput
// (both before any work is dispatched); otherwise the first error (by
// input index) is returned, and outputs of a failed chunk are nil.
func (e *Engine) InferBatch(ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
	if len(ins) == 0 {
		return nil, ErrEmptyBatch
	}
	for i, in := range ins {
		if in == nil {
			return nil, fmt.Errorf("serving: request %d: %w", i, ErrNilInput)
		}
	}
	select {
	case <-e.closed:
		return nil, ErrEngineClosed
	default:
	}
	var chunks [][2]int
	for lo := 0; lo < len(ins); lo += maxFoldPerRun {
		hi := lo + maxFoldPerRun
		if hi > len(ins) {
			hi = len(ins)
		}
		chunks = append(chunks, [2]int{lo, hi})
	}
	exs := make([]*graph.Executor, 0, len(chunks))
	select {
	case ex := <-e.replicas:
		exs = append(exs, ex)
	case <-e.closed:
		return nil, ErrEngineClosed
	}
acquire:
	for len(exs) < len(chunks) {
		select {
		case ex := <-e.replicas:
			exs = append(exs, ex)
		default:
			break acquire // pool busy; the replicas we hold take the rest
		}
	}
	outs := make([]*tensor.Tensor, len(ins))
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for w := range exs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := w; c < len(chunks); c += len(exs) {
				lo, hi := chunks[c][0], chunks[c][1]
				res, err := exs[w].RunBatch(e.g, ins[lo:hi])
				if err != nil {
					errs[c] = err
					continue
				}
				copy(outs[lo:hi], res)
			}
		}(w)
	}
	wg.Wait()
	for _, ex := range exs {
		e.replicas <- ex
	}
	for c, err := range errs {
		if err != nil {
			return outs, fmt.Errorf("serving: request %d: %w", chunks[c][0], err)
		}
	}
	return outs, nil
}

// Close marks the engine closed and drains the replica pool, blocking
// until every in-flight inference has returned its replica. New Infer
// calls fail fast with ErrEngineClosed; Close is idempotent and safe to
// call concurrently with inference.
func (e *Engine) Close() error {
	e.once.Do(func() {
		close(e.closed)
		for i := 0; i < e.size; i++ {
			<-e.replicas
		}
	})
	return nil
}

// ExecDType reports the execution datatype label of the engine's graph:
// the dominant DType among weight-bearing nodes ("int8" after a
// quantization pass, "fp32" by default). The serving metrics export it
// so /metrics shows which path a deployment runs.
func (e *Engine) ExecDType() string { return GraphExecDType(e.g) }

// GraphExecDType computes the execution-datatype label for any graph —
// shared by Engine.ExecDType and the cluster dispatcher, which must
// label a pipeline whose stages execute in other processes.
func GraphExecDType(g *graph.Graph) string {
	counts := map[tensor.DType]int{}
	for _, n := range g.Nodes {
		if n.WShape != nil {
			counts[n.DType]++
		}
	}
	best, bestCount := tensor.FP32, 0
	for d, c := range counts {
		if c > bestCount {
			best, bestCount = d, c
		}
	}
	return best.String()
}

// WeightBytes returns the graph's total parameter footprint in each
// node's execution datatype — the number the 4x int8 footprint drop is
// visible in.
func (e *Engine) WeightBytes() int64 {
	var total int64
	for _, n := range e.g.Nodes {
		total += n.WeightBytes()
	}
	return total
}

// DispatchCounts sums the executor dispatch counters (int8-path vs
// FP32-path compute kernels, plus the fused-epilogue subset) across all
// replicas currently parked in the pool; quiesce the engine first for
// exact totals.
func (e *Engine) DispatchCounts() (int8Kernels, fp32Kernels, fusedKernels int64) {
	n := len(e.replicas)
	held := make([]*graph.Executor, 0, n)
	for i := 0; i < n; i++ {
		ex := <-e.replicas
		i8, f32, fz := ex.DispatchCounts()
		int8Kernels += i8
		fp32Kernels += f32
		fusedKernels += fz
		held = append(held, ex)
	}
	for _, ex := range held {
		e.replicas <- ex
	}
	return int8Kernels, fp32Kernels, fusedKernels
}

// PoolStats sums the arena counters across all replicas currently parked
// in the pool (callers should quiesce the engine first for exact totals).
// After Close the pool is drained and the totals read zero.
func (e *Engine) PoolStats() tensor.PoolStats {
	var total tensor.PoolStats
	n := len(e.replicas)
	held := make([]*graph.Executor, 0, n)
	for i := 0; i < n; i++ {
		ex := <-e.replicas
		st := ex.PoolStats()
		total.Gets += st.Gets
		total.Misses += st.Misses
		total.Puts += st.Puts
		total.Idle += st.Idle
		held = append(held, ex)
	}
	for _, ex := range held {
		e.replicas <- ex
	}
	return total
}
