package serving_test

import (
	"math"
	"testing"

	"edgebench/internal/core"
	"edgebench/internal/serving"
)

func session(t *testing.T, m, fw, dev string) *core.Session {
	t.Helper()
	s, err := core.New(m, fw, dev)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimulateLightLoad(t *testing.T) {
	// EdgeTPU at 3 ms/inference under 10 req/s: essentially no queueing.
	s := session(t, "MobileNet-v2", "TFLite", "EdgeTPU")
	r, err := serving.Simulate(s, serving.Config{ArrivalPerSec: 10, DurationSec: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Served == 0 || r.Dropped != 0 {
		t.Fatalf("light load: %+v", r)
	}
	base := s.InferenceSeconds()
	if r.P99 > 3*base {
		t.Fatalf("light-load p99 %.4fs should hug the service time %.4fs", r.P99, base)
	}
	if r.Utilization > 0.2 {
		t.Fatalf("light-load utilization %.2f too high", r.Utilization)
	}
	if r.Arrived != r.Served+r.Dropped {
		t.Fatal("accounting broken")
	}
}

func TestSimulateSaturation(t *testing.T) {
	// Offer 3x the service rate: utilization pins at ~1 and the P99
	// blows up relative to light load.
	s := session(t, "MobileNet-v2", "TFLite", "RPi3") // ~500 ms/inference
	overload, err := serving.Simulate(s, serving.Config{ArrivalPerSec: 6, DurationSec: 120, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if overload.Utilization < 0.95 {
		t.Fatalf("overload utilization %.2f, want ~1", overload.Utilization)
	}
	light, err := serving.Simulate(s, serving.Config{ArrivalPerSec: 0.5, DurationSec: 120, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if overload.P99 < 10*light.P99 {
		t.Fatalf("overload p99 %.2fs should dwarf light-load p99 %.2fs", overload.P99, light.P99)
	}
}

func TestQueueCapDrops(t *testing.T) {
	s := session(t, "MobileNet-v2", "TFLite", "RPi3")
	r, err := serving.Simulate(s, serving.Config{
		ArrivalPerSec: 6, DurationSec: 120, Seed: 3, QueueCap: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Dropped == 0 {
		t.Fatal("bounded queue under overload must drop")
	}
	// With a 2-deep queue, worst-case latency is ~4 service times.
	if r.Latency.Max > 5*s.InferenceSeconds() {
		t.Fatalf("bounded queue latency max %.2fs too high", r.Latency.Max)
	}
}

func TestDeadlineMisses(t *testing.T) {
	s := session(t, "MobileNet-v2", "TFLite", "RPi3")
	base := s.InferenceSeconds()
	r, err := serving.Simulate(s, serving.Config{
		ArrivalPerSec: 1.5, DurationSec: 200, Seed: 4, DeadlineSec: base * 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.DeadlineMisses == 0 {
		t.Fatal("at rho~0.75 some requests must queue past a tight deadline")
	}
	if r.DeadlineMisses > r.Served {
		t.Fatal("more misses than served")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	s := session(t, "ResNet-50", "TensorRT", "JetsonNano")
	cfg := serving.Config{ArrivalPerSec: 20, DurationSec: 60, Seed: 9}
	a, _ := serving.Simulate(s, cfg)
	b, _ := serving.Simulate(s, cfg)
	if a != b {
		t.Fatal("same seed must reproduce the simulation")
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}

func TestSimulateErrors(t *testing.T) {
	s := session(t, "ResNet-50", "TensorRT", "JetsonNano")
	if _, err := serving.Simulate(s, serving.Config{ArrivalPerSec: 0, DurationSec: 10}); err == nil {
		t.Fatal("zero rate should error")
	}
	if _, err := serving.Simulate(s, serving.Config{ArrivalPerSec: 1, DurationSec: 0}); err == nil {
		t.Fatal("zero duration should error")
	}
}

func TestMaxSustainableRate(t *testing.T) {
	s := session(t, "MobileNet-v2", "TFLite", "EdgeTPU")
	base := s.InferenceSeconds()
	rate, err := serving.MaxSustainableRate(s, 3*base, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Must land below the hard service ceiling but well above zero.
	if rate <= 0.2/base || rate >= 1/base {
		t.Fatalf("sustainable rate %.1f/s vs service ceiling %.1f/s", rate, 1/base)
	}
	// A device that cannot even serve one request in the bound gets 0.
	slow := session(t, "ResNet-50", "TFLite", "RPi3")
	zero, err := serving.MaxSustainableRate(slow, slow.InferenceSeconds()/2, 30, 5)
	if err != nil || zero != 0 {
		t.Fatalf("impossible bound should yield 0, got %v (%v)", zero, err)
	}
	if _, err := serving.MaxSustainableRate(s, 0, 30, 5); err == nil {
		t.Fatal("non-positive bound should error")
	}
}

// Sanity: the M/D/1-ish mean latency at rho=0.5 sits near
// service*(1+rho/(2(1-rho))) = 1.5x service.
func TestQueueTheoryBallpark(t *testing.T) {
	s := session(t, "MobileNet-v2", "TFLite", "RPi3")
	base := s.InferenceSeconds()
	r, err := serving.Simulate(s, serving.Config{ArrivalPerSec: 0.5 / base, DurationSec: 4000 * base, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	want := base * 1.5
	if math.Abs(r.Latency.Mean/want-1) > 0.25 {
		t.Fatalf("mean latency %.3fs vs M/D/1 prediction %.3fs", r.Latency.Mean, want)
	}
}

func TestPeriodicArrivalsSmootherThanPoisson(t *testing.T) {
	// A camera at a fixed frame interval below the service rate never
	// queues; Poisson at the same mean rate does (burstiness).
	s := session(t, "ResNet-50", "TensorRT", "JetsonNano")
	base := s.InferenceSeconds()
	rate := 0.8 / base
	periodic, err := serving.Simulate(s, serving.Config{
		ArrivalPerSec: rate, DurationSec: 300 * base, Seed: 7, Periodic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	poisson, err := serving.Simulate(s, serving.Config{
		ArrivalPerSec: rate, DurationSec: 300 * base, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if periodic.P99 >= poisson.P99 {
		t.Fatalf("periodic p99 %.4fs should undercut poisson p99 %.4fs", periodic.P99, poisson.P99)
	}
	// At 80% deterministic load the worst case is near one service time
	// plus jitter.
	if periodic.Latency.Max > 1.5*base {
		t.Fatalf("periodic max latency %.4fs should hug the service time %.4fs", periodic.Latency.Max, base)
	}
}
