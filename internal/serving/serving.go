// Package serving simulates a live single-batch inference service — the
// regime the paper says edge devices are designed for (§VI-C: "for edge
// devices, the number of requests is limited and real-time performance
// is crucial"). A seeded discrete-event simulation feeds a device
// Poisson arrivals (camera triggers, robot perception ticks) through a
// FIFO queue and reports utilization, tail latency, drops, and deadline
// misses — the quantities a deployment engineer actually provisions by.
package serving

import (
	"fmt"
	"math"
	"sort"

	"edgebench/internal/core"
	"edgebench/internal/stats"
)

// Config parameterizes a serving simulation.
type Config struct {
	// ArrivalPerSec is the Poisson arrival rate.
	ArrivalPerSec float64
	// DurationSec is the simulated wall time.
	DurationSec float64
	// Seed drives arrivals and service-time jitter.
	Seed int64
	// QueueCap bounds the number of requests waiting (not including the
	// one in service); arrivals beyond it are dropped. Zero means
	// unbounded.
	QueueCap int
	// DeadlineSec, when positive, counts served requests whose total
	// latency exceeded it.
	DeadlineSec float64
	// Periodic switches from Poisson arrivals to a fixed-interval frame
	// source (a camera at 1/ArrivalPerSec seconds per frame).
	Periodic bool
}

// Result summarizes a simulation.
type Result struct {
	Arrived, Served, Dropped int
	DeadlineMisses           int
	// Utilization is busy time over simulated time.
	Utilization float64
	// Latency summarizes total (queue + service) latency of served
	// requests; P50/P95/P99 are its percentiles in seconds.
	Latency       stats.Summary
	P50, P95, P99 float64
}

// String renders the one-line summary the simulation CLI prints.
func (r Result) String() string {
	return fmt.Sprintf("served %d/%d (dropped %d), util %.0f%%, p50 %.1fms p99 %.1fms, misses %d",
		r.Served, r.Arrived, r.Dropped, r.Utilization*100,
		r.P50*1e3, r.P99*1e3, r.DeadlineMisses)
}

// Simulate runs the discrete-event loop for one session.
func Simulate(s *core.Session, cfg Config) (Result, error) {
	if cfg.ArrivalPerSec <= 0 || cfg.DurationSec <= 0 {
		return Result{}, fmt.Errorf("serving: arrival rate and duration must be positive")
	}
	base := s.InferenceSeconds()
	rng := stats.NewRNG(cfg.Seed)

	var res Result
	var latencies []float64
	var busyUntil, busyTotal float64
	// completions holds in-flight finish times for queue-length checks.
	var completions []float64

	t := 0.0
	for {
		// Next arrival: fixed camera interval or Poisson gap.
		if cfg.Periodic {
			t += 1 / cfg.ArrivalPerSec
		} else {
			t += rng.ExpFloat64() / cfg.ArrivalPerSec
		}
		if t >= cfg.DurationSec {
			break
		}
		res.Arrived++
		// Drop completed entries.
		live := completions[:0]
		for _, c := range completions {
			if c > t {
				live = append(live, c)
			}
		}
		completions = live
		// Queue length excludes the request in service.
		queued := len(completions) - 1
		if queued < 0 {
			queued = 0
		}
		if cfg.QueueCap > 0 && queued >= cfg.QueueCap {
			res.Dropped++
			continue
		}
		start := t
		if busyUntil > start {
			start = busyUntil
		}
		service := base * (1 + stats.GaussianNoise(rng, 0.02))
		if service < base/2 {
			service = base / 2
		}
		finish := start + service
		busyUntil = finish
		busyTotal += service
		completions = append(completions, finish)

		lat := finish - t
		latencies = append(latencies, lat)
		res.Served++
		if cfg.DeadlineSec > 0 && lat > cfg.DeadlineSec {
			res.DeadlineMisses++
		}
	}
	res.Utilization = math.Min(1, busyTotal/cfg.DurationSec)
	if len(latencies) > 0 {
		res.Latency = stats.Summarize(latencies)
		sort.Float64s(latencies)
		res.P50 = stats.Percentile(latencies, 50)
		res.P95 = stats.Percentile(latencies, 95)
		res.P99 = stats.Percentile(latencies, 99)
	}
	return res, nil
}

// MaxSustainableRate finds (by bisection) the highest arrival rate the
// session serves with P99 latency below the bound — the provisioning
// question behind the paper's "real-time performance" framing.
func MaxSustainableRate(s *core.Session, p99Bound, durationSec float64, seed int64) (float64, error) {
	if p99Bound <= 0 {
		return 0, fmt.Errorf("serving: p99 bound must be positive")
	}
	base := s.InferenceSeconds()
	if base > p99Bound {
		return 0, nil // a single unqueued request already misses
	}
	lo, hi := 0.0, 1/base // service rate is the hard ceiling
	for i := 0; i < 24; i++ {
		mid := (lo + hi) / 2
		if mid == 0 {
			break
		}
		r, err := Simulate(s, Config{ArrivalPerSec: mid, DurationSec: durationSec, Seed: seed})
		if err != nil {
			return 0, err
		}
		if r.P99 <= p99Bound && r.Served > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
