package serving_test

import (
	"math"
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/serving"
	"edgebench/internal/tensor"
)

func engineCNN(t testing.TB) *graph.Graph {
	t.Helper()
	b := nn.NewBuilder("engine-cnn", nn.Options{Materialize: true, Seed: 5}, 3, 16, 16)
	stem := b.ConvBNReLU("stem", 8, 3, 1, 1)
	br1 := b.From(stem).Conv2D("br1", 8, 1, 1, 0, true)
	br2 := b.From(stem).Conv2D("br2", 8, 3, 1, 1, true)
	b.Concat("cat", br1, br2)
	b.MaxPool("pool", 2, 2, 0)
	b.GlobalAvgPool("gap")
	b.Dense("fc", 10, true)
	b.Softmax("prob")
	return b.Build()
}

func engineInput(i int) *tensor.Tensor {
	in := tensor.New(3, 16, 16)
	for j := range in.Data {
		in.Data[j] = float32(math.Sin(float64(i*131 + j)))
	}
	return in
}

// TestEngineBatchMatchesSequential runs a concurrent batch through the
// replica pool and checks every output equals a dedicated sequential
// executor's result for the same input.
func TestEngineBatchMatchesSequential(t *testing.T) {
	g := engineCNN(t)
	eng, err := serving.NewEngine(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	ins := make([]*tensor.Tensor, n)
	for i := range ins {
		ins[i] = engineInput(i)
	}
	outs, err := eng.InferBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	ref := &graph.Executor{}
	for i, in := range ins {
		want, err := ref.Run(g, in)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want.Data {
			if outs[i].Data[j] != want.Data[j] {
				t.Fatalf("request %d: out[%d] = %v, want %v", i, j, outs[i].Data[j], want.Data[j])
			}
		}
	}
	// Static graph: replicas must be reusing their arenas, not
	// allocating per request — with 16 requests over 4 replicas, hits
	// must dominate after each replica's first pass.
	st := eng.PoolStats()
	if st.Gets == 0 {
		t.Fatal("engine never touched its arenas")
	}
	if hits := st.Gets - st.Misses; hits <= st.Misses {
		t.Errorf("arena stats %+v: expected steady-state reuse to dominate", st)
	}
}

// TestEngineRejectsStructuralGraph pins the materialization gate.
func TestEngineRejectsStructuralGraph(t *testing.T) {
	b := nn.NewBuilder("structural", nn.Options{}, 3, 8, 8)
	b.Conv2D("c", 4, 3, 1, 1, true)
	b.GlobalAvgPool("gap")
	b.Softmax("sm")
	if _, err := serving.NewEngine(b.Build(), 2); err == nil {
		t.Fatal("structural graph must be rejected")
	}
}
