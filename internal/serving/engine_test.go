package serving_test

import (
	"errors"
	"math"
	"sync"
	"testing"

	"edgebench/internal/graph"
	"edgebench/internal/nn"
	"edgebench/internal/serving"
	"edgebench/internal/tensor"
)

func engineCNN(t testing.TB) *graph.Graph {
	t.Helper()
	b := nn.NewBuilder("engine-cnn", nn.Options{Materialize: true, Seed: 5}, 3, 16, 16)
	stem := b.ConvBNReLU("stem", 8, 3, 1, 1)
	br1 := b.From(stem).Conv2D("br1", 8, 1, 1, 0, true)
	br2 := b.From(stem).Conv2D("br2", 8, 3, 1, 1, true)
	b.Concat("cat", br1, br2)
	b.MaxPool("pool", 2, 2, 0)
	b.GlobalAvgPool("gap")
	b.Dense("fc", 10, true)
	b.Softmax("prob")
	return b.Build()
}

func engineInput(i int) *tensor.Tensor {
	in := tensor.New(3, 16, 16)
	for j := range in.Data {
		in.Data[j] = float32(math.Sin(float64(i*131 + j)))
	}
	return in
}

// TestEngineBatchMatchesSequential runs a concurrent batch through the
// replica pool and checks every output equals a dedicated sequential
// executor's result for the same input.
func TestEngineBatchMatchesSequential(t *testing.T) {
	g := engineCNN(t)
	eng, err := serving.NewEngine(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	ins := make([]*tensor.Tensor, n)
	for i := range ins {
		ins[i] = engineInput(i)
	}
	outs, err := eng.InferBatch(ins)
	if err != nil {
		t.Fatal(err)
	}
	ref := &graph.Executor{}
	for i, in := range ins {
		want, err := ref.Run(g, in)
		if err != nil {
			t.Fatal(err)
		}
		single, err := eng.Infer(in)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want.Data {
			if outs[i].Data[j] != want.Data[j] {
				t.Fatalf("request %d: batched out[%d] = %v, want %v", i, j, outs[i].Data[j], want.Data[j])
			}
			if single.Data[j] != want.Data[j] {
				t.Fatalf("request %d: Infer out[%d] = %v, want %v", i, j, single.Data[j], want.Data[j])
			}
		}
	}
	// Static graph: both paths run against the replica arenas, so after
	// the Infer and InferBatch traffic above, steady-state reuse must
	// dominate over cold misses.
	st := eng.PoolStats()
	if st.Gets == 0 {
		t.Fatal("engine never touched its arenas")
	}
	if hits := st.Gets - st.Misses; hits <= st.Misses {
		t.Errorf("arena stats %+v: expected steady-state reuse to dominate", st)
	}
}

// bigEngineCNN builds a graph whose convs exceed the kernel parallel
// threshold, so concurrent replicas and intra-op sharding contend for
// the same fixed worker pool.
func bigEngineCNN(t testing.TB) *graph.Graph {
	t.Helper()
	b := nn.NewBuilder("engine-big", nn.Options{Materialize: true, Seed: 6}, 16, 32, 32)
	stem := b.ConvBNReLU("stem", 32, 3, 1, 1)
	br1 := b.From(stem).Conv2D("br1", 32, 3, 1, 1, true)
	br2 := b.From(stem).Conv2D("br2", 32, 3, 1, 1, true)
	b.Concat("cat", br1, br2)
	b.GlobalAvgPool("gap")
	b.Dense("fc", 10, true)
	b.Softmax("prob")
	return b.Build()
}

// TestEngineReplicasShareKernelPool floods the replica pool with
// concurrent requests whose kernels all try to shard onto the shared
// worker pool. Every output must stay bitwise equal to a sequential
// executor — the kernel pool's saturation fallback must never change
// results — and the intra-op bound the engine reports must match the
// package-global pool. Run with -race this is the replica × intra-op
// contention stress.
func TestEngineReplicasShareKernelPool(t *testing.T) {
	g := bigEngineCNN(t)
	eng, err := serving.NewEngine(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if kp := eng.KernelParallelism(); kp < 1 {
		t.Fatalf("KernelParallelism() = %d, want >= 1", kp)
	}
	const n = 9
	ins := make([]*tensor.Tensor, n)
	want := make([]*tensor.Tensor, n)
	ref := &graph.Executor{}
	for i := range ins {
		in := tensor.New(16, 32, 32)
		for j := range in.Data {
			in.Data[j] = float32(math.Sin(float64(i*977 + j)))
		}
		ins[i] = in
		w, err := ref.Run(g, in)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := eng.Infer(ins[i])
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			for j := range want[i].Data {
				if got.Data[j] != want[i].Data[j] {
					t.Errorf("request %d: out[%d] = %v, want %v", i, j, got.Data[j], want[i].Data[j])
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestEngineRejectsStructuralGraph pins the materialization gate.
func TestEngineRejectsStructuralGraph(t *testing.T) {
	b := nn.NewBuilder("structural", nn.Options{}, 3, 8, 8)
	b.Conv2D("c", 4, 3, 1, 1, true)
	b.GlobalAvgPool("gap")
	b.Softmax("sm")
	if _, err := serving.NewEngine(b.Build(), 2); err == nil {
		t.Fatal("structural graph must be rejected")
	}
}

// TestEngineEmptyAndNilBatch pins the typed fast-fail errors: no
// goroutines are spawned for zero-work or malformed batches.
func TestEngineEmptyAndNilBatch(t *testing.T) {
	eng, err := serving.NewEngine(engineCNN(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.InferBatch(nil); !errors.Is(err, serving.ErrEmptyBatch) {
		t.Fatalf("empty batch returned %v, want ErrEmptyBatch", err)
	}
	if _, err := eng.InferBatch([]*tensor.Tensor{}); !errors.Is(err, serving.ErrEmptyBatch) {
		t.Fatalf("zero-length batch returned %v, want ErrEmptyBatch", err)
	}
	if _, err := eng.InferBatch([]*tensor.Tensor{engineInput(0), nil}); !errors.Is(err, serving.ErrNilInput) {
		t.Fatalf("nil tensor returned %v, want ErrNilInput", err)
	}
	if _, err := eng.Infer(nil); !errors.Is(err, serving.ErrNilInput) {
		t.Fatalf("nil Infer returned %v, want ErrNilInput", err)
	}
}

// TestEngineClose pins the drain semantics: Close waits for in-flight
// work, later inferences fail fast, and Close is idempotent and safe
// under concurrency.
func TestEngineClose(t *testing.T) {
	eng, err := serving.NewEngine(engineCNN(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	// In-flight inferences racing Close must either finish cleanly or
	// fail with ErrEngineClosed — never hang, never corrupt.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := eng.Infer(engineInput(i)); err != nil && !errors.Is(err, serving.ErrEngineClosed) {
				t.Errorf("in-flight infer: %v", err)
			}
		}(i)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := eng.Infer(engineInput(0)); !errors.Is(err, serving.ErrEngineClosed) {
		t.Fatalf("post-close Infer returned %v, want ErrEngineClosed", err)
	}
	if _, err := eng.InferBatch([]*tensor.Tensor{engineInput(0)}); !errors.Is(err, serving.ErrEngineClosed) {
		t.Fatalf("post-close InferBatch returned %v, want ErrEngineClosed", err)
	}
}

// TestEngineAccessors pins the surface the HTTP server builds on.
func TestEngineAccessors(t *testing.T) {
	g := engineCNN(t)
	eng, err := serving.NewEngine(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Replicas() != 3 {
		t.Errorf("replicas %d, want 3", eng.Replicas())
	}
	if !eng.InputShape().Equal(tensor.Shape{3, 16, 16}) {
		t.Errorf("input shape %v", eng.InputShape())
	}
	if eng.Graph() != g {
		t.Error("Graph() should return the engine's graph")
	}
}
