// Package autodiff implements reverse-mode automatic differentiation
// over the graph IR — the capability that makes TensorFlow, PyTorch,
// Caffe, and DarkNet *training* frameworks in the paper's taxonomy
// (§III-A: "automatic differentiation eases the design of new models
// since backpropagation operations are automatically defined").
//
// Gradients are computed against the un-lowered training graph (before
// deployment fusion/quantization — frameworks train first and optimize
// for inference afterwards); graphs carrying fused activations or
// reduced-precision weights are rejected. Batch-norm differentiates in
// inference mode (frozen statistics), i.e. fine-tuning semantics.
package autodiff

import (
	"fmt"

	"edgebench/internal/graph"
	"edgebench/internal/tensor"
)

// Gradients holds the backward pass's outputs.
type Gradients struct {
	// Input is dLoss/dInput.
	Input *tensor.Tensor
	// Weights maps weight-bearing nodes to dLoss/dWeights.
	Weights map[*graph.Node]*tensor.Tensor
	// Bias maps biased nodes to dLoss/dBias.
	Bias map[*graph.Node][]float32
	// Gamma and Beta map batch-norm nodes to their affine gradients.
	Gamma map[*graph.Node][]float32
	Beta  map[*graph.Node][]float32
}

// Backprop runs a forward pass of g on input, seeds the output gradient
// with outGrad (same shape as the graph output), and back-propagates to
// every parameter and the input.
func Backprop(g *graph.Graph, input *tensor.Tensor, outGrad *tensor.Tensor) (*Gradients, error) {
	if err := trainable(g); err != nil {
		return nil, err
	}
	var exec graph.Executor
	values, err := exec.RunValues(g, input)
	if err != nil {
		return nil, err
	}
	if !outGrad.Shape.Equal(g.Output.OutShape) {
		return nil, fmt.Errorf("autodiff: output grad shape %v, want %v", outGrad.Shape, g.Output.OutShape)
	}

	grads := map[*graph.Node]*tensor.Tensor{g.Output: outGrad.Clone()}
	out := &Gradients{
		Weights: map[*graph.Node]*tensor.Tensor{},
		Bias:    map[*graph.Node][]float32{},
		Gamma:   map[*graph.Node][]float32{},
		Beta:    map[*graph.Node][]float32{},
	}

	// Reverse topological order: Nodes is topologically sorted.
	for i := len(g.Nodes) - 1; i >= 0; i-- {
		n := g.Nodes[i]
		dOut, ok := grads[n]
		if !ok {
			continue // node does not influence the output
		}
		if n.Kind == graph.OpInput {
			out.Input = dOut
			continue
		}
		dIns, err := backward(n, values, dOut, out)
		if err != nil {
			return nil, fmt.Errorf("autodiff: node %s: %w", n, err)
		}
		for j, in := range n.Inputs {
			if dIns[j] == nil {
				continue
			}
			if acc, ok := grads[in]; ok {
				for k, v := range dIns[j].Data {
					acc.Data[k] += v
				}
			} else {
				grads[in] = dIns[j]
			}
		}
		if n != g.Output {
			delete(grads, n) // free as we go
		}
	}
	if out.Input == nil {
		out.Input = tensor.New(input.Shape...)
	}
	return out, nil
}

// trainable verifies the graph is an un-lowered training graph with
// materialized parameters.
func trainable(g *graph.Graph) error {
	for _, n := range g.Nodes {
		if n.Activation != 0 {
			return fmt.Errorf("autodiff: node %s carries a fused activation; train before deployment lowering", n)
		}
		if n.DType != tensor.FP32 {
			return fmt.Errorf("autodiff: node %s is %s; training requires fp32", n, n.DType)
		}
		if !n.Materialized() {
			return fmt.Errorf("autodiff: node %s has structural-only parameters; build with Materialize", n)
		}
		switch n.Kind {
		case graph.OpConv3D, graph.OpMaxPool3D, graph.OpLSTM:
			return fmt.Errorf("autodiff: %s is inference-only in this engine (video/recurrent training out of scope)", n.Kind)
		}
	}
	return nil
}
