package autodiff_test

import (
	"math"
	"testing"

	"edgebench/internal/autodiff"
	"edgebench/internal/nn"
	"edgebench/internal/tensor"
)

func TestSchedules(t *testing.T) {
	c := autodiff.ConstantLR(0.1)
	if c(0) != 0.1 || c(1000) != 0.1 {
		t.Fatal("constant schedule drifted")
	}
	s := autodiff.StepDecay(1.0, 0.1, 10)
	if s(0) != 1.0 || s(9) != 1.0 {
		t.Fatal("step decay fired early")
	}
	if math.Abs(s(10)-0.1) > 1e-12 || math.Abs(s(25)-0.01) > 1e-12 {
		t.Fatalf("step decay wrong: %v %v", s(10), s(25))
	}
	if autodiff.StepDecay(1, 0.5, 0)(1) != 0.5 {
		t.Fatal("zero interval should clamp to 1")
	}
	cd := autodiff.CosineDecay(1.0, 0.0, 100)
	if cd(0) != 1.0 {
		t.Fatalf("cosine start %v", cd(0))
	}
	if math.Abs(cd(50)-0.5) > 1e-9 {
		t.Fatalf("cosine midpoint %v", cd(50))
	}
	if cd(100) != 0 || cd(500) != 0 {
		t.Fatal("cosine should hold the floor past the horizon")
	}
	// Monotone decreasing.
	for i := 1; i < 100; i++ {
		if cd(i) > cd(i-1)+1e-12 {
			t.Fatal("cosine schedule not monotone")
		}
	}
}

func TestSGDScheduleAdvancesPerStep(t *testing.T) {
	b := nn.NewBuilder("g", nn.Options{Materialize: true, Seed: 2}, 1, 4, 4)
	b.Dense("fc", 2, true)
	b.Softmax("p")
	g := b.Build()
	opt := autodiff.NewSGD(0.1, 0)
	opt.Schedule = autodiff.StepDecay(0.1, 0.5, 1)
	if opt.CurrentLR() != 0.1 {
		t.Fatal("initial LR wrong")
	}
	in := tensor.New(1, 4, 4).Fill(0.5)
	_, grads, err := autodiff.CrossEntropy(g, in, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt.Step(g, grads)
	if opt.CurrentLR() != 0.05 {
		t.Fatalf("LR after one step = %v, want halved", opt.CurrentLR())
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	build := func() *nn.Graph {
		b := nn.NewBuilder("g", nn.Options{Materialize: true, Seed: 3}, 1, 4, 4)
		b.Conv2D("c", 2, 3, 1, 1, true)
		b.ReLU("r")
		b.Dense("fc", 2, true)
		b.Softmax("p")
		return b.Build()
	}
	norm := func(g *nn.Graph) float64 {
		var s float64
		for _, n := range g.Nodes {
			if n.Weights != nil {
				for _, v := range n.Weights.Data {
					s += float64(v) * float64(v)
				}
			}
		}
		return s
	}
	in := tensor.New(1, 4, 4).Fill(0.3)
	train := func(wd float64) float64 {
		g := build()
		opt := autodiff.NewSGD(0.01, 0)
		opt.WeightDecay = wd
		for i := 0; i < 40; i++ {
			_, grads, err := autodiff.CrossEntropy(g, in, 0)
			if err != nil {
				t.Fatal(err)
			}
			opt.Step(g, grads)
		}
		return norm(g)
	}
	if decayed, plain := train(0.1), train(0); decayed >= plain {
		t.Fatalf("weight decay should shrink the weight norm: %v vs %v", decayed, plain)
	}
}
