package autodiff

import (
	"fmt"
	"math"

	"edgebench/internal/graph"
	"edgebench/internal/tensor"
)

// CrossEntropy runs a forward pass, computes -log p[label] against the
// graph's softmax output, and back-propagates. The graph output must be
// a softmax node (classifier head).
func CrossEntropy(g *graph.Graph, input *tensor.Tensor, label int) (loss float64, grads *Gradients, err error) {
	if g.Output.Kind != graph.OpSoftmax {
		return 0, nil, fmt.Errorf("autodiff: cross-entropy needs a softmax output, graph ends in %v", g.Output.Kind)
	}
	classes := g.Output.OutShape[0]
	if label < 0 || label >= classes {
		return 0, nil, fmt.Errorf("autodiff: label %d out of range [0,%d)", label, classes)
	}
	// Softmax + CE fuse: dLoss/dLogits = p - onehot. Seeding the softmax
	// node's *output* gradient with that and letting the softmax backward
	// rule run would double-apply the Jacobian, so we instead seed
	// dLoss/dSoftmaxOutput = -onehot/p (the direct CE derivative); the
	// softmax rule then reproduces p - onehot exactly.
	var exec graph.Executor
	probs, err := exec.Run(g, input)
	if err != nil {
		return 0, nil, err
	}
	p := float64(probs.Data[label])
	if p < 1e-12 {
		p = 1e-12
	}
	loss = -math.Log(p)

	seed := tensor.New(classes)
	seed.Data[label] = float32(-1 / p)
	grads, err = Backprop(g, input, seed)
	return loss, grads, err
}

// Schedule maps a 0-based step index to a learning rate.
type Schedule func(step int) float64

// ConstantLR keeps the rate fixed.
func ConstantLR(lr float64) Schedule {
	return func(int) float64 { return lr }
}

// StepDecay multiplies the base rate by factor every interval steps —
// the classic ImageNet recipe.
func StepDecay(base, factor float64, interval int) Schedule {
	if interval < 1 {
		interval = 1
	}
	return func(step int) float64 {
		return base * math.Pow(factor, float64(step/interval))
	}
}

// CosineDecay anneals from base to floor over horizon steps.
func CosineDecay(base, floor float64, horizon int) Schedule {
	if horizon < 1 {
		horizon = 1
	}
	return func(step int) float64 {
		if step >= horizon {
			return floor
		}
		frac := float64(step) / float64(horizon)
		return floor + (base-floor)*(1+math.Cos(math.Pi*frac))/2
	}
}

// SGD is a stochastic-gradient-descent optimizer with classical
// momentum, optional L2 weight decay, and a pluggable learning-rate
// schedule, matching the frameworks' default training loop.
type SGD struct {
	LR       float64
	Momentum float64
	// WeightDecay is the L2 coefficient applied to weights (not biases
	// or batch-norm affine terms, per common practice).
	WeightDecay float64
	// Schedule overrides LR when set; it receives the step counter.
	Schedule Schedule

	step  int
	velW  map[*graph.Node]*tensor.Tensor
	velB  map[*graph.Node][]float32
	velG  map[*graph.Node][]float32
	velBe map[*graph.Node][]float32
}

// NewSGD constructs the optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{
		LR: lr, Momentum: momentum,
		velW:  map[*graph.Node]*tensor.Tensor{},
		velB:  map[*graph.Node][]float32{},
		velG:  map[*graph.Node][]float32{},
		velBe: map[*graph.Node][]float32{},
	}
}

// CurrentLR returns the rate the next Step will use.
func (o *SGD) CurrentLR() float64 {
	if o.Schedule != nil {
		return o.Schedule(o.step)
	}
	return o.LR
}

// Step applies one parameter update from accumulated gradients.
func (o *SGD) Step(g *graph.Graph, grads *Gradients) {
	lr, mu := float32(o.CurrentLR()), float32(o.Momentum)
	o.step++
	wd := float32(o.WeightDecay)
	for n, dW := range grads.Weights {
		v, ok := o.velW[n]
		if !ok {
			v = tensor.New(dW.Shape...)
			o.velW[n] = v
		}
		for i := range dW.Data {
			grad := dW.Data[i] + wd*n.Weights.Data[i]
			v.Data[i] = mu*v.Data[i] - lr*grad
			n.Weights.Data[i] += v.Data[i]
		}
	}
	stepVec := func(vel map[*graph.Node][]float32, n *graph.Node, params, d []float32) {
		v, ok := vel[n]
		if !ok {
			v = make([]float32, len(d))
			vel[n] = v
		}
		for i := range d {
			v[i] = mu*v[i] - lr*d[i]
			params[i] += v[i]
		}
	}
	for n, dB := range grads.Bias {
		stepVec(o.velB, n, n.Bias, dB)
	}
	for n, dG := range grads.Gamma {
		stepVec(o.velG, n, n.BN.Gamma, dG)
	}
	for n, dBe := range grads.Beta {
		stepVec(o.velBe, n, n.BN.Beta, dBe)
	}
	_ = g
}

// Example is one labelled training sample.
type Example struct {
	Input *tensor.Tensor
	Label int
}

// TrainEpoch runs one pass of SGD over the examples, returning the mean
// loss and accuracy.
func TrainEpoch(g *graph.Graph, opt *SGD, examples []Example) (meanLoss, accuracy float64, err error) {
	if len(examples) == 0 {
		return 0, 0, fmt.Errorf("autodiff: no training examples")
	}
	correct := 0
	for _, ex := range examples {
		loss, grads, err := CrossEntropy(g, ex.Input, ex.Label)
		if err != nil {
			return 0, 0, err
		}
		meanLoss += loss
		opt.Step(g, grads)

		if pred, err := Predict(g, ex.Input); err == nil && pred == ex.Label {
			correct++
		}
	}
	return meanLoss / float64(len(examples)), float64(correct) / float64(len(examples)), nil
}

// Predict returns the argmax class for the input.
func Predict(g *graph.Graph, input *tensor.Tensor) (int, error) {
	var exec graph.Executor
	probs, err := exec.Run(g, input)
	if err != nil {
		return 0, err
	}
	best, arg := float32(-1), 0
	for i, p := range probs.Data {
		if p > best {
			best, arg = p, i
		}
	}
	return arg, nil
}
